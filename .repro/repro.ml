open Ir
open Exec

let () =
  let w = 4 in
  let c = Builder.create_ctx () in
  let m = Func.create_module "repro" in
  let f =
    Builder.func c ~name:"f"
      ~params:[ Ty.Memref; Ty.vec w Ty.F64; Ty.vec w Ty.F64 ]
      ~results:[]
      (fun b args ->
        let mem = List.nth args 0 and a = List.nth args 1
        and bb = List.nth args 2 in
        let t = Builder.mulf b a bb in          (* single-use producer *)
        let i0 = Builder.consti b 0 in
        let x = Builder.vec_load b ~width:w ~mem ~idx:i0 in
        let y = Builder.addf b x t in           (* consumer of both *)
        Builder.vec_store b ~vec:y ~mem ~idx:i0;
        Builder.ret b [])
  in
  Func.add_func m f;
  Ir.Verifier.verify_module_exn m;
  let buf () = Float.Array.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  let va = Float.Array.of_array [| 10.0; 20.0; 30.0; 40.0 |] in
  let vb = Float.Array.of_array [| 2.0; 2.0; 2.0; 2.0 |] in
  let run engine =
    let mem = buf () in
    ignore (engine m "f" [| Rt.M mem; Rt.VF va; Rt.VF vb |]);
    mem
  in
  let closure = run Engine.run and fused = run Fused.run in
  Printf.printf "closure: %s\nfused:   %s\n"
    (String.concat " " (List.map string_of_float (Float.Array.to_list closure)))
    (String.concat " " (List.map string_of_float (Float.Array.to_list fused)))
