(* Benchmark harness: regenerates every figure of the paper (CGO'23,
   limpetMLIR) from this reproduction.

   Sections (run all by default, or pass section names as arguments):
     fig2    single-thread AVX-512 speedup per model
     fig3    32-thread AVX-512 speedup per model
     fig4    class-average execution time vs threads
     fig5    geomean speedup for SSE/AVX2/AVX-512 across threads
     fig6    roofline (operational intensity vs GFlop/s, 32T AVX-512)
     layout  §4.4 data-layout ablation (AoS vs AoSoA)
     lut     §3.4.2 lookup-table ablation (LUT on vs off)
     icc     §5 icc omp-simd auto-vectorization comparison point
     wall    real wall-clock microbenchmarks through the execution engine
             (bechamel; one Test.make per figure-equivalent comparison)

   Workload parameters follow the paper: 8192 cells, 100 000 steps of
   0.01 ms (figures use the calibrated machine model; the host has one
   core and no vector ISA, see DESIGN.md).  The wall-clock section runs
   the real closure-compiled kernels on a scaled-down workload. *)

let cells = 8192
let steps = 100_000
let geo = Perf.Stats.geomean

(* Optional artifact-style CSV output: pass csv=DIR on the command line and
   every figure section also writes DIR/<section>.csv (the original
   artifact's evaluation.sh saves per-figure result files the same way). *)
let csv_dir : string option ref = ref None

let with_csv (section : string) (header : string) (rows : string list) : unit =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (section ^ ".csv") in
      let oc = open_out path in
      output_string oc (header ^ "\n");
      List.iter (fun r -> output_string oc (r ^ "\n")) rows;
      close_out oc;
      Fmt.pr "(wrote %s)@." path

let model e = Models.Registry.model e
let all_models = Models.Registry.all

let gen_cache : (string, Codegen.Kernel.t) Hashtbl.t = Hashtbl.create 64

let gen (cfg : Codegen.Config.t) (e : Models.Model_def.entry) : Codegen.Kernel.t =
  let key = e.name ^ "/" ^ Codegen.Config.describe cfg in
  match Hashtbl.find_opt gen_cache key with
  | Some g -> g
  | None ->
      let g = Codegen.Kernel.generate cfg (model e) in
      Hashtbl.replace gen_cache key g;
      g

let base e = gen Codegen.Config.baseline e
let mlir w e = gen (Codegen.Config.mlir ~width:w) e

let seconds g n =
  (Machine.Perfmodel.run_kernel g ~ncells:cells ~steps ~nthreads:n)
    .Machine.Perfmodel.seconds

let speedup ?(w = 8) ?(n = 1) e = seconds (base e) n /. seconds (mlir w e) n

let by_baseline_time (es : Models.Model_def.entry list) =
  List.sort (fun a b -> compare (seconds (base a) 1) (seconds (base b) 1)) es

let cls_tag (e : Models.Model_def.entry) = Models.Model_def.cls_name e.cls
let hr () = print_endline (String.make 72 '-')

(* ------------------------------------------------------------------ *)

let fig2 () =
  hr ();
  let rows = ref [] in
  Fmt.pr "Figure 2: speedup of limpetMLIR vs baseline openCARP, 1 thread,@.";
  Fmt.pr "AVX-512 (width 8).  Models ordered by baseline execution time.@.";
  hr ();
  Fmt.pr "%-22s %-7s %12s %13s %9s@." "model" "class" "baseline(s)" "limpetMLIR(s)"
    "speedup";
  List.iter
    (fun e ->
      let tb = seconds (base e) 1 and tv = seconds (mlir 8 e) 1 in
      rows :=
        Printf.sprintf "%s,%s,%.3f,%.3f,%.4f" e.Models.Model_def.name
          (cls_tag e) tb tv (tb /. tv)
        :: !rows;
      Fmt.pr "%-22s %-7s %12.1f %13.1f %8.2fx@." e.Models.Model_def.name
        (cls_tag e) tb tv (tb /. tv))
    (by_baseline_time all_models);
  with_csv "fig2" "model,class,baseline_s,limpetmlir_s,speedup" (List.rev !rows);
  Fmt.pr "@.geomean (all): %.2fx   [paper: 5.25x]@."
    (geo (List.map (fun e -> speedup e) all_models));
  List.iter
    (fun c ->
      Fmt.pr "geomean (%s): %.2fx@."
        (Models.Model_def.cls_name c)
        (geo (List.map (fun e -> speedup e) (Models.Registry.by_class c))))
    [ Models.Model_def.Small; Medium; Large ]

let fig3 () =
  hr ();
  let rows = ref [] in
  Fmt.pr "Figure 3: speedup on 32 OpenMP threads (32 cores), AVX-512.@.";
  hr ();
  Fmt.pr "%-22s %-7s %12s %13s %9s@." "model" "class" "baseline(s)" "limpetMLIR(s)"
    "speedup";
  List.iter
    (fun e ->
      let tb = seconds (base e) 32 and tv = seconds (mlir 8 e) 32 in
      rows :=
        Printf.sprintf "%s,%s,%.4f,%.4f,%.4f" e.Models.Model_def.name
          (cls_tag e) tb tv (tb /. tv)
        :: !rows;
      Fmt.pr "%-22s %-7s %12.2f %13.2f %8.2fx@." e.Models.Model_def.name
        (cls_tag e) tb tv (tb /. tv))
    (by_baseline_time all_models);
  with_csv "fig3" "model,class,baseline_s,limpetmlir_s,speedup" (List.rev !rows);
  Fmt.pr "@.geomean (all): %.2fx   [paper: 1.93x]@."
    (geo (List.map (fun e -> speedup ~n:32 e) all_models));
  List.iter
    (fun (c, paper) ->
      Fmt.pr "geomean (%s): %.2fx   [paper: %s]@."
        (Models.Model_def.cls_name c)
        (geo (List.map (fun e -> speedup ~n:32 e) (Models.Registry.by_class c)))
        paper)
    [ (Models.Model_def.Small, "0.83x"); (Medium, "1.34x"); (Large, "6.03x") ]

let threads_axis = [ 1; 2; 4; 8; 16; 32 ]

let fig4 () =
  hr ();
  Fmt.pr "Figure 4: average execution time of the three model classes vs@.";
  Fmt.pr "thread count (AVX-512).  Rows: class x version; columns: threads.@.";
  hr ();
  Fmt.pr "%-8s %-10s %s@." "class" "version"
    (String.concat "" (List.map (Printf.sprintf "%9dT") threads_axis));
  List.iter
    (fun c ->
      let es = Models.Registry.by_class c in
      let avg f =
        List.map
          (fun n -> Perf.Stats.mean (List.map (fun e -> f e n) es))
          threads_axis
      in
      Fmt.pr "%-8s %-10s %s@." (Models.Model_def.cls_name c) "baseline"
        (String.concat ""
           (List.map (Printf.sprintf "%10.2f") (avg (fun e n -> seconds (base e) n))));
      Fmt.pr "%-8s %-10s %s@." (Models.Model_def.cls_name c) "limpetMLIR"
        (String.concat ""
           (List.map (Printf.sprintf "%10.2f") (avg (fun e n -> seconds (mlir 8 e) n)))))
    [ Models.Model_def.Small; Medium; Large ];
  Fmt.pr "@.Expected shape: large models scale near-ideally; small models@.";
  Fmt.pr "flatten (sync overhead dominates) and the limpetMLIR advantage@.";
  Fmt.pr "disappears at 32 threads for the small class.@."

let fig5 () =
  hr ();
  Fmt.pr "Figure 5: geomean speedups for SSE / AVX2 / AVX-512 vs threads.@.";
  hr ();
  Fmt.pr "%-9s %s@." "arch"
    (String.concat "" (List.map (Printf.sprintf "%9dT") threads_axis));
  let rows =
    List.map
      (fun w ->
        ( w,
          List.map
            (fun n -> geo (List.map (fun e -> speedup ~w ~n e) all_models))
            threads_axis ))
      [ 2; 4; 8 ]
  in
  List.iter
    (fun (w, sp) ->
      let name = match w with 2 -> "SSE" | 4 -> "AVX2" | _ -> "AVX-512" in
      Fmt.pr "%-9s %s@." name
        (String.concat "" (List.map (Printf.sprintf "%8.2fx") sp)))
    rows;
  with_csv "fig5" "arch,threads,geomean_speedup"
    (List.concat_map
       (fun (w, sp) ->
         let name = match w with 2 -> "SSE" | 4 -> "AVX2" | _ -> "AVX-512" in
         List.map2
           (fun n v -> Printf.sprintf "%s,%d,%.4f" name n v)
           threads_axis sp)
       rows);
  let overall = geo (List.concat_map snd rows) in
  Fmt.pr
    "@.overall geomean (all models, all archs, all threads): %.2fx   [paper: 2.90x]@."
    overall;
  List.iter
    (fun (w, paper) ->
      let sp =
        geo
          (List.map
             (fun e -> speedup ~w ~n:32 e)
             (Models.Registry.by_class Models.Model_def.Large))
      in
      let name = match w with 2 -> "SSE" | 4 -> "AVX2" | _ -> "AVX-512" in
      Fmt.pr "large models, 32T, %s: %.2fx   [paper: %s]@." name sp paper)
    [ (2, "3.80x"); (4, "5.13x"); (8, "6.03x") ]

let fig6 () =
  hr ();
  Fmt.pr "Figure 6: roofline, 32 threads AVX-512 (limpetMLIR kernels).@.";
  let arch = Machine.Arch.avx512 in
  let c = Machine.Ert.ceilings arch ~nthreads:32 in
  Fmt.pr "platform ceilings (ERT analogue): peak %.0f GFlop/s, DRAM %.0f GB/s,@."
    c.Machine.Ert.peak_gflops c.Machine.Ert.dram_bw;
  Fmt.pr "L1 %.0f GB/s   [paper: 760 GFlop/s, 199 GB/s, 1052 GB/s]@."
    c.Machine.Ert.l1_bw;
  hr ();
  let points =
    List.map
      (fun e ->
        let r =
          Machine.Perfmodel.run_kernel (mlir 8 e) ~ncells:cells ~steps ~nthreads:32
        in
        {
          Perf.Roofline.label = e.Models.Model_def.name;
          oi = r.Machine.Perfmodel.oi;
          gflops = r.Machine.Perfmodel.gflops;
          cls = cls_tag e;
        })
      all_models
  in
  Fmt.pr "%a" Perf.Roofline.pp_points points;
  with_csv "fig6" "model,class,oi_flops_per_byte,gflops"
    (List.map
       (fun (p : Perf.Roofline.point) ->
         Printf.sprintf "%s,%s,%.5f,%.3f" p.label p.cls p.oi p.gflops)
       points);
  let rc =
    {
      Perf.Roofline.peak_gflops = c.Machine.Ert.peak_gflops;
      dram_bw = c.Machine.Ert.dram_bw;
      l1_bw = c.Machine.Ert.l1_bw;
    }
  in
  let membound =
    List.filter
      (fun p -> Perf.Roofline.memory_bound rc ~oi:p.Perf.Roofline.oi)
      points
  in
  Fmt.pr "@.ridge point: %.2f Flops/Byte; %d of %d models are memory-bound@."
    (Perf.Roofline.ridge rc) (List.length membound) (List.length points);
  Fmt.pr "(paper: the majority of models sit left of ~4 Flops/Byte).@."

let layout_ablation () =
  hr ();
  Fmt.pr "Section 4.4: data-layout ablation (AoSoA transformation off/on),@.";
  Fmt.pr "AVX-512, geomean over 1..32 threads.@.";
  hr ();
  let aos_cfg =
    { (Codegen.Config.mlir ~width:8) with layout = Runtime.Layout.AoS }
  in
  let sp cfg e =
    geo (List.map (fun n -> seconds (base e) n /. seconds (gen cfg e) n) threads_axis)
  in
  let sp_aos = geo (List.map (sp aos_cfg) all_models) in
  let sp_aosoa = geo (List.map (sp (Codegen.Config.mlir ~width:8)) all_models) in
  Fmt.pr "all-model geomean: AoS %.2fx -> AoSoA %.2fx   [paper: 3.12x -> 3.37x]@."
    sp_aos sp_aosoa;
  let sn = Models.Registry.find_exn "Stress_Niederer" in
  Fmt.pr "Stress_Niederer, 32T: AoS %.2fx -> AoSoA %.2fx   [paper: 4.98x -> 6.03x]@."
    (seconds (base sn) 32 /. seconds (gen aos_cfg sn) 32)
    (seconds (base sn) 32 /. seconds (mlir 8 sn) 32)

let lut_ablation () =
  hr ();
  Fmt.pr "Section 3.4.2: lookup-table ablation.  The paper's >6x claim is@.";
  Fmt.pr "about LUT vs non-LUT model versions in openCARP (scalar libm@.";
  Fmt.pr "recomputation per cell); the vector column shows the remaining@.";
  Fmt.pr "benefit once SVML already made math cheap.  1 thread.@.";
  hr ();
  let nolut_s = { Codegen.Config.baseline with use_lut = false } in
  let nolut_v = { (Codegen.Config.mlir ~width:8) with use_lut = false } in
  Fmt.pr "%-22s %14s %14s@." "model" "scalar gain" "vector gain";
  let gains =
    List.filter_map
      (fun e ->
        let g = mlir 8 e in
        if g.Codegen.Kernel.lut_plans = [] then None
        else
          let gs = seconds (gen nolut_s e) 1 /. seconds (base e) 1 in
          let gv = seconds (gen nolut_v e) 1 /. seconds g 1 in
          Fmt.pr "%-22s %13.2fx %13.2fx@." e.Models.Model_def.name gs gv;
          Some gs)
      (by_baseline_time all_models)
  in
  let _, mx = Perf.Stats.min_max gains in
  Fmt.pr "@.geomean scalar LUT gain: %.2fx; max %.2fx   [paper: reaches >6x]@."
    (geo gains) mx

let icc_ablation () =
  hr ();
  Fmt.pr "Section 5: icc 'omp simd' auto-vectorization comparison point@.";
  Fmt.pr "(vector arithmetic, serialized math calls, AoS gathers),@.";
  Fmt.pr "AVX-512, geomean over 1..32 threads.@.";
  hr ();
  let icc_cfg = Codegen.Config.autovec ~width:8 in
  let sp cfg e =
    geo (List.map (fun n -> seconds (base e) n /. seconds (gen cfg e) n) threads_axis)
  in
  let sp_icc = geo (List.map (sp icc_cfg) all_models) in
  let sp_mlir = geo (List.map (sp (Codegen.Config.mlir ~width:8)) all_models) in
  Fmt.pr "icc-style auto-vectorization: %.2fx   [paper: 2.19x]@." sp_icc;
  Fmt.pr "limpetMLIR:                   %.2fx   [paper: 3.37x]@." sp_mlir

let spline_ablation () =
  hr ();
  Fmt.pr "Extension (paper section 7 future work): cubic spline vs linear@.";
  Fmt.pr "LUT interpolation.  Accuracy: worst error of the interpolated@.";
  Fmt.pr "HodgkinHuxley rate-function columns over a fine Vm sweep, at@.";
  Fmt.pr "several table steps.  Cost from the machine model at the paper's@.";
  Fmt.pr "0.05 mV step, 1 thread AVX-512.@.";
  hr ();
  let e = Models.Registry.find_exn "HodgkinHuxley" in
  let g = mlir 8 e in
  let plan = List.hd g.Codegen.Kernel.lut_plans in
  let columns =
    List.map
      (fun (c : Easyml.Lut_cones.column) x ->
        Easyml.Lut_cones.eval_column ~dt:0.01 plan c x)
      plan.Easyml.Lut_cones.columns
    |> Array.of_list
  in
  let ncols = Array.length columns in
  let worst interp step =
    let t = Runtime.Lut.build ~lo:(-90.0) ~hi:60.0 ~step columns in
    let row = Float.Array.make ncols 0.0 in
    let w = ref 0.0 in
    for i = 0 to 3000 do
      let x = -85.0 +. (140.0 *. float_of_int i /. 3000.0) in
      interp t x ~row;
      Array.iteri
        (fun c col ->
          let exact = col x in
          let err =
            Float.abs (Float.Array.get row c -. exact)
            /. (1.0 +. Float.abs exact)
          in
          w := Float.max !w err)
        columns
    done;
    !w
  in
  Fmt.pr "%10s %14s %14s %9s@." "step(mV)" "linear err" "cubic err" "ratio";
  List.iter
    (fun step ->
      let el = worst Runtime.Lut.interp_row step in
      let ec = worst Runtime.Lut.interp_row_cubic step in
      Fmt.pr "%10g %14.3e %14.3e %8.0fx@." step el ec (el /. ec))
    [ 2.0; 1.0; 0.5; 0.1 ];
  let t_lin = seconds g 1 in
  let t_cub =
    seconds (gen { (Codegen.Config.mlir ~width:8) with lut_spline = true } e) 1
  in
  Fmt.pr "@.modelled kernel cost at the 0.05 mV step: linear %.1f s, cubic %.1f s@."
    t_lin t_cub;
  Fmt.pr "(%.2fx).  Cubic buys ~100-1000x column accuracy, so tables can be@."
    (t_cub /. t_lin);
  Fmt.pr "an order of magnitude coarser (smaller, more cache-resident) at@.";
  Fmt.pr "equal accuracy — the trade the paper's future-work section names.@."

(* ------------------------------------------------------------------ *)
(* Real wall-clock measurements through the execution engine            *)
(* ------------------------------------------------------------------ *)

let wallclock () =
  hr ();
  Fmt.pr "Wall-clock microbenchmarks (bechamel): real execution of the@.";
  Fmt.pr "generated kernels through the closure engine on this host.@.";
  Fmt.pr "One Test.make pair per figure-equivalent comparison.@.";
  hr ();
  let wc_cells = 512 in
  let mk_driver g = Sim.Driver.create g ~ncells:wc_cells ~dt:0.01 in
  let reps =
    [
      ("fig2_small_MitchellSchaeffer", "MitchellSchaeffer");
      ("fig2_medium_LuoRudy91", "LuoRudy91");
      ("fig2_large_TenTusscher", "TenTusscher");
      ("fig6_compute_GrandiPanditVoigt", "GrandiPanditVoigt");
    ]
  in
  let tests =
    List.concat_map
      (fun (label, name) ->
        let e = Models.Registry.find_exn name in
        let db = mk_driver (base e) in
        let dv = mk_driver (mlir 8 e) in
        [
          Bechamel.Test.make
            ~name:(label ^ "/baseline")
            (Bechamel.Staged.stage (fun () -> Sim.Driver.compute_stage db));
          Bechamel.Test.make
            ~name:(label ^ "/limpetMLIR")
            (Bechamel.Staged.stage (fun () -> Sim.Driver.compute_stage dv));
        ])
      reps
  in
  let test = Bechamel.Test.make_grouped ~name:"kernels" ~fmt:"%s %s" tests in
  (* the preceding sections leave a large heap behind; compact so GC churn
     does not pollute the measurements *)
  Gc.compact ();
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let time_of label =
    match Hashtbl.find_opt results ("kernels " ^ label) with
    | Some est -> (
        match Analyze.OLS.estimates est with
        | Some [ t ] -> Some t
        | _ -> None)
    | None -> None
  in
  List.iter
    (fun (label, _) ->
      match (time_of (label ^ "/baseline"), time_of (label ^ "/limpetMLIR")) with
      | Some tb, Some tv ->
          Fmt.pr "%-34s baseline %9.1f us  limpetMLIR %9.1f us  speedup %5.2fx@."
            label (tb /. 1e3) (tv /. 1e3) (tb /. tv)
      | _ -> Fmt.pr "%-34s (no estimate)@." label)
    reps;
  Fmt.pr "@.(%d cells per kernel invocation; engine dispatch dominates, so the@."
    wc_cells;
  Fmt.pr "measured ratio reflects the per-op dispatch advantage of vector IR.)@."

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("layout", layout_ablation);
    ("lut", lut_ablation);
    ("icc", icc_ablation);
    ("spline", spline_ablation);
    ("wall", wallclock);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if String.length a > 4 && String.sub a 0 4 = "csv=" then begin
          csv_dir := Some (String.sub a 4 (String.length a - 4));
          false
        end
        else true)
      args
  in
  let todo =
    if args = [] then sections
    else
      List.filter_map
        (fun a ->
          match List.assoc_opt a sections with
          | Some f -> Some (a, f)
          | None ->
              Fmt.epr "unknown section %s (available: %s)@." a
                (String.concat ", " (List.map fst sections));
              None)
        args
  in
  Fmt.pr "limpetMLIR reproduction benchmark harness@.";
  Fmt.pr "workload: %d cells, %d steps of 0.01 ms (paper defaults)@." cells steps;
  Fmt.pr "figures use the calibrated Cascade Lake machine model (DESIGN.md);@.";
  Fmt.pr "the 'wall' section measures real kernel execution on this host.@.@.";
  List.iter (fun (_, f) -> f ()) todo
