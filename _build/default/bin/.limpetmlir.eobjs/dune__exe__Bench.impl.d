bin/bench.ml: Arg Cmd Cmdliner Codegen Float Fmt List Machine Models Perf Sim Term
