bin/bench.mli:
