bin/limpetmlir.ml: Arg Cmd Cmdliner Codegen Easyml Filename Fmt Ir List Machine Models Passes Runtime Sim Sys Term
