bin/limpetmlir.mli:
