examples/compare_integrators.ml: Codegen Easyml Float Fmt List Printf Sim
