examples/compare_integrators.mli:
