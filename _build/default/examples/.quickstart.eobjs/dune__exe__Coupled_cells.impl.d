examples/coupled_cells.ml: Codegen Float Fmt List Models Sim
