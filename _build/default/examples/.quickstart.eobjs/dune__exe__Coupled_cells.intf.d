examples/coupled_cells.mli:
