examples/quickstart.ml: Codegen Easyml Float Fmt Ir List Machine Sim
