examples/quickstart.mli:
