examples/restitution.ml: Array Codegen Float Fmt List Models Option Sim Sys
