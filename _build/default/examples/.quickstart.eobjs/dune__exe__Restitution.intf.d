examples/restitution.mli:
