examples/single_cell_ap.ml: Array Codegen Float Fmt List Models Sim Sys
