examples/single_cell_ap.mli:
