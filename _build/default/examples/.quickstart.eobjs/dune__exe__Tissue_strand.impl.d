examples/tissue_strand.ml: Array Codegen Float Fmt List Models Printf Sim Solver
