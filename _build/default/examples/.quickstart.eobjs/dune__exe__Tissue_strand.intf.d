examples/tissue_strand.mli:
