examples/validate_all.ml: Codegen Easyml Float Fmt Ir List Models Printexc Sim
