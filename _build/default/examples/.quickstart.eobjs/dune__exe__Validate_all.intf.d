examples/validate_all.mli:
