lib/codegen/config.ml: Printf Runtime
