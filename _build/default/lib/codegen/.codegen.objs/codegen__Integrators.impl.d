lib/codegen/integrators.ml: Ast Deriv Easyml Eval Fold Linearity Model Stdlib
