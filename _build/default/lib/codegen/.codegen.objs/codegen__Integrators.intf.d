lib/codegen/integrators.mli: Easyml
