lib/codegen/kernel.ml: Builder Config Easyml Fun Func Integrators Ir List Lower Passes Runtime String Ty Value
