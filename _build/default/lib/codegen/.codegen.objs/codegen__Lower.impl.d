lib/codegen/lower.ml: Builder Easyml Fmt Hashtbl Ir List Op Value
