lib/codegen/lower.mli: Easyml Format Ir
