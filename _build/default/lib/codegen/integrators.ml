(** Integration-method lowering (paper §3.3.2, "Integration methods").

    Each method is expressed as an *update expression*: an EasyML AST that
    computes the state's next value from the current states, externals, [dt]
    and [t].  Building updates as ASTs (rather than emitting IR directly)
    keeps a single expression-lowering path, lets the lookup-table planner
    see integrator coefficients (so Rush–Larsen exponentials are tabulated,
    as openCARP does), and makes every method testable against the
    reference AST evaluator. *)

open Easyml

let num f = Ast.Num f
let var x = Ast.Var x
let ( + ) a b = Ast.Binary (Ast.Add, a, b)
let ( - ) a b = Ast.Binary (Ast.Sub, a, b)
let ( * ) a b = Ast.Binary (Ast.Mul, a, b)
let ( / ) a b = Ast.Binary (Ast.Div, a, b)
let neg a = Ast.Unary (Ast.Neg, a)
let call f args = Ast.Call (f, args)
let dt = var "dt"

(* Substitute the state variable by an arbitrary expression in f: the
   "re-evaluate f at an intermediate state" step of the multi-stage
   methods (Listing 2 lines 17-26 for rk2). *)
let f_at (sv : Model.state_var) (y_expr : Ast.expr) : Ast.expr =
  Ast.subst ~x:sv.Model.sv_name ~by:y_expr sv.Model.sv_diff

(* Threshold below which the Rush–Larsen linear coefficient is considered
   zero and the update degrades to forward Euler (avoids 0/0). *)
let rl_eps = 1e-10

let forward_euler (sv : Model.state_var) : Ast.expr =
  let y = var sv.Model.sv_name in
  y + (dt * sv.sv_diff)

let rk2 (sv : Model.state_var) : Ast.expr =
  let y = var sv.Model.sv_name in
  (* midpoint method: y + dt * f(y + dt/2 * f(y)) *)
  let y_mid = y + (dt / num 2.0 * sv.sv_diff) in
  y + (dt * f_at sv y_mid)

let rk4 (sv : Model.state_var) : Ast.expr =
  let y = var sv.Model.sv_name in
  let k1 = sv.sv_diff in
  let k2 = f_at sv (y + (dt / num 2.0 * k1)) in
  let k3 = f_at sv (y + (dt / num 2.0 * k2)) in
  let k4 = f_at sv (y + (dt * k3)) in
  y + (dt / num 6.0 * (k1 + (num 2.0 * k2) + (num 2.0 * k3) + k4))

(* Exact exponential update for an affine derivative f = a + b*y:
     y' = -a/b + (y + a/b) * exp(b*dt)
   guarded against |b| ~ 0 where it degrades to forward Euler. *)
let rush_larsen_update ~(a : Ast.expr) ~(b : Ast.expr) ~(y : Ast.expr)
    ~(h : Ast.expr) : Ast.expr =
  let guard = Ast.Binary (Ast.Lt, call "fabs" [ b ], num rl_eps) in
  let fe = y + (h * (a + (b * y))) in
  let yinf = neg (a / b) in
  let expo = call "exp" [ b * h ] in
  Ast.Ternary (guard, fe, yinf + ((y - yinf) * expo))

let rush_larsen (sv : Model.state_var) : Ast.expr =
  match sv.Model.sv_affine with
  | None ->
      (* sema guarantees RL states carry a decomposition; stay safe *)
      forward_euler sv
  | Some { Linearity.a; b } ->
      rush_larsen_update ~a ~b ~y:(var sv.Model.sv_name) ~h:dt

(* Sundnes et al. 2009: second-order generalized Rush–Larsen.  Linearize f
   around the forward-half-step point ŷ = y + dt/2·f(y):
     b̂ = f'(ŷ),  â = f(ŷ) - b̂·ŷ,
   then apply the exponential update with the midpoint linearization. *)
let sundnes (sv : Model.state_var) : Ast.expr =
  let name = sv.Model.sv_name in
  let y = var name in
  let y_half = y + (dt / num 2.0 * sv.sv_diff) in
  let fprime = Deriv.diff ~wrt:name sv.sv_diff in
  let b_hat = Ast.subst ~x:name ~by:y_half fprime in
  let a_hat = f_at sv y_half - (b_hat * y_half) in
  rush_larsen_update ~a:a_hat ~b:b_hat ~y ~h:dt

(* Backward-Euler (implicit) with Newton refinement, clamped to [0, 1]
   between iterations — the method openCARP uses for Markov-chain state
   occupancies where probabilities must stay in [0, 1]. *)
let markov_be_refinements = 2

let clamp01 (e : Ast.expr) : Ast.expr =
  call "max" [ num 0.0; call "min" [ num 1.0; e ] ]

let markov_be (sv : Model.state_var) : Ast.expr =
  let name = sv.Model.sv_name in
  let y = var name in
  let fprime = Deriv.diff ~wrt:name sv.sv_diff in
  (* predictor: forward Euler, clamped *)
  let rec refine (yk : Ast.expr) (iters : int) : Ast.expr =
    if iters = 0 then yk
    else
      (* Newton step on g(z) = z - y - dt*f(z):
           z' = z - (z - y - dt*f(z)) / (1 - dt*f'(z)) *)
      let fz = Ast.subst ~x:name ~by:yk sv.sv_diff in
      let fpz = Ast.subst ~x:name ~by:yk fprime in
      let z' = yk - ((yk - y - (dt * fz)) / (num 1.0 - (dt * fpz))) in
      refine (clamp01 z') (Stdlib.( - ) iters 1)
  in
  refine (clamp01 (y + (dt * sv.sv_diff))) markov_be_refinements

(** The update expression for a state variable under its declared method. *)
let update_expr (sv : Model.state_var) : Ast.expr =
  let e =
    match sv.Model.sv_method with
    | Model.FE -> forward_euler sv
    | Model.RK2 -> rk2 sv
    | Model.RK4 -> rk4 sv
    | Model.RushLarsen -> rush_larsen sv
    | Model.Sundnes -> sundnes sv
    | Model.MarkovBE -> markov_be sv
  in
  Fold.fold_alist [] e

(** Reference evaluation of one update, used by tests: next value of [sv]
    given bindings for every state, external, dt and t. *)
let eval_update (sv : Model.state_var) (env : (string * float) list) : float =
  Eval.eval_alist env (update_expr sv)
