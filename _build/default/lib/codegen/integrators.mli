(** Integration-method lowering (paper §3.3.2): each method is built as an
    *update expression* — an EasyML AST computing the state's next value —
    so one lowering path serves all methods, the LUT planner sees
    integrator coefficients (Rush-Larsen exponentials are tabulated), and
    every method is testable against the reference evaluator. *)

val rl_eps : float
(** |b| threshold under which Rush-Larsen degrades to forward Euler. *)

val markov_be_refinements : int
(** Newton refinement steps of the implicit markov_be update. *)

val forward_euler : Easyml.Model.state_var -> Easyml.Ast.expr
val rk2 : Easyml.Model.state_var -> Easyml.Ast.expr
val rk4 : Easyml.Model.state_var -> Easyml.Ast.expr
val rush_larsen : Easyml.Model.state_var -> Easyml.Ast.expr
val sundnes : Easyml.Model.state_var -> Easyml.Ast.expr
val markov_be : Easyml.Model.state_var -> Easyml.Ast.expr

val rush_larsen_update :
  a:Easyml.Ast.expr ->
  b:Easyml.Ast.expr ->
  y:Easyml.Ast.expr ->
  h:Easyml.Ast.expr ->
  Easyml.Ast.expr
(** The exact exponential update for an affine derivative, guarded at
    [|b| < rl_eps]. *)

val update_expr : Easyml.Model.state_var -> Easyml.Ast.expr
(** The (folded) update expression under the state's declared method. *)

val eval_update : Easyml.Model.state_var -> (string * float) list -> float
