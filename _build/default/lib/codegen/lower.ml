(** Expression lowering: EasyML AST → IR ops.

    A single lowering path serves both the scalar baseline and the vector
    limpetMLIR generator: the only difference is the width of the values
    bound in the environment.  Conditionals become [arith.select] over both
    evaluated branches (the SIMD-friendly if-conversion the paper discusses
    in §5); logical operators are therefore non-short-circuiting, which is
    sound for the arithmetic guards ionic models use. *)

open Ir

exception Lower_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Lower_error s)) fmt

type env = {
  lookup : string -> Value.t option;  (** variable bindings *)
  width : int;  (** width of the values being computed *)
  b : Builder.t;
}

let make_env ~(b : Builder.t) ~(width : int)
    (bindings : (string * Value.t) list) : env =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bindings;
  { lookup = Hashtbl.find_opt tbl; width; b }

let bind (env : env) (extra : (string * Value.t) list) : env =
  let prev = env.lookup in
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) extra;
  {
    env with
    lookup =
      (fun name ->
        match Hashtbl.find_opt tbl name with
        | Some v -> Some v
        | None -> prev name);
  }

(* Lower a float constant at the environment's width. *)
let const (env : env) (f : float) : Value.t =
  let c = Builder.constf env.b f in
  Builder.broadcast env.b ~width:env.width c

let rec lower_num (env : env) (e : Easyml.Ast.expr) : Value.t =
  let open Easyml.Ast in
  match e with
  | Num f -> const env f
  | Var x -> (
      match env.lookup x with
      | Some v -> v
      | None -> fail "lower: unbound variable %s" x)
  | Unary (Neg, a) -> Builder.negf env.b (lower_num env a)
  | Unary (Not, _) | Binary ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) ->
      (* boolean used as a number: 1.0 / 0.0, C-style *)
      let c = lower_bool env e in
      Builder.select env.b c (const env 1.0) (const env 0.0)
  | Binary (Add, a, b) -> Builder.addf env.b (lower_num env a) (lower_num env b)
  | Binary (Sub, a, b) -> Builder.subf env.b (lower_num env a) (lower_num env b)
  | Binary (Mul, a, b) -> Builder.mulf env.b (lower_num env a) (lower_num env b)
  | Binary (Div, a, b) -> Builder.divf env.b (lower_num env a) (lower_num env b)
  | Call ("min", [ a; b ]) | Call ("fmin", [ a; b ]) ->
      Builder.minf env.b (lower_num env a) (lower_num env b)
  | Call ("max", [ a; b ]) | Call ("fmax", [ a; b ]) ->
      Builder.maxf env.b (lower_num env a) (lower_num env b)
  | Call (f, args) -> Builder.math env.b f (List.map (lower_num env) args)
  | Ternary (c, t, f) ->
      let cv = lower_bool env c in
      let tv = lower_num env t and fv = lower_num env f in
      Builder.select env.b cv tv fv

and lower_bool (env : env) (e : Easyml.Ast.expr) : Value.t =
  let open Easyml.Ast in
  match e with
  | Binary (Lt, a, b) -> Builder.cmpf env.b Op.Lt (lower_num env a) (lower_num env b)
  | Binary (Le, a, b) -> Builder.cmpf env.b Op.Le (lower_num env a) (lower_num env b)
  | Binary (Gt, a, b) -> Builder.cmpf env.b Op.Gt (lower_num env a) (lower_num env b)
  | Binary (Ge, a, b) -> Builder.cmpf env.b Op.Ge (lower_num env a) (lower_num env b)
  | Binary (Eq, a, b) -> Builder.cmpf env.b Op.Eq (lower_num env a) (lower_num env b)
  | Binary (Ne, a, b) -> Builder.cmpf env.b Op.Ne (lower_num env a) (lower_num env b)
  | Binary (And, a, b) -> Builder.andb env.b (lower_bool env a) (lower_bool env b)
  | Binary (Or, a, b) -> Builder.orb env.b (lower_bool env a) (lower_bool env b)
  | Unary (Not, a) -> Builder.notb env.b (lower_bool env a)
  | Ternary (c, t, f) ->
      let cv = lower_bool env c in
      Builder.select env.b cv (lower_bool env t) (lower_bool env f)
  | e ->
      (* numeric value used as a condition: e != 0.0 *)
      let v = lower_num env e in
      Builder.cmpf env.b Op.Ne v (const env 0.0)
