(** Expression lowering: EasyML AST -> IR ops, width-polymorphic (the same
    path serves scalar and vector code generation; conditionals become
    [arith.select] over both branches). *)

exception Lower_error of string

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Lower_error} with a formatted message. *)

type env = {
  lookup : string -> Ir.Value.t option;
  width : int;
  b : Ir.Builder.t;
}

val make_env :
  b:Ir.Builder.t -> width:int -> (string * Ir.Value.t) list -> env

val bind : env -> (string * Ir.Value.t) list -> env
(** Extend with additional bindings (shadowing). *)

val const : env -> float -> Ir.Value.t
(** A literal at the environment's width. *)

val lower_num : env -> Easyml.Ast.expr -> Ir.Value.t
(** Lower as a numeric value (booleans become 1.0/0.0 selects). *)

val lower_bool : env -> Easyml.Ast.expr -> Ir.Value.t
(** Lower as an i1-like condition (numbers compare against 0.0). *)
