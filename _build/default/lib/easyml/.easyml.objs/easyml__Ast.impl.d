lib/easyml/ast.ml: Float Fmt Hashtbl List Loc String
