lib/easyml/builtins.ml: Array Float Hashtbl List Printf String
