lib/easyml/builtins.mli:
