lib/easyml/deriv.ml: Ast Eval Float Fold List Printf String
