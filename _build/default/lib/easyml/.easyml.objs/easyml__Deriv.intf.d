lib/easyml/deriv.mli: Ast
