lib/easyml/eval.ml: Array Ast Builtins List
