lib/easyml/eval.mli: Ast
