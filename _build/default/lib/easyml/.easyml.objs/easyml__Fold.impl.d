lib/easyml/fold.ml: Ast Builtins Eval Float Hashtbl List
