lib/easyml/fold.mli: Ast Hashtbl
