lib/easyml/lexer.ml: Buffer List Loc Printf String Token
