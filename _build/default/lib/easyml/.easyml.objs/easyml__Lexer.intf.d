lib/easyml/lexer.mli: Loc Token
