lib/easyml/linearity.ml: Ast Deriv Eval Float Fold List
