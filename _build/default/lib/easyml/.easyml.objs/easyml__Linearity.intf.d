lib/easyml/linearity.mli: Ast
