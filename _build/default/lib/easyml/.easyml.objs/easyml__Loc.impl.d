lib/easyml/loc.ml: Fmt
