lib/easyml/lut_cones.ml: Ast Builtins Eval List Model Printf Set String
