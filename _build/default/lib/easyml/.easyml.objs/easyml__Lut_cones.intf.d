lib/easyml/lut_cones.mli: Ast Model
