lib/easyml/mmt.ml: Ast Buffer Fmt Hashtbl Linearity List Model Option Parser Sema String
