lib/easyml/mmt.mli: Ast Model
