lib/easyml/model.ml: Ast Float Fmt Linearity List Option String
