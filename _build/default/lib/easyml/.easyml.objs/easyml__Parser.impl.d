lib/easyml/parser.ml: Ast Fmt Lexer List Loc Token
