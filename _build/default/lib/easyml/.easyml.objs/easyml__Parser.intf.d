lib/easyml/parser.mli: Ast Loc
