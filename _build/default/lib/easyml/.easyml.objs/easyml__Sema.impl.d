lib/easyml/sema.ml: Ast Builtins Fmt Fold Hashtbl Linearity List Loc Map Model Option Parser Set String
