lib/easyml/sema.mli: Ast Model
