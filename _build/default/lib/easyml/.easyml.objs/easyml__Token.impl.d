lib/easyml/token.ml: Loc Printf
