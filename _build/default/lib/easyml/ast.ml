(** Abstract syntax of the EasyML ionic-model DSL.

    EasyML (the openCARP markup language) is not Turing complete: it has no
    loops, only straight-line variable definitions, conditional statements,
    and markup annotations that steer code generation.  Variables named
    [diff_X] define the time derivative of state variable [X]; [X_init]
    defines its initial value.  Markup statements such as [.external()],
    [.param()], [.lookup(lo,hi,step)] and [.method(rk2)] attach properties to
    the most recently named variable. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type unop = Neg | Not

type expr =
  | Num of float
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list
  | Ternary of expr * expr * expr  (** [cond ? e1 : e2] *)

(** Markup annotations, attached to a variable. *)
type markup =
  | External  (** value lives outside the cell state (e.g. Vm, Iion) *)
  | Nodal  (** one value per mesh node; informational in this port *)
  | Regional  (** one value per region; informational in this port *)
  | Param  (** model parameter, compile-time constant by default *)
  | Lookup of float * float * float  (** [.lookup(lo, hi, step)] *)
  | Method of string  (** integration method name, e.g. [.method(rk2)] *)
  | Units of string  (** unit annotation; informational *)
  | Trace  (** request tracing of the variable; informational *)
  | Store  (** persist the variable in the state even if not a diff var *)

type stmt =
  | Decl of Loc.t * string  (** bare declaration [x;] *)
  | Assign of Loc.t * string * expr  (** [x = e;] *)
  | MarkupOn of Loc.t * string * markup  (** markup applied to a variable *)
  | If of Loc.t * (expr * stmt list) list * stmt list
      (** [if/elif/else]; branches carry their guard, last list is [else] *)

type program = stmt list

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

let unop_name = function Neg -> "-" | Not -> "!"

(* Precedence levels used by both the parser and the printer so that
   printed output re-parses to the same tree. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div -> 6

let rec pp_expr_prec prec ppf e =
  match e with
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e16 then
        Fmt.pf ppf "%.1f" f
      else Fmt.pf ppf "%.17g" f
  | Var s -> Fmt.string ppf s
  | Unary (op, e) -> Fmt.pf ppf "%s%a" (unop_name op) (pp_expr_prec 8) e
  | Binary (op, a, b) ->
      let p = binop_prec op in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_expr_prec p) a (binop_name op)
          (pp_expr_prec (p + 1)) b
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Call (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") (pp_expr_prec 0)) args
  | Ternary (c, t, f) ->
      let body ppf () =
        Fmt.pf ppf "%a ? %a : %a" (pp_expr_prec 1) c (pp_expr_prec 0) t
          (pp_expr_prec 0) f
      in
      if prec > 0 then Fmt.pf ppf "(%a)" body () else body ppf ()

let pp_expr = pp_expr_prec 0
let expr_to_string e = Fmt.str "%a" pp_expr e

let pp_markup ppf = function
  | External -> Fmt.string ppf ".external()"
  | Nodal -> Fmt.string ppf ".nodal()"
  | Regional -> Fmt.string ppf ".regional()"
  | Param -> Fmt.string ppf ".param()"
  | Lookup (lo, hi, step) -> Fmt.pf ppf ".lookup(%g,%g,%g)" lo hi step
  | Method m -> Fmt.pf ppf ".method(%s)" m
  | Units u -> Fmt.pf ppf ".units(%s)" u
  | Trace -> Fmt.string ppf ".trace()"
  | Store -> Fmt.string ppf ".store()"

let rec pp_stmt ppf = function
  | Decl (_, x) -> Fmt.pf ppf "%s;" x
  | Assign (_, x, e) -> Fmt.pf ppf "%s = %a;" x pp_expr e
  | MarkupOn (_, x, m) -> Fmt.pf ppf "%s; %a;" x pp_markup m
  | If (_, branches, els) ->
      List.iteri
        (fun i (c, body) ->
          Fmt.pf ppf "%s (%a) {@[<v 2>@,%a@]@,} " (if i = 0 then "if" else "elif")
            pp_expr c
            (Fmt.list ~sep:Fmt.cut pp_stmt)
            body)
        branches;
      if els <> [] then
        Fmt.pf ppf "else {@[<v 2>@,%a@]@,}" (Fmt.list ~sep:Fmt.cut pp_stmt) els

let pp_program = Fmt.list ~sep:Fmt.cut pp_stmt

(** Free variables of an expression, in first-occurrence order. *)
let free_vars (e : expr) : string list =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Num _ -> ()
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          acc := v :: !acc
        end
    | Unary (_, e) -> go e
    | Binary (_, a, b) ->
        go a;
        go b
    | Call (_, args) -> List.iter go args
    | Ternary (a, b, c) ->
        go a;
        go b;
        go c
  in
  go e;
  List.rev !acc

(** Substitute [Var x] by [by] everywhere in [e]. *)
let rec subst ~(x : string) ~(by : expr) (e : expr) : expr =
  match e with
  | Num _ -> e
  | Var v -> if String.equal v x then by else e
  | Unary (op, a) -> Unary (op, subst ~x ~by a)
  | Binary (op, a, b) -> Binary (op, subst ~x ~by a, subst ~x ~by b)
  | Call (f, args) -> Call (f, List.map (subst ~x ~by) args)
  | Ternary (a, b, c) -> Ternary (subst ~x ~by a, subst ~x ~by b, subst ~x ~by c)

(** Structural equality (floats compared bitwise via [Float.equal]). *)
let rec equal_expr (a : expr) (b : expr) : bool =
  match (a, b) with
  | Num x, Num y -> Float.equal x y
  | Var x, Var y -> String.equal x y
  | Unary (o1, e1), Unary (o2, e2) -> o1 = o2 && equal_expr e1 e2
  | Binary (o1, a1, b1), Binary (o2, a2, b2) ->
      o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Call (f1, l1), Call (f2, l2) ->
      String.equal f1 f2
      && List.length l1 = List.length l2
      && List.for_all2 equal_expr l1 l2
  | Ternary (a1, b1, c1), Ternary (a2, b2, c2) ->
      equal_expr a1 a2 && equal_expr b1 b2 && equal_expr c1 c2
  | _ -> false

(** Number of nodes, used as a crude size metric by tests and heuristics. *)
let rec size (e : expr) : int =
  match e with
  | Num _ | Var _ -> 1
  | Unary (_, a) -> 1 + size a
  | Binary (_, a, b) -> 1 + size a + size b
  | Call (_, args) -> 1 + List.fold_left (fun n a -> n + size a) 0 args
  | Ternary (a, b, c) -> 1 + size a + size b + size c
