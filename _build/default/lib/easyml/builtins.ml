(** Built-in mathematical functions recognized by EasyML.

    openCARP's limpet frontend exposes the C math library plus a couple of
    conveniences ([square], [cube]).  We record the arity for semantic checks
    and a reference OCaml implementation used by the constant folder, the AST
    evaluator and lookup-table construction. *)

type t = {
  name : string;
  arity : int;
  eval : float array -> float;
  flops : int;
      (** cost in "equivalent floating point operations", used by the
          machine model; transcendental functions count for many flops *)
}

let table : (string, t) Hashtbl.t = Hashtbl.create 64

let register name arity flops eval =
  Hashtbl.replace table name { name; arity; eval; flops }

let () =
  register "square" 1 1 (fun a -> a.(0) *. a.(0));
  register "cube" 1 2 (fun a -> a.(0) *. a.(0) *. a.(0));
  register "exp" 1 20 (fun a -> Float.exp a.(0));
  register "expm1" 1 20 (fun a -> Float.expm1 a.(0));
  register "log" 1 20 (fun a -> Float.log a.(0));
  register "log1p" 1 20 (fun a -> Float.log1p a.(0));
  register "log10" 1 20 (fun a -> Float.log10 a.(0));
  register "log2" 1 20 (fun a -> Float.log2 a.(0));
  register "sqrt" 1 4 (fun a -> Float.sqrt a.(0));
  register "cbrt" 1 20 (fun a -> Float.cbrt a.(0));
  register "pow" 2 40 (fun a -> Float.pow a.(0) a.(1));
  register "fabs" 1 1 (fun a -> Float.abs a.(0));
  register "abs" 1 1 (fun a -> Float.abs a.(0));
  register "floor" 1 1 (fun a -> Float.floor a.(0));
  register "ceil" 1 1 (fun a -> Float.ceil a.(0));
  register "round" 1 1 (fun a -> Float.round a.(0));
  register "trunc" 1 1 (fun a -> Float.trunc a.(0));
  register "sin" 1 20 (fun a -> Float.sin a.(0));
  register "cos" 1 20 (fun a -> Float.cos a.(0));
  register "tan" 1 25 (fun a -> Float.tan a.(0));
  register "tanh" 1 25 (fun a -> Float.tanh a.(0));
  register "sinh" 1 25 (fun a -> Float.sinh a.(0));
  register "cosh" 1 25 (fun a -> Float.cosh a.(0));
  register "asin" 1 25 (fun a -> Float.asin a.(0));
  register "acos" 1 25 (fun a -> Float.acos a.(0));
  register "atan" 1 25 (fun a -> Float.atan a.(0));
  register "atan2" 2 30 (fun a -> Float.atan2 a.(0) a.(1));
  register "fmod" 2 8 (fun a -> Float.rem a.(0) a.(1));
  register "min" 2 1 (fun a -> Float.min a.(0) a.(1));
  register "max" 2 1 (fun a -> Float.max a.(0) a.(1));
  register "fmin" 2 1 (fun a -> Float.min a.(0) a.(1));
  register "fmax" 2 1 (fun a -> Float.max a.(0) a.(1));
  register "hypot" 2 10 (fun a -> Float.hypot a.(0) a.(1))

let find (name : string) : t option = Hashtbl.find_opt table name
let mem (name : string) : bool = Hashtbl.mem table name

let arity_exn (name : string) : int =
  match find name with
  | Some b -> b.arity
  | None -> invalid_arg ("Builtins.arity_exn: unknown function " ^ name)

let eval_exn (name : string) (args : float array) : float =
  match find name with
  | Some b ->
      if Array.length args <> b.arity then
        invalid_arg
          (Printf.sprintf "Builtins.eval_exn: %s expects %d args, got %d" name
             b.arity (Array.length args))
      else b.eval args
  | None -> invalid_arg ("Builtins.eval_exn: unknown function " ^ name)

let all () : t list =
  Hashtbl.fold (fun _ b acc -> b :: acc) table []
  |> List.sort (fun a b -> String.compare a.name b.name)
