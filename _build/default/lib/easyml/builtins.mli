(** Built-in mathematical functions recognized by EasyML (the C math
    library plus openCARP's [square]/[cube] conveniences). *)

type t = {
  name : string;
  arity : int;
  eval : float array -> float;
  flops : int;
      (** cost in equivalent flops, used by the machine model and the
          lookup-table "expensive" heuristic *)
}

val find : string -> t option
val mem : string -> bool
val arity_exn : string -> int
val eval_exn : string -> float array -> float
val all : unit -> t list
(** All builtins, sorted by name. *)
