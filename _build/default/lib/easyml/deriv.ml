(** Symbolic differentiation of EasyML expressions.

    Used by the Rush–Larsen / Sundnes lowering (which needs ∂f/∂y of a gate's
    derivative expression) and by the markov_be Newton refinement.  Ternaries
    differentiate branch-wise (the guard is treated as constant w.r.t. the
    variable, which matches how openCARP linearizes gating equations). *)

exception Not_differentiable of string

let zero = Ast.Num 0.0
let one = Ast.Num 1.0
let is_zero = function Ast.Num 0.0 -> true | _ -> false
let is_one = function Ast.Num 1.0 -> true | _ -> false

(* Smart constructors that elide the structural zeros/ones the product and
   chain rules introduce.  Folding [e * 0 -> 0] here is deliberate even
   though it is not IEEE-safe in general: derivatives of terms that do not
   mention the variable are *structurally* zero, and keeping the dead factor
   would defeat the affine-in-y analysis Rush–Larsen depends on (openCARP's
   limpet frontend simplifies the same way). *)
let ( + ) a b = if is_zero a then b else if is_zero b then a else Ast.Binary (Ast.Add, a, b)
let ( - ) a b =
  if is_zero b then a
  else if is_zero a then Ast.Unary (Ast.Neg, b)
  else Ast.Binary (Ast.Sub, a, b)
let ( * ) a b =
  if is_zero a || is_zero b then zero
  else if is_one a then b
  else if is_one b then a
  else Ast.Binary (Ast.Mul, a, b)
let ( / ) a b = if is_zero a then zero else Ast.Binary (Ast.Div, a, b)
let neg a = if is_zero a then zero else Ast.Unary (Ast.Neg, a)
let call f args = Ast.Call (f, args)

(* Equal branches make the guard irrelevant (EasyML guards are pure); this
   lets the structural zeros inside guarded rate functions reach the
   zero-eliding constructors above. *)
let tern c a b = if Ast.equal_expr a b then a else Ast.Ternary (c, a, b)

let rec d (x : string) (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Num _ -> zero
  | Ast.Var v -> if String.equal v x then one else zero
  | Ast.Unary (Ast.Neg, a) -> neg (d x a)
  | Ast.Unary (Ast.Not, _) -> zero
  | Ast.Binary (op, a, b) -> (
      match op with
      | Ast.Add -> d x a + d x b
      | Ast.Sub -> d x a - d x b
      | Ast.Mul -> (d x a * b) + (a * d x b)
      | Ast.Div -> ((d x a * b) - (a * d x b)) / (b * b)
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.And | Ast.Or
        ->
          (* boolean results are piecewise constant *)
          zero)
  | Ast.Ternary (c, t, f) -> tern c (d x t) (d x f)
  | Ast.Call (f, args) -> (
      let chain inner outer = outer * d x inner in
      match (f, args) with
      | "square", [ a ] -> chain a (Ast.Num 2.0 * a)
      | "cube", [ a ] -> chain a (Ast.Num 3.0 * a * a)
      | "exp", [ a ] -> chain a (call "exp" [ a ])
      | "expm1", [ a ] -> chain a (call "exp" [ a ])
      | "log", [ a ] -> chain a (one / a)
      | "log1p", [ a ] -> chain a (one / (one + a))
      | "log10", [ a ] -> chain a (one / (a * Ast.Num (Float.log 10.)))
      | "log2", [ a ] -> chain a (one / (a * Ast.Num (Float.log 2.)))
      | "sqrt", [ a ] -> chain a (one / (Ast.Num 2.0 * call "sqrt" [ a ]))
      | "cbrt", [ a ] ->
          chain a (one / (Ast.Num 3.0 * call "cbrt" [ a ] * call "cbrt" [ a ]))
      | "sin", [ a ] -> chain a (call "cos" [ a ])
      | "cos", [ a ] -> chain a (neg (call "sin" [ a ]))
      | "tan", [ a ] ->
          chain a (one + (call "tan" [ a ] * call "tan" [ a ]))
      | "tanh", [ a ] ->
          chain a (one - (call "tanh" [ a ] * call "tanh" [ a ]))
      | "sinh", [ a ] -> chain a (call "cosh" [ a ])
      | "cosh", [ a ] -> chain a (call "sinh" [ a ])
      | "asin", [ a ] -> chain a (one / call "sqrt" [ one - (a * a) ])
      | "acos", [ a ] -> chain a (neg (one / call "sqrt" [ one - (a * a) ]))
      | "atan", [ a ] -> chain a (one / (one + (a * a)))
      | "fabs", [ a ] | "abs", [ a ] ->
          chain a (Ast.Ternary (Ast.Binary (Ast.Ge, a, zero), one, neg one))
      | "floor", [ _ ] | "ceil", [ _ ] | "round", [ _ ] | "trunc", [ _ ] -> zero
      | "pow", [ a; b ] ->
          (* d(a^b) = a^b * (b' ln a + b a'/a) *)
          call "pow" [ a; b ]
          * ((d x b * call "log" [ a ]) + (b * d x a / a))
      | "min", [ a; b ] | "fmin", [ a; b ] ->
          tern (Ast.Binary (Ast.Le, a, b)) (d x a) (d x b)
      | "max", [ a; b ] | "fmax", [ a; b ] ->
          tern (Ast.Binary (Ast.Ge, a, b)) (d x a) (d x b)
      | "atan2", [ a; b ] ->
          (((d x a * b) - (a * d x b)) / ((a * a) + (b * b)))
      | "hypot", [ a; b ] ->
          (((a * d x a) + (b * d x b)) / call "hypot" [ a; b ])
      | "fmod", [ a; _ ] -> d x a
      | _, _ ->
          raise
            (Not_differentiable
               (Printf.sprintf "cannot differentiate call to %s/%d" f
                  (List.length args))))

(** [diff ~wrt e] returns ∂e/∂wrt, folded to remove the zero terms the
    product/chain rules introduce. *)
let diff ~(wrt : string) (e : Ast.expr) : Ast.expr = Fold.fold_alist [] (d wrt e)

(** Central-difference numerical derivative, used by tests to validate the
    symbolic result. *)
let numeric ~(wrt : string) (env : (string * float) list) (e : Ast.expr)
    ~(at : float) ~(h : float) : float =
  let ev v = Eval.eval_alist ((wrt, v) :: List.remove_assoc wrt env) e in
  (ev (at +. h) -. ev (at -. h)) /. (2.0 *. h)
