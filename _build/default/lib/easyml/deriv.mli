(** Symbolic differentiation of EasyML expressions, used by the
    Rush-Larsen/Sundnes lowering and markov_be's Newton refinement. *)

exception Not_differentiable of string

val diff : wrt:string -> Ast.expr -> Ast.expr
(** ∂e/∂wrt, with structural zeros elided and ternary guards treated as
    constant w.r.t. the variable (how openCARP linearizes gates).
    @raise Not_differentiable for calls with no derivative rule. *)

val numeric :
  wrt:string ->
  (string * float) list ->
  Ast.expr ->
  at:float ->
  h:float ->
  float
(** Central-difference derivative, for validating the symbolic result. *)
