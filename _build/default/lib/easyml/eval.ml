(** Reference evaluator for EasyML expressions.

    Used by the constant-folding preprocessor, the lookup-table builder, the
    differential tests against the IR execution engines, and the property
    tests.  Booleans follow C semantics: comparisons yield 1.0 / 0.0 and any
    non-zero value is truthy. *)

exception Unbound of string
exception Unknown_function of string

let truthy (f : float) = f <> 0.0
let of_bool (b : bool) = if b then 1.0 else 0.0

let rec eval (env : string -> float) (e : Ast.expr) : float =
  match e with
  | Ast.Num f -> f
  | Ast.Var v -> env v
  | Ast.Unary (Ast.Neg, a) -> -.eval env a
  | Ast.Unary (Ast.Not, a) -> of_bool (not (truthy (eval env a)))
  | Ast.Binary (op, a, b) -> (
      match op with
      | Ast.And ->
          (* short-circuit like C *)
          if truthy (eval env a) then of_bool (truthy (eval env b)) else 0.0
      | Ast.Or -> if truthy (eval env a) then 1.0 else of_bool (truthy (eval env b))
      | _ ->
          let x = eval env a and y = eval env b in
          (match op with
          | Ast.Add -> x +. y
          | Ast.Sub -> x -. y
          | Ast.Mul -> x *. y
          | Ast.Div -> x /. y
          | Ast.Lt -> of_bool (x < y)
          | Ast.Le -> of_bool (x <= y)
          | Ast.Gt -> of_bool (x > y)
          | Ast.Ge -> of_bool (x >= y)
          | Ast.Eq -> of_bool (x = y)
          | Ast.Ne -> of_bool (x <> y)
          | Ast.And | Ast.Or -> assert false))
  | Ast.Call (f, args) -> (
      match Builtins.find f with
      | None -> raise (Unknown_function f)
      | Some b ->
          if List.length args <> b.arity then
            (* arity errors are reported by the semantic checker; treating
               the call as unknown here keeps the constant folder from
               silently evaluating a malformed call *)
            raise (Unknown_function f)
          else
            let vals = Array.of_list (List.map (eval env) args) in
            b.eval vals)
  | Ast.Ternary (c, t, f) -> if truthy (eval env c) then eval env t else eval env f

(** Evaluate with an association-list environment. *)
let eval_alist (bindings : (string * float) list) (e : Ast.expr) : float =
  eval
    (fun v ->
      match List.assoc_opt v bindings with
      | Some f -> f
      | None -> raise (Unbound v))
    e

(** Evaluate an expression with no free variables. *)
let eval_const (e : Ast.expr) : float option =
  match eval (fun v -> raise (Unbound v)) e with
  | f -> Some f
  | exception Unbound _ -> None
  | exception Unknown_function _ -> None
