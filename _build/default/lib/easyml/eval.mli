(** Reference evaluator for EasyML expressions (C boolean semantics:
    comparisons yield 1.0/0.0, any non-zero value is truthy). *)

exception Unbound of string
exception Unknown_function of string

val truthy : float -> bool
val of_bool : bool -> float

val eval : (string -> float) -> Ast.expr -> float
(** @raise Unbound / Unknown_function (also on arity mismatch). *)

val eval_alist : (string * float) list -> Ast.expr -> float
val eval_const : Ast.expr -> float option
(** [Some v] iff the expression has no free variables and evaluates. *)
