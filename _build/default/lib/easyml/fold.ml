(** Compile-time preprocessor (paper §3.2).

    Propagates constant-qualified values (model parameters and literals)
    through expressions and folds any operation whose operands are all known
    at compile time — arithmetic, math calls, comparisons, and conditions.
    This mirrors limpetMLIR's preprocessor which runs as part of the code
    generation phase. *)

(* Identities that are safe for IEEE-754 doubles for the *finite* value
   ranges ionic models operate on.  We deliberately do not fold [x *. 0.]
   to [0.] (it would be wrong for infinities/NaN produced at runtime). *)
let simplify_identities (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Binary (Ast.Add, x, Ast.Num 0.0) | Ast.Binary (Ast.Add, Ast.Num 0.0, x)
    ->
      x
  | Ast.Binary (Ast.Sub, x, Ast.Num 0.0) -> x
  | Ast.Binary (Ast.Mul, x, Ast.Num 1.0) | Ast.Binary (Ast.Mul, Ast.Num 1.0, x)
    ->
      x
  | Ast.Binary (Ast.Div, x, Ast.Num 1.0) -> x
  | Ast.Unary (Ast.Neg, Ast.Unary (Ast.Neg, x)) -> x
  | e -> e

(** [fold_expr consts e] rewrites [e], replacing variables bound in [consts]
    by their value and collapsing fully-constant subtrees. *)
let rec fold_expr (consts : (string, float) Hashtbl.t) (e : Ast.expr) : Ast.expr
    =
  match e with
  | Ast.Num _ -> e
  | Ast.Var v -> (
      match Hashtbl.find_opt consts v with
      | Some f -> Ast.Num f
      | None -> e)
  | Ast.Unary (op, a) -> (
      let a' = fold_expr consts a in
      match (op, a') with
      | Ast.Neg, Ast.Num f -> Ast.Num (-.f)
      | Ast.Not, Ast.Num f -> Ast.Num (Eval.of_bool (not (Eval.truthy f)))
      | _ -> simplify_identities (Ast.Unary (op, a')))
  | Ast.Binary (op, a, b) -> (
      let a' = fold_expr consts a and b' = fold_expr consts b in
      match (a', b') with
      | Ast.Num _, Ast.Num _ -> (
          match Eval.eval_const (Ast.Binary (op, a', b')) with
          | Some f -> Ast.Num f
          | None -> Ast.Binary (op, a', b'))
      | _ -> simplify_identities (Ast.Binary (op, a', b')))
  | Ast.Call (f, args) -> (
      let args' = List.map (fold_expr consts) args in
      let all_const = List.for_all (function Ast.Num _ -> true | _ -> false) args' in
      if all_const && Builtins.mem f then
        match Eval.eval_const (Ast.Call (f, args')) with
        | Some v when Float.is_finite v -> Ast.Num v
        | _ -> Ast.Call (f, args')
      else Ast.Call (f, args'))
  | Ast.Ternary (c, t, f) -> (
      let c' = fold_expr consts c in
      match c' with
      | Ast.Num v -> if Eval.truthy v then fold_expr consts t else fold_expr consts f
      | _ ->
          let t' = fold_expr consts t and f' = fold_expr consts f in
          (* both branches identical: the guard is irrelevant (guards are
             pure in EasyML); this collapses the (c ? 0 : 0) terms symbolic
             differentiation produces inside guarded rate functions *)
          if Ast.equal_expr t' f' then t' else Ast.Ternary (c', t', f'))

(** Fold with an association list of constants. *)
let fold_alist (consts : (string * float) list) (e : Ast.expr) : Ast.expr =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) consts;
  fold_expr tbl e

(** True when the expression folded to a literal. *)
let is_const = function Ast.Num _ -> true | _ -> false
