(** Compile-time preprocessor (paper §3.2): constant propagation and
    folding over expressions, plus IEEE-safe identities. *)

val simplify_identities : Ast.expr -> Ast.expr
val fold_expr : (string, float) Hashtbl.t -> Ast.expr -> Ast.expr
(** Replace variables bound in the table by literals and collapse
    fully-constant subtrees (non-finite results are left unfolded). *)

val fold_alist : (string * float) list -> Ast.expr -> Ast.expr
val is_const : Ast.expr -> bool
