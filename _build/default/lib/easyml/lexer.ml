(** Hand-written lexer for EasyML.

    Menhir is not available in this environment, and the DSL is small enough
    that a hand-rolled lexer + recursive-descent parser is both simpler and
    easier to produce good diagnostics from. *)

exception Error of Loc.t * string

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let create (src : string) : t = { src; pos = 0; line = 1; col = 1 }
let loc (lx : t) : Loc.t = Loc.make ~line:lx.line ~col:lx.col
let is_eof (lx : t) = lx.pos >= String.length lx.src
let peek_char (lx : t) = if is_eof lx then '\000' else lx.src.[lx.pos]

let peek_char2 (lx : t) =
  if lx.pos + 1 >= String.length lx.src then '\000' else lx.src.[lx.pos + 1]

let advance (lx : t) =
  if not (is_eof lx) then begin
    (if lx.src.[lx.pos] = '\n' then begin
       lx.line <- lx.line + 1;
       lx.col <- 1
     end
     else lx.col <- lx.col + 1);
    lx.pos <- lx.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia (lx : t) =
  match peek_char lx with
  | ' ' | '\t' | '\r' | '\n' ->
      advance lx;
      skip_trivia lx
  | '#' ->
      (* line comment, EasyML style *)
      while (not (is_eof lx)) && peek_char lx <> '\n' do
        advance lx
      done;
      skip_trivia lx
  | '/' when peek_char2 lx = '/' ->
      while (not (is_eof lx)) && peek_char lx <> '\n' do
        advance lx
      done;
      skip_trivia lx
  | '/' when peek_char2 lx = '*' ->
      let start = loc lx in
      advance lx;
      advance lx;
      let rec close () =
        if is_eof lx then raise (Error (start, "unterminated block comment"))
        else if peek_char lx = '*' && peek_char2 lx = '/' then begin
          advance lx;
          advance lx
        end
        else begin
          advance lx;
          close ()
        end
      in
      close ();
      skip_trivia lx
  | _ -> ()

let lex_number (lx : t) : Token.t =
  let start_pos = lx.pos in
  let start_loc = loc lx in
  while is_digit (peek_char lx) do
    advance lx
  done;
  if peek_char lx = '.' && not (is_ident_start (peek_char2 lx)) then begin
    advance lx;
    while is_digit (peek_char lx) do
      advance lx
    done
  end;
  (match peek_char lx with
  | 'e' | 'E' ->
      advance lx;
      (match peek_char lx with '+' | '-' -> advance lx | _ -> ());
      if not (is_digit (peek_char lx)) then
        raise (Error (loc lx, "malformed exponent in numeric literal"));
      while is_digit (peek_char lx) do
        advance lx
      done
  | _ -> ());
  let text = String.sub lx.src start_pos (lx.pos - start_pos) in
  match float_of_string_opt text with
  | Some f -> Token.NUMBER f
  | None -> raise (Error (start_loc, "malformed numeric literal " ^ text))

let lex_ident (lx : t) : Token.t =
  let start_pos = lx.pos in
  while is_ident_char (peek_char lx) do
    advance lx
  done;
  let text = String.sub lx.src start_pos (lx.pos - start_pos) in
  match text with
  | "group" -> Token.KW_GROUP
  | "if" -> Token.KW_IF
  | "elif" -> Token.KW_ELIF
  | "else" -> Token.KW_ELSE
  | _ -> Token.IDENT text

let lex_string (lx : t) : Token.t =
  let start_loc = loc lx in
  advance lx;
  let buf = Buffer.create 16 in
  let rec go () =
    if is_eof lx then raise (Error (start_loc, "unterminated string literal"))
    else
      match peek_char lx with
      | '"' -> advance lx
      | c ->
          Buffer.add_char buf c;
          advance lx;
          go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let next (lx : t) : Token.spanned =
  skip_trivia lx;
  let l = loc lx in
  let mk tok = { Token.tok; loc = l } in
  if is_eof lx then mk Token.EOF
  else
    let c = peek_char lx in
    if is_digit c then mk (lex_number lx)
    else if c = '.' && is_digit (peek_char2 lx) then mk (lex_number lx)
    else if is_ident_start c then mk (lex_ident lx)
    else if c = '"' then mk (lex_string lx)
    else begin
      advance lx;
      let two expected tok_two tok_one =
        if peek_char lx = expected then begin
          advance lx;
          mk tok_two
        end
        else mk tok_one
      in
      match c with
      | '+' -> mk Token.PLUS
      | '-' -> mk Token.MINUS
      | '*' -> mk Token.STAR
      | '^' -> mk Token.CARET
      | '/' -> mk Token.SLASH
      | '<' -> two '=' Token.LE Token.LT
      | '>' -> two '=' Token.GE Token.GT
      | '=' -> two '=' Token.EQEQ Token.ASSIGN
      | '!' -> two '=' Token.NEQ Token.BANG
      | '&' ->
          if peek_char lx = '&' then begin
            advance lx;
            mk Token.ANDAND
          end
          else raise (Error (l, "expected '&&'"))
      | '|' ->
          if peek_char lx = '|' then begin
            advance lx;
            mk Token.OROR
          end
          else raise (Error (l, "expected '||'"))
      | '?' -> mk Token.QUESTION
      | ':' -> mk Token.COLON
      | '(' -> mk Token.LPAREN
      | ')' -> mk Token.RPAREN
      | '{' -> mk Token.LBRACE
      | '}' -> mk Token.RBRACE
      | ';' -> mk Token.SEMI
      | ',' -> mk Token.COMMA
      | '.' -> mk Token.DOT
      | c -> raise (Error (l, Printf.sprintf "unexpected character %C" c))
    end

(** Tokenize a full source string. Raises {!Error} on lexical errors. *)
let tokenize (src : string) : Token.spanned list =
  let lx = create src in
  let rec go acc =
    let t = next lx in
    if Token.equal t.tok Token.EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
