(** Hand-written lexer for EasyML (supports [#], [//] and block comments). *)

exception Error of Loc.t * string

type t

val create : string -> t
val next : t -> Token.spanned
(** Next token; returns EOF at end of input. @raise Error on lexical errors. *)

val tokenize : string -> Token.spanned list
(** Whole input as a token list ending in EOF. @raise Error. *)
