(** Affine decomposition of gate derivative expressions.

    The Rush–Larsen method applies to state variables whose derivative is
    affine in the variable itself: [diff_y = A + B*y] with [A], [B]
    independent of [y] (the classic gating form [(y_inf - y)/tau] with
    [B = -1/tau], [A = y_inf/tau]).  The exact update is then

      y(t+dt) = -A/B + (y + A/B) * exp(B*dt).

    We extract [B] by symbolic differentiation and [A] by substituting
    [y := 0]; the decomposition is exact iff the derivative of [B] w.r.t.
    [y] vanishes and [y] does not appear inside any branch guard (where the
    substitution would change control flow). *)

type t = {
  a : Ast.expr;  (** constant term, independent of the gate variable *)
  b : Ast.expr;  (** linear coefficient, independent of the gate variable *)
}

(* Does [y] occur inside a condition position (ternary guard, comparison,
   logical operator)?  If so the y := 0 substitution used for [A] would be
   unsound. *)
let rec occurs_in_guard (y : string) (e : Ast.expr) : bool =
  let mentions e = List.mem y (Ast.free_vars e) in
  match e with
  | Ast.Num _ | Ast.Var _ -> false
  | Ast.Unary (Ast.Not, a) -> mentions a
  | Ast.Unary (_, a) -> occurs_in_guard y a
  | Ast.Binary ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), a, b) ->
      (* the comparison itself is a guard-like value *)
      mentions a || mentions b
  | Ast.Binary ((Ast.And | Ast.Or), a, b) -> mentions a || mentions b
  | Ast.Binary (_, a, b) -> occurs_in_guard y a || occurs_in_guard y b
  | Ast.Call (_, args) -> List.exists (occurs_in_guard y) args
  | Ast.Ternary (c, t, f) ->
      mentions c || occurs_in_guard y t || occurs_in_guard y f

(** [affine ~y f] returns [Some {a; b}] when [f = a + b*y] exactly. *)
let affine ~(y : string) (f : Ast.expr) : t option =
  if occurs_in_guard y f then None
  else
    match Deriv.diff ~wrt:y f with
    | exception Deriv.Not_differentiable _ -> None
    | b ->
        if List.mem y (Ast.free_vars b) then None
        else
          let a = Fold.fold_alist [] (Ast.subst ~x:y ~by:(Ast.Num 0.0) f) in
          if List.mem y (Ast.free_vars a) then None else Some { a; b }

(** Validation helper for tests: numerically check that [f ≈ a + b*y] at a
    sample point. *)
let check_at (dec : t) ~(y : string) (f : Ast.expr) (env : (string * float) list)
    : float =
  let fv = Eval.eval_alist env f in
  let yv = Eval.eval_alist env (Ast.Var y) in
  let av = Eval.eval_alist env dec.a in
  let bv = Eval.eval_alist env dec.b in
  Float.abs (fv -. (av +. (bv *. yv)))
