(** Affine decomposition of gate derivatives: [diff_y = a + b*y] with
    [a], [b] independent of [y] — the precondition of Rush-Larsen. *)

type t = { a : Ast.expr; b : Ast.expr }

val occurs_in_guard : string -> Ast.expr -> bool
(** Does the variable appear inside a comparison/guard position (where the
    [y := 0] substitution used for [a] would be unsound)? *)

val affine : y:string -> Ast.expr -> t option
(** [Some] iff the decomposition is exact. *)

val check_at : t -> y:string -> Ast.expr -> (string * float) list -> float
(** |f − (a + b·y)| at a sample point, for tests. *)
