(** Source locations for diagnostics.

    EasyML models are short, so we keep locations lightweight: a line/column
    pair pointing at the start of the lexeme. *)

type t = { line : int; col : int }

let none = { line = 0; col = 0 }
let make ~line ~col = { line; col }
let pp ppf { line; col } = Fmt.pf ppf "%d:%d" line col
let to_string t = Fmt.str "%a" pp t
