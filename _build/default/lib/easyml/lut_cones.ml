(** Lookup-table cone detection.

    A [.lookup(lo,hi,step)] markup on a variable [V] (typically the membrane
    potential [Vm]) asks the code generator to tabulate every expression that
    depends only on [V].  We call such a maximal subexpression a *cone*.
    At simulation time each table row holds the cone values for one grid
    point of [V]; the kernel replaces the cone computation by a linear
    interpolation between two rows (openCARP's [LUT_interpRow]).

    [dt] is treated as table-pure: it is fixed for a whole simulation and the
    tables are (re)built once [dt] is known, which lets the Rush–Larsen
    coefficients [exp(b*dt)] be tabulated exactly as openCARP does. *)

module SSet = Set.Make (String)

type column = {
  col_index : int;
  col_expr : Ast.expr;  (** expression of the lookup variable (and dt) *)
}

type t = {
  spec : Model.lut_spec;
  columns : column list;
}

let pure_vars (spec : Model.lut_spec) : SSet.t =
  SSet.of_list [ spec.Model.lut_var; "dt" ]

(* Worth tabulating: contains a transcendental call or a division, and is
   not a trivially small expression.  Tabulating [Vm + 47] would waste a
   column and memory bandwidth. *)
let expensive (e : Ast.expr) : bool =
  let rec has_costly = function
    | Ast.Num _ | Ast.Var _ -> false
    | Ast.Unary (_, a) -> has_costly a
    | Ast.Binary (Ast.Div, _, _) -> true
    | Ast.Binary (_, a, b) -> has_costly a || has_costly b
    | Ast.Ternary (a, b, c) -> has_costly a || has_costly b || has_costly c
    | Ast.Call (f, args) -> (
        List.exists has_costly args
        ||
        match Builtins.find f with Some b -> b.flops >= 8 | None -> false)
  in
  Ast.size e >= 3 && has_costly e

let is_pure (pure : SSet.t) (e : Ast.expr) : bool =
  List.for_all (fun v -> SSet.mem v pure) (Ast.free_vars e)

(** Collect the maximal pure-and-expensive subtrees of [e] (top-down: once a
    subtree qualifies we do not descend into it). *)
let rec collect_cones (pure : SSet.t) (e : Ast.expr) (acc : Ast.expr list ref) :
    unit =
  if is_pure pure e && expensive e then begin
    if not (List.exists (Ast.equal_expr e) !acc) then acc := e :: !acc
  end
  else
    match e with
    | Ast.Num _ | Ast.Var _ -> ()
    | Ast.Unary (_, a) -> collect_cones pure a acc
    | Ast.Binary (_, a, b) ->
        collect_cones pure a acc;
        collect_cones pure b acc
    | Ast.Call (_, args) -> List.iter (fun a -> collect_cones pure a acc) args
    | Ast.Ternary (a, b, c) ->
        collect_cones pure a acc;
        collect_cones pure b acc;
        collect_cones pure c acc

(** The variable name under which codegen binds column [i] of the table for
    [lut_var]. *)
let column_var (spec : Model.lut_spec) (i : int) : string =
  Printf.sprintf "__lut_%s_%d" spec.Model.lut_var i

(** Replace every occurrence of a column expression by its column variable. *)
let rewrite (t : t) (e : Ast.expr) : Ast.expr =
  let rec go e =
    match
      List.find_opt (fun c -> Ast.equal_expr c.col_expr e) t.columns
    with
    | Some c -> Ast.Var (column_var t.spec c.col_index)
    | None -> (
        match e with
        | Ast.Num _ | Ast.Var _ -> e
        | Ast.Unary (op, a) -> Ast.Unary (op, go a)
        | Ast.Binary (op, a, b) -> Ast.Binary (op, go a, go b)
        | Ast.Call (f, args) -> Ast.Call (f, List.map go args)
        | Ast.Ternary (a, b, c) -> Ast.Ternary (go a, go b, go c))
  in
  go e

(** Build the table plan for one lookup spec given every expression the
    kernel will evaluate (assign right-hand sides, derivative expressions,
    integrator coefficient expressions). *)
let plan (spec : Model.lut_spec) (exprs : Ast.expr list) : t =
  let pure = pure_vars spec in
  let acc = ref [] in
  List.iter (fun e -> collect_cones pure e acc) exprs;
  let columns =
    List.rev !acc |> List.mapi (fun i e -> { col_index = i; col_expr = e })
  in
  { spec; columns }

let n_columns (t : t) = List.length t.columns

(** Evaluate column [c] at grid value [x] (reference semantics, used to fill
    the table and by tests). *)
let eval_column ~(dt : float) (t : t) (c : column) (x : float) : float =
  Eval.eval_alist [ (t.spec.Model.lut_var, x); ("dt", dt) ] c.col_expr
