(** Lookup-table cone detection: maximal subexpressions that depend only on
    the lookup variable (and [dt], fixed per run) and are worth
    tabulating.  Each distinct cone becomes a table column. *)

type column = { col_index : int; col_expr : Ast.expr }
type t = { spec : Model.lut_spec; columns : column list }

val expensive : Ast.expr -> bool
(** Worth tabulating: contains a transcendental call or division and is not
    trivially small. *)

val plan : Model.lut_spec -> Ast.expr list -> t
(** Collect and deduplicate the cones of every expression the kernel will
    evaluate. *)

val n_columns : t -> int

val column_var : Model.lut_spec -> int -> string
(** The variable name codegen binds column [i] to. *)

val rewrite : t -> Ast.expr -> Ast.expr
(** Replace every cone occurrence by its column variable. *)

val eval_column : dt:float -> t -> column -> float -> float
(** Reference evaluation of a column at a grid value. *)
