(** MMT (Myokit) → EasyML translator.

    The paper's Figure 1 shows EasyML doubling as an intermediate
    representation: CellML, SBML and Myokit's MMT format reach limpetMLIR
    through "semi-automatic scripts".  This module is that script for a
    practical subset of MMT:

    - [[[model]]] header with [component.var = value] initial conditions
      and a [name:] line;
    - [[component]] sections containing [x = expr] definitions and
      [dot(x) = expr] state equations;
    - [use other.var as alias] aliases;
    - unit annotations ([1.2 [mV]] and [in [ms]] lines), [bind]/[label]
      lines — parsed and dropped;
    - Myokit expressions: arithmetic with [^] for powers, [if(c, a, b)],
      [piecewise(c1, v1, ..., default)], [and]/[or]/[not], dotted
      references ([other.var]) and the usual math calls.

    Names are flattened as [component__var].  The caller designates which
    variable is the membrane potential (exported as the [Vm] external) and
    which is the total ionic current (exported as [Iion]); this mirrors
    Myokit's label/bind mechanism without needing full label support. *)

exception Error of { line : int; msg : string }

let err line fmt = Fmt.kstr (fun msg -> raise (Error { line; msg })) fmt

let contains (s : string) (sub : string) : bool =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Raw structure                                                        *)
(* ------------------------------------------------------------------ *)

type raw_def = {
  rd_line : int;
  rd_comp : string;
  rd_var : string;
  rd_dot : bool;
  rd_rhs : string;  (** untranslated expression text *)
}

type raw = {
  mutable r_name : string;
  mutable r_inits : (string * float) list;  (** flattened name, value *)
  mutable r_defs : raw_def list;
  mutable r_aliases : (string * string) list;
      (** (comp.alias, flattened target) *)
}

let flat comp var = comp ^ "__" ^ var

let strip_comment (s : string) : string =
  match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s

(* drop a trailing unit annotation: "1.2 [mV]" -> "1.2" *)
let drop_unit (s : string) : string =
  let t = String.trim s in
  match String.rindex_opt t '[' with
  | Some i when i > 0 && t.[String.length t - 1] = ']' ->
      String.trim (String.sub t 0 i)
  | _ -> t

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let parse_raw (lines : string list) : raw =
  let raw = { r_name = "mmt_model"; r_inits = []; r_defs = []; r_aliases = [] } in
  let section = ref None in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let content = String.trim (strip_comment line) in
      if content = "" then ()
      else if content = "[[model]]" then section := Some "[[model]]"
      else if
        String.length content > 2
        && content.[0] = '['
        && content.[String.length content - 1] = ']'
        && content.[1] <> '['
      then section := Some (String.sub content 1 (String.length content - 2))
      else
        match !section with
        | None -> err lineno "content before any section"
        | Some "[[model]]" -> (
            match String.index_opt content ':' with
            | Some i when String.trim (String.sub content 0 i) = "name" ->
                raw.r_name <-
                  String.trim
                    (String.sub content (i + 1) (String.length content - i - 1))
            | _ -> (
                match String.index_opt content '=' with
                | Some i -> (
                    let lhs = String.trim (String.sub content 0 i) in
                    let rhs =
                      drop_unit
                        (String.sub content (i + 1) (String.length content - i - 1))
                    in
                    let flatname =
                      match String.split_on_char '.' lhs with
                      | [ c; v ] -> flat c v
                      | _ -> err lineno "expected comp.var initial value"
                    in
                    match float_of_string_opt rhs with
                    | Some f -> raw.r_inits <- (flatname, f) :: raw.r_inits
                    | None -> err lineno "bad initial value %S" rhs)
                | None -> err lineno "unrecognized model-section line %S" content))
        | Some comp ->
            if starts_with "in [" content || starts_with "bind " content
               || starts_with "label " content
            then () (* annotation lines *)
            else if starts_with "use " content then begin
              let rest =
                String.trim (String.sub content 4 (String.length content - 4))
              in
              match
                List.filter (fun s -> s <> "") (String.split_on_char ' ' rest)
              with
              | [ target; "as"; alias ] -> (
                  match String.split_on_char '.' target with
                  | [ c; v ] ->
                      raw.r_aliases <-
                        (comp ^ "." ^ alias, flat c v) :: raw.r_aliases
                  | _ -> err lineno "bad use target %S" target)
              | _ -> err lineno "bad use syntax %S" content
            end
            else
              match String.index_opt content '=' with
              | None -> err lineno "unrecognized line %S in [%s]" content comp
              | Some i ->
                  let lhs = String.trim (String.sub content 0 i) in
                  let rhs =
                    drop_unit
                      (String.sub content (i + 1) (String.length content - i - 1))
                  in
                  let is_dot, var =
                    if
                      String.length lhs > 5
                      && starts_with "dot(" lhs
                      && lhs.[String.length lhs - 1] = ')'
                    then
                      (true, String.trim (String.sub lhs 4 (String.length lhs - 5)))
                    else (false, lhs)
                  in
                  raw.r_defs <-
                    { rd_line = lineno; rd_comp = comp; rd_var = var;
                      rd_dot = is_dot; rd_rhs = rhs }
                    :: raw.r_defs)
    lines;
  raw.r_inits <- List.rev raw.r_inits;
  raw.r_defs <- List.rev raw.r_defs;
  raw

(* ------------------------------------------------------------------ *)
(* Expression translation                                               *)
(* ------------------------------------------------------------------ *)

(* Normalize Myokit-only syntax into something the EasyML parser accepts,
   then fix up the AST. *)
let translate_expr ~(line : int) ~(resolve : string -> string) (src : string) :
    Ast.expr =
  let buf = Buffer.create (String.length src) in
  let n = String.length src in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_'
  in
  let word_at i w =
    i + String.length w <= n
    && String.sub src i (String.length w) = w
    && (i = 0 || not (is_ident src.[i - 1]))
    && (i + String.length w >= n || not (is_ident src.[i + String.length w]))
  in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if word_at !i "if" then begin
      (* [if] is an EasyML statement keyword; rename the Myokit function *)
      Buffer.add_string buf "__mmt_if";
      i := !i + 2
    end
    else if word_at !i "and" then begin
      Buffer.add_string buf " && ";
      i := !i + 3
    end
    else if word_at !i "or" then begin
      Buffer.add_string buf " || ";
      i := !i + 2
    end
    else if word_at !i "not" then begin
      Buffer.add_string buf " !";
      i := !i + 3
    end
    else if
      c = '.' && !i > 0 && is_ident src.[!i - 1] && !i + 1 < n
      && is_ident src.[!i + 1]
      && not (src.[!i + 1] >= '0' && src.[!i + 1] <= '9')
    then begin
      (* dotted reference comp.var -> comp__var *)
      Buffer.add_string buf "__";
      incr i
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  let text = Buffer.contents buf in
  let parsed =
    match Parser.parse ("__mmt_tmp = " ^ text ^ ";") with
    | Ok [ Ast.Assign (_, _, e) ] -> e
    | Ok _ -> err line "unexpected parse of expression %S" src
    | Error msg -> err line "cannot parse expression %S: %s" src msg
  in
  (* rebuild: if/piecewise desugaring and name resolution ('^' is handled
     by the EasyML parser extension) *)
  let rec fix (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Num _ -> e
    | Ast.Var v -> Ast.Var (resolve v)
    | Ast.Unary (op, a) -> Ast.Unary (op, fix a)
    | Ast.Binary (op, a, b) -> Ast.Binary (op, fix a, fix b)
    | Ast.Call ("__mmt_if", [ c; t; f ]) -> Ast.Ternary (fix c, fix t, fix f)
    | Ast.Call ("piecewise", args) ->
        let rec build = function
          | [ d ] -> fix d
          | c :: v :: rest -> Ast.Ternary (fix c, fix v, build rest)
          | [] -> err line "piecewise needs arguments"
        in
        build args
    | Ast.Call (f, args) -> Ast.Call (f, List.map fix args)
    | Ast.Ternary (a, b, c) -> Ast.Ternary (fix a, fix b, fix c)
  in
  fix parsed

(* ------------------------------------------------------------------ *)
(* Assembly                                                             *)
(* ------------------------------------------------------------------ *)

type definition = {
  d_comp : string;
  d_var : string;  (** flattened name *)
  d_dot : bool;
  d_rhs : Ast.expr;
}

type t = {
  name : string;
  inits : (string * float) list;
  defs : definition list;
}

(** Parse and resolve an MMT document. *)
let parse (src : string) : t =
  let raw = parse_raw (String.split_on_char '\n' src) in
  (* all defined flattened names, for bare-name resolution *)
  let known : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun d -> Hashtbl.replace known (d.rd_comp ^ "." ^ d.rd_var) (flat d.rd_comp d.rd_var))
    raw.r_defs;
  List.iter (fun (k, v) -> Hashtbl.replace known k v) raw.r_aliases;
  let defs =
    List.map
      (fun d ->
        let resolve name =
          if contains name "__" then name (* already a dotted reference *)
          else if name = "time" then "t"
          else
            match Hashtbl.find_opt known (d.rd_comp ^ "." ^ name) with
            | Some f -> f
            | None -> name (* dt, t, or an error caught by sema later *)
        in
        {
          d_comp = d.rd_comp;
          d_var = flat d.rd_comp d.rd_var;
          d_dot = d.rd_dot;
          d_rhs = translate_expr ~line:d.rd_line ~resolve d.rd_rhs;
        })
      raw.r_defs
  in
  (* aliases become plain definitions alias = target *)
  let alias_defs =
    List.map
      (fun (qual, target) ->
        match String.split_on_char '.' qual with
        | [ comp; alias ] ->
            { d_comp = comp; d_var = flat comp alias; d_dot = false;
              d_rhs = Ast.Var target }
        | _ -> assert false)
      raw.r_aliases
  in
  { name = raw.r_name; inits = raw.r_inits; defs = alias_defs @ defs }

(** Render as EasyML.

    [vm] and [iion] are the flattened (or [comp.var]) names of the
    membrane potential and the total ionic current.  The Vm state's [dot]
    equation is dropped (the simulator owns the Vm update, as in
    openCARP), its uses become the [Vm] external, and [Iion] is emitted as
    the external output. *)
let to_easyml ?(lookup = Some (-100.0, 100.0, 0.05)) ?(rl_gates = true)
    ~(vm : string) ~(iion : string) (t : t) : string =
  let canon n =
    match String.split_on_char '.' n with
    | [ c; v ] -> flat c v
    | _ -> n
  in
  let vm = canon vm and iion = canon iion in
  let buf = Buffer.create 4096 in
  let pr fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pr "# Translated from MMT (Myokit) source: model %s\n" t.name;
  (match lookup with
  | Some (lo, hi, step) ->
      pr "Vm; .external(); .nodal(); .lookup(%g, %g, %g);\n" lo hi step
  | None -> pr "Vm; .external(); .nodal();\n");
  pr "Iion; .external(); .nodal();\n";
  (* substitution of vm by Vm in every expression *)
  let subst_vm e = Ast.subst ~x:vm ~by:(Ast.Var "Vm") e in
  (* initial values *)
  List.iter
    (fun (n, v) ->
      if n = vm then pr "Vm_init = %.17g;\n" v
      else pr "%s_init = %.17g;\n" n v)
    t.inits;
  (* definitions in source order; the Vm dot equation is dropped *)
  List.iter
    (fun d ->
      if d.d_dot && d.d_var = vm then ()
      else if d.d_dot then begin
        pr "diff_%s = %s;\n" d.d_var (Ast.expr_to_string (subst_vm d.d_rhs));
        (* gates whose equation is syntactically affine in the state get
           Rush-Larsen, as a hand-ported openCARP model would *)
        if rl_gates && Option.is_some (Linearity.affine ~y:d.d_var (subst_vm d.d_rhs))
        then pr "%s; .method(rush_larsen);\n" d.d_var
      end
      else pr "%s = %s;\n" d.d_var (Ast.expr_to_string (subst_vm d.d_rhs)))
    t.defs;
  pr "Iion = %s;\n" iion;
  Buffer.contents buf

(** One-step convenience: MMT text → analyzed EasyML model. *)
let import ?lookup ?rl_gates ~(vm : string) ~(iion : string) (src : string) :
    Model.t =
  let t = parse src in
  Sema.analyze_source ~name:t.name (to_easyml ?lookup ?rl_gates ~vm ~iion t)
