(** MMT (Myokit) → EasyML translator: the "external translators" box of the
    paper's Figure 1, for a practical MMT subset (components, [dot()]
    equations, [use] aliases, unit annotations, [^]/[if]/[piecewise]). *)

exception Error of { line : int; msg : string }

type definition = {
  d_comp : string;  (** owning component *)
  d_var : string;  (** flattened name, [component__var] *)
  d_dot : bool;  (** true for state equations *)
  d_rhs : Ast.expr;
}

type t = {
  name : string;
  inits : (string * float) list;  (** flattened name → initial value *)
  defs : definition list;
}

val parse : string -> t
(** Parse and name-resolve an MMT document. @raise Error. *)

val to_easyml :
  ?lookup:(float * float * float) option ->
  ?rl_gates:bool ->
  vm:string ->
  iion:string ->
  t ->
  string
(** Render as EasyML.  [vm]/[iion] (as [comp.var] or flattened) become the
    [Vm]/[Iion] externals; [rl_gates] (default true) marks affine gate
    equations [.method(rush_larsen)]; [lookup] sets the Vm table bounds
    (default [-100, 100] step 0.05, [None] disables). *)

val import :
  ?lookup:(float * float * float) option ->
  ?rl_gates:bool ->
  vm:string ->
  iion:string ->
  string ->
  Model.t
(** [parse] + [to_easyml] + semantic analysis in one step. *)
