(** Recursive-descent parser for EasyML.

    The grammar follows C expression precedence (as the EasyML reference
    states).  Markup statements beginning with ['.'] attach to the most
    recently named variable, which mirrors how openCARP model files are
    written ([Vm; .external(); .nodal();]). *)

exception Error of Loc.t * string

type t = {
  mutable toks : Token.spanned list;
  mutable last_var : string option;
      (** receiver for a leading-dot markup statement *)
}

let error loc fmt = Fmt.kstr (fun s -> raise (Error (loc, s))) fmt

let peek (p : t) : Token.spanned =
  match p.toks with
  | [] -> { Token.tok = Token.EOF; loc = Loc.none }
  | t :: _ -> t

let advance (p : t) =
  match p.toks with [] -> () | _ :: rest -> p.toks <- rest

let expect (p : t) (tok : Token.t) : Loc.t =
  let t = peek p in
  if Token.equal t.tok tok then begin
    advance p;
    t.loc
  end
  else
    error t.loc "expected %s but found %s" (Token.to_string tok)
      (Token.to_string t.tok)

let expect_ident (p : t) : string * Loc.t =
  let t = peek p in
  match t.tok with
  | Token.IDENT s ->
      advance p;
      (s, t.loc)
  | other -> error t.loc "expected identifier but found %s" (Token.to_string other)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr (p : t) : Ast.expr = parse_ternary p

and parse_ternary (p : t) : Ast.expr =
  let cond = parse_or p in
  match (peek p).tok with
  | Token.QUESTION ->
      advance p;
      let e1 = parse_expr p in
      let _ = expect p Token.COLON in
      let e2 = parse_expr p in
      Ast.Ternary (cond, e1, e2)
  | _ -> cond

and parse_or (p : t) : Ast.expr =
  let rec loop acc =
    match (peek p).tok with
    | Token.OROR ->
        advance p;
        loop (Ast.Binary (Ast.Or, acc, parse_and p))
    | _ -> acc
  in
  loop (parse_and p)

and parse_and (p : t) : Ast.expr =
  let rec loop acc =
    match (peek p).tok with
    | Token.ANDAND ->
        advance p;
        loop (Ast.Binary (Ast.And, acc, parse_equality p))
    | _ -> acc
  in
  loop (parse_equality p)

and parse_equality (p : t) : Ast.expr =
  let rec loop acc =
    match (peek p).tok with
    | Token.EQEQ ->
        advance p;
        loop (Ast.Binary (Ast.Eq, acc, parse_relational p))
    | Token.NEQ ->
        advance p;
        loop (Ast.Binary (Ast.Ne, acc, parse_relational p))
    | _ -> acc
  in
  loop (parse_relational p)

and parse_relational (p : t) : Ast.expr =
  let rec loop acc =
    match (peek p).tok with
    | Token.LT ->
        advance p;
        loop (Ast.Binary (Ast.Lt, acc, parse_additive p))
    | Token.LE ->
        advance p;
        loop (Ast.Binary (Ast.Le, acc, parse_additive p))
    | Token.GT ->
        advance p;
        loop (Ast.Binary (Ast.Gt, acc, parse_additive p))
    | Token.GE ->
        advance p;
        loop (Ast.Binary (Ast.Ge, acc, parse_additive p))
    | _ -> acc
  in
  loop (parse_additive p)

and parse_additive (p : t) : Ast.expr =
  let rec loop acc =
    match (peek p).tok with
    | Token.PLUS ->
        advance p;
        loop (Ast.Binary (Ast.Add, acc, parse_multiplicative p))
    | Token.MINUS ->
        advance p;
        loop (Ast.Binary (Ast.Sub, acc, parse_multiplicative p))
    | _ -> acc
  in
  loop (parse_multiplicative p)

and parse_multiplicative (p : t) : Ast.expr =
  let rec loop acc =
    match (peek p).tok with
    | Token.STAR ->
        advance p;
        loop (Ast.Binary (Ast.Mul, acc, parse_unary p))
    | Token.SLASH ->
        advance p;
        loop (Ast.Binary (Ast.Div, acc, parse_unary p))
    | _ -> acc
  in
  loop (parse_unary p)

and parse_unary (p : t) : Ast.expr =
  match (peek p).tok with
  | Token.MINUS -> (
      advance p;
      (* fold negated literals so -3.5 is a constant, as in C *)
      match parse_unary p with
      | Ast.Num f -> Ast.Num (-.f)
      | e -> Ast.Unary (Ast.Neg, e))
  | Token.BANG ->
      advance p;
      Ast.Unary (Ast.Not, parse_unary p)
  | Token.PLUS ->
      advance p;
      parse_unary p
  | _ -> parse_power p

(* '^' is not core EasyML; it is accepted as an extension (used by the MMT
   importer) and desugars to pow().  Right-associative, binds tighter than
   unary minus on the left, looser on the exponent: -a^b = -(a^b), a^-b ok. *)
and parse_power (p : t) : Ast.expr =
  let base = parse_primary p in
  match (peek p).tok with
  | Token.CARET ->
      advance p;
      let expo = parse_unary p in
      Ast.Call ("pow", [ base; expo ])
  | _ -> base

and parse_primary (p : t) : Ast.expr =
  let t = peek p in
  match t.tok with
  | Token.NUMBER f ->
      advance p;
      Ast.Num f
  | Token.IDENT name -> (
      advance p;
      match (peek p).tok with
      | Token.LPAREN ->
          advance p;
          let args =
            if Token.equal (peek p).tok Token.RPAREN then []
            else
              let rec loop acc =
                let e = parse_expr p in
                match (peek p).tok with
                | Token.COMMA ->
                    advance p;
                    loop (e :: acc)
                | _ -> List.rev (e :: acc)
              in
              loop []
          in
          let _ = expect p Token.RPAREN in
          Ast.Call (name, args)
      | _ -> Ast.Var name)
  | Token.LPAREN ->
      advance p;
      let e = parse_expr p in
      let _ = expect p Token.RPAREN in
      e
  | other -> error t.loc "expected expression but found %s" (Token.to_string other)

(* ------------------------------------------------------------------ *)
(* Markups                                                             *)
(* ------------------------------------------------------------------ *)

(* A markup argument: a signed number, an identifier, or a string. *)
let parse_markup_arg (p : t) : [ `Num of float | `Name of string | `Str of string ]
    =
  let t = peek p in
  match t.tok with
  | Token.MINUS -> (
      advance p;
      let t2 = peek p in
      match t2.tok with
      | Token.NUMBER f ->
          advance p;
          `Num (-.f)
      | other ->
          error t2.loc "expected number after '-' in markup, found %s"
            (Token.to_string other))
  | Token.NUMBER f ->
      advance p;
      `Num f
  | Token.IDENT s ->
      advance p;
      `Name s
  | Token.STRING s ->
      advance p;
      `Str s
  | other -> error t.loc "expected markup argument, found %s" (Token.to_string other)

(* Parses [.name(arg, ...)] with the leading dot already consumed by the
   caller's lookahead decision but not yet removed from the stream. *)
let parse_markup (p : t) : Loc.t * Ast.markup =
  let loc = expect p Token.DOT in
  let name, name_loc = expect_ident p in
  let _ = expect p Token.LPAREN in
  let args =
    if Token.equal (peek p).tok Token.RPAREN then []
    else
      let rec loop acc =
        let a = parse_markup_arg p in
        match (peek p).tok with
        | Token.COMMA ->
            advance p;
            loop (a :: acc)
        | _ -> List.rev (a :: acc)
      in
      loop []
  in
  let _ = expect p Token.RPAREN in
  let num = function
    | `Num f -> f
    | _ -> error name_loc "markup .%s expects numeric arguments" name
  in
  let markup =
    match (name, args) with
    | "external", [] -> Ast.External
    | "nodal", [] -> Ast.Nodal
    | "regional", [] -> Ast.Regional
    | "param", [] -> Ast.Param
    | "trace", [] -> Ast.Trace
    | "store", [] -> Ast.Store
    | "lookup", [ a; b; c ] -> Ast.Lookup (num a, num b, num c)
    | "method", [ `Name m ] -> Ast.Method m
    | "units", [ `Str u ] | "units", [ `Name u ] -> Ast.Units u
    | "lookup", _ -> error name_loc ".lookup expects exactly (lo, hi, step)"
    | "method", _ -> error name_loc ".method expects one method name"
    | _ -> error name_loc "unknown markup .%s/%d" name (List.length args)
  in
  (loc, markup)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt (p : t) : Ast.stmt list =
  let t = peek p in
  match t.tok with
  | Token.DOT -> (
      let loc, m = parse_markup p in
      let _ = expect p Token.SEMI in
      match p.last_var with
      | Some v -> [ Ast.MarkupOn (loc, v, m) ]
      | None -> error loc "markup with no preceding variable")
  | Token.KW_GROUP -> parse_group p
  | Token.KW_IF -> [ parse_if p ]
  | Token.IDENT name -> (
      advance p;
      match (peek p).tok with
      | Token.ASSIGN ->
          advance p;
          let e = parse_expr p in
          let _ = expect p Token.SEMI in
          p.last_var <- Some name;
          [ Ast.Assign (t.loc, name, e) ]
      | Token.SEMI ->
          advance p;
          p.last_var <- Some name;
          [ Ast.Decl (t.loc, name) ]
      | other ->
          error (peek p).loc "expected '=' or ';' after %s, found %s" name
            (Token.to_string other))
  | other -> error t.loc "expected statement but found %s" (Token.to_string other)

(* group{ a; b = 1; } .markup1(); ... desugars to per-member declarations /
   assignments followed by one markup per member per group markup. *)
and parse_group (p : t) : Ast.stmt list =
  let gloc = expect p Token.KW_GROUP in
  let _ = expect p Token.LBRACE in
  let members = ref [] in
  let rec members_loop () =
    match (peek p).tok with
    | Token.RBRACE -> advance p
    | Token.IDENT name ->
        advance p;
        (match (peek p).tok with
        | Token.ASSIGN ->
            advance p;
            let e = parse_expr p in
            members := (name, Some e) :: !members
        | _ -> members := (name, None) :: !members);
        let _ = expect p Token.SEMI in
        members_loop ()
    | other ->
        error (peek p).loc "expected group member or '}', found %s"
          (Token.to_string other)
  in
  members_loop ();
  let members = List.rev !members in
  (* trailing markup chain: .param(); or .nodal(); etc. applied to all *)
  let markups = ref [] in
  let rec markup_loop () =
    match (peek p).tok with
    | Token.DOT ->
        let _, m = parse_markup p in
        markups := m :: !markups;
        (match (peek p).tok with
        | Token.SEMI ->
            advance p;
            markup_loop ()
        | Token.DOT -> markup_loop ()
        | other ->
            error (peek p).loc "expected ';' or '.' after group markup, found %s"
              (Token.to_string other))
    | _ -> ()
  in
  markup_loop ();
  let markups = List.rev !markups in
  (match members with
  | [] -> ()
  | _ ->
      let last, _ = List.nth members (List.length members - 1) in
      p.last_var <- Some last);
  List.concat_map
    (fun (name, init) ->
      let base =
        match init with
        | None -> Ast.Decl (gloc, name)
        | Some e -> Ast.Assign (gloc, name, e)
      in
      base :: List.map (fun m -> Ast.MarkupOn (gloc, name, m)) markups)
    members

and parse_if (p : t) : Ast.stmt =
  let iloc = expect p Token.KW_IF in
  let _ = expect p Token.LPAREN in
  let cond = parse_expr p in
  let _ = expect p Token.RPAREN in
  let body = parse_block p in
  let branches = ref [ (cond, body) ] in
  let els = ref [] in
  let rec tail () =
    match (peek p).tok with
    | Token.KW_ELIF ->
        advance p;
        let _ = expect p Token.LPAREN in
        let c = parse_expr p in
        let _ = expect p Token.RPAREN in
        let b = parse_block p in
        branches := (c, b) :: !branches;
        tail ()
    | Token.KW_ELSE -> (
        advance p;
        match (peek p).tok with
        | Token.KW_IF ->
            (* allow C-style [else if] *)
            let nested = parse_if p in
            els := [ nested ]
        | _ -> els := parse_block p)
    | _ -> ()
  in
  tail ();
  Ast.If (iloc, List.rev !branches, !els)

and parse_block (p : t) : Ast.stmt list =
  let _ = expect p Token.LBRACE in
  let acc = ref [] in
  let rec loop () =
    match (peek p).tok with
    | Token.RBRACE -> advance p
    | Token.EOF -> error (peek p).loc "unterminated block"
    | _ ->
        acc := List.rev_append (parse_stmt p) !acc;
        loop ()
  in
  loop ();
  List.rev !acc

(** Parse a whole EasyML program. Raises {!Error} or {!Lexer.Error}. *)
let parse_program (src : string) : Ast.program =
  let p = { toks = Lexer.tokenize src; last_var = None } in
  let acc = ref [] in
  let rec loop () =
    match (peek p).tok with
    | Token.EOF -> ()
    | _ ->
        acc := List.rev_append (parse_stmt p) !acc;
        loop ()
  in
  loop ();
  List.rev !acc

(** Convenience wrapper returning a result instead of raising. *)
let parse (src : string) : (Ast.program, string) result =
  match parse_program src with
  | prog -> Ok prog
  | exception Error (loc, msg) -> Error (Fmt.str "parse error at %a: %s" Loc.pp loc msg)
  | exception Lexer.Error (loc, msg) ->
      Error (Fmt.str "lexical error at %a: %s" Loc.pp loc msg)
