(** Recursive-descent parser for EasyML (C expression precedence; markup
    statements attach to the most recently named variable). *)

exception Error of Loc.t * string

val parse_program : string -> Ast.program
(** @raise Error or {!Lexer.Error}. *)

val parse : string -> (Ast.program, string) result
(** Result-typed wrapper with rendered locations. *)
