(** Semantic analysis: EasyML program -> {!Model.t}.

    Resolves markups, folds parameters (the preprocessor), if-converts
    conditionals into ternary merges, recognizes [diff_X]/[X_init],
    inlines intermediates into derivative expressions, extracts affine
    decompositions for Rush-Larsen/Sundnes (falling back to forward Euler
    with a warning), and topologically orders the surviving definitions. *)

exception Error of string

type options = {
  fold_params : bool;
      (** replace parameters by literals; disabling keeps them as runtime
          loads (used by the preprocessor ablation) *)
}

val default_options : options

val analyze : ?options:options -> name:string -> Ast.program -> Model.t
(** @raise Error on semantic errors (double assignment, undefined
    variables, cycles, bad markups, non-constant parameters, ...). *)

val analyze_source : ?options:options -> name:string -> string -> Model.t
(** Parse + analyze. @raise Error (parse errors are re-raised as Error). *)

val analyze_result :
  ?options:options -> name:string -> string -> (Model.t, string) result
