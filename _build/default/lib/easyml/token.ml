(** Tokens produced by the EasyML lexer. *)

type t =
  | IDENT of string
  | NUMBER of float
  | STRING of string  (** used by unit annotations, e.g. [.units("mV")] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | BANG
  | QUESTION
  | COLON
  | ASSIGN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | DOT
  | KW_GROUP
  | KW_IF
  | KW_ELIF
  | KW_ELSE
  | EOF

type spanned = { tok : t; loc : Loc.t }

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER f -> Printf.sprintf "number %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | CARET -> "'^'"
  | SLASH -> "'/'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | QUESTION -> "'?'"
  | COLON -> "':'"
  | ASSIGN -> "'='"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | KW_GROUP -> "'group'"
  | KW_IF -> "'if'"
  | KW_ELIF -> "'elif'"
  | KW_ELSE -> "'else'"
  | EOF -> "end of input"

let equal (a : t) (b : t) = a = b
