lib/exec/engine.ml: Array Easyml Float Fmt Func Hashtbl Ir Lazy List Op Rt Ty Value
