lib/exec/engine.mli: Ir Rt
