lib/exec/interp.ml: Array Easyml Float Fmt Fun Func Hashtbl Ir List Op Rt Ty Value
