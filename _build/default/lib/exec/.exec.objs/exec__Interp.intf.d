lib/exec/interp.mli: Ir Rt
