lib/exec/rt.ml: Float Hashtbl List
