(** Closure-compiling execution engine: IR is compiled once into OCaml
    closures over preallocated typed register files (the stand-in for
    LLVM native code generation).  Vector ops execute their whole width
    per dispatch, which is where the genuine wall-clock advantage of
    vectorized kernels comes from in this port.

    Compiled functions are NOT reentrant: each compilation owns one
    register file, so use one compiled instance per thread (the driver
    does). *)

exception Exec_error of string

type compiled = Rt.v array -> Rt.v array

val compile_module :
  ?externs:Rt.registry -> Ir.Func.modl -> string -> compiled
(** Lazy per-function compiler; unknown names fall back to the extern
    registry. Local calls between module functions are supported. *)

val run :
  ?externs:Rt.registry -> Ir.Func.modl -> string -> Rt.v array -> Rt.v array
(** Compile and invoke one function. *)
