open Ir
(** Reference tree-walking interpreter.

    Deliberately simple and allocation-heavy: every op evaluates to a fresh
    {!Rt.v}.  Serves as the semantic oracle the closure-compiling
    {!Engine} is differentially tested against. *)

exception Interp_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Interp_error s)) fmt

type env = (int, Rt.v) Hashtbl.t

let get (env : env) (v : Value.t) : Rt.v =
  match Hashtbl.find_opt env v.id with
  | Some x -> x
  | None -> fail "undefined value %%%d" v.id

let set (env : env) (v : Value.t) (x : Rt.v) : unit = Hashtbl.replace env v.id x

let fbin_fn : Op.fbin -> float -> float -> float = function
  | Op.FAdd -> ( +. )
  | Op.FSub -> ( -. )
  | Op.FMul -> ( *. )
  | Op.FDiv -> ( /. )
  | Op.FMin -> Float.min
  | Op.FMax -> Float.max
  | Op.FRem -> Float.rem

let ibin_fn : Op.ibin -> int -> int -> int = function
  | Op.IAdd -> ( + )
  | Op.ISub -> ( - )
  | Op.IMul -> ( * )
  | Op.IDiv -> ( / )
  | Op.IRem -> ( mod )

let bbin_fn : Op.bbin -> bool -> bool -> bool = function
  | Op.BAnd -> ( && )
  | Op.BOr -> ( || )
  | Op.BXor -> ( <> )

let cmp_f : Op.cmp -> float -> float -> bool = function
  | Op.Lt -> ( < )
  | Op.Le -> ( <= )
  | Op.Gt -> ( > )
  | Op.Ge -> ( >= )
  | Op.Eq -> ( = )
  | Op.Ne -> ( <> )

let cmp_i : Op.cmp -> int -> int -> bool = function
  | Op.Lt -> ( < )
  | Op.Le -> ( <= )
  | Op.Gt -> ( > )
  | Op.Ge -> ( >= )
  | Op.Eq -> ( = )
  | Op.Ne -> ( <> )

let vf_map (g : float -> float) (a : floatarray) : floatarray =
  Float.Array.map g a

let vf_map2 (g : float -> float -> float) (a : floatarray) (b : floatarray) :
    floatarray =
  Float.Array.map2 g a b

let run ?(externs : Rt.registry = Rt.create_registry ()) (m : Func.modl)
    (fname : string) (args : Rt.v array) : Rt.v array =
  let rec run_func (f : Func.func) (args : Rt.v array) : Rt.v array =
    let env : env = Hashtbl.create 64 in
    List.iteri (fun k p -> set env p args.(k)) f.Func.f_params;
    match run_region env f.f_body with
    | `Return vs -> vs
    | `Yield _ -> fail "yield at function top level"
    | `Fallthrough -> fail "function body did not return"
  and run_region (env : env) (r : Op.region) :
      [ `Return of Rt.v array | `Yield of Rt.v array | `Fallthrough ] =
    let rec go = function
      | [] -> `Fallthrough
      | (o : Op.op) :: rest -> (
          match o.kind with
          | Op.Return -> `Return (Array.map (get env) o.operands)
          | Op.Yield -> `Yield (Array.map (get env) o.operands)
          | _ ->
              run_op env o;
              go rest)
    in
    go r.Op.r_ops
  and run_op (env : env) (o : Op.op) : unit =
    let v k = get env o.operands.(k) in
    let setr k x = set env o.results.(k) x in
    match o.kind with
    | Op.ConstF c -> setr 0 (Rt.F c)
    | Op.ConstI c -> setr 0 (Rt.I c)
    | Op.ConstB c -> setr 0 (Rt.B c)
    | Op.BinF k -> (
        let g = fbin_fn k in
        match (v 0, v 1) with
        | Rt.F a, Rt.F b -> setr 0 (Rt.F (g a b))
        | Rt.VF a, Rt.VF b -> setr 0 (Rt.VF (vf_map2 g a b))
        | _ -> fail "binf: bad operands")
    | Op.NegF -> (
        match v 0 with
        | Rt.F a -> setr 0 (Rt.F (-.a))
        | Rt.VF a -> setr 0 (Rt.VF (vf_map (fun x -> -.x) a))
        | _ -> fail "negf: bad operand")
    | Op.BinI k -> (
        let g = ibin_fn k in
        match (v 0, v 1) with
        | Rt.I a, Rt.I b -> setr 0 (Rt.I (g a b))
        | Rt.VI a, Rt.VI b -> setr 0 (Rt.VI (Array.map2 g a b))
        | _ -> fail "bini: bad operands")
    | Op.BinB k -> (
        let g = bbin_fn k in
        match (v 0, v 1) with
        | Rt.B a, Rt.B b -> setr 0 (Rt.B (g a b))
        | Rt.VB a, Rt.VB b -> setr 0 (Rt.VB (Array.map2 g a b))
        | _ -> fail "binb: bad operands")
    | Op.NotB -> (
        match v 0 with
        | Rt.B a -> setr 0 (Rt.B (not a))
        | Rt.VB a -> setr 0 (Rt.VB (Array.map not a))
        | _ -> fail "not: bad operand")
    | Op.CmpF c -> (
        let g = cmp_f c in
        match (v 0, v 1) with
        | Rt.F a, Rt.F b -> setr 0 (Rt.B (g a b))
        | Rt.VF a, Rt.VF b ->
            setr 0
              (Rt.VB
                 (Array.init (Float.Array.length a) (fun l ->
                      g (Float.Array.get a l) (Float.Array.get b l))))
        | _ -> fail "cmpf: bad operands")
    | Op.CmpI c -> (
        let g = cmp_i c in
        match (v 0, v 1) with
        | Rt.I a, Rt.I b -> setr 0 (Rt.B (g a b))
        | Rt.VI a, Rt.VI b -> setr 0 (Rt.VB (Array.map2 g a b))
        | _ -> fail "cmpi: bad operands")
    | Op.Select -> (
        match (v 0, v 1, v 2) with
        | Rt.B c, x, y -> setr 0 (if c then x else y)
        | Rt.VB c, Rt.VF x, Rt.VF y ->
            setr 0
              (Rt.VF
                 (Float.Array.init (Array.length c) (fun l ->
                      if c.(l) then Float.Array.get x l else Float.Array.get y l)))
        | Rt.VB c, Rt.VI x, Rt.VI y ->
            setr 0 (Rt.VI (Array.init (Array.length c) (fun l -> if c.(l) then x.(l) else y.(l))))
        | _ -> fail "select: bad operands")
    | Op.SIToFP -> (
        match v 0 with
        | Rt.I a -> setr 0 (Rt.F (float_of_int a))
        | Rt.VI a ->
            setr 0 (Rt.VF (Float.Array.init (Array.length a) (fun l -> float_of_int a.(l))))
        | _ -> fail "sitofp: bad operand")
    | Op.FPToSI -> (
        match v 0 with
        | Rt.F a -> setr 0 (Rt.I (int_of_float a))
        | Rt.VF a ->
            setr 0
              (Rt.VI
                 (Array.init (Float.Array.length a) (fun l ->
                      int_of_float (Float.Array.get a l))))
        | _ -> fail "fptosi: bad operand")
    | Op.Math name -> (
        let bi =
          match Easyml.Builtins.find name with
          | Some bi -> bi
          | None -> fail "unknown builtin %s" name
        in
        match Array.map (v |> fun g k -> g k) (Array.init (Array.length o.operands) Fun.id) with
        | ops -> (
            match ops.(0) with
            | Rt.F _ ->
                let args = Array.map Rt.to_f ops in
                setr 0 (Rt.F (bi.eval args))
            | Rt.VF a0 ->
                let w = Float.Array.length a0 in
                let arrs = Array.map Rt.to_vf ops in
                setr 0
                  (Rt.VF
                     (Float.Array.init w (fun l ->
                          bi.eval (Array.map (fun a -> Float.Array.get a l) arrs))))
            | _ -> fail "math: bad operands"))
    | Op.Broadcast -> (
        match (v 0, o.results.(0).ty) with
        | Rt.F a, Ty.Vec (w, _) -> setr 0 (Rt.VF (Float.Array.make w a))
        | Rt.I a, Ty.Vec (w, _) -> setr 0 (Rt.VI (Array.make w a))
        | Rt.B a, Ty.Vec (w, _) -> setr 0 (Rt.VB (Array.make w a))
        | _ -> fail "broadcast: bad operand")
    | Op.VecExtract lane -> (
        match v 0 with
        | Rt.VF a -> setr 0 (Rt.F (Float.Array.get a lane))
        | Rt.VI a -> setr 0 (Rt.I a.(lane))
        | Rt.VB a -> setr 0 (Rt.B a.(lane))
        | _ -> fail "vector.extract: bad operand")
    | Op.VecLoad -> (
        match (v 0, v 1, o.results.(0).ty) with
        | Rt.M buf, Rt.I base, Ty.Vec (w, _) ->
            setr 0 (Rt.VF (Float.Array.init w (fun l -> Float.Array.get buf (base + l))))
        | _ -> fail "vector.load: bad operands")
    | Op.VecStore -> (
        match (v 0, v 1, v 2) with
        | Rt.VF x, Rt.M buf, Rt.I base ->
            Float.Array.iteri (fun l e -> Float.Array.set buf (base + l) e) x
        | _ -> fail "vector.store: bad operands")
    | Op.Gather -> (
        match (v 0, v 1) with
        | Rt.M buf, Rt.VI idx ->
            setr 0
              (Rt.VF
                 (Float.Array.init (Array.length idx) (fun l ->
                      Float.Array.get buf idx.(l))))
        | _ -> fail "vector.gather: bad operands")
    | Op.Scatter -> (
        match (v 0, v 1, v 2) with
        | Rt.VF x, Rt.M buf, Rt.VI idx ->
            Array.iteri (fun l j -> Float.Array.set buf j (Float.Array.get x l)) idx
        | _ -> fail "vector.scatter: bad operands")
    | Op.Iota w -> setr 0 (Rt.VI (Array.init w Fun.id))
    | Op.Alloc -> (
        match v 0 with
        | Rt.I n -> setr 0 (Rt.M (Float.Array.make n 0.0))
        | _ -> fail "alloc: bad operand")
    | Op.MemLoad -> (
        match (v 0, v 1) with
        | Rt.M buf, Rt.I k -> setr 0 (Rt.F (Float.Array.get buf k))
        | _ -> fail "memref.load: bad operands")
    | Op.MemStore -> (
        match (v 0, v 1, v 2) with
        | Rt.F x, Rt.M buf, Rt.I k -> Float.Array.set buf k x
        | _ -> fail "memref.store: bad operands")
    | Op.For _ -> (
        match (v 0, v 1, v 2) with
        | Rt.I lb, Rt.I ub, Rt.I step ->
            let inits =
              Array.sub o.operands 3 (Array.length o.operands - 3)
              |> Array.map (get env)
            in
            let region = o.regions.(0) in
            let iv, iter_args =
              match region.Op.r_args with
              | iv :: rest -> (iv, rest)
              | [] -> fail "scf.for: missing induction arg"
            in
            let iters = ref inits in
            let k = ref lb in
            while !k < ub do
              set env iv (Rt.I !k);
              List.iteri (fun j a -> set env a !iters.(j)) iter_args;
              (match run_region env region with
              | `Yield vs -> iters := vs
              | `Return _ -> fail "return inside scf.for"
              | `Fallthrough -> fail "scf.for body missing yield");
              k := !k + step
            done;
            Array.iteri (fun j r -> set env r !iters.(j)) o.results
        | _ -> fail "scf.for: bad bounds")
    | Op.If -> (
        match v 0 with
        | Rt.B c -> (
            let region = if c then o.regions.(0) else o.regions.(1) in
            match run_region env region with
            | `Yield vs -> Array.iteri (fun j r -> set env r vs.(j)) o.results
            | `Return _ -> fail "return inside scf.if"
            | `Fallthrough -> fail "scf.if branch missing yield")
        | _ -> fail "scf.if: bad condition")
    | Op.Call name -> (
        let args = Array.map (get env) o.operands in
        let rets =
          match Func.find_func m name with
          | Some callee -> run_func callee args
          | None -> (Rt.lookup externs name) args
        in
        Array.iteri (fun j r -> set env r rets.(j)) o.results)
    | Op.Yield | Op.Return -> assert false
  in
  match Func.find_func m fname with
  | Some f -> run_func f args
  | None -> fail "unknown function @%s" fname
