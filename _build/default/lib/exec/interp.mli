(** Reference tree-walking interpreter: the semantic oracle the closure
    engine is differentially tested against.  Slow and allocation-heavy by
    design. *)

exception Interp_error of string

val run :
  ?externs:Rt.registry -> Ir.Func.modl -> string -> Rt.v array -> Rt.v array
(** Interpret one function of a module. @raise Interp_error. *)
