(** Runtime values exchanged between the host, the execution engines and
    extern (runtime library) functions.

    Memrefs are flat [floatarray] buffers (unboxed doubles), matching the
    [memref<?xf64>] views the generated kernels operate on. *)

type v =
  | F of float
  | I of int
  | B of bool
  | VF of floatarray  (** vector<wxf64> *)
  | VI of int array  (** vector<wxi64> *)
  | VB of bool array  (** vector<wxi1> *)
  | M of floatarray  (** memref<?xf64> *)

let type_name = function
  | F _ -> "f64"
  | I _ -> "i64"
  | B _ -> "i1"
  | VF _ -> "vector<f64>"
  | VI _ -> "vector<i64>"
  | VB _ -> "vector<i1>"
  | M _ -> "memref"

let to_f = function F f -> f | v -> invalid_arg ("Rt.to_f: " ^ type_name v)
let to_i = function I i -> i | v -> invalid_arg ("Rt.to_i: " ^ type_name v)
let to_b = function B b -> b | v -> invalid_arg ("Rt.to_b: " ^ type_name v)
let to_vf = function VF a -> a | v -> invalid_arg ("Rt.to_vf: " ^ type_name v)
let to_vi = function VI a -> a | v -> invalid_arg ("Rt.to_vi: " ^ type_name v)
let to_m = function M a -> a | v -> invalid_arg ("Rt.to_m: " ^ type_name v)

(** Extern function registry: runtime-library entry points callable from IR
    via [func.call] (the analogue of openCARP's [LUT_interpRow] and friends). *)
type registry = (string, v array -> v array) Hashtbl.t

let create_registry () : registry = Hashtbl.create 16
let register (r : registry) name f = Hashtbl.replace r name f

let lookup (r : registry) name =
  match Hashtbl.find_opt r name with
  | Some f -> f
  | None -> invalid_arg ("Rt.lookup: unregistered extern " ^ name)

(** A fresh zero-initialised buffer. *)
let buffer (n : int) : floatarray = Float.Array.make n 0.0

let buffer_of_list (l : float list) : floatarray =
  let a = Float.Array.create (List.length l) in
  List.iteri (Float.Array.set a) l;
  a

let buffer_to_list (a : floatarray) : float list =
  List.init (Float.Array.length a) (Float.Array.get a)
