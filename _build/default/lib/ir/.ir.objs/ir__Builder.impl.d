lib/ir/builder.ml: Array Easyml Fmt Func List Op Ty Value
