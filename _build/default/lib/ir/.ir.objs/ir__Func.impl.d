lib/ir/func.ml: List Op Ty Value
