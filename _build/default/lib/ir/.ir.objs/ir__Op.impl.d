lib/ir/op.ml: Array List Value
