lib/ir/parser.ml: Array Builder Float Fmt Func Hashtbl List Op Printf Result String Ty Value
