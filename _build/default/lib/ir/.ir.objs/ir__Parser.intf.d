lib/ir/parser.mli: Func
