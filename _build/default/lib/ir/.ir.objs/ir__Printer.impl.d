lib/ir/printer.ml: Array Fmt Func List Op String Ty Value
