lib/ir/printer.mli: Format Func
