lib/ir/ty.ml: Fmt
