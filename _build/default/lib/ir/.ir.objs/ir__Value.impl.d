lib/ir/value.ml: Fmt Int Map Set Ty
