lib/ir/verifier.ml: Array Easyml Fmt Func Int List Op Set String Ty Value
