lib/ir/verifier.mli: Format Func
