(** Parser for the textual IR emitted by {!Printer} (not a general MLIR
    parser): lets kernels round-trip through files and gives the test
    suite a strong printer/parser fixpoint property. *)

exception Error of { line : int; msg : string }

val parse_module : string -> Func.modl
(** @raise Error with the offending line. *)

val parse_module_result : string -> (Func.modl, string) result
