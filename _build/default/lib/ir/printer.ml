(** MLIR-style textual printer.

    Output resembles the paper's Listing 3: SSA names are [%N], ops are
    printed as [dialect.op] with a trailing type annotation, and structured
    control flow indents its regions. *)

let pp_operands ppf (ops : Value.t array) =
  Fmt.array ~sep:(Fmt.any ", ") Value.pp ppf ops

let result_prefix ppf (results : Value.t array) =
  if Array.length results > 0 then
    Fmt.pf ppf "%a = " (Fmt.array ~sep:(Fmt.any ", ") Value.pp) results

let op_types (o : Op.op) : string =
  let tys vs =
    Array.to_list vs
    |> List.map (fun (v : Value.t) -> Ty.to_string v.ty)
    |> String.concat ", "
  in
  match (Array.length o.operands, Array.length o.results) with
  | 0, 0 -> ""
  | _, 0 -> " : (" ^ tys o.operands ^ ") -> ()"
  | 0, _ -> " : " ^ tys o.results
  | _, _ -> " : (" ^ tys o.operands ^ ") -> " ^ tys o.results

let rec pp_op (indent : int) ppf (o : Op.op) =
  let pad = String.make indent ' ' in
  match o.kind with
  | Op.ConstF f ->
      Fmt.pf ppf "%s%aarith.constant %.17g : f64@," pad result_prefix o.results f
  | Op.ConstI i ->
      Fmt.pf ppf "%s%aarith.constant %d : i64@," pad result_prefix o.results i
  | Op.ConstB v ->
      Fmt.pf ppf "%s%aarith.constant %b : i1@," pad result_prefix o.results v
  | Op.VecExtract lane ->
      Fmt.pf ppf "%s%avector.extract %a [%d] : %a@," pad result_prefix
        o.results pp_operands o.operands lane Ty.pp o.operands.(0).ty
  | Op.CmpF c ->
      Fmt.pf ppf "%s%aarith.cmpf %s, %a : %a@," pad result_prefix o.results
        (Op.cmp_name c) pp_operands o.operands Ty.pp o.operands.(0).ty
  | Op.CmpI c ->
      Fmt.pf ppf "%s%aarith.cmpi %s, %a : %a@," pad result_prefix o.results
        (Op.cmp_name c) pp_operands o.operands Ty.pp o.operands.(0).ty
  | Op.For { parallel } ->
      let lb = o.operands.(0) and ub = o.operands.(1) and step = o.operands.(2) in
      let inits = Array.sub o.operands 3 (Array.length o.operands - 3) in
      let region = o.regions.(0) in
      let iv, iters =
        match region.Op.r_args with
        | iv :: rest -> (iv, rest)
        | [] -> assert false
      in
      Fmt.pf ppf "%s%a%s %a = %a to %a step %a" pad result_prefix o.results
        (if parallel then "scf.parallel" else "scf.for")
        Value.pp iv Value.pp lb Value.pp ub Value.pp step;
      if iters <> [] then
        Fmt.pf ppf " iter_args(%a = %a)"
          (Fmt.list ~sep:(Fmt.any ", ") Value.pp)
          iters
          (Fmt.array ~sep:(Fmt.any ", ") Value.pp)
          inits;
      Fmt.pf ppf " {@,";
      pp_region (indent + 2) ppf region;
      Fmt.pf ppf "%s}@," pad
  | Op.If ->
      Fmt.pf ppf "%s%ascf.if %a {@," pad result_prefix o.results Value.pp
        o.operands.(0);
      pp_region (indent + 2) ppf o.regions.(0);
      if o.regions.(1).Op.r_ops <> [] then begin
        Fmt.pf ppf "%s} else {@," pad;
        pp_region (indent + 2) ppf o.regions.(1)
      end;
      Fmt.pf ppf "%s}@," pad
  | _ ->
      Fmt.pf ppf "%s%a%s %a%s@," pad result_prefix o.results
        (Op.kind_name o.kind) pp_operands o.operands (op_types o)

and pp_region (indent : int) ppf (r : Op.region) =
  List.iter (pp_op indent ppf) r.Op.r_ops

let pp_func ppf (f : Func.func) =
  Fmt.pf ppf "@[<v>func.func @%s(%a) -> (%a) {@," f.Func.f_name
    (Fmt.list ~sep:(Fmt.any ", ") Value.pp_typed)
    f.f_params
    (Fmt.list ~sep:(Fmt.any ", ") Ty.pp)
    f.f_results;
  pp_region 2 ppf f.f_body;
  Fmt.pf ppf "}@]"

let pp_module ppf (m : Func.modl) =
  Fmt.pf ppf "@[<v>module @%s {@," m.Func.m_name;
  List.iter
    (fun (e : Func.extern_sig) ->
      Fmt.pf ppf "  func.func private @%s(%a) -> (%a)@," e.e_name
        (Fmt.list ~sep:(Fmt.any ", ") Ty.pp)
        e.e_params
        (Fmt.list ~sep:(Fmt.any ", ") Ty.pp)
        e.e_results)
    m.m_externs;
  List.iter (fun f -> Fmt.pf ppf "  @[<v>%a@]@," pp_func f) m.m_funcs;
  Fmt.pf ppf "}@]"

let func_to_string (f : Func.func) : string = Fmt.str "%a" pp_func f
let module_to_string (m : Func.modl) : string = Fmt.str "%a" pp_module m
