(** MLIR-style textual printer (the format of the paper's Listing 3). *)

val pp_func : Format.formatter -> Func.func -> unit
val pp_module : Format.formatter -> Func.modl -> unit
val func_to_string : Func.func -> string
val module_to_string : Func.modl -> string
