(** IR types.

    A deliberately small lattice mirroring the MLIR types limpetMLIR uses:
    [f64] scalars, [i64] indices, [i1] conditions, fixed-width vectors of
    those, and 1-D dynamically-sized [memref]s of [f64] (cell state arrays,
    external-variable arrays and lookup tables are all flat double buffers,
    exactly as in the generated code of the paper's Listing 3). *)

type t =
  | F64
  | I64
  | I1
  | Vec of int * t  (** [Vec (w, elem)]; [elem] must be scalar *)
  | Memref  (** 1-D dynamically-sized buffer of f64 *)

let rec pp ppf = function
  | F64 -> Fmt.string ppf "f64"
  | I64 -> Fmt.string ppf "i64"
  | I1 -> Fmt.string ppf "i1"
  | Vec (w, e) -> Fmt.pf ppf "vector<%dx%a>" w pp e
  | Memref -> Fmt.string ppf "memref<?xf64>"

let to_string t = Fmt.str "%a" pp t
let equal (a : t) (b : t) = a = b

let is_scalar = function F64 | I64 | I1 -> true | Vec _ | Memref -> false
let is_float_like = function F64 | Vec (_, F64) -> true | _ -> false
let is_int_like = function I64 | Vec (_, I64) -> true | _ -> false
let is_bool_like = function I1 | Vec (_, I1) -> true | _ -> false

(** Width of a vector type, 1 for scalars. *)
let width = function Vec (w, _) -> w | _ -> 1

(** Element type of a vector, identity on scalars. *)
let elem = function Vec (_, e) -> e | t -> t

(** [vec w t] is [t] when [w = 1], otherwise a vector of [t]. *)
let vec (w : int) (t : t) : t =
  if w <= 0 then invalid_arg "Ty.vec: non-positive width"
  else if w = 1 then t
  else
    match t with
    | F64 | I64 | I1 -> Vec (w, t)
    | Vec _ | Memref -> invalid_arg "Ty.vec: element must be scalar"

(** Map a scalar type to the same-shaped type as [like]. *)
let like ~(like : t) (scalar : t) : t = vec (width like) scalar
