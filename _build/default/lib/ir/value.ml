(** SSA values. Each value is defined exactly once, either as a block
    argument or as an op result. Identity is the numeric id. *)

type t = { id : int; ty : Ty.t }

let equal (a : t) (b : t) = Int.equal a.id b.id
let compare (a : t) (b : t) = Int.compare a.id b.id
let hash (a : t) = a.id
let pp ppf (v : t) = Fmt.pf ppf "%%%d" v.id
let pp_typed ppf (v : t) = Fmt.pf ppf "%%%d : %a" v.id Ty.pp v.ty

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
