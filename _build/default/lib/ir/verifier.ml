(** IR verifier.

    Checks, for every op in every function of a module:
    - SSA: each value is defined exactly once, and every use is dominated by
      its definition (here: defined earlier in the same region or in an
      enclosing region — single-block regions make dominance lexical);
    - typing: operand/result types obey the rules documented in {!Op};
    - structure: [scf.for]/[scf.if] regions are terminated by [scf.yield]
      with types matching the op results, and [func.call] matches the callee
      signature. *)

type error = { in_func : string; op : string; msg : string }

let pp_error ppf (e : error) =
  Fmt.pf ppf "verifier: in @%s, %s: %s" e.in_func e.op e.msg

exception Failed of error list

module ISet = Set.Make (Int)

let verify_func ?(modl : Func.modl option) (f : Func.func) : error list =
  let errors = ref [] in
  let err op fmt =
    Fmt.kstr
      (fun msg ->
        errors :=
          { in_func = f.Func.f_name; op = Op.kind_name op.Op.kind; msg }
          :: !errors)
      fmt
  in
  let defined = ref ISet.empty in
  let define op (v : Value.t) =
    if ISet.mem v.id !defined then err op "value %%%d defined twice" v.id
    else defined := ISet.add v.id !defined
  in
  let check_use op (v : Value.t) =
    if not (ISet.mem v.id !defined) then
      err op "use of value %%%d before its definition" v.id
  in
  let tys vs = Array.to_list vs |> List.map (fun (v : Value.t) -> v.Value.ty) in
  let expect_op op what cond = if not cond then err op "%s" what in
  let float_like op (v : Value.t) =
    expect_op op
      (Fmt.str "expected float-like operand, got %a" Ty.pp v.ty)
      (Ty.is_float_like v.ty)
  in
  let same_shape op (a : Value.t) (b : Value.t) =
    expect_op op
      (Fmt.str "operand types differ: %a vs %a" Ty.pp a.ty Ty.pp b.ty)
      (Ty.equal a.ty b.ty)
  in
  let rec check_region ~(enclosing : ISet.t) (r : Op.region) ~(yield_tys : Ty.t list option) =
    let saved = !defined in
    defined := ISet.union enclosing saved;
    List.iter (fun (a : Value.t) -> defined := ISet.add a.id !defined) r.Op.r_args;
    let n = List.length r.Op.r_ops in
    List.iteri
      (fun i (op : Op.op) ->
        Array.iter (check_use op) op.operands;
        check_op op;
        Array.iter (define op) op.results;
        match op.kind with
        | Op.Yield -> (
            if i <> n - 1 then err op "yield must be the last op of its region";
            match yield_tys with
            | None -> err op "yield outside of an scf region"
            | Some expected ->
                if tys op.operands <> expected then
                  err op "yield types do not match enclosing op results")
        | _ -> ())
      r.Op.r_ops;
    (match (yield_tys, List.rev r.Op.r_ops) with
    | Some _, { Op.kind = Op.Yield; _ } :: _ -> ()
    | Some _, _ ->
        errors :=
          { in_func = f.Func.f_name; op = "region"; msg = "missing scf.yield terminator" }
          :: !errors
    | None, _ -> ());
    defined := saved
  and check_op (op : Op.op) =
    let o = op.operands and r = op.results in
    let nop = Array.length o and nres = Array.length r in
    let arity k l =
      expect_op op (Fmt.str "expected %d operands, got %d" k nop) (nop = k);
      expect_op op (Fmt.str "expected %d results, got %d" l nres) (nres = l)
    in
    match op.kind with
    | Op.ConstF _ ->
        arity 0 1;
        if nres = 1 then
          expect_op op "constant result must be f64" (Ty.equal r.(0).ty Ty.F64)
    | Op.ConstI _ ->
        arity 0 1;
        if nres = 1 then
          expect_op op "constant result must be i64" (Ty.equal r.(0).ty Ty.I64)
    | Op.ConstB _ ->
        arity 0 1;
        if nres = 1 then
          expect_op op "constant result must be i1" (Ty.equal r.(0).ty Ty.I1)
    | Op.BinF _ ->
        arity 2 1;
        if nop = 2 && nres = 1 then begin
          float_like op o.(0);
          same_shape op o.(0) o.(1);
          same_shape op o.(0) r.(0)
        end
    | Op.NegF ->
        arity 1 1;
        if nop = 1 && nres = 1 then begin
          float_like op o.(0);
          same_shape op o.(0) r.(0)
        end
    | Op.BinI _ ->
        arity 2 1;
        if nop = 2 && nres = 1 then begin
          expect_op op "expected i64 operands" (Ty.is_int_like o.(0).ty);
          same_shape op o.(0) o.(1);
          same_shape op o.(0) r.(0)
        end
    | Op.BinB _ ->
        arity 2 1;
        if nop = 2 && nres = 1 then begin
          expect_op op "expected i1 operands" (Ty.is_bool_like o.(0).ty);
          same_shape op o.(0) o.(1);
          same_shape op o.(0) r.(0)
        end
    | Op.NotB ->
        arity 1 1;
        if nop = 1 && nres = 1 then begin
          expect_op op "expected i1 operand" (Ty.is_bool_like o.(0).ty);
          same_shape op o.(0) r.(0)
        end
    | Op.CmpF _ ->
        arity 2 1;
        if nop = 2 && nres = 1 then begin
          float_like op o.(0);
          same_shape op o.(0) o.(1);
          expect_op op "cmpf result must be i1-like of same width"
            (Ty.equal r.(0).ty (Ty.like ~like:o.(0).ty Ty.I1))
        end
    | Op.CmpI _ ->
        arity 2 1;
        if nop = 2 && nres = 1 then begin
          expect_op op "expected i64 operands" (Ty.is_int_like o.(0).ty);
          same_shape op o.(0) o.(1);
          expect_op op "cmpi result must be i1-like of same width"
            (Ty.equal r.(0).ty (Ty.like ~like:o.(0).ty Ty.I1))
        end
    | Op.Select ->
        arity 3 1;
        if nop = 3 && nres = 1 then begin
          expect_op op "select condition must be i1-like" (Ty.is_bool_like o.(0).ty);
          same_shape op o.(1) o.(2);
          same_shape op o.(1) r.(0);
          expect_op op "select width mismatch"
            (Ty.width o.(0).ty = Ty.width o.(1).ty)
        end
    | Op.SIToFP ->
        arity 1 1;
        if nop = 1 && nres = 1 then
          expect_op op "sitofp: i64-like -> f64-like"
            (Ty.is_int_like o.(0).ty
            && Ty.equal r.(0).ty (Ty.like ~like:o.(0).ty Ty.F64))
    | Op.FPToSI ->
        arity 1 1;
        if nop = 1 && nres = 1 then
          expect_op op "fptosi: f64-like -> i64-like"
            (Ty.is_float_like o.(0).ty
            && Ty.equal r.(0).ty (Ty.like ~like:o.(0).ty Ty.I64))
    | Op.Math name -> (
        match Easyml.Builtins.find name with
        | None -> err op "unknown math builtin %s" name
        | Some bi ->
            arity bi.arity 1;
            if nop = bi.arity && nres = 1 then begin
              Array.iter (float_like op) o;
              Array.iter (same_shape op r.(0)) o
            end)
    | Op.Broadcast ->
        arity 1 1;
        if nop = 1 && nres = 1 then
          expect_op op "broadcast: scalar -> vector of it"
            (Ty.is_scalar o.(0).ty
            &&
            match r.(0).ty with
            | Ty.Vec (_, e) -> Ty.equal e o.(0).ty
            | _ -> false)
    | Op.VecExtract lane ->
        arity 1 1;
        if nop = 1 && nres = 1 then
          expect_op op "vector.extract: lane in range, scalar result"
            (match o.(0).ty with
            | Ty.Vec (w, e) -> lane >= 0 && lane < w && Ty.equal r.(0).ty e
            | _ -> false)
    | Op.VecLoad ->
        arity 2 1;
        if nop = 2 && nres = 1 then
          expect_op op "vector.load: (memref, i64) -> vector<wxf64>"
            (Ty.equal o.(0).ty Ty.Memref
            && Ty.equal o.(1).ty Ty.I64
            && match r.(0).ty with Ty.Vec (_, Ty.F64) -> true | _ -> false)
    | Op.VecStore ->
        arity 3 0;
        if nop = 3 then
          expect_op op "vector.store: (vector<wxf64>, memref, i64)"
            ((match o.(0).ty with Ty.Vec (_, Ty.F64) -> true | _ -> false)
            && Ty.equal o.(1).ty Ty.Memref
            && Ty.equal o.(2).ty Ty.I64)
    | Op.Gather ->
        arity 2 1;
        if nop = 2 && nres = 1 then
          expect_op op "vector.gather: (memref, vector<wxi64>) -> vector<wxf64>"
            (Ty.equal o.(0).ty Ty.Memref
            &&
            match (o.(1).ty, r.(0).ty) with
            | Ty.Vec (w1, Ty.I64), Ty.Vec (w2, Ty.F64) -> w1 = w2
            | _ -> false)
    | Op.Scatter ->
        arity 3 0;
        if nop = 3 then
          expect_op op "vector.scatter: (vector<wxf64>, memref, vector<wxi64>)"
            (match (o.(0).ty, o.(2).ty) with
            | Ty.Vec (w1, Ty.F64), Ty.Vec (w2, Ty.I64) ->
                w1 = w2 && Ty.equal o.(1).ty Ty.Memref
            | _ -> false)
    | Op.Iota w ->
        arity 0 1;
        if nres = 1 then
          expect_op op "vector.step result must be vector<wxi64>"
            (Ty.equal r.(0).ty (Ty.Vec (w, Ty.I64)))
    | Op.Alloc ->
        arity 1 1;
        if nop = 1 && nres = 1 then
          expect_op op "memref.alloc: (i64) -> memref"
            (Ty.equal o.(0).ty Ty.I64 && Ty.equal r.(0).ty Ty.Memref)
    | Op.MemLoad ->
        arity 2 1;
        if nop = 2 && nres = 1 then
          expect_op op "memref.load: (memref, i64) -> f64"
            (Ty.equal o.(0).ty Ty.Memref
            && Ty.equal o.(1).ty Ty.I64
            && Ty.equal r.(0).ty Ty.F64)
    | Op.MemStore ->
        arity 3 0;
        if nop = 3 then
          expect_op op "memref.store: (f64, memref, i64)"
            (Ty.equal o.(0).ty Ty.F64
            && Ty.equal o.(1).ty Ty.Memref
            && Ty.equal o.(2).ty Ty.I64)
    | Op.For _ ->
        expect_op op "scf.for needs at least (lb, ub, step)" (nop >= 3);
        expect_op op "scf.for needs exactly one region"
          (Array.length op.regions = 1);
        if nop >= 3 && Array.length op.regions = 1 then begin
          expect_op op "scf.for bounds must be i64"
            (Ty.equal o.(0).ty Ty.I64 && Ty.equal o.(1).ty Ty.I64
           && Ty.equal o.(2).ty Ty.I64);
          let iter_tys =
            Array.sub o 3 (nop - 3) |> tys
          in
          expect_op op "scf.for results must match iter operands"
            (tys r = iter_tys);
          let region = op.regions.(0) in
          (match region.Op.r_args with
          | iv :: rest ->
              expect_op op "scf.for induction variable must be i64"
                (Ty.equal iv.Value.ty Ty.I64);
              expect_op op "scf.for block args must match iter operands"
                (List.map (fun (v : Value.t) -> v.ty) rest = iter_tys)
          | [] -> err op "scf.for region needs an induction argument");
          check_region ~enclosing:!defined region ~yield_tys:(Some iter_tys)
        end
    | Op.If ->
        arity 1 nres;
        expect_op op "scf.if needs exactly two regions"
          (Array.length op.regions = 2);
        if nop = 1 && Array.length op.regions = 2 then begin
          expect_op op "scf.if condition must be i1" (Ty.equal o.(0).ty Ty.I1);
          let rtys = tys r in
          Array.iter
            (fun region ->
              expect_op op "scf.if region must have no arguments"
                (region.Op.r_args = []);
              check_region ~enclosing:!defined region ~yield_tys:(Some rtys))
            op.regions
        end
    | Op.Yield -> () (* checked by the enclosing region *)
    | Op.Call name -> (
        match modl with
        | None -> ()
        | Some m -> (
            match Func.callee_sig m name with
            | None -> err op "call to unknown function @%s" name
            | Some (ptys, rtys) ->
                expect_op op "call argument types do not match signature"
                  (tys o = ptys);
                expect_op op "call result types do not match signature"
                  (tys r = rtys)))
    | Op.Return ->
        if tys o <> f.Func.f_results then
          err op "return types do not match function signature"
  in
  List.iter (fun (a : Value.t) -> defined := ISet.add a.id !defined) f.f_params;
  (* the function body is not an scf region: no yield check, must end in
     return (checked by the builder); we still validate op structure. *)
  let n = List.length f.f_body.Op.r_ops in
  List.iteri
    (fun i (op : Op.op) ->
      Array.iter (check_use op) op.operands;
      check_op op;
      Array.iter (define op) op.results;
      match op.kind with
      | Op.Yield ->
          errors :=
            { in_func = f.Func.f_name; op = "scf.yield"; msg = "yield at function top level" }
            :: !errors
      | Op.Return when i <> n - 1 ->
          errors :=
            { in_func = f.Func.f_name; op = "func.return"; msg = "return must be last" }
            :: !errors
      | _ -> ())
    f.f_body.Op.r_ops;
  List.rev !errors

let verify_module (m : Func.modl) : error list =
  List.concat_map (verify_func ~modl:m) m.Func.m_funcs

(** Raise {!Failed} if the module does not verify. *)
let verify_module_exn (m : Func.modl) : unit =
  match verify_module m with [] -> () | errs -> raise (Failed errs)

let errors_to_string (errs : error list) : string =
  String.concat "\n" (List.map (Fmt.str "%a" pp_error) errs)
