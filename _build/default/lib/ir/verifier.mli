(** IR verifier: SSA (single definition, lexical dominance in single-block
    regions), per-op typing, structured-control-flow well-formedness and
    call-signature checks. *)

type error = { in_func : string; op : string; msg : string }

val pp_error : Format.formatter -> error -> unit

exception Failed of error list

val verify_func : ?modl:Func.modl -> Func.func -> error list
(** Empty when the function is well-formed; pass [modl] to also check call
    signatures. *)

val verify_module : Func.modl -> error list
val verify_module_exn : Func.modl -> unit
(** @raise Failed with the error list. *)

val errors_to_string : error list -> string
