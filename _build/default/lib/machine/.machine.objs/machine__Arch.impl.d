lib/machine/arch.ml: Printf
