lib/machine/ert.ml: Arch Float List
