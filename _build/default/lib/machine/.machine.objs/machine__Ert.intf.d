lib/machine/ert.mli: Arch
