lib/machine/kcost.ml: Arch Array Codegen Easyml Func Hashtbl Ir List Op Ty Value
