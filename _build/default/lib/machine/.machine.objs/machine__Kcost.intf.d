lib/machine/kcost.mli: Arch Codegen Ir
