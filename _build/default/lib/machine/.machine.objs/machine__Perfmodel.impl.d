lib/machine/perfmodel.ml: Arch Codegen Easyml Float Kcost List
