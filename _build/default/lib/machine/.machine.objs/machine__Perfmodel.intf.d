lib/machine/perfmodel.mli: Arch Codegen Kcost
