(** Architecture descriptors for the performance model.

    The experimental platform the paper reports on — a 2×18-core Cascade
    Lake Xeon Gold 6240 @ 2.6 GHz with SSE/AVX2/AVX-512 — is not available
    in this environment (single hosted core, no AVX), so speedup *shapes*
    are reproduced through a calibrated analytical cost model.  Parameters
    below are taken from the paper's measured roofline (§4.5: 760 GFlop/s
    peak, 199 GB/s DRAM, 1052 GB/s L1) and public Cascade Lake
    instruction-cost data; they are deliberately round numbers, not a
    cycle-accurate simulation. *)

type t = {
  name : string;
  width : int;  (** vector width in doubles (1 = scalar ISA) *)
  freq_ghz : float;  (** core clock *)
  cores : int;  (** physical cores available to OpenMP *)
  (* per-op costs in cycles; vector ops pay once per vector *)
  flop_cycles : float;  (** add/sub/mul/select/cmp, per op *)
  div_cycles : float;  (** divide, per op (scalar); vector pays w/2× *)
  libm_factor : float;  (** cycles per builtin "flop" unit for scalar libm *)
  svml_factor : float;
      (** cycles per builtin flop unit for one *vector* SVML call —
          roughly independent of width, which is where the math speedup
          comes from *)
  load_cycles : float;  (** L1-hit scalar load/store *)
  vload_cycles : float;  (** contiguous vector load/store *)
  gather_base : float;  (** fixed cost of a gather/scatter *)
  gather_lane : float;  (** extra cycles per gather/scatter lane *)
  loop_cycles : float;  (** per-iteration loop control *)
  call_overhead : float;  (** per kernel invocation *)
  (* memory system *)
  l1_bw : float;  (** per-core L1 bandwidth, GB/s *)
  l2_bw : float;  (** per-core L2 bandwidth, GB/s *)
  dram_bw : float;  (** socket-aggregate DRAM bandwidth, GB/s *)
  dram_core_bw : float;  (** single-core sustainable DRAM bandwidth, GB/s *)
  l2_size : int;  (** per-core L2 bytes *)
  l3_size : int;  (** aggregate L3 bytes *)
  (* threading *)
  barrier_base_us : float;  (** OpenMP barrier latency floor, µs *)
  barrier_core_us : float;  (** extra barrier latency per participating core *)
}

let cascade_lake ~(width : int) : t =
  {
    name =
      (match width with
      | 1 -> "scalar"
      | 2 -> "sse"
      | 4 -> "avx2"
      | 8 -> "avx512"
      | w -> Printf.sprintf "vec%d" w);
    width;
    freq_ghz = 2.6;
    cores = 32;
    flop_cycles = 1.0;
    div_cycles = 4.0;
    libm_factor = 2.4;
    svml_factor = 1.4;
    load_cycles = 1.0;
    vload_cycles = 1.5;
    gather_base = 3.0;
    gather_lane = 0.9;
    loop_cycles = 2.0;
    call_overhead = 60.0;
    l1_bw = 33.0;
    l2_bw = 25.0;
    dram_bw = 199.0;
    dram_core_bw = 13.0;
    l2_size = 1 lsl 20;
    l3_size = 25 * (1 lsl 20);
    barrier_base_us = 1.2;
    barrier_core_us = 0.12;
  }

let scalar = cascade_lake ~width:1
let sse = cascade_lake ~width:2
let avx2 = cascade_lake ~width:4
let avx512 = cascade_lake ~width:8

let of_width (w : int) : t = cascade_lake ~width:w

(** Peak double-precision GFlop/s with [cores] threads.  The theoretical
    peak (2 FMA units × 2 flops per lane per cycle) is derated by the
    empirically-achievable fraction ERT reports on Cascade Lake — heavy
    AVX-512 use downclocks the core; the paper measured 760 GFlop/s on 32
    cores where the data sheet promises ~2.6 TFlop/s. *)
let ert_efficiency = 0.285

let peak_gflops (a : t) ~(nthreads : int) : float =
  a.freq_ghz *. float_of_int (max a.width 1) *. 4.0 *. ert_efficiency
  *. float_of_int nthreads
