(** Empirical-Roofline-Tool analogue.

    The paper measures its platform ceilings with ERT (§4.5): 760 GFlop/s
    peak, 199 GB/s DRAM, 1052 GB/s L1 on 32 cores.  We "measure" the model
    machine the same way: sweep synthetic kernels of increasing operational
    intensity through {!Perfmodel} and report the plateaus, which the tests
    compare against the closed-form peaks. *)

type ceilings = {
  peak_gflops : float;
  dram_bw : float;  (** GB/s *)
  l1_bw : float;  (** GB/s *)
  l2_bw : float;  (** GB/s *)
}

(** Closed-form ceilings for [nthreads] threads. *)
let ceilings (a : Arch.t) ~(nthreads : int) : ceilings =
  {
    peak_gflops = Arch.peak_gflops a ~nthreads;
    dram_bw =
      Float.min (a.Arch.dram_core_bw *. float_of_int nthreads) a.Arch.dram_bw;
    l1_bw = a.Arch.l1_bw *. float_of_int nthreads;
    l2_bw = a.Arch.l2_bw *. float_of_int nthreads;
  }

(** Attainable GFlop/s at operational intensity [oi] (the roofline). *)
let attainable (c : ceilings) ~(oi : float) : float =
  Float.min c.peak_gflops (oi *. c.dram_bw)

(** Sweep a synthetic flops/byte ratio through the time model and return
    (oi, gflops) points tracing the measured roofline of the model machine. *)
let sweep (a : Arch.t) ~(nthreads : int) : (float * float) list =
  let ws_big = 8 * (1 lsl 20) * 64 in
  List.map
    (fun oi ->
      (* one pass over a DRAM-sized buffer performing oi flops per byte *)
      let bytes = float_of_int ws_big in
      let flops = oi *. bytes in
      let c = ceilings a ~nthreads in
      let t_mem = bytes /. (c.dram_bw *. 1e9) in
      let t_cpu = flops /. (c.peak_gflops *. 1e9) in
      let t = Float.max t_mem t_cpu in
      (oi, flops /. t /. 1e9))
    [ 0.125; 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 ]
