(** Empirical-Roofline-Tool analogue: the model machine's measured
    ceilings (the paper reports 760 GFlop/s, 199 GB/s DRAM, 1052 GB/s L1
    on 32 cores). *)

type ceilings = {
  peak_gflops : float;
  dram_bw : float;
  l1_bw : float;
  l2_bw : float;
}

val ceilings : Arch.t -> nthreads:int -> ceilings
val attainable : ceilings -> oi:float -> float
val sweep : Arch.t -> nthreads:int -> (float * float) list
(** (operational intensity, achieved GFlop/s) points tracing the roofline. *)
