(** Static cost analysis of generated kernels.

    Walks the compute function of a generated kernel and accumulates, for
    one iteration of the cell loop, the model cycle cost, flop count and
    memory traffic — then normalizes per cell (a vector iteration covers
    [width] cells).  The paper obtains the same quantities by instrumenting
    the generated MLIR (memory ops) and reading hardware counters (flops);
    here the IR is the single source of truth for both. *)

open Ir

type metrics = {
  cycles_per_cell : float;  (** compute cycles per cell per step *)
  flops_per_cell : float;  (** useful double-precision flops *)
  bytes_per_cell : float;  (** memory traffic, bytes *)
  preamble_cycles : float;  (** per kernel invocation (hoisted ops) *)
  loads_per_cell : float;
  stores_per_cell : float;
}

type acc = {
  mutable cycles : float;
  mutable flops : float;
  mutable bytes : float;
  mutable loads : float;
  mutable stores : float;
}

let new_acc () = { cycles = 0.; flops = 0.; bytes = 0.; loads = 0.; stores = 0. }

(* Constant integer values, to resolve LUT geometry operands and constant
   trip counts. *)
let const_ints (f : Func.func) : (int, int) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  Op.iter_region
    (fun o ->
      match o.Op.kind with
      | Op.ConstI c -> Hashtbl.replace tbl o.results.(0).id c
      | _ -> ())
    f.Func.f_body;
  tbl

let cost_op (a : Arch.t) ~(scalar_math : bool) (ints : (int, int) Hashtbl.t)
    (acc : acc) (o : Op.op) ~(mult : float) : unit =
  let w = float_of_int (max a.Arch.width 1) in
  let vec =
    Array.length o.Op.results > 0
    && (match o.Op.results.(0).ty with Ty.Vec _ -> true | _ -> false)
    || Array.exists
         (fun (v : Value.t) -> match v.ty with Ty.Vec _ -> true | _ -> false)
         o.Op.operands
  in
  let add_cycles c = acc.cycles <- acc.cycles +. (mult *. c) in
  let add_flops fl = acc.flops <- acc.flops +. (mult *. fl) in
  let add_bytes by = acc.bytes <- acc.bytes +. (mult *. by) in
  match o.Op.kind with
  | Op.ConstF _ | Op.ConstI _ | Op.ConstB _ | Op.Iota _ -> add_cycles 0.5
  | Op.Broadcast -> add_cycles a.flop_cycles
  | Op.VecExtract _ -> add_cycles a.flop_cycles
  | Op.BinF Op.FDiv ->
      add_cycles (if vec then a.div_cycles *. (w /. 2.) else a.div_cycles);
      add_flops (if vec then w else 1.)
  | Op.BinF _ | Op.NegF ->
      add_cycles a.flop_cycles;
      add_flops (if vec then w else 1.)
  | Op.BinI _ | Op.BinB _ | Op.NotB | Op.CmpI _ | Op.SIToFP | Op.FPToSI ->
      add_cycles a.flop_cycles
  | Op.CmpF _ | Op.Select ->
      add_cycles a.flop_cycles;
      add_flops (if vec then w else 1.)
  | Op.Math name ->
      let unit =
        match Easyml.Builtins.find name with
        | Some bi -> float_of_int bi.flops
        | None -> 20.
      in
      if not vec then begin
        add_cycles (a.libm_factor *. unit);
        add_flops unit
      end
      else if scalar_math then begin
        (* icc-style: the call is serialized per lane *)
        add_cycles (w *. a.libm_factor *. unit);
        add_flops (w *. unit)
      end
      else begin
        (* one SVML call for the whole vector *)
        add_cycles (a.svml_factor *. unit);
        add_flops (w *. unit)
      end
  | Op.MemLoad ->
      add_cycles a.load_cycles;
      add_bytes 8.;
      acc.loads <- acc.loads +. mult
  | Op.MemStore ->
      add_cycles a.load_cycles;
      add_bytes 8.;
      acc.stores <- acc.stores +. mult
  | Op.VecLoad ->
      add_cycles a.vload_cycles;
      add_bytes (8. *. w);
      acc.loads <- acc.loads +. (mult *. w)
  | Op.VecStore ->
      add_cycles a.vload_cycles;
      add_bytes (8. *. w);
      acc.stores <- acc.stores +. (mult *. w)
  | Op.Gather ->
      add_cycles (a.gather_base +. (a.gather_lane *. w));
      add_bytes (8. *. w);
      acc.loads <- acc.loads +. (mult *. w)
  | Op.Scatter ->
      add_cycles (a.gather_base +. (a.gather_lane *. w));
      add_bytes (8. *. w);
      acc.stores <- acc.stores +. (mult *. w)
  | Op.Alloc -> add_cycles 100.
  | Op.Call name when name = "lut_interp" || name = "lut_interp_cubic" ->
      let spline = name = "lut_interp_cubic" in
      (* locate + per-column linear interpolation, one cell *)
      let cols =
        match Hashtbl.find_opt ints o.Op.operands.(6).Value.id with
        | Some c -> float_of_int c
        | None -> 4.
      in
      let percol = if spline then 11.0 else 3.5 in
      add_cycles (10. +. (percol *. cols));
      add_flops (3. +. ((if spline then 10. else 3.) *. cols));
      (* table rows are L2-resident and shared between neighbouring cells;
         only the per-cell index traffic is charged (the paper instruments
         the kernel's own memory ops, not the interpolation callee) *)
      add_bytes 16.;
      acc.loads <- acc.loads +. (mult *. 2.)
  | Op.Call name when name = "lut_interp_vec" || name = "lut_interp_cubic_vec"
    ->
      let spline = name = "lut_interp_cubic_vec" in
      (* hand-vectorized: shared row fetch, per-lane interpolation *)
      let cols =
        match Hashtbl.find_opt ints o.Op.operands.(6).Value.id with
        | Some c -> float_of_int c
        | None -> 4.
      in
      let lane = if spline then 1.4 else 0.45 in
      let base = if spline then 3.5 else 1.4 in
      add_cycles (12. +. (cols *. (base +. (lane *. w))));
      add_flops ((3. +. ((if spline then 10. else 3.) *. cols)) *. w);
      add_bytes (16. *. w);
      acc.loads <- acc.loads +. (mult *. 2. *. w)
  | Op.Call _ -> add_cycles a.call_overhead
  | Op.Yield | Op.Return -> ()
  | Op.For _ | Op.If -> () (* handled by the region walker *)

(* Walk a region, scaling nested constant-trip loops; unknown-trip loops use
   [default_trip]. *)
let rec cost_region (a : Arch.t) ~scalar_math ints acc (r : Op.region)
    ~(mult : float) ~(default_trip : float) : unit =
  List.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.For _ ->
          let trip =
            match
              ( Hashtbl.find_opt ints o.Op.operands.(0).Value.id,
                Hashtbl.find_opt ints o.Op.operands.(1).Value.id,
                Hashtbl.find_opt ints o.Op.operands.(2).Value.id )
            with
            | Some lb, Some ub, Some st when st > 0 ->
                float_of_int (max 0 ((ub - lb + st - 1) / st))
            | _ -> default_trip
          in
          acc.cycles <- acc.cycles +. (mult *. trip *. a.loop_cycles);
          cost_region a ~scalar_math ints acc o.Op.regions.(0)
            ~mult:(mult *. trip) ~default_trip
      | Op.If ->
          (* vectorized conditionals execute both branches (masking) *)
          Array.iter
            (fun reg ->
              cost_region a ~scalar_math ints acc reg ~mult ~default_trip)
            o.Op.regions
      | _ -> cost_op a ~scalar_math ints acc o ~mult)
    r.Op.r_ops

(** Analyze a generated kernel's [compute] function. *)
let analyze (a : Arch.t) ~(scalar_math : bool) (f : Func.func) : metrics =
  let ints = const_ints f in
  let w = float_of_int (max a.Arch.width 1) in
  (* the cell loop is the unique top-level scf.for; ops before/after it are
     per-invocation preamble *)
  let pre = new_acc () in
  let body = new_acc () in
  List.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.For _ ->
          cost_region a ~scalar_math ints body o.Op.regions.(0) ~mult:1.0
            ~default_trip:1.0;
          body.cycles <- body.cycles +. a.loop_cycles
      | _ -> cost_op a ~scalar_math ints pre o ~mult:1.0)
    f.Func.f_body.Op.r_ops;
  {
    cycles_per_cell = body.cycles /. w;
    flops_per_cell = body.flops /. w;
    bytes_per_cell = body.bytes /. w;
    preamble_cycles = pre.cycles +. a.call_overhead;
    loads_per_cell = body.loads /. w;
    stores_per_cell = body.stores /. w;
  }

(** Analyze a generated kernel under an architecture matching its width. *)
let of_kernel (gen : Codegen.Kernel.t) : metrics =
  let cfg = gen.Codegen.Kernel.cfg in
  let a = Arch.of_width cfg.Codegen.Config.width in
  match Ir.Func.find_func gen.Codegen.Kernel.modl Codegen.Kernel.compute_name with
  | Some f -> analyze a ~scalar_math:cfg.Codegen.Config.scalar_math f
  | None -> invalid_arg "Kcost.of_kernel: no compute function"
