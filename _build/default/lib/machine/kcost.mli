(** Static cost analysis of generated kernels: per-cell cycle/flop/byte
    accounting from the IR, the source of both the execution-time model
    and the roofline coordinates. *)

type metrics = {
  cycles_per_cell : float;
  flops_per_cell : float;
  bytes_per_cell : float;
  preamble_cycles : float;  (** per kernel invocation (hoisted ops) *)
  loads_per_cell : float;
  stores_per_cell : float;
}

val analyze : Arch.t -> scalar_math:bool -> Ir.Func.func -> metrics
(** Walk a [compute]-shaped function (one top-level cell loop); nested
    constant-trip loops are scaled, scf.if counts both branches (vector
    masking executes both). *)

val of_kernel : Codegen.Kernel.t -> metrics
(** Analyze a generated kernel under the architecture matching its width. *)
