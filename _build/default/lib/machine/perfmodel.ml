(** Execution-time model.

    Combines the per-cell kernel cost with a memory-bandwidth roofline and
    a fork/join threading model:

      t_step(T) = max(compute_chunk / freq, bytes_chunk / BW(T, ws))
                  + barrier(T)
      total     = steps × t_step

    The bandwidth tier depends on the per-run working set (state + tables +
    externals): sets that fit the aggregate L2 stream at L2 speed, sets
    within L3 at an intermediate speed, larger sets at DRAM speed with
    per-core saturation — which is what makes small models flatten and
    memory-bound models hit the bandwidth ceiling in Figs. 4 and 6. *)

type workload = {
  ncells : int;
  steps : int;
  nvars : int;  (** state variables per cell *)
  n_ext : int;  (** external arrays *)
  lut_bytes : int;  (** total lookup-table bytes *)
}

type result = {
  seconds : float;
  compute_seconds : float;  (** compute-bound component *)
  memory_seconds : float;  (** bandwidth-bound component *)
  sync_seconds : float;
  gflops : float;  (** achieved GFlop/s *)
  oi : float;  (** operational intensity, flops/byte *)
  flops : float;  (** total flops *)
  bytes : float;  (** total traffic *)
}

let working_set (w : workload) : float =
  float_of_int
    ((w.nvars * 8 * w.ncells) + (w.n_ext * 8 * w.ncells) + w.lut_bytes)

(** Effective bandwidth in bytes/s for [nthreads] given the working set. *)
let bandwidth (a : Arch.t) (w : workload) ~(nthreads : int) : float =
  let ws = working_set w in
  let t = float_of_int nthreads in
  let l2_total = float_of_int (a.Arch.l2_size * nthreads) in
  let l3 = float_of_int a.Arch.l3_size in
  let gb = 1e9 in
  if ws <= l2_total then a.Arch.l2_bw *. t *. gb
  else if ws <= l3 then
    (* L3-resident: well above DRAM, saturates with fewer cores *)
    Float.min (2.5 *. a.Arch.dram_core_bw *. t) (2.0 *. a.Arch.dram_bw) *. gb
  else Float.min (a.Arch.dram_core_bw *. t) a.Arch.dram_bw *. gb

let barrier_seconds (a : Arch.t) ~(nthreads : int) : float =
  if nthreads <= 1 then 0.0
  else
    (a.Arch.barrier_base_us +. (a.Arch.barrier_core_us *. float_of_int nthreads))
    *. 1e-6

(** Predicted execution time of a whole run. *)
let time ?(step_overhead_s = 0.0) (a : Arch.t) (m : Kcost.metrics)
    (w : workload) ~(nthreads : int) : result =
  let cells_chunk = float_of_int ((w.ncells + nthreads - 1) / nthreads) in
  let hz = a.Arch.freq_ghz *. 1e9 in
  let compute_chunk =
    ((cells_chunk *. m.Kcost.cycles_per_cell) +. m.Kcost.preamble_cycles) /. hz
  in
  let bw = bandwidth a w ~nthreads in
  let bytes_step = float_of_int w.ncells *. m.Kcost.bytes_per_cell in
  let mem_step = bytes_step /. bw in
  let sync = barrier_seconds a ~nthreads in
  let per_step = Float.max compute_chunk mem_step +. sync +. step_overhead_s in
  let steps = float_of_int w.steps in
  let seconds = steps *. per_step in
  let flops = steps *. float_of_int w.ncells *. m.Kcost.flops_per_cell in
  let bytes = steps *. bytes_step in
  {
    seconds;
    compute_seconds = steps *. compute_chunk;
    memory_seconds = steps *. mem_step;
    sync_seconds = steps *. sync;
    gflops = flops /. seconds /. 1e9;
    oi = (if bytes > 0. then flops /. bytes else 0.);
    flops;
    bytes;
  }

(** Convenience: model a generated kernel end to end. *)
let run_kernel (gen : Codegen.Kernel.t) ~(ncells : int) ~(steps : int)
    ~(nthreads : int) : result =
  let cfg = gen.Codegen.Kernel.cfg in
  let a = Arch.of_width cfg.Codegen.Config.width in
  let m = Kcost.of_kernel gen in
  (* fixed per-step runtime overhead: bench loop, function-pointer
     dispatch, and (for the vector kernels) the omp/vector runtime setup
     and remainder handling — the term behind the paper's small-model
     slowdowns *)
  let step_overhead_s =
    if cfg.Codegen.Config.width = 1 then 1.5e-6 else 6.0e-6
  in
  let lut_bytes =
    List.fold_left
      (fun acc (plan : Easyml.Lut_cones.t) ->
        acc
        + (Easyml.Model.lut_rows plan.Easyml.Lut_cones.spec
          * Easyml.Lut_cones.n_columns plan * 8))
      0 gen.Codegen.Kernel.lut_plans
  in
  let w =
    {
      ncells;
      steps;
      nvars = max 1 gen.Codegen.Kernel.nvars;
      n_ext = List.length gen.Codegen.Kernel.ext_order;
      lut_bytes;
    }
  in
  time ~step_overhead_s a m w ~nthreads
