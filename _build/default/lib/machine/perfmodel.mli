(** Execution-time model: kernel cost × cells × steps under a bandwidth
    roofline and a fork/join thread model (see DESIGN.md for the
    calibration story). *)

type workload = {
  ncells : int;
  steps : int;
  nvars : int;
  n_ext : int;
  lut_bytes : int;
}

type result = {
  seconds : float;
  compute_seconds : float;
  memory_seconds : float;
  sync_seconds : float;
  gflops : float;
  oi : float;  (** operational intensity, flops/byte *)
  flops : float;
  bytes : float;
}

val working_set : workload -> float
val bandwidth : Arch.t -> workload -> nthreads:int -> float
(** Effective bytes/s given the working set's cache tier. *)

val barrier_seconds : Arch.t -> nthreads:int -> float

val time :
  ?step_overhead_s:float ->
  Arch.t ->
  Kcost.metrics ->
  workload ->
  nthreads:int ->
  result

val run_kernel :
  Codegen.Kernel.t -> ncells:int -> steps:int -> nthreads:int -> result
(** Model a generated kernel end to end, including the per-step runtime
    overhead of its configuration. *)
