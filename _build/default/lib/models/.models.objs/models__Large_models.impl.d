lib/models/large_models.ml: Large_models2 Model_def
