lib/models/large_models2.ml: Large_models3 Model_def
