lib/models/large_models3.ml: Large_models4 Model_def
