lib/models/large_models4.ml: Model_def
