lib/models/medium_models.ml: Medium_models2 Model_def
