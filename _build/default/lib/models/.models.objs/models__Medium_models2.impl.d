lib/models/medium_models2.ml: Medium_models3 Model_def
