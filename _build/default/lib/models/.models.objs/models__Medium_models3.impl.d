lib/models/medium_models3.ml: Model_def
