lib/models/model_def.ml:
