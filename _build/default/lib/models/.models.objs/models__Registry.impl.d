lib/models/registry.ml: Easyml Hashtbl Large_models List Medium_models Model_def Small_models String
