lib/models/small_models.ml: Model_def
