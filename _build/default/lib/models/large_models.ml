(** Large-class models, part 1 (baseline runtime > 5 min in the paper).

    Human/animal myocyte models with 20-40 state variables.  Structural
    reproductions: current inventory, gate counts and integration-method
    mix follow the published models (see DESIGN.md). *)

open Model_def

let courtemanche =
  {
    name = "Courtemanche";
    cls = Large;
    fidelity = Structural;
    description =
      "Courtemanche 1998 human atrial structure: 21 states, IKur with \
       voltage-dependent conductance, full calcium subsystem (uptake, \
       release, transfer, troponin/calmodulin/calsequestrin buffers).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.00291;
h; h_init = 0.965;
j; j_init = 0.978;
oa; oa_init = 0.0304;
oi; oi_init = 0.999;
ua; ua_init = 0.00496;
ui; ui_init = 0.999;
xr; xr_init = 0.0000329;
xs; xs_init = 0.0187;
d; d_init = 0.000137;
f; f_init = 0.999;
fca; fca_init = 0.775;
u_g; u_g_init = 0.0;
v_g; v_g_init = 1.0;
w_g; w_g_init = 0.999;
Nai; Nai_init = 11.17;
Ki; Ki_init = 139.0;
Cai; Cai_init = 0.000102;
Caup; Caup_init = 1.49;
Carel; Carel_init = 1.49;
Fn_tr; Fn_tr_init = 0.0;
Vm_init = -81.18;
group{ g_Na = 7.8; g_to = 0.1652; g_kr = 0.0294; g_ks = 0.129;
       g_caL = 0.1238; g_k1 = 0.09; RTF = 26.71; Nao = 140.0; Ko = 5.4;
       Cao = 1.8; K_Q10 = 3.0; }.param();
a_m = (fabs(Vm + 47.13) < 1e-6) ? 3.2
      : 0.32*(Vm + 47.13)/(1.0 - exp(-0.1*(Vm + 47.13)));
b_m = 0.08*exp(-Vm/11.0);
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
a_h = (Vm >= -40.0) ? 0.0 : 0.135*exp(-(80.0 + Vm)/6.8);
b_h = (Vm >= -40.0) ? 1.0/(0.13*(1.0 + exp(-(Vm + 10.66)/11.1)))
      : 3.56*exp(0.079*Vm) + 310000.0*exp(0.35*Vm);
diff_h = a_h*(1.0 - h) - b_h*h;  h; .method(rush_larsen);
a_j = (Vm >= -40.0) ? 0.0
      : (-127140.0*exp(0.2444*Vm) - 0.00003474*exp(-0.04391*Vm))
        *(Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)));
b_j = (Vm >= -40.0)
      ? 0.3*exp(-0.0000002535*Vm)/(1.0 + exp(-0.1*(Vm + 32.0)))
      : 0.1212*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14)));
diff_j = a_j*(1.0 - j) - b_j*j;  j; .method(rush_larsen);
a_oa = 0.65/(exp(-(Vm + 10.0)/8.5) + exp(-(Vm - 30.0)/59.0));
b_oa = 0.65/(2.5 + exp((Vm + 82.0)/17.0));
tau_oa = 1.0/((a_oa + b_oa)*K_Q10);
oa_inf = 1.0/(1.0 + exp(-(Vm + 20.47)/17.54));
diff_oa = (oa_inf - oa)/tau_oa;  oa; .method(rush_larsen);
a_oi = 1.0/(18.53 + exp((Vm + 113.7)/10.95));
b_oi = 1.0/(35.56 + exp(-(Vm + 1.26)/7.44));
tau_oi = 1.0/((a_oi + b_oi)*K_Q10);
oi_inf = 1.0/(1.0 + exp((Vm + 43.1)/5.3));
diff_oi = (oi_inf - oi)/tau_oi;  oi; .method(rush_larsen);
a_ua = 0.65/(exp(-(Vm + 10.0)/8.5) + exp(-(Vm - 30.0)/59.0));
b_ua = 0.65/(2.5 + exp((Vm + 82.0)/17.0));
tau_ua = 1.0/((a_ua + b_ua)*K_Q10);
ua_inf = 1.0/(1.0 + exp(-(Vm + 30.3)/9.6));
diff_ua = (ua_inf - ua)/tau_ua;  ua; .method(rush_larsen);
a_ui = 1.0/(21.0 + exp(-(Vm - 185.0)/28.0));
b_ui = exp((Vm - 158.0)/16.0);
tau_ui = 1.0/((a_ui + b_ui)*K_Q10);
ui_inf = 1.0/(1.0 + exp((Vm - 99.45)/27.48));
diff_ui = (ui_inf - ui)/tau_ui;  ui; .method(rush_larsen);
a_xr = (fabs(Vm + 14.1) < 1e-6) ? 0.0015
       : 0.0003*(Vm + 14.1)/(1.0 - exp(-(Vm + 14.1)/5.0));
b_xr = (fabs(Vm - 3.3328) < 1e-6) ? 0.000378361
       : 0.000073898*(Vm - 3.3328)/(exp((Vm - 3.3328)/5.1237) - 1.0);
tau_xr = 1.0/(a_xr + b_xr);
xr_inf = 1.0/(1.0 + exp(-(Vm + 14.1)/6.5));
diff_xr = (xr_inf - xr)/tau_xr;  xr; .method(rush_larsen);
a_xs = (fabs(Vm - 19.9) < 1e-6) ? 0.00068
       : 0.00004*(Vm - 19.9)/(1.0 - exp(-(Vm - 19.9)/17.0));
b_xs = (fabs(Vm - 19.9) < 1e-6) ? 0.000315
       : 0.000035*(Vm - 19.9)/(exp((Vm - 19.9)/9.0) - 1.0);
tau_xs = 0.5/(a_xs + b_xs);
xs_inf = 1.0/sqrt(1.0 + exp(-(Vm - 19.9)/12.7));
diff_xs = (xs_inf - xs)/tau_xs;  xs; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp(-(Vm + 10.0)/8.0));
tau_d = (fabs(Vm + 10.0) < 1e-6) ? 4.579/(1.0 + 1.0)
        : (1.0 - exp(-(Vm + 10.0)/6.24))/(0.035*(Vm + 10.0)*(1.0 + exp(-(Vm + 10.0)/6.24)));
diff_d = (d_inf - d)/max(fabs(tau_d), 0.1);  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 28.0)/6.9));
tau_f = 9.0/(0.0197*exp(-square(0.0337*(Vm + 10.0))) + 0.02);
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
fca_inf = 1.0/(1.0 + Cai/0.00035);
diff_fca = (fca_inf - fca)/2.0;
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
I_to = g_to*cube(oa)*oi*(Vm - E_K);
g_kur = 0.005 + 0.05/(1.0 + exp(-(Vm - 15.0)/13.0));
I_Kur = g_kur*cube(ua)*ui*(Vm - E_K);
I_Kr = g_kr*xr*(Vm - E_K)/(1.0 + exp((Vm + 15.0)/22.4));
I_Ks = g_ks*square(xs)*(Vm - E_K);
I_CaL = g_caL*d*f*fca*(Vm - 65.0);
I_K1 = g_k1*(Vm - E_K)/(1.0 + exp(0.07*(Vm + 80.0)));
sigma_nak = (exp(Nao/67.3) - 1.0)/7.0;
f_nak = 1.0/(1.0 + 0.1245*exp(-0.1*Vm/RTF) + 0.0365*sigma_nak*exp(-Vm/RTF));
I_NaK = 0.6*f_nak*(Ko/(Ko + 1.5))*(1.0/(1.0 + pow(10.0/Nai, 1.5)));
I_NaCa = 1600.0*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*0.02;
I_bCa = 0.00113*(Vm - E_Ca);
I_bNa = 0.000674*(Vm - E_Na);
I_pCa = 0.275*Cai/(Cai + 0.0005);
Fn = 1000.0*(1e-15*0.0048*Carel*square(Cai/(Cai + 0.00035))
     - 5e-13*(0.5*I_CaL - 0.2*I_NaCa))*1e9;
diff_Fn_tr = (Fn - Fn_tr)/2.0;
u_inf = 1.0/(1.0 + exp(-(Fn_tr - 0.3417)/0.01367));
diff_u_g = (u_inf - u_g)/8.0;
v_inf = 1.0 - 1.0/(1.0 + exp(-(Fn_tr - 0.6835)/0.01367));
diff_v_g = (v_inf - v_g)/1.91;
w_inf = 1.0 - 1.0/(1.0 + exp(-(Vm - 40.0)/17.0));
tau_w = (fabs(Vm - 7.9) < 1e-6) ? 0.923
        : 6.0*(1.0 - exp(-(Vm - 7.9)/5.0))/((1.0 + 0.3*exp(-(Vm - 7.9)/5.0))*(Vm - 7.9));
diff_w_g = (w_inf - w_g)/max(fabs(tau_w), 0.1);  w_g; .method(rush_larsen);
J_rel = 30.0*square(u_g)*v_g*w_g*(Carel - Cai)*0.01;
J_up = 0.005/(1.0 + 0.00092/Cai);
J_tr = (Caup - Carel)/180.0;
diff_Caup = J_up - J_tr*0.05;
diff_Carel = (J_tr*0.05 - J_rel)*0.2;
diff_Cai = -0.00005*(I_CaL + I_bCa + I_pCa - 2.0*I_NaCa)
           + (J_rel - J_up)*0.01 + 0.005*(0.000102 - Cai);
diff_Nai = -0.00001*(I_Na + I_bNa + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_to + I_Kur + I_Kr + I_Ks + I_K1 - 2.0*I_NaK);
Iion = I_Na + I_to + I_Kur + I_Kr + I_Ks + I_CaL + I_K1 + I_NaK + I_NaCa
       + I_bCa + I_bNa + I_pCa;
|};
  }

let tentusscher =
  {
    name = "TenTusscher";
    cls = Large;
    fidelity = Structural;
    description =
      "ten Tusscher 2004 human ventricular structure: 17 states, \
       epicardial parameter set, calcium subspace with dyadic gate.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0;
h; h_init = 0.75;
j; j_init = 0.75;
d; d_init = 0.0;
f; f_init = 1.0;
fCa; fCa_init = 1.0;
r; r_init = 0.0;
s; s_init = 1.0;
xr1; xr1_init = 0.0;
xr2; xr2_init = 1.0;
xs; xs_init = 0.0;
g_gate; g_gate_init = 1.0;
Nai; Nai_init = 11.6;
Ki; Ki_init = 138.3;
Cai; Cai_init = 0.0002;
Casr; Casr_init = 0.2;
Vm_init = -86.2;
group{ g_Na = 14.838; g_caL = 0.000175; g_to = 0.294; g_kr = 0.096;
       g_ks = 0.245; g_k1 = 5.405; RTF = 26.71; Nao = 140.0; Ko = 5.4;
       Cao = 2.0; }.param();
m_inf = 1.0/square(1.0 + exp((-56.86 - Vm)/9.03));
a_m = 1.0/(1.0 + exp((-60.0 - Vm)/5.0));
b_m = 0.1/(1.0 + exp((Vm + 35.0)/5.0)) + 0.1/(1.0 + exp((Vm - 50.0)/200.0));
tau_m = a_m*b_m;
diff_m = (m_inf - m)/tau_m;  m; .method(rush_larsen);
h_inf = 1.0/square(1.0 + exp((Vm + 71.55)/7.43));
a_h = (Vm >= -40.0) ? 0.0 : 0.057*exp(-(Vm + 80.0)/6.8);
b_h = (Vm >= -40.0) ? 0.77/(0.13*(1.0 + exp(-(Vm + 10.66)/11.1)))
      : 2.7*exp(0.079*Vm) + 310000.0*exp(0.3485*Vm);
diff_h = (h_inf - h)*(a_h + b_h);  h; .method(rush_larsen);
j_inf = h_inf;
a_j = (Vm >= -40.0) ? 0.0
      : (-25428.0*exp(0.2444*Vm) - 0.000006948*exp(-0.04391*Vm))
        *(Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)));
b_j = (Vm >= -40.0)
      ? 0.6*exp(0.057*Vm)/(1.0 + exp(-0.1*(Vm + 32.0)))
      : 0.02424*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14)));
diff_j = (j_inf - j)*(a_j + b_j);  j; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp((-5.0 - Vm)/7.5));
a_d = 1.4/(1.0 + exp((-35.0 - Vm)/13.0)) + 0.25;
b_d = 1.4/(1.0 + exp((Vm + 5.0)/5.0));
c_d = 1.0/(1.0 + exp((50.0 - Vm)/20.0));
tau_d = a_d*b_d + c_d;
diff_d = (d_inf - d)/tau_d;  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 20.0)/7.0));
tau_f = 1125.0*exp(-square(Vm + 27.0)/240.0) + 80.0 + 165.0/(1.0 + exp((25.0 - Vm)/10.0));
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
a_fca = 1.0/(1.0 + pow(Cai/0.000325, 8.0));
b_fca = 0.1/(1.0 + exp((Cai - 0.0005)/0.0001));
c_fca = 0.2/(1.0 + exp((Cai - 0.00075)/0.0008));
fca_inf = (a_fca + b_fca + c_fca + 0.23)/1.46;
diff_fCa = (fCa_inf_g - fCa)/2.0;
fCa_inf_g = (fca_inf > fCa && Vm > -60.0) ? fCa : fca_inf;
r_inf = 1.0/(1.0 + exp((20.0 - Vm)/6.0));
tau_r = 9.5*exp(-square(Vm + 40.0)/1800.0) + 0.8;
diff_r = (r_inf - r)/tau_r;  r; .method(rush_larsen);
s_inf = 1.0/(1.0 + exp((Vm + 20.0)/5.0));
tau_s = 85.0*exp(-square(Vm + 45.0)/320.0) + 5.0/(1.0 + exp((Vm - 20.0)/5.0)) + 3.0;
diff_s = (s_inf - s)/tau_s;  s; .method(rush_larsen);
xr1_inf = 1.0/(1.0 + exp((-26.0 - Vm)/7.0));
a_xr1 = 450.0/(1.0 + exp((-45.0 - Vm)/10.0));
b_xr1 = 6.0/(1.0 + exp((Vm + 30.0)/11.5));
diff_xr1 = (xr1_inf - xr1)/(a_xr1*b_xr1);  xr1; .method(rush_larsen);
xr2_inf = 1.0/(1.0 + exp((Vm + 88.0)/24.0));
a_xr2 = 3.0/(1.0 + exp((-60.0 - Vm)/20.0));
b_xr2 = 1.12/(1.0 + exp((Vm - 60.0)/20.0));
diff_xr2 = (xr2_inf - xr2)/(a_xr2*b_xr2);  xr2; .method(rush_larsen);
xs_inf = 1.0/(1.0 + exp((-5.0 - Vm)/14.0));
a_xs = 1100.0/sqrt(1.0 + exp((-10.0 - Vm)/6.0));
b_xs = 1.0/(1.0 + exp((Vm - 60.0)/20.0));
diff_xs = (xs_inf - xs)/(a_xs*b_xs);  xs; .method(rush_larsen);
g_inf = (Cai < 0.00035) ? 1.0/(1.0 + pow(Cai/0.00035, 6.0))
        : 1.0/(1.0 + pow(Cai/0.00035, 16.0));
diff_g_gate = (g_inf - g_gate)/2.0;
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
E_Ks = RTF*log((Ko + 0.03*Nao)/(Ki + 0.03*Nai));
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
vff = Vm*2.0/RTF;
I_CaL = g_caL*d*f*fCa*4.0*Vm*96485.0/RTF
        *((fabs(vff) < 1e-6) ? (Cai - 0.341*Cao)
          : (Cai*exp(vff) - 0.341*Cao)/(exp(vff) - 1.0))*0.5;
I_to = g_to*r*s*(Vm - E_K);
I_Kr = g_kr*sqrt(Ko/5.4)*xr1*xr2*(Vm - E_K);
I_Ks = g_ks*square(xs)*(Vm - E_Ks);
a_K1 = 0.1/(1.0 + exp(0.06*(Vm - E_K - 200.0)));
b_K1 = (3.0*exp(0.0002*(Vm - E_K + 100.0)) + exp(0.1*(Vm - E_K - 10.0)))
       /(1.0 + exp(-0.5*(Vm - E_K)));
I_K1 = g_k1*sqrt(Ko/5.4)*(a_K1/(a_K1 + b_K1))*(Vm - E_K);
I_NaK = 1.362*(Ko/(Ko + 1.0))*(Nai/(Nai + 40.0))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF) + 0.0353*exp(-Vm/RTF));
I_NaCa = 1000.0*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai*2.5)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*0.1;
I_pCa = 0.825*Cai/(Cai + 0.0005);
I_pK = 0.0146*(Vm - E_K)/(1.0 + exp((25.0 - Vm)/5.98));
I_bNa = 0.00029*(Vm - E_Na);
I_bCa = 0.000592*(Vm - E_Ca);
J_leak = 0.00008*(Casr - Cai);
J_up = 0.000425/(1.0 + square(0.00025/Cai));
J_rel = (0.016464*square(Casr)/(square(0.25) + square(Casr)) + 0.008232)*d*g_gate*0.1;
diff_Casr = 20.0*(J_up - J_rel - J_leak);
diff_Cai = -0.00005*(I_CaL + I_bCa + I_pCa - 2.0*I_NaCa)
           + (J_rel + J_leak - J_up) + 0.002*(0.0002 - Cai);
diff_Nai = -0.00001*(I_Na + I_bNa + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_to + I_Kr + I_Ks + I_K1 + I_pK - 2.0*I_NaK);
Iion = I_Na + I_CaL + I_to + I_Kr + I_Ks + I_K1 + I_NaK + I_NaCa
       + I_pCa + I_pK + I_bNa + I_bCa;
|};
  }

let tentusscher_panfilov =
  {
    name = "TenTusscherPanfilov";
    cls = Large;
    fidelity = Structural;
    description =
      "ten Tusscher & Panfilov 2006 update: 19 states, subspace calcium \
       (Cass) and RyR occupancy with markov_be.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.00172;
h; h_init = 0.7444;
j; j_init = 0.7045;
d; d_init = 0.00003373;
f; f_init = 0.7888;
f2; f2_init = 0.9755;
fCass; fCass_init = 0.9953;
r; r_init = 0.0000242;
s; s_init = 0.999998;
xr1; xr1_init = 0.00621;
xr2; xr2_init = 0.4712;
xs; xs_init = 0.0095;
Rq; Rq_init = 0.9073;
Nai; Nai_init = 8.604;
Ki; Ki_init = 136.89;
Cai; Cai_init = 0.000126;
Cass; Cass_init = 0.00036;
Casr; Casr_init = 3.64;
Vm_init = -85.23;
group{ g_Na = 14.838; g_caL = 0.0000398; g_to = 0.294; g_kr = 0.153;
       g_ks = 0.392; g_k1 = 5.405; RTF = 26.71; Nao = 140.0; Ko = 5.4;
       Cao = 2.0; }.param();
m_inf = 1.0/square(1.0 + exp((-56.86 - Vm)/9.03));
tau_m = (1.0/(1.0 + exp((-60.0 - Vm)/5.0)))
        *(0.1/(1.0 + exp((Vm + 35.0)/5.0)) + 0.1/(1.0 + exp((Vm - 50.0)/200.0)));
diff_m = (m_inf - m)/tau_m;  m; .method(rush_larsen);
h_inf = 1.0/square(1.0 + exp((Vm + 71.55)/7.43));
a_h = (Vm >= -40.0) ? 0.0 : 0.057*exp(-(Vm + 80.0)/6.8);
b_h = (Vm >= -40.0) ? 0.77/(0.13*(1.0 + exp(-(Vm + 10.66)/11.1)))
      : 2.7*exp(0.079*Vm) + 310000.0*exp(0.3485*Vm);
diff_h = (h_inf - h)*(a_h + b_h);  h; .method(rush_larsen);
a_j = (Vm >= -40.0) ? 0.0
      : (-25428.0*exp(0.2444*Vm) - 0.000006948*exp(-0.04391*Vm))
        *(Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)));
b_j = (Vm >= -40.0)
      ? 0.6*exp(0.057*Vm)/(1.0 + exp(-0.1*(Vm + 32.0)))
      : 0.02424*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14)));
diff_j = (h_inf - j)*(a_j + b_j);  j; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp((-8.0 - Vm)/7.5));
tau_d = (1.4/(1.0 + exp((-35.0 - Vm)/13.0)) + 0.25)
        *(1.4/(1.0 + exp((Vm + 5.0)/5.0))) + 1.0/(1.0 + exp((50.0 - Vm)/20.0));
diff_d = (d_inf - d)/tau_d;  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 20.0)/7.0));
tau_f = 1102.5*exp(-square(Vm + 27.0)/225.0) + 200.0/(1.0 + exp((13.0 - Vm)/10.0))
        + 180.0/(1.0 + exp((Vm + 30.0)/10.0)) + 20.0;
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
f2_inf = 0.67/(1.0 + exp((Vm + 35.0)/7.0)) + 0.33;
tau_f2 = 562.0*exp(-square(Vm + 27.0)/240.0) + 31.0/(1.0 + exp((25.0 - Vm)/10.0))
         + 80.0/(1.0 + exp((Vm + 30.0)/10.0));
diff_f2 = (f2_inf - f2)/tau_f2;  f2; .method(rush_larsen);
fCass_inf = 0.6/(1.0 + square(Cass/0.05)) + 0.4;
tau_fCass = 80.0/(1.0 + square(Cass/0.05)) + 2.0;
diff_fCass = (fCass_inf - fCass)/tau_fCass;
r_inf = 1.0/(1.0 + exp((20.0 - Vm)/6.0));
diff_r = (r_inf - r)/(9.5*exp(-square(Vm + 40.0)/1800.0) + 0.8);
r; .method(rush_larsen);
s_inf = 1.0/(1.0 + exp((Vm + 20.0)/5.0));
diff_s = (s_inf - s)/(85.0*exp(-square(Vm + 45.0)/320.0)
         + 5.0/(1.0 + exp((Vm - 20.0)/5.0)) + 3.0);
s; .method(rush_larsen);
xr1_inf = 1.0/(1.0 + exp((-26.0 - Vm)/7.0));
diff_xr1 = (xr1_inf - xr1)/((450.0/(1.0 + exp((-45.0 - Vm)/10.0)))
           *(6.0/(1.0 + exp((Vm + 30.0)/11.5))));
xr1; .method(rush_larsen);
xr2_inf = 1.0/(1.0 + exp((Vm + 88.0)/24.0));
diff_xr2 = (xr2_inf - xr2)/((3.0/(1.0 + exp((-60.0 - Vm)/20.0)))
           *(1.12/(1.0 + exp((Vm - 60.0)/20.0))));
xr2; .method(rush_larsen);
xs_inf = 1.0/(1.0 + exp((-5.0 - Vm)/14.0));
diff_xs = (xs_inf - xs)/((1400.0/sqrt(1.0 + exp((5.0 - Vm)/6.0)))
          *(1.0/(1.0 + exp((Vm - 35.0)/15.0))) + 80.0);
xs; .method(rush_larsen);
kcasr = 2.5 - 1.5/(1.0 + square(1.5/Casr));
k1_ryr = 0.15/kcasr;
k2_ryr = 0.045*kcasr;
diff_Rq = -k2_ryr*Cass*Rq + 0.005*(1.0 - Rq);
Rq; .method(markov_be);
O_ryr = k1_ryr*square(Cass)*Rq/(0.06 + k1_ryr*square(Cass));
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
E_Ks = RTF*log((Ko + 0.03*Nao)/(Ki + 0.03*Nai));
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
vff = Vm*2.0/RTF;
I_CaL = g_caL*d*f*f2*fCass*4.0*Vm*96485.0/RTF
        *((fabs(vff) < 1e-6) ? (0.25*Cass - 0.341*Cao)
          : (0.25*Cass*exp(vff) - 0.341*Cao)/(exp(vff) - 1.0))*10.0;
I_to = g_to*r*s*(Vm - E_K);
I_Kr = g_kr*sqrt(Ko/5.4)*xr1*xr2*(Vm - E_K);
I_Ks = g_ks*square(xs)*(Vm - E_Ks);
a_K1 = 0.1/(1.0 + exp(0.06*(Vm - E_K - 200.0)));
b_K1 = (3.0*exp(0.0002*(Vm - E_K + 100.0)) + exp(0.1*(Vm - E_K - 10.0)))
       /(1.0 + exp(-0.5*(Vm - E_K)));
I_K1 = g_k1*sqrt(Ko/5.4)*(a_K1/(a_K1 + b_K1))*(Vm - E_K);
I_NaK = 2.724*(Ko/(Ko + 1.0))*(Nai/(Nai + 40.0))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF) + 0.0353*exp(-Vm/RTF));
I_NaCa = 1000.0*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai*2.5)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*0.1;
I_pCa = 0.1238*Cai/(Cai + 0.0005);
I_pK = 0.0146*(Vm - E_K)/(1.0 + exp((25.0 - Vm)/5.98));
I_bNa = 0.00029*(Vm - E_Na);
I_bCa = 0.000592*(Vm - E_Ca);
J_rel = 0.102*O_ryr*(Casr - Cass);
J_up = 0.006375/(1.0 + square(0.00025/Cai));
J_xfer = 0.0038*(Cass - Cai);
J_leak = 0.00036*(Casr - Cai);
diff_Casr = 10.0*(J_up - J_rel*0.1 - J_leak);
diff_Cass = -0.01*I_CaL + J_rel*0.05 - J_xfer*10.0;
diff_Cai = -0.00005*(I_bCa + I_pCa - 2.0*I_NaCa) + J_xfer + J_leak - J_up
           + 0.002*(0.000126 - Cai);
diff_Nai = -0.00001*(I_Na + I_bNa + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_to + I_Kr + I_Ks + I_K1 + I_pK - 2.0*I_NaK);
Iion = I_Na + I_CaL + I_to + I_Kr + I_Ks + I_K1 + I_NaK + I_NaCa
       + I_pCa + I_pK + I_bNa + I_bCa;
|};
  }

let entries_part1 : entry list = [ courtemanche; tentusscher; tentusscher_panfilov ]

let entries : entry list = entries_part1 @ Large_models2.entries
