(** Large-class models, part 2 (structural reproductions). *)

open Model_def

(* A compact notation is used below: gates are written as inf/tau pairs on
   adjacent lines.  Every model remains a distinct EasyML program with its
   own currents, constants and state inventory. *)

let ohara =
  {
    name = "OHara";
    cls = Large;
    fidelity = Structural;
    description =
      "O'Hara-Rudy 2011 human ventricular structure: the largest model in \
       the suite (34 states) — dual-pathway INa inactivation, CaMK-split \
       gates, subspace calcium.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0074621;
hf; hf_init = 0.692591;
hs; hs_init = 0.692574;
jg; jg_init = 0.692477;
hsp; hsp_init = 0.448501;
jp; jp_init = 0.692413;
mL; mL_init = 0.000194015;
hL; hL_init = 0.496116;
hLp; hLp_init = 0.265885;
a_g; a_g_init = 0.00101185;
iF; iF_init = 0.999542;
iS; iS_init = 0.589579;
ap; ap_init = 0.000515567;
iFp; iFp_init = 0.999542;
iSp; iSp_init = 0.641861;
d; d_init = 0.0000024;
ff; ff_init = 1.0;
fs; fs_init = 0.910671;
fcaf; fcaf_init = 1.0;
fcas; fcas_init = 0.99982;
jca; jca_init = 0.999977;
nca; nca_init = 0.00267171;
xrf; xrf_init = 0.0000000082;
xrs; xrs_init = 0.453988;
xs1; xs1_init = 0.270492;
xs2; xs2_init = 0.0001963;
xk1; xk1_init = 0.996801;
Jrelnp; Jrelnp_init = 0.0000000025;
Jrelp; Jrelp_init = 0.0000000031;
CaMKt; CaMKt_init = 0.0124065;
Nai; Nai_init = 7.268;
Ki; Ki_init = 144.65;
Cai; Cai_init = 0.0000863;
Cass; Cass_init = 0.0000858;
Cansr; Cansr_init = 1.619;
Cajsr; Cajsr_init = 1.571;
Vm_init = -87.84;
group{ g_Na = 75.0; g_NaL = 0.0075; g_to = 0.02; PCa = 0.0001;
       g_Kr = 0.046; g_Ks = 0.0034; g_K1 = 0.1908; RTF = 26.71;
       Nao = 140.0; Ko = 5.4; Cao = 1.8; KmCaMK = 0.15; aCaMK = 0.05;
       bCaMK = 0.00068; CaMKo = 0.05; KmCaM = 0.0015; }.param();
CaMKb = CaMKo*(1.0 - CaMKt)/(1.0 + KmCaM/Cass);
CaMKa = CaMKb + CaMKt;
diff_CaMKt = aCaMK*CaMKb*(CaMKb + CaMKt) - bCaMK*CaMKt;
phi_mk = 1.0/(1.0 + KmCaMK/CaMKa);
m_inf = 1.0/(1.0 + exp(-(Vm + 39.57)/9.871));
tau_m = 1.0/(6.765*exp((Vm + 11.64)/34.77) + 8.552*exp(-(Vm + 77.42)/5.955));
diff_m = (m_inf - m)/tau_m;  m; .method(rush_larsen);
h_inf = 1.0/(1.0 + exp((Vm + 82.9)/6.086));
tau_hf = 1.0/(0.00001432*exp(-(Vm + 1.196)/6.285) + 6.149*exp((Vm + 0.5096)/20.27));
tau_hs = 1.0/(0.009794*exp(-(Vm + 17.95)/28.05) + 0.3343*exp((Vm + 5.73)/56.66));
diff_hf = (h_inf - hf)/tau_hf;  hf; .method(rush_larsen);
diff_hs = (h_inf - hs)/tau_hs;  hs; .method(rush_larsen);
j_inf = h_inf;
tau_j = 2.038 + 1.0/(0.02136*exp(-(Vm + 100.6)/8.281) + 0.3052*exp((Vm + 0.9941)/38.45));
diff_jg = (j_inf - jg)/tau_j;  jg; .method(rush_larsen);
hsp_inf = 1.0/(1.0 + exp((Vm + 89.1)/6.086));
diff_hsp = (hsp_inf - hsp)/(3.0*tau_hs);  hsp; .method(rush_larsen);
diff_jp = (j_inf - jp)/(1.46*tau_j);  jp; .method(rush_larsen);
mL_inf = 1.0/(1.0 + exp(-(Vm + 42.85)/5.264));
diff_mL = (mL_inf - mL)/tau_m;  mL; .method(rush_larsen);
hL_inf = 1.0/(1.0 + exp((Vm + 87.61)/7.488));
diff_hL = (hL_inf - hL)/200.0;  hL; .method(rush_larsen);
hLp_inf = 1.0/(1.0 + exp((Vm + 93.81)/7.488));
diff_hLp = (hLp_inf - hLp)/600.0;  hLp; .method(rush_larsen);
a_inf = 1.0/(1.0 + exp(-(Vm - 14.34)/14.82));
tau_a = 1.0515/(1.0/(1.2089*(1.0 + exp(-(Vm - 18.41)/29.38)))
        + 3.5/(1.0 + exp((Vm + 100.0)/29.38)));
diff_a_g = (a_inf - a_g)/tau_a;  a_g; .method(rush_larsen);
i_inf = 1.0/(1.0 + exp((Vm + 43.94)/5.711));
tau_iF = 4.562 + 1.0/(0.3933*exp(-(Vm + 100.0)/100.0) + 0.08004*exp((Vm + 50.0)/16.59));
tau_iS = 23.62 + 1.0/(0.001416*exp(-(Vm + 96.52)/59.05) + 0.0000000017808*exp((Vm + 114.1)/8.079));
diff_iF = (i_inf - iF)/tau_iF;  iF; .method(rush_larsen);
diff_iS = (i_inf - iS)/tau_iS;  iS; .method(rush_larsen);
ap_inf = 1.0/(1.0 + exp(-(Vm - 24.34)/14.82));
diff_ap = (ap_inf - ap)/tau_a;  ap; .method(rush_larsen);
diff_iFp = (i_inf - iFp)/(tau_iF*(1.0 + 0.5/(1.0 + exp((Vm + 70.0)/-20.0))));
iFp; .method(rush_larsen);
diff_iSp = (i_inf - iSp)/(tau_iS*(1.0 + 0.5/(1.0 + exp((Vm + 70.0)/-20.0))));
iSp; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp(-(Vm + 3.94)/4.23));
tau_d = 0.6 + 1.0/(exp(-0.05*(Vm + 6.0)) + exp(0.09*(Vm + 14.0)));
diff_d = (d_inf - d)/tau_d;  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 19.58)/3.696));
tau_ff = 7.0 + 1.0/(0.0045*exp(-(Vm + 20.0)/10.0) + 0.0045*exp((Vm + 20.0)/10.0));
tau_fs = 1000.0 + 1.0/(0.000035*exp(-(Vm + 5.0)/4.0) + 0.000035*exp((Vm + 5.0)/6.0));
diff_ff = (f_inf - ff)/tau_ff;  ff; .method(rush_larsen);
diff_fs = (f_inf - fs)/tau_fs;  fs; .method(rush_larsen);
fca_inf = f_inf;
tau_fcaf = 7.0 + 1.0/(0.04*exp(-(Vm - 4.0)/7.0) + 0.04*exp((Vm - 4.0)/7.0));
tau_fcas = 100.0 + 1.0/(0.00012*exp(-Vm/3.0) + 0.00012*exp(Vm/7.0));
diff_fcaf = (fca_inf - fcaf)/tau_fcaf;  fcaf; .method(rush_larsen);
diff_fcas = (fca_inf - fcas)/tau_fcas;  fcas; .method(rush_larsen);
diff_jca = (fca_inf - jca)/75.0;  jca; .method(rush_larsen);
anca = 1.0/(1.0 + square(0.002/Cass));
diff_nca = anca*0.0019 - nca*0.0019/(1.0 + square(0.002/Cass));
xr_inf = 1.0/(1.0 + exp(-(Vm + 8.337)/6.789));
tau_xrf = 12.98 + 1.0/(0.3652*exp((Vm - 31.66)/3.869) + 0.00004123*exp(-(Vm - 47.78)/20.38));
tau_xrs = 1.865 + 1.0/(0.06629*exp((Vm - 34.7)/7.355) + 0.00001128*exp(-(Vm - 29.74)/25.94));
diff_xrf = (xr_inf - xrf)/tau_xrf;  xrf; .method(rush_larsen);
diff_xrs = (xr_inf - xrs)/tau_xrs;  xrs; .method(rush_larsen);
xs1_inf = 1.0/(1.0 + exp(-(Vm + 11.6)/8.932));
tau_xs1 = 817.3 + 1.0/(0.0002326*exp((Vm + 48.28)/17.8) + 0.001292*exp(-(Vm + 210.0)/230.0));
diff_xs1 = (xs1_inf - xs1)/tau_xs1;  xs1; .method(rush_larsen);
tau_xs2 = 1.0/(0.01*exp((Vm - 50.0)/20.0) + 0.0193*exp(-(Vm + 66.54)/31.0));
diff_xs2 = (xs1_inf - xs2)/tau_xs2;  xs2; .method(rush_larsen);
xk1_inf = 1.0/(1.0 + exp(-(Vm + 2.5538*Ko + 144.59)/(1.5692*Ko + 3.8115)));
tau_xk1 = 122.2/(exp(-(Vm + 127.2)/20.36) + exp((Vm + 236.8)/69.33));
diff_xk1 = (xk1_inf - xk1)/tau_xk1;  xk1; .method(rush_larsen);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ks = RTF*log((Ko + 0.01833*Nao)/(Ki + 0.01833*Nai));
h_tot = (1.0 - phi_mk)*(0.99*hf + 0.01*hs) + phi_mk*(0.99*hsp + 0.01*hs);
j_tot = (1.0 - phi_mk)*jg + phi_mk*jp;
I_Na = g_Na*cube(m)*h_tot*j_tot*(Vm - E_Na)*0.1;
I_NaL = g_NaL*mL*((1.0 - phi_mk)*hL + phi_mk*hLp)*(Vm - E_Na);
i_tot = (1.0 - phi_mk)*(0.5*iF + 0.5*iS) + phi_mk*(0.5*iFp + 0.5*iSp);
a_tot = (1.0 - phi_mk)*a_g + phi_mk*ap;
I_to = g_to*a_tot*i_tot*(Vm - E_K);
vff = Vm*2.0/RTF;
f_tot = 0.6*ff + 0.4*fs;
fca_tot = 0.6*fcaf + 0.4*fcas;
I_CaL = PCa*d*(f_tot*(1.0 - nca) + jca*fca_tot*nca)*4.0*Vm*96485.0/RTF
        *((fabs(vff) < 1e-6) ? (Cass - 0.341*Cao)
          : (Cass*exp(vff) - 0.341*Cao)/(exp(vff) - 1.0))*20.0;
I_Kr = g_Kr*sqrt(Ko/5.4)*(0.7*xrf + 0.3*xrs)*(Vm - E_K)
       /(1.0 + exp((Vm + 55.0)/75.0))*1.5;
I_Ks = g_Ks*(1.0 + 0.6/(1.0 + pow(0.000038/Cai, 1.4)))*xs1*xs2*(Vm - E_Ks)*10.0;
I_K1 = g_K1*sqrt(Ko)*xk1*(Vm - E_K)/(1.0 + exp(0.1*(Vm - E_K - 10.0)))*2.0;
I_NaK = 0.8*(Ko/(Ko + 1.5))*(1.0/(1.0 + square(9.0/Nai)))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF) + 0.0353*exp(-Vm/RTF))*3.0;
I_NaCa = 800.0*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai*1.5)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*0.08;
I_pCa = 0.0005*Cai/(Cai + 0.0005)*100.0;
I_bNa = 0.000039*(Vm - E_Na)*10.0;
I_bCa = 0.00006*(Vm - 0.5*RTF*log(Cao/Cai))*10.0;
Jrel_inf = 15.0*(-I_CaL)/(1.0 + pow(1.7/Cajsr, 8.0))*0.001;
diff_Jrelnp = (Jrel_inf - Jrelnp)/(4.75*(1.0 + 0.5/(1.0 + pow(1.7/Cajsr, 8.0))));
Jrelp_inf = 1.25*Jrel_inf;
diff_Jrelp = (Jrelp_inf - Jrelp)/(5.94*(1.0 + 0.5/(1.0 + pow(1.7/Cajsr, 8.0))));
J_rel = ((1.0 - phi_mk)*Jrelnp + phi_mk*Jrelp)*1.0;
J_upnp = 0.004375*Cai/(Cai + 0.00092);
J_upp = 2.75*0.004375*Cai/(Cai + 0.00092 - 0.00017);
J_up = (1.0 - phi_mk)*J_upnp + phi_mk*J_upp;
J_tr = (Cansr - Cajsr)/100.0;
J_diff = (Cass - Cai)/0.2;
diff_Cansr = J_up*2.0 - J_tr*0.08;
diff_Cajsr = J_tr - J_rel*10.0;
diff_Cass = -0.01*I_CaL + J_rel*0.4 - J_diff*0.02;
diff_Cai = -0.00002*(I_pCa + I_bCa - 2.0*I_NaCa) + J_diff*0.001 - J_up*0.05
           + 0.002*(0.0000863 - Cai);
diff_Nai = -0.00001*(I_Na + I_NaL + I_bNa + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_to + I_Kr + I_Ks + I_K1 - 2.0*I_NaK);
Iion = I_Na + I_NaL + I_to + I_CaL + I_Kr + I_Ks + I_K1 + I_NaK + I_NaCa
       + I_pCa + I_bNa + I_bCa;
|};
  }

let grandi_pandit_voigt =
  {
    name = "GrandiPanditVoigt";
    cls = Large;
    fidelity = Structural;
    description =
      "Grandi-Pandit-Voigt 2011 human atrial structure (29 states): \
       junctional/sub-sarcolemmal compartments, buffer ODE chain — the \
       most compute-bound model in the paper's roofline.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0014;
h; h_init = 0.97;
j; j_init = 0.98;
d; d_init = 0.000007;
f; f_init = 1.0;
fcaBj; fcaBj_init = 0.025;
fcaBsl; fcaBsl_init = 0.015;
xtof; xtof_init = 0.0004;
ytof; ytof_init = 0.95;
xkr; xkr_init = 0.009;
xks; xks_init = 0.004;
xkur; xkur_init = 0.0005;
ykur; ykur_init = 0.97;
RyRr; RyRr_init = 0.89;
RyRo; RyRo_init = 0.0000009;
RyRi; RyRi_init = 0.0000001;
NaBj; NaBj_init = 3.54;
NaBsl; NaBsl_init = 0.78;
TnCL; TnCL_init = 0.0089;
TnCHc; TnCHc_init = 0.117;
CaM; CaM_init = 0.000295;
SRB; SRB_init = 0.0021;
Naj; Naj_init = 9.136;
Nasl; Nasl_init = 9.136;
Nai; Nai_init = 9.136;
Caj; Caj_init = 0.00017;
Casl; Casl_init = 0.0001;
Cai; Cai_init = 0.000087;
Casr; Casr_init = 0.55;
Vm_init = -73.5;
group{ g_Na = 23.0; g_caL = 0.5; g_tof = 0.165; g_kr = 0.035; g_ks = 0.0035;
       g_kur = 0.045; g_k1 = 0.0525; RTF = 26.71; Nao = 140.0; Ko = 5.4;
       Cao = 1.8; Fjunc = 0.11; }.param();
m_inf = 1.0/square(1.0 + exp(-(56.86 + Vm)/9.03));
tau_m = 0.1292*exp(-square((Vm + 45.79)/15.54)) + 0.06487*exp(-square((Vm - 4.823)/51.12));
diff_m = (m_inf - m)/tau_m;  m; .method(rush_larsen);
a_h = (Vm >= -40.0) ? 0.0 : 0.057*exp(-(Vm + 80.0)/6.8);
b_h = (Vm >= -40.0) ? 0.77/(0.13*(1.0 + exp(-(Vm + 10.66)/11.1)))
      : 2.7*exp(0.079*Vm) + 310000.0*exp(0.3485*Vm);
h_inf = 1.0/square(1.0 + exp((Vm + 71.55)/7.43));
diff_h = (h_inf - h)*(a_h + b_h);  h; .method(rush_larsen);
a_j = (Vm >= -40.0) ? 0.0
      : (-25428.0*exp(0.2444*Vm) - 0.000006948*exp(-0.04391*Vm))
        *(Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)));
b_j = (Vm >= -40.0)
      ? 0.6*exp(0.057*Vm)/(1.0 + exp(-0.1*(Vm + 32.0)))
      : 0.02424*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14)));
diff_j = (h_inf - j)*(a_j + b_j);  j; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp(-(Vm + 9.0)/6.0));
tau_d = d_inf*((fabs(Vm + 9.0) < 1e-6) ? 6.0/0.035
        : (1.0 - exp(-(Vm + 9.0)/6.0))/(0.035*(Vm + 9.0)));
diff_d = (d_inf - d)/max(fabs(tau_d), 0.05);  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 30.0)/7.0)) + 0.2/(1.0 + exp((50.0 - Vm)/20.0));
tau_f = 1.0/(0.0197*exp(-square(0.0337*(Vm + 14.5))) + 0.02);
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
diff_fcaBj = 1.7*Caj*(1.0 - fcaBj) - 0.0119*fcaBj;
fcaBj; .method(markov_be);
diff_fcaBsl = 1.7*Casl*(1.0 - fcaBsl) - 0.0119*fcaBsl;
fcaBsl; .method(markov_be);
xtof_inf = 1.0/(1.0 + exp(-(Vm + 1.0)/11.0));
tau_xtof = 3.5*exp(-square(Vm/30.0)) + 1.5;
diff_xtof = (xtof_inf - xtof)/tau_xtof;  xtof; .method(rush_larsen);
ytof_inf = 1.0/(1.0 + exp((Vm + 40.5)/11.5));
tau_ytof = 25.635*exp(-square((Vm + 52.45)/15.8827)) + 24.14;
diff_ytof = (ytof_inf - ytof)/tau_ytof;  ytof; .method(rush_larsen);
xkr_inf = 1.0/(1.0 + exp(-(Vm + 10.0)/5.0));
tau_xkr = 550.0/(1.0 + exp((-22.0 - Vm)/9.0))*6.0/(1.0 + exp((Vm + 11.0)/9.0))
          + 230.0/(1.0 + exp((Vm + 40.0)/20.0));
diff_xkr = (xkr_inf - xkr)/tau_xkr;  xkr; .method(rush_larsen);
xks_inf = 1.0/(1.0 + exp(-(Vm + 40.0)/14.25));
tau_xks = 990.1/(1.0 + exp(-(Vm + 2.436)/14.12));
diff_xks = (xks_inf - xks)/tau_xks;  xks; .method(rush_larsen);
xkur_inf = 1.0/(1.0 + exp((Vm + 6.0)/-8.6));
tau_xkur = 9.0/(1.0 + exp((Vm + 5.0)/12.0)) + 0.5;
diff_xkur = (xkur_inf - xkur)/tau_xkur;  xkur; .method(rush_larsen);
ykur_inf = 1.0/(1.0 + exp((Vm + 7.5)/10.0));
tau_ykur = 590.0/(1.0 + exp((Vm + 60.0)/10.0)) + 3050.0;
diff_ykur = (ykur_inf - ykur)/tau_ykur;  ykur; .method(rush_larsen);
kCaSR = 15.0 - 14.0/(1.0 + pow(0.45/Casr, 2.5));
koSRCa = 10.0/kCaSR;
kiSRCa = 0.5*kCaSR;
RI = 1.0 - RyRr - RyRo - RyRi;
diff_RyRr = (0.01*RI - kiSRCa*Caj*RyRr) - (koSRCa*square(Caj)*RyRr - 0.06*RyRo);
diff_RyRo = (koSRCa*square(Caj)*RyRr - 0.06*RyRo) - (kiSRCa*Caj*RyRo - 0.005*RyRi);
RyRo; .method(markov_be);
diff_RyRi = (kiSRCa*Caj*RyRo - 0.005*RyRi) - (0.06*RyRi - koSRCa*square(Caj)*RI);
diff_NaBj = 0.0001*Naj*(7.561 - NaBj) - 0.001*NaBj;
diff_NaBsl = 0.0001*Nasl*(1.65 - NaBsl) - 0.001*NaBsl;
diff_TnCL = 32.7*Cai*(0.07 - TnCL) - 0.0196*TnCL;
diff_TnCHc = 2.37*Cai*(0.14 - TnCHc) - 0.000032*TnCHc;
diff_CaM = 34.0*Cai*(0.024 - CaM) - 0.238*CaM;
diff_SRB = 100.0*Cai*(0.0171 - SRB) - 60.0*SRB*0.001;
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki_fixed);
Ki_fixed = 120.0;
E_Ca = 0.5*RTF*log(Cao/Cai);
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
vff = Vm*2.0/RTF;
ibarca_j = 0.5*4.0*Vm*96485.0/RTF
           *((fabs(vff) < 1e-6) ? (0.341*Caj - 0.341*Cao)
             : (0.341*Caj*exp(vff) - 0.341*Cao)/(exp(vff) - 1.0));
I_CaL = g_caL*d*f*(Fjunc*(1.0 - fcaBj) + (1.0 - Fjunc)*(1.0 - fcaBsl))*ibarca_j*0.01;
I_tof = g_tof*xtof*ytof*(Vm - E_K);
I_Kr = g_kr*sqrt(Ko/5.4)*xkr*(Vm - E_K)/(1.0 + exp((Vm + 74.0)/24.0))*20.0;
I_Ks = g_ks*square(xks)*(Vm - E_K)*20.0;
I_Kur = g_kur*xkur*ykur*(Vm - E_K)*(1.0 + 2.0/(1.0 + exp((Vm + 54.0)/-14.0)));
a_K1 = 1.02/(1.0 + exp(0.2385*(Vm - E_K - 59.215)));
b_K1 = (0.49124*exp(0.08032*(Vm - E_K + 5.476)) + exp(0.06175*(Vm - E_K - 594.31)))
       /(1.0 + exp(-0.5143*(Vm - E_K + 4.753)));
I_K1 = g_k1*sqrt(Ko/5.4)*(a_K1/(a_K1 + b_K1))*(Vm - E_K)*20.0;
I_NaK = 1.26*(Ko/(Ko + 1.5))/(1.0 + pow(11.0/Nai, 4.0))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF) + 0.0365*exp(-Vm/RTF));
I_NaCa = 900.0*(exp(0.27*Vm/RTF)*cube(Naj)*Cao - exp(-0.73*Vm/RTF)*cube(Nao)*Caj*1.6)
         /((cube(87.5) + cube(Nao))*(1.3 + Cao)*(1.0 + 0.27*exp(-0.73*Vm/RTF)))*0.03;
I_pCa = 0.0471*square(Cai)/(square(Cai) + square(0.0005));
I_bCa = 0.0006*(Vm - E_Ca);
I_bNa = 0.000597*(Vm - E_Na);
J_rel = 25.0*RyRo*(Casr - Caj)*0.1;
J_up = 0.0053114*(pow(Cai/0.00025, 1.787) - pow(Casr/2.6, 1.787))
       /(1.0 + pow(Cai/0.00025, 1.787) + pow(Casr/2.6, 1.787));
J_leak = 0.000005348*(Casr - Caj);
diff_Casr = J_up*0.9 - J_rel*0.01 - J_leak*100.0 - 0.001*diff_SRB;
diff_Caj = -0.003*ibarca_j*0.01 + (J_rel*0.005 + J_leak*10.0)
           + 0.02*(Casl - Caj) + 0.0002*(0.00017 - Caj) + 0.0002*I_NaCa;
diff_Casl = 0.005*(Caj - Casl) + 0.01*(Cai - Casl) - 0.00005*(I_bCa*0.5 - I_NaCa*0.1);
diff_Cai = 0.005*(Casl - Cai) - J_up*0.01 - (diff_TnCL + diff_TnCHc + diff_CaM)*0.001
           - 0.00001*I_pCa + 0.001*(0.000087 - Cai);
diff_Naj = -0.0001*(I_Na*Fjunc + 3.0*I_NaCa*Fjunc) + 0.02*(Nasl - Naj) - 0.001*diff_NaBj;
diff_Nasl = 0.01*(Naj - Nasl) + 0.01*(Nai - Nasl) - 0.001*diff_NaBsl;
diff_Nai = 0.01*(Nasl - Nai) - 0.00001*(3.0*I_NaK + I_bNa);
Iion = I_Na + I_CaL + I_tof + I_Kr + I_Ks + I_Kur + I_K1 + I_NaK + I_NaCa
       + I_pCa + I_bCa + I_bNa;
|};
  }

let entries : entry list =
  [ ohara; grandi_pandit_voigt ] @ Large_models3.entries
