(** Large-class models, part 3 (structural reproductions). *)

open Model_def

let grandi_pasqualini =
  {
    name = "GrandiPasqualini";
    cls = Large;
    fidelity = Structural;
    description =
      "Grandi-Pasqualini-Bers 2010 human ventricular structure (26 \
       states): the ventricular sibling of GrandiPanditVoigt — no IKur, \
       slow Ito component instead.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0038;
h; h_init = 0.626;
j; j_init = 0.62;
d; d_init = 0.0000094;
f; f_init = 1.0;
fcaBj; fcaBj_init = 0.0246;
fcaBsl; fcaBsl_init = 0.0152;
xtos; xtos_init = 0.004;
ytos; ytos_init = 0.987;
xtof; xtof_init = 0.004;
ytof; ytof_init = 0.994;
xkr; xkr_init = 0.0087;
xks; xks_init = 0.0054;
RyRr; RyRr_init = 0.89;
RyRo; RyRo_init = 0.0000008;
RyRi; RyRi_init = 0.0000001;
TnCL; TnCL_init = 0.0089;
TnCHc; TnCHc_init = 0.117;
CaM; CaM_init = 0.000295;
SRB; SRB_init = 0.0021;
Naj; Naj_init = 8.8;
Nasl; Nasl_init = 8.8;
Nai; Nai_init = 8.8;
Caj; Caj_init = 0.00017;
Casl; Casl_init = 0.0001;
Cai; Cai_init = 0.000087;
Casr; Casr_init = 0.55;
Vm_init = -81.5;
group{ g_Na = 16.0; g_caL = 0.35; g_tos = 0.13; g_tof = 0.02; g_kr = 0.03;
       g_ks = 0.0035; g_k1 = 0.35; RTF = 26.71; Nao = 140.0; Ko = 5.4;
       Cao = 1.8; Fjunc = 0.11; Ki_fixed = 135.0; }.param();
m_inf = 1.0/square(1.0 + exp(-(56.86 + Vm)/9.03));
tau_m = 0.1292*exp(-square((Vm + 45.79)/15.54)) + 0.06487*exp(-square((Vm - 4.823)/51.12));
diff_m = (m_inf - m)/tau_m;  m; .method(rush_larsen);
a_h = (Vm >= -40.0) ? 0.0 : 0.057*exp(-(Vm + 80.0)/6.8);
b_h = (Vm >= -40.0) ? 0.77/(0.13*(1.0 + exp(-(Vm + 10.66)/11.1)))
      : 2.7*exp(0.079*Vm) + 310000.0*exp(0.3485*Vm);
h_inf = 1.0/square(1.0 + exp((Vm + 71.55)/7.43));
diff_h = (h_inf - h)*(a_h + b_h);  h; .method(rush_larsen);
a_j = (Vm >= -40.0) ? 0.0
      : (-25428.0*exp(0.2444*Vm) - 0.000006948*exp(-0.04391*Vm))
        *(Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)));
b_j = (Vm >= -40.0)
      ? 0.6*exp(0.057*Vm)/(1.0 + exp(-0.1*(Vm + 32.0)))
      : 0.02424*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14)));
diff_j = (h_inf - j)*(a_j + b_j);  j; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp(-(Vm + 5.0)/6.0));
tau_d = d_inf*((fabs(Vm + 5.0) < 1e-6) ? 6.0/0.035
        : (1.0 - exp(-(Vm + 5.0)/6.0))/(0.035*(Vm + 5.0)));
diff_d = (d_inf - d)/max(fabs(tau_d), 0.05);  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 35.0)/9.0)) + 0.6/(1.0 + exp((50.0 - Vm)/20.0));
tau_f = 1.0/(0.0197*exp(-square(0.0337*(Vm + 14.5))) + 0.02);
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
diff_fcaBj = 1.7*Caj*(1.0 - fcaBj) - 0.0119*fcaBj;   fcaBj; .method(markov_be);
diff_fcaBsl = 1.7*Casl*(1.0 - fcaBsl) - 0.0119*fcaBsl; fcaBsl; .method(markov_be);
xtos_inf = 1.0/(1.0 + exp(-(Vm - 19.0)/13.0));
tau_xtos = 9.0/(1.0 + exp((Vm + 3.0)/15.0)) + 0.5;
diff_xtos = (xtos_inf - xtos)/tau_xtos;  xtos; .method(rush_larsen);
ytos_inf = 1.0/(1.0 + exp((Vm + 19.5)/5.0));
tau_ytos = 800.0/(1.0 + exp((Vm + 60.0)/10.0)) + 30.0;
diff_ytos = (ytos_inf - ytos)/tau_ytos;  ytos; .method(rush_larsen);
xtof_inf = xtos_inf;
tau_xtof = 8.5*exp(-square((Vm + 45.0)/50.0)) + 0.5;
diff_xtof = (xtof_inf - xtof)/tau_xtof;  xtof; .method(rush_larsen);
ytof_inf = ytos_inf;
tau_ytof = 85.0*exp(-square(Vm + 40.0)/220.0) + 7.0;
diff_ytof = (ytof_inf - ytof)/tau_ytof;  ytof; .method(rush_larsen);
xkr_inf = 1.0/(1.0 + exp(-(Vm + 10.0)/5.0));
tau_xkr = 550.0/(1.0 + exp((-22.0 - Vm)/9.0))*6.0/(1.0 + exp((Vm + 11.0)/9.0))
          + 230.0/(1.0 + exp((Vm + 40.0)/20.0));
diff_xkr = (xkr_inf - xkr)/tau_xkr;  xkr; .method(rush_larsen);
xks_inf = 1.0/(1.0 + exp(-(Vm + 3.8)/14.25));
tau_xks = 990.1/(1.0 + exp(-(Vm + 2.436)/14.12));
diff_xks = (xks_inf - xks)/tau_xks;  xks; .method(rush_larsen);
kCaSR = 15.0 - 14.0/(1.0 + pow(0.45/Casr, 2.5));
RI = 1.0 - RyRr - RyRo - RyRi;
diff_RyRr = (0.01*RI - 0.5*kCaSR*Caj*RyRr) - (10.0/kCaSR*square(Caj)*RyRr - 0.06*RyRo);
diff_RyRo = (10.0/kCaSR*square(Caj)*RyRr - 0.06*RyRo) - (0.5*kCaSR*Caj*RyRo - 0.005*RyRi);
RyRo; .method(markov_be);
diff_RyRi = (0.5*kCaSR*Caj*RyRo - 0.005*RyRi) - (0.06*RyRi - 10.0/kCaSR*square(Caj)*RI);
diff_TnCL = 32.7*Cai*(0.07 - TnCL) - 0.0196*TnCL;
diff_TnCHc = 2.37*Cai*(0.14 - TnCHc) - 0.000032*TnCHc;
diff_CaM = 34.0*Cai*(0.024 - CaM) - 0.238*CaM;
diff_SRB = 100.0*Cai*(0.0171 - SRB) - 0.06*SRB;
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki_fixed);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
vff = Vm*2.0/RTF;
ibarca = 0.5*4.0*Vm*96485.0/RTF
         *((fabs(vff) < 1e-6) ? (0.341*Caj - 0.341*Cao)
           : (0.341*Caj*exp(vff) - 0.341*Cao)/(exp(vff) - 1.0));
I_CaL = g_caL*d*f*(Fjunc*(1.0 - fcaBj) + (1.0 - Fjunc)*(1.0 - fcaBsl))*ibarca*0.01;
I_tos = g_tos*xtos*ytos*(Vm - E_K);
I_tof = g_tof*xtof*ytof*(Vm - E_K);
I_Kr = g_kr*sqrt(Ko/5.4)*xkr*(Vm - E_K)/(1.0 + exp((Vm + 74.0)/24.0))*20.0;
I_Ks = g_ks*square(xks)*(Vm - E_K)*20.0;
a_K1 = 1.02/(1.0 + exp(0.2385*(Vm - E_K - 59.215)));
b_K1 = (0.49124*exp(0.08032*(Vm - E_K + 5.476)) + exp(0.06175*(Vm - E_K - 594.31)))
       /(1.0 + exp(-0.5143*(Vm - E_K + 4.753)));
I_K1 = g_k1*sqrt(Ko/5.4)*(a_K1/(a_K1 + b_K1))*(Vm - E_K)*5.0;
I_NaK = 1.8*(Ko/(Ko + 1.5))/(1.0 + pow(11.0/Nai, 4.0))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF) + 0.0365*exp(-Vm/RTF));
I_NaCa = 900.0*(exp(0.27*Vm/RTF)*cube(Naj)*Cao - exp(-0.73*Vm/RTF)*cube(Nao)*Caj*1.6)
         /((cube(87.5) + cube(Nao))*(1.3 + Cao)*(1.0 + 0.27*exp(-0.73*Vm/RTF)))*0.03;
I_pCa = 0.0673*square(Cai)/(square(Cai) + square(0.0005));
I_bCa = 0.0005513*(Vm - E_Ca);
I_bNa = 0.000597*(Vm - E_Na);
J_rel = 25.0*RyRo*(Casr - Caj)*0.1;
J_up = 0.0053114*(pow(Cai/0.00025, 1.787) - pow(Casr/2.6, 1.787))
       /(1.0 + pow(Cai/0.00025, 1.787) + pow(Casr/2.6, 1.787));
J_leak = 0.000005348*(Casr - Caj);
diff_Casr = J_up*0.9 - J_rel*0.01 - J_leak*100.0 - 0.001*diff_SRB;
diff_Caj = -0.003*ibarca*0.01 + (J_rel*0.005 + J_leak*10.0)
           + 0.02*(Casl - Caj) + 0.0002*(0.00017 - Caj) + 0.0002*I_NaCa;
diff_Casl = 0.005*(Caj - Casl) + 0.01*(Cai - Casl) - 0.00005*(I_bCa*0.5 - I_NaCa*0.1);
diff_Cai = 0.005*(Casl - Cai) - J_up*0.01 - (diff_TnCL + diff_TnCHc + diff_CaM)*0.001
           - 0.00001*I_pCa + 0.001*(0.000087 - Cai);
diff_Naj = -0.0001*(I_Na*Fjunc + 3.0*I_NaCa*Fjunc) + 0.02*(Nasl - Naj);
diff_Nasl = 0.01*(Naj - Nasl) + 0.01*(Nai - Nasl);
diff_Nai = 0.01*(Nasl - Nai) - 0.00001*(3.0*I_NaK + I_bNa);
Iion = I_Na + I_CaL + I_tos + I_tof + I_Kr + I_Ks + I_K1 + I_NaK + I_NaCa
       + I_pCa + I_bCa + I_bNa;
|};
  }

let shannon =
  {
    name = "Shannon";
    cls = Large;
    fidelity = Structural;
    description =
      "Shannon 2004 rabbit ventricular structure (24 states): four-state \
       RyR, junctional/SL calcium, explicit buffer set.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0014;
h; h_init = 0.987;
j; j_init = 0.991;
d; d_init = 0.000007;
f; f_init = 1.0;
fCaB_j; fCaB_j_init = 0.0246;
fCaB_sl; fCaB_sl_init = 0.0152;
Xtos; Xtos_init = 0.004;
Ytos; Ytos_init = 0.987;
Rtos; Rtos_init = 0.99;
Xtof; Xtof_init = 0.004;
Ytof; Ytof_init = 0.994;
Xr; Xr_init = 0.0087;
Xs; Xs_init = 0.0054;
RyR_R; RyR_R_init = 0.89;
RyR_O; RyR_O_init = 0.0000008;
RyR_I; RyR_I_init = 0.0000001;
NaB_j; NaB_j_init = 3.4;
NaB_sl; NaB_sl_init = 0.75;
Naj; Naj_init = 8.8;
Nai; Nai_init = 8.8;
Cai; Cai_init = 0.000087;
Caj; Caj_init = 0.00017;
Casr; Casr_init = 0.55;
Vm_init = -85.6;
group{ g_Na = 16.0; g_caL = 0.3; g_tos = 0.06; g_tof = 0.02; g_kr = 0.03;
       g_ks = 0.0035; g_k1 = 0.9; RTF = 26.71; Nao = 140.0; Ko = 5.4;
       Cao = 1.8; Ki_fixed = 135.0; }.param();
m_inf = 1.0/square(1.0 + exp(-(56.86 + Vm)/9.03));
tau_m = 0.1292*exp(-square((Vm + 45.79)/15.54)) + 0.06487*exp(-square((Vm - 4.823)/51.12));
diff_m = (m_inf - m)/tau_m;  m; .method(rush_larsen);
a_h = (Vm >= -40.0) ? 0.0 : 0.057*exp(-(Vm + 80.0)/6.8);
b_h = (Vm >= -40.0) ? 0.77/(0.13*(1.0 + exp(-(Vm + 10.66)/11.1)))
      : 2.7*exp(0.079*Vm) + 310000.0*exp(0.3485*Vm);
h_inf = 1.0/square(1.0 + exp((Vm + 71.55)/7.43));
diff_h = (h_inf - h)*(a_h + b_h);  h; .method(rush_larsen);
a_j = (Vm >= -40.0) ? 0.0
      : (-25428.0*exp(0.2444*Vm) - 0.000006948*exp(-0.04391*Vm))
        *(Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)));
b_j = (Vm >= -40.0)
      ? 0.6*exp(0.057*Vm)/(1.0 + exp(-0.1*(Vm + 32.0)))
      : 0.02424*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14)));
diff_j = (h_inf - j)*(a_j + b_j);  j; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp(-(Vm + 14.5)/6.0));
tau_d = d_inf*((fabs(Vm + 14.5) < 1e-6) ? 6.0/0.035
        : (1.0 - exp(-(Vm + 14.5)/6.0))/(0.035*(Vm + 14.5)));
diff_d = (d_inf - d)/max(fabs(tau_d), 0.05);  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 35.06)/3.6)) + 0.6/(1.0 + exp((50.0 - Vm)/20.0));
tau_f = 1.0/(0.0197*exp(-square(0.0337*(Vm + 14.5))) + 0.02);
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
diff_fCaB_j = 1.7*Caj*(1.0 - fCaB_j) - 0.0119*fCaB_j;
diff_fCaB_sl = 1.7*Cai*1.3*(1.0 - fCaB_sl) - 0.0119*fCaB_sl;
Xtos_inf = 1.0/(1.0 + exp(-(Vm - 19.0)/13.0));
diff_Xtos = (Xtos_inf - Xtos)/(9.0/(1.0 + exp((Vm + 3.0)/15.0)) + 0.5);
Xtos; .method(rush_larsen);
Ytos_inf = 1.0/(1.0 + exp((Vm + 19.5)/5.0));
diff_Ytos = (Ytos_inf - Ytos)/(3000.0/(1.0 + exp((Vm + 60.0)/10.0)) + 30.0);
Ytos; .method(rush_larsen);
Rtos_inf = 1.0/(1.0 + exp((Vm + 19.5)/5.0));
diff_Rtos = (Rtos_inf - Rtos)/(2800.0/(1.0 + exp((Vm + 60.0)/10.0)) + 220.0);
Rtos; .method(rush_larsen);
Xtof_inf = Xtos_inf;
diff_Xtof = (Xtof_inf - Xtof)/(3.5*exp(-square(Vm/30.0)) + 1.5);
Xtof; .method(rush_larsen);
Ytof_inf = Ytos_inf;
diff_Ytof = (Ytof_inf - Ytof)/(20.0/(1.0 + exp((Vm + 33.5)/10.0)) + 20.0);
Ytof; .method(rush_larsen);
Xr_inf = 1.0/(1.0 + exp(-(Vm + 50.0)/7.5));
tau_Xr = 1.0/(0.00138*((fabs(Vm + 7.0) < 1e-6) ? 0.123
         : (Vm + 7.0)/(1.0 - exp(-0.123*(Vm + 7.0))))
         + 0.00061*((fabs(Vm + 10.0) < 1e-6) ? 0.145
         : (Vm + 10.0)/(exp(0.145*(Vm + 10.0)) - 1.0)));
diff_Xr = (Xr_inf - Xr)/max(fabs(tau_Xr), 1.0);  Xr; .method(rush_larsen);
Xs_inf = 1.0/(1.0 + exp(-(Vm - 1.5)/16.7));
tau_Xs = 1.0/(0.0000719*((fabs(Vm + 30.0) < 1e-6) ? 0.148
         : (Vm + 30.0)/(1.0 - exp(-0.148*(Vm + 30.0))))
         + 0.000131*((fabs(Vm + 30.0) < 1e-6) ? 0.0687
         : (Vm + 30.0)/(exp(0.0687*(Vm + 30.0)) - 1.0)));
diff_Xs = (Xs_inf - Xs)/max(fabs(tau_Xs), 1.0);  Xs; .method(rush_larsen);
kCaSR = 15.0 - 14.0/(1.0 + pow(0.45/Casr, 2.5));
RI_s = 1.0 - RyR_R - RyR_O - RyR_I;
diff_RyR_R = (0.01*RI_s - 0.5*kCaSR*Caj*RyR_R) - (10.0/kCaSR*square(Caj)*RyR_R - 0.06*RyR_O);
diff_RyR_O = (10.0/kCaSR*square(Caj)*RyR_R - 0.06*RyR_O) - (0.5*kCaSR*Caj*RyR_O - 0.005*RyR_I);
RyR_O; .method(markov_be);
diff_RyR_I = (0.5*kCaSR*Caj*RyR_O - 0.005*RyR_I) - (0.06*RyR_I - 10.0/kCaSR*square(Caj)*RI_s);
diff_NaB_j = 0.0001*Naj*(7.561 - NaB_j) - 0.001*NaB_j;
diff_NaB_sl = 0.0001*Nai*(1.65 - NaB_sl) - 0.001*NaB_sl;
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki_fixed);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
vff = Vm*2.0/RTF;
ibarca = 0.5*4.0*Vm*96485.0/RTF
         *((fabs(vff) < 1e-6) ? (0.341*Caj - 0.341*Cao)
           : (0.341*Caj*exp(vff) - 0.341*Cao)/(exp(vff) - 1.0));
I_CaL = g_caL*d*f*(1.0 - fCaB_j)*ibarca*0.01;
I_tos = g_tos*Xtos*(Ytos + 0.5*Rtos)*(Vm - E_K);
I_tof = g_tof*Xtof*Ytof*(Vm - E_K);
I_Kr = g_kr*sqrt(Ko/5.4)*Xr*(Vm - E_K)/(1.0 + exp((Vm + 33.0)/22.4))*20.0;
I_Ks = g_ks*square(Xs)*(Vm - E_K)*20.0;
a_K1 = 1.02/(1.0 + exp(0.2385*(Vm - E_K - 59.215)));
b_K1 = (0.49124*exp(0.08032*(Vm - E_K + 5.476)) + exp(0.06175*(Vm - E_K - 594.31)))
       /(1.0 + exp(-0.5143*(Vm - E_K + 4.753)));
I_K1 = g_k1*sqrt(Ko/5.4)*(a_K1/(a_K1 + b_K1))*(Vm - E_K);
I_NaK = 1.9*(Ko/(Ko + 1.5))/(1.0 + pow(11.0/Nai, 4.0))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF) + 0.0365*exp(-Vm/RTF));
I_NaCa = 900.0*(exp(0.27*Vm/RTF)*cube(Naj)*Cao - exp(-0.73*Vm/RTF)*cube(Nao)*Caj*1.6)
         /((cube(87.5) + cube(Nao))*(1.3 + Cao)*(1.0 + 0.27*exp(-0.73*Vm/RTF)))*0.03;
I_pCa = 0.0673*square(Cai)/(square(Cai) + square(0.0005));
I_bCa = 0.0005513*(Vm - E_Ca);
I_bNa = 0.000597*(Vm - E_Na);
J_rel = 25.0*RyR_O*(Casr - Caj)*0.1;
J_up = 0.0053114*(pow(Cai/0.00025, 1.787) - pow(Casr/2.6, 1.787))
       /(1.0 + pow(Cai/0.00025, 1.787) + pow(Casr/2.6, 1.787));
J_leak = 0.000005348*(Casr - Caj);
diff_Casr = J_up*0.9 - J_rel*0.01 - J_leak*100.0;
diff_Caj = -0.003*ibarca*0.01 + J_rel*0.005 + J_leak*10.0 + 0.01*(Cai - Caj)
           + 0.0002*I_NaCa;
diff_Cai = 0.002*(Caj - Cai) - J_up*0.01 - 0.00001*I_pCa + 0.001*(0.000087 - Cai);
diff_Naj = -0.0001*(I_Na*0.11 + 3.0*I_NaCa*0.11) + 0.02*(Nai - Naj) - 0.001*diff_NaB_j;
diff_Nai = 0.002*(Naj - Nai) - 0.00001*(3.0*I_NaK + I_bNa) - 0.001*diff_NaB_sl;
Iion = I_Na + I_CaL + I_tos + I_tof + I_Kr + I_Ks + I_K1 + I_NaK + I_NaCa
       + I_pCa + I_bCa + I_bNa;
|};
  }

let wang_sobie =
  {
    name = "WangSobie";
    cls = Large;
    fidelity = Structural;
    description =
      "Wang & Sobie 2008 neonatal-mouse ventricular structure (22 \
       states): large T-type calcium contribution, NCX-dominated calcium \
       removal.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0027;
h; h_init = 0.99;
j; j_init = 0.99;
d; d_init = 0.000007;
f; f_init = 1.0;
dT; dT_init = 0.002;
fT; fT_init = 0.85;
a_to; a_to_init = 0.0009;
i_to; i_to_init = 0.999;
a_ss; a_ss_init = 0.0005;
Xr; Xr_init = 0.008;
Xs; Xs_init = 0.005;
y_f; y_f_init = 0.003;
RyR_O; RyR_O_init = 0.0000009;
RyR_R; RyR_R_init = 0.9;
TnC; TnC_init = 0.01;
Nai; Nai_init = 12.7;
Ki; Ki_init = 140.0;
Cai; Cai_init = 0.0001;
Cass; Cass_init = 0.0001;
Cansr; Cansr_init = 0.9;
Vm_init = -79.5;
group{ g_Na = 11.0; g_caL = 0.2; g_caT = 0.08; g_to = 0.1; g_ss = 0.03;
       g_kr = 0.04; g_ks = 0.005; g_k1 = 0.2; g_f = 0.01; RTF = 26.71;
       Nao = 140.0; Ko = 5.4; Cao = 1.8; }.param();
m_inf = 1.0/square(1.0 + exp(-(Vm + 45.0)/6.5));
tau_m = 0.136/(0.32*((fabs(Vm + 47.13) < 1e-6) ? 10.0
        : (Vm + 47.13)/(1.0 - exp(-0.1*(Vm + 47.13)))) + 0.08*exp(-Vm/11.0));
diff_m = (m_inf - m)/max(tau_m, 0.01);  m; .method(rush_larsen);
h_inf = 1.0/(1.0 + exp((Vm + 76.1)/6.07));
tau_h = (Vm >= -40.0) ? 0.45*(1.0 + exp(-(Vm + 10.66)/11.1))
        : 3.5/(0.135*exp(-(Vm + 80.0)/6.8) + 3.56*exp(0.079*Vm) + 310000.0*exp(0.35*Vm));
diff_h = (h_inf - h)/max(tau_h, 0.01);  h; .method(rush_larsen);
j_inf = h_inf;
tau_j = (Vm >= -40.0) ? 11.6*(1.0 + exp(-0.1*(Vm + 32.0)))
        : 3.5/(((Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23))))
          *(-127140.0*exp(0.2444*Vm) - 0.00003474*exp(-0.04391*Vm))
          + 0.1212*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14))));
diff_j = (j_inf - j)/max(fabs(tau_j), 0.1);  j; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp(-(Vm + 11.1)/7.2));
tau_d = 1.4/(1.0 + exp((-35.0 - Vm)/13.0))*1.4/(1.0 + exp((Vm + 5.0)/5.0))
        + 1.0/(1.0 + exp((50.0 - Vm)/20.0));
diff_d = (d_inf - d)/tau_d;  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 23.3)/5.4));
tau_f = 1125.0*exp(-square(Vm + 27.0)/240.0) + 80.0 + 165.0/(1.0 + exp((25.0 - Vm)/10.0));
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
dT_inf = 1.0/(1.0 + exp(-(Vm + 51.0)/5.5));
diff_dT = (dT_inf - dT)/(0.4 + 1.4/(1.0 + exp((Vm + 30.0)/10.0)));
dT; .method(rush_larsen);
fT_inf = 1.0/(1.0 + exp((Vm + 80.0)/5.5));
diff_fT = (fT_inf - fT)/(10.0 + 25.0/(1.0 + exp((Vm + 65.0)/5.0)));
fT; .method(rush_larsen);
ato_inf = 1.0/(1.0 + exp(-(Vm + 22.5)/7.7));
diff_a_to = (ato_inf - a_to)/(0.493*exp(-0.0629*Vm) + 2.058);
a_to; .method(rush_larsen);
ito_inf = 1.0/(1.0 + exp((Vm + 45.2)/5.7));
diff_i_to = (ito_inf - i_to)/(0.1*exp(0.0861*(Vm + 45.2)) + 2.7);
i_to; .method(rush_larsen);
ass_inf = 1.0/(1.0 + exp(-(Vm + 22.5)/7.7));
diff_a_ss = (ass_inf - a_ss)/(39.3*exp(-0.0862*Vm) + 13.17);
a_ss; .method(rush_larsen);
Xr_inf = 1.0/(1.0 + exp(-(Vm + 15.0)/6.0));
diff_Xr = (Xr_inf - Xr)/(50.0 + 200.0*exp(-square((Vm + 30.0)/30.0)));
Xr; .method(rush_larsen);
Xs_inf = 1.0/(1.0 + exp(-(Vm - 1.5)/16.7));
diff_Xs = (Xs_inf - Xs)/(300.0 + 600.0*exp(-square((Vm + 30.0)/60.0)));
Xs; .method(rush_larsen);
y_inf = 1.0/(1.0 + exp((Vm + 125.0)/15.0));
diff_y_f = (y_inf - y_f)/900.0;  y_f; .method(rush_larsen);
kCaSR = 12.0 - 11.0/(1.0 + pow(0.4/Cansr, 2.0));
diff_RyR_R = 0.008*(1.0 - RyR_R - RyR_O) - 8.0/kCaSR*square(Cass)*RyR_R;
diff_RyR_O = 8.0/kCaSR*square(Cass)*RyR_R - 0.05*RyR_O;
RyR_O; .method(markov_be);
diff_TnC = 32.7*Cai*(0.07 - TnC) - 0.0196*TnC;
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
I_CaL = g_caL*d*f*(Vm - 65.0)*(1.0/(1.0 + square(Cass/0.0006)));
I_CaT = g_caT*dT*fT*(Vm - 50.0);
I_to = g_to*a_to*i_to*(Vm - E_K);
I_ss = g_ss*a_ss*(Vm - E_K);
I_Kr = g_kr*Xr*(Vm - E_K)/(1.0 + exp((Vm + 9.0)/22.4));
I_Ks = g_ks*square(Xs)*(Vm - E_K);
I_K1 = g_k1*(Ko/(Ko + 0.21))*(Vm - E_K)/(1.0 + exp(0.0896*(Vm - E_K)));
I_f = g_f*y_f*(0.2*(Vm - E_Na) + 0.8*(Vm - E_K));
I_NaK = 0.88*(Ko/(Ko + 1.5))*(1.0/(1.0 + pow(21.0/Nai, 1.5)))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF));
I_NaCa = 900.0*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai*2.0)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*0.08;
I_pCa = 0.035*square(Cai)/(square(Cai) + square(0.0005));
J_rel = 12.0*RyR_O*(Cansr - Cass)*0.1;
J_up = 0.3*square(Cai)/(square(Cai) + square(0.0005))*0.01;
J_diff = (Cass - Cai)/0.5;
diff_Cansr = (J_up - J_rel*0.05)*3.0;
diff_Cass = -0.01*(I_CaL + I_CaT) + J_rel*0.2 - J_diff*0.05;
diff_Cai = J_diff*0.002 - J_up - 0.00002*(I_pCa - 2.0*I_NaCa)
           - 0.001*diff_TnC + 0.002*(0.0001 - Cai);
diff_Nai = -0.00001*(I_Na + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_to + I_ss + I_Kr + I_Ks + I_K1 - 2.0*I_NaK);
Iion = I_Na + I_CaL + I_CaT + I_to + I_ss + I_Kr + I_Ks + I_K1 + I_f
       + I_NaK + I_NaCa + I_pCa;
|};
  }

let entries : entry list =
  [ grandi_pasqualini; shannon; wang_sobie ] @ Large_models4.entries
