(** Large-class models, final batch (structural reproductions). *)

open Model_def

let mahajan =
  {
    name = "MahajanShiferaw";
    cls = Large;
    fidelity = Structural;
    description =
      "Mahajan-Shiferaw 2008 rabbit ventricular structure (20 states): \
       Markov-chain L-type calcium channel (5 occupancies, markov_be) and \
       a nonlinear buffering cascade.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.001;
h; h_init = 0.99;
j; j_init = 0.99;
c1; c1_init = 0.0002;
c2; c2_init = 0.92;
xi1ca; xi1ca_init = 0.008;
xi1ba; xi1ba_init = 0.0001;
xi2ca; xi2ca_init = 0.03;
xr; xr_init = 0.008;
xs1; xs1_init = 0.08;
xs2; xs2_init = 0.08;
xtos; xtos_init = 0.004;
ytos; ytos_init = 0.99;
xtof; xtof_init = 0.004;
ytof; ytof_init = 0.99;
Cai; Cai_init = 0.00025;
Cass; Cass_init = 0.00025;
Cansr; Cansr_init = 0.95;
Nai; Nai_init = 11.3;
tropi; tropi_init = 0.02;
Vm_init = -87.2;
group{ g_Na = 12.0; g_caL = 0.15; g_kr = 0.0125; g_ks = 0.1386; g_k1 = 0.3;
       g_tos = 0.04; g_tof = 0.11; RTF = 26.71; Nao = 136.0; Ko = 5.4;
       Cao = 1.8; Ki_fixed = 140.0; }.param();
a_m = (fabs(Vm + 47.13) < 1e-6) ? 3.2
      : 0.32*(Vm + 47.13)/(1.0 - exp(-0.1*(Vm + 47.13)));
b_m = 0.08*exp(-Vm/11.0);
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
a_h = (Vm >= -40.0) ? 0.0 : 0.135*exp(-(80.0 + Vm)/6.8);
b_h = (Vm >= -40.0) ? 1.0/(0.13*(1.0 + exp(-(Vm + 10.66)/11.1)))
      : 3.56*exp(0.079*Vm) + 310000.0*exp(0.35*Vm);
diff_h = a_h*(1.0 - h) - b_h*h;  h; .method(rush_larsen);
a_j = (Vm >= -40.0) ? 0.0
      : (-127140.0*exp(0.2444*Vm) - 0.00003474*exp(-0.04391*Vm))
        *(Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)));
b_j = (Vm >= -40.0)
      ? 0.3*exp(-0.0000002535*Vm)/(1.0 + exp(-0.1*(Vm + 32.0)))
      : 0.1212*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14)));
diff_j = a_j*(1.0 - j) - b_j*j;  j; .method(rush_larsen);
po_inf = 1.0/(1.0 + exp(-Vm/8.0));
alpha_ca = po_inf/(1.0*(1.0 - po_inf + 0.01));
beta_ca = (1.0 - po_inf)/1.0;
fca_ss = 1.0/(1.0 + cube(3.0*0.0001/Cass));
diff_c1 = alpha_ca*c2*0.1 - beta_ca*c1 - fca_ss*c1*0.5 + 0.005*xi1ca;
c1; .method(markov_be);
diff_c2 = beta_ca*c1 - alpha_ca*c2*0.1 + 0.002*(0.92 - c2);
diff_xi1ca = fca_ss*c1*0.5 - 0.005*xi1ca - 0.001*xi1ca + 0.0002*xi2ca;
xi1ca; .method(markov_be);
diff_xi1ba = 0.0001*c1 - 0.002*xi1ba;
diff_xi2ca = 0.001*xi1ca - 0.0002*xi2ca;
xr_inf = 1.0/(1.0 + exp(-(Vm + 50.0)/7.5));
tau_xr = 1.0/(0.00138*((fabs(Vm + 7.0) < 1e-6) ? 0.123
         : (Vm + 7.0)/(1.0 - exp(-0.123*(Vm + 7.0))))
         + 0.00061*((fabs(Vm + 10.0) < 1e-6) ? 0.145
         : (Vm + 10.0)/(exp(0.145*(Vm + 10.0)) - 1.0)));
diff_xr = (xr_inf - xr)/max(fabs(tau_xr), 1.0);  xr; .method(rush_larsen);
xs_inf = 1.0/(1.0 + exp(-(Vm - 1.5)/16.7));
tau_xs1 = 1.0/(0.0000719*((fabs(Vm + 30.0) < 1e-6) ? 0.148
          : (Vm + 30.0)/(1.0 - exp(-0.148*(Vm + 30.0))))
          + 0.000131*((fabs(Vm + 30.0) < 1e-6) ? 0.0687
          : (Vm + 30.0)/(exp(0.0687*(Vm + 30.0)) - 1.0)));
diff_xs1 = (xs_inf - xs1)/max(fabs(tau_xs1), 1.0);  xs1; .method(rush_larsen);
diff_xs2 = (xs_inf - xs2)/max(fabs(4.0*tau_xs1), 4.0);  xs2; .method(rush_larsen);
xtos_inf = 1.0/(1.0 + exp(-(Vm + 3.0)/15.0));
diff_xtos = (xtos_inf - xtos)/(9.0/(1.0 + exp((Vm + 3.0)/15.0)) + 0.5);
xtos; .method(rush_larsen);
ytos_inf = 1.0/(1.0 + exp((Vm + 33.5)/10.0));
diff_ytos = (ytos_inf - ytos)/(3000.0/(1.0 + exp((Vm + 60.0)/10.0)) + 30.0);
ytos; .method(rush_larsen);
diff_xtof = (xtos_inf - xtof)/(3.5*exp(-square(Vm/30.0)) + 1.5);
xtof; .method(rush_larsen);
diff_ytof = (ytos_inf - ytof)/(20.0/(1.0 + exp((Vm + 33.5)/10.0)) + 20.0);
ytof; .method(rush_larsen);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki_fixed);
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
vff = Vm*2.0/RTF;
gca_drive = 4.0*Vm*96485.0/RTF
            *((fabs(vff) < 1e-6) ? (Cass - 0.341*Cao)
              : (Cass*exp(vff) - 0.341*Cao)/(exp(vff) - 1.0));
I_CaL = g_caL*c1*gca_drive*0.02;
I_Kr = g_kr*sqrt(Ko/5.4)*xr*(Vm - E_K)/(1.0 + exp((Vm + 33.0)/22.4))*10.0;
qks = 1.0 + 0.8/(1.0 + cube(0.5*0.001/Cai));
I_Ks = g_ks*qks*xs1*xs2*(Vm - E_K);
a_K1 = 1.02/(1.0 + exp(0.2385*(Vm - E_K - 59.215)));
b_K1 = (0.49124*exp(0.08032*(Vm - E_K + 5.476)) + exp(0.06175*(Vm - E_K - 594.31)))
       /(1.0 + exp(-0.5143*(Vm - E_K + 4.753)));
I_K1 = g_k1*sqrt(Ko/5.4)*(a_K1/(a_K1 + b_K1))*(Vm - E_K);
I_tos = g_tos*xtos*(ytos + 0.5/(1.0 + exp((Vm + 33.5)/10.0)))*(Vm - E_K);
I_tof = g_tof*xtof*ytof*(Vm - E_K);
I_NaK = 1.5*(Ko/(Ko + 1.5))/(1.0 + square(12.0/Nai))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF));
I_NaCa = 0.84*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai*1.5)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*80.0;
J_rel = 2.0*c1*fca_ss*(Cansr - Cass)*10.0;
J_up = 0.3*square(Cai)/(square(Cai) + square(0.0005))*0.01;
J_diff = (Cass - Cai)/3.0;
diff_tropi = 32.7*Cai*(0.07 - tropi) - 0.0196*tropi;
diff_Cansr = (J_up - J_rel*0.01)*2.0;
diff_Cass = -0.005*I_CaL + J_rel*0.05 - J_diff*0.1;
diff_Cai = J_diff*0.01 - J_up - 0.00002*(-2.0*I_NaCa) - 0.001*diff_tropi
           + 0.001*(0.00025 - Cai);
diff_Nai = -0.00001*(I_Na + 3.0*I_NaK + 3.0*I_NaCa);
Iion = I_Na + I_CaL + I_Kr + I_Ks + I_K1 + I_tos + I_tof + I_NaK + I_NaCa;
|};
  }

let iyer =
  {
    name = "IyerMazhariWinslow";
    cls = Large;
    fidelity = Structural;
    description =
      "Iyer-Mazhari-Winslow 2004 human ventricular structure (25 states): \
       Markov-chain INa (4 closed + open + 2 inactivated occupancies, \
       markov_be), the slowest model in the suite per evaluation step.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
na_c3; na_c3_init = 0.62;
na_c2; na_c2_init = 0.25;
na_c1; na_c1_init = 0.04;
na_o; na_o_init = 0.0002;
na_if; na_if_init = 0.05;
na_is; na_is_init = 0.03;
d; d_init = 0.00001;
f; f_init = 0.999;
fca; fca_init = 0.95;
xr; xr_init = 0.005;
xs1; xs1_init = 0.02;
xs2; xs2_init = 0.02;
a_to; a_to_init = 0.001;
i_to_f; i_to_f_init = 0.98;
i_to_s; i_to_s_init = 0.98;
kv43_a; kv43_a_init = 0.0001;
kv14_a; kv14_a_init = 0.0001;
Nai; Nai_init = 9.8;
Ki; Ki_init = 125.6;
Cai; Cai_init = 0.00009;
Cass; Cass_init = 0.00012;
Cansr; Cansr_init = 0.26;
Cajsr; Cajsr_init = 0.25;
HTRPN; HTRPN_init = 0.98;
LTRPN; LTRPN_init = 0.08;
Vm_init = -90.7;
group{ g_Na = 56.3; g_caL = 0.15; g_kr = 0.0186; g_ks = 0.0035;
       g_to = 0.09; g_k1 = 0.125; RTF = 26.71; Nao = 138.0; Ko = 4.0;
       Cao = 2.0; }.param();
a_na = 3.802/(0.1027*exp(-(Vm + 2.5)/17.0) + 0.2*exp(-(Vm + 2.5)/150.0));
b_na = 0.1917*exp(-(Vm + 2.5)/20.3);
g_na_r = 0.188495*exp(-(Vm + 7.0)/16.6) + 0.393956;
d_na_r = a_na/(10.0*exp((Vm + 7.0)/7.7)*0.001 + 1.0)*0.01;
diff_na_c3 = b_na*na_c2 - 3.0*a_na*na_c3*0.01 + 0.001*(0.62 - na_c3);
diff_na_c2 = 3.0*a_na*na_c3*0.01 + 2.0*b_na*na_c1 - (b_na + 2.0*a_na*0.01)*na_c2;
na_c2; .method(markov_be);
diff_na_c1 = 2.0*a_na*na_c2*0.01 + 3.0*b_na*na_o - (2.0*b_na + a_na*0.01)*na_c1;
na_c1; .method(markov_be);
diff_na_o = a_na*na_c1*0.01 - 3.0*b_na*na_o - g_na_r*na_o + d_na_r*na_if;
na_o; .method(markov_be);
diff_na_if = g_na_r*na_o - d_na_r*na_if - 0.01*na_if + 0.002*na_is;
na_if; .method(markov_be);
diff_na_is = 0.01*na_if - 0.002*na_is;
d_inf = 1.0/(1.0 + exp(-(Vm + 10.0)/6.24));
tau_d = 1.0 + 2.0*exp(-square((Vm + 10.0)/30.0));
diff_d = (d_inf - d)/tau_d;  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 32.0)/8.0));
tau_f = 10.0 + 30.0*exp(-square((Vm + 28.0)/25.0));
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
fca_inf = 1.0/(1.0 + cube(Cass/0.00035));
diff_fca = (fca_inf - fca)/8.0;
xr_inf = 1.0/(1.0 + exp(-(Vm + 21.0)/7.5));
diff_xr = (xr_inf - xr)/(40.0 + 200.0*exp(-square((Vm + 30.0)/30.0)));
xr; .method(rush_larsen);
xs_inf = 1.0/(1.0 + exp(-(Vm - 1.5)/16.7));
diff_xs1 = (xs_inf - xs1)/(200.0 + 600.0*exp(-square((Vm + 30.0)/60.0)));
xs1; .method(rush_larsen);
diff_xs2 = (xs_inf - xs2)/(800.0 + 2400.0*exp(-square((Vm + 30.0)/60.0)));
xs2; .method(rush_larsen);
ato_inf = 1.0/(1.0 + exp(-(Vm + 10.0)/11.0));
diff_a_to = (ato_inf - a_to)/(1.0 + 2.0*exp(-square((Vm + 30.0)/30.0)));
a_to; .method(rush_larsen);
itof_inf = 1.0/(1.0 + exp((Vm + 42.0)/5.0));
diff_i_to_f = (itof_inf - i_to_f)/(10.0 + 20.0/(1.0 + exp((Vm + 50.0)/10.0)));
i_to_f; .method(rush_larsen);
diff_i_to_s = (itof_inf - i_to_s)/(100.0 + 300.0/(1.0 + exp((Vm + 50.0)/10.0)));
i_to_s; .method(rush_larsen);
diff_kv43_a = (ato_inf - kv43_a)/(2.0 + 3.0*exp(-square((Vm + 30.0)/30.0)));
kv43_a; .method(rush_larsen);
diff_kv14_a = (ato_inf - kv14_a)/(8.0 + 10.0*exp(-square((Vm + 30.0)/30.0)));
kv14_a; .method(rush_larsen);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_Na = g_Na*na_o*(Vm - E_Na)*0.2;
vff = Vm*2.0/RTF;
I_CaL = g_caL*d*f*fca*4.0*Vm*96485.0/RTF
        *((fabs(vff) < 1e-6) ? (Cass - 0.341*Cao)
          : (Cass*exp(vff) - 0.341*Cao)/(exp(vff) - 1.0))*0.3;
I_Kr = g_kr*sqrt(Ko/4.0)*xr*(Vm - E_K)/(1.0 + exp((Vm + 9.0)/22.4))*10.0;
I_Ks = g_ks*(0.6*xs1 + 0.4*xs2)*(Vm - E_K)*10.0;
I_to = g_to*(0.7*kv43_a*i_to_f + 0.3*kv14_a*i_to_s)*a_to*(Vm - E_K)*10.0;
a_K1 = 0.1/(1.0 + exp(0.06*(Vm - E_K - 200.0)));
b_K1 = (3.0*exp(0.0002*(Vm - E_K + 100.0)) + exp(0.1*(Vm - E_K - 10.0)))
       /(1.0 + exp(-0.5*(Vm - E_K)));
I_K1 = g_k1*(a_K1/(a_K1 + b_K1))*(Vm - E_K)*10.0;
I_NaK = 1.0*(Ko/(Ko + 1.5))/(1.0 + square(10.0/Nai))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF) + 0.0365*exp(-Vm/RTF));
I_NaCa = 1000.0*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai*2.0)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*0.04;
I_pCa = 0.05*Cai/(Cai + 0.0005);
I_bCa = 0.0003842*(Vm - E_Ca);
I_bNa = 0.000395*(Vm - E_Na);
diff_HTRPN = 20.0*Cai*(1.0 - HTRPN) - 0.000066*HTRPN;
diff_LTRPN = 40.0*Cai*(1.0 - LTRPN) - 0.04*LTRPN;
J_rel = 1.8*square(Cass/(Cass + 0.00025))*(Cajsr - Cass)*0.1;
J_up = 0.0045*square(Cai)/(square(Cai) + square(0.0005));
J_tr = (Cansr - Cajsr)/0.5747*0.01;
J_diff = (Cass - Cai)*4.0;
diff_Cajsr = J_tr - J_rel*0.2;
diff_Cansr = J_up*8.0 - J_tr*0.1;
diff_Cass = -0.005*I_CaL + J_rel*0.05 - J_diff*0.01;
diff_Cai = J_diff*0.0002 - J_up - 0.00002*(I_pCa + I_bCa - 2.0*I_NaCa)
           - 0.0004*(diff_HTRPN + diff_LTRPN) + 0.001*(0.00009 - Cai);
diff_Nai = -0.00001*(I_Na + I_bNa + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_to + I_Kr + I_Ks + I_K1 - 2.0*I_NaK);
Iion = I_Na + I_CaL + I_Kr + I_Ks + I_to + I_K1 + I_NaK + I_NaCa
       + I_pCa + I_bCa + I_bNa;
|};
  }

let hund_rudy =
  {
    name = "HundRudy";
    cls = Large;
    fidelity = Structural;
    description =
      "Hund-Rudy 2004 canine ventricular structure (22 states): CaMK \
       regulation, chloride currents and cleft-space potassium.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0011;
h; h_init = 0.9898;
j; j_init = 0.9934;
mL; mL_init = 0.0011;
hL; hL_init = 0.34;
d; d_init = 0.0000016;
f; f_init = 0.9943;
fca; fca_init = 0.98;
fca2; fca2_init = 0.92;
xr; xr_init = 0.000008;
xs1; xs1_init = 0.0048;
xs2; xs2_init = 0.0048;
a_to; a_to_init = 0.000004;
i_to; i_to_init = 0.9996;
i_to2; i_to2_init = 0.9996;
AA_g; AA_g_init = 0.0;
CaMKtrap; CaMKtrap_init = 0.001;
Nai; Nai_init = 9.7;
Ki; Ki_init = 142.8;
Cai; Cai_init = 0.0000965;
Cansr; Cansr_init = 1.98;
Vm_init = -87.2;
group{ g_Na = 8.25; g_NaL = 0.0065; g_caL = 0.00015; g_kr = 0.0138;
       g_ks = 0.0248; g_k1 = 0.5; g_to = 0.19; g_clb = 0.000225;
       RTF = 26.71; Nao = 140.0; Ko = 5.4; Cao = 1.8; CaMK0 = 0.05; }.param();
CaMKbound = CaMK0*(1.0 - CaMKtrap)/(1.0 + 0.0015/Cai);
CaMKactive = CaMKbound + CaMKtrap;
diff_CaMKtrap = 0.05*CaMKactive*CaMKbound - 0.00068*CaMKtrap;
a_m = (fabs(Vm + 47.13) < 1e-6) ? 3.2
      : 0.32*(Vm + 47.13)/(1.0 - exp(-0.1*(Vm + 47.13)));
b_m = 0.08*exp(-Vm/11.0);
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
a_h = (Vm >= -40.0) ? 0.0 : 0.135*exp(-(80.0 + Vm)/6.8);
b_h = (Vm >= -40.0) ? 1.0/(0.13*(1.0 + exp(-(Vm + 10.66)/11.1)))
      : 3.56*exp(0.079*Vm) + 310000.0*exp(0.35*Vm);
diff_h = a_h*(1.0 - h) - b_h*h;  h; .method(rush_larsen);
a_j = (Vm >= -40.0) ? 0.0
      : (-127140.0*exp(0.2444*Vm) - 0.00003474*exp(-0.04391*Vm))
        *(Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)));
b_j = (Vm >= -40.0)
      ? 0.3*exp(-0.0000002535*Vm)/(1.0 + exp(-0.1*(Vm + 32.0)))
      : 0.1212*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14)));
diff_j = a_j*(1.0 - j) - b_j*j;  j; .method(rush_larsen);
diff_mL = a_m*(1.0 - mL) - b_m*mL;  mL; .method(rush_larsen);
hL_inf = 1.0/(1.0 + exp((Vm + 91.0)/6.1));
diff_hL = (hL_inf - hL)/600.0;  hL; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp(-(Vm + 10.0)/6.24));
tau_d = 1.0 + 2.0*exp(-square((Vm + 10.0)/30.0));
diff_d = (d_inf - d)/tau_d;  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 32.0)/8.0)) + 0.6/(1.0 + exp((50.0 - Vm)/20.0));
tau_f = 10.0 + 30.0*exp(-square((Vm + 28.0)/25.0));
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
fca_inf = 0.3/(1.0 - I_CaL_prev/0.05) + 0.55/(1.0 + Cai/0.003) + 0.15;
I_CaL_prev = g_caL*d*f*(Vm - 35.0)*100.0;
diff_fca = (fca_inf - fca)/(10.0*CaMKactive/(0.15 + CaMKactive) + 0.5 + 1.0/(1.0 + Cai/0.003));
diff_fca2 = ((1.0/(1.0 - I_CaL_prev/0.01)) - fca2)/(300.0/(1.0 + exp((-I_CaL_prev - 0.175)/0.04)) + 125.0);
xr_inf = 1.0/(1.0 + exp(-(Vm + 10.085)/4.25));
tau_xr = 1.0/(0.0006*((fabs(Vm - 1.7384) < 1e-6) ? 0.136
         : (Vm - 1.7384)/(1.0 - exp(-0.136*(Vm - 1.7384))))
         + 0.0003*((fabs(Vm + 38.3608) < 1e-6) ? 0.1522
         : (Vm + 38.3608)/(exp(0.1522*(Vm + 38.3608)) - 1.0)));
diff_xr = (xr_inf - xr)/max(fabs(tau_xr), 1.0);  xr; .method(rush_larsen);
xs_inf = 1.0/(1.0 + exp(-(Vm - 10.5)/24.7));
tau_xs1 = 1.0/(0.0000761*((fabs(Vm + 44.6) < 1e-6) ? 9.97
          : (Vm + 44.6)/(1.0 - exp(-9.97*(Vm + 44.6)*0.01)))
          + 0.00036*((fabs(Vm - 0.55) < 1e-6) ? 0.128
          : (Vm - 0.55)/(exp(0.128*(Vm - 0.55)) - 1.0)));
diff_xs1 = (xs_inf - xs1)/max(fabs(tau_xs1), 1.0);  xs1; .method(rush_larsen);
diff_xs2 = (xs_inf - xs2)/max(fabs(2.0*tau_xs1), 2.0);  xs2; .method(rush_larsen);
ato_inf = 1.0/(1.0 + exp(-(Vm - 8.9)/10.3));
diff_a_to = (ato_inf - a_to)/(1.0 + 1.5*exp(-square((Vm + 20.0)/30.0)));
a_to; .method(rush_larsen);
ito_inf = 1.0/(1.0 + exp((Vm + 30.0)/5.0));
diff_i_to = (ito_inf - i_to)/(10.0 + 25.0/(1.0 + exp((Vm + 33.5)/10.0)));
i_to; .method(rush_larsen);
diff_i_to2 = (ito_inf - i_to2)/(40.0 + 100.0/(1.0 + exp((Vm + 33.5)/10.0)));
i_to2; .method(rush_larsen);
diff_AA_g = 0.0156*(Cai/(Cai + 0.0001))*(1.0 - AA_g) - 0.0078*AA_g;
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Cl = -40.0;
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
I_NaL = g_NaL*cube(mL)*hL*(Vm - E_Na);
I_CaL = g_caL*d*f*fca*fca2*(Vm - 35.0)*100.0;
I_Kr = g_kr*sqrt(Ko/5.4)*xr*(Vm - E_K)/(1.0 + exp((Vm + 10.0)/15.4))*10.0;
I_Ks = g_ks*(1.0 + 0.6/(1.0 + pow(0.000038/Cai, 1.4)))*xs1*xs2*(Vm - E_K)*10.0;
a_K1 = 1.02/(1.0 + exp(0.2385*(Vm - E_K - 59.215)));
b_K1 = (0.49124*exp(0.08032*(Vm - E_K + 5.476)) + exp(0.06175*(Vm - E_K - 594.31)))
       /(1.0 + exp(-0.5143*(Vm - E_K + 4.753)));
I_K1 = g_k1*sqrt(Ko/5.4)*(a_K1/(a_K1 + b_K1))*(Vm - E_K);
I_to = g_to*cube(a_to)*i_to*i_to2*(Vm - E_K);
I_to2 = 0.01*AA_g*(Vm - E_Cl);
I_Clb = g_clb*(Vm - E_Cl)*10.0;
I_NaK = 0.61875*(Ko/(Ko + 1.5))/(1.0 + square(10.0/Nai))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF) + 0.0365*exp(-Vm/RTF))*2.0;
I_NaCa = 1000.0*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai*2.0)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*0.05;
I_pCa = 0.0575*Cai/(Cai + 0.0005);
I_bCa = 0.001*(Vm - 0.5*RTF*log(Cao/Cai))*2.0;
J_up = (0.004375 + 0.75*0.004375*CaMKactive/(0.15 + CaMKactive))*Cai/(Cai + 0.00092);
J_rel = 1.0*square(Cai/(Cai + 0.0003))*(Cansr - Cai)*d*0.5;
diff_Cansr = (J_up - J_rel*0.05)*3.0;
diff_Cai = -0.00008*(I_CaL + I_pCa + I_bCa - 2.0*I_NaCa)
           + (J_rel*0.05 - J_up)*0.3 + 0.002*(0.0000965 - Cai);
diff_Nai = -0.00001*(I_Na + I_NaL + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_to + I_Kr + I_Ks + I_K1 - 2.0*I_NaK);
Iion = I_Na + I_NaL + I_CaL + I_Kr + I_Ks + I_K1 + I_to + I_to2 + I_Clb
       + I_NaK + I_NaCa + I_pCa + I_bCa;
|};
  }

let stewart =
  {
    name = "StewartPurkinje";
    cls = Large;
    fidelity = Structural;
    description =
      "Stewart 2009 Purkinje structure (20 states): ten Tusscher-derived \
       with funny current and sustained inward current.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
y_f; y_f_init = 0.0457;
m; m_init = 0.0145;
h; h_init = 0.26;
j; j_init = 0.27;
d; d_init = 0.000101;
f; f_init = 0.92;
f2; f2_init = 0.999;
fCass; fCass_init = 0.9995;
r; r_init = 0.00006;
s; s_init = 0.9755;
xr1; xr1_init = 0.00414;
xr2; xr2_init = 0.446;
xs; xs_init = 0.00395;
Rq; Rq_init = 0.991;
Nai; Nai_init = 8.23;
Ki; Ki_init = 136.78;
Cai; Cai_init = 0.000102;
Cass; Cass_init = 0.000446;
Casr; Casr_init = 3.11;
Vm_init = -69.13;
group{ g_f_K = 0.0234; g_f_Na = 0.0146; g_Na = 130.58; g_caL = 0.0000398;
       g_to = 0.08184; g_sus = 0.0227; g_kr = 0.0918; g_ks = 0.2352;
       g_k1 = 0.065; RTF = 26.71; Nao = 140.0; Ko = 5.4; Cao = 2.0; }.param();
y_inf = 1.0/(1.0 + exp((Vm + 80.6)/6.8));
a_y = exp(-2.9 - 0.04*Vm);
b_y = exp(3.6 + 0.11*Vm);
diff_y_f = (y_inf - y_f)*(a_y + b_y)*0.001*4000.0*0.001;
y_f; .method(rush_larsen);
m_inf = 1.0/square(1.0 + exp((-56.86 - Vm)/9.03));
tau_m = (1.0/(1.0 + exp((-60.0 - Vm)/5.0)))
        *(0.1/(1.0 + exp((Vm + 35.0)/5.0)) + 0.1/(1.0 + exp((Vm - 50.0)/200.0)));
diff_m = (m_inf - m)/tau_m;  m; .method(rush_larsen);
h_inf = 1.0/square(1.0 + exp((Vm + 71.55)/7.43));
a_h = (Vm >= -40.0) ? 0.0 : 0.057*exp(-(Vm + 80.0)/6.8);
b_h = (Vm >= -40.0) ? 0.77/(0.13*(1.0 + exp(-(Vm + 10.66)/11.1)))
      : 2.7*exp(0.079*Vm) + 310000.0*exp(0.3485*Vm);
diff_h = (h_inf - h)*(a_h + b_h);  h; .method(rush_larsen);
a_j = (Vm >= -40.0) ? 0.0
      : (-25428.0*exp(0.2444*Vm) - 0.000006948*exp(-0.04391*Vm))
        *(Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)));
b_j = (Vm >= -40.0)
      ? 0.6*exp(0.057*Vm)/(1.0 + exp(-0.1*(Vm + 32.0)))
      : 0.02424*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14)));
diff_j = (h_inf - j)*(a_j + b_j);  j; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp((-8.0 - Vm)/7.5));
tau_d = (1.4/(1.0 + exp((-35.0 - Vm)/13.0)) + 0.25)
        *(1.4/(1.0 + exp((Vm + 5.0)/5.0))) + 1.0/(1.0 + exp((50.0 - Vm)/20.0));
diff_d = (d_inf - d)/tau_d;  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 20.0)/7.0));
tau_f = 1102.5*exp(-square(Vm + 27.0)/225.0) + 200.0/(1.0 + exp((13.0 - Vm)/10.0))
        + 180.0/(1.0 + exp((Vm + 30.0)/10.0)) + 20.0;
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
f2_inf = 0.67/(1.0 + exp((Vm + 35.0)/7.0)) + 0.33;
tau_f2 = 562.0*exp(-square(Vm + 27.0)/240.0) + 31.0/(1.0 + exp((25.0 - Vm)/10.0))
         + 80.0/(1.0 + exp((Vm + 30.0)/10.0));
diff_f2 = (f2_inf - f2)/tau_f2;  f2; .method(rush_larsen);
fCass_inf = 0.6/(1.0 + square(Cass/0.05)) + 0.4;
diff_fCass = (fCass_inf - fCass)/(80.0/(1.0 + square(Cass/0.05)) + 2.0);
r_inf = 1.0/(1.0 + exp((20.0 - Vm)/13.0));
diff_r = (r_inf - r)/(10.45*exp(-square(Vm + 40.0)/1800.0) + 7.3);
r; .method(rush_larsen);
s_inf = 1.0/(1.0 + exp((Vm + 27.0)/13.0));
diff_s = (s_inf - s)/(85.0*exp(-square(Vm + 25.0)/320.0)
         + 5.0/(1.0 + exp((Vm - 40.0)/5.0)) + 42.0);
s; .method(rush_larsen);
xr1_inf = 1.0/(1.0 + exp((-26.0 - Vm)/7.0));
diff_xr1 = (xr1_inf - xr1)/((450.0/(1.0 + exp((-45.0 - Vm)/10.0)))
           *(6.0/(1.0 + exp((Vm + 30.0)/11.5))));
xr1; .method(rush_larsen);
xr2_inf = 1.0/(1.0 + exp((Vm + 88.0)/24.0));
diff_xr2 = (xr2_inf - xr2)/((3.0/(1.0 + exp((-60.0 - Vm)/20.0)))
           *(1.12/(1.0 + exp((Vm - 60.0)/20.0))));
xr2; .method(rush_larsen);
xs_inf = 1.0/(1.0 + exp((-5.0 - Vm)/14.0));
diff_xs = (xs_inf - xs)/((1400.0/sqrt(1.0 + exp((5.0 - Vm)/6.0)))
          *(1.0/(1.0 + exp((Vm - 35.0)/15.0))) + 80.0);
xs; .method(rush_larsen);
kcasr = 2.5 - 1.5/(1.0 + square(1.5/Casr));
diff_Rq = -0.045*kcasr*Cass*Rq + 0.005*(1.0 - Rq);
Rq; .method(markov_be);
O_ryr = (0.15/kcasr)*square(Cass)*Rq/(0.06 + (0.15/kcasr)*square(Cass));
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ks = RTF*log((Ko + 0.03*Nao)/(Ki + 0.03*Nai));
I_fK = g_f_K*y_f*(Vm - E_K)*10.0;
I_fNa = g_f_Na*y_f*(Vm - E_Na)*10.0;
I_sus = g_sus*(Vm + 30.0)/(1.0 + exp(-(Vm - 5.0)/17.0))*0.1;
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na)*0.1;
vff = Vm*2.0/RTF;
I_CaL = g_caL*d*f*f2*fCass*4.0*Vm*96485.0/RTF
        *((fabs(vff) < 1e-6) ? (0.25*Cass - 0.341*Cao)
          : (0.25*Cass*exp(vff) - 0.341*Cao)/(exp(vff) - 1.0))*10.0;
I_to = g_to*r*s*(Vm - E_K)*3.0;
I_Kr = g_kr*sqrt(Ko/5.4)*xr1*xr2*(Vm - E_K);
I_Ks = g_ks*square(xs)*(Vm - E_Ks);
xk1_inf = 1.0/(1.0 + exp(0.1*(Vm + 75.44)));
I_K1 = g_k1*xk1_inf*(Vm - 8.0 - E_K)*3.0;
I_NaK = 2.724*(Ko/(Ko + 1.0))*(Nai/(Nai + 40.0))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF) + 0.0353*exp(-Vm/RTF));
I_NaCa = 1000.0*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai*2.5)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*0.1;
I_pCa = 0.1238*Cai/(Cai + 0.0005);
I_pK = 0.0146*(Vm - E_K)/(1.0 + exp((25.0 - Vm)/5.98));
I_bNa = 0.00029*(Vm - E_Na);
I_bCa = 0.000592*(Vm - 0.5*RTF*log(Cao/Cai));
J_rel = 0.102*O_ryr*(Casr - Cass);
J_up = 0.006375/(1.0 + square(0.00025/Cai));
J_xfer = 0.0038*(Cass - Cai);
J_leak = 0.00036*(Casr - Cai);
diff_Casr = 10.0*(J_up - J_rel*0.1 - J_leak);
diff_Cass = -0.01*I_CaL + J_rel*0.05 - J_xfer*10.0;
diff_Cai = -0.00005*(I_bCa + I_pCa - 2.0*I_NaCa) + J_xfer + J_leak - J_up
           + 0.002*(0.000102 - Cai);
diff_Nai = -0.00001*(I_Na + I_fNa + I_bNa + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_to + I_fK + I_Kr + I_Ks + I_K1 + I_pK + I_sus - 2.0*I_NaK);
Iion = I_fK + I_fNa + I_Na + I_CaL + I_to + I_sus + I_Kr + I_Ks + I_K1
       + I_NaK + I_NaCa + I_pCa + I_pK + I_bNa + I_bCa;
|};
  }

let aslanidi =
  {
    name = "AslanidiSleiman";
    cls = Large;
    fidelity = Structural;
    description =
      "Aslanidi-Sleiman 2010 Purkinje structure (21 states): dense LUT \
       usage (every gate tabulated), T-type calcium and funny current on \
       top of a ventricular base.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
y_f; y_f_init = 0.05;
m; m_init = 0.0016;
h; h_init = 0.9;
j; j_init = 0.9;
dL; dL_init = 0.00003;
fL; fL_init = 0.9999;
fCa; fCa_init = 0.98;
dT; dT_init = 0.0002;
fT; fT_init = 0.85;
r; r_init = 0.0000329;
s; s_init = 0.9987;
xr1; xr1_init = 0.0001;
xr2; xr2_init = 0.48;
xs; xs_init = 0.0026;
q_rel; q_rel_init = 0.97;
Nai; Nai_init = 7.5;
Ki; Ki_init = 139.0;
Cai; Cai_init = 0.00008;
Cass; Cass_init = 0.0002;
Casr; Casr_init = 2.7;
Vm_init = -80.0;
group{ g_f = 0.03; g_Na = 60.0; g_caL = 0.065; g_caT = 0.02; g_to = 0.2;
       g_kr = 0.07; g_ks = 0.08; g_k1 = 2.0; RTF = 26.71; Nao = 140.0;
       Ko = 5.4; Cao = 2.0; }.param();
y_inf = 1.0/(1.0 + exp((Vm + 85.0)/9.0));
diff_y_f = (y_inf - y_f)/(500.0/(exp(-(Vm + 90.0)/20.0) + exp((Vm + 90.0)/18.0)) + 50.0);
y_f; .method(rush_larsen);
m_inf = 1.0/square(1.0 + exp((-45.0 - Vm)/6.5));
tau_m = 0.6/(1.0 + exp(-0.11*(Vm + 40.0))) + 0.05;
diff_m = (m_inf - m)/tau_m;  m; .method(rush_larsen);
h_inf = 1.0/square(1.0 + exp((Vm + 76.0)/6.07));
tau_h = 0.5 + 8.0/(1.0 + exp((Vm + 60.0)/8.0));
diff_h = (h_inf - h)/tau_h;  h; .method(rush_larsen);
tau_j = 2.0 + 95.0/(1.0 + exp((Vm + 60.0)/8.0));
diff_j = (h_inf - j)/tau_j;  j; .method(rush_larsen);
dL_inf = 1.0/(1.0 + exp(-(Vm + 11.1)/7.2));
tau_dL = 0.25 + 1.4/((1.0 + exp((-35.0 - Vm)/13.0))*(1.0 + exp((Vm + 5.0)/5.0)));
diff_dL = (dL_inf - dL)/tau_dL;  dL; .method(rush_larsen);
fL_inf = 1.0/(1.0 + exp((Vm + 23.3)/5.4));
tau_fL = 1125.0*exp(-square(Vm + 27.0)/240.0) + 80.0 + 165.0/(1.0 + exp((25.0 - Vm)/10.0));
diff_fL = (fL_inf - fL)/tau_fL;  fL; .method(rush_larsen);
fCa_inf = 1.0/(1.0 + square(Cass/0.000325));
diff_fCa = (fCa_inf - fCa)/2.0;
dT_inf = 1.0/(1.0 + exp(-(Vm + 37.0)/6.8));
diff_dT = (dT_inf - dT)/(0.6 + 5.4/(1.0 + exp(0.03*(Vm + 100.0))));
dT; .method(rush_larsen);
fT_inf = 1.0/(1.0 + exp((Vm + 71.0)/9.0));
diff_fT = (fT_inf - fT)/(1.0 + 40.0/(1.0 + exp(0.08*(Vm + 65.0))));
fT; .method(rush_larsen);
r_inf = 1.0/(1.0 + exp((20.0 - Vm)/6.0));
diff_r = (r_inf - r)/(9.5*exp(-square(Vm + 40.0)/1800.0) + 0.8);
r; .method(rush_larsen);
s_inf = 1.0/(1.0 + exp((Vm + 20.0)/5.0));
diff_s = (s_inf - s)/(85.0*exp(-square(Vm + 45.0)/320.0)
         + 5.0/(1.0 + exp((Vm - 20.0)/5.0)) + 3.0);
s; .method(rush_larsen);
xr1_inf = 1.0/(1.0 + exp((-26.0 - Vm)/7.0));
diff_xr1 = (xr1_inf - xr1)/((450.0/(1.0 + exp((-45.0 - Vm)/10.0)))
           *(6.0/(1.0 + exp((Vm + 30.0)/11.5))));
xr1; .method(rush_larsen);
xr2_inf = 1.0/(1.0 + exp((Vm + 88.0)/24.0));
diff_xr2 = (xr2_inf - xr2)/((3.0/(1.0 + exp((-60.0 - Vm)/20.0)))
           *(1.12/(1.0 + exp((Vm - 60.0)/20.0))));
xr2; .method(rush_larsen);
xs_inf = 1.0/(1.0 + exp((-5.0 - Vm)/14.0));
diff_xs = (xs_inf - xs)/((1100.0/sqrt(1.0 + exp((-10.0 - Vm)/6.0)))
          *(1.0/(1.0 + exp((Vm - 60.0)/20.0))));
xs; .method(rush_larsen);
q_inf = (Cai < 0.00035) ? 1.0/(1.0 + pow(Cai/0.00035, 6.0))
        : 1.0/(1.0 + pow(Cai/0.00035, 16.0));
diff_q_rel = (q_inf - q_rel)/2.0;
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
E_Ks = RTF*log((Ko + 0.03*Nao)/(Ki + 0.03*Nai));
I_f = g_f*y_f*(0.35*(Vm - E_Na) + 0.65*(Vm - E_K));
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na)*0.2;
I_CaL = g_caL*dL*fL*fCa*(Vm - 60.0);
I_CaT = g_caT*dT*fT*(Vm - 38.0);
I_to = g_to*r*s*(Vm - E_K);
I_Kr = g_kr*sqrt(Ko/5.4)*xr1*xr2*(Vm - E_K);
I_Ks = g_ks*square(xs)*(Vm - E_Ks);
a_K1 = 0.1/(1.0 + exp(0.06*(Vm - E_K - 200.0)));
b_K1 = (3.0*exp(0.0002*(Vm - E_K + 100.0)) + exp(0.1*(Vm - E_K - 10.0)))
       /(1.0 + exp(-0.5*(Vm - E_K)));
I_K1 = g_k1*(a_K1/(a_K1 + b_K1))*(Vm - E_K);
I_NaK = 1.4*(Ko/(Ko + 1.0))*(Nai/(Nai + 40.0))
        /(1.0 + 0.1245*exp(-0.1*Vm/RTF) + 0.0353*exp(-Vm/RTF));
I_NaCa = 1000.0*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai*2.5)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*0.08;
I_pCa = 0.1*Cai/(Cai + 0.0005);
I_pK = 0.0146*(Vm - E_K)/(1.0 + exp((25.0 - Vm)/5.98));
I_bNa = 0.0003*(Vm - E_Na);
I_bCa = 0.0006*(Vm - E_Ca);
J_rel = (0.0165*square(Casr)/(square(0.25) + square(Casr)) + 0.0082)*dL*q_rel*0.1;
J_up = 0.000425/(1.0 + square(0.00025/Cai));
J_xfer = 0.003*(Cass - Cai);
J_leak = 0.00008*(Casr - Cai);
diff_Casr = 20.0*(J_up - J_rel - J_leak);
diff_Cass = -0.01*(I_CaL + I_CaT) + J_rel*10.0 - J_xfer*10.0;
diff_Cai = -0.00005*(I_bCa + I_pCa - 2.0*I_NaCa) + J_xfer + J_leak - J_up
           + 0.002*(0.00008 - Cai);
diff_Nai = -0.00001*(I_Na + I_f*0.35 + I_bNa + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_to + I_Kr + I_Ks + I_K1 + I_pK - 2.0*I_NaK);
Iion = I_f + I_Na + I_CaL + I_CaT + I_to + I_Kr + I_Ks + I_K1 + I_NaK
       + I_NaCa + I_pCa + I_pK + I_bNa + I_bCa;
|};
  }

let entries : entry list = [ mahajan; iyer; hund_rudy; stewart; aslanidi ]
