(** The 22 medium-class models (baseline runtime 1–5 min in the paper).

    The classics (Hodgkin–Huxley, Beeler–Reuter, Drouhard–Roberge,
    Luo–Rudy 1991, Noble 1962, Pathmanathan) follow their published
    equations, including the removable singularities in the rate functions
    (guarded with ternaries exactly where openCARP's model files guard
    them).  The remaining entries are structural reproductions of the
    published models (see DESIGN.md). *)

open Model_def

let hodgkin_huxley =
  {
    name = "HodgkinHuxley";
    cls = Medium;
    fidelity = Faithful;
    description =
      "Hodgkin & Huxley 1952 squid axon: m/h/n gates with the original \
       alpha/beta rates (singularities guarded), Rush-Larsen gates, Vm \
       lookup table.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0529;
h; h_init = 0.5961;
n; n_init = 0.3177;
Vm_init = -65.0;
group{ g_Na = 120.0; E_Na = 50.0; g_K = 36.0; E_K = -77.0;
       g_L = 0.3; E_L = -54.387; }.param();
a_m = (fabs(Vm + 40.0) < 1e-6) ? 1.0
      : 0.1*(Vm + 40.0)/(1.0 - exp(-(Vm + 40.0)/10.0));
b_m = 4.0*exp(-(Vm + 65.0)/18.0);
a_h = 0.07*exp(-(Vm + 65.0)/20.0);
b_h = 1.0/(1.0 + exp(-(Vm + 35.0)/10.0));
a_n = (fabs(Vm + 55.0) < 1e-6) ? 0.1
      : 0.01*(Vm + 55.0)/(1.0 - exp(-(Vm + 55.0)/10.0));
b_n = 0.125*exp(-(Vm + 65.0)/80.0);
diff_m = a_m*(1.0 - m) - b_m*m;
m; .method(rush_larsen);
diff_h = a_h*(1.0 - h) - b_h*h;
h; .method(rush_larsen);
diff_n = a_n*(1.0 - n) - b_n*n;
n; .method(rush_larsen);
I_Na = g_Na*cube(m)*h*(Vm - E_Na);
I_K = g_K*square(square(n))*(Vm - E_K);
I_L = g_L*(Vm - E_L);
Iion = I_Na + I_K + I_L;
|};
  }

let beeler_reuter =
  {
    name = "BeelerReuter";
    cls = Medium;
    fidelity = Faithful;
    description =
      "Beeler & Reuter 1977 ventricular model: 7 gates + intracellular \
       calcium, the classic C1*exp/C4-linear rate family, LUT on Vm.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.011;
h; h_init = 0.988;
j; j_init = 0.975;
d; d_init = 0.003;
f; f_init = 0.994;
x1; x1_init = 0.0001;
Cai; Cai_init = 1e-7;
Vm_init = -84.57;
group{ g_Na = 4.0; g_NaC = 0.003; E_Na = 50.0; g_s = 0.09; }.param();
a_m = (fabs(Vm + 47.0) < 1e-6) ? 10.0
      : -(Vm + 47.0)/(exp(-0.1*(Vm + 47.0)) - 1.0);
b_m = 40.0*exp(-0.056*(Vm + 72.0));
a_h = 0.126*exp(-0.25*(Vm + 77.0));
b_h = 1.7/(exp(-0.082*(Vm + 22.5)) + 1.0);
a_j = 0.055*exp(-0.25*(Vm + 78.0))/(exp(-0.2*(Vm + 78.0)) + 1.0);
b_j = 0.3/(exp(-0.1*(Vm + 32.0)) + 1.0);
a_d = 0.095*exp(-0.01*(Vm - 5.0))/(1.0 + exp(-0.072*(Vm - 5.0)));
b_d = 0.07*exp(-0.017*(Vm + 44.0))/(1.0 + exp(0.05*(Vm + 44.0)));
a_f = 0.012*exp(-0.008*(Vm + 28.0))/(1.0 + exp(0.15*(Vm + 28.0)));
b_f = 0.0065*exp(-0.02*(Vm + 30.0))/(1.0 + exp(-0.2*(Vm + 30.0)));
a_x1 = 0.0005*exp(0.083*(Vm + 50.0))/(1.0 + exp(0.057*(Vm + 50.0)));
b_x1 = 0.0013*exp(-0.06*(Vm + 20.0))/(1.0 + exp(-0.04*(Vm + 20.0)));
diff_m = a_m*(1.0 - m) - b_m*m;   m; .method(rush_larsen);
diff_h = a_h*(1.0 - h) - b_h*h;   h; .method(rush_larsen);
diff_j = a_j*(1.0 - j) - b_j*j;   j; .method(rush_larsen);
diff_d = a_d*(1.0 - d) - b_d*d;   d; .method(rush_larsen);
diff_f = a_f*(1.0 - f) - b_f*f;   f; .method(rush_larsen);
diff_x1 = a_x1*(1.0 - x1) - b_x1*x1; x1; .method(rush_larsen);
E_s = -82.3 - 13.0287*log(Cai);
I_s = g_s*d*f*(Vm - E_s);
I_K1 = 0.35*(4.0*(exp(0.04*(Vm + 85.0)) - 1.0)
       /(exp(0.08*(Vm + 53.0)) + exp(0.04*(Vm + 53.0)))
       + ((fabs(Vm + 23.0) < 1e-6) ? 5.0
          : 0.2*(Vm + 23.0)/(1.0 - exp(-0.04*(Vm + 23.0)))));
I_x1 = x1*0.8*(exp(0.04*(Vm + 77.0)) - 1.0)/exp(0.04*(Vm + 35.0));
I_Na = (g_Na*cube(m)*h*j + g_NaC)*(Vm - E_Na);
diff_Cai = -1e-7*I_s + 0.07*(1e-7 - Cai);
Iion = I_Na + I_s + I_K1 + I_x1;
|};
  }

let drouhard_roberge =
  {
    name = "DrouhardRoberge";
    cls = Medium;
    fidelity = Faithful;
    description =
      "Drouhard & Roberge 1987 reformulation of Beeler-Reuter: modified \
       fast sodium kinetics (no j gate), otherwise the BR current set.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.005;
h; h_init = 0.988;
d; d_init = 0.003;
f; f_init = 0.994;
x1; x1_init = 0.0001;
Cai; Cai_init = 1e-7;
Vm_init = -84.0;
group{ g_Na = 15.0; E_Na = 40.0; g_s = 0.09; }.param();
a_m = (fabs(Vm + 42.65) < 1e-6) ? 4.0909
      : 0.9*(Vm + 42.65)/(1.0 - exp(-0.22*(Vm + 42.65)));
b_m = 1.437*exp(-0.085*(Vm + 39.75));
a_h = 0.1*exp(-0.193*(Vm + 79.65));
b_h = 1.7/(1.0 + exp(-0.095*(Vm + 20.4)));
a_d = 0.095*exp(-0.01*(Vm - 5.0))/(1.0 + exp(-0.072*(Vm - 5.0)));
b_d = 0.07*exp(-0.017*(Vm + 44.0))/(1.0 + exp(0.05*(Vm + 44.0)));
a_f = 0.012*exp(-0.008*(Vm + 28.0))/(1.0 + exp(0.15*(Vm + 28.0)));
b_f = 0.0065*exp(-0.02*(Vm + 30.0))/(1.0 + exp(-0.2*(Vm + 30.0)));
a_x1 = 0.0005*exp(0.083*(Vm + 50.0))/(1.0 + exp(0.057*(Vm + 50.0)));
b_x1 = 0.0013*exp(-0.06*(Vm + 20.0))/(1.0 + exp(-0.04*(Vm + 20.0)));
diff_m = a_m*(1.0 - m) - b_m*m;   m; .method(rush_larsen);
diff_h = a_h*(1.0 - h) - b_h*h;   h; .method(rush_larsen);
diff_d = a_d*(1.0 - d) - b_d*d;   d; .method(rush_larsen);
diff_f = a_f*(1.0 - f) - b_f*f;   f; .method(rush_larsen);
diff_x1 = a_x1*(1.0 - x1) - b_x1*x1; x1; .method(rush_larsen);
E_s = -82.3 - 13.0287*log(Cai);
I_s = g_s*d*f*(Vm - E_s);
I_K1 = 0.35*(4.0*(exp(0.04*(Vm + 85.0)) - 1.0)
       /(exp(0.08*(Vm + 53.0)) + exp(0.04*(Vm + 53.0)))
       + ((fabs(Vm + 23.0) < 1e-6) ? 5.0
          : 0.2*(Vm + 23.0)/(1.0 - exp(-0.04*(Vm + 23.0)))));
I_x1 = x1*0.8*(exp(0.04*(Vm + 77.0)) - 1.0)/exp(0.04*(Vm + 35.0));
I_Na = g_Na*cube(m)*h*(Vm - E_Na);
diff_Cai = -1e-7*I_s + 0.07*(1e-7 - Cai);
Iion = I_Na + I_s + I_K1 + I_x1;
|};
  }

let luo_rudy_91 =
  {
    name = "LuoRudy91";
    cls = Medium;
    fidelity = Faithful;
    description =
      "Luo & Rudy 1991 guinea-pig ventricular model: the piecewise h/j \
       rates below/above -40 mV are expressed as ternaries (if-converted \
       to selects for SIMD), calcium handled with forward Euler.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0017;
h; h_init = 0.9832;
j; j_init = 0.995484;
d; d_init = 0.000003;
f; f_init = 1.0;
X; X_init = 0.0057;
Cai; Cai_init = 0.0002;
Vm_init = -84.38;
group{ g_Na = 23.0; E_Na = 54.4; g_si = 0.09; g_K = 0.282; E_K = -77.0;
       g_K1 = 0.6047; E_K1 = -87.25; g_Kp = 0.0183; g_b = 0.03921; }.param();
a_m = (fabs(Vm + 47.13) < 1e-6) ? 3.2
      : 0.32*(Vm + 47.13)/(1.0 - exp(-0.1*(Vm + 47.13)));
b_m = 0.08*exp(-Vm/11.0);
a_h = (Vm >= -40.0) ? 0.0 : 0.135*exp(-(80.0 + Vm)/6.8);
b_h = (Vm >= -40.0) ? 1.0/(0.13*(1.0 + exp(-(Vm + 10.66)/11.1)))
      : 3.56*exp(0.079*Vm) + 310000.0*exp(0.35*Vm);
a_j = (Vm >= -40.0) ? 0.0
      : (-127140.0*exp(0.2444*Vm) - 0.00003474*exp(-0.04391*Vm))
        *(Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)));
b_j = (Vm >= -40.0)
      ? 0.3*exp(-0.0000002535*Vm)/(1.0 + exp(-0.1*(Vm + 32.0)))
      : 0.1212*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14)));
a_d = 0.095*exp(-0.01*(Vm - 5.0))/(1.0 + exp(-0.072*(Vm - 5.0)));
b_d = 0.07*exp(-0.017*(Vm + 44.0))/(1.0 + exp(0.05*(Vm + 44.0)));
a_f = 0.012*exp(-0.008*(Vm + 28.0))/(1.0 + exp(0.15*(Vm + 28.0)));
b_f = 0.0065*exp(-0.02*(Vm + 30.0))/(1.0 + exp(-0.2*(Vm + 30.0)));
a_X = 0.0005*exp(0.083*(Vm + 50.0))/(1.0 + exp(0.057*(Vm + 50.0)));
b_X = 0.0013*exp(-0.06*(Vm + 20.0))/(1.0 + exp(-0.04*(Vm + 20.0)));
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
diff_h = a_h*(1.0 - h) - b_h*h;  h; .method(rush_larsen);
diff_j = a_j*(1.0 - j) - b_j*j;  j; .method(rush_larsen);
diff_d = a_d*(1.0 - d) - b_d*d;  d; .method(rush_larsen);
diff_f = a_f*(1.0 - f) - b_f*f;  f; .method(rush_larsen);
diff_X = a_X*(1.0 - X) - b_X*X;  X; .method(rush_larsen);
E_si = 7.7 - 13.0287*log(Cai);
I_si = g_si*d*f*(Vm - E_si);
Xi = (Vm > -100.0)
     ? 2.837*(exp(0.04*(Vm + 77.0)) - 1.0)
       /((Vm + 77.0 + ((fabs(Vm + 77.0) < 1e-6) ? 1e-6 : 0.0))*exp(0.04*(Vm + 35.0)))
     : 1.0;
I_K = g_K*X*Xi*(Vm - E_K);
a_K1 = 1.02/(1.0 + exp(0.2385*(Vm - E_K1 - 59.215)));
b_K1 = (0.49124*exp(0.08032*(Vm - E_K1 + 5.476))
        + exp(0.06175*(Vm - E_K1 - 594.31)))
       /(1.0 + exp(-0.5143*(Vm - E_K1 + 4.753)));
I_K1 = g_K1*(a_K1/(a_K1 + b_K1))*(Vm - E_K1);
Kp = 1.0/(1.0 + exp((7.488 - Vm)/5.98));
I_Kp = g_Kp*Kp*(Vm - E_K1);
I_b = g_b*(Vm + 59.87);
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
diff_Cai = -0.0001*I_si + 0.07*(0.0001 - Cai);
Iion = I_Na + I_si + I_K + I_K1 + I_Kp + I_b;
|};
  }

let noble_62 =
  {
    name = "Noble1962";
    cls = Medium;
    fidelity = Faithful;
    description =
      "Noble 1962 Purkinje model: the first cardiac AP model; m/h/n gates \
       with slow IK kinetics.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.01;
h; h_init = 0.8;
n; n_init = 0.01;
Vm_init = -87.0;
group{ g_Na = 400.0; E_Na = 40.0; g_L = 0.075; E_L = -60.0; }.param();
a_m = (fabs(Vm + 48.0) < 1e-6) ? 1.0
      : 0.1*(-Vm - 48.0)/(exp((-Vm - 48.0)/15.0) - 1.0);
b_m = (fabs(Vm + 8.0) < 1e-6) ? 0.6
      : 0.12*(Vm + 8.0)/(exp((Vm + 8.0)/5.0) - 1.0);
a_h = 0.17*exp((-Vm - 90.0)/20.0);
b_h = 1.0/(1.0 + exp((-Vm - 42.0)/10.0));
a_n = (fabs(Vm + 50.0) < 1e-6) ? 0.001
      : 0.0001*(-Vm - 50.0)/(exp((-Vm - 50.0)/10.0) - 1.0);
b_n = 0.002*exp((-Vm - 90.0)/80.0);
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
diff_h = a_h*(1.0 - h) - b_h*h;  h; .method(rush_larsen);
diff_n = a_n*(1.0 - n) - b_n*n;  n; .method(rush_larsen);
g_K1 = 1.2*exp((-Vm - 90.0)/50.0) + 0.015*exp((Vm + 90.0)/60.0);
g_K2 = 1.2*square(square(n));
I_Na = (g_Na*cube(m)*h + 0.14)*(Vm - E_Na);
I_K = (g_K1 + g_K2)*(Vm + 100.0);
I_L = g_L*(Vm - E_L);
Iion = I_Na + I_K + I_L;
|};
  }

let pathmanathan =
  {
    name = "Pathmanathan";
    cls = Medium;
    fidelity = Faithful;
    description =
      "The modified Pathmanathan-Gray verification model of the paper's \
       Listing 1: LUT on Vm, rk2 on u1, polynomial kinetics.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
group{ u1; u2; u3; }.nodal();
group{ Cm = 200.0; beta = 1.0; xi = 3.0; }.param();
u1_init = 0.0; u2_init = 0.05; u3_init = 0.0; Vm_init = 0.0;
diff_u3 = 0.0;
diff_u2 = -(u1+u3-Vm)*cube(u2);
diff_u1 = square(u1+u3-Vm)*square(u2)+0.5*(u1+u3-Vm);
u1; .method(rk2);
Iion = (-(Cm/2.0)*(u1+u3-Vm)*square(u2)*(Vm-u3)+beta);
|};
  }

(* ------------------------------------------------------------------ *)
(* Structural reproductions                                            *)
(* ------------------------------------------------------------------ *)

(* A builder for structurally-representative myocyte models.  Each entry
   below is written out explicitly (distinct currents, gates, constants);
   this comment just documents the shared conventions:
     - gates use alpha/beta or inf/tau forms with Rush-Larsen,
     - concentrations relax toward a set point plus current-driven terms,
     - every model declares Vm/Iion externals; most tabulate Vm. *)

let difrancesco_noble =
  {
    name = "DiFrancescoNoble";
    cls = Medium;
    fidelity = Structural;
    description =
      "DiFrancesco & Noble 1985 Purkinje structure: funny current y-gate, \
       INa(m,h), Isi(d,f,f2), IK(x), pump/exchanger terms and Na/Ca/K \
       pools (16 states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
y; y_init = 0.2;
m; m_init = 0.076;
h; h_init = 0.015;
d; d_init = 0.0001;
f; f_init = 0.785;
f2; f2_init = 0.75;
x; x_init = 0.01;
s_g; s_g_init = 0.3;
p_g; p_g_init = 0.8;
Nai; Nai_init = 8.0;
Ki; Ki_init = 140.0;
Cai; Cai_init = 0.00005;
Kc; Kc_init = 4.0;
Caup; Caup_init = 2.0;
Carel; Carel_init = 1.0;
q_rel; q_rel_init = 0.0;
Vm_init = -87.0;
group{ g_f = 3.0; g_Na = 750.0; g_si = 15.0; g_K = 3.5; RTF = 26.71;
       Nao = 140.0; Cao = 2.0; Ko = 4.0; tau_up = 25.0; tau_rel = 50.0;
       i_pmax = 125.0; k_naca = 0.02; }.param();
a_y = 0.025*exp(-0.067*(Vm + 52.0));
b_y = (fabs(Vm + 52.0) < 1e-6) ? 2.5 : 0.5*(Vm + 52.0)/(1.0 - exp(-0.2*(Vm + 52.0)));
diff_y = a_y*(1.0 - y) - b_y*y;  y; .method(rush_larsen);
a_m = (fabs(Vm + 41.0) < 1e-6) ? 2.0 : 0.2*(Vm + 41.0)/(1.0 - exp(-0.1*(Vm + 41.0)));
b_m = 8.0*exp(-0.056*(Vm + 66.0));
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
a_h = 0.02*exp(-0.125*(Vm + 75.0));
b_h = 2.0/(320.0*exp(-0.1*(Vm + 75.0)) + 1.0);
diff_h = a_h*(1.0 - h) - b_h*h;  h; .method(rush_larsen);
a_d = (fabs(Vm + 24.0) < 1e-6) ? 1.2 : 0.3*(Vm + 24.0)/(1.0 - exp(-(Vm + 24.0)/4.0));
b_d = (fabs(Vm + 24.0) < 1e-6) ? 1.2 : -0.3*(Vm + 24.0)/(1.0 - exp((Vm + 24.0)/4.0));
diff_d = a_d*(1.0 - d) - b_d*d;  d; .method(rush_larsen);
a_f = (fabs(Vm + 34.0) < 1e-6) ? 0.1 : -0.025*(Vm + 34.0)/(1.0 - exp((Vm + 34.0)/4.0));
b_f = 0.5/(1.0 + exp(-(Vm + 34.0)/4.0));
diff_f = a_f*(1.0 - f) - b_f*f;  f; .method(rush_larsen);
diff_f2 = 5.0*(1.0 - f2) - Cai*f2/0.001;
a_x = 0.5*exp(0.0826*(Vm + 50.0))/(1.0 + exp(0.057*(Vm + 50.0)));
b_x = 1.3*exp(-0.06*(Vm + 20.0))/(1.0 + exp(-0.04*(Vm + 20.0)));
diff_x = a_x*(1.0 - x) - b_x*x;  x; .method(rush_larsen);
diff_s_g = 0.001*(1.0/(1.0 + exp((Vm + 60.0)/5.0)) - s_g);
diff_p_g = 0.0005*(1.0/(1.0 + exp(-(Vm + 34.0)/8.0)) - p_g);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Kc/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_f = g_f*y*(Kc/(Kc + 45.0))*(Vm - (-20.0));
I_Na = g_Na*cube(m)*h*(Vm - E_Na);
I_si = g_si*d*f*f2*(Vm - 50.0)*0.01;
I_K = g_K*x*(Ki - Kc*exp(-Vm/RTF))*0.01;
I_K1 = 3.0*(Kc/(Kc + 10.0))*(Vm - E_K)/(1.0 + exp(2.0*(Vm - E_K + 10.0)/RTF));
I_p = i_pmax*(Kc/(Kc + 1.0))*(Nai/(Nai + 40.0))*0.01;
I_NaCa = k_naca*(exp(0.5*Vm/RTF)*cube(Nai)*Cao - exp(-0.5*Vm/RTF)*cube(Nao)*Cai)
         /(1.0 + 144.93*(Cai + 0.0036));
I_up = (Cai*tau_up - Caup*0.01)/tau_up;
diff_q_rel = ((Caup - Carel)/tau_rel - q_rel)*0.1;
diff_Caup = 0.01*(I_up - (Caup - Carel)/tau_rel);
diff_Carel = 0.01*((Caup - Carel)/tau_rel - Carel*square(Cai)/(square(Cai) + 0.001*0.001)*0.05);
diff_Cai = -0.0001*(I_si + I_NaCa*0.5) + 0.00005 - Cai*0.5 + 0.0001*Carel*square(Cai)/(square(Cai) + 0.000001);
diff_Nai = -0.00001*(I_Na + 3.0*I_p + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_K + I_K1 - 2.0*I_p);
diff_Kc = 0.00002*(I_K + I_K1 - 2.0*I_p) + (4.0 - Kc)*0.001;
Iion = I_f + I_Na + I_si + I_K + I_K1 + I_p + I_NaCa;
|};
  }

let earm_noble =
  {
    name = "EarmNoble";
    cls = Medium;
    fidelity = Structural;
    description =
      "Earm & Noble 1990 single-cell atrial structure: INa, ICa(d,f), \
       Ito(r,q), IK, calcium release pool (12 states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.076;
h; h_init = 0.3;
d; d_init = 0.0002;
f; f_init = 0.78;
r; r_init = 0.0;
q; q_init = 1.0;
x; x_init = 0.02;
Cai; Cai_init = 0.00005;
Caup; Caup_init = 0.5;
Carel; Carel_init = 0.3;
Nai; Nai_init = 6.5;
frel; frel_init = 0.1;
Vm_init = -80.0;
group{ g_Na = 250.0; g_Ca = 10.0; g_to = 10.0; g_K = 2.0; RTF = 26.71;
       Nao = 140.0; Ko = 4.0; Ki_fix = 140.0; Cao = 2.0; }.param();
a_m = (fabs(Vm + 41.0) < 1e-6) ? 2.0 : 0.2*(Vm + 41.0)/(1.0 - exp(-0.1*(Vm + 41.0)));
b_m = 8.0*exp(-0.056*(Vm + 66.0));
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
a_h = 0.02*exp(-0.125*(Vm + 75.0));
b_h = 2.0/(320.0*exp(-0.1*(Vm + 75.0)) + 1.0);
diff_h = a_h*(1.0 - h) - b_h*h;  h; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp(-(Vm + 19.0)/4.0));
tau_d = 0.5 + 2.0*exp(-square((Vm + 19.0)/20.0));
diff_d = (d_inf - d)/tau_d;  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 34.0)/4.0));
tau_f = 12.0 + 24.0*exp(-square((Vm + 34.0)/20.0));
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
r_inf = 1.0/(1.0 + exp(-(Vm + 15.0)/5.5));
diff_r = (r_inf - r)/2.0;  r; .method(rush_larsen);
q_inf = 1.0/(1.0 + exp((Vm + 48.0)/5.0));
tau_q = 30.0 + 50.0/(1.0 + exp((Vm + 40.0)/6.0));
diff_q = (q_inf - q)/tau_q;  q; .method(rush_larsen);
a_x = 0.5*exp(0.0826*(Vm + 50.0))/(1.0 + exp(0.057*(Vm + 50.0)));
b_x = 1.3*exp(-0.06*(Vm + 20.0))/(1.0 + exp(-0.04*(Vm + 20.0)));
diff_x = a_x*(1.0 - x) - b_x*x;  x; .method(rush_larsen);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki_fix);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_Na = g_Na*cube(m)*h*(Vm - E_Na);
I_Ca = g_Ca*d*f*(Vm - E_Ca);
I_to = g_to*r*q*(Vm - E_K);
I_K = g_K*x*(Vm - E_K);
I_K1 = 1.7*(Vm - E_K)/(1.0 + exp(0.07*(Vm - E_K + 15.0)));
I_NaK = 1.3*(Nai/(Nai + 11.0))*(Ko/(Ko + 1.5));
diff_frel = (square(Cai)/(square(Cai) + 0.0003*0.0003) - frel)/2.0;
diff_Caup = 0.001*(Cai*8.0 - (Caup - Carel)*0.1);
diff_Carel = 0.001*((Caup - Carel)*0.1 - frel*Carel*0.5);
diff_Cai = -0.00005*(I_Ca - 0.2*I_NaK) + 0.0005*frel*Carel*0.001 - Cai*0.01 + 0.0000005;
diff_Nai = -0.00002*(I_Na + 3.0*I_NaK);
Iion = I_Na + I_Ca + I_to + I_K + I_K1 + I_NaK;
|};
  }

let maleckar =
  {
    name = "Maleckar";
    cls = Medium;
    fidelity = Structural;
    description =
      "Maleckar 2009 human atrial structure: INa(m,h1,h2), Ito(r,s), \
       IKur(a_ur,i_ur), IKr(pa), IKs(n), ICaL(dL,fL1,fL2) and ionic pools \
       (19 states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0032;
h1; h1_init = 0.88;
h2; h2_init = 0.87;
r; r_init = 0.0011;
s; s_init = 0.95;
a_ur; a_ur_init = 0.0005;
i_ur; i_ur_init = 0.97;
pa; pa_init = 0.0001;
n; n_init = 0.005;
dL; dL_init = 0.00001;
fL1; fL1_init = 0.998;
fL2; fL2_init = 0.998;
Nai; Nai_init = 8.5;
Ki; Ki_init = 130.0;
Cai; Cai_init = 0.000065;
Cad; Cad_init = 0.00007;
Caup; Caup_init = 0.65;
Carel; Carel_init = 0.63;
O_c; O_c_init = 0.025;
Vm_init = -74.0;
group{ g_Na = 140.0; g_to = 8.25; g_kur = 2.25; g_kr = 0.5; g_ks = 1.0;
       g_caL = 6.75; RTF = 26.71; Nao = 130.0; Ko = 5.4; Cao = 1.8; }.param();
m_inf = 1.0/(1.0 + exp(-(Vm + 27.12)/8.21));
tau_m = 0.042*exp(-square((Vm + 25.57)/28.8)) + 0.024;
diff_m = (m_inf - m)/tau_m;  m; .method(rush_larsen);
h_inf = 1.0/(1.0 + exp((Vm + 63.6)/5.3));
tau_h1 = 0.03/(1.0 + exp((Vm + 35.1)/3.2)) + 0.0003;
tau_h2 = 0.12/(1.0 + exp((Vm + 35.1)/3.2)) + 0.003;
diff_h1 = (h_inf - h1)/tau_h1;  h1; .method(rush_larsen);
diff_h2 = (h_inf - h2)/tau_h2;  h2; .method(rush_larsen);
r_inf = 1.0/(1.0 + exp(-(Vm - 1.0)/11.0));
tau_r = 0.0035*exp(-square(Vm/30.0)) + 0.0015;
diff_r = (r_inf - r)/tau_r;  r; .method(rush_larsen);
s_inf = 1.0/(1.0 + exp((Vm + 40.5)/11.5));
tau_s = 0.4812*exp(-square((Vm + 52.45)/14.97)) + 0.01414;
diff_s = (s_inf - s)/tau_s;  s; .method(rush_larsen);
aur_inf = 1.0/(1.0 + exp(-(Vm + 6.0)/8.6));
tau_aur = 0.009/(1.0 + exp((Vm + 5.0)/12.0)) + 0.0005;
diff_a_ur = (aur_inf - a_ur)/tau_aur;  a_ur; .method(rush_larsen);
iur_inf = 1.0/(1.0 + exp((Vm + 7.5)/10.0));
tau_iur = 0.59/(1.0 + exp((Vm + 60.0)/10.0)) + 3.05;
diff_i_ur = (iur_inf - i_ur)/tau_iur;  i_ur; .method(rush_larsen);
pa_inf = 1.0/(1.0 + exp(-(Vm + 15.0)/6.0));
tau_pa = 0.03118 + 0.21718*exp(-square((Vm + 20.1376)/22.1996));
diff_pa = (pa_inf - pa)/tau_pa;  pa; .method(rush_larsen);
n_inf = 1.0/(1.0 + exp(-(Vm - 19.9)/12.7));
tau_n = 0.7 + 0.4*exp(-square((Vm - 20.0)/20.0));
diff_n = (n_inf - n)/tau_n;  n; .method(rush_larsen);
dL_inf = 1.0/(1.0 + exp(-(Vm + 9.0)/5.8));
tau_dL = 0.0027*exp(-square((Vm + 35.0)/30.0)) + 0.002;
diff_dL = (dL_inf - dL)/tau_dL;  dL; .method(rush_larsen);
fL_inf = 1.0/(1.0 + exp((Vm + 27.4)/7.1));
tau_fL1 = 0.161*exp(-square((Vm + 40.0)/14.4)) + 0.01;
tau_fL2 = 1.3323*exp(-square((Vm + 40.0)/14.2)) + 0.0626;
diff_fL1 = (fL_inf - fL1)/tau_fL1;  fL1; .method(rush_larsen);
diff_fL2 = (fL_inf - fL2)/tau_fL2;  fL2; .method(rush_larsen);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_Na = g_Na*cube(m)*(0.9*h1 + 0.1*h2)*(Vm - E_Na)*0.01;
I_to = g_to*r*s*(Vm - E_K);
I_Kur = g_kur*a_ur*i_ur*(Vm - E_K);
I_Kr = g_kr*pa*(Vm - E_K)/(1.0 + exp((Vm + 55.0)/24.0));
I_Ks = g_ks*n*(Vm - E_K);
I_K1 = 3.1*pow(Ko, 0.4457)*(Vm - E_K)/(1.0 + exp(1.5*(Vm - E_K + 3.6)/RTF));
I_CaL = g_caL*dL*(0.7*fL1 + 0.3*fL2)*(Vm - 60.0)*0.1;
I_NaK = 1.4*(Ko/(Ko + 1.0))*(pow(Nai, 1.5)/(pow(Nai, 1.5) + pow(11.0, 1.5)))
        *(Vm + 150.0)/(Vm + 200.0);
I_NaCa = 0.04*(cube(Nai)*Cao*exp(0.45*Vm/RTF) - cube(Nao)*Cai*exp(-0.55*Vm/RTF))
         /(1.0 + 0.0003*(Cai*cube(Nao) + Cao*cube(Nai)));
diff_O_c = 200000.0*Cai*(1.0 - O_c) - 476.0*O_c;
O_c; .method(rush_larsen);
diff_Cad = -0.01*(I_CaL)*0.001 + (Cai - Cad)/0.01*0.001;
diff_Cai = -0.00005*(I_CaL + I_NaCa*0.5) - 0.05*(Cai*6.0 - Caup*0.005)*0.001 - 0.001*diff_O_c*0.045 + 0.000001;
diff_Caup = 0.001*(Cai*6.0 - Caup*0.005) - 0.001*(Caup - Carel)*0.01;
diff_Carel = 0.001*(Caup - Carel)*0.01 - 0.0005*Carel*square(Cai)/(square(Cai) + 0.0000000009);
diff_Nai = -0.00002*(I_Na + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00002*(I_to + I_Kur + I_Kr + I_Ks + I_K1 - 2.0*I_NaK);
Iion = I_Na + I_to + I_Kur + I_Kr + I_Ks + I_K1 + I_CaL + I_NaK + I_NaCa;
|};
  }

let entries_part1 : entry list =
  [
    hodgkin_huxley;
    beeler_reuter;
    drouhard_roberge;
    luo_rudy_91;
    noble_62;
    pathmanathan;
    difrancesco_noble;
    earm_noble;
    maleckar;
  ]

let entries : entry list = entries_part1 @ Medium_models2.entries
