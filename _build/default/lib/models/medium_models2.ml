(** Medium-class models, continued (structural reproductions). *)

open Model_def

let nygren =
  {
    name = "Nygren";
    cls = Medium;
    fidelity = Structural;
    description =
      "Nygren 1998 human atrial structure: full current inventory with \
       sustained outward current and intracellular cleft spaces (20 \
       states); concentrations integrated with rk2.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0032;
h1; h1_init = 0.9;
h2; h2_init = 0.9;
dL; dL_init = 0.00001;
fL1; fL1_init = 0.9986;
fL2; fL2_init = 0.9986;
rt; rt_init = 0.001;
st; st_init = 0.949;
ssus; ssus_init = 0.995;
rsus; rsus_init = 0.0003;
n; n_init = 0.005;
pa; pa_init = 0.0001;
Nai; Nai_init = 8.55;
Ki; Ki_init = 129.4;
Cai; Cai_init = 0.0000672;
Cad; Cad_init = 0.000072;
Caup; Caup_init = 0.664;
Carel; Carel_init = 0.646;
O_TC; O_TC_init = 0.0127;
O_TMgC; O_TMgC_init = 0.19;
Vm_init = -74.25;
group{ PNa = 0.0016; g_caL = 0.135; g_t = 0.15; g_sus = 0.055; g_ks = 0.02;
       g_kr = 0.01; g_k1 = 0.06; RTF = 26.71; Nao = 130.0; Ko = 5.4;
       Cao = 1.8; }.param();
m_inf = 1.0/(1.0 + exp(-(Vm + 27.12)/8.21));
tau_m = 0.042*exp(-square((Vm + 25.57)/28.8)) + 0.024;
diff_m = (m_inf - m)/tau_m;  m; .method(rush_larsen);
h_inf = 1.0/(1.0 + exp((Vm + 63.6)/5.3));
diff_h1 = (h_inf - h1)/(0.03/(1.0 + exp((Vm + 35.1)/3.2)) + 0.0003);
h1; .method(rush_larsen);
diff_h2 = (h_inf - h2)/(0.12/(1.0 + exp((Vm + 35.1)/3.2)) + 0.003);
h2; .method(rush_larsen);
dL_inf = 1.0/(1.0 + exp(-(Vm + 9.0)/5.8));
diff_dL = (dL_inf - dL)/(0.0027*exp(-square((Vm + 35.0)/30.0)) + 0.002);
dL; .method(rush_larsen);
fL_inf = 1.0/(1.0 + exp((Vm + 27.4)/7.1));
diff_fL1 = (fL_inf - fL1)/(0.161*exp(-square((Vm + 40.0)/14.4)) + 0.01);
fL1; .method(rush_larsen);
diff_fL2 = (fL_inf - fL2)/(1.3323*exp(-square((Vm + 40.0)/14.2)) + 0.0626);
fL2; .method(rush_larsen);
rt_inf = 1.0/(1.0 + exp(-(Vm - 1.0)/11.0));
diff_rt = (rt_inf - rt)/(0.0035*exp(-square(Vm/30.0)) + 0.0015);
rt; .method(rush_larsen);
st_inf = 1.0/(1.0 + exp((Vm + 40.5)/11.5));
diff_st = (st_inf - st)/(0.4812*exp(-square((Vm + 52.45)/14.97)) + 0.01414);
st; .method(rush_larsen);
rsus_inf = 1.0/(1.0 + exp(-(Vm + 4.3)/8.0));
diff_rsus = (rsus_inf - rsus)/(0.009/(1.0 + exp((Vm + 5.0)/12.0)) + 0.0005);
rsus; .method(rush_larsen);
ssus_inf = 0.4/(1.0 + exp((Vm + 20.0)/10.0)) + 0.6;
diff_ssus = (ssus_inf - ssus)/(0.047/(1.0 + exp((Vm + 60.0)/10.0)) + 0.3);
ssus; .method(rush_larsen);
n_inf = 1.0/(1.0 + exp(-(Vm - 19.9)/12.7));
diff_n = (n_inf - n)/(0.7 + 0.4*exp(-square((Vm - 20.0)/20.0)));
n; .method(rush_larsen);
pa_inf = 1.0/(1.0 + exp(-(Vm + 15.0)/6.0));
diff_pa = (pa_inf - pa)/(0.03118 + 0.21718*exp(-square((Vm + 20.1376)/22.1996)));
pa; .method(rush_larsen);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
fVm = Vm/RTF;
I_Na = PNa*cube(m)*(0.9*h1 + 0.1*h2)*Nao*37.45*(Vm - E_Na)*0.01;
I_CaL = g_caL*dL*(0.7*fL1 + 0.3*fL2)*(Vm - 60.0);
I_t = g_t*rt*st*(Vm - E_K);
I_sus = g_sus*rsus*ssus*(Vm - E_K);
I_Ks = g_ks*n*(Vm - E_K);
I_Kr = g_kr*pa*(Vm - E_K)/(1.0 + exp((Vm + 55.0)/24.0));
I_K1 = g_k1*pow(Ko, 0.4457)*(Vm - E_K)/(1.0 + exp(1.5*(Vm - E_K + 3.6)/RTF));
I_NaK = 0.7*(Ko/(Ko + 1.0))*(pow(Nai,1.5)/(pow(Nai,1.5) + 36.48))
        *(Vm + 150.0)/(Vm + 200.0);
I_NaCa = 0.03*(cube(Nai)*Cao*exp(0.45*fVm) - cube(Nao)*Cai*exp(-0.55*fVm))
         /(1.0 + 0.0003*(Cai*cube(Nao) + Cao*cube(Nai)));
I_CaP = 0.08*Cai/(Cai + 0.0002);
diff_O_TC = 78400.0*Cai*(1.0 - O_TC) - 392.0*O_TC;
O_TC; .method(rush_larsen);
diff_O_TMgC = 200000.0*Cai*(1.0 - O_TMgC) - 6.6*O_TMgC;
O_TMgC; .method(rush_larsen);
J_up = 0.9*(Cai/0.0003 - square(Caup)*0.00001)/(Cai/0.0003 + 1.0)*0.001;
J_rel = 0.4*square(Cai/(Cai + 0.0003))*(Carel - Cai)*0.001;
diff_Caup = 0.01*(J_up - (Caup - Carel)*0.001);
diff_Carel = 0.01*((Caup - Carel)*0.001 - J_rel);
diff_Cad = -0.003*I_CaL*0.001 + (Cai - Cad)*0.1;
diff_Cai = -0.00003*(I_CaL + I_CaP - 2.0*I_NaCa) - J_up + J_rel
           - 0.0000455*diff_O_TC - 0.000071*diff_O_TMgC + 0.0000001;
Cai; .method(rk2);
diff_Nai = -0.00001*(I_Na + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_t + I_sus + I_K1 + I_Ks + I_Kr - 2.0*I_NaK);
Iion = I_Na + I_CaL + I_t + I_sus + I_Ks + I_Kr + I_K1 + I_NaK + I_NaCa + I_CaP;
|};
  }

let lindblad =
  {
    name = "LindbladAtrial";
    cls = Medium;
    fidelity = Structural;
    description =
      "Lindblad 1996 rabbit atrial structure: dual inactivation INa, \
       T/L-type calcium, delayed rectifiers (15 states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.002;
h1; h1_init = 0.9;
h2; h2_init = 0.9;
dL; dL_init = 0.00005;
fL; fL_init = 0.995;
dT; dT_init = 0.001;
fT; fT_init = 0.96;
r; r_init = 0.001;
s1; s1_init = 0.95;
s2; s2_init = 0.95;
z; z_init = 0.014;
pa; pa_init = 0.0001;
Nai; Nai_init = 8.4;
Ki; Ki_init = 140.0;
Cai; Cai_init = 0.00007;
Vm_init = -78.0;
group{ g_Na = 1.8; g_caL = 0.3; g_caT = 0.12; g_to = 0.2; g_kr = 0.07;
       g_ks = 0.035; g_k1 = 0.12; RTF = 26.71; Nao = 140.0; Ko = 5.0;
       Cao = 2.5; }.param();
a_m = (fabs(Vm + 44.4) < 1e-6) ? 2.04 : -460.0*(Vm + 44.4)/(exp(-(Vm + 44.4)/12.673) - 1.0)*0.001;
b_m = 18.4*exp(-(Vm + 44.4)/12.673)*0.001;
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
h_inf = 1.0/(1.0 + exp((Vm + 66.0)/6.4));
diff_h1 = (h_inf - h1)/(0.03/(1.0 + exp((Vm + 40.0)/6.0)) + 0.0002);
h1; .method(rush_larsen);
diff_h2 = (h_inf - h2)/(0.25/(1.0 + exp((Vm + 40.0)/6.0)) + 0.002);
h2; .method(rush_larsen);
dL_inf = 1.0/(1.0 + exp(-(Vm + 6.6)/6.6));
diff_dL = (dL_inf - dL)/(0.0027*exp(-square((Vm + 35.0)/30.0)) + 0.002);
dL; .method(rush_larsen);
fL_inf = 1.0/(1.0 + exp((Vm + 25.0)/6.0));
diff_fL = (fL_inf - fL)/(0.161*exp(-square((Vm + 40.0)/14.4)) + 0.01);
fL; .method(rush_larsen);
dT_inf = 1.0/(1.0 + exp(-(Vm + 23.0)/6.1));
diff_dT = (dT_inf - dT)/(0.0006 + 0.0054/(1.0 + exp(0.03*(Vm + 100.0))));
dT; .method(rush_larsen);
fT_inf = 1.0/(1.0 + exp((Vm + 75.0)/6.6));
diff_fT = (fT_inf - fT)/(0.001 + 0.04/(1.0 + exp(0.08*(Vm + 65.0))));
fT; .method(rush_larsen);
r_inf = 1.0/(1.0 + exp(-(Vm - 1.0)/11.0));
diff_r = (r_inf - r)/(0.0035*exp(-square(Vm/30.0)) + 0.0015);
r; .method(rush_larsen);
s_inf = 1.0/(1.0 + exp((Vm + 40.5)/11.5));
diff_s1 = (s_inf - s1)/(0.5415*exp(-square((Vm + 52.45)/15.0)) + 0.0154);
s1; .method(rush_larsen);
diff_s2 = (s_inf - s2)/(3.0*exp(-square((Vm + 52.45)/15.0)) + 0.3);
s2; .method(rush_larsen);
z_inf = 1.0/(1.0 + exp(-(Vm - 19.9)/12.7));
diff_z = (z_inf - z)/(0.7 + 0.4*exp(-square((Vm - 20.0)/20.0)));
z; .method(rush_larsen);
pa_inf = 1.0/(1.0 + exp(-(Vm + 15.0)/6.0));
diff_pa = (pa_inf - pa)/(0.03118 + 0.21718*exp(-square((Vm + 20.1376)/22.1996)));
pa; .method(rush_larsen);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_Na = g_Na*cube(m)*(0.635*h1 + 0.365*h2)*(Vm - E_Na);
I_CaL = g_caL*dL*fL*(Vm - 50.0);
I_CaT = g_caT*dT*fT*(Vm - 38.0);
I_to = g_to*r*(0.59*s1 + 0.41*s2)*(Vm - E_K);
I_Kr = g_kr*pa*(Vm - E_K)/(1.0 + exp((Vm + 55.0)/24.0));
I_Ks = g_ks*z*(Vm - E_K);
I_K1 = g_k1*(Ko/(Ko + 0.59))*(Vm - E_K)/(1.0 + exp(1.393*(Vm - E_K + 3.6)/RTF));
I_NaK = 0.06441*(Ko/(Ko + 1.0))*(pow(Nai,1.5)/(pow(Nai,1.5) + 36.48))
        *(Vm + 150.0)/(Vm + 200.0)*10.0;
I_NaCa = 0.02*(cube(Nai)*Cao*exp(0.45*Vm/RTF) - cube(Nao)*Cai*exp(-0.55*Vm/RTF))
         /(1.0 + 0.0003*(Cai*cube(Nao) + Cao*cube(Nai)));
diff_Cai = -0.00004*(I_CaL + I_CaT - 2.0*I_NaCa) + 0.07*(0.00007 - Cai);
diff_Nai = -0.00001*(I_Na + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_to + I_Kr + I_Ks + I_K1 - 2.0*I_NaK);
Iion = I_Na + I_CaL + I_CaT + I_to + I_Kr + I_Ks + I_K1 + I_NaK + I_NaCa;
|};
  }

let stress_niederer =
  {
    name = "Stress_Niederer";
    cls = Medium;
    fidelity = Structural;
    description =
      "Niederer 2006 active-contraction structure: troponin binding, \
       tropomyosin kinetics, crossbridge states with length dependence; \
       heavy on state memory relative to arithmetic — the model the paper \
       uses to showcase the data-layout optimization (4.98x -> 6.03x).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
Tension; .external(); .nodal();
Ca_TRPN; Ca_TRPN_init = 0.067;
z_tm; z_tm_init = 0.014;
Q1; Q1_init = 0.0;
Q2; Q2_init = 0.0;
Q3; Q3_init = 0.0;
lambda_f; lambda_f_init = 1.0;
Cai_loc; Cai_loc_init = 0.0001;
Vm_init = -80.0;
group{ k_on = 100.0; k_off = 0.2; n_tm = 3.0; Ca_50 = 0.0005;
       k_tm_on = 0.1; k_tm_off = 0.1; T_ref = 56.2;
       A1 = -29.0; A2 = 138.0; A3 = 129.0;
       alpha1 = 0.03; alpha2 = 0.13; alpha3 = 0.625;
       beta0 = 4.9; beta1 = -4.0; G_leak = 0.02; E_leak = -80.0; }.param();
act = 1.0/(1.0 + exp(-0.15*(Vm + 30.0)));
diff_Cai_loc = 0.02*act - 0.05*Cai_loc + 0.000002;
diff_Ca_TRPN = k_on*Cai_loc*(1.0 - Ca_TRPN) - k_off*Ca_TRPN;
Ca_TRPN; .method(rush_larsen);
ratio = pow(max(Ca_TRPN, 1e-6)/0.1, n_tm);
diff_z_tm = k_tm_on*ratio*(1.0 - z_tm) - k_tm_off*z_tm;
z_tm; .method(rush_larsen);
diff_lambda_f = 0.002*(1.0 - lambda_f) - 0.001*z_tm;
dlam = diff_lambda_f;
diff_Q1 = A1*dlam - alpha1*Q1;
diff_Q2 = A2*dlam - alpha2*Q2;
diff_Q3 = A3*dlam - alpha3*Q3;
Q_sum = Q1 + Q2 + Q3;
overlap = 1.0 + beta0*(lambda_f - 1.0);
T_0 = T_ref*z_tm*overlap;
Tension = (Q_sum < 0.0) ? T_0*(Q_sum*2.0 + 1.0)/(1.0 - Q_sum)
          : T_0*(1.0 + (2.0 + beta1)*Q_sum)/(1.0 + Q_sum);
Iion = G_leak*(Vm - E_leak);
|};
  }

let tong =
  {
    name = "Tong";
    cls = Medium;
    fidelity = Structural;
    description =
      "Tong 2011 uterine smooth-muscle structure: L/T calcium, multiple \
       potassium currents, calcium-activated chloride, sundnes-integrated \
       slow gates (14 states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.13;
h; h_init = 0.4;
dc; dc_init = 0.01;
f1; f1_init = 0.9;
f2; f2_init = 0.9;
b_g; b_g_init = 0.07;
g_g; g_g_init = 0.03;
q_g; q_g_init = 0.25;
r1; r1_init = 0.1;
r2; r2_init = 0.1;
p_g; p_g_init = 0.05;
k1_g; k1_g_init = 0.8;
Cai; Cai_init = 0.00012;
cl_g; cl_g_init = 0.0005;
Vm_init = -53.0;
group{ g_Na = 0.12; g_caL = 0.6; g_caT = 0.058; g_k1 = 0.52; g_k2 = 0.08;
       g_ka = 0.16; g_kca = 0.8; g_cl = 0.19; E_K = -83.0; E_Ca = 45.0;
       E_Cl = -27.0; E_Na = 60.0; }.param();
m_inf = 1.0/(1.0 + exp(-(Vm + 35.0)/9.0));
tau_m = 0.25 + 7.0/(1.0 + exp((Vm + 38.0)/10.0));
diff_m = (m_inf - m)/tau_m;  m; .method(rush_larsen);
h_inf = 1.0/(1.0 + exp((Vm + 57.0)/8.0));
tau_h = 0.9 + 1002.85/(1.0 + square((Vm + 47.5)/1.5));
diff_h = (h_inf - h)/tau_h;  h; .method(rush_larsen);
dc_inf = 1.0/(1.0 + exp(-(Vm + 22.0)/7.0));
tau_dc = 2.29 + 5.7/(1.0 + square((Vm + 29.97)/9.0));
diff_dc = (dc_inf - dc)/tau_dc;  dc; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 38.0)/7.0));
diff_f1 = (f_inf - f1)/12.0;  f1; .method(sundnes);
diff_f2 = (f_inf - f2)/90.97;  f2; .method(sundnes);
b_inf = 1.0/(1.0 + exp(-(Vm + 54.23)/9.88));
tau_b = 0.45 + 3.9/(1.0 + square((Vm + 66.0)/26.0));
diff_b_g = (b_inf - b_g)/tau_b;  b_g; .method(rush_larsen);
g_inf = 0.02 + 0.98/(1.0 + exp((Vm + 72.98)/4.64));
tau_g = 150.0 - 150.0/((1.0 + exp((Vm - 417.43)/203.18))*(1.0 + exp(-(Vm + 61.11)/8.07)));
diff_g_g = (g_inf - g_g)/tau_g;  g_g; .method(rush_larsen);
q_inf = 0.978/(1.0 + exp(-(Vm + 18.6789)/26.6));
diff_q_g = (q_inf - q_g)/(500.0 - 469.0/(1.0 + square((Vm + 64.0)/1000.0)));
q_g; .method(rush_larsen);
r_inf = 1.0/(1.0 + exp(-(Vm + 4.2)/21.1));
diff_r1 = (r_inf - r1)/(40.0 + 0.017*square(Vm));
r1; .method(rush_larsen);
diff_r2 = (r_inf - r2)/(14706.0 - 14000.0/(1.0 + square((Vm + 100.0)/1000.0)));
r2; .method(rush_larsen);
p_inf = 1.0/(1.0 + exp(-(Vm + 17.91)/18.4));
diff_p_g = (p_inf - p_g)/(100.0/(1.0 + square((Vm + 64.1)/28.67)) + 5.0);
p_g; .method(rush_larsen);
k1_inf = 1.0/(1.0 + exp((Vm + 21.2)/5.7));
diff_k1_g = (k1_inf - k1_g)/(1.0 + 1000.0/(1.0 + square((Vm + 55.0)/20.0)));
k1_g; .method(rush_larsen);
I_Na = g_Na*cube(m)*h*(Vm - E_Na);
I_CaL = g_caL*dc*(0.8*f1 + 0.2*f2)*(Vm - E_Ca);
I_CaT = g_caT*square(b_g)*g_g*(Vm - E_Ca);
I_K1 = g_k1*square(q_g)*square(r1)*(Vm - E_K)*r2;
I_K2 = g_k2*square(p_g)*k1_g*(Vm - E_K);
I_Ka = g_ka*q_g*r1*(Vm - E_K);
ca_frac = square(Cai)/(square(Cai) + 0.0001*0.0001);
I_KCa = g_kca*ca_frac*(Vm - E_K);
diff_cl_g = ca_frac*0.01*(1.0 - cl_g) - 0.02*cl_g;
I_Cl = g_cl*cl_g*(Vm - E_Cl);
diff_Cai = -0.00002*(I_CaL + I_CaT) + 0.01*(0.00012 - Cai);
Iion = I_Na + I_CaL + I_CaT + I_K1 + I_K2 + I_Ka + I_KCa + I_Cl;
|};
  }

let demir =
  {
    name = "Demir";
    cls = Medium;
    fidelity = Structural;
    description =
      "Demir 1994 rabbit sinoatrial-node structure: funny current, L/T \
       calcium, delayed rectifier, pools (13 states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
y; y_init = 0.06;
m; m_init = 0.25;
h; h_init = 0.08;
dL; dL_init = 0.002;
fL; fL_init = 0.98;
dT; dT_init = 0.01;
fT; fT_init = 0.28;
pa_k; pa_k_init = 0.04;
pi_k; pi_k_init = 0.85;
Nai; Nai_init = 9.7;
Ki; Ki_init = 140.0;
Cai; Cai_init = 0.00008;
Caup; Caup_init = 0.6;
Vm_init = -62.0;
group{ g_f = 0.05; g_Na = 0.25; g_caL = 0.4; g_caT = 0.085; g_k = 0.07;
       RTF = 26.71; Nao = 140.0; Ko = 5.4; Cao = 2.0; }.param();
y_inf = 1.0/(1.0 + exp((Vm + 64.0)/13.5));
rate_y1 = (fabs(Vm + 137.8) < 1e-6) ? 5.4545
          : 0.36*(Vm + 137.8)/(exp(0.066*(Vm + 137.8)) - 1.0);
rate_y2 = (fabs(Vm + 76.3) < 1e-6) ? 0.47619
          : 0.1*(Vm + 76.3)/(1.0 - exp(-0.21*(Vm + 76.3)));
tau_y = 1.0/(rate_y1 + rate_y2);
diff_y = (y_inf - y)/max(tau_y, 0.001);  y; .method(rush_larsen);
a_m = (fabs(Vm + 44.4) < 1e-6) ? 5.83 : 0.46*(Vm + 44.4)/(1.0 - exp(-(Vm + 44.4)/12.673));
b_m = 18.4*exp(-(Vm + 44.4)/12.673)*0.05;
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
h_inf = 1.0/(1.0 + exp((Vm + 62.0)/5.5));
diff_h = (h_inf - h)/(0.2 + 3.0/(1.0 + exp((Vm + 40.0)/9.0)));
h; .method(rush_larsen);
dL_inf = 1.0/(1.0 + exp(-(Vm + 14.1)/6.0));
diff_dL = (dL_inf - dL)/(0.002 + 0.0027*exp(-square((Vm + 35.0)/30.0)));
dL; .method(rush_larsen);
fL_inf = 1.0/(1.0 + exp((Vm + 30.0)/5.0));
diff_fL = (fL_inf - fL)/(0.03 + 0.25/(1.0 + exp((Vm + 40.0)/6.0)));
fL; .method(rush_larsen);
dT_inf = 1.0/(1.0 + exp(-(Vm + 37.0)/6.8));
diff_dT = (dT_inf - dT)/(0.0006 + 0.0054/(1.0 + exp(0.03*(Vm + 100.0))));
dT; .method(rush_larsen);
fT_inf = 1.0/(1.0 + exp((Vm + 71.0)/9.0));
diff_fT = (fT_inf - fT)/(0.001 + 0.04/(1.0 + exp(0.08*(Vm + 65.0))));
fT; .method(rush_larsen);
pa_inf = 1.0/(1.0 + exp(-(Vm + 23.2)/10.6));
diff_pa_k = (pa_inf - pa_k)/(0.0017*exp(-square(Vm/30.0)) + 0.0174);
pa_k; .method(rush_larsen);
pi_inf = 1.0/(1.0 + exp((Vm + 28.6)/17.1));
diff_pi_k = (pi_inf - pi_k)/(0.25 + 1.5*exp(-square((Vm + 20.0)/30.0)));
pi_k; .method(rush_larsen);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_f = g_f*y*(Vm + 25.0);
I_Na = g_Na*cube(m)*h*(Vm - E_Na);
I_CaL = g_caL*dL*fL*(Vm - 46.4);
I_CaT = g_caT*dT*fT*(Vm - 45.0);
I_K = g_k*pa_k*pi_k*(Vm - E_K);
I_K1 = 0.01*(Vm - E_K)/(1.0 + exp(0.07*(Vm - E_K + 12.0)));
I_NaK = 0.06*(Ko/(Ko + 1.0))*(pow(Nai,1.5)/(pow(Nai,1.5) + 20.0));
I_NaCa = 0.005*(cube(Nai)*Cao*exp(0.38*Vm/RTF) - cube(Nao)*Cai*exp(-0.62*Vm/RTF))
         /(1.0 + 0.0001*(Cai*cube(Nao) + Cao*cube(Nai)));
diff_Caup = 0.001*(Cai*10.0 - Caup*0.02);
diff_Cai = -0.0001*(I_CaL + I_CaT - 2.0*I_NaCa) - 0.001*(Cai*10.0 - Caup*0.02) + 0.07*(0.00008 - Cai);
diff_Nai = -0.0001*(I_Na + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.0001*(I_K + I_K1 - 2.0*I_NaK);
Iion = I_f + I_Na + I_CaL + I_CaT + I_K + I_K1 + I_NaK + I_NaCa;
|};
  }

let entries : entry list =
  [ nygren; lindblad; stress_niederer; tong; demir ] @ Medium_models3.entries
