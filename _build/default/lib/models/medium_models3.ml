(** Medium-class models, final batch (structural reproductions). *)

open Model_def

let zhang_san =
  {
    name = "ZhangSAN";
    cls = Medium;
    fidelity = Structural;
    description =
      "Zhang 2000 central sinoatrial-node structure: funny current split \
       into Na/K components, sustained inward current, no INa (12 states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
y_f; y_f_init = 0.09;
dL; dL_init = 0.004;
fL; fL_init = 0.99;
dT; dT_init = 0.02;
fT; fT_init = 0.18;
q_g; q_g_init = 0.3;
r_g; r_g_init = 0.06;
paf; paf_init = 0.1;
pas; pas_init = 0.07;
pik; pik_init = 0.9;
xs_g; xs_g_init = 0.03;
Cai; Cai_init = 0.0001;
Vm_init = -55.0;
group{ g_f = 0.021; g_caL = 0.058; g_caT = 0.0043; g_to = 0.0049;
       g_sus = 0.00002; g_kr = 0.0008; g_ks = 0.00035; E_K = -85.0;
       E_Na = 70.0; E_Ca = 45.0; E_Ks = -72.0; }.param();
y_inf = 1.0/(1.0 + exp((Vm + 64.0)/13.5));
tau_y = 0.7/(exp(-(Vm + 386.9)/45.3) + exp((Vm - 73.08)/19.2)) + 0.2;
diff_y_f = (y_inf - y_f)/tau_y;  y_f; .method(rush_larsen);
dL_inf = 1.0/(1.0 + exp(-(Vm + 23.1)/6.0));
tau_dL = 0.002 + 0.0027*exp(-square((Vm + 35.0)/30.0));
diff_dL = (dL_inf - dL)/tau_dL;  dL; .method(rush_larsen);
fL_inf = 1.0/(1.0 + exp((Vm + 45.0)/5.0));
tau_fL = 0.03 + 0.25/(1.0 + exp((Vm + 40.0)/6.0));
diff_fL = (fL_inf - fL)/tau_fL;  fL; .method(rush_larsen);
dT_inf = 1.0/(1.0 + exp(-(Vm + 37.0)/6.8));
diff_dT = (dT_inf - dT)/(0.0006 + 0.0054/(1.0 + exp(0.03*(Vm + 100.0))));
dT; .method(rush_larsen);
fT_inf = 1.0/(1.0 + exp((Vm + 71.0)/9.0));
diff_fT = (fT_inf - fT)/(0.001 + 0.04/(1.0 + exp(0.08*(Vm + 65.0))));
fT; .method(rush_larsen);
q_inf = 1.0/(1.0 + exp((Vm + 59.37)/13.1));
diff_q_g = (q_inf - q_g)/(0.0101 + 0.065*exp(-square((Vm + 40.0)/30.0)));
q_g; .method(rush_larsen);
r_inf = 1.0/(1.0 + exp(-(Vm - 10.93)/19.7));
diff_r_g = (r_inf - r_g)/(0.0025 + 0.015*exp(-square((Vm + 40.0)/30.0)));
r_g; .method(rush_larsen);
pa_inf = 1.0/(1.0 + exp(-(Vm + 14.2)/10.6));
diff_paf = (pa_inf - paf)/(0.0017*exp(-square(Vm/30.0)) + 0.0174);
paf; .method(rush_larsen);
diff_pas = (pa_inf - pas)/(0.4 + 0.7*exp(-square(Vm/30.0)));
pas; .method(rush_larsen);
pik_inf = 1.0/(1.0 + exp((Vm + 18.6)/10.1));
diff_pik = (pik_inf - pik)/0.002;  pik; .method(rush_larsen);
xs_inf = 1.0/(1.0 + exp(-(Vm - 19.9)/12.7));
diff_xs_g = (xs_inf - xs_g)/(0.7 + 0.4*exp(-square((Vm - 20.0)/20.0)));
xs_g; .method(rush_larsen);
I_f = g_f*y_f*((Vm - E_Na)*0.3769 + (Vm - E_K)*0.6231);
I_CaL = g_caL*dL*fL*(Vm - E_Ca);
I_CaT = g_caT*dT*fT*(Vm - E_Ca);
I_to = g_to*q_g*r_g*(Vm - E_K);
I_sus = g_sus*r_g*(Vm - E_K);
I_Kr = g_kr*(0.6*paf + 0.4*pas)*pik*(Vm - E_K);
I_Ks = g_ks*square(xs_g)*(Vm - E_Ks);
I_bNa = 0.0000582*(Vm - E_Na);
I_NaK = 0.0000636*(Vm + 150.0)/(Vm + 200.0)*10.0;
diff_Cai = -0.02*(I_CaL + I_CaT) + 0.05*(0.0001 - Cai);
Iion = (I_f + I_CaL + I_CaT + I_to + I_sus + I_Kr + I_Ks + I_bNa + I_NaK)*400.0;
|};
  }

let kurata_san =
  {
    name = "KurataSAN";
    cls = Medium;
    fidelity = Structural;
    description =
      "Kurata 2002 sinoatrial-node structure with subspace calcium and SR \
       cycling (16 states); rk4 on the subspace pool.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
y_f; y_f_init = 0.06;
dL; dL_init = 0.002;
fL; fL_init = 0.98;
fCa; fCa_init = 0.75;
dT; dT_init = 0.01;
fT; fT_init = 0.3;
paf; paf_init = 0.07;
pas; pas_init = 0.05;
pik; pik_init = 0.9;
n_ks; n_ks_init = 0.025;
q_g; q_g_init = 0.5;
r_g; r_g_init = 0.01;
Cai; Cai_init = 0.0001;
Casub; Casub_init = 0.00008;
Caup; Caup_init = 1.1;
Carel; Carel_init = 0.3;
Vm_init = -58.0;
group{ g_f = 0.03; g_caL = 0.2; g_caT = 0.02; g_kr = 0.004; g_ks = 0.002;
       g_to = 0.005; E_K = -85.0; E_Na = 70.0; E_CaL = 45.0; Km_fCa = 0.00035;
       tau_fCa = 0.06; }.param();
y_inf = 1.0/(1.0 + exp((Vm + 68.0)/10.0));
tau_y = 0.25 + 2.0*exp(-square((Vm + 70.0)/30.0));
diff_y_f = (y_inf - y_f)/tau_y;  y_f; .method(rush_larsen);
dL_inf = 1.0/(1.0 + exp(-(Vm + 14.1)/6.0));
tau_dL = 0.002 + 0.0027*exp(-square((Vm + 35.0)/30.0));
diff_dL = (dL_inf - dL)/tau_dL;  dL; .method(rush_larsen);
fL_inf = 1.0/(1.0 + exp((Vm + 30.0)/5.0));
tau_fL = 0.03 + 0.25/(1.0 + exp((Vm + 40.0)/6.0));
diff_fL = (fL_inf - fL)/tau_fL;  fL; .method(rush_larsen);
fCa_inf = Km_fCa/(Km_fCa + Casub);
diff_fCa = (fCa_inf - fCa)/tau_fCa;
dT_inf = 1.0/(1.0 + exp(-(Vm + 37.0)/6.8));
diff_dT = (dT_inf - dT)/(0.0006 + 0.0054/(1.0 + exp(0.03*(Vm + 100.0))));
dT; .method(rush_larsen);
fT_inf = 1.0/(1.0 + exp((Vm + 71.0)/9.0));
diff_fT = (fT_inf - fT)/(0.001 + 0.04/(1.0 + exp(0.08*(Vm + 65.0))));
fT; .method(rush_larsen);
pa_inf = 1.0/(1.0 + exp(-(Vm + 14.2)/10.6));
diff_paf = (pa_inf - paf)/(0.0017*exp(-square(Vm/30.0)) + 0.0174);
paf; .method(rush_larsen);
diff_pas = (pa_inf - pas)/(0.4 + 0.7*exp(-square(Vm/30.0)));
pas; .method(rush_larsen);
pik_inf = 1.0/(1.0 + exp((Vm + 18.6)/10.1));
diff_pik = (pik_inf - pik)/0.002;  pik; .method(rush_larsen);
nks_inf = 1.0/(1.0 + exp(-(Vm - 0.6)/10.5));
diff_n_ks = (nks_inf - n_ks)/(0.3 + 0.7*exp(-square((Vm - 10.0)/25.0)));
n_ks; .method(rush_larsen);
q_inf = 1.0/(1.0 + exp((Vm + 49.0)/13.0));
diff_q_g = (q_inf - q_g)/(0.01 + 0.065*exp(-square((Vm + 40.0)/30.0)));
q_g; .method(rush_larsen);
r_inf = 1.0/(1.0 + exp(-(Vm - 19.3)/15.0));
diff_r_g = (r_inf - r_g)/(0.0025 + 0.015*exp(-square((Vm + 40.0)/30.0)));
r_g; .method(rush_larsen);
I_f = g_f*y_f*(Vm + 30.0);
I_CaL = g_caL*dL*fL*fCa*(Vm - E_CaL);
I_CaT = g_caT*dT*fT*(Vm - E_CaL);
I_Kr = g_kr*(0.6*paf + 0.4*pas)*pik*(Vm - E_K);
I_Ks = g_ks*square(n_ks)*(Vm - E_K);
I_to = g_to*q_g*r_g*(Vm - E_K);
I_NaK = 0.00014*(Vm + 150.0)/(Vm + 200.0)*100.0;
I_NaCa = 0.003*(exp(0.017*Vm)*0.00008/Casub - exp(-0.02*Vm))*2.0;
J_up = 0.005*Cai/(Cai + 0.0006);
J_rel = 1.5*Carel*square(Casub)/(square(Casub) + 0.0000000012);
J_tr = (Caup - Carel)*0.01;
J_diff = (Casub - Cai)/0.00004*0.001;
diff_Casub = -0.01*(I_CaL + I_CaT - 2.0*I_NaCa) + J_rel*0.1 - J_diff*0.001;
Casub; .method(rk4);
diff_Cai = J_diff*0.00005 - J_up + 0.02*(0.0001 - Cai);
diff_Caup = J_up*0.5 - J_tr*0.01;
diff_Carel = J_tr*0.01 - J_rel*0.001;
Iion = (I_f + I_CaL + I_CaT + I_Kr + I_Ks + I_to + I_NaK + I_NaCa)*300.0;
|};
  }

let maccannell =
  {
    name = "MacCannellFibroblast";
    cls = Medium;
    fidelity = Structural;
    description =
      "MacCannell 2007 active fibroblast: time-dependent K current \
       (r/s gates), inward rectifier, Na-K pump (5 states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
r_f; r_f_init = 0.0;
s_f; s_f_init = 1.0;
Kif; Kif_init = 140.0;
Naif; Naif_init = 9.0;
w_f; w_f_init = 0.1;
Vm_init = -49.6;
group{ g_kv = 0.25; g_k1 = 0.4822; RTF = 26.71; Ko = 5.4; Nao = 130.0;
       B_f = -200.0; }.param();
r_inf = 1.0/(1.0 + exp(-(Vm + 20.0)/11.0));
tau_r = 20.3 + 138.0*exp(-square((Vm + 20.0)/25.9));
diff_r_f = (r_inf - r_f)/tau_r;  r_f; .method(rush_larsen);
s_inf = 1.0/(1.0 + exp((Vm + 23.0)/7.0));
tau_s = 1574.0 + 5268.0*exp(-square((Vm + 23.0)/22.7));
diff_s_f = (s_inf - s_f)/tau_s;  s_f; .method(rush_larsen);
diff_w_f = (1.0/(1.0 + exp(-(Vm + 30.0)/10.0)) - w_f)/500.0;
w_f; .method(sundnes);
E_K = RTF*log(Ko/Kif);
E_Na = RTF*log(Nao/Naif);
I_Kv = g_kv*r_f*s_f*(Vm - E_K);
a_K1 = 0.1/(1.0 + exp(0.06*(Vm - E_K - 200.0)));
b_K1 = (3.0*exp(0.0002*(Vm - E_K + 100.0)) + exp(0.1*(Vm - E_K - 10.0)))
       /(1.0 + exp(-0.5*(Vm - E_K)));
I_K1 = g_k1*(a_K1/(a_K1 + b_K1))*(Vm - E_K);
I_NaK = 2.002*(Ko/(Ko + 1.0))*(pow(Naif,1.5)/(pow(Naif,1.5) + 36.48))
        *(Vm - B_f)/(Vm + 200.0);
I_bNa = 0.0095*(Vm - E_Na);
diff_Kif = -0.0001*(I_Kv + I_K1 - 2.0*I_NaK);
diff_Naif = -0.0001*(I_bNa + 3.0*I_NaK);
Iion = I_Kv + I_K1 + I_NaK + I_bNa;
|};
  }

let sachse =
  {
    name = "SachseFibroblast";
    cls = Medium;
    fidelity = Structural;
    description =
      "Sachse 2008 fibroblast with a Markov-gated big-conductance K \
       channel integrated with markov_be (6 states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
C0; C0_init = 0.9;
O_b; O_b_init = 0.05;
r_f; r_f_init = 0.0;
s_f; s_f_init = 1.0;
Kif; Kif_init = 140.0;
w_a; w_a_init = 0.2;
Vm_init = -58.0;
group{ g_b = 0.3; g_kv = 0.1; RTF = 26.71; Ko = 5.4; }.param();
k_co = 0.1*exp(Vm/40.0);
k_oc = 0.06*exp(-Vm/60.0);
diff_O_b = k_co*(1.0 - O_b) - k_oc*O_b;  O_b; .method(markov_be);
diff_C0 = k_oc*O_b - k_co*C0;
r_inf = 1.0/(1.0 + exp(-(Vm + 25.0)/10.0));
diff_r_f = (r_inf - r_f)/25.0;  r_f; .method(rush_larsen);
s_inf = 1.0/(1.0 + exp((Vm + 30.0)/8.0));
diff_s_f = (s_inf - s_f)/800.0;  s_f; .method(rush_larsen);
diff_w_a = (1.0/(1.0 + exp(-(Vm + 40.0)/12.0)) - w_a)/300.0;
E_K = RTF*log(Ko/Kif);
I_b = g_b*O_b*(Vm - E_K);
I_Kv = g_kv*r_f*s_f*(Vm - E_K);
I_K1 = 0.35*(Vm - E_K)/(1.0 + exp(0.07*(Vm - E_K + 15.0)));
I_leak = 0.01*(Vm + 60.0)*w_a;
diff_Kif = -0.0001*(I_b + I_Kv + I_K1);
Iion = I_b + I_Kv + I_K1 + I_leak;
|};
  }

let fox =
  {
    name = "FoxMcHargRampazzo";
    cls = Medium;
    fidelity = Structural;
    description =
      "Fox 2002 canine ventricular structure: 13 states, calcium-dependent \
       ICaL inactivation with an explicit f_Ca gate.";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.00024;
h; h_init = 0.995;
j; j_init = 0.996;
d; d_init = 0.00001;
f; f_init = 0.999;
fCa; fCa_init = 0.942;
Xr; Xr_init = 0.23;
Xs; Xs_init = 0.001;
Xto; Xto_init = 0.00004;
Yto; Yto_init = 1.0;
Cai; Cai_init = 0.000026;
Casr; Casr_init = 0.32;
PLB; PLB_init = 0.5;
Vm_init = -94.7;
group{ g_Na = 12.8; E_Na = 70.0; g_caL = 0.226; g_kr = 0.0136;
       g_ks = 0.0245; g_to = 0.23815; g_k1 = 2.8; E_K = -96.0; }.param();
a_m = (fabs(Vm + 47.13) < 1e-6) ? 3.2
      : 0.32*(Vm + 47.13)/(1.0 - exp(-0.1*(Vm + 47.13)));
b_m = 0.08*exp(-Vm/11.0);
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
a_h = 0.135*exp((Vm + 80.0)/-6.8);
b_h = 7.5/(1.0 + exp(-0.1*(Vm + 11.0)));
diff_h = a_h*(1.0 - h) - b_h*h;  h; .method(rush_larsen);
a_j = 0.175*exp((Vm + 100.0)/-23.0)/(1.0 + exp(0.15*(Vm + 79.0)));
b_j = 0.3/(1.0 + exp(-0.1*(Vm + 32.0)));
diff_j = a_j*(1.0 - j) - b_j*j;  j; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp(-(Vm + 10.0)/6.24));
tau_d = 1.0/((0.25*exp(-0.01*Vm)/(1.0 + exp(-0.07*Vm)))
        + (0.07*exp(-0.05*(Vm + 40.0))/(1.0 + exp(0.05*(Vm + 40.0)))));
diff_d = (d_inf - d)/max(tau_d, 0.1);  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 12.5)/5.0));
diff_f = (f_inf - f)/30.0;  f; .method(rush_larsen);
fCa_inf = 1.0/(1.0 + cube(Cai/0.000185));
diff_fCa = (fCa_inf - fCa)/30.0;
Xr_inf = 1.0/(1.0 + exp(-2.182 - 0.1819*Vm));
diff_Xr = (Xr_inf - Xr)/43.0;  Xr; .method(rush_larsen);
Xs_inf = 1.0/(1.0 + exp(-(Vm - 16.0)/13.6));
tau_Xs = 1.0/((0.0000719*(Vm - 10.0)/(1.0 - exp(-0.148*(Vm - 10.0))))
         + (0.000131*(Vm - 10.0)/(exp(0.0687*(Vm - 10.0)) - 1.0)));
diff_Xs = (Xs_inf - Xs)/max(fabs(tau_Xs), 10.0);  Xs; .method(rush_larsen);
Xto_inf = 1.0/(1.0 + exp(-(Vm + 3.0)/15.0));
tau_Xto = 3.5*exp(-square(Vm/30.0)) + 1.5;
diff_Xto = (Xto_inf - Xto)/tau_Xto;  Xto; .method(rush_larsen);
Yto_inf = 1.0/(1.0 + exp((Vm + 33.5)/10.0));
tau_Yto = 20.0 + 20.0/(1.0 + exp((Vm + 33.5)/10.0));
diff_Yto = (Yto_inf - Yto)/tau_Yto;  Yto; .method(rush_larsen);
R_V = 1.0/(1.0 + 1.4945*exp(0.0446*Vm));
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
I_CaL = g_caL*d*f*fCa*(Vm - 65.0)*R_V;
I_Kr = g_kr*Xr*R_V*(Vm - E_K)*4.0;
I_Ks = g_ks*square(Xs)*(Vm - E_K);
I_to = g_to*Xto*Yto*(Vm - E_K);
K1_inf = 1.0/(2.0 + exp(1.62*(Vm - E_K)/26.71));
I_K1 = g_k1*K1_inf*(Vm - E_K)*0.35;
I_NaK = 0.693*(1.0/(1.0 + 0.1245*exp(-0.0037*Vm)))*0.5;
I_NaCa = 0.03*(exp(0.013*Vm)*0.00008/max(Cai,1e-9) - exp(-0.024*Vm))*0.02;
J_rel = 1.2*square(Cai/(Cai + 0.0002))*(Casr - Cai)*0.01;
J_up = 0.1*Cai/(Cai + 0.000032)*0.01;
diff_PLB = 0.01*(Cai*3000.0*(1.0 - PLB) - 0.5*PLB);
diff_Casr = 10.0*(J_up - J_rel)*0.1;
diff_Cai = -0.00003*(I_CaL - 2.0*I_NaCa) + (J_rel - J_up)*0.01 + 0.02*(0.000026 - Cai);
Iion = I_Na + I_CaL + I_Kr + I_Ks + I_to + I_K1 + I_NaK + I_NaCa;
|};
  }

let priebe =
  {
    name = "PriebeBeuckelmann";
    cls = Medium;
    fidelity = Structural;
    description =
      "Priebe & Beuckelmann 1998 failing-human-ventricle structure \
       (Luo-Rudy-II derived, 15 states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0005;
h; h_init = 0.95;
j; j_init = 0.97;
d; d_init = 0.0002;
f; f_init = 1.0;
r; r_init = 0.0;
t_g; t_g_init = 1.0;
Xr; Xr_init = 0.0001;
Xs; Xs_init = 0.005;
Nai; Nai_init = 10.0;
Ki; Ki_init = 140.0;
Cai; Cai_init = 0.0002;
Cajsr; Cajsr_init = 2.5;
Cansr; Cansr_init = 2.5;
Vm_init = -90.0;
group{ g_Na = 16.0; g_caL = 0.064; g_to = 0.3; g_kr = 0.015; g_ks = 0.02;
       g_k1 = 2.5; RTF = 26.71; Nao = 138.0; Ko = 4.0; Cao = 2.0; }.param();
a_m = (fabs(Vm + 47.13) < 1e-6) ? 3.2
      : 0.32*(Vm + 47.13)/(1.0 - exp(-0.1*(Vm + 47.13)));
b_m = 0.08*exp(-Vm/11.0);
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
a_h = (Vm >= -40.0) ? 0.0 : 0.135*exp(-(80.0 + Vm)/6.8);
b_h = (Vm >= -40.0) ? 1.0/(0.13*(1.0 + exp(-(Vm + 10.66)/11.1)))
      : 3.56*exp(0.079*Vm) + 310000.0*exp(0.35*Vm);
diff_h = a_h*(1.0 - h) - b_h*h;  h; .method(rush_larsen);
a_j = (Vm >= -40.0) ? 0.0
      : (-127140.0*exp(0.2444*Vm) - 0.00003474*exp(-0.04391*Vm))
        *(Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)));
b_j = (Vm >= -40.0)
      ? 0.3*exp(-0.0000002535*Vm)/(1.0 + exp(-0.1*(Vm + 32.0)))
      : 0.1212*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14)));
diff_j = a_j*(1.0 - j) - b_j*j;  j; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp(-(Vm + 10.0)/6.24));
tau_d = 1.0 + 2.0*exp(-square((Vm + 10.0)/30.0));
diff_d = (d_inf - d)/tau_d;  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 35.06)/8.6));
tau_f = 10.0 + 30.0*exp(-square((Vm + 28.0)/25.0));
diff_f = (f_inf - f)/tau_f;  f; .method(rush_larsen);
r_inf = 1.0/(1.0 + exp(-(Vm - 5.0)/9.0));
tau_r = 1.0 + 4.0*exp(-square((Vm + 10.0)/30.0));
diff_r = (r_inf - r)/tau_r;  r; .method(rush_larsen);
t_inf = 1.0/(1.0 + exp((Vm + 37.0)/6.0));
tau_t = 20.0 + 60.0/(1.0 + exp((Vm + 50.0)/10.0));
diff_t_g = (t_inf - t_g)/tau_t;  t_g; .method(rush_larsen);
Xr_inf = 1.0/(1.0 + exp(-(Vm + 21.0)/7.5));
tau_Xr = 40.0 + 200.0*exp(-square((Vm + 30.0)/30.0));
diff_Xr = (Xr_inf - Xr)/tau_Xr;  Xr; .method(rush_larsen);
Xs_inf = 1.0/(1.0 + exp(-(Vm - 1.5)/16.7));
tau_Xs = 200.0 + 600.0*exp(-square((Vm + 30.0)/60.0));
diff_Xs = (Xs_inf - Xs)/tau_Xs;  Xs; .method(rush_larsen);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
I_CaL = g_caL*d*f*(Vm - E_Ca)*(1.0/(1.0 + square(Cai/0.0006)));
I_to = g_to*r*t_g*(Vm - E_K);
I_Kr = g_kr*Xr*(Vm - E_K)/(1.0 + exp((Vm + 9.0)/22.4));
I_Ks = g_ks*square(Xs)*(Vm - E_K);
a_K1 = 0.1/(1.0 + exp(0.06*(Vm - E_K - 200.0)));
b_K1 = (3.0*exp(0.0002*(Vm - E_K + 100.0)) + exp(0.1*(Vm - E_K - 10.0)))
       /(1.0 + exp(-0.5*(Vm - E_K)));
I_K1 = g_k1*(a_K1/(a_K1 + b_K1))*(Vm - E_K);
I_NaK = 1.3*(Ko/(Ko + 1.5))*(1.0/(1.0 + square(10.0/Nai)))
        *(1.0/(1.0 + 0.1245*exp(-0.1*Vm/RTF)));
I_NaCa = 1000.0*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*0.02;
J_rel = 0.3*square(Cai/(Cai + 0.0003))*(Cajsr - Cai)*0.05;
J_up = 0.0045*Cai/(Cai + 0.00092);
J_tr = (Cansr - Cajsr)/180.0;
diff_Cajsr = J_tr - J_rel*0.1;
diff_Cansr = J_up*5.0 - J_tr;
diff_Cai = -0.0001*(I_CaL - 2.0*I_NaCa) + (J_rel*0.1 - J_up)*0.05 + 0.01*(0.0002 - Cai);
diff_Nai = -0.00001*(I_Na + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_to + I_Kr + I_Ks + I_K1 - 2.0*I_NaK);
Iion = I_Na + I_CaL + I_to + I_Kr + I_Ks + I_K1 + I_NaK + I_NaCa;
|};
  }

let bondarenko =
  {
    name = "BondarenkoMouse";
    cls = Medium;
    fidelity = Structural;
    description =
      "Bondarenko 2004 mouse ventricular structure: fast/slow/ultra-rapid \
       K currents, Markov-flavoured ICaL occupancy with markov_be (18 \
       states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0007;
h; h_init = 0.98;
j; j_init = 0.99;
O_ca; O_ca_init = 0.0001;
C2_ca; C2_ca_init = 0.6;
a_to_f; a_to_f_init = 0.0026;
i_to_f; i_to_f_init = 0.999;
a_to_s; a_to_s_init = 0.0004;
i_to_s; i_to_s_init = 0.986;
a_ur; a_ur_init = 0.0004;
i_ur; i_ur_init = 0.994;
a_kss; a_kss_init = 0.0004;
n_ks; n_ks_init = 0.0003;
Xr; Xr_init = 0.008;
Nai; Nai_init = 14.2;
Ki; Ki_init = 143.7;
Cai; Cai_init = 0.000115;
Cansr; Cansr_init = 1.3;
Vm_init = -82.4;
group{ g_Na = 13.0; g_caL = 0.1729; g_tof = 0.4067; g_tos = 0.0;
       g_ur = 0.16; g_kss = 0.05; g_ks = 0.00575; g_kr = 0.078;
       RTF = 26.71; Nao = 140.0; Ko = 5.4; Cao = 1.8; }.param();
a_m = (fabs(Vm + 47.13) < 1e-6) ? 3.2
      : 0.32*(Vm + 47.13)/(1.0 - exp(-0.1*(Vm + 47.13)));
b_m = 0.08*exp(-Vm/11.0);
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
a_h = 0.135*exp((Vm + 80.0)/-6.8);
b_h = 7.5/(1.0 + exp(-0.1*(Vm + 11.0)));
diff_h = a_h*(1.0 - h) - b_h*h;  h; .method(rush_larsen);
a_j = 0.175*exp((Vm + 100.0)/-23.0)/(1.0 + exp(0.15*(Vm + 79.0)));
b_j = 0.3/(1.0 + exp(-0.1*(Vm + 32.0)));
diff_j = a_j*(1.0 - j) - b_j*j;  j; .method(rush_larsen);
alpha_ca = 0.4*exp((Vm + 12.0)/10.0)*(1.0 + 0.7*exp(-square((Vm + 40.0)/10.0)))
           /(1.0 + 0.12*exp((Vm + 12.0)/10.0));
beta_ca = 0.05*exp(-(Vm + 12.0)/13.0);
diff_O_ca = alpha_ca*C2_ca*0.01 - beta_ca*O_ca - 0.01*O_ca*Cai/(Cai + 0.0002);
O_ca; .method(markov_be);
diff_C2_ca = beta_ca*O_ca - alpha_ca*C2_ca*0.01 + 0.005*(0.6 - C2_ca);
atof_inf = 1.0/(1.0 + exp(-(Vm + 22.5)/7.7));
diff_a_to_f = (atof_inf - a_to_f)/(0.493*exp(-0.0629*Vm) + 2.058);
a_to_f; .method(rush_larsen);
itof_inf = 1.0/(1.0 + exp((Vm + 45.2)/5.7));
diff_i_to_f = (itof_inf - i_to_f)/(0.1*exp(0.0861*(Vm + 45.2)) + 2.7);
i_to_f; .method(rush_larsen);
atos_inf = 1.0/(1.0 + exp(-(Vm + 22.5)/7.7));
diff_a_to_s = (atos_inf - a_to_s)/(2.058 + 50.0/(1.0 + exp((Vm + 45.2)/5.7)));
a_to_s; .method(rush_larsen);
itos_inf = 1.0/(1.0 + exp((Vm + 45.2)/5.7));
diff_i_to_s = (itos_inf - i_to_s)/(270.0 + 1050.0/(1.0 + exp((Vm + 45.2)/5.7)));
i_to_s; .method(rush_larsen);
aur_inf = 1.0/(1.0 + exp(-(Vm + 22.5)/7.7));
diff_a_ur = (aur_inf - a_ur)/(0.493*exp(-0.0629*Vm) + 2.058);
a_ur; .method(rush_larsen);
iur_inf = 1.0/(1.0 + exp((Vm + 45.2)/5.7));
diff_i_ur = (iur_inf - i_ur)/(1200.0 - 170.0/(1.0 + exp((Vm + 45.2)/5.7)));
i_ur; .method(rush_larsen);
akss_inf = 1.0/(1.0 + exp(-(Vm + 22.5)/7.7));
diff_a_kss = (akss_inf - a_kss)/(39.3*exp(-0.0862*Vm) + 13.17);
a_kss; .method(rush_larsen);
nks_inf = 1.0/(1.0 + exp(-(Vm - 26.5)/16.7));
diff_n_ks = 0.00000481333*(Vm + 26.5)/(1.0 - exp(-0.128*(Vm + 26.5)))
            *(1.0 - n_ks) - 0.0000953333*exp(-0.038*(Vm + 26.5))*n_ks;
n_ks; .method(rush_larsen);
Xr_inf = 1.0/(1.0 + exp(-(Vm + 15.0)/6.0));
diff_Xr = (Xr_inf - Xr)/(50.0 + 200.0*exp(-square((Vm + 30.0)/30.0)));
Xr; .method(rush_larsen);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na);
I_CaL = g_caL*O_ca*(Vm - 63.0)*10.0;
I_tof = g_tof*cube(a_to_f)*i_to_f*(Vm - E_K);
I_tos = g_tos*a_to_s*i_to_s*(Vm - E_K);
I_Kur = g_ur*a_ur*i_ur*(Vm - E_K);
I_Kss = g_kss*a_kss*(Vm - E_K);
I_Ks = g_ks*square(n_ks)*(Vm - E_K);
I_Kr = g_kr*Xr*(Vm - E_K)/(1.0 + exp((Vm + 9.0)/22.4));
I_K1 = 0.2938*(Ko/(Ko + 0.21))*(Vm - E_K)/(1.0 + exp(0.0896*(Vm - E_K)));
I_NaK = 0.88*(Ko/(Ko + 1.5))*(1.0/(1.0 + pow(21.0/Nai, 1.5)))
        *(1.0/(1.0 + 0.1245*exp(-0.1*Vm/RTF)));
I_NaCa = 275.0*(exp(0.35*Vm/RTF)*cube(Nai)*Cao - exp(-0.65*Vm/RTF)*cube(Nao)*Cai)
         /((cube(87.5) + cube(Nao))*(1.38 + Cao)*(1.0 + 0.1*exp(-0.65*Vm/RTF)))*0.01;
J_up = 0.45*square(Cai)/(square(Cai) + square(0.0005));
J_rel = 0.6*square(Cai/(Cai + 0.00023))*(Cansr - Cai)*0.02;
diff_Cansr = (J_up - J_rel)*2.0;
diff_Cai = -0.00008*(I_CaL - 2.0*I_NaCa) + (J_rel - J_up)*0.02 + 0.01*(0.000115 - Cai);
diff_Nai = -0.00001*(I_Na + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_tof + I_tos + I_Kur + I_Kss + I_Ks + I_Kr + I_K1 - 2.0*I_NaK);
Iion = I_Na + I_CaL + I_tof + I_tos + I_Kur + I_Kss + I_Ks + I_Kr + I_K1 + I_NaK + I_NaCa;
|};
  }

let pandit =
  {
    name = "PanditRat";
    cls = Medium;
    fidelity = Structural;
    description =
      "Pandit 2001 rat ventricular structure: fast/slow transient outward \
       split, hyperpolarization-activated current (16 states).";
    source =
      {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.0042;
h; h_init = 0.85;
j; j_init = 0.85;
d; d_init = 0.0000021;
f11; f11_init = 0.999;
f12; f12_init = 0.999;
Ca_inact; Ca_inact_init = 0.99;
r_g; r_g_init = 0.002;
s_g; s_g_init = 0.99;
s_slow; s_slow_init = 0.99;
r_ss; r_ss_init = 0.002;
y_f; y_f_init = 0.003;
Nai; Nai_init = 10.7;
Ki; Ki_init = 139.0;
Cai; Cai_init = 0.00008;
Cansr; Cansr_init = 0.7;
Vm_init = -80.5;
group{ g_Na = 0.8; g_caL = 0.031; g_t = 0.035; g_ss = 0.007; g_f = 0.00145;
       g_k1 = 0.024; RTF = 26.71; Nao = 140.0; Ko = 5.4; Cao = 1.2; }.param();
m_inf = 1.0/(1.0 + exp((Vm + 45.0)/-6.5));
tau_m = 0.00136/(0.32*(Vm + 47.13)/(1.0 - exp(-0.1*(Vm + 47.13))) + 0.08*exp(-Vm/11.0))*1000.0;
diff_m = (m_inf - m)/max(tau_m, 0.01);  m; .method(rush_larsen);
h_inf = 1.0/(1.0 + exp((Vm + 76.1)/6.07));
tau_h = (Vm >= -40.0) ? 0.4537*(1.0 + exp(-(Vm + 10.66)/11.1))
        : 3.49/(0.135*exp(-(Vm + 80.0)/6.8) + 3.56*exp(0.079*Vm) + 310000.0*exp(0.35*Vm));
diff_h = (h_inf - h)/max(tau_h, 0.01);  h; .method(rush_larsen);
j_inf = h_inf;
tau_j = (Vm >= -40.0)
        ? 11.63*(1.0 + exp(-0.1*(Vm + 32.0)))/exp(-0.0000002535*Vm)
        : 3.49/((Vm + 37.78)/(1.0 + exp(0.311*(Vm + 79.23)))
          *(-127140.0*exp(0.2444*Vm) - 0.00003474*exp(-0.04391*Vm))
          + 0.1212*exp(-0.01052*Vm)/(1.0 + exp(-0.1378*(Vm + 40.14))));
diff_j = (j_inf - j)/max(fabs(tau_j), 0.1);  j; .method(rush_larsen);
d_inf = 1.0/(1.0 + exp((Vm + 15.3)/-5.0));
tau_d = 0.00305*exp(-0.0045*square(Vm + 7.0)) + 0.00105*exp(-0.002*square(Vm - 18.0)) + 0.25;
diff_d = (d_inf - d)/tau_d;  d; .method(rush_larsen);
f_inf = 1.0/(1.0 + exp((Vm + 26.7)/5.4));
tau_f11 = 0.105*exp(-square((Vm + 45.0)/12.0)) + 0.04/(1.0 + exp((-Vm + 25.0)/25.0))
          + 0.015/(1.0 + exp((Vm + 75.0)/25.0)) + 0.0017;
tau_f12 = 0.041*exp(-square((Vm + 47.0)/12.0)) + 0.08/(1.0 + exp((Vm + 55.0)/-5.0))
          + 0.015/(1.0 + exp((Vm + 75.0)/25.0)) + 0.0017;
diff_f11 = (f_inf - f11)/(tau_f11*1000.0)*100.0;  f11; .method(rush_larsen);
diff_f12 = (f_inf - f12)/(tau_f12*1000.0)*100.0;  f12; .method(rush_larsen);
diff_Ca_inact = (1.0/(1.0 + Cai/0.01) - Ca_inact)/9.0;
r_inf = 1.0/(1.0 + exp((Vm + 10.6)/-11.42));
tau_r = 1.0/(45.16*exp(0.03577*(Vm + 50.0)) + 98.9*exp(-0.1*(Vm + 38.0)))*1000.0;
diff_r_g = (r_inf - r_g)/max(tau_r, 0.1);  r_g; .method(rush_larsen);
s_inf = 1.0/(1.0 + exp((Vm + 45.3)/6.8841));
tau_s = 0.35*exp(-square((Vm + 70.0)/15.0)) + 0.035;
diff_s_g = (s_inf - s_g)/(tau_s*1000.0)*100.0;  s_g; .method(rush_larsen);
tau_sslow = 3.7*exp(-square((Vm + 70.0)/30.0)) + 0.035;
diff_s_slow = (s_inf - s_slow)/(tau_sslow*1000.0)*100.0;  s_slow; .method(rush_larsen);
rss_inf = 1.0/(1.0 + exp((Vm + 11.5)/-11.82));
diff_r_ss = (rss_inf - r_ss)/(10.0/(45.16*exp(0.03577*(Vm + 50.0)) + 98.9*exp(-0.1*(Vm + 38.0)))*1000.0);
r_ss; .method(rush_larsen);
y_inf = 1.0/(1.0 + exp((Vm + 138.6)/10.48));
diff_y_f = (y_inf - y_f)/1000.0;  y_f; .method(rush_larsen);
E_Na = RTF*log(Nao/Nai);
E_K = RTF*log(Ko/Ki);
E_Ca = 0.5*RTF*log(Cao/Cai);
I_Na = g_Na*cube(m)*h*j*(Vm - E_Na)*100.0;
I_CaL = g_caL*d*(0.983*f11 + 0.017*f12)*Ca_inact*(Vm - 65.0)*10.0;
I_t = g_t*r_g*(0.886*s_g + 0.114*s_slow)*(Vm - E_K)*100.0;
I_ss = g_ss*r_ss*(Vm - E_K)*100.0;
I_f = g_f*y_f*(0.2*(Vm - E_Na) + 0.8*(Vm - E_K))*100.0;
I_K1 = g_k1*(Ko/(Ko + 0.21))*(Vm - E_K)/(1.0 + exp(0.0896*(Vm - E_K)))*100.0;
I_NaK = 0.08*(Ko/(Ko + 1.5))*(1.0/(1.0 + pow(18.84/Nai, 1.5)))
        *(1.0/(1.0 + 0.1245*exp(-0.1*Vm/RTF)))*10.0;
I_NaCa = 0.0000009984*(exp(0.03743*Vm*0.45)*cube(Nai)*Cao
         - exp(-0.03743*Vm*0.55)*cube(Nao)*Cai)
         /(1.0 + 0.0001*(Cai*cube(Nao) + Cao*cube(Nai)))*10000.0;
J_up = 0.04*square(Cai)/(square(Cai) + square(0.00042));
J_rel = 0.3*square(Cai/(Cai + 0.0002))*(Cansr - Cai)*0.02;
diff_Cansr = (J_up - J_rel)*1.5;
diff_Cai = -0.00004*(I_CaL - 2.0*I_NaCa) + (J_rel - J_up)*0.02 + 0.01*(0.00008 - Cai);
diff_Nai = -0.00001*(I_Na + 3.0*I_NaK + 3.0*I_NaCa);
diff_Ki = -0.00001*(I_t + I_ss + I_K1 - 2.0*I_NaK);
Iion = I_Na + I_CaL + I_t + I_ss + I_f + I_K1 + I_NaK + I_NaCa;
|};
  }

let entries : entry list =
  [ zhang_san; kurata_san; maccannell; sachse; fox; priebe; bondarenko; pandit ]
