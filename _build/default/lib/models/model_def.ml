(** Model catalogue entry type.

    Fidelity records how each model relates to its published source (see
    DESIGN.md): [Faithful] models follow the published equations;
    [Structural] models reproduce the published model's *computational
    structure* (state count, gate/current inventory, integration methods,
    math-call mix, LUT usage) with representative rate functions, which is
    what the paper's performance evaluation exercises. *)

type cls = Small | Medium | Large

let cls_name = function Small -> "small" | Medium -> "medium" | Large -> "large"

type fidelity = Faithful | Structural

type entry = {
  name : string;
  cls : cls;
  fidelity : fidelity;
  description : string;
  source : string;  (** EasyML source text *)
}
