(** Model registry: the 43-model evaluation suite.

    Mirrors the paper's split: 8 small, 22 medium, 13 large (§4.1).
    Analysis results are memoized — the frontend runs once per model. *)

open Model_def

let all : entry list =
  Small_models.entries @ Medium_models.entries @ Large_models.entries

let find (name : string) : entry option =
  List.find_opt (fun e -> String.equal e.name name) all

let find_exn (name : string) : entry =
  match find name with
  | Some e -> e
  | None -> invalid_arg ("Registry.find_exn: unknown model " ^ name)

let by_class (c : cls) : entry list = List.filter (fun e -> e.cls = c) all
let names () : string list = List.map (fun e -> e.name) all

let memo : (string, Easyml.Model.t) Hashtbl.t = Hashtbl.create 64

(** Parse + analyze a model (memoized). *)
let model ?(options = Easyml.Sema.default_options) (e : entry) :
    Easyml.Model.t =
  let key = e.name ^ if options.Easyml.Sema.fold_params then "" else "#nofold" in
  match Hashtbl.find_opt memo key with
  | Some m -> m
  | None ->
      let m = Easyml.Sema.analyze_source ~options ~name:e.name e.source in
      Hashtbl.replace memo key m;
      m

let class_counts () : (cls * int) list =
  List.map (fun c -> (c, List.length (by_class c))) [ Small; Medium; Large ]
