(** The eight small-class models (paper §4.1: runtime < 1 min baseline).

    Phenomenological / reduced models: few state variables, little or no
    lookup-table usage, short kernels — exactly the class where the paper
    observes low and irregular speedups. *)

open Model_def

let aliev_panfilov =
  {
    name = "AlievPanfilov";
    cls = Small;
    fidelity = Faithful;
    description =
      "Aliev & Panfilov 1996 two-variable phenomenological model; cubic \
       excitation plus a slow recovery variable with state-dependent rate.";
    source =
      {|
# Aliev-Panfilov 1996, openCARP-style EasyML formulation.
Vm; .external(); .nodal();
Iion; .external(); .nodal();
v; v_init = 0.0;
Vm_init = -80.0;
group{ k = 8.0; a = 0.15; e0 = 0.002; mu1 = 0.2; mu2 = 0.3;
       Vrest = -80.0; Vamp = 100.0; t_norm = 12.9; }.param();
u = (Vm - Vrest)/Vamp;
eps = e0 + mu1*v/(u + mu2);
diff_v = (eps*(-v - k*u*(u - a - 1.0)))/t_norm;
Iion = (k*u*(u - a)*(1.0 - u) - u*v) * (-Vamp/t_norm);
|};
  }

let fitzhugh_nagumo =
  {
    name = "FitzHughNagumo";
    cls = Small;
    fidelity = Faithful;
    description =
      "Rogers & McCulloch 1994 variant of FitzHugh-Nagumo: cubic fast \
       variable, linear recovery.";
    source =
      {|
Vm; .external(); .nodal();
Iion; .external(); .nodal();
w; w_init = 0.0;
Vm_init = -85.0;
group{ a = 0.13; b = 0.013; c1 = 0.26; c2 = 0.1;
       Vrest = -85.0; Vamp = 110.0; }.param();
u = (Vm - Vrest)/Vamp;
diff_w = b*(u - c2*w);
Iion = -(c1*u*(u - a)*(1.0 - u) - c2*u*w) * Vamp;
|};
  }

let mitchell_schaeffer =
  {
    name = "MitchellSchaeffer";
    cls = Small;
    fidelity = Faithful;
    description =
      "Mitchell & Schaeffer 2003 two-current model; the gate closes/opens \
       with a hard voltage threshold expressed as an EasyML conditional.";
    source =
      {|
Vm; .external(); .nodal();
Iion; .external(); .nodal();
h; h_init = 1.0;
Vm_init = -80.0;
group{ tau_in = 0.3; tau_out = 6.0; tau_open = 120.0; tau_close = 150.0;
       V_gate = 0.13; Vrest = -80.0; Vamp = 100.0; }.param();
u = (Vm - Vrest)/Vamp;
if (u < V_gate) {
  dh = (1.0 - h)/tau_open;
} else {
  dh = -h/tau_close;
}
diff_h = dh;
J_in = h*u*u*(1.0 - u)/tau_in;
J_out = -u/tau_out;
Iion = -(J_in + J_out) * Vamp;
|};
  }

let fenton_karma =
  {
    name = "FentonKarma";
    cls = Small;
    fidelity = Faithful;
    description =
      "Fenton & Karma 1998 three-variable model (MLR-I parameters): fast \
       inward, slow outward and slow inward currents with Heaviside gating \
       written as ternaries and a tanh.";
    source =
      {|
Vm; .external(); .nodal();
Iion; .external(); .nodal();
v; v_init = 1.0;
w; w_init = 1.0;
Vm_init = -85.0;
group{ u_c = 0.13; u_v = 0.04; tau_d = 0.395; tau_0 = 9.0; tau_r = 33.33;
       tau_si = 29.0; u_csi = 0.50; k_fk = 15.0;
       tau_vp = 3.33; tau_vm1 = 19.6; tau_vm2 = 1250.0;
       tau_wp = 870.0; tau_wm = 41.0;
       Vrest = -85.0; Vamp = 100.0; }.param();
u = (Vm - Vrest)/Vamp;
p = (u >= u_c) ? 1.0 : 0.0;
q = (u >= u_v) ? 1.0 : 0.0;
tau_vm = q*tau_vm1 + (1.0 - q)*tau_vm2;
diff_v = (1.0 - p)*(1.0 - v)/tau_vm - p*v/tau_vp;
diff_w = (1.0 - p)*(1.0 - w)/tau_wm - p*w/tau_wp;
J_fi = -v*p*(1.0 - u)*(u - u_c)/tau_d;
J_so = u*(1.0 - p)/tau_0 + p/tau_r;
J_si = -w*(1.0 + tanh(k_fk*(u - u_csi)))/(2.0*tau_si);
Iion = (J_fi + J_so + J_si) * Vamp;
|};
  }

let plonsey =
  {
    name = "Plonsey";
    cls = Small;
    fidelity = Faithful;
    description =
      "Plonsey passive membrane: linear leak plus one first-order \
       accommodation state; the smallest kernel in the suite.";
    source =
      {|
Vm; .external(); .nodal();
Iion; .external(); .nodal();
q; q_init = 0.0;
Vm_init = -70.0;
group{ G = 0.05; Erest = -70.0; tau_q = 50.0; kq = 0.02; }.param();
diff_q = ((Vm - Erest) - q)/tau_q;
Iion = G*(Vm - Erest) - kq*q;
|};
  }

let isac_hu =
  {
    name = "ISAC_Hu";
    cls = Small;
    fidelity = Structural;
    description =
      "Hu & Sachs stretch-activated channel. Deliberately calls costly \
       math (pow, exp) every evaluation and declares no lookup table — the \
       combination the paper credits for its outsized SVML speedup.";
    source =
      {|
# No .lookup() on purpose: all transcendentals evaluated per cell per step.
Vm; .external(); .nodal();
Iion; .external(); .nodal();
lambda_s; lambda_s_init = 1.0;
Vm_init = -78.0;
group{ g_sac = 0.08; E_sac = -1.0; K_sac = 100.0; alpha_sac = 3.0;
       gamma_sac = 0.6; lambda_set = 1.1; tau_lambda = 250.0; }.param();
diff_lambda_s = (lambda_set - lambda_s)/tau_lambda;
p_open = 1.0/(1.0 + K_sac*exp(-alpha_sac*(pow(lambda_s, gamma_sac) - 1.0)));
sat = exp(-square((Vm + 20.0)/60.0));
mod_v = 0.5*(1.0 + tanh((Vm + 30.0)/40.0));
Iion = g_sac*p_open*(1.0 + 0.5*sat)*(0.6 + 0.4*mod_v)*(Vm - E_sac);
|};
  }

let kch_cheng =
  {
    name = "KChCheng";
    cls = Small;
    fidelity = Structural;
    description =
      "Cheng-style single potassium channel: two-state Markov occupancy \
       integrated with the implicit markov_be method (clamped to [0,1]).";
    source =
      {|
Vm; .external(); .nodal();
Iion; .external(); .nodal();
o_k; o_k_init = 0.01;
Vm_init = -80.0;
group{ g_k = 0.12; E_k = -85.0; k_a0 = 0.02; k_b0 = 0.08;
       s_a = 0.04; s_b = 0.05; }.param();
alpha_o = k_a0*exp(s_a*(Vm + 30.0));
beta_o  = k_b0*exp(-s_b*(Vm + 30.0));
diff_o_k = alpha_o*(1.0 - o_k) - beta_o*o_k;
o_k; .method(markov_be);
Iion = g_k*o_k*(Vm - E_k);
|};
  }

let stress_lumens =
  {
    name = "StressLumens";
    cls = Small;
    fidelity = Structural;
    description =
      "Lumens 2009-style active-stress module: sarcomere contractility \
       driven by a voltage-gated activation sigmoid; outputs tension \
       alongside a small leak Iion.";
    source =
      {|
Vm; .external(); .nodal();
Iion; .external(); .nodal();
Tension; .external(); .nodal();
C_act; C_act_init = 0.0;
Ls; Ls_init = 1.9;
Vm_init = -80.0;
group{ tau_c = 40.0; tau_l = 150.0; Ls_ref = 2.0; sigma_act = 60.0;
       V_half = -30.0; k_act = 0.12; G_leak = 0.02; E_leak = -80.0; }.param();
act = 1.0/(1.0 + exp(-k_act*(Vm - V_half)));
diff_C_act = (act - C_act)/tau_c;
diff_Ls = (Ls_ref - Ls)/tau_l - 0.02*C_act;
Tension = sigma_act*C_act*max(Ls - 1.51, 0.0);
Iion = G_leak*(Vm - E_leak);
|};
  }

let entries : entry list =
  [
    aliev_panfilov;
    fitzhugh_nagumo;
    mitchell_schaeffer;
    fenton_karma;
    plonsey;
    isac_hu;
    kch_cheng;
    stress_lumens;
  ]
