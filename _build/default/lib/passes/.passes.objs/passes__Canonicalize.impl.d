lib/passes/canonicalize.ml: Array Float Func Hashtbl Ir List Op Pass Rewrite Value
