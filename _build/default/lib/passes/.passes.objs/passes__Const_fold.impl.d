lib/passes/const_fold.ml: Array Easyml Float Func Hashtbl Ir List Op Pass Ty Value
