lib/passes/cse.ml: Array Func Hashtbl Ir List Op Pass Rewrite Value
