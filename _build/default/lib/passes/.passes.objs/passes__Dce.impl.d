lib/passes/dce.ml: Array Func Hashtbl Ir List Op Option Pass Rewrite Value
