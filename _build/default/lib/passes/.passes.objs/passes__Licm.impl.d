lib/passes/licm.ml: Array Func Int Ir List Op Pass Set Value
