lib/passes/pass.ml: Ir List
