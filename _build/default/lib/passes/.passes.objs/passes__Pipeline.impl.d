lib/passes/pipeline.ml: Canonicalize Const_fold Cse Dce Ir Licm Pass
