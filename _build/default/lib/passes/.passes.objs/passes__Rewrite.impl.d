lib/passes/rewrite.ml: Array Hashtbl Ir List Op Option Value
