lib/passes/widen.ml: Array Builder Func Hashtbl Ir List Op Printf Ty Value
