lib/passes/widen.mli: Ir
