(** Canonicalization: local algebraic simplifications.

    IEEE-safe identities only: [x+0], [x-0], [x*1], [x/1], [--x],
    [select(const, a, b)], [broadcast] of identical value reuse, boolean
    [not(not x)].  ([x*0] is NOT folded: wrong for inf/NaN operands.) *)

open Ir

let run_func (fn : Func.func) : bool =
  let changed = ref false in
  let subst = Rewrite.create_subst () in
  (* defining op of each value, maintained during the walk *)
  let defs : (int, Op.op) Hashtbl.t = Hashtbl.create 64 in
  let def (v : Value.t) = Hashtbl.find_opt defs v.id in
  let is_constf (v : Value.t) (c : float) =
    match def v with
    | Some { Op.kind = Op.ConstF x; _ } -> Float.equal x c
    | _ -> false
  in
  (* x + broadcast(0) etc. also simplify: look through broadcasts of
     constants *)
  let rec const_of (v : Value.t) : float option =
    match def v with
    | Some { Op.kind = Op.ConstF x; _ } -> Some x
    | Some { Op.kind = Op.Broadcast; operands; _ } -> const_of operands.(0)
    | _ -> None
  in
  let is_c v c = is_constf v c || (match const_of v with Some x -> Float.equal x c | None -> false) in
  let rec go (r : Op.region) : unit =
    r.Op.r_ops <-
      List.filter_map
        (fun (o : Op.op) ->
          let o = Rewrite.map_operands (Rewrite.resolve subst) o in
          Array.iter go o.Op.regions;
          Array.iter (fun (res : Value.t) -> Hashtbl.replace defs res.id o) o.results;
          let replace_with (v : Value.t) =
            Rewrite.add_subst subst ~from:o.results.(0) ~to_:v;
            changed := true;
            None
          in
          match o.Op.kind with
          | Op.BinF Op.FAdd when is_c o.operands.(1) 0.0 ->
              replace_with o.operands.(0)
          | Op.BinF Op.FAdd when is_c o.operands.(0) 0.0 ->
              replace_with o.operands.(1)
          | Op.BinF Op.FSub when is_c o.operands.(1) 0.0 ->
              replace_with o.operands.(0)
          | Op.BinF Op.FMul when is_c o.operands.(1) 1.0 ->
              replace_with o.operands.(0)
          | Op.BinF Op.FMul when is_c o.operands.(0) 1.0 ->
              replace_with o.operands.(1)
          | Op.BinF Op.FDiv when is_c o.operands.(1) 1.0 ->
              replace_with o.operands.(0)
          | Op.NegF -> (
              match def o.operands.(0) with
              | Some { Op.kind = Op.NegF; operands = inner; _ } ->
                  replace_with inner.(0)
              | _ -> Some o)
          | Op.NotB -> (
              match def o.operands.(0) with
              | Some { Op.kind = Op.NotB; operands = inner; _ } ->
                  replace_with inner.(0)
              | _ -> Some o)
          | Op.Select -> (
              match def o.operands.(0) with
              | Some { Op.kind = Op.ConstB c; _ } ->
                  replace_with o.operands.(if c then 1 else 2)
              | _ ->
                  if Value.equal o.operands.(1) o.operands.(2) then
                    replace_with o.operands.(1)
                  else Some o)
          | Op.BinI Op.IMul -> (
              match def o.operands.(1) with
              | Some { Op.kind = Op.ConstI 1; _ } -> replace_with o.operands.(0)
              | _ -> (
                  match def o.operands.(0) with
                  | Some { Op.kind = Op.ConstI 1; _ } ->
                      replace_with o.operands.(1)
                  | _ -> Some o))
          | Op.BinI Op.IAdd -> (
              match def o.operands.(1) with
              | Some { Op.kind = Op.ConstI 0; _ } -> replace_with o.operands.(0)
              | _ -> (
                  match def o.operands.(0) with
                  | Some { Op.kind = Op.ConstI 0; _ } ->
                      replace_with o.operands.(1)
                  | _ -> Some o))
          | _ -> Some o)
        r.Op.r_ops
  in
  go fn.Func.f_body;
  !changed

let pass : Pass.t = { Pass.name = "canonicalize"; run = run_func }
