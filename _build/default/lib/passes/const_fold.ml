(** IR-level constant folding.

    Scalar pure ops whose operands are all known constants are replaced by
    [arith.constant] ops producing the same SSA value — no renumbering, so
    no substitution is needed.  Vector ops are left alone (the scalar
    constants they broadcast still fold).  Together with the AST-level
    preprocessor this implements the paper's §3.2 at both levels. *)

open Ir

type cv = CF of float | CI of int | CB of bool

let eval_op (o : Op.op) (cv_of : Value.t -> cv option) : cv option =
  let f k = match cv_of o.Op.operands.(k) with Some (CF x) -> Some x | _ -> None in
  let i k = match cv_of o.Op.operands.(k) with Some (CI x) -> Some x | _ -> None in
  let b k = match cv_of o.Op.operands.(k) with Some (CB x) -> Some x | _ -> None in
  let open Op in
  match o.Op.kind with
  | BinF kind -> (
      match (f 0, f 1) with
      | Some x, Some y ->
          let g =
            match kind with
            | FAdd -> ( +. )
            | FSub -> ( -. )
            | FMul -> ( *. )
            | FDiv -> ( /. )
            | FMin -> Float.min
            | FMax -> Float.max
            | FRem -> Float.rem
          in
          Some (CF (g x y))
      | _ -> None)
  | NegF -> ( match f 0 with Some x -> Some (CF (-.x)) | None -> None)
  | BinI kind -> (
      match (i 0, i 1) with
      | Some x, Some y -> (
          match kind with
          | IAdd -> Some (CI (x + y))
          | ISub -> Some (CI (x - y))
          | IMul -> Some (CI (x * y))
          | IDiv -> if y = 0 then None else Some (CI (x / y))
          | IRem -> if y = 0 then None else Some (CI (x mod y)))
      | _ -> None)
  | BinB kind -> (
      match (b 0, b 1) with
      | Some x, Some y ->
          Some
            (CB
               (match kind with
               | BAnd -> x && y
               | BOr -> x || y
               | BXor -> x <> y))
      | _ -> None)
  | NotB -> ( match b 0 with Some x -> Some (CB (not x)) | None -> None)
  | CmpF c -> (
      match (f 0, f 1) with
      | Some x, Some y ->
          let g =
            match c with
            | Lt -> ( < )
            | Le -> ( <= )
            | Gt -> ( > )
            | Ge -> ( >= )
            | Eq -> ( = )
            | Ne -> ( <> )
          in
          Some (CB (g x y))
      | _ -> None)
  | CmpI c -> (
      match (i 0, i 1) with
      | Some x, Some y ->
          let g : int -> int -> bool =
            match c with
            | Lt -> ( < )
            | Le -> ( <= )
            | Gt -> ( > )
            | Ge -> ( >= )
            | Eq -> ( = )
            | Ne -> ( <> )
          in
          Some (CB (g x y))
      | _ -> None)
  | Select -> (
      match b 0 with
      | Some c -> cv_of o.Op.operands.(if c then 1 else 2)
      | None -> None)
  | SIToFP -> ( match i 0 with Some x -> Some (CF (float_of_int x)) | None -> None)
  | FPToSI -> ( match f 0 with Some x -> Some (CI (int_of_float x)) | None -> None)
  | Math name -> (
      match Easyml.Builtins.find name with
      | None -> None
      | Some bi -> (
          let args =
            Array.init bi.arity (fun k ->
                match f k with Some x -> x | None -> Float.nan)
          in
          if Array.exists Float.is_nan args then None
          else
            match bi.eval args with
            | v when Float.is_finite v -> Some (CF v)
            | _ -> None))
  | _ -> None

let run_func (fn : Func.func) : bool =
  let consts : (int, cv) Hashtbl.t = Hashtbl.create 32 in
  let cv_of (v : Value.t) = Hashtbl.find_opt consts v.id in
  let changed = ref false in
  let rec go (r : Op.region) : unit =
    r.Op.r_ops <-
      List.map
        (fun (o : Op.op) ->
          Array.iter go o.Op.regions;
          match o.Op.kind with
          | Op.ConstF c ->
              Hashtbl.replace consts o.results.(0).id (CF c);
              o
          | Op.ConstI c ->
              Hashtbl.replace consts o.results.(0).id (CI c);
              o
          | Op.ConstB c ->
              Hashtbl.replace consts o.results.(0).id (CB c);
              o
          | _ when Array.length o.results = 1 && Ty.is_scalar o.results.(0).ty
            -> (
              match eval_op o cv_of with
              | Some cv ->
                  Hashtbl.replace consts o.results.(0).id cv;
                  changed := true;
                  let kind =
                    match cv with
                    | CF x -> Op.ConstF x
                    | CI x -> Op.ConstI x
                    | CB x -> Op.ConstB x
                  in
                  { o with Op.kind; operands = [||] }
              | None -> o)
          | _ -> o)
        r.Op.r_ops
  in
  go fn.Func.f_body;
  !changed

let pass : Pass.t = { Pass.name = "const-fold"; run = run_func }
