(** Common-subexpression elimination.

    The frontend inlines intermediate definitions into derivative
    expressions (so integrators can substitute the state variable), which
    duplicates rate expressions; CSE recovers the sharing, exactly the role
    the paper assigns to the in-tree MLIR CSE pass.

    Scope: pure, side-effect-free ops (constants, arith, math, broadcasts).
    Loads are not eliminated — stores may intervene.  Tables are scoped:
    expressions available in an enclosing region are reused inside nested
    regions, not vice versa. *)

open Ir

(* Structural key: op kind + resolved operand ids.  [Op.kind] is a plain
   variant (floats included) so polymorphic equality/hashing is fine. *)
type key = Op.kind * int list

let cse_able (o : Op.op) : bool =
  match o.Op.kind with
  | Op.ConstF _ | Op.ConstI _ | Op.ConstB _ | Op.BinF _ | Op.NegF | Op.BinI _
  | Op.BinB _ | Op.NotB | Op.CmpF _ | Op.CmpI _ | Op.Select | Op.SIToFP
  | Op.FPToSI | Op.Math _ | Op.Broadcast | Op.VecExtract _ | Op.Iota _ ->
      true
  | _ -> false

let run_func (f : Func.func) : bool =
  let changed = ref false in
  let subst = Rewrite.create_subst () in
  let rec go (avail : (key, Value.t array) Hashtbl.t) (r : Op.region) : unit =
    let ops' =
      List.filter_map
        (fun (o : Op.op) ->
          let o = Rewrite.map_operands (Rewrite.resolve subst) o in
          if Array.length o.Op.regions > 0 then begin
            (* nested regions see a scoped copy of the table *)
            Array.iter (fun reg -> go (Hashtbl.copy avail) reg) o.Op.regions;
            Some o
          end
          else if cse_able o then begin
            let key =
              ( o.Op.kind,
                Array.to_list o.operands |> List.map (fun (v : Value.t) -> v.id)
              )
            in
            match Hashtbl.find_opt avail key with
            | Some prior ->
                Array.iteri
                  (fun k res ->
                    Rewrite.add_subst subst ~from:res ~to_:prior.(k))
                  o.results;
                changed := true;
                None
            | None ->
                Hashtbl.replace avail key o.results;
                Some o
          end
          else Some o)
        r.Op.r_ops
    in
    r.Op.r_ops <- ops'
  in
  go (Hashtbl.create 64) f.Func.f_body;
  !changed

let pass : Pass.t = { Pass.name = "cse"; run = run_func }
