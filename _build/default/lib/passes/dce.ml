(** Dead-code elimination.

    Removes side-effect-free ops whose results are never used.  Loads count
    as removable (reading memory has no observable effect); stores, calls,
    allocs and structured control flow are kept.  Runs to a fixpoint so
    chains of dead ops disappear in one pass invocation. *)

open Ir

let removable (o : Op.op) : bool =
  match o.Op.kind with
  | Op.MemStore | Op.VecStore | Op.Scatter | Op.Call _ | Op.Return | Op.Yield
  | Op.Alloc | Op.For _ | Op.If ->
      false
  | Op.ConstF _ | Op.ConstI _ | Op.ConstB _ | Op.BinF _ | Op.NegF | Op.BinI _
  | Op.BinB _ | Op.NotB | Op.CmpF _ | Op.CmpI _ | Op.Select | Op.SIToFP
  | Op.FPToSI | Op.Math _ | Op.Broadcast | Op.VecExtract _ | Op.Iota _
  | Op.VecLoad | Op.MemLoad | Op.Gather ->
      true

let sweep_once (f : Func.func) : bool =
  let used = Rewrite.use_counts f.Func.f_body in
  let is_used (v : Value.t) =
    Option.value ~default:0 (Hashtbl.find_opt used v.id) > 0
  in
  let changed = ref false in
  let rec go (r : Op.region) : unit =
    let ops' =
      List.filter
        (fun (o : Op.op) ->
          Array.iter go o.Op.regions;
          if removable o && not (Array.exists is_used o.results) then begin
            changed := true;
            false
          end
          else true)
        r.Op.r_ops
    in
    r.Op.r_ops <- ops'
  in
  go f.Func.f_body;
  !changed

let run_func (f : Func.func) : bool =
  let changed = ref false in
  while sweep_once f do
    changed := true
  done;
  !changed

let pass : Pass.t = { Pass.name = "dce"; run = run_func }
