(** Loop-invariant code motion.

    Hoists pure ops whose operands are all defined outside an [scf.for]
    region to just before the loop.  In generated kernels this moves the
    constants, broadcasts of [dt]/[t]/parameters, and loop-invariant index
    arithmetic out of the per-cell loop, so the execution engine runs them
    once per kernel invocation instead of once per cell — the measurable
    analogue of the paper's in-tree LICM. *)

open Ir

let hoistable (o : Op.op) : bool =
  match o.Op.kind with
  | Op.ConstF _ | Op.ConstI _ | Op.ConstB _ | Op.BinF _ | Op.NegF | Op.BinI _
  | Op.BinB _ | Op.NotB | Op.CmpF _ | Op.CmpI _ | Op.Select | Op.SIToFP
  | Op.FPToSI | Op.Math _ | Op.Broadcast | Op.VecExtract _ | Op.Iota _ ->
      true
  | _ -> false (* loads stay put: a store in the loop may alias *)

module ISet = Set.Make (Int)

(* Hoist from one For op's body; returns hoisted ops (in order). *)
let hoist_from_loop (o : Op.op) : Op.op list =
  let region = o.Op.regions.(0) in
  (* values defined inside the region: block args + op results *)
  let inside = ref ISet.empty in
  List.iter
    (fun (a : Value.t) -> inside := ISet.add a.id !inside)
    region.Op.r_args;
  Op.iter_region
    (fun op ->
      Array.iter (fun (r : Value.t) -> inside := ISet.add r.id !inside) op.Op.results)
    region;
  let hoisted = ref [] in
  let rec fixpoint () =
    let moved = ref false in
    let keep =
      List.filter
        (fun (op : Op.op) ->
          if
            hoistable op
            && Array.for_all
                 (fun (v : Value.t) -> not (ISet.mem v.id !inside))
                 op.operands
          then begin
            hoisted := op :: !hoisted;
            Array.iter
              (fun (r : Value.t) -> inside := ISet.remove r.id !inside)
              op.results;
            moved := true;
            false
          end
          else true)
        region.Op.r_ops
    in
    region.Op.r_ops <- keep;
    if !moved then fixpoint ()
  in
  fixpoint ();
  List.rev !hoisted

let run_func (fn : Func.func) : bool =
  let changed = ref false in
  let rec go (r : Op.region) : unit =
    (* innermost loops first so inner-hoisted ops can hoist again *)
    List.iter (fun (o : Op.op) -> Array.iter go o.Op.regions) r.Op.r_ops;
    r.Op.r_ops <-
      List.concat_map
        (fun (o : Op.op) ->
          match o.Op.kind with
          | Op.For _ ->
              let hoisted = hoist_from_loop o in
              if hoisted <> [] then changed := true;
              hoisted @ [ o ]
          | _ -> [ o ])
        r.Op.r_ops
  in
  go fn.Func.f_body;
  !changed

let pass : Pass.t = { Pass.name = "licm"; run = run_func }
