(** Pass framework.

    Passes transform functions in place (regions carry mutable op lists;
    individual ops are immutable records, so rewrites build new op records
    sharing the original result values).  A pipeline runs passes in order
    and can be asked to verify after each step — used by the test suite to
    catch passes that break the IR. *)

type t = { name : string; run : Ir.Func.func -> bool }
(** [run] returns true when it changed anything. *)

let run_on_module (p : t) (m : Ir.Func.modl) : bool =
  List.fold_left (fun changed f -> p.run f || changed) false m.Ir.Func.m_funcs

type pipeline_options = { verify_each : bool }

let default_options = { verify_each = false }

exception Verification_failed of string * Ir.Verifier.error list

let run_pipeline ?(options = default_options) (passes : t list)
    (m : Ir.Func.modl) : unit =
  List.iter
    (fun p ->
      ignore (run_on_module p m);
      if options.verify_each then
        match Ir.Verifier.verify_module m with
        | [] -> ()
        | errs -> raise (Verification_failed (p.name, errs)))
    passes

(** Run a pass list to fixpoint (bounded, the bound only guards against a
    pass that oscillates). *)
let run_fixpoint ?(max_iters = 8) (passes : t list) (m : Ir.Func.modl) : unit =
  let rec go n =
    if n < max_iters then
      let changed =
        List.fold_left (fun c p -> run_on_module p m || c) false passes
      in
      if changed then go (n + 1)
  in
  go 0
