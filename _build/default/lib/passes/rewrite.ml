(** Shared rewriting utilities for passes. *)

open Ir

(** New op with operands mapped through [f]; results and regions shared. *)
let map_operands (f : Value.t -> Value.t) (o : Op.op) : Op.op =
  { o with Op.operands = Array.map f o.operands }

(** A value substitution accumulated during a forward walk. Substitutions
    chase chains ([a -> b], [b -> c] resolves [a] to [c]). *)
type subst = (int, Value.t) Hashtbl.t

let create_subst () : subst = Hashtbl.create 32

let rec resolve (s : subst) (v : Value.t) : Value.t =
  match Hashtbl.find_opt s v.id with
  | Some v' when v'.Value.id <> v.id -> resolve s v'
  | _ -> v

let add_subst (s : subst) ~(from : Value.t) ~(to_ : Value.t) : unit =
  Hashtbl.replace s from.id to_

(** Apply a function to every region op list, innermost first, rebuilding
    each region's op list.  [f] receives the ops of one region and returns
    the new list. *)
let rec map_region_ops (f : Op.region -> Op.op list -> Op.op list)
    (r : Op.region) : unit =
  List.iter
    (fun (o : Op.op) -> Array.iter (map_region_ops f) o.Op.regions)
    r.Op.r_ops;
  r.Op.r_ops <- f r r.Op.r_ops

(** All values used by an op (operands only; region internals counted
    separately by walking the nested ops). *)
let uses (o : Op.op) : Value.t array = o.Op.operands

(** Count value uses across a whole function body, including nested
    regions. *)
let use_counts (fbody : Op.region) : (int, int) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Op.iter_region
    (fun o ->
      Array.iter
        (fun (v : Value.t) ->
          Hashtbl.replace tbl v.id
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v.id)))
        o.Op.operands)
    fbody;
  tbl
