(** Function widening: scalar → vector lifting.

    The paper's generator emits vector code directly (vectorization as an
    *intrinsic* property, §3.3); this pass provides the complementary
    direction — lifting a straight-line scalar function to a given vector
    width — primarily as a differential-testing oracle: for any scalar
    function the engine must produce, lane by lane, the same results
    through the widened version.

    Scope: functions whose body is straight-line (no regions) over scalar
    f64/i64/i1 values; memory ops are out of scope (their widening is the
    code generator's job, where layout information lives). *)

open Ir

exception Not_widenable of string

let widen_ty (w : int) (t : Ty.t) : Ty.t =
  match t with
  | Ty.F64 | Ty.I64 | Ty.I1 -> Ty.vec w t
  | Ty.Vec _ -> raise (Not_widenable "function already vectorized")
  | Ty.Memref -> raise (Not_widenable "memref parameters are not widenable")

(** [widen ~w f] is a new function [f_vec<w>] computing [w] independent
    instances of [f] per invocation.
    @raise Not_widenable for control flow, calls or memory ops. *)
let widen ~(w : int) (f : Func.func) : Func.func =
  if w < 2 then invalid_arg "Widen.widen: width must be >= 2";
  let ctx = Builder.create_ctx () in
  let params = List.map (fun (v : Value.t) -> widen_ty w v.ty) f.Func.f_params in
  let results = List.map (widen_ty w) f.f_results in
  Builder.func ctx
    ~name:(Printf.sprintf "%s_vec%d" f.Func.f_name w)
    ~params ~results
    (fun b args ->
      (* original value -> widened value *)
      let map : (int, Value.t) Hashtbl.t = Hashtbl.create 64 in
      List.iter2
        (fun (old : Value.t) nv -> Hashtbl.replace map old.id nv)
        f.f_params args;
      let get (v : Value.t) =
        match Hashtbl.find_opt map v.id with
        | Some nv -> nv
        | None -> raise (Not_widenable "use of a value outside the body")
      in
      let out = ref [] in
      List.iter
        (fun (o : Op.op) ->
          if Array.length o.Op.regions > 0 then
            raise (Not_widenable "control flow is not widenable");
          let bind1 kind operands rty =
            let res = Builder.emit b kind operands [ rty ] in
            Hashtbl.replace map o.results.(0).id (List.hd res)
          in
          match o.Op.kind with
          | Op.ConstF c ->
              bind1 (Op.ConstF c) [] Ty.F64;
              (* broadcast immediately so downstream ops see vectors *)
              let scalar = Hashtbl.find map o.results.(0).id in
              Hashtbl.replace map o.results.(0).id
                (Builder.broadcast b ~width:w scalar)
          | Op.ConstI c ->
              bind1 (Op.ConstI c) [] Ty.I64;
              let scalar = Hashtbl.find map o.results.(0).id in
              Hashtbl.replace map o.results.(0).id
                (Builder.broadcast b ~width:w scalar)
          | Op.ConstB c ->
              bind1 (Op.ConstB c) [] Ty.I1;
              let scalar = Hashtbl.find map o.results.(0).id in
              Hashtbl.replace map o.results.(0).id
                (Builder.broadcast b ~width:w scalar)
          | Op.BinF k ->
              let x = get o.operands.(0) and y = get o.operands.(1) in
              bind1 (Op.BinF k) [ x; y ] x.ty
          | Op.NegF ->
              let x = get o.operands.(0) in
              bind1 Op.NegF [ x ] x.ty
          | Op.BinI k ->
              let x = get o.operands.(0) and y = get o.operands.(1) in
              bind1 (Op.BinI k) [ x; y ] x.ty
          | Op.BinB k ->
              let x = get o.operands.(0) and y = get o.operands.(1) in
              bind1 (Op.BinB k) [ x; y ] x.ty
          | Op.NotB ->
              let x = get o.operands.(0) in
              bind1 Op.NotB [ x ] x.ty
          | Op.CmpF c ->
              let x = get o.operands.(0) and y = get o.operands.(1) in
              bind1 (Op.CmpF c) [ x; y ] (Ty.like ~like:x.ty Ty.I1)
          | Op.CmpI c ->
              let x = get o.operands.(0) and y = get o.operands.(1) in
              bind1 (Op.CmpI c) [ x; y ] (Ty.like ~like:x.ty Ty.I1)
          | Op.Select ->
              let c = get o.operands.(0)
              and x = get o.operands.(1)
              and y = get o.operands.(2) in
              bind1 Op.Select [ c; x; y ] x.ty
          | Op.SIToFP ->
              let x = get o.operands.(0) in
              bind1 Op.SIToFP [ x ] (Ty.like ~like:x.ty Ty.F64)
          | Op.FPToSI ->
              let x = get o.operands.(0) in
              bind1 Op.FPToSI [ x ] (Ty.like ~like:x.ty Ty.I64)
          | Op.Math name ->
              let ops = Array.to_list (Array.map get o.operands) in
              bind1 (Op.Math name) ops (List.hd ops).ty
          | Op.Return -> out := Array.to_list (Array.map get o.operands)
          | Op.Yield | Op.For _ | Op.If ->
              raise (Not_widenable "control flow is not widenable")
          | Op.Call _ -> raise (Not_widenable "calls are not widenable")
          | Op.Broadcast | Op.VecExtract _ | Op.Iota _ ->
              raise (Not_widenable "function already uses vector ops")
          | Op.VecLoad | Op.VecStore | Op.Gather | Op.Scatter | Op.Alloc
          | Op.MemLoad | Op.MemStore ->
              raise (Not_widenable "memory ops are not widenable"))
        f.f_body.Op.r_ops;
      Builder.ret b !out)

