(** Scalar → vector function lifting, the differential-testing complement
    of the generator's intrinsic vectorization: for any straight-line
    scalar function, the widened version must produce the same results
    lane by lane. *)

exception Not_widenable of string

val widen : w:int -> Ir.Func.func -> Ir.Func.func
(** [widen ~w f] computes [w] independent instances of [f] per invocation.
    @raise Not_widenable for control flow, calls, memory ops or functions
    that already use vectors.
    @raise Invalid_argument when [w < 2]. *)
