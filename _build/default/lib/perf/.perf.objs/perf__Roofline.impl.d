lib/perf/roofline.ml: Float Fmt List
