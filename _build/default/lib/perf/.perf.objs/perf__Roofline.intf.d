lib/perf/roofline.mli: Format
