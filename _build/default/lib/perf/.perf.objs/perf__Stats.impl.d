lib/perf/stats.ml: Float List
