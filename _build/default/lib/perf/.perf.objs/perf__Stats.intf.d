lib/perf/stats.mli:
