(** Roofline-model helpers (paper §4.5, Fig. 6). *)

type point = {
  label : string;
  oi : float;  (** operational intensity, flops/byte *)
  gflops : float;  (** achieved performance *)
  cls : string;  (** small / medium / large *)
}

type ceilings = { peak_gflops : float; dram_bw : float; l1_bw : float }

(** Attainable performance at a given operational intensity. *)
let attainable (c : ceilings) ~(oi : float) : float =
  Float.min c.peak_gflops (oi *. c.dram_bw)

(** Is the point memory-bound under these ceilings (left of the ridge)? *)
let memory_bound (c : ceilings) ~(oi : float) : bool =
  oi *. c.dram_bw < c.peak_gflops

let ridge (c : ceilings) : float = c.peak_gflops /. c.dram_bw

(** Render an ASCII table of roofline points, sorted by intensity. *)
let pp_points ppf (points : point list) =
  let sorted = List.sort (fun a b -> compare a.oi b.oi) points in
  Fmt.pf ppf "%-28s %8s %12s %8s@." "model" "OI(F/B)" "GFlops/s" "class";
  List.iter
    (fun p -> Fmt.pf ppf "%-28s %8.3f %12.2f %8s@." p.label p.oi p.gflops p.cls)
    sorted
