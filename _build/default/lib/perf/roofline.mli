(** Roofline-model helpers (paper §4.5, Fig. 6). *)

type point = {
  label : string;
  oi : float;  (** operational intensity, flops/byte *)
  gflops : float;
  cls : string;
}

type ceilings = { peak_gflops : float; dram_bw : float; l1_bw : float }

val attainable : ceilings -> oi:float -> float
(** min(peak, oi × bandwidth): the roofline itself. *)

val memory_bound : ceilings -> oi:float -> bool
(** True left of the ridge point. *)

val ridge : ceilings -> float
(** Operational intensity at which compute and bandwidth limits meet. *)

val pp_points : Format.formatter -> point list -> unit
(** Table of points sorted by intensity. *)
