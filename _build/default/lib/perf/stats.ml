(** Statistics helpers used by the benchmark harness.

    The paper's protocol (§4): run five times, drop the two extrema,
    average the remaining three; aggregate speedups with the geometric
    mean. *)

let geomean (xs : float list) : float =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty"
  | _ ->
      let n = float_of_int (List.length xs) in
      Float.exp (List.fold_left (fun acc x -> acc +. Float.log x) 0.0 xs /. n)

(** Drop min and max, average the rest (the paper's 5-run protocol). *)
let trimmed_mean (xs : float list) : float =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.trimmed_mean: empty"
  | [ x ] -> x
  | [ a; b ] -> (a +. b) /. 2.0
  | sorted ->
      let n = List.length sorted in
      let inner = List.filteri (fun i _ -> i > 0 && i < n - 1) sorted in
      List.fold_left ( +. ) 0.0 inner /. float_of_int (List.length inner)

let mean (xs : float list) : float =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let min_max (xs : float list) : float * float =
  match xs with
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest
