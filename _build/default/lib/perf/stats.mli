(** Statistics helpers for the benchmark harness. *)

val geomean : float list -> float
(** Geometric mean. @raise Invalid_argument on the empty list. *)

val trimmed_mean : float list -> float
(** Drop the minimum and maximum, average the rest — the paper's
    run-5-drop-extrema-average-3 protocol. *)

val mean : float list -> float
val min_max : float list -> float * float
