lib/runtime/layout.ml: Printf String
