lib/runtime/layout.mli:
