lib/runtime/lut.ml: Array Exec Float Func Ir Ty
