lib/runtime/lut.mli: Exec Ir
