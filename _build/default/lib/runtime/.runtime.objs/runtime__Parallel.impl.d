lib/runtime/parallel.ml: Domain List
