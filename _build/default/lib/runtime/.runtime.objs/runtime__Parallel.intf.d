lib/runtime/parallel.mli:
