lib/runtime/svml.ml: Exec Float Int64
