lib/runtime/svml.mli: Exec
