(** Cell-state data layouts (paper §3.4.1).

    The private per-cell state of an ionic model is a record of [nvars]
    doubles per cell.  openCARP stores it as an array of structures (AoS);
    limpetMLIR's data-layout transformation rearranges it as an
    array-of-structures-of-arrays (AoSoA) with block size equal to the
    vector width, so that lane [l] of a vector holding state variable [k]
    for cells [c..c+w-1] sits at consecutive addresses — turning
    gather/scatter into plain vector loads/stores and fixing TLB/cache
    behaviour.  SoA is included for completeness and ablations. *)

type t =
  | AoS  (** cell-major: [cell*nvars + var] *)
  | SoA  (** variable-major: [var*ncells + cell] *)
  | AoSoA of int  (** blocked with block size [w] *)

let name = function
  | AoS -> "aos"
  | SoA -> "soa"
  | AoSoA w -> Printf.sprintf "aosoa%d" w

let of_string (s : string) : t option =
  match s with
  | "aos" -> Some AoS
  | "soa" -> Some SoA
  | _ ->
      if String.length s > 5 && String.sub s 0 5 = "aosoa" then
        match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
        | Some w when w > 0 -> Some (AoSoA w)
        | _ -> None
      else None

(** Number of cells the buffer is padded to.  AoSoA pads the cell count up
    to a full block so vector loads never straddle the end. *)
let padded_cells (t : t) ~(ncells : int) : int =
  match t with
  | AoS | SoA -> ncells
  | AoSoA w -> (ncells + w - 1) / w * w

(** Buffer length in doubles. *)
let size (t : t) ~(nvars : int) ~(ncells : int) : int =
  nvars * padded_cells t ~ncells

(** Flat index of state variable [var] of cell [cell]. *)
let index (t : t) ~(nvars : int) ~(ncells : int) ~(cell : int) ~(var : int) :
    int =
  match t with
  | AoS -> (cell * nvars) + var
  | SoA -> (var * ncells) + cell
  | AoSoA w -> (cell / w * nvars * w) + (var * w) + (cell mod w)

(** Stride between the same variable of consecutive cells *within an aligned
    group*, used by the code generator to decide between contiguous vector
    accesses and gathers: 1 means cells are adjacent (vector.load applies),
    anything else requires a gather. *)
let cell_stride (t : t) ~(nvars : int) : int =
  match t with AoS -> nvars | SoA -> 1 | AoSoA _ -> 1

(** True when a width-[w] vector starting at an aligned cell index is
    contiguous in memory. *)
let contiguous (t : t) ~(w : int) : bool =
  match t with
  | SoA -> true
  | AoSoA bw -> bw mod w = 0
  | AoS -> false
