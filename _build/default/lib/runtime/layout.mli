(** Cell-state data layouts (paper §3.4.1).

    AoS is openCARP's native storage; AoSoA is limpetMLIR's data-layout
    transformation (blocked by the vector width so lanes are contiguous);
    SoA is included for ablations. *)

type t =
  | AoS  (** cell-major: [cell*nvars + var] *)
  | SoA  (** variable-major: [var*ncells + cell] *)
  | AoSoA of int  (** blocked with block size [w] *)

val name : t -> string
val of_string : string -> t option
(** Parses ["aos"], ["soa"], ["aosoa<N>"]. *)

val padded_cells : t -> ncells:int -> int
(** Cell count after padding to full blocks (AoSoA only pads). *)

val size : t -> nvars:int -> ncells:int -> int
(** Buffer length in doubles. *)

val index : t -> nvars:int -> ncells:int -> cell:int -> var:int -> int
(** Flat index of a state variable of a cell. Bijective into [0, size). *)

val cell_stride : t -> nvars:int -> int
(** Distance between the same variable of consecutive cells within an
    aligned group; 1 means vector loads apply, otherwise gathers. *)

val contiguous : t -> w:int -> bool
(** True when a width-[w] vector starting at an aligned cell is contiguous. *)
