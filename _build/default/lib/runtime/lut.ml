(** Lookup-table runtime (paper §3.4.2).

    A table holds, for each grid point of the lookup variable in
    [lo, hi] with spacing [step], the value of every tabulated cone
    expression ("column").  Kernels call {!interp_row} (scalar) or
    {!interp_row_vec} (vectorized across lanes, the hand-vectorized
    [LUT_interpRow_n_elements_vec] of Listing 3) to linearly interpolate a
    whole row at once into a scratch row buffer.

    Storage is row-major: [data.(r * cols + c)].  The vector row buffer is
    column-major by lane: [row.(c * w + l)] so that the kernel reads a
    column as one contiguous [vector.load]. *)

type table = {
  lo : float;
  step : float;
  rows : int;
  cols : int;
  data : floatarray;
}

(** Build a table by evaluating [columns] at every grid point. *)
let build ~(lo : float) ~(hi : float) ~(step : float)
    (columns : (float -> float) array) : table =
  if step <= 0.0 || hi <= lo then invalid_arg "Lut.build: bad bounds";
  let rows = int_of_float (Float.round ((hi -. lo) /. step)) + 1 in
  let cols = Array.length columns in
  let data = Float.Array.make (max 1 (rows * cols)) 0.0 in
  for r = 0 to rows - 1 do
    let x = lo +. (float_of_int r *. step) in
    Array.iteri (fun c g -> Float.Array.set data ((r * cols) + c) (g x)) columns
  done;
  { lo; step; rows; cols; data }

(* Index and interpolation fraction for a lookup value, clamped to the
   table domain as openCARP does. *)
let locate (t : table) (x : float) : int * float =
  let pos = (x -. t.lo) /. t.step in
  if pos <= 0.0 then (0, 0.0)
  else if pos >= float_of_int (t.rows - 1) then (t.rows - 2, 1.0)
  else
    let idx = int_of_float (Float.floor pos) in
    (idx, pos -. float_of_int idx)

(** Interpolate all columns at [x] into [row.(0 .. cols-1)]. *)
let interp_row (t : table) (x : float) ~(row : floatarray) : unit =
  let idx, frac = locate t x in
  let base0 = idx * t.cols and base1 = (idx + 1) * t.cols in
  for c = 0 to t.cols - 1 do
    let v0 = Float.Array.get t.data (base0 + c)
    and v1 = Float.Array.get t.data (base1 + c) in
    Float.Array.set row c (v0 +. (frac *. (v1 -. v0)))
  done

(** Interpolate all columns for [w] lanes of [xs] into
    [row.(c*w + l)] (column-major by lane). *)
let interp_row_vec (t : table) (xs : floatarray) ~(row : floatarray) : unit =
  let w = Float.Array.length xs in
  for l = 0 to w - 1 do
    let idx, frac = locate t (Float.Array.get xs l) in
    let base0 = idx * t.cols and base1 = (idx + 1) * t.cols in
    for c = 0 to t.cols - 1 do
      let v0 = Float.Array.get t.data (base0 + c)
      and v1 = Float.Array.get t.data (base1 + c) in
      Float.Array.set row ((c * w) + l) (v0 +. (frac *. (v1 -. v0)))
    done
  done

(* ------------------------------------------------------------------ *)
(* Cubic (Catmull-Rom) interpolation — the paper's section 7 names an
   "efficient spline interpolation method" as future work; this implements
   it so the accuracy/cost trade-off can be measured.  Error is O(h^4)
   against the linear scheme's O(h^2) at roughly 4x the per-column
   arithmetic. *)
(* ------------------------------------------------------------------ *)

(* index and fraction such that interpolation uses rows idx-1..idx+2,
   clamped so all four rows exist *)
let locate_cubic (t : table) (x : float) : int * float =
  let pos = (x -. t.lo) /. t.step in
  let lo_i = 1.0 and hi_i = float_of_int (t.rows - 3) in
  if t.rows < 4 then locate t x
  else if pos <= lo_i then (1, Float.max (-1.0) (pos -. 1.0))
  else if pos >= hi_i then (t.rows - 3, Float.min 2.0 (pos -. float_of_int (t.rows - 3)))
  else
    let idx = int_of_float (Float.floor pos) in
    (idx, pos -. float_of_int idx)

let catmull_rom ~(p0 : float) ~(p1 : float) ~(p2 : float) ~(p3 : float)
    (u : float) : float =
  let a = (-0.5 *. p0) +. (1.5 *. p1) -. (1.5 *. p2) +. (0.5 *. p3) in
  let b = p0 -. (2.5 *. p1) +. (2.0 *. p2) -. (0.5 *. p3) in
  let c = (-0.5 *. p0) +. (0.5 *. p2) in
  p1 +. (u *. (c +. (u *. (b +. (u *. a)))))

(** Catmull-Rom interpolation of all columns at [x] into [row]. *)
let interp_row_cubic (t : table) (x : float) ~(row : floatarray) : unit =
  if t.rows < 4 then interp_row t x ~row
  else begin
    let idx, u = locate_cubic t x in
    let b0 = (idx - 1) * t.cols
    and b1 = idx * t.cols
    and b2 = (idx + 1) * t.cols
    and b3 = (idx + 2) * t.cols in
    for c = 0 to t.cols - 1 do
      Float.Array.set row c
        (catmull_rom
           ~p0:(Float.Array.get t.data (b0 + c))
           ~p1:(Float.Array.get t.data (b1 + c))
           ~p2:(Float.Array.get t.data (b2 + c))
           ~p3:(Float.Array.get t.data (b3 + c))
           u)
    done
  end

(** Vector cubic interpolation, column-major per lane like
    {!interp_row_vec}. *)
let interp_row_cubic_vec (t : table) (xs : floatarray) ~(row : floatarray) :
    unit =
  let w = Float.Array.length xs in
  if t.rows < 4 then interp_row_vec t xs ~row
  else
    for l = 0 to w - 1 do
      let idx, u = locate_cubic t (Float.Array.get xs l) in
      let b0 = (idx - 1) * t.cols
      and b1 = idx * t.cols
      and b2 = (idx + 1) * t.cols
      and b3 = (idx + 2) * t.cols in
      for c = 0 to t.cols - 1 do
        Float.Array.set row ((c * w) + l)
          (catmull_rom
             ~p0:(Float.Array.get t.data (b0 + c))
             ~p1:(Float.Array.get t.data (b1 + c))
             ~p2:(Float.Array.get t.data (b2 + c))
             ~p3:(Float.Array.get t.data (b3 + c))
             u)
      done
    done

(* ------------------------------------------------------------------ *)
(* Extern registration: entry points callable from generated IR         *)
(* ------------------------------------------------------------------ *)

(* The generated kernels pass the raw table buffer plus its geometry; we
   reconstruct a [table] view without copying. *)

let of_raw ~(data : floatarray) ~(lo : float) ~(step : float) ~(rows : int)
    ~(cols : int) : table =
  { lo; step; rows; cols; data }

(** [lut_interp(table, row, x, lo, step, rows, cols)]. *)
let extern_interp (args : Exec.Rt.v array) : Exec.Rt.v array =
  match args with
  | [| M data; M row; F x; F lo; F step; I rows; I cols |] ->
      interp_row (of_raw ~data ~lo ~step ~rows ~cols) x ~row;
      [||]
  | _ -> invalid_arg "lut_interp: bad arguments"

(** [lut_interp_vec(table, row, xs, lo, step, rows, cols)]. *)
let extern_interp_vec (args : Exec.Rt.v array) : Exec.Rt.v array =
  match args with
  | [| M data; M row; VF xs; F lo; F step; I rows; I cols |] ->
      interp_row_vec (of_raw ~data ~lo ~step ~rows ~cols) xs ~row;
      [||]
  | _ -> invalid_arg "lut_interp_vec: bad arguments"

(** [lut_interp_cubic(table, row, x, lo, step, rows, cols)]. *)
let extern_interp_cubic (args : Exec.Rt.v array) : Exec.Rt.v array =
  match args with
  | [| M data; M row; F x; F lo; F step; I rows; I cols |] ->
      interp_row_cubic (of_raw ~data ~lo ~step ~rows ~cols) x ~row;
      [||]
  | _ -> invalid_arg "lut_interp_cubic: bad arguments"

(** [lut_interp_cubic_vec(table, row, xs, lo, step, rows, cols)]. *)
let extern_interp_cubic_vec (args : Exec.Rt.v array) : Exec.Rt.v array =
  match args with
  | [| M data; M row; VF xs; F lo; F step; I rows; I cols |] ->
      interp_row_cubic_vec (of_raw ~data ~lo ~step ~rows ~cols) xs ~row;
      [||]
  | _ -> invalid_arg "lut_interp_cubic_vec: bad arguments"

let register (r : Exec.Rt.registry) : unit =
  Exec.Rt.register r "lut_interp" extern_interp;
  Exec.Rt.register r "lut_interp_vec" extern_interp_vec;
  Exec.Rt.register r "lut_interp_cubic" extern_interp_cubic;
  Exec.Rt.register r "lut_interp_cubic_vec" extern_interp_cubic_vec

(** Extern signatures for IR modules (scalar and vector variants). *)
let extern_sigs ~(width : int) : Ir.Func.extern_sig list =
  let open Ir in
  let scalar name =
    {
      Func.e_name = name;
      e_params = [ Ty.Memref; Ty.Memref; Ty.F64; Ty.F64; Ty.F64; Ty.I64; Ty.I64 ];
      e_results = [];
    }
  and vector name =
    {
      Func.e_name = name;
      e_params =
        [
          Ty.Memref;
          Ty.Memref;
          Ty.vec width Ty.F64;
          Ty.F64;
          Ty.F64;
          Ty.I64;
          Ty.I64;
        ];
      e_results = [];
    }
  in
  [
    scalar "lut_interp";
    vector "lut_interp_vec";
    scalar "lut_interp_cubic";
    vector "lut_interp_cubic_vec";
  ]
