(** Lookup-table runtime (paper §3.4.2): linear interpolation of
    precomputed cone columns, the hand-vectorized row interpolation of
    Listing 3, and the cubic (Catmull-Rom) variant of the paper's §7
    future work. *)

type table = {
  lo : float;
  step : float;
  rows : int;
  cols : int;
  data : floatarray;  (** row-major: [data.(r * cols + c)] *)
}

val build : lo:float -> hi:float -> step:float -> (float -> float) array -> table
(** Evaluate every column function on the grid.
    @raise Invalid_argument on bad bounds. *)

val locate : table -> float -> int * float
(** Row index and interpolation fraction, clamped to the table domain. *)

val interp_row : table -> float -> row:floatarray -> unit
(** Linear interpolation of all columns at one point into [row]. *)

val interp_row_vec : table -> floatarray -> row:floatarray -> unit
(** Linear interpolation for [w] lanes; [row.(c*w + l)] is column [c] of
    lane [l] (column-major so kernels read columns with one vector load). *)

val interp_row_cubic : table -> float -> row:floatarray -> unit
(** Catmull-Rom interpolation: O(h⁴) error at ~4× the arithmetic. *)

val interp_row_cubic_vec : table -> floatarray -> row:floatarray -> unit

val of_raw :
  data:floatarray -> lo:float -> step:float -> rows:int -> cols:int -> table
(** Zero-copy view over a raw buffer (the form generated kernels pass). *)

val register : Exec.Rt.registry -> unit
(** Register the [lut_interp*] extern entry points used by generated IR. *)

val extern_sigs : width:int -> Ir.Func.extern_sig list
(** IR-level signatures of those entry points at a vector width. *)
