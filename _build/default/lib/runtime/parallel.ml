(** Domain-based parallel-for with a static schedule.

    The OCaml 5 stand-in for the paper's
    [#pragma omp parallel for schedule(static)].  The iteration space is
    split into [nthreads] contiguous chunks; chunk [k] runs on domain [k]
    (chunk 0 on the calling domain).  With [nthreads = 1] no domain is
    spawned. *)

(** [chunks ~nthreads ~lo ~hi] returns the per-thread [(lo, hi)] ranges of a
    static schedule (balanced to within one iteration). *)
let chunks ~(nthreads : int) ~(lo : int) ~(hi : int) : (int * int) list =
  if nthreads <= 0 then invalid_arg "Parallel.chunks: nthreads must be > 0";
  let n = max 0 (hi - lo) in
  let base = n / nthreads and extra = n mod nthreads in
  let rec go k start acc =
    if k = nthreads then List.rev acc
    else
      let len = base + if k < extra then 1 else 0 in
      go (k + 1) (start + len) ((start, start + len) :: acc)
  in
  go 0 lo []

(** [parallel_for ~nthreads ~lo ~hi body] runs [body chunk_lo chunk_hi] for
    every chunk of the static schedule, concurrently on [nthreads] domains.
    [body] must only write to disjoint data per chunk. *)
let parallel_for ~(nthreads : int) ~(lo : int) ~(hi : int)
    (body : int -> int -> unit) : unit =
  match chunks ~nthreads ~lo ~hi with
  | [] -> ()
  | (l0, h0) :: rest ->
      let domains =
        List.filter_map
          (fun (l, h) ->
            if h > l then Some (Domain.spawn (fun () -> body l h)) else None)
          rest
      in
      if h0 > l0 then body l0 h0;
      List.iter Domain.join domains

(** Like {!parallel_for} but each chunk body produces a value; returns the
    values in chunk order. Used by reductions in the harness. *)
let parallel_map_chunks ~(nthreads : int) ~(lo : int) ~(hi : int)
    (body : int -> int -> 'a) : 'a list =
  match chunks ~nthreads ~lo ~hi with
  | [] -> []
  | (l0, h0) :: rest ->
      let domains =
        List.map (fun (l, h) -> Domain.spawn (fun () -> body l h)) rest
      in
      let first = body l0 h0 in
      first :: List.map Domain.join domains
