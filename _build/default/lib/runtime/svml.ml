(** SVML-style vectorized math kernels.

    The paper's vector speedups on math-heavy models come from Intel's
    Short Vector Math Library: one call evaluates a transcendental for a
    whole vector at polynomial-approximation accuracy instead of one libm
    call per lane.  This module is the OCaml substrate playing that role:
    branch-free, table-free implementations of exp/log/tanh over
    [floatarray] lanes, written the way a SIMD math library is written
    (range reduction + polynomial kernel), with accuracy guarantees the
    test suite checks against libm.

    The execution engine keeps bit-exact libm semantics by default (so
    scalar and vector kernels agree exactly — a property the tests rely
    on); {!use_in_registry} is available for experiments that want the
    faster approximate versions, mirroring the artifact's libsvml
    dependency. *)

(* ------------------------------------------------------------------ *)
(* exp: 2^k * 2^f with polynomial for 2^f on f in [-0.5, 0.5]          *)
(* ------------------------------------------------------------------ *)

let log2e = 1.4426950408889634
let ln2_hi = 6.93147180369123816490e-01
let ln2_lo = 1.90821492927058770002e-10

(* degree-10 polynomial for e^r on r in [-ln2/2, ln2/2]; the truncated
   Taylor series is within ~3e-13 on this range — comfortably below the
   1e-11 relative bound we advertise. *)
let exp_poly (r : float) : float =
  let c k = 1.0 /. float_of_int k in
  1.0
  +. r
     *. (1.0
        +. r
           *. (0.5
              +. r
                 *. (c 6
                    +. r
                       *. (c 24
                          +. r
                             *. (c 120
                                +. r
                                   *. (c 720
                                      +. r
                                         *. (c 5040
                                            +. r
                                               *. (c 40320
                                                  +. r
                                                     *. (c 362880
                                                        +. r *. c 3628800)))))))))

let exp_scalar (x : float) : float =
  if x <> x then Float.nan
  else if x > 709.0 then Float.infinity
  else if x < -745.0 then 0.0
  else
    let k = Float.round (x *. log2e) in
    let r = x -. (k *. ln2_hi) -. (k *. ln2_lo) in
    let p = exp_poly r in
    (* scale by 2^k through the exponent bits *)
    let ik = int_of_float k in
    p *. Int64.float_of_bits (Int64.shift_left (Int64.of_int (ik + 1023)) 52)

(** exp over all lanes: dst.(i) <- e^(src.(i)). *)
let exp_v ~(src : floatarray) ~(dst : floatarray) : unit =
  for i = 0 to Float.Array.length src - 1 do
    Float.Array.set dst i (exp_scalar (Float.Array.get src i))
  done

(* ------------------------------------------------------------------ *)
(* log: x = 2^k * m with m in [sqrt(2)/2, sqrt(2)); atanh series        *)
(* ------------------------------------------------------------------ *)

let log_scalar (x : float) : float =
  if x <> x || x < 0.0 then Float.nan
  else if x = 0.0 then Float.neg_infinity
  else if x = Float.infinity then Float.infinity
  else begin
    let bits = Int64.bits_of_float x in
    let k0 = Int64.to_int (Int64.shift_right_logical bits 52) land 0x7FF in
    (* subnormals: normalize first *)
    let x, k_bias = if k0 = 0 then (x *. 0x1p52, -52) else (x, 0) in
    let bits = Int64.bits_of_float x in
    let e = (Int64.to_int (Int64.shift_right_logical bits 52) land 0x7FF) - 1023 in
    let m =
      Int64.float_of_bits
        (Int64.logor
           (Int64.logand bits 0xFFFFFFFFFFFFFL)
           (Int64.shift_left 1023L 52))
    in
    (* keep m in [sqrt(1/2), sqrt(2)) for a small argument to the series *)
    let m, e = if m > 1.4142135623730951 then (m /. 2.0, e + 1) else (m, e) in
    let s = (m -. 1.0) /. (m +. 1.0) in
    let s2 = s *. s in
    (* log(m) = 2*atanh(s), odd series in s up to s^15 *)
    let series =
      1.0
      +. s2
         *. ((1.0 /. 3.0)
            +. s2
               *. ((1.0 /. 5.0)
                  +. s2
                     *. ((1.0 /. 7.0)
                        +. s2
                           *. ((1.0 /. 9.0)
                              +. s2
                                 *. ((1.0 /. 11.0)
                                    +. s2 *. ((1.0 /. 13.0) +. (s2 /. 15.0)))))))
    in
    let logm = 2.0 *. s *. series in
    let kf = float_of_int (e + k_bias) in
    (kf *. ln2_hi) +. (kf *. ln2_lo) +. logm
  end

(** natural log over all lanes. *)
let log_v ~(src : floatarray) ~(dst : floatarray) : unit =
  for i = 0 to Float.Array.length src - 1 do
    Float.Array.set dst i (log_scalar (Float.Array.get src i))
  done

(* ------------------------------------------------------------------ *)
(* tanh via exp: tanh(x) = 1 - 2/(e^{2x} + 1), odd symmetry            *)
(* ------------------------------------------------------------------ *)

let tanh_scalar (x : float) : float =
  if x <> x then Float.nan
  else
    let ax = Float.abs x in
    if ax > 20.0 then if x > 0.0 then 1.0 else -1.0
    else
      let t = 1.0 -. (2.0 /. (exp_scalar (2.0 *. ax) +. 1.0)) in
      if x >= 0.0 then t else -.t

let tanh_v ~(src : floatarray) ~(dst : floatarray) : unit =
  for i = 0 to Float.Array.length src - 1 do
    Float.Array.set dst i (tanh_scalar (Float.Array.get src i))
  done

(* pow through exp/log (what SVML's dv_pow does, modulo special cases) *)
let pow_scalar (x : float) (y : float) : float =
  if x = 0.0 then Float.pow x y
  else if x < 0.0 then
    if Float.is_integer y then
      let p = exp_scalar (y *. log_scalar (-.x)) in
      if Float.rem y 2.0 = 0.0 then p else -.p
    else Float.nan
  else exp_scalar (y *. log_scalar x)

let pow_v ~(x : floatarray) ~(y : floatarray) ~(dst : floatarray) : unit =
  for i = 0 to Float.Array.length x - 1 do
    Float.Array.set dst i (pow_scalar (Float.Array.get x i) (Float.Array.get y i))
  done

(** Relative-error budget of these kernels versus libm, on the ranges ionic
    models use (|x| ≤ 50 for exp, 1e-9..1e9 for log). Checked by tests. *)
let advertised_rel_error = 1e-11

(* ------------------------------------------------------------------ *)
(* Extern registration, for experiments wanting approximate vector math *)
(* ------------------------------------------------------------------ *)

let extern1 (f : float -> float) (args : Exec.Rt.v array) : Exec.Rt.v array =
  match args with
  | [| Exec.Rt.VF src |] ->
      let dst = Float.Array.create (Float.Array.length src) in
      Float.Array.iteri (fun i x -> Float.Array.set dst i (f x)) src;
      [| Exec.Rt.VF dst |]
  | [| Exec.Rt.F x |] -> [| Exec.Rt.F (f x) |]
  | _ -> invalid_arg "Svml extern: bad arguments"

(** Register svml_exp / svml_log / svml_tanh in an extern registry. *)
let use_in_registry (r : Exec.Rt.registry) : unit =
  Exec.Rt.register r "svml_exp" (extern1 exp_scalar);
  Exec.Rt.register r "svml_log" (extern1 log_scalar);
  Exec.Rt.register r "svml_tanh" (extern1 tanh_scalar)
