(** SVML-style vectorized math kernels (range reduction + polynomial),
    with accuracy bounds checked by the test suite.  The execution engine
    uses exact libm by default; these exist as the substrate standing in
    for Intel's libsvml and for experiments via {!use_in_registry}. *)

val exp_scalar : float -> float
val log_scalar : float -> float
val tanh_scalar : float -> float
val pow_scalar : float -> float -> float

val exp_v : src:floatarray -> dst:floatarray -> unit
val log_v : src:floatarray -> dst:floatarray -> unit
val tanh_v : src:floatarray -> dst:floatarray -> unit
val pow_v : x:floatarray -> y:floatarray -> dst:floatarray -> unit

val advertised_rel_error : float
(** Relative-error budget versus libm on the ranges ionic models use. *)

val use_in_registry : Exec.Rt.registry -> unit
(** Register [svml_exp]/[svml_log]/[svml_tanh] extern entry points. *)
