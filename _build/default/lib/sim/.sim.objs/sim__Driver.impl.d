lib/sim/driver.ml: Array Codegen Domain Easyml Engine Exec Float Fmt Interp Ir List Rt Runtime Stim Unix
