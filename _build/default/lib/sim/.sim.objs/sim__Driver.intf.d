lib/sim/driver.mli: Codegen Exec Stim
