lib/sim/stim.ml: Float
