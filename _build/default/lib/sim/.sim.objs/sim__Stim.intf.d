lib/sim/stim.mli:
