(** Stimulus protocols.

    openCARP's [bench] applies a transmembrane current pulse to elicit
    action potentials; we reproduce the same shape: a rectangular pulse of
    given amplitude, start, duration, and optional period (S1 pacing). *)

type t = {
  amplitude : float;  (** current amplitude (model units, e.g. uA/cm^2) *)
  start : float;  (** ms *)
  duration : float;  (** ms *)
  period : float option;  (** repeat every [period] ms when set *)
}

let none = { amplitude = 0.0; start = 0.0; duration = 0.0; period = None }

let default =
  { amplitude = 60.0; start = 1.0; duration = 2.0; period = Some 1000.0 }

let make ?(amplitude = 60.0) ?(start = 1.0) ?(duration = 2.0) ?period () =
  { amplitude; start; duration; period }

(** Stimulus current at time [t] (ms). *)
let at (s : t) (t : float) : float =
  if s.amplitude = 0.0 then 0.0
  else
    let phase =
      match s.period with
      | Some p when p > 0.0 && t >= s.start ->
          s.start +. Float.rem (t -. s.start) p
      | _ -> t
    in
    if phase >= s.start && phase < s.start +. s.duration then s.amplitude
    else 0.0
