lib/solver/cable.ml: Array Float Sparse Tridiag
