lib/solver/cable.mli: Sparse
