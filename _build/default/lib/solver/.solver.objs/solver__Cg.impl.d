lib/solver/cg.ml: Float Sparse
