lib/solver/cg.mli: Sparse
