lib/solver/sparse.ml: Array Float Hashtbl List Option
