lib/solver/sparse.mli:
