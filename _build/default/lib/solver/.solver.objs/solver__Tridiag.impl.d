lib/solver/tridiag.ml: Float
