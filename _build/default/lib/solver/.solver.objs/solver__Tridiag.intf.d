lib/solver/tridiag.mli:
