(** 1-D monodomain cable: the solver stage of the two-stage simulation.

    The compute stage (the generated ionic kernel) produces Iion per cell;
    this module advances the membrane potential of a 1-D fibre

      Cm dVm/dt = sigma d²Vm/dx² − Iion + Istim

    with a semi-implicit (IMEX) step: diffusion implicit, reaction explicit:

      (I − dt·D·L) Vm^{n+1} = Vm^n + dt (Istim − Iion)/Cm

    where L is the Neumann-boundary 1-D Laplacian and D = sigma/(Cm·dx²).
    The system is tridiagonal and solved directly (Thomas) or via CG for
    cross-validation. *)

type t = {
  n : int;
  dx : float;  (** spacing, cm *)
  sigma : float;  (** effective conductivity / (Cm·chi), cm²/ms *)
  cm : float;  (** membrane capacitance scale for the reaction term *)
  (* prefactored tridiagonal I - dt*D*L *)
  mutable dt : float;
  sub : floatarray;
  diag : floatarray;
  sup : floatarray;
}

let assemble (c : t) ~(dt : float) : unit =
  let lambda = dt *. c.sigma /. (c.dx *. c.dx) in
  for i = 0 to c.n - 1 do
    let left = i > 0 and right = i < c.n - 1 in
    let deg = (if left then 1.0 else 0.0) +. if right then 1.0 else 0.0 in
    Float.Array.set c.sub i (if left then -.lambda else 0.0);
    Float.Array.set c.sup i (if right then -.lambda else 0.0);
    Float.Array.set c.diag i (1.0 +. (lambda *. deg))
  done;
  c.dt <- dt

let create ~(n : int) ~(dx : float) ~(sigma : float) ~(cm : float)
    ~(dt : float) : t =
  if n <= 1 then invalid_arg "Cable.create: need at least two nodes";
  let c =
    {
      n;
      dx;
      sigma;
      cm;
      dt;
      sub = Float.Array.make n 0.0;
      diag = Float.Array.make n 0.0;
      sup = Float.Array.make n 0.0;
    }
  in
  assemble c ~dt;
  c

(** One IMEX step: updates [vm] in place given the ionic current [iion]
    (per cell) and a stimulus current applied to cells
    [stim_lo, stim_hi). *)
let step (c : t) ~(vm : floatarray) ~(iion : floatarray) ~(istim : float)
    ~(stim_lo : int) ~(stim_hi : int) : unit =
  let rhs =
    Float.Array.init c.n (fun i ->
        let stim = if i >= stim_lo && i < stim_hi then istim else 0.0 in
        Float.Array.get vm i
        +. (c.dt *. ((stim -. Float.Array.get iion i) /. c.cm)))
  in
  let x = Tridiag.solve ~a:c.sub ~b:c.diag ~c:c.sup ~d:rhs in
  Float.Array.blit x 0 vm 0 c.n

(** The same operator as a CSR matrix (for CG cross-validation). *)
let matrix (c : t) : Sparse.t =
  let triplets = ref [] in
  for i = 0 to c.n - 1 do
    triplets := (i, i, Float.Array.get c.diag i) :: !triplets;
    if i > 0 then triplets := (i, i - 1, Float.Array.get c.sub i) :: !triplets;
    if i < c.n - 1 then triplets := (i, i + 1, Float.Array.get c.sup i) :: !triplets
  done;
  Sparse.of_triplets ~n:c.n !triplets

(** Conduction-velocity helper for tests/examples: first time each cell
    crossed [threshold], given a per-step recorder. Returns cm/ms given
    activation times in ms. *)
let conduction_velocity ~(dx : float) (activation : float array) ~(from_cell : int)
    ~(to_cell : int) : float option =
  let ta = activation.(from_cell) and tb = activation.(to_cell) in
  if Float.is_finite ta && Float.is_finite tb && tb > ta then
    Some (float_of_int (to_cell - from_cell) *. dx /. (tb -. ta))
  else None
