(** 1-D monodomain cable: the solver stage of the two-stage simulation.

    Semi-implicit (IMEX) update of the membrane potential on a fibre:
    diffusion implicit (tridiagonal solve), reaction explicit. *)

type t = {
  n : int;
  dx : float;
  sigma : float;
  cm : float;
  mutable dt : float;
  sub : floatarray;
  diag : floatarray;
  sup : floatarray;
}

val create : n:int -> dx:float -> sigma:float -> cm:float -> dt:float -> t
(** A fibre of [n] nodes with spacing [dx] (cm), effective diffusivity
    [sigma] (cm²/ms) and capacitance scale [cm]; assembles [I - dt·D·L]
    with Neumann boundaries.
    @raise Invalid_argument when [n < 2]. *)

val assemble : t -> dt:float -> unit
(** Re-factor the operator for a new time step. *)

val step :
  t ->
  vm:floatarray ->
  iion:floatarray ->
  istim:float ->
  stim_lo:int ->
  stim_hi:int ->
  unit
(** One IMEX step, updating [vm] in place given the per-cell ionic current
    and a stimulus current applied to cells [stim_lo, stim_hi). *)

val matrix : t -> Sparse.t
(** The factored operator as CSR, for cross-validation with {!Cg}. *)

val conduction_velocity :
  dx:float -> float array -> from_cell:int -> to_cell:int -> float option
(** Velocity (cm/ms) between two cells given per-cell activation times
    (ms); [None] when either cell never activated. *)
