(** Conjugate-gradient solver with Jacobi preconditioning.

    The general-sparse counterpart to {!Tridiag} for the solver stage; used
    by the tissue example and tested against the direct solver on
    tridiagonal systems. *)

type stats = { iterations : int; residual : float }

let dot (a : floatarray) (b : floatarray) : float =
  let acc = ref 0.0 in
  for i = 0 to Float.Array.length a - 1 do
    acc := !acc +. (Float.Array.get a i *. Float.Array.get b i)
  done;
  !acc

let axpy ~(alpha : float) (x : floatarray) (y : floatarray) : unit =
  (* y <- y + alpha x *)
  for i = 0 to Float.Array.length y - 1 do
    Float.Array.set y i (Float.Array.get y i +. (alpha *. Float.Array.get x i))
  done

let solve ?(tol = 1e-10) ?(max_iters = 1000) (m : Sparse.t) (b : floatarray) :
    floatarray * stats =
  let n = m.Sparse.n in
  if Float.Array.length b <> n then invalid_arg "Cg.solve: length mismatch";
  let x = Float.Array.make n 0.0 in
  let r = Float.Array.copy b in
  let dinv =
    Float.Array.map
      (fun d -> if Float.abs d > 1e-300 then 1.0 /. d else 1.0)
      (Sparse.diagonal m)
  in
  let z = Float.Array.map2 ( *. ) dinv r in
  let p = Float.Array.copy z in
  let rz = ref (dot r z) in
  let bnorm = Float.max (Float.sqrt (dot b b)) 1e-300 in
  let iters = ref 0 in
  let res = ref (Float.sqrt (dot r r) /. bnorm) in
  (try
     while !res > tol && !iters < max_iters do
       let ap = Sparse.mul m p in
       let pap = dot p ap in
       if Float.abs pap < 1e-300 then raise Exit;
       let alpha = !rz /. pap in
       axpy ~alpha p x;
       axpy ~alpha:(-.alpha) ap r;
       let z = Float.Array.map2 ( *. ) dinv r in
       let rz' = dot r z in
       let beta = rz' /. !rz in
       rz := rz';
       for i = 0 to n - 1 do
         Float.Array.set p i (Float.Array.get z i +. (beta *. Float.Array.get p i))
       done;
       incr iters;
       res := Float.sqrt (dot r r) /. bnorm
     done
   with Exit -> ());
  (x, { iterations = !iters; residual = !res })
