(** Conjugate gradients with Jacobi preconditioning. *)

type stats = { iterations : int; residual : float }

val dot : floatarray -> floatarray -> float
val axpy : alpha:float -> floatarray -> floatarray -> unit
(** [axpy ~alpha x y] updates [y <- y + alpha x] in place. *)

val solve :
  ?tol:float -> ?max_iters:int -> Sparse.t -> floatarray -> floatarray * stats
(** Solve [A x = b] for symmetric positive-definite [A]; returns the
    solution and convergence statistics ([residual] is the relative
    2-norm residual at exit). *)
