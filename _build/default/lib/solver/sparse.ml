(** Compressed-sparse-row matrices.

    Minimal CSR support for the solver stage: construction from triplets,
    matrix-vector product, and diagonal extraction (Jacobi preconditioning
    in {!Cg}). *)

type t = {
  n : int;  (** square dimension *)
  row_ptr : int array;  (** length n+1 *)
  col_idx : int array;
  values : floatarray;
}

let of_triplets ~(n : int) (triplets : (int * int * float) list) : t =
  List.iter
    (fun (r, c, _) ->
      if r < 0 || r >= n || c < 0 || c >= n then
        invalid_arg "Sparse.of_triplets: index out of range")
    triplets;
  (* combine duplicates, sort by (row, col) *)
  let tbl = Hashtbl.create (List.length triplets) in
  List.iter
    (fun (r, c, v) ->
      let key = (r, c) in
      Hashtbl.replace tbl key
        (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl key)))
    triplets;
  let entries =
    Hashtbl.fold (fun (r, c) v acc -> (r, c, v) :: acc) tbl []
    |> List.sort compare
  in
  let nnz = List.length entries in
  let row_ptr = Array.make (n + 1) 0 in
  let col_idx = Array.make nnz 0 in
  let values = Float.Array.make (max 1 nnz) 0.0 in
  List.iteri
    (fun k (r, c, v) ->
      row_ptr.(r + 1) <- row_ptr.(r + 1) + 1;
      col_idx.(k) <- c;
      Float.Array.set values k v)
    entries;
  for r = 0 to n - 1 do
    row_ptr.(r + 1) <- row_ptr.(r + 1) + row_ptr.(r)
  done;
  { n; row_ptr; col_idx; values }

let nnz (m : t) = m.row_ptr.(m.n)

(** y = A x *)
let mul (m : t) (x : floatarray) : floatarray =
  if Float.Array.length x <> m.n then invalid_arg "Sparse.mul: length mismatch";
  Float.Array.init m.n (fun r ->
      let acc = ref 0.0 in
      for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
        acc :=
          !acc +. (Float.Array.get m.values k *. Float.Array.get x m.col_idx.(k))
      done;
      !acc)

let diagonal (m : t) : floatarray =
  Float.Array.init m.n (fun r ->
      let acc = ref 0.0 in
      for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
        if m.col_idx.(k) = r then acc := !acc +. Float.Array.get m.values k
      done;
      !acc)

(** Identity + alpha * A, as a new CSR matrix (used to assemble the
    semi-implicit cable operator I - dt·L). *)
let add_scaled_identity (m : t) ~(alpha : float) : t =
  let triplets = ref [] in
  for r = 0 to m.n - 1 do
    triplets := (r, r, 1.0) :: !triplets;
    for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
      triplets := (r, m.col_idx.(k), alpha *. Float.Array.get m.values k) :: !triplets
    done
  done;
  of_triplets ~n:m.n !triplets
