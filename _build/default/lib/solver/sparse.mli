(** Compressed-sparse-row matrices for the solver stage. *)

type t = {
  n : int;  (** square dimension *)
  row_ptr : int array;  (** length [n+1] *)
  col_idx : int array;
  values : floatarray;
}

val of_triplets : n:int -> (int * int * float) list -> t
(** Build from (row, col, value) triplets; duplicates are summed.
    @raise Invalid_argument on out-of-range indices. *)

val nnz : t -> int
val mul : t -> floatarray -> floatarray
(** [mul m x] is the matrix-vector product [m x]. *)

val diagonal : t -> floatarray
(** Row-wise diagonal entries (0 where absent). *)

val add_scaled_identity : t -> alpha:float -> t
(** [add_scaled_identity m ~alpha] is the CSR matrix [I + alpha m]. *)
