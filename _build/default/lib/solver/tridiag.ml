(** Tridiagonal solver (Thomas algorithm).

    Solves [A x = d] where A has sub-diagonal [a] (a.(0) unused), diagonal
    [b], super-diagonal [c] (c.(n-1) unused).  O(n); the workhorse of the
    semi-implicit 1-D cable solve. *)

exception Singular of int

let solve ~(a : floatarray) ~(b : floatarray) ~(c : floatarray)
    ~(d : floatarray) : floatarray =
  let n = Float.Array.length b in
  if
    Float.Array.length a <> n
    || Float.Array.length c <> n
    || Float.Array.length d <> n
  then invalid_arg "Tridiag.solve: length mismatch";
  if n = 0 then Float.Array.create 0
  else begin
    let cp = Float.Array.make n 0.0 and dp = Float.Array.make n 0.0 in
    let get = Float.Array.get and set = Float.Array.set in
    let b0 = get b 0 in
    if Float.abs b0 < 1e-300 then raise (Singular 0);
    set cp 0 (get c 0 /. b0);
    set dp 0 (get d 0 /. b0);
    for i = 1 to n - 1 do
      let m = get b i -. (get a i *. get cp (i - 1)) in
      if Float.abs m < 1e-300 then raise (Singular i);
      set cp i (get c i /. m);
      set dp i ((get d i -. (get a i *. get dp (i - 1))) /. m)
    done;
    let x = Float.Array.make n 0.0 in
    set x (n - 1) (get dp (n - 1));
    for i = n - 2 downto 0 do
      set x i (get dp i -. (get cp i *. get x (i + 1)))
    done;
    x
  end

(** Multiply the tridiagonal matrix by [x] (for tests / residuals). *)
let mul ~(a : floatarray) ~(b : floatarray) ~(c : floatarray)
    (x : floatarray) : floatarray =
  let n = Float.Array.length b in
  let get = Float.Array.get in
  Float.Array.init n (fun i ->
      (get b i *. get x i)
      +. (if i > 0 then get a i *. get x (i - 1) else 0.0)
      +. if i < n - 1 then get c i *. get x (i + 1) else 0.0)
