(** Tridiagonal direct solver (Thomas algorithm). *)

exception Singular of int
(** Raised with the row index when a pivot vanishes. *)

val solve :
  a:floatarray -> b:floatarray -> c:floatarray -> d:floatarray -> floatarray
(** [solve ~a ~b ~c ~d] solves the tridiagonal system with sub-diagonal [a]
    ([a.(0)] unused), diagonal [b], super-diagonal [c] ([c.(n-1)] unused)
    and right-hand side [d].  O(n).
    @raise Singular when elimination hits a zero pivot.
    @raise Invalid_argument on length mismatch. *)

val mul :
  a:floatarray -> b:floatarray -> c:floatarray -> floatarray -> floatarray
(** Multiply the tridiagonal matrix by a vector (residual checks). *)
