test/helpers.ml: Alcotest Easyml Float List QCheck QCheck_alcotest String
