test/test_analysis.ml: Alcotest Ast Deriv Easyml Eval Float Fold Helpers Linearity List Model Option Printf QCheck
