test/test_codegen.ml: Alcotest Buffer Codegen Easyml Float Helpers Ir Lazy List Printf Runtime Sim String
