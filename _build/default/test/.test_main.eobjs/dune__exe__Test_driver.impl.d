test/test_driver.ml: Alcotest Codegen Easyml Float Helpers Lazy List Models Sim
