test/test_engine.ml: Alcotest Array Builder Codegen Easyml Engine Exec Float Fun Func Helpers Interp Ir List Op QCheck Rt Ty Verifier
