test/test_frontend.ml: Alcotest Ast Easyml Eval Fold Helpers Lexer List Loc Model Option Parser Sema Token
