test/test_integrators.ml: Alcotest Ast Codegen Easyml Eval Float Helpers Linearity Model Printf QCheck
