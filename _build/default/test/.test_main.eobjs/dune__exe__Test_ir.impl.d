test/test_ir.ml: Alcotest Builder Codegen Easyml Exec Float Func Helpers Ir List Models Op Runtime Ty Verifier
