test/test_machine.ml: Alcotest Builder Codegen Float Func Helpers Ir List Machine Models Option Perf QCheck Ty
