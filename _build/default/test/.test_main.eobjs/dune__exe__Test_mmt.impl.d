test/test_mmt.ml: Alcotest Codegen Easyml Helpers List Models Sim
