test/test_models.ml: Alcotest Codegen Easyml Float Hashtbl Helpers Ir List Models Option Printf Sim
