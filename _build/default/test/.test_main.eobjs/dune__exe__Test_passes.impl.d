test/test_passes.ml: Alcotest Array Builder Codegen Easyml Engine Exec Float Fun Func Helpers Ir List Models Op Option Passes QCheck Rt Ty Verifier
