test/test_runtime.ml: Alcotest Array Float Fun Hashtbl Helpers Layout List Lut Parallel Printf QCheck Runtime Sim Svml
