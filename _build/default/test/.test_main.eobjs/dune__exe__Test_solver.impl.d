test/test_solver.ml: Alcotest Cable Cg Float Helpers List QCheck Solver Sparse Tridiag
