(* Shared helpers and generators for the test suite. *)

let fcheck = Alcotest.(check (float 1e-9))

(* Equality tolerant of NaN (NaN == NaN here) and signed zeros, used when
   comparing two evaluation paths that must agree exactly. *)
let same_float (a : float) (b : float) : bool =
  (Float.is_nan a && Float.is_nan b) || Float.equal a b

let close ?(tol = 1e-9) (a : float) (b : float) : bool =
  (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= tol *. (1.0 +. Float.max (Float.abs a) (Float.abs b))

let check_close ?tol msg a b =
  if not (close ?tol a b) then
    Alcotest.failf "%s: %.17g vs %.17g" msg a b

(* ------------------------------------------------------------------ *)
(* Random EasyML expressions                                           *)
(* ------------------------------------------------------------------ *)

(* Expressions over the given variables; function set restricted to total
   functions on all of R so random evaluation stays meaningful. *)
let expr_gen (vars : string list) : Easyml.Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let open Easyml.Ast in
  let leaf =
    oneof
      [
        map (fun f -> Num f) (float_bound_inclusive 4.0);
        map (fun f -> Num (-.f)) (float_bound_inclusive 4.0);
        map (fun v -> Var v) (oneofl vars);
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 3,
              map3
                (fun op a b -> Binary (op, a, b))
                (oneofl [ Add; Sub; Mul ])
                (self (depth - 1))
                (self (depth - 1)) );
            ( 1,
              map2 (fun a b -> Binary (Div, a, Binary (Add, Call ("fabs", [ b ]), Num 1.0)))
                (self (depth - 1))
                (self (depth - 1)) );
            (1, map (fun a -> Unary (Neg, a)) (self (depth - 1)));
            ( 1,
              map
                (fun a -> Call ("tanh", [ a ]))
                (self (depth - 1)) );
            ( 1,
              map
                (fun a -> Call ("square", [ a ]))
                (self (depth - 1)) );
            ( 1,
              map
                (fun a -> Call ("exp", [ Call ("tanh", [ a ]) ]))
                (self (depth - 1)) );
            ( 1,
              map3
                (fun c a b -> Ternary (Binary (Lt, c, Num 0.5), a, b))
                (self (depth - 1))
                (self (depth - 1))
                (self (depth - 1)) );
          ])
    3

let arbitrary_expr (vars : string list) : Easyml.Ast.expr QCheck.arbitrary =
  QCheck.make ~print:Easyml.Ast.expr_to_string (expr_gen vars)

(* A random environment binding each variable to a small float. *)
let env_gen (vars : string list) : (string * float) list QCheck.Gen.t =
  let open QCheck.Gen in
  let* vals =
    flatten_l (List.map (fun _ -> float_bound_inclusive 4.0) vars)
  in
  return (List.map2 (fun v x -> (v, x -. 2.0)) vars vals)

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* substring test without extra dependencies *)
let contains (s : string) (sub : string) : bool =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0
