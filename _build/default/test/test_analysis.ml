(* Analysis tests: constant folding, symbolic differentiation, affine
   (Rush-Larsen) extraction, lookup-table cone detection. *)

open Easyml

(* -- fold ------------------------------------------------------------ *)

let fold_preserves_eval =
  Helpers.qtest "fold preserves evaluation"
    QCheck.(
      pair (Helpers.arbitrary_expr [ "x"; "y" ])
        (make ~print:(fun (a, b) -> Printf.sprintf "(%g, %g)" a b)
           (Helpers.env_gen [ "x"; "y" ]
           |> QCheck.Gen.map (fun env ->
                  (List.assoc "x" env, List.assoc "y" env)))))
    (fun (e, (x, y)) ->
      let env = [ ("x", x); ("y", y) ] in
      let folded = Fold.fold_alist [] e in
      Helpers.same_float (Eval.eval_alist env e) (Eval.eval_alist env folded))

let fold_constants_disappear =
  Helpers.qtest "fully constant exprs fold to a literal"
    (Helpers.arbitrary_expr [ "x" ])
    (fun e ->
      let e = Ast.subst ~x:"x" ~by:(Ast.Num 0.5) e in
      match Fold.fold_alist [] e with
      | Ast.Num _ -> true
      | folded ->
          (* non-finite results are deliberately left unfolded *)
          not (Float.is_finite (Option.value ~default:Float.nan (Eval.eval_const folded))))

let test_fold_params () =
  let e = Easyml.Parser.parse_program "t = g * (x + 0.0) * 1.0 + (2.0 * 3.0);" in
  match e with
  | [ Ast.Assign (_, _, e) ] -> (
      match Fold.fold_alist [ ("g", 2.0) ] e with
      | Ast.Binary (Ast.Add, Ast.Binary (Ast.Mul, Ast.Num 2.0, Ast.Var "x"), Ast.Num 6.0)
        ->
          ()
      | other -> Alcotest.failf "unexpected fold result: %s" (Ast.expr_to_string other))
  | _ -> assert false

let test_fold_ternary () =
  let tern c = Ast.Ternary (c, Ast.Num 1.0, Ast.Num 2.0) in
  (match Fold.fold_alist [] (tern (Ast.Num 1.0)) with
  | Ast.Num 1.0 -> ()
  | _ -> Alcotest.fail "true guard");
  (match Fold.fold_alist [] (tern (Ast.Num 0.0)) with
  | Ast.Num 2.0 -> ()
  | _ -> Alcotest.fail "false guard");
  (* equal branches collapse even with symbolic guard *)
  match
    Fold.fold_alist []
      (Ast.Ternary (Ast.Binary (Ast.Lt, Ast.Var "x", Ast.Num 0.0), Ast.Num 7.0, Ast.Num 7.0))
  with
  | Ast.Num 7.0 -> ()
  | _ -> Alcotest.fail "equal branches"

(* -- deriv ----------------------------------------------------------- *)

let deriv_matches_numeric =
  Helpers.qtest ~count:300 "symbolic derivative matches central differences"
    QCheck.(pair (Helpers.arbitrary_expr [ "x"; "k" ]) (QCheck.float_range (-1.5) 1.5))
    (fun (e, at) ->
      let env = [ ("x", at); ("k", 0.7) ] in
      match Deriv.diff ~wrt:"x" e with
      | exception Deriv.Not_differentiable _ -> true
      | de ->
          let sym = Eval.eval_alist env de in
          let num = Deriv.numeric ~wrt:"x" env e ~at ~h:1e-6 in
          (* skip points near kinks/overflow where finite differences lie *)
          (not (Float.is_finite sym))
          || (not (Float.is_finite num))
          || Float.abs num > 1e6
          || Float.abs (sym -. num) <= 1e-3 *. (1.0 +. Float.abs sym))

let test_deriv_chain () =
  let e = Ast.Call ("exp", [ Ast.Binary (Ast.Mul, Ast.Num 3.0, Ast.Var "x") ]) in
  let de = Deriv.diff ~wrt:"x" e in
  let v = Eval.eval_alist [ ("x", 0.2) ] de in
  Helpers.check_close ~tol:1e-12 "d exp(3x)" (3.0 *. Float.exp 0.6) v

let test_deriv_pow () =
  let e = Ast.Call ("pow", [ Ast.Var "x"; Ast.Num 3.0 ]) in
  let v = Eval.eval_alist [ ("x", 2.0) ] (Deriv.diff ~wrt:"x" e) in
  Helpers.check_close ~tol:1e-12 "d x^3" 12.0 v

(* -- linearity ------------------------------------------------------- *)

let parse1 src =
  match Easyml.Parser.parse_program ("t = " ^ src ^ ";") with
  | [ Ast.Assign (_, _, e) ] -> e
  | _ -> assert false

let test_affine_gate () =
  let f = parse1 "a*(1.0 - y) - b*y" in
  match Linearity.affine ~y:"y" f with
  | None -> Alcotest.fail "classic gate form must be affine"
  | Some dec ->
      let env = [ ("a", 0.3); ("b", 0.1); ("y", 0.45) ] in
      Helpers.check_close ~tol:1e-12 "decomposition residual" 0.0
        (Linearity.check_at dec ~y:"y" f env)

let test_affine_inf_tau () =
  let f = parse1 "(yinf - y)/tau" in
  match Linearity.affine ~y:"y" f with
  | None -> Alcotest.fail "(inf - y)/tau must be affine"
  | Some dec ->
      let env = [ ("yinf", 0.8); ("tau", 3.0); ("y", 0.2) ] in
      Helpers.check_close ~tol:1e-12 "residual" 0.0
        (Linearity.check_at dec ~y:"y" f env)

let test_affine_guarded_rates () =
  (* guards on other variables are fine *)
  let f = parse1 "((V >= -40.0) ? 0.0 : exp(V))*(1.0 - y) - 0.1*y" in
  Alcotest.(check bool) "guard on V allowed" true
    (Option.is_some (Linearity.affine ~y:"y" f))

let test_affine_rejections () =
  let reject src =
    Alcotest.(check bool)
      (Printf.sprintf "%s rejected" src)
      true
      (Option.is_none (Linearity.affine ~y:"y" (parse1 src)))
  in
  reject "y*y - 1.0";
  reject "exp(y) - y";
  reject "(y < 0.5) ? 1.0 : 0.0";
  (* y inside a guard *)
  reject "a/(y + 1.0)"

let affine_property =
  (* whenever extraction succeeds, f == a + b*y at random points *)
  Helpers.qtest ~count:300 "affine decomposition is exact when it succeeds"
    QCheck.(pair (Helpers.arbitrary_expr [ "y"; "v" ]) (QCheck.float_range (-2.0) 2.0))
    (fun (f, yv) ->
      match Linearity.affine ~y:"y" f with
      | None -> true
      | Some dec ->
          let env = [ ("y", yv); ("v", 0.3) ] in
          let r = Linearity.check_at dec ~y:"y" f env in
          (not (Float.is_finite r)) || r <= 1e-6 *. (1.0 +. Float.abs yv))

(* -- lut cones -------------------------------------------------------- *)

let spec = { Model.lut_var = "Vm"; lut_lo = -10.0; lut_hi = 10.0; lut_step = 0.5 }

let test_cone_detection () =
  let module LC = Easyml.Lut_cones in
  let e1 = parse1 "exp(Vm/8.0) * y" in
  let e2 = parse1 "1.0/(1.0 + exp(-(Vm+40.0)/10.0))" in
  let plan = LC.plan spec [ e1; e2 ] in
  Alcotest.(check int) "two cones" 2 (LC.n_columns plan);
  (* trivial pure subexpressions are not tabulated *)
  let plan2 = LC.plan spec [ parse1 "Vm + 47.0" ] in
  Alcotest.(check int) "trivial not tabulated" 0 (LC.n_columns plan2)

let test_cone_dedup () =
  let e = parse1 "exp(Vm) + exp(Vm) * 2.0" in
  let plan = Easyml.Lut_cones.plan spec [ e; e ] in
  Alcotest.(check int) "duplicates share a column" 1
    (Easyml.Lut_cones.n_columns plan)

let test_cone_rewrite_eval () =
  let module LC = Easyml.Lut_cones in
  let e = parse1 "exp(Vm/5.0)*(1.0 - y) + y/(1.0 + exp(Vm/3.0))" in
  let plan = LC.plan spec [ e ] in
  Alcotest.(check bool) "found cones" true (LC.n_columns plan > 0);
  let rewritten = LC.rewrite plan e in
  (* evaluating the rewritten expr with exact column values = original *)
  let vm = 1.75 and y = 0.3 in
  let env =
    [ ("Vm", vm); ("y", y); ("dt", 0.01) ]
    @ List.map
        (fun (c : LC.column) ->
          (LC.column_var spec c.LC.col_index, LC.eval_column ~dt:0.01 plan c vm))
        plan.LC.columns
  in
  Helpers.check_close ~tol:1e-12 "rewrite preserves value"
    (Eval.eval_alist [ ("Vm", vm); ("y", y); ("dt", 0.01) ] e)
    (Eval.eval_alist env rewritten)

let test_cone_dt_pure () =
  (* dt participates in table purity (Rush-Larsen coefficients) *)
  let module LC = Easyml.Lut_cones in
  let e = parse1 "exp(-dt*(1.0 + exp(Vm)))" in
  let plan = LC.plan spec [ e ] in
  Alcotest.(check int) "whole RL coefficient tabulated" 1 (LC.n_columns plan);
  match plan.LC.columns with
  | [ c ] -> Alcotest.(check bool) "cone is maximal" true (Ast.equal_expr c.col_expr e)
  | _ -> Alcotest.fail "expected one column"

let suite =
  [
    fold_preserves_eval;
    fold_constants_disappear;
    Alcotest.test_case "fold params + identities" `Quick test_fold_params;
    Alcotest.test_case "fold ternaries" `Quick test_fold_ternary;
    deriv_matches_numeric;
    Alcotest.test_case "chain rule" `Quick test_deriv_chain;
    Alcotest.test_case "pow rule" `Quick test_deriv_pow;
    Alcotest.test_case "affine: alpha/beta gate" `Quick test_affine_gate;
    Alcotest.test_case "affine: inf/tau gate" `Quick test_affine_inf_tau;
    Alcotest.test_case "affine: guards on V" `Quick test_affine_guarded_rates;
    Alcotest.test_case "affine: rejections" `Quick test_affine_rejections;
    affine_property;
    Alcotest.test_case "cone detection" `Quick test_cone_detection;
    Alcotest.test_case "cone dedup" `Quick test_cone_dedup;
    Alcotest.test_case "cone rewrite preserves value" `Quick test_cone_rewrite_eval;
    Alcotest.test_case "dt-pure cones" `Quick test_cone_dt_pure;
  ]
