(* Code-generation tests: every configuration of the generator must produce
   the same simulation results (vectorization, data layouts, parameter
   folding are all semantics-preserving), LUT approximation stays within
   tolerance, and the generated kernel matches an independent AST-level
   reference step. *)

module K = Codegen.Kernel
module C = Codegen.Config

let model_src =
  {|
Vm; .external(); .nodal(); .lookup(-100.0, 100.0, 0.05);
Iion; .external(); .nodal();
m; m_init = 0.05;
h; h_init = 0.6;
n; n_init = 0.32;
Cai; Cai_init = 0.0002;
Vm_init = -65.0;
group{ g_Na = 120.0; E_Na = 50.0; g_K = 36.0; E_K = -77.0;
       g_L = 0.3; E_L = -54.4; }.param();
a_m = (fabs(Vm + 40.0) < 1e-6) ? 1.0
      : 0.1*(Vm + 40.0)/(1.0 - exp(-(Vm + 40.0)/10.0));
b_m = 4.0*exp(-(Vm + 65.0)/18.0);
diff_m = a_m*(1.0 - m) - b_m*m;  m; .method(rush_larsen);
a_h = 0.07*exp(-(Vm + 65.0)/20.0);
b_h = 1.0/(1.0 + exp(-(Vm + 35.0)/10.0));
diff_h = a_h*(1.0 - h) - b_h*h;  h; .method(rk2);
a_n = (fabs(Vm + 55.0) < 1e-6) ? 0.1
      : 0.01*(Vm + 55.0)/(1.0 - exp(-(Vm + 55.0)/10.0));
b_n = 0.125*exp(-(Vm + 65.0)/80.0);
diff_n = a_n*(1.0 - n) - b_n*n;  n; .method(rk4);
I_Na = g_Na*cube(m)*h*(Vm - E_Na);
I_K = g_K*square(square(n))*(Vm - E_K);
I_L = g_L*(Vm - E_L);
diff_Cai = -0.0001*I_L + 0.07*(0.0002 - Cai);
Iion = I_Na + I_K + I_L;
|}

let the_model = lazy (Easyml.Sema.analyze_source ~name:"hhmix" model_src)

let run_config ?(steps = 120) (cfg : C.t) : (string * float) list =
  let options = { Easyml.Sema.fold_params = cfg.C.fold_params } in
  let m = Easyml.Sema.analyze_source ~options ~name:"hhmix" model_src in
  let g = K.generate cfg m in
  Ir.Verifier.verify_module_exn g.K.modl;
  let d = Sim.Driver.create g ~ncells:8 ~dt:0.01 in
  let stim = Sim.Stim.make ~amplitude:20.0 ~start:0.2 ~duration:0.5 () in
  for _ = 1 to steps do
    Sim.Driver.step ~stim d
  done;
  Sim.Driver.snapshot d 5 @ [ ("Vm", Sim.Driver.vm d 5) ]

let check_same ?(tol = 0.0) tag ref_snap snap =
  List.iter2
    (fun (name, a) (_, b) ->
      if tol = 0.0 then (
        if not (Helpers.same_float a b) then
          Alcotest.failf "%s: %s differs: %.17g vs %.17g" tag name a b)
      else Helpers.check_close ~tol (tag ^ ":" ^ name) a b)
    ref_snap snap

let test_widths_agree () =
  let reference = run_config C.baseline in
  List.iter
    (fun w -> check_same (Printf.sprintf "width %d" w) reference (run_config (C.mlir ~width:w)))
    [ 2; 4; 8 ]

let test_layouts_agree () =
  let reference = run_config C.baseline in
  List.iter
    (fun layout ->
      check_same
        (Runtime.Layout.name layout)
        reference
        (run_config { (C.mlir ~width:4) with layout }))
    [ Runtime.Layout.AoS; Runtime.Layout.SoA; Runtime.Layout.AoSoA 4;
      Runtime.Layout.AoSoA 8 ]

let test_param_folding_agrees () =
  let reference = run_config C.baseline in
  check_same "params as runtime loads" reference
    (run_config { C.baseline with fold_params = false });
  check_same "vector + runtime params" reference
    (run_config { (C.mlir ~width:8) with fold_params = false })

let test_autovec_agrees () =
  check_same "autovec profile" (run_config C.baseline)
    (run_config (C.autovec ~width:8))

let test_unoptimized_agrees () =
  let m = Lazy.force the_model in
  let run optimize =
    let g = K.generate ~optimize (C.mlir ~width:8) m in
    let d = Sim.Driver.create g ~ncells:4 ~dt:0.01 in
    for _ = 1 to 100 do
      Sim.Driver.step d
    done;
    Sim.Driver.snapshot d 1
  in
  check_same "passes preserve the kernel" (run false) (run true)

let test_lut_tolerance () =
  (* LUT interpolation introduces bounded error; with a 0.05 mV grid over
     smooth rates the trajectory stays close to the exact one *)
  let exact = run_config { C.baseline with use_lut = false } in
  let lut = run_config C.baseline in
  check_same ~tol:1e-3 "LUT approximation" exact lut

let test_lut_spline_tolerance () =
  (* cubic interpolation on a *coarser* table should still beat linear on
     the same coarse table *)
  let coarse src =
    (* widen the table step 0.05 -> 1.0 *)
    let b = Buffer.create (String.length src) in
    let i = ref 0 in
    let n = String.length src in
    while !i < n do
      if !i + 11 <= n && String.sub src !i 11 = "100.0, 0.05" then begin
        Buffer.add_string b "100.0, 1.0";
        i := !i + 11
      end
      else begin
        Buffer.add_char b src.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  let m_coarse = Easyml.Sema.analyze_source ~name:"hhmix" (coarse model_src) in
  let exact = run_config { C.baseline with use_lut = false } in
  let run cfg =
    let g = K.generate cfg m_coarse in
    let d = Sim.Driver.create g ~ncells:8 ~dt:0.01 in
    let stim = Sim.Stim.make ~amplitude:20.0 ~start:0.2 ~duration:0.5 () in
    for _ = 1 to 120 do
      Sim.Driver.step ~stim d
    done;
    Sim.Driver.snapshot d 5 @ [ ("Vm", Sim.Driver.vm d 5) ]
  in
  let err snap =
    List.fold_left2
      (fun acc (_, a) (_, b) -> Float.max acc (Float.abs (a -. b)))
      0.0 exact snap
  in
  let e_lin = err (run C.baseline) in
  let e_cub = err (run { C.baseline with lut_spline = true }) in
  Alcotest.(check bool)
    (Printf.sprintf "cubic beats linear on a coarse table (%.2e vs %.2e)" e_cub
       e_lin)
    true (e_cub < e_lin /. 4.0)

let test_lut_spline_vector_agrees () =
  let exact_scalar = run_config { C.baseline with lut_spline = true } in
  check_same "spline vector == spline scalar" exact_scalar
    (run_config { (C.mlir ~width:8) with lut_spline = true })

let test_lut_columns_exist () =
  let m = Lazy.force the_model in
  let g = K.generate C.baseline m in
  (match g.K.lut_plans with
  | [ plan ] ->
      Alcotest.(check bool) "several cones tabulated" true
        (Easyml.Lut_cones.n_columns plan >= 4)
  | _ -> Alcotest.fail "expected one lookup table");
  let g2 = K.generate { C.baseline with use_lut = false } m in
  Alcotest.(check int) "no tables when disabled" 0 (List.length g2.K.lut_plans)

let test_vector_ops_present () =
  let m = Lazy.force the_model in
  let g = K.generate (C.mlir ~width:8) m in
  let printed = Ir.Printer.module_to_string g.K.modl in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " emitted") true (Helpers.contains printed frag))
    [ "vector<8xf64>"; "vector.load"; "vector.store"; "lut_interp_vec"; "scf.parallel" ];
  (* AoSoA layout: no gathers needed *)
  Alcotest.(check bool) "no gather with AoSoA" false
    (Helpers.contains printed "vector.gather");
  let g_aos = K.generate { (C.mlir ~width:8) with layout = Runtime.Layout.AoS } m in
  Alcotest.(check bool) "gathers with AoS" true
    (Helpers.contains (Ir.Printer.module_to_string g_aos.K.modl) "vector.gather")

(* independent reference: step the analyzed model with the AST evaluator
   and compare against the generated scalar kernel without LUT *)
let test_against_ast_reference () =
  let m = Lazy.force the_model in
  let cfg = { C.baseline with use_lut = false } in
  let g = K.generate cfg m in
  let d = Sim.Driver.create g ~ncells:1 ~dt:0.01 in
  (* AST-level state *)
  let state =
    ref
      (List.map (fun (sv : Easyml.Model.state_var) -> (sv.sv_name, sv.sv_init)) m.states
      @ [ ("Vm", -65.0) ])
  in
  let stim_at t = if t >= 0.2 && t < 0.7 then 20.0 else 0.0 in
  let steps = 100 in
  let dt = 0.01 in
  let t = ref 0.0 in
  for _ = 1 to steps do
    (* compute stage at AST level *)
    let env0 = !state @ [ ("dt", dt); ("t", !t) ] in
    let env =
      List.fold_left
        (fun env (x, e) -> (x, Easyml.Eval.eval_alist env e) :: env)
        env0 m.assigns
    in
    let iion = List.assoc "Iion" env in
    let new_states =
      List.map
        (fun (sv : Easyml.Model.state_var) ->
          (sv.sv_name, Easyml.Eval.eval_alist env (Codegen.Integrators.update_expr sv)))
        m.states
    in
    let vm = List.assoc "Vm" !state in
    let vm' = vm +. (dt *. (stim_at !t -. iion)) in
    state := new_states @ [ ("Vm", vm') ];
    (* engine step *)
    Sim.Driver.step ~stim:(Sim.Stim.make ~amplitude:20.0 ~start:0.2 ~duration:0.5 ()) d;
    t := !t +. dt
  done;
  List.iter
    (fun (sv : Easyml.Model.state_var) ->
      Helpers.check_close ~tol:1e-9
        ("reference " ^ sv.sv_name)
        (List.assoc sv.sv_name !state)
        (Sim.Driver.state d sv.sv_name 0))
    m.states;
  Helpers.check_close ~tol:1e-9 "reference Vm" (List.assoc "Vm" !state)
    (Sim.Driver.vm d 0)

let test_multithread_agrees () =
  let m = Lazy.force the_model in
  let g = K.generate (C.mlir ~width:4) m in
  let run nthreads =
    let d = Sim.Driver.create g ~ncells:64 ~dt:0.01 in
    let stim = Sim.Stim.make ~amplitude:20.0 ~start:0.2 ~duration:0.5 () in
    for _ = 1 to 60 do
      Sim.Driver.step ~nthreads ~stim d
    done;
    List.init 64 (fun c -> Sim.Driver.vm d c)
  in
  let s1 = run 1 and s4 = run 4 in
  List.iteri
    (fun c (a, b) ->
      if not (Helpers.same_float a b) then
        Alcotest.failf "cell %d differs across thread counts" c)
    (List.combine s1 s4)

let test_reference_engine_agrees () =
  let m = Lazy.force the_model in
  let g = K.generate (C.mlir ~width:2) m in
  let run engine =
    let d = Sim.Driver.create ~engine g ~ncells:4 ~dt:0.01 in
    for _ = 1 to 25 do
      Sim.Driver.step d
    done;
    Sim.Driver.snapshot d 2
  in
  check_same "interpreter == engine on a kernel" (run Sim.Driver.Compiled)
    (run Sim.Driver.Reference)

let suite =
  [
    Alcotest.test_case "widths 2/4/8 == scalar" `Quick test_widths_agree;
    Alcotest.test_case "layouts agree" `Quick test_layouts_agree;
    Alcotest.test_case "param folding agrees" `Quick test_param_folding_agrees;
    Alcotest.test_case "autovec agrees" `Quick test_autovec_agrees;
    Alcotest.test_case "optimization preserves kernel" `Quick
      test_unoptimized_agrees;
    Alcotest.test_case "LUT within tolerance" `Quick test_lut_tolerance;
    Alcotest.test_case "LUT planning" `Quick test_lut_columns_exist;
    Alcotest.test_case "spline LUT beats linear on coarse tables" `Quick
      test_lut_spline_tolerance;
    Alcotest.test_case "spline scalar == spline vector" `Quick
      test_lut_spline_vector_agrees;
    Alcotest.test_case "vector ops emitted" `Quick test_vector_ops_present;
    Alcotest.test_case "matches AST-level reference" `Quick
      test_against_ast_reference;
    Alcotest.test_case "thread counts agree" `Quick test_multithread_agrees;
    Alcotest.test_case "reference engine agrees" `Quick
      test_reference_engine_agrees;
  ]
