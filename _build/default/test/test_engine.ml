(* Execution-engine tests: the closure compiler against the reference
   interpreter, the AST evaluator, and hand-computed results. *)

open Ir
open Exec

let ctx () = Builder.create_ctx ()
let modl name = Func.create_module name

(* Lower a random EasyML expression over (x, y) into a scalar function
   f(x, y) = e and into a width-w vector function, so that the engine, the
   interpreter and the AST evaluator can be compared on the same program. *)
let lower_scalar (e : Easyml.Ast.expr) : Func.modl =
  let m = modl "scalar" in
  let c = ctx () in
  let f =
    Builder.func c ~name:"f" ~params:[ Ty.F64; Ty.F64 ] ~results:[ Ty.F64 ]
      (fun b args ->
        let env =
          Codegen.Lower.make_env ~b ~width:1
            [ ("x", List.nth args 0); ("y", List.nth args 1) ]
        in
        Builder.ret b [ Codegen.Lower.lower_num env e ])
  in
  Func.add_func m f;
  m

let lower_vector ~(w : int) (e : Easyml.Ast.expr) : Func.modl =
  let m = modl "vector" in
  let c = ctx () in
  let f =
    Builder.func c ~name:"f"
      ~params:[ Ty.vec w Ty.F64; Ty.vec w Ty.F64 ]
      ~results:[ Ty.vec w Ty.F64 ]
      (fun b args ->
        let env =
          Codegen.Lower.make_env ~b ~width:w
            [ ("x", List.nth args 0); ("y", List.nth args 1) ]
        in
        Builder.ret b [ Codegen.Lower.lower_num env e ])
  in
  Func.add_func m f;
  m

let run_scalar m x y =
  match Engine.run m "f" [| Rt.F x; Rt.F y |] with
  | [| Rt.F v |] -> v
  | _ -> Alcotest.fail "expected one f64 result"

let interp_scalar m x y =
  match Interp.run m "f" [| Rt.F x; Rt.F y |] with
  | [| Rt.F v |] -> v
  | _ -> Alcotest.fail "expected one f64 result"

let engine_matches_eval =
  Helpers.qtest ~count:300 "engine == AST evaluator on lowered exprs"
    QCheck.(
      triple (Helpers.arbitrary_expr [ "x"; "y" ])
        (QCheck.float_range (-3.0) 3.0) (QCheck.float_range (-3.0) 3.0))
    (fun (e, x, y) ->
      let m = lower_scalar e in
      Verifier.verify_module_exn m;
      let got = run_scalar m x y in
      let want = Easyml.Eval.eval_alist [ ("x", x); ("y", y) ] e in
      Helpers.same_float got want)

let interp_matches_engine =
  Helpers.qtest ~count:200 "interpreter == engine on lowered exprs"
    QCheck.(
      triple (Helpers.arbitrary_expr [ "x"; "y" ])
        (QCheck.float_range (-3.0) 3.0) (QCheck.float_range (-3.0) 3.0))
    (fun (e, x, y) ->
      let m = lower_scalar e in
      Helpers.same_float (run_scalar m x y) (interp_scalar m x y))

let vector_lanes_match_scalar =
  Helpers.qtest ~count:200 "vector lanes == scalar results"
    (Helpers.arbitrary_expr [ "x"; "y" ])
    (fun e ->
      let w = 4 in
      let ms = lower_scalar e and mv = lower_vector ~w e in
      Verifier.verify_module_exn mv;
      let xs = [| 0.5; -1.25; 2.0; -0.125 |] in
      let ys = [| 1.5; 0.25; -2.5; 3.0 |] in
      let vx = Float.Array.init w (fun i -> xs.(i)) in
      let vy = Float.Array.init w (fun i -> ys.(i)) in
      match Engine.run mv "f" [| Rt.VF vx; Rt.VF vy |] with
      | [| Rt.VF out |] ->
          Array.for_all Fun.id
            (Array.init w (fun i ->
                 Helpers.same_float (Float.Array.get out i)
                   (run_scalar ms xs.(i) ys.(i))))
      | _ -> false)

(* -- control flow and memory ------------------------------------------- *)

let test_loop_iter_args () =
  (* sum_{i<n} i^2 via loop-carried state, engine and interpreter *)
  let c = ctx () in
  let m = modl "loop" in
  Func.add_func m
    (Builder.func c ~name:"f" ~params:[ Ty.I64 ] ~results:[ Ty.F64 ]
       (fun b args ->
         let n = List.hd args in
         let res =
           Builder.for_ b ~lb:(Builder.consti b 0) ~ub:n
             ~step:(Builder.consti b 1)
             ~inits:[ Builder.constf b 0.0 ]
             (fun ~iv ~iters ->
               let fi = Builder.sitofp b iv in
               [ Builder.addf b (List.hd iters) (Builder.mulf b fi fi) ])
         in
         Builder.ret b res));
  let expect n = float_of_int ((n - 1) * n * ((2 * n) - 1) / 6) in
  List.iter
    (fun n ->
      (match Engine.run m "f" [| Rt.I n |] with
      | [| Rt.F v |] -> Helpers.fcheck "engine loop" (expect n) v
      | _ -> Alcotest.fail "bad result");
      match Interp.run m "f" [| Rt.I n |] with
      | [| Rt.F v |] -> Helpers.fcheck "interp loop" (expect n) v
      | _ -> Alcotest.fail "bad result")
    [ 0; 1; 7; 100 ]

let test_scf_if () =
  let c = ctx () in
  let m = modl "if" in
  Func.add_func m
    (Builder.func c ~name:"f" ~params:[ Ty.F64 ] ~results:[ Ty.F64 ]
       (fun b args ->
         let x = List.hd args in
         let cond = Builder.cmpf b Op.Lt x (Builder.constf b 0.0) in
         let r =
           Builder.if_ b ~cond
             ~then_:(fun () -> [ Builder.negf b x ])
             ~else_:(fun () -> [ Builder.mulf b x (Builder.constf b 2.0) ])
         in
         Builder.ret b r));
  Verifier.verify_module_exn m;
  List.iter
    (fun (x, want) ->
      match (Engine.run m "f" [| Rt.F x |], Interp.run m "f" [| Rt.F x |]) with
      | [| Rt.F a |], [| Rt.F b |] ->
          Helpers.fcheck "engine if" want a;
          Helpers.fcheck "interp if" want b
      | _ -> Alcotest.fail "bad result")
    [ (-3.0, 3.0); (4.0, 8.0); (0.0, 0.0) ]

let test_memory_roundtrip () =
  (* write i*2.5 into a buffer through vector.store, read back with gather
     using reversed indices *)
  let w = 4 in
  let c = ctx () in
  let m = modl "mem" in
  Func.add_func m
    (Builder.func c ~name:"f" ~params:[ Ty.Memref ] ~results:[ Ty.vec w Ty.F64 ]
       (fun b args ->
         let buf = List.hd args in
         let lanes = Builder.iota b ~width:w in
         let vals =
           Builder.mulf b
             (Builder.sitofp b lanes)
             (Builder.broadcast b ~width:w (Builder.constf b 2.5))
         in
         Builder.vec_store b ~vec:vals ~mem:buf ~idx:(Builder.consti b 0);
         (* reversed gather: idx = 3 - lane *)
         let rev =
           Builder.subi b
             (Builder.broadcast b ~width:w (Builder.consti b (w - 1)))
             lanes
         in
         let got = Builder.gather b ~mem:buf ~idxs:rev in
         Builder.ret b [ got ]));
  Verifier.verify_module_exn m;
  let buf = Rt.buffer 8 in
  (match Engine.run m "f" [| Rt.M buf |] with
  | [| Rt.VF out |] ->
      List.iteri
        (fun i want -> Helpers.fcheck "gather lane" want (Float.Array.get out i))
        [ 7.5; 5.0; 2.5; 0.0 ]
  | _ -> Alcotest.fail "bad result");
  (* the store is visible in the caller's buffer *)
  Helpers.fcheck "store visible" 5.0 (Float.Array.get buf 2)

let test_extern_call () =
  let c = ctx () in
  let m = modl "ext" in
  Func.declare_extern m
    { Func.e_name = "twice"; e_params = [ Ty.F64 ]; e_results = [ Ty.F64 ] };
  Func.add_func m
    (Builder.func c ~name:"f" ~params:[ Ty.F64 ] ~results:[ Ty.F64 ]
       (fun b args ->
         let r = Builder.call b m "twice" [ List.hd args ] in
         Builder.ret b r));
  let reg = Rt.create_registry () in
  Rt.register reg "twice" (function
    | [| Rt.F x |] -> [| Rt.F (2.0 *. x) |]
    | _ -> assert false);
  (match Engine.run ~externs:reg m "f" [| Rt.F 21.0 |] with
  | [| Rt.F v |] -> Helpers.fcheck "extern call" 42.0 v
  | _ -> Alcotest.fail "bad result");
  match Interp.run ~externs:reg m "f" [| Rt.F 21.0 |] with
  | [| Rt.F v |] -> Helpers.fcheck "interp extern call" 42.0 v
  | _ -> Alcotest.fail "bad result"

let test_local_call () =
  let c = ctx () in
  let m = modl "local" in
  Func.add_func m
    (Builder.func c ~name:"sq" ~params:[ Ty.F64 ] ~results:[ Ty.F64 ]
       (fun b args ->
         Builder.ret b [ Builder.mulf b (List.hd args) (List.hd args) ]));
  Func.add_func m
    (Builder.func c ~name:"f" ~params:[ Ty.F64 ] ~results:[ Ty.F64 ]
       (fun b args ->
         let r = Builder.call b m "sq" [ List.hd args ] in
         let r2 = Builder.call b m "sq" r in
         Builder.ret b r2));
  match Engine.run m "f" [| Rt.F 3.0 |] with
  | [| Rt.F v |] -> Helpers.fcheck "nested local calls" 81.0 v
  | _ -> Alcotest.fail "bad result"

let test_yield_swap () =
  (* parallel-copy semantics: swapping two iter_args must not clobber *)
  let c = ctx () in
  let m = modl "swap" in
  Func.add_func m
    (Builder.func c ~name:"f" ~params:[ Ty.I64 ] ~results:[ Ty.F64; Ty.F64 ]
       (fun b args ->
         let n = List.hd args in
         let a0 = Builder.constf b 1.0 and b0 = Builder.constf b 2.0 in
         let res =
           Builder.for_ b ~lb:(Builder.consti b 0) ~ub:n
             ~step:(Builder.consti b 1) ~inits:[ a0; b0 ]
             (fun ~iv:_ ~iters ->
               match iters with [ a; b' ] -> [ b'; a ] | _ -> assert false)
         in
         Builder.ret b res));
  (match Engine.run m "f" [| Rt.I 3 |] with
  | [| Rt.F a; Rt.F b |] ->
      Helpers.fcheck "swapped a (engine)" 2.0 a;
      Helpers.fcheck "swapped b (engine)" 1.0 b
  | _ -> Alcotest.fail "bad result");
  match Interp.run m "f" [| Rt.I 3 |] with
  | [| Rt.F a; Rt.F b |] ->
      Helpers.fcheck "swapped a (interp)" 2.0 a;
      Helpers.fcheck "swapped b (interp)" 1.0 b
  | _ -> Alcotest.fail "bad result"

let suite =
  [
    engine_matches_eval;
    interp_matches_engine;
    vector_lanes_match_scalar;
    Alcotest.test_case "loop iter_args" `Quick test_loop_iter_args;
    Alcotest.test_case "scf.if" `Quick test_scf_if;
    Alcotest.test_case "memory + gather/scatter" `Quick test_memory_roundtrip;
    Alcotest.test_case "extern calls" `Quick test_extern_call;
    Alcotest.test_case "local calls" `Quick test_local_call;
    Alcotest.test_case "yield parallel copy" `Quick test_yield_swap;
  ]
