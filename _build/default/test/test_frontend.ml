(* Frontend tests: lexer, parser, semantic analysis. *)

open Easyml

let tokens_of src =
  List.map (fun (t : Token.spanned) -> t.tok) (Lexer.tokenize src)

(* -- lexer ----------------------------------------------------------- *)

let test_lex_basic () =
  Alcotest.(check int) "token count" 7
    (List.length (tokens_of "x = 1.5 + y;"));
  (match tokens_of "3.25" with
  | [ Token.NUMBER f; Token.EOF ] -> Alcotest.(check (float 0.0)) "value" 3.25 f
  | _ -> Alcotest.fail "expected number");
  match tokens_of "1e-3" with
  | [ Token.NUMBER f; Token.EOF ] -> Alcotest.(check (float 0.0)) "exp" 0.001 f
  | _ -> Alcotest.fail "expected exponent literal"

let test_lex_comments () =
  Alcotest.(check int) "hash comment" 1
    (List.length (tokens_of "# a comment\n"));
  Alcotest.(check int) "line comment" 2 (List.length (tokens_of "x // c\n"));
  Alcotest.(check int) "block comment" 2 (List.length (tokens_of "/* c \n c */ x"))

let test_lex_operators () =
  match tokens_of "<= >= == != && || ? :" with
  | [ Token.LE; GE; EQEQ; NEQ; ANDAND; OROR; QUESTION; COLON; EOF ] -> ()
  | _ -> Alcotest.fail "operator tokens"

let test_lex_errors () =
  Alcotest.check_raises "unterminated block comment"
    (Lexer.Error (Loc.make ~line:1 ~col:1, "unterminated block comment"))
    (fun () -> ignore (Lexer.tokenize "/* never closed"));
  (match Lexer.tokenize "a $ b" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lexer error on '$'");
  match Lexer.tokenize "x & y" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lexer error on single '&'"

(* -- parser ---------------------------------------------------------- *)

let parse_expr_of (src : string) : Ast.expr =
  match Parser.parse_program ("tmp = " ^ src ^ ";") with
  | [ Ast.Assign (_, _, e) ] -> e
  | _ -> Alcotest.fail "expected a single assignment"

let test_precedence () =
  let e = parse_expr_of "1 + 2 * 3" in
  (match e with
  | Ast.Binary (Ast.Add, Ast.Num 1.0, Ast.Binary (Ast.Mul, Ast.Num 2.0, Ast.Num 3.0))
    ->
      ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  let e = parse_expr_of "a < b + 1 ? -c : d / e" in
  match e with
  | Ast.Ternary (Ast.Binary (Ast.Lt, _, _), Ast.Unary (Ast.Neg, _), Ast.Binary (Ast.Div, _, _))
    ->
      ()
  | _ -> Alcotest.fail "ternary / comparison structure"

let test_parse_markups () =
  match
    Parser.parse_program
      "Vm; .external(); .lookup(-100, 100, 0.05); u; .method(rk2);"
  with
  | [
      Ast.Decl (_, "Vm");
      Ast.MarkupOn (_, "Vm", Ast.External);
      Ast.MarkupOn (_, "Vm", Ast.Lookup (-100.0, 100.0, 0.05));
      Ast.Decl (_, "u");
      Ast.MarkupOn (_, "u", Ast.Method "rk2");
    ] ->
      ()
  | _ -> Alcotest.fail "markup attachment"

let test_parse_group () =
  match Parser.parse_program "group{ a = 1; b; }.param();" with
  | [
      Ast.Assign (_, "a", Ast.Num 1.0);
      Ast.MarkupOn (_, "a", Ast.Param);
      Ast.Decl (_, "b");
      Ast.MarkupOn (_, "b", Ast.Param);
    ] ->
      ()
  | _ -> Alcotest.fail "group desugaring"

let test_parse_if () =
  match Parser.parse_program "if (x < 0) { y = 1; } else { y = 2; }" with
  | [ Ast.If (_, [ (Ast.Binary (Ast.Lt, _, _), [ Ast.Assign (_, "y", _) ]) ], [ Ast.Assign (_, "y", _) ]) ]
    ->
      ()
  | _ -> Alcotest.fail "if/else structure"

let test_parse_errors () =
  let bad src =
    match Parser.parse src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" src
  in
  bad "x = ;";
  bad ".external();";
  (* markup with no variable *)
  bad "x = 1";
  (* missing semicolon *)
  bad "group{ x = 1; ";
  bad "y = (1 + 2;"

(* printer output re-parses to the same tree *)
let roundtrip =
  Helpers.qtest "printer/parser round-trip"
    (Helpers.arbitrary_expr [ "x"; "y"; "z" ])
    (fun e ->
      (* negative literals print as -c and re-parse as a constant, so
         compare modulo the constant folder's normalization *)
      let norm e = Fold.fold_alist [] e in
      let printed = Ast.expr_to_string e in
      Ast.equal_expr (norm e) (norm (parse_expr_of printed)))

(* -- sema ------------------------------------------------------------ *)

let analyze src = Sema.analyze_source ~name:"t" src

let minimal =
  {|
Vm; .external(); Iion; .external();
y; y_init = 0.25; Vm_init = -80.0;
group{ g = 2.0; e = 1.0; }.param();
diff_y = g*(e - y);
Iion = g*y*(Vm + 20.0);
|}

let test_sema_basic () =
  let m = analyze minimal in
  Alcotest.(check int) "states" 1 (List.length m.states);
  Alcotest.(check int) "externals" 2 (List.length m.externals);
  Alcotest.(check int) "params" 2 (List.length m.params);
  let sv = Option.get (Model.find_state m "y") in
  Alcotest.(check (float 0.0)) "init" 0.25 sv.sv_init;
  (* param folding: g and e replaced by literals *)
  Alcotest.(check (list string)) "diff free vars" [ "y" ]
    (Ast.free_vars sv.sv_diff);
  let ext = Option.get (Model.find_ext m "Iion") in
  Alcotest.(check bool) "Iion is output" true ext.ext_assigned;
  let vm = Option.get (Model.find_ext m "Vm") in
  Alcotest.(check bool) "Vm is input" false vm.ext_assigned;
  Alcotest.(check (float 0.0)) "Vm init" (-80.0) vm.ext_init

let test_sema_errors () =
  let bad ?(sub = "") src =
    match Sema.analyze_result ~name:"t" src with
    | Error msg ->
        if sub <> "" && not (Helpers.contains msg sub) then
          Alcotest.failf "error %S does not mention %S" msg sub
    | Ok _ -> Alcotest.failf "expected sema error for %S" src
  in
  bad ~sub:"assigned more than once" "x = 1.0; x = 2.0;";
  bad ~sub:"undefined variable" "Iion; .external(); Iion = nope + 1.0;";
  bad ~sub:"cyclic" "Iion; .external(); a = b + 1.0; b = a + 1.0; Iion = a;";
  bad ~sub:"not a compile-time constant"
    "Vm; .external(); Iion; .external(); group{ p = Vm; }.param(); Iion = p;";
  bad ~sub:"expects" "Iion; .external(); Iion = exp(1.0, 2.0);";
  bad ~sub:"unknown function" "Iion; .external(); Iion = frobnicate(1.0);";
  bad ~sub:"unknown integration method"
    "Iion; .external(); y; diff_y = 1.0 - y; y; .method(warp); Iion = y;";
  bad ~sub:"must be a state or external"
    "Iion; .external(); k = 1.0; k; .lookup(0, 1, 0.1); Iion = k;";
  bad ~sub:"invalid lookup bounds"
    "Vm; .external(); .lookup(10, 0, 0.1); Iion; .external(); Iion = Vm;"

let test_if_conversion () =
  let m =
    analyze
      {|
Vm; .external(); Iion; .external();
if (Vm < -40.0) { a = 1.0; b = Vm * 2.0; }
elif (Vm < 0.0) { a = 2.0; b = Vm * 3.0; }
else { a = 3.0; b = Vm * 4.0; }
Iion = a + b;
|}
  in
  let eval vm =
    let bindings = [ ("Vm", vm) ] in
    let assigns =
      List.fold_left
        (fun env (x, e) -> (x, Eval.eval_alist env e) :: env)
        bindings m.assigns
    in
    List.assoc "Iion" assigns
  in
  Helpers.fcheck "branch 1" (1.0 -. 100.0) (eval (-50.0));
  Helpers.fcheck "branch 2" (2.0 -. 60.0) (eval (-20.0));
  Helpers.fcheck "else" (3.0 +. 40.0) (eval 10.0)

let test_if_conversion_sequential () =
  (* later assignments in a branch see earlier ones *)
  let m =
    analyze
      {|
Vm; .external(); Iion; .external();
if (Vm < 0.0) { t = Vm + 1.0; u = t * t; } else { t = 0.0; u = 1.0; }
Iion = u;
|}
  in
  let eval vm =
    let assigns =
      List.fold_left
        (fun env (x, e) -> (x, Eval.eval_alist env e) :: env)
        [ ("Vm", vm) ] m.assigns
    in
    List.assoc "Iion" assigns
  in
  Helpers.fcheck "sequential branch" 4.0 (eval (-3.0));
  Helpers.fcheck "else" 1.0 (eval 5.0)

let test_if_partial_error () =
  match
    Sema.analyze_result ~name:"t"
      "Vm; .external(); Iion; .external(); if (Vm < 0.0) { a = 1.0; } Iion = a;"
  with
  | Error msg ->
      Alcotest.(check bool) "mentions every branch" true
        (Helpers.contains msg "every branch")
  | Ok _ -> Alcotest.fail "partial conditional must be rejected"

let test_diff_reference () =
  (* expressions may reference diff_X by name (buffer corrections) *)
  let m =
    analyze
      {|
Vm; .external(); Iion; .external();
y; y_init = 0.5;
diff_y = 1.0 - y;
Iion = Vm * 0.0 + 2.0 * diff_y;
|}
  in
  let v =
    List.fold_left
      (fun env (x, e) -> (x, Eval.eval_alist env e) :: env)
      [ ("Vm", 0.0); ("y", 0.25) ]
      m.assigns
    |> List.assoc "Iion"
  in
  Helpers.fcheck "diff reference resolved" 1.5 v

let test_dead_assign_pruned () =
  let m =
    analyze
      {|
Vm; .external(); Iion; .external();
used = Vm + 1.0;
unused = exp(Vm);
Iion = used;
|}
  in
  Alcotest.(check bool) "unused pruned" false
    (List.mem_assoc "unused" m.assigns);
  Alcotest.(check bool) "used kept" true (List.mem_assoc "used" m.assigns)

let test_rl_fallback_warning () =
  let m =
    analyze
      {|
Vm; .external(); Iion; .external();
y; y_init = 0.5;
diff_y = y*y - 1.0;
y; .method(rush_larsen);
Iion = y + Vm*0.0;
|}
  in
  let sv = Option.get (Model.find_state m "y") in
  Alcotest.(check string) "fell back to fe" "fe" (Model.integ_name sv.sv_method);
  Alcotest.(check bool) "warning emitted" true (m.warnings <> [])

let test_store_trace_keep_assigns () =
  (* .store()/.trace() keep otherwise-dead intermediate definitions *)
  let m =
    analyze
      {|
Vm; .external(); Iion; .external();
activation = 1.0/(1.0 + exp(-(Vm + 30.0)/5.0));
activation; .trace();
Iion = Vm * 0.01;
|}
  in
  Alcotest.(check bool) "traced assign survives pruning" true
    (List.mem_assoc "activation" m.assigns)

let test_caret_power () =
  (* '^' extension desugars to pow with the right precedence *)
  let m =
    analyze
      {|
Vm; .external(); Iion; .external();
Iion = 2.0 * Vm^2.0 - (-Vm)^2.0 + Vm * 0.0;
|}
  in
  let v =
    List.fold_left
      (fun env (x, e) -> (x, Eval.eval_alist env e) :: env)
      [ ("Vm", 3.0) ] m.assigns
    |> List.assoc "Iion"
  in
  (* 2*9 - 9 = 9 *)
  Helpers.fcheck "2*Vm^2 - (-Vm)^2" 9.0 v

let test_no_fold_params () =
  let m =
    Sema.analyze_source ~name:"t"
      ~options:{ Sema.fold_params = false }
      minimal
  in
  let sv = Option.get (Model.find_state m "y") in
  Alcotest.(check bool) "param kept symbolic" true
    (List.mem "g" (Ast.free_vars sv.sv_diff))

let suite =
  [
    Alcotest.test_case "lex basic" `Quick test_lex_basic;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex operators" `Quick test_lex_operators;
    Alcotest.test_case "lex errors" `Quick test_lex_errors;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "markups" `Quick test_parse_markups;
    Alcotest.test_case "group" `Quick test_parse_group;
    Alcotest.test_case "if" `Quick test_parse_if;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    roundtrip;
    Alcotest.test_case "sema basic" `Quick test_sema_basic;
    Alcotest.test_case "sema errors" `Quick test_sema_errors;
    Alcotest.test_case "if conversion" `Quick test_if_conversion;
    Alcotest.test_case "if conversion sequential" `Quick
      test_if_conversion_sequential;
    Alcotest.test_case "partial if rejected" `Quick test_if_partial_error;
    Alcotest.test_case "diff_X references" `Quick test_diff_reference;
    Alcotest.test_case "dead assigns pruned" `Quick test_dead_assign_pruned;
    Alcotest.test_case "rush_larsen fallback" `Quick test_rl_fallback_warning;
    Alcotest.test_case "store/trace keep assigns" `Quick
      test_store_trace_keep_assigns;
    Alcotest.test_case "caret power extension" `Quick test_caret_power;
    Alcotest.test_case "fold_params off" `Quick test_no_fold_params;
  ]
