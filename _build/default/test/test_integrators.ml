(* Integration-method tests: closed-form agreement, convergence order,
   clamping, and degenerate-coefficient guards. *)

open Easyml
module I = Codegen.Integrators

(* a gate with constant rates: y' = a(1-y) - b y, exact solution known *)
let gate ~(meth : Model.integ) ~(a : float) ~(b : float) : Model.state_var =
  let diff =
    Ast.(
      Binary
        ( Sub,
          Binary (Mul, Num a, Binary (Sub, Num 1.0, Var "y")),
          Binary (Mul, Num b, Var "y") ))
  in
  {
    Model.sv_name = "y";
    sv_init = 0.1;
    sv_diff = diff;
    sv_method = meth;
    sv_affine =
      (match meth with
      | Model.RushLarsen | Model.Sundnes -> Linearity.affine ~y:"y" diff
      | _ -> None);
  }

let exact ~a ~b ~y0 ~t =
  let yinf = a /. (a +. b) and tau = 1.0 /. (a +. b) in
  yinf +. ((y0 -. yinf) *. Float.exp (-.t /. tau))

let integrate (sv : Model.state_var) ~dt ~steps =
  let update = I.update_expr sv in
  let y = ref sv.Model.sv_init in
  for _ = 1 to steps do
    y := Eval.eval_alist [ ("y", !y); ("dt", dt); ("t", 0.0) ] update
  done;
  !y

let err meth ~dt =
  let a = 0.4 and b = 0.15 in
  let t_end = 4.0 in
  let steps = int_of_float (Float.round (t_end /. dt)) in
  let got = integrate (gate ~meth ~a ~b) ~dt ~steps in
  Float.abs (got -. exact ~a ~b ~y0:0.1 ~t:t_end)

let order meth =
  Float.log (err meth ~dt:0.2 /. err meth ~dt:0.1) /. Float.log 2.0

let test_fe_order () =
  Alcotest.(check bool) "fe is first order" true
    (Float.abs (order Model.FE -. 1.0) < 0.15)

let test_rk2_order () =
  Alcotest.(check bool) "rk2 is second order" true
    (Float.abs (order Model.RK2 -. 2.0) < 0.2)

let test_rk4_order () =
  Alcotest.(check bool) "rk4 is fourth order" true
    (Float.abs (order Model.RK4 -. 4.0) < 0.4)

let test_rl_exact () =
  Alcotest.(check bool) "rush_larsen exact for affine gates" true
    (err Model.RushLarsen ~dt:0.5 < 1e-12)

let test_sundnes_exact_affine () =
  Alcotest.(check bool) "sundnes exact for affine gates" true
    (err Model.Sundnes ~dt:0.5 < 1e-12)

let test_sundnes_second_order_nonlinear () =
  (* nonlinear ODE y' = -y^2, y(0)=1: exact y(t) = 1/(1+t).
     Sundnes needs no affine decomposition (it linearizes symbolically). *)
  let diff = Ast.(Unary (Neg, Binary (Mul, Var "y", Var "y"))) in
  let sv =
    {
      Model.sv_name = "y";
      sv_init = 1.0;
      sv_diff = diff;
      sv_method = Model.Sundnes;
      sv_affine = None;
    }
  in
  let run dt =
    let update = I.update_expr sv in
    let y = ref 1.0 in
    let steps = int_of_float (2.0 /. dt) in
    for _ = 1 to steps do
      y := Eval.eval_alist [ ("y", !y); ("dt", dt); ("t", 0.0) ] update
    done;
    Float.abs (!y -. (1.0 /. 3.0))
  in
  let p = Float.log (run 0.2 /. run 0.1) /. Float.log 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "sundnes order ~2 on nonlinear ODE (got %.2f)" p)
    true (p > 1.6)

let test_markov_be_clamps () =
  (* a huge positive derivative: update must stay within [0, 1] *)
  let diff = Ast.Num 1e6 in
  let sv =
    {
      Model.sv_name = "y";
      sv_init = 0.5;
      sv_diff = diff;
      sv_method = Model.MarkovBE;
      sv_affine = None;
    }
  in
  let y = Eval.eval_alist [ ("y", 0.5); ("dt", 0.1); ("t", 0.0) ] (I.update_expr sv) in
  Alcotest.(check bool) "clamped to [0,1]" true (y >= 0.0 && y <= 1.0)

let test_markov_be_stable_stiff () =
  (* stiff relaxation y' = -100(y - 0.3) at dt = 0.1: fe oscillates/diverges
     (|1 - dt*100| = 9), markov_be must converge toward 0.3 *)
  let diff =
    Ast.(Binary (Mul, Num (-100.0), Binary (Sub, Var "y", Num 0.3)))
  in
  let mk meth =
    {
      Model.sv_name = "y";
      sv_init = 0.9;
      sv_diff = diff;
      sv_method = meth;
      sv_affine = None;
    }
  in
  let final meth = integrate (mk meth) ~dt:0.1 ~steps:50 in
  Alcotest.(check bool) "markov_be stable" true
    (Float.abs (final Model.MarkovBE -. 0.3) < 0.05);
  Alcotest.(check bool) "fe diverges on the same problem" true
    (Float.abs (final Model.FE) > 1.0 || Float.is_nan (final Model.FE))

let test_rl_guard_small_b () =
  (* derivative independent of y: b == 0, RL must fall back to fe smoothly *)
  let diff = Ast.Num 0.25 in
  let sv =
    {
      Model.sv_name = "y";
      sv_init = 0.0;
      sv_diff = diff;
      sv_method = Model.RushLarsen;
      sv_affine = Linearity.affine ~y:"y" diff;
    }
  in
  let y = Eval.eval_alist [ ("y", 0.0); ("dt", 0.01); ("t", 0.0) ] (I.update_expr sv) in
  Helpers.check_close ~tol:1e-12 "degenerate RL == fe" 0.0025 y

let update_matches_fe_property =
  (* for any random diff expression, the fe update equals y + dt*f *)
  Helpers.qtest ~count:200 "fe update expression == y + dt f(y)"
    QCheck.(
      pair (Helpers.arbitrary_expr [ "y"; "v" ]) (QCheck.float_range 0.0 1.0))
    (fun (diff, yv) ->
      let sv =
        {
          Model.sv_name = "y";
          sv_init = 0.0;
          sv_diff = diff;
          sv_method = Model.FE;
          sv_affine = None;
        }
      in
      let env = [ ("y", yv); ("v", 0.4); ("dt", 0.02); ("t", 0.0) ] in
      let got = Eval.eval_alist env (I.update_expr sv) in
      let want = yv +. (0.02 *. Eval.eval_alist env diff) in
      Helpers.close ~tol:1e-12 got want
      || (Float.is_nan got && Float.is_nan want))

let suite =
  [
    Alcotest.test_case "fe order 1" `Quick test_fe_order;
    Alcotest.test_case "rk2 order 2" `Quick test_rk2_order;
    Alcotest.test_case "rk4 order 4" `Quick test_rk4_order;
    Alcotest.test_case "rush_larsen exact on gates" `Quick test_rl_exact;
    Alcotest.test_case "sundnes exact on affine gates" `Quick
      test_sundnes_exact_affine;
    Alcotest.test_case "sundnes ~order 2 nonlinear" `Quick
      test_sundnes_second_order_nonlinear;
    Alcotest.test_case "markov_be clamps to [0,1]" `Quick test_markov_be_clamps;
    Alcotest.test_case "markov_be stable on stiff ODE" `Quick
      test_markov_be_stable_stiff;
    Alcotest.test_case "rush_larsen b=0 guard" `Quick test_rl_guard_small_b;
    update_matches_fe_property;
  ]
