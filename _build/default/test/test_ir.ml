(* IR tests: types, builder, verifier, printer. *)

open Ir

let ctx () = Builder.create_ctx ()

(* -- types ------------------------------------------------------------ *)

let test_ty () =
  Alcotest.(check string) "vector print" "vector<8xf64>"
    (Ty.to_string (Ty.Vec (8, Ty.F64)));
  Alcotest.(check bool) "vec 1 collapses" true
    (Ty.equal (Ty.vec 1 Ty.F64) Ty.F64);
  Alcotest.(check int) "width" 4 (Ty.width (Ty.vec 4 Ty.I64));
  Alcotest.(check bool) "like maps shape" true
    (Ty.equal (Ty.like ~like:(Ty.Vec (8, Ty.F64)) Ty.I1) (Ty.Vec (8, Ty.I1)));
  Alcotest.check_raises "vector of vector rejected"
    (Invalid_argument "Ty.vec: element must be scalar") (fun () ->
      ignore (Ty.vec 2 (Ty.Vec (2, Ty.F64))))

(* -- builder type checking --------------------------------------------- *)

let in_func body =
  let c = ctx () in
  ignore
    (Builder.func c ~name:"t" ~params:[ Ty.F64; Ty.I64; Ty.Memref ] ~results:[]
       (fun b args ->
         body b args;
         Builder.ret b []))

let test_builder_checks () =
  let expect_terror name body =
    match in_func body with
    | exception Builder.Type_error _ -> ()
    | () -> Alcotest.failf "%s: expected Type_error" name
  in
  expect_terror "addf mixes types" (fun b -> function
    | [ f; i; _ ] -> ignore (Builder.addf b f i)
    | _ -> assert false);
  expect_terror "select width mismatch" (fun b -> function
    | [ f; _; _ ] ->
        let c = Builder.constb b true in
        let v = Builder.broadcast b ~width:4 f in
        ignore (Builder.select b (Builder.broadcast b ~width:8 c) v v)
    | _ -> assert false);
  expect_terror "math arity" (fun b -> function
    | [ f; _; _ ] -> ignore (Builder.math b "exp" [ f; f ])
    | _ -> assert false);
  expect_terror "load needs memref" (fun b -> function
    | [ f; i; _ ] -> ignore (Builder.load b ~mem:f ~idx:i)
    | _ -> assert false);
  expect_terror "for bounds must be i64" (fun b -> function
    | [ f; _; _ ] ->
        ignore
          (Builder.for_ b ~lb:f ~ub:f ~step:f ~inits:[] (fun ~iv:_ ~iters:_ -> []))
    | _ -> assert false)

(* -- a correct function builds, verifies and prints --------------------- *)

let sum_func () =
  (* sum of i*i for i in [0, n) carried through iter_args *)
  let c = ctx () in
  let f =
    Builder.func c ~name:"sum_squares" ~params:[ Ty.I64 ] ~results:[ Ty.F64 ]
      (fun b args ->
        let n = List.hd args in
        let zero = Builder.consti b 0 in
        let one = Builder.consti b 1 in
        let acc0 = Builder.constf b 0.0 in
        let res =
          Builder.for_ b ~lb:zero ~ub:n ~step:one ~inits:[ acc0 ]
            (fun ~iv ~iters ->
              let fi = Builder.sitofp b iv in
              let sq = Builder.mulf b fi fi in
              [ Builder.addf b (List.hd iters) sq ])
        in
        Builder.ret b res)
  in
  f

let test_verify_ok () =
  let f = sum_func () in
  match Verifier.verify_func f with
  | [] -> ()
  | errs -> Alcotest.fail (Verifier.errors_to_string errs)

let test_printer () =
  let f = sum_func () in
  let s = Ir.Printer.func_to_string f in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " printed") true (Helpers.contains s frag))
    [ "func.func @sum_squares"; "scf.for"; "iter_args"; "arith.mulf"; "arith.sitofp"; "func.return" ]

(* -- verifier catches hand-broken IR ------------------------------------ *)

let test_verifier_catches () =
  let c = ctx () in
  let f =
    Builder.func c ~name:"bad" ~params:[ Ty.F64 ] ~results:[] (fun b args ->
        ignore (Builder.addf b (List.hd args) (List.hd args));
        Builder.ret b [])
  in
  (* mutate the op list to use a value before definition *)
  (match f.Func.f_body.Op.r_ops with
  | [ add; ret ] ->
      f.Func.f_body.Op.r_ops <- [ ret; add ]
  | _ -> Alcotest.fail "unexpected body");
  (match Verifier.verify_func f with
  | [] -> Alcotest.fail "verifier must reject return-before-def ordering"
  | _ -> ());
  (* double definition *)
  let c = ctx () in
  let g =
    Builder.func c ~name:"bad2" ~params:[ Ty.F64 ] ~results:[] (fun b args ->
        ignore (Builder.addf b (List.hd args) (List.hd args));
        Builder.ret b [])
  in
  (match g.Func.f_body.Op.r_ops with
  | [ add; ret ] -> g.Func.f_body.Op.r_ops <- [ add; add; ret ]
  | _ -> Alcotest.fail "unexpected body");
  match Verifier.verify_func g with
  | [] -> Alcotest.fail "verifier must reject double definition"
  | _ -> ()

let test_verifier_call_signature () =
  let c = ctx () in
  let m = Func.create_module "m" in
  Func.declare_extern m
    { Func.e_name = "ext"; e_params = [ Ty.F64 ]; e_results = [ Ty.F64 ] };
  let f =
    Builder.func c ~name:"caller" ~params:[ Ty.F64 ] ~results:[ Ty.F64 ]
      (fun b args ->
        let r = Builder.call b m "ext" [ List.hd args ] in
        Builder.ret b r)
  in
  Func.add_func m f;
  (match Verifier.verify_module m with
  | [] -> ()
  | errs -> Alcotest.fail (Verifier.errors_to_string errs));
  (* unknown callee *)
  let c2 = ctx () in
  let m2 = Func.create_module "m2" in
  Func.declare_extern m2
    { Func.e_name = "ext"; e_params = [ Ty.F64 ]; e_results = [ Ty.F64 ] };
  let f2 =
    Builder.func c2 ~name:"caller" ~params:[ Ty.F64 ] ~results:[ Ty.F64 ]
      (fun b args ->
        let r = Builder.call b m2 "ext" [ List.hd args ] in
        Builder.ret b r)
  in
  m2.Func.m_externs <- [];
  Func.add_func m2 f2;
  match Verifier.verify_module m2 with
  | [] -> Alcotest.fail "unknown callee must be rejected"
  | _ -> ()

let test_builder_yield_types () =
  match
    in_func (fun b -> function
      | [ f; i; _ ] ->
          ignore
            (Builder.for_ b ~lb:i ~ub:i ~step:i ~inits:[ f ]
               (fun ~iv ~iters:_ -> [ iv ] (* wrong type: i64 vs f64 *)))
      | _ -> assert false)
  with
  | exception Builder.Type_error _ -> ()
  | () -> Alcotest.fail "yield type mismatch must be rejected"

let suite =
  [
    Alcotest.test_case "types" `Quick test_ty;
    Alcotest.test_case "builder type checks" `Quick test_builder_checks;
    Alcotest.test_case "verify correct function" `Quick test_verify_ok;
    Alcotest.test_case "printer fragments" `Quick test_printer;
    Alcotest.test_case "verifier catches broken IR" `Quick test_verifier_catches;
    Alcotest.test_case "verifier checks call signatures" `Quick
      test_verifier_call_signature;
    Alcotest.test_case "builder checks yield types" `Quick
      test_builder_yield_types;
  ]

(* -- textual round-trip -------------------------------------------------- *)

let test_parse_roundtrip_kernels () =
  (* print -> parse -> verify -> print reaches a fixpoint, and the reparsed
     kernel behaves identically in the execution engine *)
  List.iter
    (fun name ->
      let m = Models.Registry.model (Models.Registry.find_exn name) in
      List.iter
        (fun cfg ->
          let g = Codegen.Kernel.generate cfg m in
          let text = Ir.Printer.module_to_string g.Codegen.Kernel.modl in
          match Ir.Parser.parse_module_result text with
          | Error e -> Alcotest.failf "%s: parse failed: %s" name e
          | Ok m2 -> (
              (match Verifier.verify_module m2 with
              | [] -> ()
              | errs -> Alcotest.fail (Verifier.errors_to_string errs));
              let text2 = Ir.Printer.module_to_string m2 in
              match Ir.Parser.parse_module_result text2 with
              | Error e -> Alcotest.failf "%s: reparse failed: %s" name e
              | Ok m3 ->
                  Alcotest.(check string)
                    (name ^ " fixpoint")
                    text2
                    (Ir.Printer.module_to_string m3)))
        [ Codegen.Config.baseline; Codegen.Config.mlir ~width:8 ])
    [ "LuoRudy91"; "MitchellSchaeffer"; "Courtemanche" ]

let test_parsed_kernel_executes () =
  let m = Models.Registry.model (Models.Registry.find_exn "HodgkinHuxley") in
  let g = Codegen.Kernel.generate (Codegen.Config.mlir ~width:4) m in
  let text = Ir.Printer.module_to_string g.Codegen.Kernel.modl in
  let m2 = Ir.Parser.parse_module text in
  (* run both modules' lut_init over the same table and compare *)
  let reg = Exec.Rt.create_registry () in
  Runtime.Lut.register reg;
  let run modl =
    let plan = List.hd g.Codegen.Kernel.lut_plans in
    let spec = plan.Easyml.Lut_cones.spec in
    let buf =
      Exec.Rt.buffer
        (Easyml.Model.lut_rows spec * Easyml.Lut_cones.n_columns plan)
    in
    ignore
      (Exec.Engine.run ~externs:reg modl
         (Codegen.Kernel.lut_init_name spec)
         [| Exec.Rt.M buf; Exec.Rt.F 0.01 |]);
    buf
  in
  let b1 = run g.Codegen.Kernel.modl and b2 = run m2 in
  for i = 0 to Float.Array.length b1 - 1 do
    if not (Helpers.same_float (Float.Array.get b1 i) (Float.Array.get b2 i))
    then Alcotest.failf "parsed kernel diverges at table entry %d" i
  done

let test_parser_errors () =
  let bad text =
    match Ir.Parser.parse_module_result text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
  in
  bad "not a module";
  bad "module @m {\nfunc.func @f() -> () {\n%1 = arith.bogus : f64\n}\n}";
  bad "module @m {\nfunc.func @f() -> () {\nfunc.return %99\n}\n}";
  (* use before def *)
  bad "module @m {"
(* unterminated *)

let roundtrip_suite =
  [
    Alcotest.test_case "textual round-trip on kernels" `Slow
      test_parse_roundtrip_kernels;
    Alcotest.test_case "parsed kernel executes identically" `Quick
      test_parsed_kernel_executes;
    Alcotest.test_case "parser rejects malformed IR" `Quick test_parser_errors;
  ]

let suite = suite @ roundtrip_suite

(* print -> parse -> execute equivalence on random lowered expressions *)
let parse_print_execute =
  Helpers.qtest ~count:150 "print/parse preserves execution"
    (Helpers.arbitrary_expr [ "x"; "y" ])
    (fun e ->
      let m = Func.create_module "t" in
      let c = Builder.create_ctx () in
      Func.add_func m
        (Builder.func c ~name:"f" ~params:[ Ty.F64; Ty.F64 ] ~results:[ Ty.F64 ]
           (fun b args ->
             let env =
               Codegen.Lower.make_env ~b ~width:1
                 [ ("x", List.nth args 0); ("y", List.nth args 1) ]
             in
             Builder.ret b [ Codegen.Lower.lower_num env e ]));
      let m2 = Ir.Parser.parse_module (Ir.Printer.module_to_string m) in
      let run modl =
        match Exec.Engine.run modl "f" [| Exec.Rt.F 0.75; Exec.Rt.F (-1.25) |] with
        | [| Exec.Rt.F v |] -> v
        | _ -> Float.nan
      in
      Helpers.same_float (run m) (run m2))

let suite = suite @ [ parse_print_execute ]
