(* Optimization-pass tests: semantic preservation (differentially against
   the engine), plus the specific transformations each pass promises. *)

open Ir
open Exec

let lower_expr_func (e : Easyml.Ast.expr) : Func.modl =
  let m = Func.create_module "t" in
  let c = Builder.create_ctx () in
  Func.add_func m
    (Builder.func c ~name:"f" ~params:[ Ty.F64; Ty.F64 ] ~results:[ Ty.F64 ]
       (fun b args ->
         let env =
           Codegen.Lower.make_env ~b ~width:1
             [ ("x", List.nth args 0); ("y", List.nth args 1) ]
         in
         Builder.ret b [ Codegen.Lower.lower_num env e ]));
  m

let run1 m x y =
  match Engine.run m "f" [| Rt.F x; Rt.F y |] with
  | [| Rt.F v |] -> v
  | _ -> Alcotest.fail "expected one result"

let op_count m =
  List.fold_left (fun n f -> n + Func.op_count f) 0 m.Func.m_funcs

let pipeline_preserves =
  Helpers.qtest ~count:250 "optimization pipeline preserves results"
    QCheck.(
      triple (Helpers.arbitrary_expr [ "x"; "y" ])
        (QCheck.float_range (-3.0) 3.0) (QCheck.float_range (-3.0) 3.0))
    (fun (e, x, y) ->
      let m = lower_expr_func e in
      let before = run1 m x y in
      Passes.Pipeline.optimize ~verify:true m;
      let after = run1 m x y in
      Helpers.same_float before after)

let each_pass_preserves =
  Helpers.qtest ~count:150 "each pass individually preserves results"
    QCheck.(
      pair (Helpers.arbitrary_expr [ "x"; "y" ])
        (QCheck.int_range 0 (List.length Passes.Pipeline.by_name - 1)))
    (fun (e, k) ->
      let _, pass = List.nth Passes.Pipeline.by_name k in
      let m = lower_expr_func e in
      let x = 1.25 and y = -0.75 in
      let before = run1 m x y in
      ignore (Passes.Pass.run_on_module pass m);
      (match Verifier.verify_module m with
      | [] -> ()
      | errs -> Alcotest.fail (Verifier.errors_to_string errs));
      Helpers.same_float before (run1 m x y))

(* -- CSE ---------------------------------------------------------------- *)

let test_cse_dedups () =
  (* exp(x) computed twice must collapse to one op *)
  let e =
    Easyml.Ast.(
      Binary (Add, Call ("exp", [ Var "x" ]), Call ("exp", [ Var "x" ])))
  in
  let m = lower_expr_func e in
  let count_exp () =
    List.fold_left
      (fun n f ->
        Op.fold_region
          (fun n (o : Op.op) ->
            match o.Op.kind with Op.Math "exp" -> n + 1 | _ -> n)
          n f.Func.f_body)
      0 m.Func.m_funcs
  in
  Alcotest.(check int) "two exps before" 2 (count_exp ());
  ignore (Passes.Pass.run_on_module Passes.Cse.pass m);
  Alcotest.(check int) "one exp after" 1 (count_exp ());
  Helpers.fcheck "value unchanged" (2.0 *. Float.exp 0.5) (run1 m 0.5 0.0)

(* -- DCE ---------------------------------------------------------------- *)

let test_dce_removes_dead () =
  let m = Func.create_module "t" in
  let c = Builder.create_ctx () in
  Func.add_func m
    (Builder.func c ~name:"f" ~params:[ Ty.F64 ] ~results:[ Ty.F64 ]
       (fun b args ->
         let x = List.hd args in
         (* dead chain *)
         let d1 = Builder.math b "exp" [ x ] in
         let _d2 = Builder.mulf b d1 d1 in
         Builder.ret b [ Builder.addf b x x ]));
  let before = op_count m in
  ignore (Passes.Pass.run_on_module Passes.Dce.pass m);
  Alcotest.(check int) "dead chain removed" (before - 2) (op_count m);
  (match Engine.run m "f" [| Rt.F 2.0 |] with
  | [| Rt.F v |] -> Helpers.fcheck "value" 4.0 v
  | _ -> Alcotest.fail "bad result")

let test_dce_keeps_stores () =
  let m = Func.create_module "t" in
  let c = Builder.create_ctx () in
  Func.add_func m
    (Builder.func c ~name:"f" ~params:[ Ty.Memref ] ~results:[]
       (fun b args ->
         let buf = List.hd args in
         Builder.store b (Builder.constf b 9.0) ~mem:buf ~idx:(Builder.consti b 0);
         Builder.ret b []));
  ignore (Passes.Pass.run_on_module Passes.Dce.pass m);
  let buf = Rt.buffer 1 in
  ignore (Engine.run m "f" [| Rt.M buf |]);
  Helpers.fcheck "store survived DCE" 9.0 (Float.Array.get buf 0)

(* -- const fold ---------------------------------------------------------- *)

let test_const_fold () =
  let e =
    Easyml.Ast.(
      Binary
        ( Add,
          Var "x",
          Binary (Mul, Num 3.0, Call ("sqrt", [ Num 16.0 ])) ))
  in
  let m = lower_expr_func e in
  ignore (Passes.Pass.run_on_module Passes.Const_fold.pass m);
  ignore (Passes.Pass.run_on_module Passes.Dce.pass m);
  (* after folding, no math op should remain *)
  let maths =
    List.fold_left
      (fun n f ->
        Op.fold_region
          (fun n (o : Op.op) ->
            match o.Op.kind with Op.Math _ -> n + 1 | _ -> n)
          n f.Func.f_body)
      0 m.Func.m_funcs
  in
  Alcotest.(check int) "math folded away" 0 maths;
  Helpers.fcheck "value" 13.0 (run1 m 1.0 0.0)

(* -- canonicalize --------------------------------------------------------- *)

let test_canonicalize_identities () =
  let e =
    Easyml.Ast.(
      Binary
        ( Add,
          Binary (Mul, Var "x", Num 1.0),
          Binary (Sub, Binary (Add, Var "y", Num 0.0), Num 0.0) ))
  in
  let m = lower_expr_func e in
  let before = op_count m in
  ignore (Passes.Pass.run_on_module Passes.Canonicalize.pass m);
  ignore (Passes.Pass.run_on_module Passes.Dce.pass m);
  Alcotest.(check bool) "ops eliminated" true (op_count m < before);
  Helpers.fcheck "value" 3.5 (run1 m 1.25 2.25)

(* -- LICM ----------------------------------------------------------------- *)

let test_licm_hoists () =
  (* n iterations of a loop whose body contains a loop-invariant exp *)
  let m = Func.create_module "t" in
  let c = Builder.create_ctx () in
  Func.add_func m
    (Builder.func c ~name:"f" ~params:[ Ty.I64; Ty.F64 ] ~results:[ Ty.F64 ]
       (fun b args ->
         let n = List.nth args 0 and x = List.nth args 1 in
         let res =
           Builder.for_ b ~lb:(Builder.consti b 0) ~ub:n
             ~step:(Builder.consti b 1)
             ~inits:[ Builder.constf b 0.0 ]
             (fun ~iv:_ ~iters ->
               let inv = Builder.math b "exp" [ x ] in
               [ Builder.addf b (List.hd iters) inv ])
         in
         Builder.ret b res));
  let in_loop_ops () =
    List.fold_left
      (fun n f ->
        List.fold_left
          (fun n (o : Op.op) ->
            match o.Op.kind with
            | Op.For _ -> n + List.length o.Op.regions.(0).Op.r_ops
            | _ -> n)
          n f.Func.f_body.Op.r_ops)
      0 m.Func.m_funcs
  in
  let before = in_loop_ops () in
  ignore (Passes.Pass.run_on_module Passes.Licm.pass m);
  (match Verifier.verify_module m with
  | [] -> ()
  | errs -> Alcotest.fail (Verifier.errors_to_string errs));
  Alcotest.(check bool) "loop body shrank" true (in_loop_ops () < before);
  match Engine.run m "f" [| Rt.I 5; Rt.F 0.5 |] with
  | [| Rt.F v |] -> Helpers.check_close "value" (5.0 *. Float.exp 0.5) v
  | _ -> Alcotest.fail "bad result"

(* -- widen ---------------------------------------------------------------- *)

let widen_lanes_match =
  Helpers.qtest ~count:200 "widened function == scalar per lane"
    (Helpers.arbitrary_expr [ "x"; "y" ])
    (fun e ->
      let m = lower_expr_func e in
      let f = Option.get (Func.find_func m "f") in
      let w = 4 in
      match Passes.Widen.widen ~w f with
      | exception Passes.Widen.Not_widenable _ -> true
      | fv ->
          (match Verifier.verify_func fv with
          | [] -> ()
          | errs -> Alcotest.fail (Verifier.errors_to_string errs));
          let mv = Func.create_module "w" in
          Func.add_func mv fv;
          let xs = [| 0.25; -1.5; 2.75; 0.0 |] in
          let ys = [| -0.5; 1.0; 3.25; -2.0 |] in
          let vx = Float.Array.init w (fun i -> xs.(i)) in
          let vy = Float.Array.init w (fun i -> ys.(i)) in
          (match Engine.run mv fv.Func.f_name [| Rt.VF vx; Rt.VF vy |] with
          | [| Rt.VF got |] ->
              Array.for_all Fun.id
                (Array.init w (fun i ->
                     Helpers.same_float (Float.Array.get got i)
                       (run1 m xs.(i) ys.(i))))
          | _ -> false))

let test_widen_rejects () =
  (* control flow and memory must be rejected, not silently mis-widened *)
  let c = Builder.create_ctx () in
  let f_loop =
    Builder.func c ~name:"has_loop" ~params:[ Ty.I64 ] ~results:[]
      (fun b args ->
        let n = List.hd args in
        let _ =
          Builder.for_ b ~lb:(Builder.consti b 0) ~ub:n
            ~step:(Builder.consti b 1) ~inits:[] (fun ~iv:_ ~iters:_ -> [])
        in
        Builder.ret b [])
  in
  (match Passes.Widen.widen ~w:4 f_loop with
  | exception Passes.Widen.Not_widenable _ -> ()
  | _ -> Alcotest.fail "loops must be rejected");
  let c = Builder.create_ctx () in
  let f_mem =
    Builder.func c ~name:"has_mem" ~params:[ Ty.Memref ] ~results:[ Ty.F64 ]
      (fun b args ->
        let v = Builder.load b ~mem:(List.hd args) ~idx:(Builder.consti b 0) in
        Builder.ret b [ v ])
  in
  match Passes.Widen.widen ~w:4 f_mem with
  | exception Passes.Widen.Not_widenable _ -> ()
  | _ -> Alcotest.fail "memory ops must be rejected"

let test_kernel_pipeline_on_model () =
  (* the full pipeline on a real kernel: verified + observably smaller *)
  let m = Models.Registry.model (Models.Registry.find_exn "LuoRudy91") in
  let g0 = Codegen.Kernel.generate ~optimize:false Codegen.Config.baseline m in
  let g1 = Codegen.Kernel.generate ~optimize:true Codegen.Config.baseline m in
  Alcotest.(check bool) "pipeline shrinks the kernel" true
    (op_count g1.modl < op_count g0.modl / 2);
  Verifier.verify_module_exn g1.modl

let suite =
  [
    pipeline_preserves;
    each_pass_preserves;
    Alcotest.test_case "cse dedups" `Quick test_cse_dedups;
    Alcotest.test_case "dce removes dead code" `Quick test_dce_removes_dead;
    Alcotest.test_case "dce keeps stores" `Quick test_dce_keeps_stores;
    Alcotest.test_case "const fold" `Quick test_const_fold;
    Alcotest.test_case "canonicalize identities" `Quick
      test_canonicalize_identities;
    Alcotest.test_case "licm hoists invariants" `Quick test_licm_hoists;
    widen_lanes_match;
    Alcotest.test_case "widen rejects non-widenable" `Quick test_widen_rejects;
    Alcotest.test_case "pipeline on a real kernel" `Quick
      test_kernel_pipeline_on_model;
  ]
