(* Runtime tests: data layouts, lookup tables, parallel-for, stimulus. *)

open Runtime

(* -- layouts ------------------------------------------------------------ *)

let layouts = [ Layout.AoS; Layout.SoA; Layout.AoSoA 4; Layout.AoSoA 8 ]

let layout_bijective =
  Helpers.qtest ~count:300 "layout index is a bijection into the buffer"
    QCheck.(
      quad (QCheck.int_range 1 40) (QCheck.int_range 1 100)
        (QCheck.int_range 0 3) QCheck.unit)
    (fun (nvars, ncells, li, ()) ->
      let layout = List.nth layouts li in
      let size = Layout.size layout ~nvars ~ncells in
      let seen = Hashtbl.create (nvars * ncells) in
      let ok = ref true in
      for cell = 0 to ncells - 1 do
        for var = 0 to nvars - 1 do
          let i = Layout.index layout ~nvars ~ncells ~cell ~var in
          if i < 0 || i >= size || Hashtbl.mem seen i then ok := false
          else Hashtbl.add seen i ()
        done
      done;
      !ok)

let test_layout_formulas () =
  Alcotest.(check int) "aos" (5 * 3 + 1)
    (Layout.index Layout.AoS ~nvars:3 ~ncells:10 ~cell:5 ~var:1);
  Alcotest.(check int) "soa" (1 * 10 + 5)
    (Layout.index Layout.SoA ~nvars:3 ~ncells:10 ~cell:5 ~var:1);
  (* aosoa4: cell 5 -> block 1, lane 1 *)
  Alcotest.(check int) "aosoa" ((1 * 3 * 4) + (1 * 4) + 1)
    (Layout.index (Layout.AoSoA 4) ~nvars:3 ~ncells:12 ~cell:5 ~var:1)

let test_layout_padding () =
  Alcotest.(check int) "aosoa pads to full blocks" 16
    (Layout.padded_cells (Layout.AoSoA 8) ~ncells:9);
  Alcotest.(check int) "aos does not pad" 9
    (Layout.padded_cells Layout.AoS ~ncells:9)

let test_layout_contiguity () =
  Alcotest.(check bool) "aosoa8 contiguous at width 8" true
    (Layout.contiguous (Layout.AoSoA 8) ~w:8);
  Alcotest.(check bool) "aos needs gathers" false
    (Layout.contiguous Layout.AoS ~w:8);
  Alcotest.(check bool) "soa contiguous" true (Layout.contiguous Layout.SoA ~w:4)

let test_layout_names () =
  List.iter
    (fun l ->
      match Layout.of_string (Layout.name l) with
      | Some l' -> Alcotest.(check bool) "name round-trip" true (l = l')
      | None -> Alcotest.fail "layout name must parse")
    layouts;
  Alcotest.(check bool) "garbage rejected" true (Layout.of_string "blah" = None)

(* -- lookup tables -------------------------------------------------------- *)

let test_lut_exact_on_grid () =
  let t = Lut.build ~lo:(-2.0) ~hi:2.0 ~step:0.5 [| Float.exp; Float.sin |] in
  Alcotest.(check int) "rows" 9 t.Lut.rows;
  let row = Float.Array.make 2 0.0 in
  Lut.interp_row t 1.0 ~row;
  Helpers.check_close ~tol:1e-12 "exact at grid point (exp)" (Float.exp 1.0)
    (Float.Array.get row 0);
  Helpers.check_close ~tol:1e-12 "exact at grid point (sin)" (Float.sin 1.0)
    (Float.Array.get row 1)

let lut_interp_error_bound =
  (* linear interpolation error of exp on [-2, 2] with step h is bounded by
     h^2/8 * max|f''| = h^2/8 * e^2 *)
  Helpers.qtest ~count:300 "interpolation error within theoretical bound"
    (QCheck.float_range (-2.0) 2.0)
    (fun x ->
      let step = 0.01 in
      let t = Lut.build ~lo:(-2.0) ~hi:2.0 ~step [| Float.exp |] in
      let row = Float.Array.make 1 0.0 in
      Lut.interp_row t x ~row;
      let bound = step *. step /. 8.0 *. Float.exp 2.0 +. 1e-12 in
      Float.abs (Float.Array.get row 0 -. Float.exp x) <= bound)

let test_lut_clamps () =
  let t = Lut.build ~lo:0.0 ~hi:1.0 ~step:0.25 [| Fun.id |] in
  let row = Float.Array.make 1 0.0 in
  Lut.interp_row t (-5.0) ~row;
  Helpers.fcheck "clamped low" 0.0 (Float.Array.get row 0);
  Lut.interp_row t 42.0 ~row;
  Helpers.fcheck "clamped high" 1.0 (Float.Array.get row 0)

let vec_interp_matches_scalar =
  Helpers.qtest ~count:200 "vector interpolation == scalar per lane"
    QCheck.(
      quad (QCheck.float_range (-3.0) 3.0) (QCheck.float_range (-3.0) 3.0)
        (QCheck.float_range (-3.0) 3.0) (QCheck.float_range (-3.0) 3.0))
    (fun (a, b, c, d) ->
      let t =
        Lut.build ~lo:(-2.0) ~hi:2.0 ~step:0.1 [| Float.exp; Float.cos; Float.tanh |]
      in
      let xs = Float.Array.of_list [ a; b; c; d ] in
      let vrow = Float.Array.make (3 * 4) 0.0 in
      Lut.interp_row_vec t xs ~row:vrow;
      let srow = Float.Array.make 3 0.0 in
      let ok = ref true in
      Float.Array.iteri
        (fun lane x ->
          Lut.interp_row t x ~row:srow;
          for col = 0 to 2 do
            if
              not
                (Helpers.same_float
                   (Float.Array.get vrow ((col * 4) + lane))
                   (Float.Array.get srow col))
            then ok := false
          done)
        xs;
      !ok)

(* -- cubic spline interpolation -------------------------------------------- *)

let test_cubic_more_accurate () =
  let t = Lut.build ~lo:(-2.0) ~hi:2.0 ~step:0.1 [| Float.exp |] in
  let row = Float.Array.make 1 0.0 in
  let worst f =
    let w = ref 0.0 in
    for i = 0 to 1000 do
      let x = -1.85 +. (3.7 *. float_of_int i /. 1000.0) in
      f t x ~row;
      w := Float.max !w (Float.abs (Float.Array.get row 0 -. Float.exp x))
    done;
    !w
  in
  let lin = worst Lut.interp_row and cub = worst Lut.interp_row_cubic in
  Alcotest.(check bool)
    (Printf.sprintf "cubic ≫ linear accuracy (%.2e vs %.2e)" cub lin)
    true
    (cub < lin /. 50.0)

let test_cubic_exact_on_grid () =
  let t = Lut.build ~lo:0.0 ~hi:4.0 ~step:0.5 [| Float.sin |] in
  let row = Float.Array.make 1 0.0 in
  Lut.interp_row_cubic t 2.0 ~row;
  Helpers.check_close ~tol:1e-12 "interpolates grid points exactly"
    (Float.sin 2.0) (Float.Array.get row 0)

let test_cubic_clamps () =
  let t = Lut.build ~lo:0.0 ~hi:1.0 ~step:0.1 [| Fun.id |] in
  let row = Float.Array.make 1 0.0 in
  Lut.interp_row_cubic t 99.0 ~row;
  Alcotest.(check bool) "finite when clamped high" true
    (Float.is_finite (Float.Array.get row 0));
  Lut.interp_row_cubic t (-99.0) ~row;
  Alcotest.(check bool) "finite when clamped low" true
    (Float.is_finite (Float.Array.get row 0))

let cubic_vec_matches_scalar =
  Helpers.qtest ~count:200 "cubic vector interpolation == scalar per lane"
    QCheck.(pair (QCheck.float_range (-2.5) 2.5) (QCheck.float_range (-2.5) 2.5))
    (fun (a, b) ->
      let t = Lut.build ~lo:(-2.0) ~hi:2.0 ~step:0.1 [| Float.exp; Float.sin |] in
      let xs = Float.Array.of_list [ a; b ] in
      let vrow = Float.Array.make 4 0.0 in
      Lut.interp_row_cubic_vec t xs ~row:vrow;
      let srow = Float.Array.make 2 0.0 in
      let ok = ref true in
      Float.Array.iteri
        (fun lane x ->
          Lut.interp_row_cubic t x ~row:srow;
          for col = 0 to 1 do
            if
              not
                (Helpers.same_float
                   (Float.Array.get vrow ((col * 2) + lane))
                   (Float.Array.get srow col))
            then ok := false
          done)
        xs;
      !ok)

(* -- svml ------------------------------------------------------------------- *)

let svml_exp_accuracy =
  Helpers.qtest ~count:400 "svml exp within advertised error"
    (QCheck.float_range (-50.0) 50.0)
    (fun x ->
      let got = Svml.exp_scalar x and want = Float.exp x in
      Float.abs (got -. want) <= Svml.advertised_rel_error *. Float.abs want)

let svml_log_accuracy =
  Helpers.qtest ~count:400 "svml log within advertised error"
    (QCheck.float_range (-9.0) 9.0)
    (fun e ->
      let x = Float.exp e in
      let got = Svml.log_scalar x and want = Float.log x in
      Float.abs (got -. want)
      <= Svml.advertised_rel_error *. Float.max 1.0 (Float.abs want))

let svml_tanh_accuracy =
  Helpers.qtest ~count:400 "svml tanh within 1e-10 absolute"
    (QCheck.float_range (-30.0) 30.0)
    (fun x -> Float.abs (Svml.tanh_scalar x -. Float.tanh x) <= 1e-10)

let test_svml_special_values () =
  Alcotest.(check bool) "exp(-inf) = 0" true (Svml.exp_scalar (-1000.0) = 0.0);
  Alcotest.(check bool) "exp overflow = inf" true
    (Svml.exp_scalar 800.0 = Float.infinity);
  Alcotest.(check bool) "exp nan" true (Float.is_nan (Svml.exp_scalar Float.nan));
  Alcotest.(check bool) "log 0 = -inf" true
    (Svml.log_scalar 0.0 = Float.neg_infinity);
  Alcotest.(check bool) "log of negative is nan" true
    (Float.is_nan (Svml.log_scalar (-1.0)));
  Helpers.check_close ~tol:1e-11 "pow" (Float.pow 2.5 3.5) (Svml.pow_scalar 2.5 3.5);
  Helpers.fcheck "pow of negative with integer exponent" (-8.0)
    (Svml.pow_scalar (-2.0) 3.0);
  (* subnormal input to log *)
  Alcotest.(check bool) "log subnormal finite" true
    (Float.is_finite (Svml.log_scalar 1e-310))

let test_svml_vectors () =
  let src = Float.Array.of_list [ -2.0; 0.0; 1.5; 30.0 ] in
  let dst = Float.Array.make 4 0.0 in
  Svml.exp_v ~src ~dst;
  Float.Array.iteri
    (fun i x ->
      Helpers.check_close ~tol:1e-11 "exp_v lane" (Float.exp x)
        (Float.Array.get dst i))
    src

(* -- parallel ------------------------------------------------------------- *)

let chunks_partition =
  Helpers.qtest ~count:200 "static chunks partition the range"
    QCheck.(triple (QCheck.int_range 1 16) (QCheck.int_range 0 50) (QCheck.int_range 0 200))
    (fun (nthreads, lo, len) ->
      let hi = lo + len in
      let chunks = Parallel.chunks ~nthreads ~lo ~hi in
      List.length chunks = nthreads
      && List.for_all (fun (a, b) -> a <= b) chunks
      && (let covered =
            List.concat_map (fun (a, b) -> List.init (b - a) (fun i -> a + i)) chunks
          in
          List.sort_uniq compare covered = List.init len (fun i -> lo + i))
      &&
      (* balanced to within one iteration *)
      let sizes = List.map (fun (a, b) -> b - a) chunks in
      let mn, mx = (List.fold_left min max_int sizes, List.fold_left max 0 sizes) in
      mx - mn <= 1)

let test_parallel_for () =
  let n = 1000 in
  let out = Array.make n 0 in
  Parallel.parallel_for ~nthreads:4 ~lo:0 ~hi:n (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- i * i
      done);
  Alcotest.(check bool) "all cells written" true
    (Array.for_all Fun.id (Array.init n (fun i -> out.(i) = i * i)))

let test_parallel_map_chunks () =
  let sums =
    Parallel.parallel_map_chunks ~nthreads:3 ~lo:0 ~hi:10 (fun lo hi ->
        List.fold_left ( + ) 0 (List.init (hi - lo) (fun i -> lo + i)))
  in
  Alcotest.(check int) "sum over chunks" 45 (List.fold_left ( + ) 0 sums)

(* -- stimulus -------------------------------------------------------------- *)

let test_stim () =
  let s = Sim.Stim.make ~amplitude:10.0 ~start:1.0 ~duration:2.0 ~period:100.0 () in
  Helpers.fcheck "before" 0.0 (Sim.Stim.at s 0.5);
  Helpers.fcheck "during" 10.0 (Sim.Stim.at s 1.5);
  Helpers.fcheck "after" 0.0 (Sim.Stim.at s 3.5);
  Helpers.fcheck "second beat" 10.0 (Sim.Stim.at s 101.5);
  Helpers.fcheck "between beats" 0.0 (Sim.Stim.at s 150.0);
  Helpers.fcheck "none" 0.0 (Sim.Stim.at Sim.Stim.none 1.5)

let suite =
  [
    layout_bijective;
    Alcotest.test_case "layout formulas" `Quick test_layout_formulas;
    Alcotest.test_case "layout padding" `Quick test_layout_padding;
    Alcotest.test_case "layout contiguity" `Quick test_layout_contiguity;
    Alcotest.test_case "layout names" `Quick test_layout_names;
    Alcotest.test_case "lut exact on grid" `Quick test_lut_exact_on_grid;
    lut_interp_error_bound;
    Alcotest.test_case "lut clamps out-of-range" `Quick test_lut_clamps;
    vec_interp_matches_scalar;
    Alcotest.test_case "cubic beats linear accuracy" `Quick
      test_cubic_more_accurate;
    Alcotest.test_case "cubic exact on grid" `Quick test_cubic_exact_on_grid;
    Alcotest.test_case "cubic clamps" `Quick test_cubic_clamps;
    cubic_vec_matches_scalar;
    svml_exp_accuracy;
    svml_log_accuracy;
    svml_tanh_accuracy;
    Alcotest.test_case "svml special values" `Quick test_svml_special_values;
    Alcotest.test_case "svml vectors" `Quick test_svml_vectors;
    chunks_partition;
    Alcotest.test_case "parallel_for" `Quick test_parallel_for;
    Alcotest.test_case "parallel_map_chunks" `Quick test_parallel_map_chunks;
    Alcotest.test_case "stimulus protocol" `Quick test_stim;
  ]
