(* Benchmark harness: regenerates every figure of the paper (CGO'23,
   limpetMLIR) from this reproduction.

   Sections (run all by default, or pass section names as arguments):
     fig2    single-thread AVX-512 speedup per model
     fig3    32-thread AVX-512 speedup per model
     fig4    class-average execution time vs threads
     fig5    geomean speedup for SSE/AVX2/AVX-512 across threads
     fig6    roofline (operational intensity vs GFlop/s, 32T AVX-512)
     layout  §4.4 data-layout ablation (AoS vs AoSoA)
     lut     §3.4.2 lookup-table ablation (LUT on vs off)
     icc     §5 icc omp-simd auto-vectorization comparison point
     wall    real wall-clock microbenchmarks through the execution engine
             (bechamel; one Test.make per figure-equivalent comparison)

   Workload parameters follow the paper: 8192 cells, 100 000 steps of
   0.01 ms (figures use the calibrated machine model; the host has one
   core and no vector ISA, see DESIGN.md).  The wall-clock section runs
   the real closure-compiled kernels on a scaled-down workload. *)

let cells = 8192
let steps = 100_000
let geo = Perf.Stats.geomean

(* Optional artifact-style CSV output: pass csv=DIR on the command line and
   every figure section also writes DIR/<section>.csv (the original
   artifact's evaluation.sh saves per-figure result files the same way). *)
let csv_dir : string option ref = ref None

let with_csv (section : string) (header : string) (rows : string list) : unit =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (section ^ ".csv") in
      let oc = open_out path in
      output_string oc (header ^ "\n");
      List.iter (fun r -> output_string oc (r ^ "\n")) rows;
      close_out oc;
      Fmt.pr "(wrote %s)@." path

let model e = Models.Registry.model e
let all_models = Models.Registry.all

(* All sections share the process-wide compile cache; repeated
   model × config pairs across sections cost one codegen. *)
let gen (cfg : Codegen.Config.t) (e : Models.Model_def.entry) : Codegen.Kernel.t =
  Codegen.Cache.generate_named cfg ~name:e.name (fun () -> model e)

let base e = gen Codegen.Config.baseline e
let mlir w e = gen (Codegen.Config.mlir ~width:w) e

let seconds g n =
  (Machine.Perfmodel.run_kernel g ~ncells:cells ~steps ~nthreads:n)
    .Machine.Perfmodel.seconds

let speedup ?(w = 8) ?(n = 1) e = seconds (base e) n /. seconds (mlir w e) n

let by_baseline_time (es : Models.Model_def.entry list) =
  List.sort (fun a b -> compare (seconds (base a) 1) (seconds (base b) 1)) es

let cls_tag (e : Models.Model_def.entry) = Models.Model_def.cls_name e.cls
let hr () = print_endline (String.make 72 '-')

(* ------------------------------------------------------------------ *)

let fig2 () =
  hr ();
  let rows = ref [] in
  Fmt.pr "Figure 2: speedup of limpetMLIR vs baseline openCARP, 1 thread,@.";
  Fmt.pr "AVX-512 (width 8).  Models ordered by baseline execution time.@.";
  hr ();
  Fmt.pr "%-22s %-7s %12s %13s %9s@." "model" "class" "baseline(s)" "limpetMLIR(s)"
    "speedup";
  List.iter
    (fun e ->
      let tb = seconds (base e) 1 and tv = seconds (mlir 8 e) 1 in
      rows :=
        Printf.sprintf "%s,%s,%.3f,%.3f,%.4f" e.Models.Model_def.name
          (cls_tag e) tb tv (tb /. tv)
        :: !rows;
      Fmt.pr "%-22s %-7s %12.1f %13.1f %8.2fx@." e.Models.Model_def.name
        (cls_tag e) tb tv (tb /. tv))
    (by_baseline_time all_models);
  with_csv "fig2" "model,class,baseline_s,limpetmlir_s,speedup" (List.rev !rows);
  Fmt.pr "@.geomean (all): %.2fx   [paper: 5.25x]@."
    (geo (List.map (fun e -> speedup e) all_models));
  List.iter
    (fun c ->
      Fmt.pr "geomean (%s): %.2fx@."
        (Models.Model_def.cls_name c)
        (geo (List.map (fun e -> speedup e) (Models.Registry.by_class c))))
    [ Models.Model_def.Small; Medium; Large ]

let fig3 () =
  hr ();
  let rows = ref [] in
  Fmt.pr "Figure 3: speedup on 32 OpenMP threads (32 cores), AVX-512.@.";
  hr ();
  Fmt.pr "%-22s %-7s %12s %13s %9s@." "model" "class" "baseline(s)" "limpetMLIR(s)"
    "speedup";
  List.iter
    (fun e ->
      let tb = seconds (base e) 32 and tv = seconds (mlir 8 e) 32 in
      rows :=
        Printf.sprintf "%s,%s,%.4f,%.4f,%.4f" e.Models.Model_def.name
          (cls_tag e) tb tv (tb /. tv)
        :: !rows;
      Fmt.pr "%-22s %-7s %12.2f %13.2f %8.2fx@." e.Models.Model_def.name
        (cls_tag e) tb tv (tb /. tv))
    (by_baseline_time all_models);
  with_csv "fig3" "model,class,baseline_s,limpetmlir_s,speedup" (List.rev !rows);
  Fmt.pr "@.geomean (all): %.2fx   [paper: 1.93x]@."
    (geo (List.map (fun e -> speedup ~n:32 e) all_models));
  List.iter
    (fun (c, paper) ->
      Fmt.pr "geomean (%s): %.2fx   [paper: %s]@."
        (Models.Model_def.cls_name c)
        (geo (List.map (fun e -> speedup ~n:32 e) (Models.Registry.by_class c)))
        paper)
    [ (Models.Model_def.Small, "0.83x"); (Medium, "1.34x"); (Large, "6.03x") ]

let threads_axis = [ 1; 2; 4; 8; 16; 32 ]

let fig4 () =
  hr ();
  Fmt.pr "Figure 4: average execution time of the three model classes vs@.";
  Fmt.pr "thread count (AVX-512).  Rows: class x version; columns: threads.@.";
  hr ();
  Fmt.pr "%-8s %-10s %s@." "class" "version"
    (String.concat "" (List.map (Printf.sprintf "%9dT") threads_axis));
  List.iter
    (fun c ->
      let es = Models.Registry.by_class c in
      let avg f =
        List.map
          (fun n -> Perf.Stats.mean (List.map (fun e -> f e n) es))
          threads_axis
      in
      Fmt.pr "%-8s %-10s %s@." (Models.Model_def.cls_name c) "baseline"
        (String.concat ""
           (List.map (Printf.sprintf "%10.2f") (avg (fun e n -> seconds (base e) n))));
      Fmt.pr "%-8s %-10s %s@." (Models.Model_def.cls_name c) "limpetMLIR"
        (String.concat ""
           (List.map (Printf.sprintf "%10.2f") (avg (fun e n -> seconds (mlir 8 e) n)))))
    [ Models.Model_def.Small; Medium; Large ];
  Fmt.pr "@.Expected shape: large models scale near-ideally; small models@.";
  Fmt.pr "flatten (sync overhead dominates) and the limpetMLIR advantage@.";
  Fmt.pr "disappears at 32 threads for the small class.@."

let fig5 () =
  hr ();
  Fmt.pr "Figure 5: geomean speedups for SSE / AVX2 / AVX-512 vs threads.@.";
  hr ();
  Fmt.pr "%-9s %s@." "arch"
    (String.concat "" (List.map (Printf.sprintf "%9dT") threads_axis));
  let rows =
    List.map
      (fun w ->
        ( w,
          List.map
            (fun n -> geo (List.map (fun e -> speedup ~w ~n e) all_models))
            threads_axis ))
      [ 2; 4; 8 ]
  in
  List.iter
    (fun (w, sp) ->
      let name = match w with 2 -> "SSE" | 4 -> "AVX2" | _ -> "AVX-512" in
      Fmt.pr "%-9s %s@." name
        (String.concat "" (List.map (Printf.sprintf "%8.2fx") sp)))
    rows;
  with_csv "fig5" "arch,threads,geomean_speedup"
    (List.concat_map
       (fun (w, sp) ->
         let name = match w with 2 -> "SSE" | 4 -> "AVX2" | _ -> "AVX-512" in
         List.map2
           (fun n v -> Printf.sprintf "%s,%d,%.4f" name n v)
           threads_axis sp)
       rows);
  let overall = geo (List.concat_map snd rows) in
  Fmt.pr
    "@.overall geomean (all models, all archs, all threads): %.2fx   [paper: 2.90x]@."
    overall;
  List.iter
    (fun (w, paper) ->
      let sp =
        geo
          (List.map
             (fun e -> speedup ~w ~n:32 e)
             (Models.Registry.by_class Models.Model_def.Large))
      in
      let name = match w with 2 -> "SSE" | 4 -> "AVX2" | _ -> "AVX-512" in
      Fmt.pr "large models, 32T, %s: %.2fx   [paper: %s]@." name sp paper)
    [ (2, "3.80x"); (4, "5.13x"); (8, "6.03x") ]

let fig6 () =
  hr ();
  Fmt.pr "Figure 6: roofline, 32 threads AVX-512 (limpetMLIR kernels).@.";
  let arch = Machine.Arch.avx512 in
  let c = Machine.Ert.ceilings arch ~nthreads:32 in
  Fmt.pr "platform ceilings (ERT analogue): peak %.0f GFlop/s, DRAM %.0f GB/s,@."
    c.Machine.Ert.peak_gflops c.Machine.Ert.dram_bw;
  Fmt.pr "L1 %.0f GB/s   [paper: 760 GFlop/s, 199 GB/s, 1052 GB/s]@."
    c.Machine.Ert.l1_bw;
  hr ();
  let points =
    List.map
      (fun e ->
        let r =
          Machine.Perfmodel.run_kernel (mlir 8 e) ~ncells:cells ~steps ~nthreads:32
        in
        {
          Perf.Roofline.label = e.Models.Model_def.name;
          oi = r.Machine.Perfmodel.oi;
          gflops = r.Machine.Perfmodel.gflops;
          cls = cls_tag e;
        })
      all_models
  in
  Fmt.pr "%a" Perf.Roofline.pp_points points;
  with_csv "fig6" "model,class,oi_flops_per_byte,gflops"
    (List.map
       (fun (p : Perf.Roofline.point) ->
         Printf.sprintf "%s,%s,%.5f,%.3f" p.label p.cls p.oi p.gflops)
       points);
  let rc =
    {
      Perf.Roofline.peak_gflops = c.Machine.Ert.peak_gflops;
      dram_bw = c.Machine.Ert.dram_bw;
      l1_bw = c.Machine.Ert.l1_bw;
    }
  in
  let membound =
    List.filter
      (fun p -> Perf.Roofline.memory_bound rc ~oi:p.Perf.Roofline.oi)
      points
  in
  Fmt.pr "@.ridge point: %.2f Flops/Byte; %d of %d models are memory-bound@."
    (Perf.Roofline.ridge rc) (List.length membound) (List.length points);
  Fmt.pr "(paper: the majority of models sit left of ~4 Flops/Byte).@."

let layout_ablation () =
  hr ();
  Fmt.pr "Section 4.4: data-layout ablation (AoSoA transformation off/on),@.";
  Fmt.pr "AVX-512, geomean over 1..32 threads.@.";
  hr ();
  let aos_cfg =
    { (Codegen.Config.mlir ~width:8) with layout = Runtime.Layout.AoS }
  in
  let sp cfg e =
    geo (List.map (fun n -> seconds (base e) n /. seconds (gen cfg e) n) threads_axis)
  in
  let sp_aos = geo (List.map (sp aos_cfg) all_models) in
  let sp_aosoa = geo (List.map (sp (Codegen.Config.mlir ~width:8)) all_models) in
  Fmt.pr "all-model geomean: AoS %.2fx -> AoSoA %.2fx   [paper: 3.12x -> 3.37x]@."
    sp_aos sp_aosoa;
  let sn = Models.Registry.find_exn "Stress_Niederer" in
  Fmt.pr "Stress_Niederer, 32T: AoS %.2fx -> AoSoA %.2fx   [paper: 4.98x -> 6.03x]@."
    (seconds (base sn) 32 /. seconds (gen aos_cfg sn) 32)
    (seconds (base sn) 32 /. seconds (mlir 8 sn) 32)

let lut_ablation () =
  hr ();
  Fmt.pr "Section 3.4.2: lookup-table ablation.  The paper's >6x claim is@.";
  Fmt.pr "about LUT vs non-LUT model versions in openCARP (scalar libm@.";
  Fmt.pr "recomputation per cell); the vector column shows the remaining@.";
  Fmt.pr "benefit once SVML already made math cheap.  1 thread.@.";
  hr ();
  let nolut_s = { Codegen.Config.baseline with use_lut = false } in
  let nolut_v = { (Codegen.Config.mlir ~width:8) with use_lut = false } in
  Fmt.pr "%-22s %14s %14s@." "model" "scalar gain" "vector gain";
  let gains =
    List.filter_map
      (fun e ->
        let g = mlir 8 e in
        if g.Codegen.Kernel.lut_plans = [] then None
        else
          let gs = seconds (gen nolut_s e) 1 /. seconds (base e) 1 in
          let gv = seconds (gen nolut_v e) 1 /. seconds g 1 in
          Fmt.pr "%-22s %13.2fx %13.2fx@." e.Models.Model_def.name gs gv;
          Some gs)
      (by_baseline_time all_models)
  in
  let _, mx = Perf.Stats.min_max gains in
  Fmt.pr "@.geomean scalar LUT gain: %.2fx; max %.2fx   [paper: reaches >6x]@."
    (geo gains) mx

let icc_ablation () =
  hr ();
  Fmt.pr "Section 5: icc 'omp simd' auto-vectorization comparison point@.";
  Fmt.pr "(vector arithmetic, serialized math calls, AoS gathers),@.";
  Fmt.pr "AVX-512, geomean over 1..32 threads.@.";
  hr ();
  let icc_cfg = Codegen.Config.autovec ~width:8 in
  let sp cfg e =
    geo (List.map (fun n -> seconds (base e) n /. seconds (gen cfg e) n) threads_axis)
  in
  let sp_icc = geo (List.map (sp icc_cfg) all_models) in
  let sp_mlir = geo (List.map (sp (Codegen.Config.mlir ~width:8)) all_models) in
  Fmt.pr "icc-style auto-vectorization: %.2fx   [paper: 2.19x]@." sp_icc;
  Fmt.pr "limpetMLIR:                   %.2fx   [paper: 3.37x]@." sp_mlir

let spline_ablation () =
  hr ();
  Fmt.pr "Extension (paper section 7 future work): cubic spline vs linear@.";
  Fmt.pr "LUT interpolation.  Accuracy: worst error of the interpolated@.";
  Fmt.pr "HodgkinHuxley rate-function columns over a fine Vm sweep, at@.";
  Fmt.pr "several table steps.  Cost from the machine model at the paper's@.";
  Fmt.pr "0.05 mV step, 1 thread AVX-512.@.";
  hr ();
  let e = Models.Registry.find_exn "HodgkinHuxley" in
  let g = mlir 8 e in
  let plan = List.hd g.Codegen.Kernel.lut_plans in
  let columns =
    List.map
      (fun (c : Easyml.Lut_cones.column) x ->
        Easyml.Lut_cones.eval_column ~dt:0.01 plan c x)
      plan.Easyml.Lut_cones.columns
    |> Array.of_list
  in
  let ncols = Array.length columns in
  let worst interp step =
    let t = Runtime.Lut.build ~lo:(-90.0) ~hi:60.0 ~step columns in
    let row = Float.Array.make ncols 0.0 in
    let w = ref 0.0 in
    for i = 0 to 3000 do
      let x = -85.0 +. (140.0 *. float_of_int i /. 3000.0) in
      interp t x ~row;
      Array.iteri
        (fun c col ->
          let exact = col x in
          let err =
            Float.abs (Float.Array.get row c -. exact)
            /. (1.0 +. Float.abs exact)
          in
          w := Float.max !w err)
        columns
    done;
    !w
  in
  Fmt.pr "%10s %14s %14s %9s@." "step(mV)" "linear err" "cubic err" "ratio";
  List.iter
    (fun step ->
      let el = worst Runtime.Lut.interp_row step in
      let ec = worst Runtime.Lut.interp_row_cubic step in
      Fmt.pr "%10g %14.3e %14.3e %8.0fx@." step el ec (el /. ec))
    [ 2.0; 1.0; 0.5; 0.1 ];
  let t_lin = seconds g 1 in
  let t_cub =
    seconds (gen { (Codegen.Config.mlir ~width:8) with lut_spline = true } e) 1
  in
  Fmt.pr "@.modelled kernel cost at the 0.05 mV step: linear %.1f s, cubic %.1f s@."
    t_lin t_cub;
  Fmt.pr "(%.2fx).  Cubic buys ~100-1000x column accuracy, so tables can be@."
    (t_cub /. t_lin);
  Fmt.pr "an order of magnitude coarser (smaller, more cache-resident) at@.";
  Fmt.pr "equal accuracy — the trade the paper's future-work section names.@."

(* ------------------------------------------------------------------ *)
(* Real wall-clock measurements through the execution engine            *)
(* ------------------------------------------------------------------ *)

(* Perf-regression harness over the real execution engines.  Tunables come
   from the command line: [cells=N] sets cells per kernel invocation,
   [steps=N] caps the bechamel sample count (the smoke target uses
   cells=64 steps=100), [json=FILE] writes the per-kernel medians to FILE
   so future PRs have a recorded trajectory (BENCH_wall.json in-tree). *)
let wall_cells = ref 512
let wall_limit = ref 300
let wall_json : string option ref = ref None

type wall_row = {
  wr_model : string;
  wr_cls : string;
  wr_cfg : string;  (** "scalar" | "vector" *)
  wr_engine : string;  (** "interp" | "closure" | "fused" | "batched" | ... *)
  wr_median_ns : float;
  wr_iqr_ns : float;  (** interquartile range of the per-run samples *)
  wr_samples : int;
  wr_phases : (string * float) list;
      (** span name -> total µs over a short traced re-run (tracing is
          off during the bechamel measurement itself) *)
  wr_health : int * int * int;
      (** (NaN, Inf, clamp-violation) totals over a short monitored
          re-run of the same driver — nonzero NaN fails the CI smoke *)
}

(* Each engine variant knows how to build its driver; "fused-noelide"
   keeps every runtime bounds check so the row pair quantifies what the
   bounds-proof elision pass buys on real hardware.  The base rows pin
   [~specialize:false] so their historical meaning is stable;
   "batched-spec" is the same batched engine with the runtime
   specializer on ([dt] and the padded cell count folded to IR
   constants, constant rows prefilled), so the batched/batched-spec
   pair measures what specialization buys. *)
let wall_engines =
  [
    ("interp",
     fun g n -> Sim.Driver.create ~engine:Sim.Driver.Reference ~specialize:false g ~ncells:n ~dt:0.01);
    ("closure",
     fun g n -> Sim.Driver.create ~engine:Sim.Driver.Compiled ~specialize:false g ~ncells:n ~dt:0.01);
    ("fused",
     fun g n -> Sim.Driver.create ~engine:Sim.Driver.Fused ~specialize:false g ~ncells:n ~dt:0.01);
    ("fused-noelide",
     fun g n -> Sim.Driver.create ~engine:Sim.Driver.Fused ~elide:false ~specialize:false g ~ncells:n ~dt:0.01);
    ("batched",
     fun g n -> Sim.Driver.create ~engine:Sim.Driver.Batched ~specialize:false g ~ncells:n ~dt:0.01);
    ("batched-spec",
     fun g n -> Sim.Driver.create ~engine:Sim.Driver.Batched ~specialize:true g ~ncells:n ~dt:0.01);
  ]

(* The native (JIT-C) engine exists only when a C toolchain is actually
   present: without one, Driver.create silently degrades to batched and
   every native row — and the native_vs_batched headline gated in CI —
   would be a fabricated 1.0.  Specialization on, like production
   [--engine native].  Kept out of [wall_engines] because it is
   measured in its own bechamel pass (see [wallclock]): retaining its
   dlopen'ed kernels during the main matrix measurement perturbs the
   batched/batched-spec rows by a few percent, enough to flip the
   specialization geomean gate. *)
let native_engine =
  if Exec.Native.available () then
    [ ("native",
       fun g n -> Sim.Driver.create ~engine:Sim.Driver.Native ~specialize:true g ~ncells:n ~dt:0.01) ]
  else []

let wall_configs =
  [ ("scalar", Codegen.Config.baseline); ("vector", Codegen.Config.mlir ~width:8) ]

let wall_reps =
  [ "MitchellSchaeffer"; "LuoRudy91"; "TenTusscher"; "GrandiPanditVoigt" ]

(* The wall rows time full stimulated steps (compute kernel plus the
   O(ncells) membrane update, which the kernel dominates).  Driving the
   compute stage alone holds Vm frozen while the gates integrate against
   it; stiff models (GrandiPanditVoigt) walk off to NaN within a few
   hundred such invocations, and timing a kernel over non-finite state
   is meaningless — denormal/NaN slow paths inflate the IQR to the size
   of the median.  S1 pacing keeps every trajectory physiological for
   the whole bechamel quota. *)
let wall_stim = Sim.Stim.default

(* Short traced re-run: a handful of steps under the tracer, so every
   BENCH_wall.json row carries a phase breakdown next to its median.
   Runs strictly after the bechamel measurement — tracing is disabled
   while samples are taken. *)
let phase_breakdown (d : Sim.Driver.t) : (string * float) list =
  Obs.Tracer.reset ();
  Obs.Tracer.enable ();
  for _ = 1 to 3 do
    Sim.Driver.step ~stim:wall_stim d
  done;
  Obs.Tracer.disable ();
  let snap = Obs.Tracer.snapshot () in
  List.map
    (fun (s : Obs.Export.span_stat) ->
      (s.Obs.Export.ss_name, s.Obs.Export.ss_total_us))
    (Obs.Export.summarize snap)

(* Short monitored re-run on the retained driver (strictly after the
   bechamel measurement, like the phase breakdown): every-step health
   sampling over a couple of steps, so each row records whether the
   kernel it timed was producing finite state. *)
let health_of (d : Sim.Driver.t) : int * int * int =
  Sim.Driver.enable_health
    ~cfg:{ Obs.Health.default_config with Obs.Health.stride = 1 }
    ~warn:(fun _ -> ())
    d;
  for _ = 1 to 2 do
    Sim.Driver.step ~stim:wall_stim d
  done;
  let totals =
    match Sim.Driver.health_snapshot d with
    | Some hs -> Obs.Health.totals hs
    | None -> (0, 0, 0)
  in
  Sim.Driver.disable_health d;
  totals

(* Every-model health sweep: short stimulated runs of all bundled models
   under every-step monitoring, on the fused vector config.  Recorded in
   BENCH_wall.json as "health_sweep"; the CI gate fails on any nonzero
   NaN count. *)
let health_sweep () : (string * (int * int * int)) list =
  let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.05 ~duration:0.1 () in
  List.map
    (fun (e : Models.Model_def.entry) ->
      let g = gen (Codegen.Config.mlir ~width:8) e in
      let d = Sim.Driver.create g ~ncells:32 ~dt:0.01 in
      Sim.Driver.enable_health
        ~cfg:{ Obs.Health.default_config with Obs.Health.stride = 1 }
        ~warn:(fun _ -> ())
        d;
      for _ = 1 to 20 do
        Sim.Driver.step ~stim d
      done;
      let totals =
        match Sim.Driver.health_snapshot d with
        | Some hs -> Obs.Health.totals hs
        | None -> (0, 0, 0)
      in
      Sim.Driver.disable_health d;
      (e.Models.Model_def.name, totals))
    Models.Registry.all

(* Rows with fewer bechamel samples than this carry too much variance to
   contribute to a geomean headline; they are dropped with a log line. *)
let min_geo_samples = 10

(* Flight-recorder cost: the same fused vector driver run to completion
   with and without a checkpoint writer at the CLI's default stride
   (1000 steps, keep 3, verify on — exactly what `limpetmlir run
   --checkpoint-dir` attaches), wall-clock around the whole run so the
   serialization and fsync cost is in the numerator.  Large models only:
   they carry the most state per checkpoint and are the rows the paper's
   figures care about.  The geomean is gated < 1.03 in CI. *)
let ckpt_stride = 1_000
let ckpt_steps = 3_000
let ckpt_reps = 3

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let checkpoint_overhead () : (string * float) list =
  let large =
    List.filter
      (fun n ->
        (Models.Registry.find_exn n).Models.Model_def.cls
        = Models.Model_def.Large)
      wall_reps
  in
  List.map
    (fun name ->
      let e = Models.Registry.find_exn name in
      let g = gen (Codegen.Config.mlir ~width:8) e in
      let wall ~(ckpt : bool) () =
        let d =
          Sim.Driver.create ~engine:Sim.Driver.Fused g ~ncells:!wall_cells
            ~dt:0.01
        in
        let writer, dir =
          if not ckpt then (None, None)
          else begin
            let dir =
              Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "limpet-ckpt-bench-%d-%s" (Unix.getpid ())
                   name)
            in
            ( Some (Obs.Recorder.create_writer ~dir ~stride:ckpt_stride ()),
              Some dir )
          end
        in
        let t0 = Unix.gettimeofday () in
        ignore (Sim.Driver.run ~stim:wall_stim ?ckpt:writer d ~steps:ckpt_steps);
        let t = Unix.gettimeofday () -. t0 in
        Option.iter rm_rf dir;
        t
      in
      let best f =
        let m = ref Float.infinity in
        for _ = 1 to ckpt_reps do
          Gc.compact ();
          m := Float.min !m (f ())
        done;
        !m
      in
      (* interleave-free: all plain reps, then all checkpointed reps, on
         freshly created drivers each time *)
      let plain = best (wall ~ckpt:false) in
      let ckpt = best (wall ~ckpt:true) in
      (name, ckpt /. plain))
    large

let wall_write_json (path : string) (rows : wall_row list)
    (sweep : (string * (int * int * int)) list)
    (summary : (string * float) list) : unit =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"cells\": %d,\n  \"sample_limit\": %d,\n" !wall_cells
       !wall_limit);
  Buffer.add_string b "  \"results\": [\n";
  List.iteri
    (fun i r ->
      let phases =
        String.concat ", "
          (List.map
             (fun (n, us) -> Printf.sprintf "%S: %.1f" n us)
             r.wr_phases)
      in
      let h_nan, h_inf, h_clamp = r.wr_health in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"model\": %S, \"class\": %S, \"config\": %S, \"engine\": \
            %S, \"median_ns\": %.1f, \"iqr_ns\": %.1f, \"samples\": %d, \
            \"phases\": {%s}, \"health\": {\"nan\": %d, \"inf\": %d, \
            \"clamp\": %d}}%s\n"
           r.wr_model r.wr_cls r.wr_cfg r.wr_engine r.wr_median_ns r.wr_iqr_ns
           r.wr_samples phases h_nan h_inf h_clamp
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n  \"health_sweep\": [\n";
  List.iteri
    (fun i (name, (nan, inf, clamp)) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"model\": %S, \"nan\": %d, \"inf\": %d, \"clamp\": %d}%s\n"
           name nan inf clamp
           (if i = List.length sweep - 1 then "" else ",")))
    sweep;
  Buffer.add_string b "  ],\n  \"summary\": {\n";
  List.iteri
    (fun i (k, v) ->
      (* NaN (e.g. every contributing row dropped for too few samples)
         is not valid JSON; record null so consumers see "not measured" *)
      let sv =
        if Float.is_nan v then "null" else Printf.sprintf "%.4f" v
      in
      Buffer.add_string b
        (Printf.sprintf "    %S: %s%s\n" k sv
           (if i = List.length summary - 1 then "" else ",")))
    summary;
  Buffer.add_string b "  }\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  Fmt.pr "(wrote %s)@." path

let wallclock () =
  hr ();
  Fmt.pr "Wall-clock microbenchmarks (bechamel): real execution of the@.";
  Fmt.pr "generated kernels on this host, {interp, closure, fused, batched,@.";
  Fmt.pr "native} engines x {scalar, vector} configs; median ns per stimulated@.";
  Fmt.pr "step (kernel-dominated) with the interquartile range per row.@.";
  hr ();
  (* keep each label's driver so the phase breakdown below re-runs the
     exact kernel instance bechamel measured *)
  let drivers : (string, Sim.Driver.t) Hashtbl.t = Hashtbl.create 64 in
  let mk_tests engines =
    List.concat_map
      (fun name ->
        let e = Models.Registry.find_exn name in
        List.concat_map
          (fun (cname, cfg) ->
            let g = gen cfg e in
            List.map
              (fun (ename, mk) ->
                let d = mk g !wall_cells in
                let label = Printf.sprintf "%s/%s/%s" name cname ename in
                Hashtbl.replace drivers label d;
                Bechamel.Test.make ~name:label
                  (Bechamel.Staged.stage (fun () ->
                       Sim.Driver.step ~stim:wall_stim d)))
              engines)
          wall_configs)
      wall_reps
  in
  let tests = mk_tests wall_engines in
  let test = Bechamel.Test.make_grouped ~name:"kernels" ~fmt:"%s %s" tests in
  (* the preceding sections leave a large heap behind; compact so GC churn
     does not pollute the measurements *)
  Gc.compact ();
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let quota = if !wall_limit < 300 then 0.1 else 1.0 in
  let cfg = Benchmark.cfg ~limit:!wall_limit ~quota:(Time.second quota) () in
  let raw = Benchmark.all cfg [ instance ] test in
  (* Second pass: the native (JIT-C) engine, measured with the main
     matrix already done — its drivers (and the shared objects they
     dlopen) must not be resident while the interpreted engines are
     being timed, or the batched/batched-spec rows shift by a few
     percent and the specialization gate flips on noise.  Labels merge
     into the same raw table; medians are host-comparable since
     bechamel runs everything sequentially anyway. *)
  (match native_engine with
  | [] -> ()
  | nat ->
      let ntest =
        Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (mk_tests nat)
      in
      Gc.compact ();
      let nraw = Benchmark.all cfg [ instance ] ntest in
      Hashtbl.iter (fun k v -> Hashtbl.replace raw k v) nraw);
  let clock = Measure.label instance in
  let median_of label : (float * float * int) option =
    match Hashtbl.find_opt raw ("kernels " ^ label) with
    | None -> None
    | Some (b : Benchmark.t) ->
        let per_run =
          Array.to_list b.Benchmark.lr
          |> List.filter_map (fun m ->
                 let runs = Measurement_raw.run m in
                 if runs <= 0.0 then None
                 else Some (Measurement_raw.get ~label:clock m /. runs))
        in
        if per_run = [] then None
        else
          Some
            ( Perf.Stats.median per_run,
              Perf.Stats.iqr per_run,
              List.length per_run )
  in
  let rows = ref [] in
  List.iter
    (fun name ->
      let e = Models.Registry.find_exn name in
      List.iter
        (fun (cname, _) ->
          let by_engine =
            List.filter_map
              (fun (ename, _) ->
                let label = Printf.sprintf "%s/%s/%s" name cname ename in
                match median_of label with
                | None -> None
                | Some (ns, iqr, samples) ->
                    let phases, health =
                      match Hashtbl.find_opt drivers label with
                      | Some d -> (phase_breakdown d, health_of d)
                      | None -> ([], (0, 0, 0))
                    in
                    rows :=
                      {
                        wr_model = name;
                        wr_cls = cls_tag e;
                        wr_cfg = cname;
                        wr_engine = ename;
                        wr_median_ns = ns;
                        wr_iqr_ns = iqr;
                        wr_samples = samples;
                        wr_phases = phases;
                        wr_health = health;
                      }
                      :: !rows;
                    Some (ename, ns))
              (wall_engines @ native_engine)
          in
          let ns ename = List.assoc_opt ename by_engine in
          (match
             ( ns "interp", ns "closure", ns "fused", ns "fused-noelide",
               ns "batched" )
           with
          | Some ti, Some tc, Some tf, Some tn, Some tb ->
              Fmt.pr
                "%-24s %-6s interp %11.1f us  closure %9.1f us  fused %9.1f \
                 us  batched %9.1f us  (closure/fused %.2fx, fused/batched \
                 %.2fx, elision %.2fx)@."
                name cname (ti /. 1e3) (tc /. 1e3) (tf /. 1e3) (tb /. 1e3)
                (tc /. tf) (tf /. tb) (tn /. tf)
          | _ -> Fmt.pr "%-24s %-6s (no estimate)@." name cname);
          match (ns "native", ns "batched") with
          | Some tnat, Some tb ->
              Fmt.pr "%-24s %-6s native %11.1f us  (batched/native %.2fx)@."
                name cname (tnat /. 1e3) (tb /. tnat)
          | _ -> ())
        wall_configs)
    wall_reps;
  let rows = List.rev !rows in
  (* Per-(model, config) median ratio of engine [num] over engine [den].
     Rows measured with too few samples are refused a geomean
     contribution and logged, so a short smoke run cannot fabricate a
     headline from noise. *)
  let ratios ~(num : string) ~(den : string) ~cls_filter ~cfg_filter =
    List.filter_map
      (fun r ->
        if r.wr_engine <> num || not (cls_filter r.wr_cls && cfg_filter r.wr_cfg)
        then None
        else
          match
            List.find_opt
              (fun f ->
                f.wr_model = r.wr_model && f.wr_cfg = r.wr_cfg
                && f.wr_engine = den)
              rows
          with
          | None -> None
          | Some f when
              r.wr_samples < min_geo_samples
              || f.wr_samples < min_geo_samples ->
              Fmt.pr
                "dropped: %s/%s %s/%s ratio from geomean (%d and %d samples, \
                 need %d)@."
                r.wr_model r.wr_cfg num den r.wr_samples f.wr_samples
                min_geo_samples;
              None
          | Some f -> Some (r.wr_median_ns /. f.wr_median_ns))
      rows
  in
  let geo_or_nan = function [] -> Float.nan | xs -> geo xs in
  let any _ = true in
  let large c = c = "large" in
  (* headline: fused vs the seed closure engine on the large-model class *)
  let sc =
    geo_or_nan (ratios ~num:"closure" ~den:"fused" ~cls_filter:large
                  ~cfg_filter:(fun c -> c = "scalar"))
  in
  let ve =
    geo_or_nan (ratios ~num:"closure" ~den:"fused" ~cls_filter:large
                  ~cfg_filter:(fun c -> c = "vector"))
  in
  let all =
    geo_or_nan
      (ratios ~num:"closure" ~den:"fused" ~cls_filter:large ~cfg_filter:any)
  in
  Fmt.pr "@.large-class fused-vs-closure median speedup: scalar %.2fx, \
          vector %.2fx, geomean %.2fx@."
    sc ve all;
  (* headline: tile-batched vs fused on the large-model class *)
  let bsc =
    geo_or_nan (ratios ~num:"fused" ~den:"batched" ~cls_filter:large
                  ~cfg_filter:(fun c -> c = "scalar"))
  in
  let bve =
    geo_or_nan (ratios ~num:"fused" ~den:"batched" ~cls_filter:large
                  ~cfg_filter:(fun c -> c = "vector"))
  in
  let ball =
    geo_or_nan
      (ratios ~num:"fused" ~den:"batched" ~cls_filter:large ~cfg_filter:any)
  in
  Fmt.pr "large-class batched-vs-fused median speedup: scalar %.2fx, \
          vector %.2fx, geomean %.2fx@."
    bsc bve ball;
  (* headline: runtime specialization on the batched engine, all model
     classes (the specializer's wins are not class-specific) *)
  let ssc =
    geo_or_nan (ratios ~num:"batched" ~den:"batched-spec" ~cls_filter:any
                  ~cfg_filter:(fun c -> c = "scalar"))
  in
  let sve =
    geo_or_nan (ratios ~num:"batched" ~den:"batched-spec" ~cls_filter:any
                  ~cfg_filter:(fun c -> c = "vector"))
  in
  let sall =
    geo_or_nan
      (ratios ~num:"batched" ~den:"batched-spec" ~cls_filter:any
         ~cfg_filter:any)
  in
  Fmt.pr "specialized-vs-batched median speedup: scalar %.2fx, vector \
          %.2fx, geomean %.2fx@."
    ssc sve sall;
  (* headline: the JIT-C native engine vs the batched engine over every
     model class (rows only exist when a toolchain is present; the
     geomean is gated >= 1.0 in CI) *)
  let nsc =
    geo_or_nan (ratios ~num:"batched" ~den:"native" ~cls_filter:any
                  ~cfg_filter:(fun c -> c = "scalar"))
  in
  let nve =
    geo_or_nan (ratios ~num:"batched" ~den:"native" ~cls_filter:any
                  ~cfg_filter:(fun c -> c = "vector"))
  in
  let nall =
    geo_or_nan
      (ratios ~num:"batched" ~den:"native" ~cls_filter:any ~cfg_filter:any)
  in
  Fmt.pr "native-vs-batched median speedup: scalar %.2fx, vector %.2fx, \
          geomean %.2fx@."
    nsc nve nall;
  (* bounds-elision delta: fused with every runtime check vs fused with
     proved checks dropped, all models and configs (>= 1 means elision
     did not regress) *)
  let el =
    geo_or_nan
      (ratios ~num:"fused-noelide" ~den:"fused" ~cls_filter:any
         ~cfg_filter:any)
  in
  Fmt.pr "bounds-check elision speedup (fused-noelide/fused geomean): %.2fx@."
    el;
  (* flight-recorder cost on the large rows: full runs with the default
     CLI writer attached vs without, wall-clock ratio *)
  let ck_rows = checkpoint_overhead () in
  List.iter
    (fun (name, r) ->
      Fmt.pr
        "checkpoint overhead (%s, fused vector, stride %d over %d steps): \
         %.4fx@."
        name ckpt_stride ckpt_steps r)
    ck_rows;
  let ck = geo_or_nan (List.map snd ck_rows) in
  Fmt.pr "checkpoint overhead geomean (gate < 1.03): %.4fx@." ck;
  Fmt.pr "(%d cells per kernel invocation)@." !wall_cells;
  match !wall_json with
  | None -> ()
  | Some path ->
      let sweep = health_sweep () in
      let nan_total =
        List.fold_left (fun acc (_, (nan, _, _)) -> acc + nan) 0 sweep
      in
      (let row_nan =
         List.fold_left
           (fun acc r -> let n, _, _ = r.wr_health in acc + n)
           0 rows
       in
       Fmt.pr "health sweep over %d model(s): %d NaN (rows: %d NaN)@."
         (List.length sweep) nan_total row_nan);
      wall_write_json path rows sweep
        [
          ("large_fused_vs_closure_scalar", sc);
          ("large_fused_vs_closure_vector", ve);
          ("large_fused_vs_closure_geomean", all);
          ("large_batched_vs_fused_scalar", bsc);
          ("large_batched_vs_fused_vector", bve);
          ("large_batched_vs_fused_geomean", ball);
          ("specialized_vs_batched_scalar", ssc);
          ("specialized_vs_batched_vector", sve);
          ("specialized_vs_batched_geomean", sall);
          ("native_vs_batched_scalar", nsc);
          ("native_vs_batched_vector", nve);
          ("native_vs_batched_geomean", nall);
          ("fused_elision_speedup_geomean", el);
          ("checkpoint_overhead_geomean", ck);
          ("health_nan_total", float_of_int nan_total);
        ]

(* ------------------------------------------------------------------ *)
(* Tissue-scale monodomain throughput                                  *)
(* ------------------------------------------------------------------ *)

(* Operator-split 1-D cable (tissue library) per execution engine:
   cells/sec over full tissue steps (ionic stage + exchange + implicit
   diffusion solve) plus the measured conduction velocity — which must
   agree across engines, since tissue trajectories are engine-bitwise.
   Tunables: [tissue-cells=N], [tissue-steps=N], [tissue-json=FILE]
   (BENCH_tissue.json in-tree). *)
let tissue_cells = ref 256
let tissue_steps = ref 7_500
let tissue_json : string option ref = ref None
let tissue_model = "MitchellSchaeffer"
let tissue_reps = 3

type tissue_row = {
  tr_engine : string;
  tr_wall_s : float;  (** best-of-[tissue_reps] wall seconds *)
  tr_cells_per_sec : float;
  tr_cv : float option;  (** conduction velocity, cm/ms *)
  tr_activated : int;
}

let tissue_engines () =
  [
    ("interp", Sim.Driver.Reference);
    ("closure", Sim.Driver.Compiled);
    ("fused", Sim.Driver.Fused);
    ("batched", Sim.Driver.Batched);
  ]
  @ if Exec.Native.available () then [ ("native", Sim.Driver.Native) ] else []

let tissue_write_json (path : string) (rows : tissue_row list) : unit =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"model\": %S,\n  \"geometry\": \"cable\",\n  \"cells\": %d,\n\
       \  \"steps\": %d,\n  \"dt_ms\": 0.01,\n  \"sigma\": 0.001,\n\
       \  \"splitting\": \"godunov\",\n  \"reps\": %d,\n"
       tissue_model !tissue_cells !tissue_steps tissue_reps);
  Buffer.add_string b "  \"results\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"engine\": %S, \"wall_s\": %.4f, \"cells_per_sec\": %.0f, \
            \"cv_cm_per_ms\": %s, \"activated\": %d}%s\n"
           r.tr_engine r.tr_wall_s r.tr_cells_per_sec
           (match r.tr_cv with
           | Some cv -> Printf.sprintf "%.9g" cv
           | None -> "null")
           r.tr_activated
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  let fastest =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some b when b.tr_cells_per_sec >= r.tr_cells_per_sec -> acc
        | _ -> Some r)
      None rows
  in
  Buffer.add_string b "  ],\n  \"summary\": {\n";
  (match fastest with
  | Some f ->
      Buffer.add_string b
        (Printf.sprintf "    \"fastest_engine\": %S,\n" f.tr_engine)
  | None -> ());
  let speedup num den =
    match
      ( List.find_opt (fun r -> r.tr_engine = num) rows,
        List.find_opt (fun r -> r.tr_engine = den) rows )
    with
    | Some a, Some d when d.tr_cells_per_sec > 0.0 ->
        Printf.sprintf "%.4f" (a.tr_cells_per_sec /. d.tr_cells_per_sec)
    | _ -> "null"
  in
  Buffer.add_string b
    (Printf.sprintf "    \"fused_vs_closure\": %s,\n"
       (speedup "fused" "closure"));
  Buffer.add_string b
    (Printf.sprintf "    \"native_vs_batched\": %s\n"
       (speedup "native" "batched"));
  Buffer.add_string b "  }\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  Fmt.pr "(wrote %s)@." path

let tissue_bench () =
  hr ();
  Fmt.pr "Tissue monodomain throughput: operator-split 1-D cable (%d cells,@."
    !tissue_cells;
  Fmt.pr "%d steps of 0.01 ms, S1 planar wave) per execution engine; cells/sec@."
    !tissue_steps;
  Fmt.pr "over full tissue steps and the measured conduction velocity.@.";
  hr ();
  let e = Models.Registry.find_exn tissue_model in
  let g = gen (Codegen.Config.mlir ~width:8) e in
  let geom = Tissue.Geometry.cable ~n:!tissue_cells ~dx:0.01 in
  let run_once engine =
    let sim =
      Tissue.Monodomain.create ~engine g ~geom ~dt:0.01
        ~protocol:(Tissue.Protocol.s1 geom)
    in
    let wall = Tissue.Monodomain.run sim ~steps:!tissue_steps in
    (wall, sim)
  in
  let rows =
    List.map
      (fun (name, engine) ->
        Gc.compact ();
        let best_wall = ref Float.infinity and last_sim = ref None in
        for _ = 1 to tissue_reps do
          let wall, sim = run_once engine in
          if wall < !best_wall then best_wall := wall;
          last_sim := Some sim
        done;
        let sim = Option.get !last_sim in
        let act = Tissue.Monodomain.activation sim in
        let row =
          {
            tr_engine = name;
            tr_wall_s = !best_wall;
            tr_cells_per_sec =
              float_of_int (!tissue_cells * !tissue_steps) /. !best_wall;
            tr_cv = Tissue.Monodomain.conduction_velocity sim;
            tr_activated = Tissue.Activation.activated act;
          }
        in
        Fmt.pr "%-8s %8.3f s   %12.0f cells/s   cv %s   activated %d/%d@."
          name row.tr_wall_s row.tr_cells_per_sec
          (match row.tr_cv with
          | Some cv -> Printf.sprintf "%.4f cm/ms" cv
          | None -> "n/a")
          row.tr_activated !tissue_cells;
        row)
      (tissue_engines ())
  in
  (* the trajectories — and so the measured CV — must agree across
     engines (native within its documented ULP bound) *)
  (match
     List.filter_map (fun r -> r.tr_cv) rows |> function
     | [] -> None
     | cv :: rest -> Some (cv, rest)
   with
  | Some (cv0, rest) ->
      List.iter
        (fun cv ->
          if Float.abs (cv -. cv0) > 1e-6 *. Float.abs cv0 then
            Fmt.pr "WARNING: cross-engine CV drift: %.9g vs %.9g@." cv cv0)
        rest
  | None -> Fmt.pr "WARNING: no engine measured a conduction velocity@.");
  with_csv "tissue" "engine,wall_s,cells_per_sec,cv_cm_per_ms,activated"
    (List.map
       (fun r ->
         Printf.sprintf "%s,%.4f,%.0f,%s,%d" r.tr_engine r.tr_wall_s
           r.tr_cells_per_sec
           (match r.tr_cv with
           | Some cv -> Printf.sprintf "%.9g" cv
           | None -> "")
           r.tr_activated)
       rows);
  match !tissue_json with
  | None -> ()
  | Some path -> tissue_write_json path rows

let sections =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("layout", layout_ablation);
    ("lut", lut_ablation);
    ("icc", icc_ablation);
    ("spline", spline_ablation);
    ("wall", wallclock);
    ("tissue", tissue_bench);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let key_val a =
    match String.index_opt a '=' with
    | None -> None
    | Some i ->
        Some (String.sub a 0 i, String.sub a (i + 1) (String.length a - i - 1))
  in
  let posint k v =
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ ->
        Fmt.epr "%s= wants a positive integer, got %S@." k v;
        exit 2
  in
  let args =
    List.filter
      (fun a ->
        match key_val a with
        | Some ("csv", v) ->
            csv_dir := Some v;
            false
        | Some ("json", v) ->
            wall_json := Some v;
            false
        | Some ("tissue-json", v) ->
            tissue_json := Some v;
            false
        | Some ("tissue-cells", v) ->
            tissue_cells := posint "tissue-cells" v;
            false
        | Some ("tissue-steps", v) ->
            tissue_steps := posint "tissue-steps" v;
            false
        | Some ("cells", v) ->
            wall_cells := posint "cells" v;
            false
        | Some ("steps", v) ->
            wall_limit := posint "steps" v;
            false
        | _ -> true)
      args
  in
  let todo =
    if args = [] then sections
    else
      List.filter_map
        (fun a ->
          match List.assoc_opt a sections with
          | Some f -> Some (a, f)
          | None ->
              Fmt.epr "unknown section %s (available: %s)@." a
                (String.concat ", " (List.map fst sections));
              None)
        args
  in
  Fmt.pr "limpetMLIR reproduction benchmark harness@.";
  Fmt.pr "workload: %d cells, %d steps of 0.01 ms (paper defaults)@." cells steps;
  Fmt.pr "figures use the calibrated Cascade Lake machine model (DESIGN.md);@.";
  Fmt.pr "the 'wall' section measures real kernel execution on this host.@.@.";
  List.iter (fun (_, f) -> f ()) todo;
  Fmt.pr "@.%s@." (Codegen.Cache.describe_stats ())
