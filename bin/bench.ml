(* openCARP `bench` analogue.

   Runs one or more ionic models for a number of time steps, comparing the
   baseline scalar kernel against the limpetMLIR vector kernel.  Reports
   both the real wall-clock time of the execution engine on this host and
   the machine-model projection onto the paper's 2x18-core Cascade Lake
   platform (see DESIGN.md for the substitution rationale). *)

open Cmdliner

let run models cells steps dt width threads validate =
  let entries =
    match models with
    | [] -> Models.Registry.all
    | names ->
        List.map
          (fun n ->
            match Models.Registry.find n with
            | Some e -> e
            | None -> Fmt.failwith "unknown model %s" n)
          names
  in
  Fmt.pr "%-22s %12s %13s %8s %14s@." "model" "baseline(s)" "limpetMLIR(s)"
    "speedup" "paper-model";
  let stim = Sim.Stim.default in
  let speedups = ref [] in
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let m = Models.Registry.model e in
      let gb = Codegen.Cache.generate Codegen.Config.baseline m in
      let gv = Codegen.Cache.generate (Codegen.Config.mlir ~width) m in
      let db = Sim.Driver.create gb ~ncells:cells ~dt in
      let dv = Sim.Driver.create gv ~ncells:cells ~dt in
      let tb = Sim.Driver.run ~nthreads:threads ~stim db ~steps in
      let tv = Sim.Driver.run ~nthreads:threads ~stim dv ~steps in
      (if validate then
         let sb = Sim.Driver.snapshot db 0 and sv = Sim.Driver.snapshot dv 0 in
         List.iter2
           (fun (n, a) (_, b) ->
             if
               (not (Float.is_finite a))
               || Float.abs (a -. b) > 1e-9 *. (Float.abs a +. 1.0)
             then
               Fmt.epr "  %s: scalar/vector mismatch on %s: %g vs %g@." e.name n
                 a b)
           sb sv);
      let proj =
        (Machine.Perfmodel.run_kernel gv ~ncells:8192 ~steps:100_000
           ~nthreads:threads)
          .Machine.Perfmodel.seconds
      in
      speedups := (tb /. tv) :: !speedups;
      Fmt.pr "%-22s %12.3f %13.3f %7.2fx %13.1fs@." e.name tb tv (tb /. tv) proj)
    entries;
  if List.length !speedups > 1 then
    Fmt.pr "@.geomean wall-clock speedup: %.2fx@." (Perf.Stats.geomean !speedups)

let main =
  let models =
    Arg.(value & pos_all string [] & info [] ~docv:"MODEL"
           ~doc:"Models to run (default: all 43).")
  in
  let cells =
    Arg.(value & opt int 256 & info [ "cells" ] ~docv:"N"
           ~doc:"Cells per model (openCARP default is 8192; the engine is an \
                 interpreter, so the default here is smaller).")
  in
  let steps =
    Arg.(value & opt int 500 & info [ "steps" ] ~docv:"N"
           ~doc:"Time steps (openCARP default is 100000).")
  in
  let dt = Arg.(value & opt float 0.01 & info [ "dt" ] ~docv:"MS") in
  let width = Arg.(value & opt int 8 & info [ "w"; "width" ] ~docv:"W") in
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~docv:"T") in
  let validate =
    Arg.(value & flag & info [ "validate" ]
           ~doc:"Check scalar/vector state agreement after the run.")
  in
  let doc = "openCARP-style benchmark driver for the limpetMLIR reproduction" in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const run $ models $ cells $ steps $ dt $ width $ threads $ validate)

let () = exit (Cmd.eval main)
