(* limpetMLIR command-line driver.

   Subcommands:
     list                   catalogue of bundled ionic models
     inspect MODEL          analyzed model (states, methods, LUTs, warnings)
     check MODEL...         lint models (diagnostics, --format=json, exit 1
                            on errors; --deep-verify runs the IR prover)
     emit MODEL             generated IR (scalar baseline or vector kernel)
     run MODEL              simulate and print an action-potential trace
                            (--health adds NaN/divergence watchdogs)
     serve MODEL            simulate with live /metrics + /healthz endpoints
     profile MODEL          trace a run; Chrome-trace / summary / Prometheus
     validate-metrics FILE  check a Prometheus exposition for format errors
     passes MODEL           before/after op counts for each optimization pass

   Models are resolved against the bundled registry first; a path to an
   EasyML file works everywhere a model name does. *)

open Cmdliner

let load_model (name : string) : Easyml.Model.t =
  match Models.Registry.find name with
  | Some e -> Models.Registry.model e
  | None ->
      if Sys.file_exists name then
        let ic = open_in_bin name in
        let src = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Easyml.Sema.analyze_source
          ~name:Filename.(remove_extension (basename name))
          src
      else
        Fmt.failwith "unknown model %s (not in registry, not a file)" name

let config ?(spline = false) ~width ~layout ~no_lut ~autovec () :
    Codegen.Config.t =
  let base =
    if autovec then Codegen.Config.autovec ~width
    else if width = 1 then Codegen.Config.baseline
    else Codegen.Config.mlir ~width
  in
  let base =
    match Runtime.Layout.of_string layout with
    | Some l -> { base with layout = l }
    | None when layout = "" -> base
    | None -> Fmt.failwith "unknown layout %s (aos, soa, aosoa<N>)" layout
  in
  { base with use_lut = not no_lut; lut_spline = spline }

(* -- flight recorder helpers ---------------------------------------- *)

let limpetmlir_version = "0.10.0"

let build_info () : Obs.Export.build_info =
  {
    Obs.Export.bi_version = limpetmlir_version;
    bi_ocaml = Sys.ocaml_version;
    bi_pipeline = Codegen.Cache.pipeline_id;
    bi_toolchain =
      (match Exec.Native.toolchain () with
      | Some tc -> tc.Exec.Native.id
      | None -> "unavailable");
  }

let bits_hex (v : float) : string =
  Printf.sprintf "%016Lx" (Int64.bits_of_float v)

let of_bits_hex (s : string) : float =
  Int64.float_of_bits (Int64.of_string ("0x" ^ s))

let engine_of_name : string -> Sim.Driver.engine option = function
  | "fused" -> Some Sim.Driver.Fused
  | "batched" -> Some Sim.Driver.Batched
  | "closure" -> Some Sim.Driver.Compiled
  | "interp" -> Some Sim.Driver.Reference
  | "native" -> Some Sim.Driver.Native
  | _ -> None

(* SIGINT/SIGTERM land here when a flight recorder is armed, so the
   main loop can write a crash dump before exiting with the
   conventional 128+signum code. *)
exception Interrupted of int

let arm_signals () : unit =
  let h code = Sys.Signal_handle (fun _ -> raise (Interrupted code)) in
  Sys.set_signal Sys.sigint (h 130);
  Sys.set_signal Sys.sigterm (h 143)

let health_text (d : Sim.Driver.t) : string option =
  match Sim.Driver.health_snapshot d with
  | None -> None
  | Some hs ->
      let nan, inf, range = Obs.Health.totals hs in
      Some
        (Printf.sprintf
           "%s: %d step(s) sampled, %d NaN, %d Inf, %d range violation(s)\n"
           (if hs.Obs.Health.hs_unhealthy then "UNHEALTHY" else "ok")
           hs.Obs.Health.hs_steps_sampled nan inf range)

(* Post-mortem bundle: structured report, recent trace events, health
   snapshot, and the newest on-disk checkpoint (when a writer ran). *)
let dump_crash ~(dir : string) ~(reason : string) ~(message : string)
    ~(d : Sim.Driver.t) (writer : Obs.Recorder.writer option) : unit =
  let report =
    let open Obs.Json in
    Obj
      [
        ("reason", Str reason);
        ("message", Str message);
        ("model", Str d.Sim.Driver.gen.Codegen.Kernel.model.Easyml.Model.name);
        ("engine", Str (Sim.Driver.engine_name d.Sim.Driver.engine));
        ("step", Num (float_of_int d.Sim.Driver.steps_done));
        ("time_ms", Num (Sim.Driver.time d));
        ("version", Str limpetmlir_version);
        ("pipeline", Str Codegen.Cache.pipeline_id);
      ]
  in
  let bundle =
    Obs.Recorder.crash_dump ~dir
      ?last_checkpoint:(Option.bind writer Obs.Recorder.last)
      ~events:(Obs.Tracer.tail ()) ?health:(health_text d) ~report ()
  in
  Fmt.epr "# crash dump -> %s@." bundle

(* Run manifest: everything an operator needs to reproduce or audit the
   run — model identity, engine/config/pipeline, toolchain, transval
   certificate count, population and BENCH-comparable timings. *)
let write_run_manifest ~(dir : string) ~(kind : string)
    ~(m : Easyml.Model.t) ~(cfg : Codegen.Config.t) ~(d : Sim.Driver.t)
    ~(steps : int) ~(threads : int) ~(wall_s : float) ~(compute_s : float)
    ~(extra : (string * Obs.Json.t) list) : unit =
  let open Obs.Json in
  let certs =
    List.fold_left
      (fun n (_, cs) -> n + List.length cs)
      0
      (Codegen.Cache.certificates ())
  in
  let manifest =
    Obj
      ([
         ("kind", Str kind);
         ("version", Str limpetmlir_version);
         ("ocaml", Str Sys.ocaml_version);
         ("model", Str m.Easyml.Model.name);
         ( "model_digest",
           Str (Digest.to_hex (Digest.string (Fmt.str "%a" Easyml.Model.pp m)))
         );
         ("config", Str (Codegen.Config.describe cfg));
         ("engine", Str (Sim.Driver.engine_name d.Sim.Driver.engine));
         ("tile", Num (float_of_int d.Sim.Driver.tile));
         ("specialized", Bool d.Sim.Driver.specialized);
         ("threads", Num (float_of_int threads));
         ("pipeline", Str Codegen.Cache.pipeline_id);
         ("transval_certificates", Num (float_of_int certs));
         ( "toolchain",
           Str
             (match Exec.Native.toolchain () with
             | Some tc -> tc.Exec.Native.id
             | None -> "unavailable") );
         ("cells", Num (float_of_int d.Sim.Driver.ncells));
         ("steps", Num (float_of_int steps));
         ("dt_ms", Num d.Sim.Driver.dt);
         ( "timings",
           Obj [ ("compute_s", Num compute_s); ("wall_s", Num wall_s) ] );
       ]
      @ extra)
  in
  let path = Obs.Recorder.write_manifest ~dir manifest in
  Fmt.pr "# run manifest -> %s@." path

(* -- common args ---------------------------------------------------- *)

let model_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL")

let width_arg =
  Arg.(value & opt int 8 & info [ "w"; "width" ] ~docv:"W"
         ~doc:"Vector width: 1 (scalar baseline), 2 (SSE), 4 (AVX2), 8 (AVX-512).")

let layout_arg =
  Arg.(value & opt string "" & info [ "layout" ] ~docv:"L"
         ~doc:"Data layout override: aos, soa, or aosoa<N>.")

let no_lut_arg =
  Arg.(value & flag & info [ "no-lut" ] ~doc:"Disable lookup-table generation.")

let autovec_arg =
  Arg.(value & flag & info [ "autovec" ]
         ~doc:"icc-style auto-vectorization cost profile (see paper section 5).")

let spline_arg =
  Arg.(value & flag & info [ "spline" ]
         ~doc:"Cubic (Catmull-Rom) lookup-table interpolation instead of \
               linear (the paper's section 7 future-work item).")

let engine_arg =
  Arg.(value
       & opt
           (enum
              [ ("fused", Sim.Driver.Fused); ("batched", Sim.Driver.Batched);
                ("native", Sim.Driver.Native);
                ("closure", Sim.Driver.Compiled);
                ("interp", Sim.Driver.Reference) ])
           Sim.Driver.Fused
       & info [ "engine" ] ~docv:"E"
           ~doc:"Execution engine: $(b,fused) (threaded code with \
                 superinstructions, default), $(b,batched) (tile-batched \
                 loop inversion over coalesced scratch rows), $(b,native) \
                 (the lowered kernel emitted as C, compiled by the system \
                 toolchain — \\$LIMPET_CC, else cc/gcc/clang — and \
                 dlopen'ed; when no toolchain is found it degrades to \
                 $(b,batched) with a warning, never an error), \
                 $(b,closure) (per-op closures), or $(b,interp) (slow \
                 tree-walking reference).  All five engines produce \
                 bitwise-identical trajectories.")

let tile_arg =
  Arg.(value & opt int 0 & info [ "tile" ] ~docv:"N"
         ~doc:"Batched-engine tile size in vector blocks \
               (0 = auto-size for L1; ignored by the other engines).")

let specialize_arg =
  Arg.(value & opt bool true & info [ "specialize" ] ~docv:"BOOL"
         ~doc:"Partially evaluate the kernel over the run constants \
               ($(b,dt), padded cell count) before executing, and split \
               the time loop into constant-stimulus phases.  Bitwise \
               identical results either way; specialized artifacts are \
               cached per binding environment.  Default $(b,true).")

let ckpt_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Arm the flight recorder: write periodic checkpoints (exact \
                 Int64 bit patterns of every state buffer, with an MD5 \
                 content digest) under $(docv), plus a run manifest at the \
                 end and a crash-dump bundle on a hard health trip or \
                 SIGINT/SIGTERM.  A run resumed from any checkpoint with \
                 $(b,limpetmlir replay) finishes bitwise-identical to the \
                 uninterrupted run (native engine: \u{2264} 2 ULP).")

let ckpt_stride_arg =
  Arg.(value & opt int 1000 & info [ "checkpoint-stride" ] ~docv:"N"
         ~doc:"Checkpoint every N steps (with --checkpoint-dir).")

let ckpt_keep_arg =
  Arg.(value & opt int 3 & info [ "checkpoint-keep" ] ~docv:"K"
         ~doc:"Keep only the newest K checkpoint files (rotation).")

let final_digest_arg =
  Arg.(value & flag & info [ "final-digest" ]
         ~doc:"Print the MD5 content digest of the final state (always \
               printed when --checkpoint-dir is set); two runs reaching \
               the same state bit-for-bit print the same digest.")

let write_text (path : string) (text : string) : unit =
  let oc = open_out path in
  output_string oc text;
  if text = "" || text.[String.length text - 1] <> '\n' then
    output_char oc '\n';
  close_out oc

(* -- list ----------------------------------------------------------- *)

let list_cmd =
  let doc = "List the bundled ionic models." in
  let run () =
    Fmt.pr "%-24s %-7s %-11s %s@." "name" "class" "fidelity" "description";
    List.iter
      (fun (e : Models.Model_def.entry) ->
        Fmt.pr "%-24s %-7s %-11s %s@." e.name
          (Models.Model_def.cls_name e.cls)
          (match e.fidelity with
          | Models.Model_def.Faithful -> "faithful"
          | Structural -> "structural")
          e.description)
      Models.Registry.all;
    List.iter
      (fun (c, n) -> Fmt.pr "@.%d %s" n (Models.Model_def.cls_name c))
      (Models.Registry.class_counts ());
    Fmt.pr " = %d models@." (List.length Models.Registry.all)
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* -- inspect -------------------------------------------------------- *)

let inspect_cmd =
  let doc = "Show the analyzed form of a model." in
  let run name =
    let m = load_model name in
    Fmt.pr "%a@." Easyml.Model.pp m;
    List.iter (fun d -> Fmt.pr "%a@." (Easyml.Diag.pp ~file:name) d) m.warnings
  in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const run $ model_arg)

(* -- check ---------------------------------------------------------- *)

let check_cmd =
  let doc =
    "Lint EasyML models: analyzer diagnostics plus range-based checks \
     (unused state variables, lookup-table domains, markov occupancies). \
     Exits non-zero when any error-severity diagnostic is found.  A model \
     that passes runs identically on all five execution engines — \
     $(b,fused) (threaded code, default), $(b,batched) (tile-batched loop \
     inversion), $(b,native) (JIT-compiled C; degrades to batched with a \
     warning when no C toolchain is available), $(b,closure), and \
     $(b,interp) (reference) — selected with $(b,--engine) on \
     run/profile/serve."
  in
  let models =
    Arg.(value & pos_all string [] & info [] ~docv:"MODEL"
           ~doc:"Models to check (registry names or .easyml paths).")
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Check every bundled model.")
  in
  let format =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,text) (GCC-style, one line per \
                   diagnostic) or $(b,json) (an array of objects).")
  in
  let deep =
    Arg.(value & flag & info [ "deep-verify" ]
           ~doc:"Also generate the scalar and vector kernels for each model \
                 and run the deep IR verifier (structural checks plus \
                 dataflow-backed range and initialization proofs).")
  in
  let validate_passes =
    Arg.(value & flag & info [ "validate-passes" ]
           ~doc:"Translation validation: compile each model's scalar and \
                 vector kernels (and a specialized variant) with the \
                 optimization pipeline in validating mode, proving every \
                 pass application semantics-preserving.  A refutation is \
                 an error (with the first diverging symbolic terms and \
                 the responsible pass); an undecided obligation is a \
                 warning.")
  in
  let certs_out =
    Arg.(value & opt (some string) None & info [ "certs-out" ] ~docv:"FILE"
           ~doc:"With --validate-passes, write all per-pass certificates \
                 (pass id, IR digests, obligation count, verdict, time) \
                 as JSON to $(docv).")
  in
  let run models all format deep validate_passes certs_out =
    let names =
      if all then List.map (fun (e : Models.Model_def.entry) -> e.name)
          Models.Registry.all
      else models
    in
    if names = [] then
      Fmt.failwith "no models to check (name one or pass --all)";
    if validate_passes then begin
      Codegen.Cache.set_validation true;
      Codegen.Cache.clear ()
    end;
    let json_items = ref [] in
    let n_err = ref 0 and n_warn = ref 0 and n_info = ref 0 in
    let emit_diag ~file (d : Easyml.Diag.t) =
      (match d.Easyml.Diag.sev with
      | Easyml.Diag.Error -> incr n_err
      | Easyml.Diag.Warning -> incr n_warn
      | Easyml.Diag.Info -> incr n_info);
      match format with
      | `Text -> Fmt.pr "%a@." (Easyml.Diag.pp ~file) d
      | `Json -> json_items := Easyml.Diag.to_json ~file d :: !json_items
    in
    List.iter
      (fun name ->
        match load_model name with
        | exception e ->
            emit_diag ~file:name
              (Easyml.Diag.makef ~sev:Easyml.Diag.Error ~code:"load-failed"
                 "%s" (Printexc.to_string e))
        | m ->
            List.iter (emit_diag ~file:name) (Analysis.Lint.check m);
            if deep then
              List.iter
                (fun cfg ->
                  match Codegen.Cache.generate cfg m with
                  | exception e ->
                      emit_diag ~file:name
                        (Easyml.Diag.makef ~sev:Easyml.Diag.Error
                           ~code:"codegen-failed" "%s (%s)"
                           (Printexc.to_string e)
                           (Codegen.Config.describe cfg))
                  | g ->
                      List.iter
                        (fun err ->
                          emit_diag ~file:name
                            (Easyml.Diag.makef ~sev:Easyml.Diag.Error
                               ~code:"deep-verify" "%a (%s)"
                               Ir.Verifier.pp_error err
                               (Codegen.Config.describe cfg)))
                        (Analysis.Deep.verify_module g.Codegen.Kernel.modl))
                [ Codegen.Config.baseline; Codegen.Config.mlir ~width:8 ];
            if validate_passes then
              List.iter
                (fun cfg ->
                  match Codegen.Cache.generate cfg m with
                  | exception Codegen.Cache.Validation_failed cert ->
                      Option.iter (emit_diag ~file:name)
                        (Analysis.Transval.diag_of_cert cert)
                  | exception e ->
                      emit_diag ~file:name
                        (Easyml.Diag.makef ~sev:Easyml.Diag.Error
                           ~code:"codegen-failed" "%s (%s)"
                           (Printexc.to_string e)
                           (Codegen.Config.describe cfg))
                  | g -> (
                      (* Also validate the specialized pipeline, including
                         the composite specialize obligation. *)
                      match
                        Codegen.Cache.specialize g ~dt:0.01 ~ncells_pad:64
                      with
                      | exception Codegen.Cache.Validation_failed cert ->
                          Option.iter (emit_diag ~file:name)
                            (Analysis.Transval.diag_of_cert cert)
                      | exception e ->
                          emit_diag ~file:name
                            (Easyml.Diag.makef ~sev:Easyml.Diag.Error
                               ~code:"specialize-failed" "%s (%s)"
                               (Printexc.to_string e)
                               (Codegen.Config.describe cfg))
                      | _ -> ()))
                [ Codegen.Config.baseline; Codegen.Config.mlir ~width:8 ])
      names;
    if validate_passes then begin
      let certs = Codegen.Cache.certificates () in
      let n_certs = ref 0 and n_unknown = ref 0 and n_refuted = ref 0 in
      let total_ms = ref 0.0 in
      List.iter
        (fun (key, cs) ->
          List.iter
            (fun (c : Analysis.Transval.cert) ->
              incr n_certs;
              total_ms := !total_ms +. c.Analysis.Transval.c_ms;
              if Analysis.Transval.is_refuted c then incr n_refuted
              else if Analysis.Transval.is_unknown c then begin
                incr n_unknown;
                Option.iter (emit_diag ~file:key)
                  (Analysis.Transval.diag_of_cert c)
              end)
            cs)
        certs;
      (match certs_out with
      | None -> ()
      | Some file ->
          let buf = Buffer.create 4096 in
          Buffer.add_string buf "[";
          let first = ref true in
          List.iter
            (fun (key, cs) ->
              List.iter
                (fun c ->
                  if not !first then Buffer.add_string buf ",\n ";
                  first := false;
                  Buffer.add_string buf
                    (Printf.sprintf "{\"key\": \"%s\", \"cert\": %s}"
                       (Easyml.Diag.json_escape key)
                       (Analysis.Transval.cert_to_json c)))
                cs)
            certs;
          Buffer.add_string buf "]\n";
          let oc = open_out file in
          output_string oc (Buffer.contents buf);
          close_out oc);
      if format = `Text then
        Fmt.pr
          "validate-passes: %d certificate(s), %d proved, %d unknown, \
           %d refuted (%.1f ms)@."
          !n_certs
          (!n_certs - !n_unknown - !n_refuted)
          !n_unknown !n_refuted !total_ms
    end;
    (match format with
    | `Text ->
        Fmt.pr "checked %d model(s): %d error(s), %d warning(s), %d info@."
          (List.length names) !n_err !n_warn !n_info
    | `Json ->
        Fmt.pr "[%s]@." (String.concat ",\n " (List.rev !json_items)));
    if !n_err > 0 then exit 1
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ models $ all $ format $ deep $ validate_passes
          $ certs_out)

(* -- emit ----------------------------------------------------------- *)

let emit_cmd =
  let doc = "Print the generated IR module for a model." in
  let no_opt =
    Arg.(value & flag & info [ "no-opt" ] ~doc:"Skip the optimization pipeline.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the IR to a file instead of stdout (re-loadable with \
                 the parse subcommand).")
  in
  let c_out =
    Arg.(value & flag & info [ "c" ]
           ~doc:"Emit the C translation unit the native engine would \
                 JIT-compile (the IR printed through the C backend, with \
                 a provenance header) instead of the IR itself.")
  in
  let run name width layout no_lut autovec spline no_opt c_out output =
    let m = load_model name in
    let cfg = config ~spline ~width ~layout ~no_lut ~autovec () in
    let g = Codegen.Cache.generate ~optimize:(not no_opt) cfg m in
    (match Ir.Verifier.verify_module g.modl with
    | [] -> ()
    | errs -> Fmt.epr "%s@." (Ir.Verifier.errors_to_string errs));
    let text =
      if c_out then
        Codegen.C_backend.emit_module
          ~banner:
            [
              "model:    " ^ m.Easyml.Model.name;
              "config:   " ^ Codegen.Config.describe cfg;
              "pipeline: " ^ Codegen.Cache.pipeline_id;
              "flags:    " ^ String.concat " " Exec.Native.flags;
            ]
          g.modl
      else Ir.Printer.module_to_string g.modl
    in
    match output with
    | None -> Fmt.pr "%s@." text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        output_char oc '\n';
        close_out oc;
        Fmt.pr "wrote %s@." path
  in
  Cmd.v (Cmd.info "emit" ~doc)
    Term.(const run $ model_arg $ width_arg $ layout_arg $ no_lut_arg
          $ autovec_arg $ spline_arg $ no_opt $ c_out $ output)

(* -- run ------------------------------------------------------------ *)

let run_cmd =
  let doc = "Simulate a model and print an action-potential trace." in
  let cells =
    Arg.(value & opt int 16 & info [ "cells" ] ~docv:"N" ~doc:"Number of cells.")
  in
  let steps =
    Arg.(value & opt int 50_000 & info [ "steps" ] ~docv:"N"
           ~doc:"Number of 0.01 ms time steps.")
  in
  let dt = Arg.(value & opt float 0.01 & info [ "dt" ] ~docv:"MS") in
  let every =
    Arg.(value & opt int 1000 & info [ "trace-every" ] ~docv:"N"
           ~doc:"Print the trace every N steps (0 = summary only).")
  in
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~docv:"T") in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a Chrome trace of the whole run (compile + every \
                 step) and write it to $(docv); load it in Perfetto or \
                 chrome://tracing.  Tracing never changes results.")
  in
  let health =
    Arg.(value & flag & info [ "health" ]
           ~doc:"Monitor numerical health while running: per-variable \
                 NaN/Inf counts, gate clamp violations and a \
                 membrane-potential watchdog.  A hard trip (NaN, Inf, Vm \
                 out of range) aborts the run with exit code 3 and a \
                 report naming the variable, cell and step.  Monitoring \
                 never changes results.")
  in
  let health_stride =
    Arg.(value & opt int 16 & info [ "health-stride" ] ~docv:"N"
           ~doc:"Sample health every N steps (with --health).")
  in
  let validate =
    Arg.(value & flag & info [ "validate" ]
           ~doc:"Run the optimization pipeline in validating mode: prove \
                 every pass application (and the specializer) \
                 semantics-preserving before simulating.  A refutation \
                 aborts with exit code 4.")
  in
  let run name width layout no_lut autovec spline cells steps dt every threads
      engine tile specialize trace health health_stride validate ckpt_dir
      ckpt_stride ckpt_keep final_digest =
    let m = load_model name in
    let cfg = config ~spline ~width ~layout ~no_lut ~autovec () in
    (* checkpointed runs keep the tracer on so a crash dump carries the
       ring-buffer tail of recent events — tracing never changes results *)
    if trace <> None || ckpt_dir <> None then begin
      Obs.Tracer.reset ();
      Obs.Tracer.enable ()
    end;
    if validate then Codegen.Cache.set_validation true;
    let g, d =
      try
        let g = Codegen.Cache.generate cfg m in
        (g, Sim.Driver.create ~engine ~tile ~specialize g ~ncells:cells ~dt)
      with Codegen.Cache.Validation_failed cert ->
        Fmt.epr "translation validation refuted pass %s:@.%s@."
          cert.Analysis.Transval.c_pass
          (Analysis.Transval.cert_to_json cert);
        exit 4
    in
    if health then
      Sim.Driver.enable_health
        ~cfg:
          {
            Obs.Health.default_config with
            Obs.Health.stride = health_stride;
            policy = Obs.Health.Abort;
          }
        d;
    let stim = Sim.Stim.default in
    let writer =
      match ckpt_dir with
      | None -> None
      | Some dir ->
          arm_signals ();
          Some
            (Obs.Recorder.create_writer ~keep:ckpt_keep
               ~extra:
                 [
                   ("model_ref", name);
                   ("steps_total", string_of_int steps);
                   ("threads", string_of_int threads);
                   ("cli_width", string_of_int width);
                   ("cli_layout", layout);
                   ("cli_no_lut", string_of_bool no_lut);
                   ("cli_autovec", string_of_bool autovec);
                   ("cli_spline", string_of_bool spline);
                   ("engine_req", Sim.Driver.engine_name engine);
                 ]
               ~dir ~stride:ckpt_stride ())
    in
    Fmt.pr "# model=%s config=%s cells=%d steps=%d dt=%gms@." m.name
      (Codegen.Config.describe cfg) cells steps dt;
    if every > 0 then Fmt.pr "# t_ms Vm Iion@.";
    let compute_time = ref 0.0 in
    let wall0 = Unix.gettimeofday () in
    (try
       for s = 1 to steps do
         compute_time :=
           !compute_time +. Sim.Driver.step_timed ~nthreads:threads ~stim d;
         (match writer with
         | Some w when Obs.Recorder.due w ~step:d.Sim.Driver.steps_done ->
             ignore (Obs.Recorder.record w (Sim.Driver.capture d))
         | _ -> ());
         if every > 0 && s mod every = 0 then
           Fmt.pr "%8.2f %10.4f %10.4f@." (Sim.Driver.time d)
             (Sim.Driver.vm d 0)
             (Sim.Driver.ext d "Iion" 0)
       done
     with
    | Obs.Health.Tripped msg ->
        Fmt.epr "%s@." msg;
        Option.iter
          (fun dir -> dump_crash ~dir ~reason:"health-trip" ~message:msg ~d
               writer)
          ckpt_dir;
        exit 3
    | Interrupted code ->
        let msg = Printf.sprintf "interrupted by signal (exit %d)" code in
        Fmt.epr "%s@." msg;
        Option.iter
          (fun dir ->
            dump_crash ~dir ~reason:"signal" ~message:msg ~d writer)
          ckpt_dir;
        exit code);
    let wall_s = Unix.gettimeofday () -. wall0 in
    Fmt.pr "# compute stage: %.3f s wall clock@." !compute_time;
    if final_digest || writer <> None then
      Fmt.pr "# final state digest: %s@."
        (Obs.Recorder.digest (Sim.Driver.capture d));
    Option.iter
      (fun dir ->
        write_run_manifest ~dir ~kind:"cell" ~m ~cfg ~d ~steps ~threads
          ~wall_s ~compute_s:!compute_time ~extra:[])
      ckpt_dir;
    (match Sim.Driver.health_snapshot d with
    | None -> ()
    | Some hs ->
        let nan, inf, range = Obs.Health.totals hs in
        Fmt.pr "# health: %s — %d step(s) sampled, %d NaN, %d Inf, %d range \
                violation(s)@."
          (if hs.Obs.Health.hs_unhealthy then "UNHEALTHY" else "ok")
          hs.Obs.Health.hs_steps_sampled nan inf range);
    (match trace with
    | None -> ()
    | Some path ->
        Obs.Tracer.disable ();
        let snap = Obs.Tracer.snapshot () in
        write_text path (Obs.Export.chrome snap);
        Fmt.pr "# trace: %d events -> %s@."
          (List.length snap.Obs.Tracer.events) path);
    let r = Machine.Perfmodel.run_kernel g ~ncells:cells ~steps ~nthreads:threads in
    Fmt.pr "# machine model prediction on the paper's platform: %.3f s@."
      r.Machine.Perfmodel.seconds
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ model_arg $ width_arg $ layout_arg $ no_lut_arg
          $ autovec_arg $ spline_arg $ cells $ steps $ dt $ every $ threads
          $ engine_arg $ tile_arg $ specialize_arg $ trace $ health
          $ health_stride $ validate $ ckpt_dir_arg $ ckpt_stride_arg
          $ ckpt_keep_arg $ final_digest_arg)

(* -- tissue --------------------------------------------------------- *)

let tissue_cmd =
  let doc =
    "Tissue-scale monodomain simulation: the generated ionic kernel on \
     every node of a 1-D cable or 2-D sheet, coupled to an implicit \
     diffusion solve by operator splitting.  Measures the activation \
     map, conduction velocity and reentry (reactivation) counts."
  in
  let nx =
    Arg.(value & opt int 128 & info [ "nx" ] ~docv:"N"
           ~doc:"Nodes along x.")
  in
  let ny =
    Arg.(value & opt int 1 & info [ "ny" ] ~docv:"N"
           ~doc:"Nodes along y (1 = cable, >1 = sheet).")
  in
  let dx =
    Arg.(value & opt float 0.01 & info [ "dx" ] ~docv:"CM"
           ~doc:"Node spacing, cm.")
  in
  let dt = Arg.(value & opt float 0.01 & info [ "dt" ] ~docv:"MS") in
  let steps =
    Arg.(value & opt int 5_000 & info [ "steps" ] ~docv:"N"
           ~doc:"Number of time steps.")
  in
  let sigma =
    Arg.(value & opt float 0.001 & info [ "sigma" ] ~docv:"S"
           ~doc:"Effective diffusivity, cm²/ms.")
  in
  let splitting =
    Arg.(value
         & opt (enum [ ("godunov", Tissue.Monodomain.Godunov);
                       ("strang", Tissue.Monodomain.Strang) ])
             Tissue.Monodomain.Godunov
         & info [ "splitting" ] ~docv:"S"
             ~doc:"Operator splitting: $(b,godunov) (ionic then IMEX \
                   diffusion, the Solver.Cable convention, default) or \
                   $(b,strang) (half diffusion / full ionic / half \
                   diffusion, second-order).")
  in
  let protocol =
    Arg.(value
         & opt (enum [ ("s1", `S1); ("s1s2", `S1s2);
                       ("restitution", `Restitution) ])
             `S1
         & info [ "protocol" ] ~docv:"P"
             ~doc:"Stimulus protocol: $(b,s1) (planar wave from the x=0 \
                   strip, default), $(b,s1s2) (cross-field shock for \
                   spiral induction; set --s2-start), or \
                   $(b,restitution) (S1 pacing train plus premature S2; \
                   set --s1-count/--s1-interval/--s2-coupling).")
  in
  let stim_width =
    Arg.(value & opt int 5 & info [ "stim-width" ] ~docv:"N"
           ~doc:"Stimulated strip width in cells.")
  in
  let s2_start =
    Arg.(value & opt float 340.0 & info [ "s2-start" ] ~docv:"MS"
           ~doc:"S2 shock time for --protocol=s1s2.")
  in
  let s1_count =
    Arg.(value & opt int 4 & info [ "s1-count" ] ~docv:"N"
           ~doc:"S1 pulses in the restitution train.")
  in
  let s1_interval =
    Arg.(value & opt float 400.0 & info [ "s1-interval" ] ~docv:"MS"
           ~doc:"S1 pacing interval for --protocol=restitution.")
  in
  let s2_coupling =
    Arg.(value & opt float 300.0 & info [ "s2-coupling" ] ~docv:"MS"
           ~doc:"S2 coupling interval after the last S1.")
  in
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~docv:"T") in
  let block_check =
    Arg.(value & opt float 0.0 & info [ "block-check" ] ~docv:"MS"
           ~doc:"Arm the conduction-block detector: trip unless \
                 propagation left the stimulated region by this time \
                 (0 = off).")
  in
  let health =
    Arg.(value & flag & info [ "health" ]
           ~doc:"Numerical-health monitoring with the Abort policy: a \
                 hard trip (NaN, Inf, Vm range, conduction block) exits \
                 with code 3.")
  in
  let map_out =
    Arg.(value & opt (some string) None & info [ "map" ] ~docv:"FILE"
           ~doc:"Write the activation map to $(docv): CSV rows \
                 (cell,x,y,activation_ms,reactivations) when the name \
                 ends in .csv, a JSON object otherwise.")
  in
  let run name width layout no_lut autovec spline engine tile specialize nx ny
      dx dt steps sigma splitting protocol stim_width s2_start s1_count
      s1_interval s2_coupling threads block_check health map_out ckpt_dir
      ckpt_stride ckpt_keep final_digest =
    let m = load_model name in
    let cfg = config ~spline ~width ~layout ~no_lut ~autovec () in
    if ckpt_dir <> None then begin
      Obs.Tracer.reset ();
      Obs.Tracer.enable ()
    end;
    let geom =
      if ny <= 1 then Tissue.Geometry.cable ~n:nx ~dx
      else Tissue.Geometry.sheet ~nx ~ny ~dx
    in
    let proto =
      match protocol with
      | `S1 -> Tissue.Protocol.s1 ~width:stim_width geom
      | `S1s2 -> Tissue.Protocol.s1s2 ~width:stim_width ~s2_start geom
      | `Restitution ->
          Tissue.Protocol.restitution ~width:stim_width ~n_s1:s1_count
            ~interval:s1_interval ~s2_coupling geom
    in
    let tcfg =
      {
        Tissue.Monodomain.default_config with
        Tissue.Monodomain.sigma;
        splitting;
        block_check_ms = (if block_check > 0.0 then Some block_check else None);
      }
    in
    let g = Codegen.Cache.generate cfg m in
    let sim =
      Tissue.Monodomain.create ~engine ~tile ~specialize ~config:tcfg
        ~nthreads:threads g ~geom ~dt ~protocol:proto
    in
    let d = Tissue.Monodomain.driver sim in
    if health then
      Sim.Driver.enable_health
        ~cfg:{ Obs.Health.default_config with policy = Obs.Health.Abort }
        d;
    let splitting_name =
      match splitting with
      | Tissue.Monodomain.Godunov -> "godunov"
      | Tissue.Monodomain.Strang -> "strang"
    in
    let proto_kind =
      match protocol with
      | `S1 -> "s1"
      | `S1s2 -> "s1s2"
      | `Restitution -> "restitution"
    in
    let writer =
      match ckpt_dir with
      | None -> None
      | Some dir ->
          arm_signals ();
          Some
            (Obs.Recorder.create_writer ~keep:ckpt_keep
               ~extra:
                 [
                   ("model_ref", name);
                   ("steps_total", string_of_int steps);
                   ("threads", string_of_int threads);
                   ("cli_width", string_of_int width);
                   ("cli_layout", layout);
                   ("cli_no_lut", string_of_bool no_lut);
                   ("cli_autovec", string_of_bool autovec);
                   ("cli_spline", string_of_bool spline);
                   ("engine_req", Sim.Driver.engine_name engine);
                   ("nx", string_of_int nx);
                   ("ny", string_of_int ny);
                   ("dx_bits", bits_hex dx);
                   ("sigma_bits", bits_hex sigma);
                   ("splitting", splitting_name);
                   ("protocol", proto_kind);
                   ("stim_width", string_of_int stim_width);
                   ("s2_start_bits", bits_hex s2_start);
                   ("s1_count", string_of_int s1_count);
                   ("s1_interval_bits", bits_hex s1_interval);
                   ("s2_coupling_bits", bits_hex s2_coupling);
                   ("block_check_bits", bits_hex block_check);
                 ]
               ~dir ~stride:ckpt_stride ())
    in
    Fmt.pr "# tissue model=%s %s engine=%s splitting=%s protocol=%s \
            dt=%gms sigma=%g threads=%d@."
      m.name
      (Tissue.Geometry.describe geom)
      (Sim.Driver.engine_name d.Sim.Driver.engine)
      splitting_name proto.Tissue.Protocol.name dt sigma threads;
    let wall =
      try Tissue.Monodomain.run ?ckpt:writer sim ~steps with
      | Obs.Health.Tripped msg ->
          Fmt.epr "%s@." msg;
          Option.iter
            (fun dir ->
              dump_crash ~dir ~reason:"health-trip" ~message:msg ~d writer)
            ckpt_dir;
          exit 3
      | Interrupted code ->
          let msg = Printf.sprintf "interrupted by signal (exit %d)" code in
          Fmt.epr "%s@." msg;
          Option.iter
            (fun dir ->
              dump_crash ~dir ~reason:"signal" ~message:msg ~d writer)
            ckpt_dir;
          exit code
    in
    if final_digest || writer <> None then
      Fmt.pr "# final state digest: %s@."
        (Obs.Recorder.digest (Tissue.Monodomain.capture sim));
    Option.iter
      (fun dir ->
        write_run_manifest ~dir ~kind:"tissue" ~m ~cfg ~d ~steps ~threads
          ~wall_s:wall ~compute_s:wall
          ~extra:
            [
              ("geometry", Obs.Json.Str (Tissue.Geometry.describe geom));
              ("splitting", Obs.Json.Str splitting_name);
              ("protocol", Obs.Json.Str proto.Tissue.Protocol.name);
            ])
      ckpt_dir;
    let act = Tissue.Monodomain.activation sim in
    let n = Tissue.Geometry.cells geom in
    Fmt.pr "# steps=%d time=%gms wall=%.3fs cells/sec=%.0f@." steps
      (Tissue.Monodomain.time sim)
      wall
      (float_of_int (n * steps) /. wall);
    Fmt.pr "# activated %d/%d cell(s); %d reactivated; conduction block: %s@."
      (Tissue.Activation.activated act)
      n
      (Tissue.Activation.reactivated act)
      (if Tissue.Monodomain.blocked sim then "TRIPPED" else "no");
    let pa, pb = Tissue.Monodomain.probes sim in
    (match Tissue.Monodomain.conduction_velocity sim with
    | Some cv ->
        Fmt.pr "# conduction velocity cells %d->%d: %.4f cm/ms (%.1f cm/s)@."
          pa pb cv (cv *. 1000.0)
    | None ->
        Fmt.pr "# conduction velocity cells %d->%d: wave did not reach both \
                probes@."
          pa pb);
    match map_out with
    | None -> ()
    | Some path ->
        let text =
          if Filename.check_suffix path ".csv" then
            Tissue.Activation.to_csv act geom
          else
            Tissue.Activation.to_json
              ?cv:(Tissue.Monodomain.conduction_velocity sim)
              act geom
        in
        write_text path text;
        Fmt.pr "# activation map -> %s@." path
  in
  Cmd.v (Cmd.info "tissue" ~doc)
    Term.(const run $ model_arg $ width_arg $ layout_arg $ no_lut_arg
          $ autovec_arg $ spline_arg $ engine_arg $ tile_arg $ specialize_arg
          $ nx $ ny $ dx $ dt $ steps $ sigma $ splitting $ protocol
          $ stim_width $ s2_start $ s1_count $ s1_interval $ s2_coupling
          $ threads $ block_check $ health $ map_out $ ckpt_dir_arg
          $ ckpt_stride_arg $ ckpt_keep_arg $ final_digest_arg)

(* -- replay ---------------------------------------------------------- *)

let replay_cmd =
  let doc =
    "Resume a simulation from a flight-recorder checkpoint (written by \
     run/tissue/serve with --checkpoint-dir).  The checkpoint is \
     self-describing: the model, configuration, engine and population \
     are rebuilt from its metadata, the state buffers are restored \
     bit-for-bit, and the remaining steps are executed.  The resumed \
     trajectory finishes bitwise-identical to the uninterrupted run on \
     every engine (native: the kernels' \u{2264} 2 ULP bound); compare \
     the printed final state digests."
  in
  let file =
    Arg.(required & pos 0 (some Arg.file) None & info [] ~docv:"CHECKPOINT")
  in
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~docv:"T") in
  let steps_override =
    Arg.(value & opt (some int) None & info [ "steps" ] ~docv:"N"
           ~doc:"Steps to run from the checkpoint (default: the recorded \
                 total minus the checkpoint's step index).")
  in
  let run file threads steps_override =
    match Obs.Recorder.read file with
    | Error d ->
        Fmt.epr "%a@." (Easyml.Diag.pp ~file) d;
        exit 1
    | Ok ck -> (
        let req key =
          match Obs.Recorder.meta ck key with
          | Some v -> v
          | None ->
              Fmt.failwith "checkpoint lacks required metadata key %s" key
        in
        let opt key = Obs.Recorder.meta ck key in
        let m =
          load_model (match opt "model_ref" with
                      | Some r -> r
                      | None -> req "model")
        in
        let cfg =
          config
            ~spline:
              (match opt "cli_spline" with
              | Some b -> bool_of_string b
              | None -> false)
            ~width:
              (match opt "cli_width" with
              | Some w -> int_of_string w
              | None -> int_of_string (req "width"))
            ~layout:(match opt "cli_layout" with
                     | Some l -> l
                     | None -> req "layout")
            ~no_lut:
              (match opt "cli_no_lut" with
              | Some b -> bool_of_string b
              | None -> false)
            ~autovec:
              (match opt "cli_autovec" with
              | Some b -> bool_of_string b
              | None -> false)
            ()
        in
        let engine =
          let name = req "engine" in
          match engine_of_name name with
          | Some e -> e
          | None -> Fmt.failwith "checkpoint names unknown engine %s" name
        in
        let tile = int_of_string (req "tile") in
        let specialize = bool_of_string (req "specialized") in
        let dt = of_bits_hex (req "dt_bits") in
        let steps_total =
          match opt "steps_total" with
          | Some s -> int_of_string s
          | None -> ck.Obs.Recorder.ck_step
        in
        let remaining =
          match steps_override with
          | Some s -> s
          | None -> max 0 (steps_total - ck.Obs.Recorder.ck_step)
        in
        let g = Codegen.Cache.generate cfg m in
        let kind =
          match opt "kind" with Some k -> k | None -> "cell"
        in
        match kind with
        | "cell" ->
            let ncells = int_of_string (req "ncells") in
            let d =
              Sim.Driver.create ~engine ~tile ~specialize g ~ncells ~dt
            in
            (match Sim.Driver.restore d ck with
            | Error diag ->
                Fmt.epr "%a@." (Easyml.Diag.pp ~file) diag;
                exit 1
            | Ok () -> ());
            Fmt.pr
              "# replay %s: model=%s engine=%s resuming at step %d/%d \
               t=%gms (+%d step(s))@."
              file m.Easyml.Model.name
              (Sim.Driver.engine_name d.Sim.Driver.engine)
              ck.Obs.Recorder.ck_step steps_total (Sim.Driver.time d)
              remaining;
            let compute =
              Sim.Driver.run ~nthreads:threads ~stim:Sim.Stim.default d
                ~steps:remaining
            in
            Fmt.pr "# compute stage: %.3f s wall clock@." compute;
            Fmt.pr "# final state digest: %s@."
              (Obs.Recorder.digest (Sim.Driver.capture d))
        | "tissue" ->
            let nx = int_of_string (req "nx")
            and ny = int_of_string (req "ny")
            and dx = of_bits_hex (req "dx_bits") in
            let geom =
              if ny <= 1 then Tissue.Geometry.cable ~n:nx ~dx
              else Tissue.Geometry.sheet ~nx ~ny ~dx
            in
            let stim_width = int_of_string (req "stim_width") in
            let proto =
              match req "protocol" with
              | "s1" -> Tissue.Protocol.s1 ~width:stim_width geom
              | "s1s2" ->
                  Tissue.Protocol.s1s2 ~width:stim_width
                    ~s2_start:(of_bits_hex (req "s2_start_bits"))
                    geom
              | "restitution" ->
                  Tissue.Protocol.restitution ~width:stim_width
                    ~n_s1:(int_of_string (req "s1_count"))
                    ~interval:(of_bits_hex (req "s1_interval_bits"))
                    ~s2_coupling:(of_bits_hex (req "s2_coupling_bits"))
                    geom
              | p -> Fmt.failwith "checkpoint names unknown protocol %s" p
            in
            let block_check = of_bits_hex (req "block_check_bits") in
            let tcfg =
              {
                Tissue.Monodomain.default_config with
                Tissue.Monodomain.sigma = of_bits_hex (req "sigma_bits");
                splitting =
                  (match req "splitting" with
                  | "strang" -> Tissue.Monodomain.Strang
                  | _ -> Tissue.Monodomain.Godunov);
                block_check_ms =
                  (if block_check > 0.0 then Some block_check else None);
              }
            in
            let sim =
              Tissue.Monodomain.create ~engine ~tile ~specialize ~config:tcfg
                ~nthreads:threads g ~geom ~dt ~protocol:proto
            in
            (match Tissue.Monodomain.restore sim ck with
            | Error diag ->
                Fmt.epr "%a@." (Easyml.Diag.pp ~file) diag;
                exit 1
            | Ok () -> ());
            let d = Tissue.Monodomain.driver sim in
            Fmt.pr
              "# replay %s: tissue model=%s %s engine=%s resuming at step \
               %d/%d t=%gms (+%d step(s))@."
              file m.Easyml.Model.name
              (Tissue.Geometry.describe geom)
              (Sim.Driver.engine_name d.Sim.Driver.engine)
              ck.Obs.Recorder.ck_step steps_total
              (Tissue.Monodomain.time sim) remaining;
            let wall = Tissue.Monodomain.run sim ~steps:remaining in
            Fmt.pr "# wall: %.3f s@." wall;
            Fmt.pr "# final state digest: %s@."
              (Obs.Recorder.digest (Tissue.Monodomain.capture sim))
        | k -> Fmt.failwith "checkpoint has unknown kind %s" k)
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ file $ threads $ steps_override)

(* -- profile -------------------------------------------------------- *)

let profile_cmd =
  let doc =
    "Profile a model run: trace compile and simulation phases (pass \
     pipeline, kernel cache, per-step compute/update stages, per-Domain \
     chunks) and export the result."
  in
  let cells =
    Arg.(value & opt int 256 & info [ "cells" ] ~docv:"N" ~doc:"Number of cells.")
  in
  let steps =
    Arg.(value & opt int 1000 & info [ "steps" ] ~docv:"N"
           ~doc:"Number of time steps to profile.")
  in
  let dt = Arg.(value & opt float 0.01 & info [ "dt" ] ~docv:"MS") in
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~docv:"T") in
  let format =
    Arg.(value
         & opt
             (enum
                [ ("summary", `Summary); ("chrome", `Chrome);
                  ("prometheus", `Prometheus) ])
             `Summary
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,summary) (per-span table, default), \
                   $(b,chrome) (trace-event JSON for Perfetto / \
                   chrome://tracing), or $(b,prometheus) (metrics text \
                   exposition).")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the export to a file instead of stdout.")
  in
  let run name width layout no_lut autovec spline engine tile specialize cells
      steps dt threads format output =
    let m = load_model name in
    let cfg = config ~spline ~width ~layout ~no_lut ~autovec () in
    (* Clear the kernel cache so the compile half (passes, codegen,
       verification) shows up in the profile rather than being served
       from a warm cache. *)
    Codegen.Cache.clear ();
    Obs.Tracer.reset ();
    Obs.Tracer.enable ();
    let g = Codegen.Cache.generate cfg m in
    let d = Sim.Driver.create ~engine ~tile ~specialize g ~ncells:cells ~dt in
    (* health section rides along in the profile (Warn policy: a sick
       model should still produce its profile) *)
    Sim.Driver.enable_health d;
    let stim = Sim.Stim.default in
    for _ = 1 to steps do
      Sim.Driver.step ~nthreads:threads ~stim d
    done;
    Obs.Tracer.disable ();
    let snap = Obs.Tracer.snapshot () in
    let health = Sim.Driver.health_snapshot d in
    let native_line =
      match Exec.Native.toolchain () with
      | Some tc ->
          Printf.sprintf "native backend: available (%s)\n" tc.Exec.Native.id
      | None ->
          "native backend: unavailable (no C compiler; --engine native \
           falls back to batched)\n"
    in
    let build = build_info () in
    let text =
      match format with
      | `Summary -> native_line ^ Obs.Export.summary ?health ~build snap
      | `Chrome -> Obs.Export.chrome snap
      | `Prometheus -> Obs.Export.prometheus ?health ~build snap
    in
    (match output with
    | None -> print_string text
    | Some path ->
        write_text path text;
        Fmt.pr "wrote %s (%d events, %d counters%s)@." path
          (List.length snap.Obs.Tracer.events)
          (List.length snap.Obs.Tracer.counters)
          (if snap.Obs.Tracer.dropped > 0 then
             Printf.sprintf ", %d dropped" snap.Obs.Tracer.dropped
           else ""));
    ignore g
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ model_arg $ width_arg $ layout_arg $ no_lut_arg
          $ autovec_arg $ spline_arg $ engine_arg $ tile_arg $ specialize_arg
          $ cells $ steps $ dt $ threads $ format $ output)

(* -- serve ----------------------------------------------------------- *)

let serve_cmd =
  let doc =
    "Run a simulation with live observability endpoints: GET /metrics \
     serves a Prometheus text exposition of the tracer and health \
     monitor, GET /healthz answers 200 while the simulation is \
     numerically healthy and 503 after a hard watchdog trip (NaN, Inf, \
     Vm out of range).  Stops cleanly on SIGINT/SIGTERM."
  in
  let port =
    Arg.(value & opt int 9464 & info [ "port" ] ~docv:"P"
           ~doc:"Listen port on 127.0.0.1 (0 picks an ephemeral port, \
                 printed at startup).")
  in
  let cells =
    Arg.(value & opt int 256 & info [ "cells" ] ~docv:"N" ~doc:"Number of cells.")
  in
  let steps =
    Arg.(value & opt int 0 & info [ "steps" ] ~docv:"N"
           ~doc:"Stop stepping after N steps but keep serving until a \
                 signal arrives (0 = step until a signal arrives).")
  in
  let dt = Arg.(value & opt float 0.01 & info [ "dt" ] ~docv:"MS") in
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~docv:"T") in
  let health_stride =
    Arg.(value & opt int 16 & info [ "health-stride" ] ~docv:"N"
           ~doc:"Sample health every N steps.")
  in
  let refresh =
    Arg.(value & opt int 200 & info [ "refresh" ] ~docv:"N"
           ~doc:"Re-publish /metrics every N steps.")
  in
  let pace =
    Arg.(value & opt float 0.0 & info [ "pace" ] ~docv:"SECONDS"
           ~doc:"Sleep between steps (throttle a demo run; 0 = flat out).")
  in
  let tissue_flag =
    Arg.(value & flag & info [ "tissue" ]
           ~doc:"Serve a tissue run instead of a single-cell population: \
                 a 1-D S1-paced monodomain cable of $(b,--cells) nodes, \
                 with the limpetmlir_tissue_* metric families \
                 (activation coverage, conduction-block trips, measured \
                 conduction velocity) added to /metrics.")
  in
  let run name width layout no_lut autovec spline engine tile specialize port
      cells steps dt threads health_stride refresh pace tissue ckpt_dir
      ckpt_stride ckpt_keep =
    let m = load_model name in
    let cfg = config ~spline ~width ~layout ~no_lut ~autovec () in
    Obs.Tracer.reset ();
    Obs.Tracer.enable ();
    let g = Codegen.Cache.generate cfg m in
    let tsim =
      if not tissue then None
      else begin
        let n = max 2 cells in
        let geom = Tissue.Geometry.cable ~n ~dx:0.01 in
        let pulse =
          Sim.Stim.make ~amplitude:80.0 ~start:1.0 ~duration:2.0
            ~period:1000.0 ()
        in
        let proto =
          {
            Tissue.Protocol.name = "s1-paced";
            stims = [ Sim.Stim.region pulse ~n ~lo:0 ~hi:(min 5 n) ];
          }
        in
        let tcfg =
          {
            Tissue.Monodomain.default_config with
            Tissue.Monodomain.block_check_ms = Some 100.0;
          }
        in
        Some
          (Tissue.Monodomain.create ~engine ~tile ~specialize ~config:tcfg
             ~nthreads:threads g ~geom ~dt ~protocol:proto)
      end
    in
    let d =
      match tsim with
      | Some s -> Tissue.Monodomain.driver s
      | None -> Sim.Driver.create ~engine ~tile ~specialize g ~ncells:cells ~dt
    in
    Sim.Driver.enable_health
      ~cfg:
        { Obs.Health.default_config with Obs.Health.stride = health_stride }
      d;
    let h = Option.get (Sim.Driver.health d) in
    let stim = Sim.Stim.default in
    let writer =
      match ckpt_dir with
      | None -> None
      | Some dir ->
          Some
            (Obs.Recorder.create_writer ~keep:ckpt_keep
               ~extra:
                 [
                   ("model_ref", name);
                   ("steps_total", string_of_int steps);
                   ("threads", string_of_int threads);
                 ]
               ~dir ~stride:ckpt_stride ())
    in
    (* The sim loop publishes the exposition between steps; the HTTP
       thread only ever reads these atomics, so it never races the
       tracer's or the monitor's internals. *)
    let build = build_info () in
    let metrics = Atomic.make "" in
    let publish () =
      let snap = Obs.Tracer.snapshot () in
      let health = Sim.Driver.health_snapshot d in
      let tissue = Option.map Tissue.Monodomain.stats tsim in
      let checkpoint = Option.map Obs.Recorder.stats writer in
      let progress =
        {
          Obs.Export.pg_model = m.name;
          pg_step = d.Sim.Driver.steps_done;
          pg_steps_total = steps;
          pg_time_ms = Sim.Driver.time d;
        }
      in
      Atomic.set metrics
        (Obs.Export.prometheus ?health ?tissue ~build ?checkpoint ~progress
           snap)
    in
    publish ();
    let stop = Atomic.make false in
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    let strip_query path =
      match String.index_opt path '?' with
      | Some i -> String.sub path 0 i
      | None -> path
    in
    let server =
      Obs.Httpd.start ~port (fun path ->
          match strip_query path with
          | "/metrics" ->
              Some
                {
                  Obs.Httpd.status = 200;
                  content_type = "text/plain; version=0.0.4";
                  body = Atomic.get metrics;
                }
          | "/healthz" ->
              if Obs.Health.unhealthy h then
                Some
                  {
                    Obs.Httpd.status = 503;
                    content_type = "text/plain";
                    body = "unhealthy\n";
                  }
              else
                Some
                  {
                    Obs.Httpd.status = 200;
                    content_type = "text/plain";
                    body = "ok\n";
                  }
          | _ -> None)
    in
    Fmt.pr "# serving model=%s on http://127.0.0.1:%d (/metrics, /healthz); \
            cells=%d dt=%gms health-stride=%d@."
      m.name (Obs.Httpd.port server) cells dt health_stride;
    (try
       let n = ref 0 in
       while
         (not (Atomic.get stop)) && (steps = 0 || !n < steps)
       do
         (match tsim with
         | Some s -> Tissue.Monodomain.step s
         | None -> Sim.Driver.step ~nthreads:threads ~stim d);
         incr n;
         (match writer with
         | Some w when Obs.Recorder.due w ~step:d.Sim.Driver.steps_done ->
             let ck =
               match tsim with
               | Some s -> Tissue.Monodomain.capture s
               | None -> Sim.Driver.capture d
             in
             ignore (Obs.Recorder.record w ck)
         | _ -> ());
         if !n mod refresh = 0 then publish ();
         if pace > 0.0 then Unix.sleepf pace
       done;
       publish ();
       if steps > 0 && !n >= steps then
         Fmt.pr "# %d step(s) done; still serving (SIGINT/SIGTERM to stop)@."
           !n;
       while not (Atomic.get stop) do
         Unix.sleepf 0.05
       done
     with Obs.Health.Tripped msg ->
       (* Warn policy never raises; belt and braces for custom configs *)
       Fmt.epr "%s@." msg);
    Obs.Httpd.stop server;
    Obs.Tracer.disable ();
    Fmt.pr "# stopped cleanly@."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ model_arg $ width_arg $ layout_arg $ no_lut_arg
          $ autovec_arg $ spline_arg $ engine_arg $ tile_arg $ specialize_arg
          $ port $ cells $ steps $ dt $ threads $ health_stride $ refresh
          $ pace $ tissue_flag $ ckpt_dir_arg $ ckpt_stride_arg
          $ ckpt_keep_arg)

(* -- validate-metrics ------------------------------------------------ *)

let validate_metrics_cmd =
  let doc =
    "Validate a Prometheus text exposition (as served at /metrics or \
     written by profile --format=prometheus): HELP/TYPE pairing, name \
     charsets, label escaping, sample values.  Exits 1 on the first \
     violation."
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let ic = open_in_bin file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Obs.Export.validate_prometheus text with
    | Ok n -> Fmt.pr "%s: %d sample(s), exposition OK@." file n
    | Error e ->
        Fmt.epr "%s: %s@." file e;
        exit 1
  in
  Cmd.v (Cmd.info "validate-metrics" ~doc) Term.(const run $ file)

(* -- passes --------------------------------------------------------- *)

let passes_cmd =
  let doc = "Show per-pass op-count reductions on a model's kernel." in
  let run name width =
    let m = load_model name in
    let cfg =
      if width = 1 then Codegen.Config.baseline else Codegen.Config.mlir ~width
    in
    let g = Codegen.Kernel.generate ~optimize:false cfg m in
    let count () =
      List.fold_left (fun n f -> n + Ir.Func.op_count f) 0 g.modl.Ir.Func.m_funcs
    in
    Fmt.pr "%-14s %8s@." "pass" "ops";
    Fmt.pr "%-14s %8d@." "(none)" (count ());
    List.iter
      (fun (name, p) ->
        ignore (Passes.Pass.run_on_module p g.modl);
        Fmt.pr "%-14s %8d@." name (count ()))
      Passes.Pipeline.by_name;
    match Ir.Verifier.verify_module g.modl with
    | [] -> Fmt.pr "module verifies after pipeline@."
    | errs -> Fmt.epr "%s@." (Ir.Verifier.errors_to_string errs)
  in
  Cmd.v (Cmd.info "passes" ~doc) Term.(const run $ model_arg $ width_arg)

(* -- parse ---------------------------------------------------------- *)

let parse_cmd =
  let doc = "Parse and verify a saved IR module (emit -o output)." in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let ic = open_in_bin file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Ir.Parser.parse_module_result text with
    | Error e -> Fmt.epr "parse error: %s@." e
    | Ok m -> (
        match Ir.Verifier.verify_module m with
        | [] ->
            Fmt.pr "%s: %d function(s), %d ops, verifies OK@." m.Ir.Func.m_name
              (List.length m.Ir.Func.m_funcs)
              (List.fold_left (fun n f -> n + Ir.Func.op_count f) 0
                 m.Ir.Func.m_funcs)
        | errs -> Fmt.epr "%s@." (Ir.Verifier.errors_to_string errs))
  in
  Cmd.v (Cmd.info "parse" ~doc) Term.(const run $ file)

(* -- cost ----------------------------------------------------------- *)

let cost_cmd =
  let doc =
    "Machine-model analysis of a model's kernel: per-cell cycles, flops, \
     bytes, roofline position and projected runtime."
  in
  let cells = Arg.(value & opt int 8192 & info [ "cells" ] ~docv:"N") in
  let steps = Arg.(value & opt int 100_000 & info [ "steps" ] ~docv:"N") in
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~docv:"T") in
  let run name width layout no_lut autovec spline cells steps threads =
    let m = load_model name in
    let cfg = config ~spline ~width ~layout ~no_lut ~autovec () in
    let g = Codegen.Cache.generate cfg m in
    let k = Machine.Kcost.of_kernel g in
    Fmt.pr "kernel %s (%s)@." m.name (Codegen.Config.describe cfg);
    Fmt.pr "  per cell per step: %.1f cycles, %.1f flops, %.1f bytes@."
      k.Machine.Kcost.cycles_per_cell k.Machine.Kcost.flops_per_cell
      k.Machine.Kcost.bytes_per_cell;
    Fmt.pr "  loads/stores per cell: %.1f / %.1f@." k.Machine.Kcost.loads_per_cell
      k.Machine.Kcost.stores_per_cell;
    let r = Machine.Perfmodel.run_kernel g ~ncells:cells ~steps ~nthreads:threads in
    Fmt.pr "  projected on the paper's platform (%d cells, %d steps, %dT):@."
      cells steps threads;
    Fmt.pr "    time %.2f s  (compute %.2f s, memory %.2f s, sync %.2f s)@."
      r.Machine.Perfmodel.seconds r.Machine.Perfmodel.compute_seconds
      r.Machine.Perfmodel.memory_seconds r.Machine.Perfmodel.sync_seconds;
    Fmt.pr "    %.1f GFlop/s at %.3f Flops/Byte@." r.Machine.Perfmodel.gflops
      r.Machine.Perfmodel.oi
  in
  Cmd.v (Cmd.info "cost" ~doc)
    Term.(const run $ model_arg $ width_arg $ layout_arg $ no_lut_arg
          $ autovec_arg $ spline_arg $ cells $ steps $ threads)

(* -- import-mmt ------------------------------------------------------ *)

let import_mmt_cmd =
  let doc =
    "Translate a Myokit MMT file to EasyML (the 'external translators' box \
     of the paper's Figure 1)."
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let vm =
    Arg.(value & opt string "membrane.V" & info [ "vm" ] ~docv:"COMP.VAR"
           ~doc:"Variable exported as the Vm external.")
  in
  let iion =
    Arg.(value & opt string "membrane.i_ion" & info [ "iion" ] ~docv:"COMP.VAR"
           ~doc:"Variable exported as the Iion external output.")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Also analyze, generate and verify the translated model.")
  in
  let run file vm iion check =
    let ic = open_in_bin file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let t = Easyml.Mmt.parse text in
    let easyml = Easyml.Mmt.to_easyml ~vm ~iion t in
    print_string easyml;
    if check then begin
      let m = Easyml.Sema.analyze_source ~name:t.Easyml.Mmt.name easyml in
      let g = Codegen.Kernel.generate (Codegen.Config.mlir ~width:8) m in
      Ir.Verifier.verify_module_exn g.modl;
      Fmt.epr "# %s: %d states, %d externals; vector kernel verifies OK@."
        m.name (List.length m.states) (List.length m.externals)
    end
  in
  Cmd.v (Cmd.info "import-mmt" ~doc)
    Term.(const run $ file $ vm $ iion $ check)

let main =
  let doc =
    "limpetMLIR (OCaml reproduction): EasyML ionic models to vectorized IR"
  in
  Cmd.group (Cmd.info "limpetmlir" ~doc)
    [
      list_cmd; inspect_cmd; check_cmd; emit_cmd; parse_cmd; run_cmd;
      replay_cmd; tissue_cmd; serve_cmd; profile_cmd; validate_metrics_cmd;
      passes_cmd; cost_cmd; import_mmt_cmd;
    ]

let () = exit (Cmd.eval main)
