(* Integration-method comparison: accuracy of the six methods the paper
   ports to MLIR (fe, rk2, rk4, rush_larsen, sundnes, markov_be).

   A single Hodgkin-Huxley-style gate y' = a(V)(1-y) - b(V)y at fixed V has
   the closed-form solution y(t) = y_inf + (y0 - y_inf) exp(-t/tau).  We
   integrate it with each method at several time steps, measure the error
   against the exact solution, and report the observed convergence order —
   Rush-Larsen is exact for this problem (error at machine precision), fe
   is order 1, rk2 order 2, rk4 order 4.

   Run with: dune exec examples/compare_integrators.exe *)

let gate_src meth =
  Printf.sprintf
    {|
Vm; .external(); .nodal();
Iion; .external(); .nodal();
y; y_init = 0.1;
Vm_init = -40.0;
a_y = 0.1*exp((Vm + 40.0)/15.0);
b_y = 0.08*exp(-(Vm + 40.0)/22.0);
diff_y = a_y*(1.0 - y) - b_y*y;
y; .method(%s);
Iion = 0.0;
|}
    meth

let exact ~t =
  (* rates at Vm = -40: a = 0.1, b = 0.08 *)
  let a = 0.1 and b = 0.08 in
  let y_inf = a /. (a +. b) and tau = 1.0 /. (a +. b) in
  y_inf +. ((0.1 -. y_inf) *. Float.exp (-.t /. tau))

let simulate meth ~dt ~t_end =
  let m = Easyml.Sema.analyze_source ~name:("gate_" ^ meth) (gate_src meth) in
  let g = Codegen.Cache.generate Codegen.Config.baseline m in
  let d = Sim.Driver.create g ~ncells:1 ~dt in
  let steps = int_of_float (Float.round (t_end /. dt)) in
  for _ = 1 to steps do
    Sim.Driver.compute_stage d (* no membrane update: Vm frozen *)
  done;
  Sim.Driver.state d "y" 0

let () =
  let t_end = 10.0 in
  let dts = [ 0.4; 0.2; 0.1; 0.05 ] in
  Fmt.pr "error vs exact solution of a gate ODE at t=%g ms:@.@." t_end;
  Fmt.pr "%-12s %12s %12s %12s %12s %9s@." "method" "dt=0.4" "dt=0.2" "dt=0.1"
    "dt=0.05" "order";
  List.iter
    (fun meth ->
      let errs =
        List.map
          (fun dt -> Float.abs (simulate meth ~dt ~t_end -. exact ~t:t_end))
          dts
      in
      (* observed order from the two finest grids *)
      let order =
        match List.rev errs with
        | e_fine :: e_coarse :: _ when e_fine > 1e-14 ->
            Printf.sprintf "%9.2f" (Float.log (e_coarse /. e_fine) /. Float.log 2.0)
        | _ -> "    exact"
      in
      Fmt.pr "%-12s %12.3e %12.3e %12.3e %12.3e %s@." meth (List.nth errs 0)
        (List.nth errs 1) (List.nth errs 2) (List.nth errs 3) order)
    [ "fe"; "rk2"; "rk4"; "rush_larsen"; "sundnes"; "markov_be" ]
