(* Multimodel coupling: a myocyte electrically coupled to fibroblasts.

   The paper's "Multimodel support" (§3.3) lets several ionic models
   interact through shared data (a parent-offspring hierarchy).  This
   example reproduces the classic MacCannell 2007 experiment with the
   same mechanism at the driver level: a ventricular myocyte
   (DrouhardRoberge) and a passive fibroblast model
   (MacCannellFibroblast) exchange current through a gap-junction
   conductance,

       I_gap = G_gap (Vm_myo - Vm_fib),

   which loads the myocyte and depolarizes the fibroblast.  Coupling to
   fibroblasts is known to depolarize the resting potential and shorten
   the action potential — both visible in the printed metrics.

   Run with: dune exec examples/coupled_cells.exe *)

let simulate ~(n_fib : int) ~(g_gap : float) =
  let dt = 0.01 in
  let myo =
    Sim.Driver.create
      (Codegen.Cache.generate (Codegen.Config.mlir ~width:8)
         (Models.Registry.model (Models.Registry.find_exn "DrouhardRoberge")))
      ~ncells:8 ~dt
  in
  let fib =
    Sim.Driver.create
      (Codegen.Cache.generate (Codegen.Config.mlir ~width:8)
         (Models.Registry.model
            (Models.Registry.find_exn "MacCannellFibroblast")))
      ~ncells:8 ~dt
  in
  let steps = 50_000 (* 500 ms *) in
  let rest = ref 0.0 and peak = ref neg_infinity in
  let t_up = ref nan and apd = ref nan in
  for s = 1 to steps do
    let t = float_of_int s *. dt in
    (* compute stage of both models *)
    Sim.Driver.compute_stage myo;
    Sim.Driver.compute_stage fib;
    (* gap-junction exchange + membrane updates (cell-wise coupling) *)
    let stim = if t >= 10.0 && t < 11.0 then 80.0 else 0.0 in
    for c = 0 to 7 do
      let vm_m = Sim.Driver.vm myo c and vm_f = Sim.Driver.vm fib c in
      let i_gap = g_gap *. (vm_m -. vm_f) in
      let i_m = Sim.Driver.ext myo "Iion" c in
      let i_f = Sim.Driver.ext fib "Iion" c in
      (* the myocyte feeds n_fib fibroblasts; fibroblast capacitance is
         ~1/3 of the myocyte's, folded into the scale factors *)
      Sim.Driver.set_ext myo "Vm" c
        (vm_m +. (dt *. (stim -. i_m -. (float_of_int n_fib *. i_gap))));
      Sim.Driver.set_ext fib "Vm" c (vm_f +. (dt *. ((3.0 *. i_gap) -. i_f)))
    done;
    Sim.Driver.tick myo;
    Sim.Driver.tick fib;
    (* myocyte AP metrics on cell 0 *)
    let vm = Sim.Driver.vm myo 0 in
    if s = 900 then rest := vm;
    if vm > !peak then peak := vm;
    if Float.is_nan !t_up && vm >= -20.0 then t_up := t;
    if
      Float.is_nan !apd
      && (not (Float.is_nan !t_up))
      && t > !t_up +. 5.0
      && vm <= !rest +. (0.1 *. (!peak -. !rest))
    then apd := t -. !t_up
  done;
  (!rest, !peak, !apd, Sim.Driver.vm fib 0)

let () =
  Fmt.pr "Myocyte (DrouhardRoberge) coupled to n fibroblasts@.";
  Fmt.pr "(MacCannellFibroblast) via a gap junction, G_gap = 0.02:@.@.";
  Fmt.pr "%6s %12s %10s %10s %14s@." "n_fib" "rest(mV)" "peak(mV)" "APD90(ms)"
    "fibro Vm(mV)";
  List.iter
    (fun n_fib ->
      let rest, peak, apd, vf = simulate ~n_fib ~g_gap:(if n_fib = 0 then 0.0 else 0.02) in
      Fmt.pr "%6d %12.2f %10.2f %10.1f %14.2f@." n_fib rest peak apd vf)
    [ 0; 1; 2; 4 ];
  Fmt.pr "@.Expected physiology (MacCannell 2007): more coupled fibroblasts@.";
  Fmt.pr "depolarize the myocyte's resting potential, reduce the peak and@.";
  Fmt.pr "shorten the APD, while the fibroblast is pulled toward the@.";
  Fmt.pr "myocyte potential.@."
