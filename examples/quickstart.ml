(* Quickstart: the full pipeline on the paper's running example.

   Takes the modified Pathmanathan model of Listing 1, runs the frontend,
   prints the analyzed form, generates both the scalar baseline kernel
   (the analogue of Listing 2) and the vectorized limpetMLIR kernel (the
   analogue of Listing 3), simulates both, and checks they agree bit for
   bit.

   Run with: dune exec examples/quickstart.exe *)

let listing1 =
  {|
Vm; .external(); .nodal(); .lookup(-100,100,0.05);
Iion; .external(); .nodal();
group{ u1; u2; u3; }.nodal();
group{ Cm = 200; beta = 1; xi = 3; }.param();
u1_init = 0; u2_init = 0.05; u3_init = 0; Vm_init = 0;
diff_u3 = 0;
diff_u2 = -(u1+u3-Vm)*cube(u2);
diff_u1 = square(u1+u3-Vm)*square(u2)+0.5*(u1+u3-Vm);
u1; .method(rk2);
Iion = (-(Cm/2.)*(u1+u3-Vm)*square(u2)*(Vm-u3)+beta);
|}

let () =
  (* 1. Frontend: parse + analyze (markups, params folded, topo order). *)
  let model = Easyml.Sema.analyze_source ~name:"Pathmanathan" listing1 in
  Fmt.pr "== analyzed model ==@.%a@.@." Easyml.Model.pp model;

  (* 2. Code generation: scalar baseline vs vector limpetMLIR. *)
  let scalar = Codegen.Cache.generate Codegen.Config.baseline model in
  let vector = Codegen.Cache.generate (Codegen.Config.mlir ~width:8) model in
  Ir.Verifier.verify_module_exn scalar.modl;
  Ir.Verifier.verify_module_exn vector.modl;
  Fmt.pr "== generated vector IR (Listing 3 analogue) ==@.%a@.@."
    Ir.Printer.pp_module vector.modl;
  Fmt.pr "op counts: scalar %d, vector %d (after CSE/LICM/DCE)@.@."
    (List.fold_left (fun n f -> n + Ir.Func.op_count f) 0 scalar.modl.m_funcs)
    (List.fold_left (fun n f -> n + Ir.Func.op_count f) 0 vector.modl.m_funcs);

  (* 3. Simulate 3 ms with a stimulus through the execution engine (the
        modified Pathmanathan model is a verification construct, not a
        physiological cell; it diverges under sustained drive). *)
  let ds = Sim.Driver.create scalar ~ncells:32 ~dt:0.01 in
  let dv = Sim.Driver.create vector ~ncells:32 ~dt:0.01 in
  let stim = Sim.Stim.make ~amplitude:10.0 ~start:1.0 ~duration:1.0 () in
  for _ = 1 to 300 do
    Sim.Driver.step ~stim ds;
    Sim.Driver.step ~stim dv
  done;
  Fmt.pr "== after 3 ms (cell 7) ==@.";
  List.iter2
    (fun (n, a) (_, b) ->
      Fmt.pr "  %-6s scalar=%.15g vector=%.15g %s@." n a b
        (if Float.equal a b then "(bitwise equal)" else "(MISMATCH)"))
    (Sim.Driver.snapshot ds 7) (Sim.Driver.snapshot dv 7);

  (* 4. Project both kernels onto the paper's evaluation platform. *)
  let project g =
    (Machine.Perfmodel.run_kernel g ~ncells:8192 ~steps:100_000 ~nthreads:1)
      .Machine.Perfmodel.seconds
  in
  Fmt.pr "@.machine-model projection (8192 cells x 100k steps, 1 thread):@.";
  Fmt.pr "  baseline   %6.1f s@." (project scalar);
  Fmt.pr "  limpetMLIR %6.1f s  -> %.2fx@." (project vector)
    (project scalar /. project vector)
