(* APD restitution: the S1-S2 pacing protocol electrophysiologists use to
   probe arrhythmia risk, run on the vectorized kernels.

   A cell is paced with several S1 beats at a fixed cycle length, then an
   S2 extrastimulus is delivered at decreasing coupling intervals; the
   action potential duration of the S2 beat as a function of the preceding
   diastolic interval is the restitution curve.  A steep curve (slope > 1)
   is the classic alternans/arrhythmia marker.

   Run with: dune exec examples/restitution.exe [model]
   (default LuoRudy91; e.g. try BeelerReuter or TenTusscher) *)

let apd90 ~(dt : float) (trace : float array) : float option =
  (* from upstroke (-20 mV crossing up) to 90% repolarization *)
  let n = Array.length trace in
  let rest = trace.(0) in
  let peak = Array.fold_left Float.max neg_infinity trace in
  if peak < -20.0 then None
  else
    let v90 = rest +. (0.1 *. (peak -. rest)) in
    let rec find_up i =
      if i >= n then None
      else if trace.(i) >= -20.0 then Some i
      else find_up (i + 1)
    in
    match find_up 0 with
    | None -> None
    | Some up ->
        let rec find_down i =
          if i >= n then None
          else if trace.(i) <= v90 then Some i
          else find_down (i + 1)
        in
        Option.map
          (fun down -> float_of_int (down - up) *. dt)
          (find_down (up + 5))

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "LuoRudy91" in
  let entry = Models.Registry.find_exn name in
  let model = Models.Registry.model entry in
  let gen = Codegen.Cache.generate (Codegen.Config.mlir ~width:8) model in
  let dt = 0.02 in
  let s1_cl = 600.0 (* ms *) in
  let n_s1 = 3 in
  Fmt.pr "APD restitution of %s (S1 %gms x%d, then S2)@." name s1_cl n_s1;
  Fmt.pr "%8s %10s %10s@." "S2(ms)" "DI(ms)" "APD90(ms)";
  let s1_apd = ref nan in
  List.iter
    (fun s2_interval ->
      (* fresh cell per coupling interval *)
      let d = Sim.Driver.create gen ~ncells:8 ~dt in
      let amp = 80.0 and dur = 1.0 in
      let stim_times =
        List.init n_s1 (fun k -> float_of_int k *. s1_cl)
        @ [ (float_of_int (n_s1 - 1) *. s1_cl) +. s2_interval ]
      in
      let t_end = List.nth stim_times n_s1 +. 500.0 in
      let steps = int_of_float (t_end /. dt) in
      let trace = Array.make steps 0.0 in
      for s = 0 to steps - 1 do
        let t = Sim.Driver.time d in
        let on =
          List.exists (fun t0 -> t >= t0 && t < t0 +. dur) stim_times
        in
        Sim.Driver.compute_stage d;
        (* membrane update with the protocol stimulus *)
        Sim.Driver.membrane_update
          ~stim:(Sim.Stim.make ~amplitude:(if on then amp else 0.0) ~start:0.0
                   ~duration:t_end ())
          d;
        Sim.Driver.tick d;
        trace.(s) <- Sim.Driver.vm d 0
      done;
      (* slice out the S2 response *)
      let s2_t = List.nth stim_times n_s1 in
      let s2_i = int_of_float (s2_t /. dt) in
      let s2_trace = Array.sub trace (max 0 (s2_i - 5)) (steps - s2_i) in
      (* diastolic interval: end of previous APD to S2 *)
      let s1_i = int_of_float (float_of_int (n_s1 - 1) *. s1_cl /. dt) in
      let s1_trace = Array.sub trace s1_i (s2_i - s1_i) in
      (if Float.is_nan !s1_apd then
         match apd90 ~dt s1_trace with
         | Some a -> s1_apd := a
         | None -> ());
      match apd90 ~dt s2_trace with
      | Some apd ->
          let di = s2_interval -. !s1_apd in
          Fmt.pr "%8.0f %10.1f %10.1f@." s2_interval di apd
      | None -> Fmt.pr "%8.0f %10s %10s@." s2_interval "-" "no capture")
    [ 500.0; 450.0; 420.0; 400.0; 390.0; 385.0 ];
  Fmt.pr "@.(decreasing APD at short coupling intervals = restitution;@.";
  Fmt.pr "loss of capture below the refractory period is expected)@."
