(* Single-cell action potentials: the workload the paper's intro motivates.

   Paces the Luo-Rudy 1991 ventricular model (a faithful classic in the
   suite) at 1 Hz through the vectorized kernel and reports per-beat action
   potential metrics: resting potential, peak overshoot, dV/dt max, and
   APD90 (action potential duration at 90% repolarization) — the numbers an
   electrophysiologist would sanity-check first.

   Run with: dune exec examples/single_cell_ap.exe [model] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "LuoRudy91" in
  let entry = Models.Registry.find_exn name in
  let model = Models.Registry.model entry in
  let gen = Codegen.Cache.generate (Codegen.Config.mlir ~width:8) model in
  let dt = 0.01 in
  let d = Sim.Driver.create gen ~ncells:8 ~dt in
  let stim =
    Sim.Stim.make ~amplitude:80.0 ~start:10.0 ~duration:1.0 ~period:1000.0 ()
  in
  let beats = 2 in
  let steps = beats * 100_000 in
  let vm_prev = ref (Sim.Driver.vm d 0) in
  let rest = ref (Sim.Driver.vm d 0) in
  let peak = ref neg_infinity in
  let dvdt_max = ref 0.0 in
  let t_upstroke = ref nan in
  let apd90_done = ref false in
  let beat = ref 0 in
  Fmt.pr "model %s (%s, %s): pacing %d beats at 1 Hz, dt=%g ms@." name
    (Models.Model_def.cls_name entry.cls)
    (match entry.fidelity with
    | Models.Model_def.Faithful -> "faithful"
    | Structural -> "structural")
    beats dt;
  Fmt.pr "%5s %10s %10s %10s %10s@." "beat" "rest(mV)" "peak(mV)" "dVdt(V/s)"
    "APD90(ms)";
  for _ = 1 to steps do
    Sim.Driver.step ~stim d;
    let vm = Sim.Driver.vm d 0 in
    let t = Sim.Driver.time d in
    let dvdt = (vm -. !vm_prev) /. dt in
    if dvdt > !dvdt_max then dvdt_max := dvdt;
    if vm > !peak then peak := vm;
    (* upstroke detection: crossing -20 mV going up *)
    if !vm_prev < -20.0 && vm >= -20.0 && Float.is_nan !t_upstroke then
      t_upstroke := t;
    (* APD90: return to rest + 10% of amplitude *)
    (if (not !apd90_done) && not (Float.is_nan !t_upstroke) then
       let v90 = !rest +. (0.1 *. (!peak -. !rest)) in
       if vm <= v90 && dvdt < 0.0 then begin
         incr beat;
         Fmt.pr "%5d %10.2f %10.2f %10.1f %10.1f@." !beat !rest !peak !dvdt_max
           (t -. !t_upstroke);
         apd90_done := true
       end);
    (* new beat bookkeeping at each stimulus onset *)
    let phase = Float.rem (t -. 10.0) 1000.0 in
    if phase >= 0.0 && phase < dt && t > 11.0 then begin
      rest := vm;
      peak := neg_infinity;
      dvdt_max := 0.0;
      t_upstroke := nan;
      apd90_done := false
    end;
    vm_prev := vm
  done;
  Fmt.pr "@.final state of cell 0:@.";
  List.iter (fun (n, v) -> Fmt.pr "  %-8s %14.8g@." n v) (Sim.Driver.snapshot d 0)
