(* 1-D tissue strand: the two-stage simulation end to end.

   A 100-cell cable of Drouhard-Roberge myocytes.  Each time step runs
   (1) the compute stage — the generated vector kernel producing Iion per
   cell — and (2) the solver stage — the semi-implicit monodomain cable
   solve (tridiagonal Thomas algorithm from lib/solver).  A stimulus at the
   left end launches a propagating action potential; the example reports
   activation times along the fibre and the conduction velocity, and
   cross-checks the direct tridiagonal solve against conjugate gradients.

   Run with: dune exec examples/tissue_strand.exe *)

let () =
  let n = 100 in
  let dt = 0.01 (* ms *) in
  let dx = 0.01 (* cm *) in
  let entry = Models.Registry.find_exn "DrouhardRoberge" in
  let model = Models.Registry.model entry in
  let gen = Codegen.Cache.generate (Codegen.Config.mlir ~width:8) model in
  let d = Sim.Driver.create gen ~ncells:n ~dt in
  let cable = Solver.Cable.create ~n ~dx ~sigma:0.001 ~cm:1.0 ~dt in
  (* cross-check the cable operator once: direct vs CG on a random rhs *)
  let rhs = Float.Array.init n (fun i -> Float.sin (float_of_int i /. 7.0)) in
  let x_direct =
    Solver.Tridiag.solve ~a:cable.Solver.Cable.sub ~b:cable.Solver.Cable.diag
      ~c:cable.Solver.Cable.sup ~d:rhs
  in
  let x_cg, stats = Solver.Cg.solve (Solver.Cable.matrix cable) rhs in
  let max_diff = ref 0.0 in
  for i = 0 to n - 1 do
    max_diff :=
      Float.max !max_diff
        (Float.abs (Float.Array.get x_direct i -. Float.Array.get x_cg i))
  done;
  Fmt.pr "solver cross-check: Thomas vs CG max diff %.2e (%d CG iters)@.@."
    !max_diff stats.Solver.Cg.iterations;

  let vm_buf = Float.Array.make n 0.0 in
  let iion_buf = Float.Array.make n 0.0 in
  let activation = Array.make n Float.infinity in
  let steps = 6_000 (* 60 ms *) in
  for s = 1 to steps do
    let t = float_of_int s *. dt in
    (* compute stage: ionic currents from the generated kernel *)
    Sim.Driver.compute_stage d;
    for i = 0 to n - 1 do
      Float.Array.set vm_buf i (Sim.Driver.vm d i);
      Float.Array.set iion_buf i (Sim.Driver.ext d "Iion" i)
    done;
    (* solver stage: semi-implicit diffusion + reaction update *)
    let istim = if t >= 1.0 && t < 3.0 then 80.0 else 0.0 in
    Solver.Cable.step cable ~vm:vm_buf ~iion:iion_buf ~istim ~stim_lo:0
      ~stim_hi:5;
    for i = 0 to n - 1 do
      Sim.Driver.set_ext d "Vm" i (Float.Array.get vm_buf i);
      if Float.Array.get vm_buf i > -20.0 && activation.(i) = Float.infinity
      then activation.(i) <- t
    done;
    Sim.Driver.tick d
  done;
  Fmt.pr "activation times along the strand (ms):@.";
  List.iter
    (fun i ->
      Fmt.pr "  cell %3d: %s@." i
        (if Float.is_finite activation.(i) then
           Printf.sprintf "%.2f" activation.(i)
         else "not activated"))
    [ 0; 20; 40; 60; 80; 99 ];
  match
    Solver.Cable.conduction_velocity ~dx activation ~from_cell:20 ~to_cell:80
  with
  | Some cv ->
      Fmt.pr "@.conduction velocity between cells 20 and 80: %.3f cm/ms (%.1f cm/s)@."
        cv (cv *. 1000.0)
  | None -> Fmt.pr "@.wave did not propagate between cells 20 and 80@."
