(* Development harness: sweep all 43 models through frontend -> codegen ->
   verifier -> 300 simulated steps, scalar vs AVX-512-width vector. *)
let () =
  let bad = ref 0 in
  List.iter (fun (e : Models.Model_def.entry) ->
    let name = e.name in
    (try
      let m = Models.Registry.model e in
      List.iter
        (fun d -> Fmt.pr "  [%s] %s@." name (Easyml.Diag.to_string ~file:name d))
        m.warnings;
      let gs = Codegen.Cache.generate Codegen.Config.baseline m in
      let gv = Codegen.Cache.generate (Codegen.Config.mlir ~width:8) m in
      (match Ir.Verifier.verify_module gs.modl @ Ir.Verifier.verify_module gv.modl with
       | [] -> ()
       | errs -> failwith (Ir.Verifier.errors_to_string errs));
      let ds = Sim.Driver.create gs ~ncells:8 ~dt:0.01 in
      let dv = Sim.Driver.create gv ~ncells:8 ~dt:0.01 in
      let stim = Sim.Stim.make ~amplitude:40.0 ~start:1.0 ~duration:2.0 () in
      for _ = 1 to 300 do
        Sim.Driver.step ~stim ds; Sim.Driver.step ~stim dv
      done;
      let ss = Sim.Driver.snapshot ds 3 and sv = Sim.Driver.snapshot dv 3 in
      let max_rel = List.fold_left2 (fun acc (_, a) (_, b) ->
        let d = Float.abs (a -. b) /. (Float.abs a +. 1e-12) in Float.max acc d)
        0.0 ss sv in
      let finite = List.for_all (fun (_, v) -> Float.is_finite v) ss
                   && Float.is_finite (Sim.Driver.vm ds 3) in
      let nstates = List.length m.states in
      let lutcols = List.fold_left (fun a p -> a + Easyml.Lut_cones.n_columns p) 0 gs.lut_plans in
      if not finite then begin incr bad;
        Fmt.pr "FAIL %-22s non-finite state after 300 steps (Vm=%g)@." name (Sim.Driver.vm ds 3);
        List.iter (fun (n,v) -> if not (Float.is_finite v) then Fmt.pr "    %s = %g@." n v) ss
      end else if max_rel > 1e-9 then begin incr bad;
        Fmt.pr "FAIL %-22s scalar/vector diverge (max rel %g)@." name max_rel
      end else
        Fmt.pr "ok   %-22s states=%2d lutcols=%3d Vm=%8.3f@." name nstates lutcols (Sim.Driver.vm ds 3)
    with ex ->
      incr bad;
      Fmt.pr "FAIL %-22s %s@." name (Printexc.to_string ex)))
    Models.Registry.all;
  Fmt.pr "@.%d failures out of %d models@." !bad (List.length Models.Registry.all)
