(** Bounds proofs: which memory ops can never index out of range?

    Runs the interval analysis (optionally seeded with facts the caller
    knows — concrete loop bounds, the padded cell count, buffer
    relationships) and, for every load/store/gather/scatter whose
    touched-index interval provably fits inside the buffer the caller
    vouches lengths for, records the op id in the {e proved} set.

    The execution engines consume that set to drop their per-access
    OCaml bounds checks (switching to [unsafe_get]/[unsafe_set] and
    unchecked fused instructions).  Only failure checks are elided —
    never value-affecting clamps — so elision cannot change results,
    only skip branches that were proved untakeable. *)

open Ir
module I = Itv.I

type proved = (int, unit) Hashtbl.t

let is_proved (p : proved) (o : Op.op) : bool = Hashtbl.mem p o.Op.o_id
let cardinal (p : proved) : int = Hashtbl.length p

(* Ops the engines have unchecked variants for.  Calls are never tagged:
   externs do their own internal indexing. *)
let elidable (o : Op.op) : bool =
  match o.Op.kind with
  | Op.MemLoad | Op.MemStore | Op.VecLoad | Op.VecStore | Op.Gather
  | Op.Scatter ->
      true
  | _ -> false

(** [prove_func ~len_of ?seed f] returns the set of access ops proved
    in-bounds.  [len_of origin] is the guaranteed minimum length (in
    elements) of the buffer behind [origin], or [None] if unknown. *)
let prove_func ?seed ~(len_of : Interval.origin -> int option)
    (f : Func.func) : proved =
  let proved : proved = Hashtbl.create 64 in
  let visit st (o : Op.op) =
    if elidable o then
      let ok =
        match Footprint.accesses_of st o with
        | [] -> false
        | accs ->
            List.for_all
              (fun (a : Footprint.access) ->
                I.is_bot a.Footprint.acc_itv
                ||
                match len_of a.Footprint.acc_origin with
                | None -> false
                | Some n ->
                    a.Footprint.acc_itv.I.lo >= 0
                    && a.Footprint.acc_itv.I.hi <= n - 1)
              accs
      in
      if ok then Hashtbl.replace proved o.Op.o_id ()
  in
  ignore (Interval.analyze_func ?seed ~visit f : Interval.state);
  proved

(** Count of elidable access ops in a function, for reporting proof
    coverage. *)
let elidable_count (f : Func.func) : int =
  Op.fold_region (fun n o -> if elidable o then n + 1 else n) 0 f.Func.f_body
