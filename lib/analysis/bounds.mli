(** Bounds proofs: which memory ops can never index out of range?

    Runs the interval analysis (optionally seeded with facts the caller
    knows — concrete loop bounds, the padded cell count) and, for every
    load/store/gather/scatter whose touched-index interval provably fits
    inside the buffer the caller vouches lengths for, records the op id
    in the {e proved} set.  The execution engines consume that set to
    drop their per-access OCaml bounds checks.  Only failure checks are
    elided — never value-affecting clamps — so elision cannot change
    results, only skip branches that were proved untakeable. *)

type proved = (int, unit) Hashtbl.t
(** Op ids of accesses proved in-bounds. *)

val is_proved : proved -> Ir.Op.op -> bool
val cardinal : proved -> int

val elidable : Ir.Op.op -> bool
(** Ops the engines have unchecked variants for.  Calls are never
    tagged: externs do their own internal indexing. *)

val prove_func :
  ?seed:(Ir.Value.t * Interval.v) list ->
  len_of:(Interval.origin -> int option) ->
  Ir.Func.func ->
  proved
(** [prove_func ~len_of ?seed f] returns the set of access ops proved
    in-bounds.  [len_of origin] is the guaranteed minimum length (in
    elements) of the buffer behind [origin], or [None] if unknown. *)

val elidable_count : Ir.Func.func -> int
(** Count of elidable access ops in a function, for reporting proof
    coverage. *)
