(** Forward dataflow framework over the structured SSA IR.

    The IR has no CFG — control flow is structured ([scf.for] / [scf.if]
    with single-block regions) — so instead of a worklist over basic
    blocks the solver walks the region tree:

    - straight-line ops apply the client's transfer function once;
    - [scf.if] analyzes both branches and joins their yields into the
      op's results;
    - [scf.for] seeds the induction variable from the client's
      [loop_iv] hook, then iterates the body to a fixpoint on the
      loop-carried values ([max_rounds] rounds, joining each round's
      yields into the iter slots); if still unstable it widens and runs
      one final stabilizing round.

    Because every loop nest is depth-bounded and each carried value
    climbs a finite-height lattice (widening cuts infinite ascent), the
    walk terminates.  After convergence an optional [visit] hook replays
    the whole function once on the stable environment — that is where
    clients that *collect* facts (footprints, proved-bounds sets) hook
    in, so they only ever see post-fixpoint values. *)

open Ir

module type DOMAIN = sig
  type v

  val top : v
  val is_bot : v -> bool
  (** [is_bot v] means no concrete value reaches here (unreachable). *)

  val join : v -> v -> v
  val widen : v -> v -> v
  (** [widen old next] must reach a fixed point in finitely many steps;
      jumping straight to [top] is always sound. *)

  val equal : v -> v -> bool
  val pp : v Fmt.t
end

module type CLIENT = sig
  include DOMAIN

  type ctx
  (** Client context threaded through transfer (e.g. the module, extern
      length info, seeds). *)

  val param : ctx -> int -> Value.t -> v
  (** Initial abstract value of the [i]-th function parameter. *)

  val transfer : ctx -> get:(Value.t -> v) -> Op.op -> v array
  (** Abstract results of a non-structural op ([For]/[If]/[Yield]/
      [Return] never reach here).  Must return one value per result. *)

  val loop_iv : ctx -> lb:v -> ub:v -> step:v -> v
  (** Abstract induction variable for a loop over [\[lb, ub)] by [step].
      Return a bottom value iff the loop provably never executes. *)
end

module Make (C : CLIENT) = struct
  type state = { tbl : (int, C.v) Hashtbl.t; ctx : C.ctx }

  let get (st : state) (v : Value.t) : C.v =
    match Hashtbl.find_opt st.tbl v.Value.id with Some x -> x | None -> C.top

  let set (st : state) (v : Value.t) (x : C.v) : unit =
    Hashtbl.replace st.tbl v.Value.id x

  let max_rounds = 4

  (* Returns the abstract operands of the region's [Yield] (empty array
     if the region has none, e.g. a function body ending in Return). *)
  let rec analyze_region (st : state) ~visit (r : Op.region) : C.v array =
    let yields = ref [||] in
    List.iter
      (fun (o : Op.op) ->
        (match o.kind with
        | Op.For _ -> analyze_for st ~visit o
        | Op.If -> analyze_if st ~visit o
        | Op.Yield -> yields := Array.map (get st) o.operands
        | Op.Return -> ()
        | _ ->
            let rs = C.transfer st.ctx ~get:(get st) o in
            Array.iteri (fun i res -> set st res rs.(i)) o.results);
        match visit with Some f -> f st o | None -> ())
      r.r_ops;
    !yields

  and analyze_for (st : state) ~visit (o : Op.op) : unit =
    let lb = get st o.operands.(0)
    and ub = get st o.operands.(1)
    and step = get st o.operands.(2) in
    let n_iters = Array.length o.operands - 3 in
    let body = o.regions.(0) in
    let iv, iters =
      match body.r_args with
      | iv :: iters -> (iv, Array.of_list iters)
      | [] -> invalid_arg "dataflow: for-region without induction variable"
    in
    let init i = get st o.operands.(3 + i) in
    let ivv = C.loop_iv st.ctx ~lb ~ub ~step in
    if C.is_bot ivv then
      (* provably zero iterations: results are the inits, body is dead *)
      Array.iteri (fun i res -> set st res (init i)) o.results
    else begin
      set st iv ivv;
      Array.iteri (fun i it -> set st it (init i)) iters;
      let final_yields = ref [||] in
      let run_body ~visit = final_yields := analyze_region st ~visit body in
      let apply_yields combine =
        let changed = ref false in
        let ys = !final_yields in
        if Array.length ys = n_iters then
          Array.iteri
            (fun i it ->
              let cur = get st it in
              let next = combine cur ys.(i) in
              if not (C.equal cur next) then begin
                changed := true;
                set st it next
              end)
            iters;
        !changed
      in
      let rec fix round =
        run_body ~visit:None;
        if apply_yields C.join then
          if round + 1 < max_rounds then fix (round + 1)
          else begin
            (* widen the survivors and stabilize with one more round *)
            ignore (apply_yields C.widen);
            run_body ~visit:None;
            ignore (apply_yields C.join)
          end
      in
      fix 0;
      (* replay once on the stable environment so [visit] sees final facts *)
      run_body ~visit;
      (* results: yields if the loop ran, inits if it was empty — we can't
         always tell which, so join *)
      let ys = !final_yields in
      Array.iteri
        (fun i res ->
          let v =
            if Array.length ys = n_iters then C.join (init i) ys.(i)
            else C.top
          in
          set st res v)
        o.results
    end

  and analyze_if (st : state) ~visit (o : Op.op) : unit =
    let then_ys = analyze_region st ~visit o.regions.(0) in
    let else_ys = analyze_region st ~visit o.regions.(1) in
    let n = Array.length o.results in
    Array.iteri
      (fun i res ->
        let v =
          if Array.length then_ys = n && Array.length else_ys = n then
            C.join then_ys.(i) else_ys.(i)
          else C.top
        in
        set st res v)
      o.results

  (** Analyze a function body to fixpoint.  [seed] overrides the abstract
      value of specific SSA values (typically parameters) after the
      client's [param] defaults are installed.  [visit] fires once per op
      on the converged environment, loops included. *)
  let analyze_func ?(seed = []) ?visit (ctx : C.ctx) (f : Func.func) : state =
    let st = { tbl = Hashtbl.create 256; ctx } in
    List.iteri (fun i p -> set st p (C.param ctx i p)) f.Func.f_params;
    List.iter (fun (v, x) -> set st v x) seed;
    ignore (analyze_region st ~visit f.Func.f_body);
    st
end
