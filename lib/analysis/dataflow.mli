(** Forward dataflow framework over the structured SSA IR.

    The IR has no CFG — control flow is structured ([scf.for] / [scf.if]
    with single-block regions) — so instead of a worklist over basic
    blocks the solver walks the region tree: straight-line ops apply the
    client's transfer function once, [scf.if] joins the branch yields,
    and [scf.for] iterates the body to a fixpoint on the loop-carried
    values, widening after a bounded number of rounds.  After
    convergence an optional [visit] hook replays the whole function once
    on the stable environment, so fact-collecting clients only ever see
    post-fixpoint values. *)

(** The abstract-value lattice. *)
module type DOMAIN = sig
  type v

  val top : v

  val is_bot : v -> bool
  (** [is_bot v] means no concrete value reaches here (unreachable). *)

  val join : v -> v -> v

  val widen : v -> v -> v
  (** [widen old next] must reach a fixed point in finitely many steps;
      jumping straight to [top] is always sound. *)

  val equal : v -> v -> bool
  val pp : v Fmt.t
end

(** A domain plus the transfer functions of one analysis. *)
module type CLIENT = sig
  include DOMAIN

  type ctx
  (** Client context threaded through transfer (e.g. the module, extern
      length info, seeds). *)

  val param : ctx -> int -> Ir.Value.t -> v
  (** Initial abstract value of the [i]-th function parameter. *)

  val transfer : ctx -> get:(Ir.Value.t -> v) -> Ir.Op.op -> v array
  (** Abstract results of a non-structural op ([For]/[If]/[Yield]/
      [Return] never reach here).  Must return one value per result. *)

  val loop_iv : ctx -> lb:v -> ub:v -> step:v -> v
  (** Abstract induction variable for a loop over [\[lb, ub)] by [step].
      Return a bottom value iff the loop provably never executes. *)
end

module Make (C : CLIENT) : sig
  type state
  (** Converged per-SSA-value facts plus the client context. *)

  val get : state -> Ir.Value.t -> C.v
  (** Facts for a value ([C.top] when the value was never reached). *)

  val set : state -> Ir.Value.t -> C.v -> unit

  val analyze_func :
    ?seed:(Ir.Value.t * C.v) list ->
    ?visit:(state -> Ir.Op.op -> unit) ->
    C.ctx ->
    Ir.Func.func ->
    state
  (** Analyze a function body to fixpoint.  [seed] overrides the
      abstract value of specific SSA values (typically parameters) after
      the client's [param] defaults are installed.  [visit] fires once
      per op on the converged environment, loops included. *)
end
