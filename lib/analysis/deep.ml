(** Deep verification: structural checks plus dataflow sanity.

    The plain {!Ir.Verifier} checks types, arities and SSA structure.
    Deep mode layers the analyses on top:

    - definite-initialization of local allocs ({!Meminit}): a read that
      may precede every write on some path is an error;
    - footprint sanity: an access whose index interval is {e entirely}
      negative, or entirely past the end of a constant-sized local
      alloc, can never be in bounds — a definite out-of-bounds error
      (possible-OOB is not reported here: parameter buffer lengths are
      a caller contract, checked by {!Bounds} where lengths are known).

    Lives in the analysis library rather than in [Ir.Verifier] because
    the dependency points this way: the verifier cannot depend on the
    analyses built on top of the IR. *)

open Ir
module I = Itv.I

(* Constant alloc sizes, by alloc op id. *)
let alloc_sizes (st : Interval.state) (f : Func.func) : (int, int) Hashtbl.t =
  let sizes = Hashtbl.create 8 in
  Op.iter_region
    (fun o ->
      match o.Op.kind with
      | Op.Alloc ->
          let sz = Interval.int_itv st o.Op.operands.(0) in
          if I.is_const sz then Hashtbl.replace sizes o.Op.o_id sz.I.lo
      | _ -> ())
    f.Func.f_body;
  sizes

let footprint_errors (f : Func.func) : Verifier.error list =
  let st, accs = Footprint.of_func f in
  let sizes = alloc_sizes st f in
  List.filter_map
    (fun (a : Footprint.access) ->
      let itv = a.Footprint.acc_itv in
      if I.is_bot itv then None
      else
        let definite_oob =
          itv.I.hi < 0
          ||
          match a.Footprint.acc_origin with
          | Interval.Oalloc id -> (
              match Hashtbl.find_opt sizes id with
              | Some n -> itv.I.lo > n - 1
              | None -> false)
          | _ -> false
        in
        if definite_oob then
          Some
            {
              Verifier.in_func = f.Func.f_name;
              op = Op.kind_name a.Footprint.acc_op.Op.kind;
              msg =
                Fmt.str "access indices %a are definitely out of bounds" I.pp
                  itv;
            }
        else None)
    accs

let meminit_errors (f : Func.func) : Verifier.error list =
  List.map
    (fun (i : Meminit.issue) ->
      {
        Verifier.in_func = f.Func.f_name;
        op = Op.kind_name i.Meminit.mi_op.Op.kind;
        msg = i.Meminit.mi_msg;
      })
    (Meminit.check_func f)

(** Structural verification plus use-before-def and footprint sanity
    over every function of the module. *)
let verify_module (m : Func.modl) : Verifier.error list =
  let structural = Verifier.verify_module m in
  let dataflow =
    (* dataflow checks assume structurally-sound IR *)
    if structural <> [] then []
    else
      List.concat_map
        (fun f -> meminit_errors f @ footprint_errors f)
        m.Func.m_funcs
  in
  structural @ dataflow

let verify_module_exn (m : Func.modl) : unit =
  match verify_module m with
  | [] -> ()
  | errs -> failwith (Verifier.errors_to_string errs)
