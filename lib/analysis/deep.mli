(** Deep verification: structural checks plus dataflow sanity.

    The plain {!Ir.Verifier} checks types, arities and SSA structure.
    Deep mode layers the analyses on top: definite-initialization of
    local allocs ({!Meminit}) and footprint sanity (an access whose
    index interval is {e entirely} negative, or entirely past the end of
    a constant-sized local alloc, is a definite out-of-bounds error;
    possible-OOB against caller buffers is {!Bounds}' job, where lengths
    are known). *)

val alloc_sizes : Interval.state -> Ir.Func.func -> (int, int) Hashtbl.t
(** Constant alloc sizes, by alloc op id. *)

val footprint_errors : Ir.Func.func -> Ir.Verifier.error list
(** Accesses that are definitely out of bounds on every execution. *)

val meminit_errors : Ir.Func.func -> Ir.Verifier.error list
(** {!Meminit.check_func} issues, as verifier errors. *)

val verify_module : Ir.Func.modl -> Ir.Verifier.error list
(** Structural verification plus use-before-def and footprint sanity
    over every function of the module.  Dataflow checks only run when
    the structural pass is clean. *)

val verify_module_exn : Ir.Func.modl -> unit
(** @raise Failure with the pretty-printed error list if any check
    fails. *)
