(** Memory-footprint summaries.

    Two views of "what memory does this code touch":

    - {!of_func}: a global, interval-powered summary — every load/store/
      gather/scatter (and the LUT extern calls, via a small effect
      table) is recorded as an {!access}: a symbolic buffer {e origin}
      plus a congruence interval of touched element indices.  Seeding
      the analysis with concrete chunk bounds turns this into the
      per-chunk write sets the race checker intersects, and with the
      driver's buffer lengths it becomes the proof obligation of the
      bounds-elision pass.

    - {!local_alias}: a purely syntactic, O(1) oracle for two accesses
      in the {e same} straight-line block, used by the fused engine's
      load/store sinking rule.  It chases constant index arithmetic to a
      common root and classifies the pair as provably identical,
      provably disjoint, on distinct SSA memrefs, or unknown. *)

open Ir
module I = Itv.I

type access = {
  acc_op : Op.op;
  acc_origin : Interval.origin;
  acc_itv : I.t;  (** touched element indices, all lanes included *)
  acc_write : bool;
}

let pp_access ppf (a : access) =
  Fmt.pf ppf "%s %s[%a] (%s)"
    (if a.acc_write then "write" else "read")
    (Fmt.str "%a" Interval.pp_origin a.acc_origin)
    I.pp a.acc_itv (Op.kind_name a.acc_op.Op.kind)

(* Vector ops at width [w] starting at index [i] touch [i .. i+w-1]. *)
let widen_by (itv : I.t) (w : int) : I.t =
  if w <= 1 then itv else I.add itv (I.range 0 (w - 1))

let value_width (x : Value.t) : int = Ty.width x.Value.ty

(* Effects of the known runtime externs.  [lut_interp*(table, row, x,
   lo, step, rows, cols)] reads the whole table and fills the first
   [cols * lanes(x)] slots of the row buffer.  Unknown externs are
   assumed to read and write every memref operand in full. *)
let call_accesses (st : Interval.state) (o : Op.op) : access list =
  let origin i = Interval.mem_origin st o.Op.operands.(i) in
  match o.Op.kind with
  | Op.Call
      ("lut_interp" | "lut_interp_vec" | "lut_interp_cubic"
      | "lut_interp_cubic_vec") ->
      let rows = Interval.int_itv st o.Op.operands.(5)
      and cols = Interval.int_itv st o.Op.operands.(6) in
      let w = value_width o.Op.operands.(2) in
      let table_itv =
        if I.is_bot rows || I.is_bot cols then I.bot
        else I.range 0 (Itv.sat_sub (Itv.sat_mul rows.I.hi cols.I.hi) 1)
      in
      let row_itv =
        if I.is_bot cols then I.bot
        else I.range 0 (Itv.sat_sub (Itv.sat_mul cols.I.hi w) 1)
      in
      [
        { acc_op = o; acc_origin = origin 0; acc_itv = table_itv; acc_write = false };
        { acc_op = o; acc_origin = origin 1; acc_itv = row_itv; acc_write = true };
      ]
  | Op.Call _ ->
      Array.to_list o.Op.operands
      |> List.concat_map (fun (x : Value.t) ->
             if x.Value.ty = Ty.Memref then
               let origin = Interval.mem_origin st x in
               [
                 { acc_op = o; acc_origin = origin; acc_itv = I.top; acc_write = false };
                 { acc_op = o; acc_origin = origin; acc_itv = I.top; acc_write = true };
               ]
             else [])
  | _ -> []

(** Accesses performed by a single op, given converged interval facts. *)
let accesses_of (st : Interval.state) (o : Op.op) : access list =
  let origin i = Interval.mem_origin st o.Op.operands.(i) in
  let idx i = Interval.int_itv st o.Op.operands.(i) in
  match o.Op.kind with
  | Op.MemLoad ->
      [ { acc_op = o; acc_origin = origin 0; acc_itv = idx 1; acc_write = false } ]
  | Op.MemStore ->
      [ { acc_op = o; acc_origin = origin 1; acc_itv = idx 2; acc_write = true } ]
  | Op.VecLoad ->
      let w = value_width o.Op.results.(0) in
      [
        {
          acc_op = o;
          acc_origin = origin 0;
          acc_itv = widen_by (idx 1) w;
          acc_write = false;
        };
      ]
  | Op.VecStore ->
      let w = value_width o.Op.operands.(0) in
      [
        {
          acc_op = o;
          acc_origin = origin 1;
          acc_itv = widen_by (idx 2) w;
          acc_write = true;
        };
      ]
  | Op.Gather ->
      [ { acc_op = o; acc_origin = origin 0; acc_itv = idx 1; acc_write = false } ]
  | Op.Scatter ->
      [ { acc_op = o; acc_origin = origin 1; acc_itv = idx 2; acc_write = true } ]
  | Op.Call _ -> call_accesses st o
  | _ -> []

(** Analyze [f] (optionally seeding parameter values — e.g. concrete
    chunk bounds) and collect every access on the converged
    environment.  Accesses in provably-dead loops are not reported. *)
let of_func ?seed (f : Func.func) : Interval.state * access list =
  let acc = ref [] in
  let visit st o = acc := List.rev_append (accesses_of st o) !acc in
  let st = Interval.analyze_func ?seed ~visit f in
  (st, List.rev !acc)

let writes (accs : access list) = List.filter (fun a -> a.acc_write) accs
let reads (accs : access list) = List.filter (fun a -> not a.acc_write) accs

(** Accesses grouped per origin, origins in first-touch order. *)
let by_origin (accs : access list) : (Interval.origin * access list) list =
  List.fold_left
    (fun groups a ->
      let rec insert = function
        | [] -> [ (a.acc_origin, [ a ]) ]
        | (o, l) :: rest when Interval.origin_equal o a.acc_origin ->
            (o, a :: l) :: rest
        | g :: rest -> g :: insert rest
      in
      insert groups)
    [] accs
  |> List.map (fun (o, l) -> (o, List.rev l))

(* ------------------------------------------------------------------ *)
(* Local (same-block) alias oracle                                     *)
(* ------------------------------------------------------------------ *)

type rel =
  | Same  (** identical buffer, identical index, identical width *)
  | Disjoint  (** identical buffer, provably non-overlapping ranges *)
  | DistinctMem  (** different SSA memref values *)
  | May  (** same buffer, overlap not refutable *)

let rel_name = function
  | Same -> "same"
  | Disjoint -> "disjoint"
  | DistinctMem -> "distinct-mem"
  | May -> "may-alias"

(* Normalize an index to (symbolic root, constant offset) by chasing
   [x + c] / [x - c] / [c] chains.  [defs] maps an SSA value to its
   defining op (None for block arguments / parameters). *)
let rec chase_idx (defs : Value.t -> Op.op option) (v : Value.t) (off : int)
    (fuel : int) : Value.t option * int =
  if fuel <= 0 then (Some v, off)
  else
    match defs v with
    | Some { Op.kind = Op.ConstI n; _ } -> (None, off + n)
    | Some { Op.kind = Op.BinI Op.IAdd; operands = [| a; b |]; _ } -> (
        match (defs a, defs b) with
        | _, Some { Op.kind = Op.ConstI n; _ } ->
            chase_idx defs a (off + n) (fuel - 1)
        | Some { Op.kind = Op.ConstI n; _ }, _ ->
            chase_idx defs b (off + n) (fuel - 1)
        | _ -> (Some v, off))
    | Some { Op.kind = Op.BinI Op.ISub; operands = [| a; b |]; _ } -> (
        match defs b with
        | Some { Op.kind = Op.ConstI n; _ } ->
            chase_idx defs a (off - n) (fuel - 1)
        | _ -> (Some v, off))
    | _ -> (Some v, off)

(** Alias relation between two accesses [(mem, index, width)] in the
    same block.  Sound under SSA: equal values denote equal runtime
    addresses within one iteration. *)
let local_alias ~(defs : Value.t -> Op.op option)
    ((m1, i1, w1) : Value.t * Value.t * int)
    ((m2, i2, w2) : Value.t * Value.t * int) : rel =
  if m1.Value.id <> m2.Value.id then DistinctMem
  else
    let r1, o1 = chase_idx defs i1 0 8 and r2, o2 = chase_idx defs i2 0 8 in
    let same_root =
      match (r1, r2) with
      | None, None -> true
      | Some a, Some b -> a.Value.id = b.Value.id
      | _ -> false
    in
    if not same_root then May
    else if o1 = o2 && w1 = w2 then Same
    else if o1 + w1 <= o2 || o2 + w2 <= o1 then Disjoint
    else May
