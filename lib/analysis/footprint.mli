(** Memory-footprint summaries.

    Two views of "what memory does this code touch": {!of_func}, a
    global interval-powered summary of every access as a buffer origin
    plus a touched-index interval; and {!local_alias}, a purely
    syntactic O(1) oracle for two accesses in the {e same} straight-line
    block, used by the fused engine's load/store sinking rule. *)

type access = {
  acc_op : Ir.Op.op;
  acc_origin : Interval.origin;
  acc_itv : Itv.I.t;  (** touched element indices, all lanes included *)
  acc_write : bool;
}

val pp_access : access Fmt.t

val widen_by : Itv.I.t -> int -> Itv.I.t
(** Vector ops at width [w] starting at index [i] touch [i .. i+w-1]:
    widen the start-index interval by the lane span. *)

val accesses_of : Interval.state -> Ir.Op.op -> access list
(** Accesses performed by a single op, given converged interval facts.
    Loads/stores/gathers/scatters report their index interval (vector
    ops widened by the lane count); the LUT externs use a built-in
    effect table; unknown externs are assumed to read and write every
    memref operand in full.  Pure ops report nothing. *)

val of_func : ?seed:(Ir.Value.t * Interval.v) list ->
  Ir.Func.func -> Interval.state * access list
(** Analyze [f] (optionally seeding parameter values — e.g. concrete
    chunk bounds) and collect every access on the converged
    environment.  Accesses in provably-dead loops are not reported. *)

val writes : access list -> access list
val reads : access list -> access list

val by_origin : access list -> (Interval.origin * access list) list
(** Accesses grouped per origin, origins in first-touch order. *)

(** {2 Local (same-block) alias oracle} *)

type rel =
  | Same  (** identical buffer, identical index, identical width *)
  | Disjoint  (** identical buffer, provably non-overlapping ranges *)
  | DistinctMem  (** different SSA memref values *)
  | May  (** same buffer, overlap not refutable *)

val rel_name : rel -> string

val chase_idx :
  (Ir.Value.t -> Ir.Op.op option) -> Ir.Value.t -> int -> int ->
  Ir.Value.t option * int
(** [chase_idx defs v off fuel]: normalize an index to (symbolic root,
    constant offset) by chasing [x + c] / [x - c] / [c] chains through
    the defining-op map.  [None] root means a fully-constant index. *)

val local_alias :
  defs:(Ir.Value.t -> Ir.Op.op option) ->
  Ir.Value.t * Ir.Value.t * int ->
  Ir.Value.t * Ir.Value.t * int ->
  rel
(** Alias relation between two accesses [(mem, index, width)] in the
    same block.  Sound under SSA: equal values denote equal runtime
    addresses within one iteration. *)
