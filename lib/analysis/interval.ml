(** Value-range analysis over the IR (the framework's flagship client).

    Every SSA value gets an abstract value:
    - float-like values (scalars or all lanes of a vector jointly) get a
      float interval with NaN flag ({!Itv.F});
    - int-like values get a congruence interval ({!Itv.I}) — precise
      enough to push the AoSoA address polynomial
      [(iv/w)·nvars·w + k·w + iv mod w] through exactly when [iv] is
      known to be [w]-aligned;
    - bool-like values get a can-be-true/can-be-false pair;
    - memrefs get a symbolic {e origin} (which parameter / which alloc),
      the handle the footprint and bounds clients key their summaries on.

    The transfer function interprets every arith/math/vector/memref op;
    math builtins get per-function interval semantics (monotone
    envelopes for [exp]/[tanh]/..., domain-aware NaN for [log]/[sqrt]/
    [asin]/...), everything unknown degrades to top-with-NaN. *)

open Ir
module F = Itv.F
module I = Itv.I

type origin =
  | Oparam of int  (** i-th function parameter *)
  | Oalloc of int  (** [memref.alloc] with this op id *)
  | Ounknown

let origin_equal (a : origin) (b : origin) = a = b

let pp_origin ppf = function
  | Oparam i -> Fmt.pf ppf "param%d" i
  | Oalloc i -> Fmt.pf ppf "alloc#%d" i
  | Ounknown -> Fmt.string ppf "?"

type v =
  | AF of F.t
  | AI of I.t
  | AB of { cant : bool; canf : bool }
  | AM of origin
  | Atop

let ab_top = AB { cant = true; canf = true }
let ab_const b = AB { cant = b; canf = not b }

let top_for_ty (ty : Ty.t) : v =
  let rec go = function
    | Ty.F64 -> AF F.top
    | Ty.I64 -> AI I.top
    | Ty.I1 -> ab_top
    | Ty.Vec (_, e) -> go e
    | Ty.Memref -> AM Ounknown
  in
  go ty

(* Coercions: type-correct IR only ever hits the matching arm; anything
   else degrades to top of the expected class. *)
let af = function AF x -> x | _ -> F.top
let ai = function AI x -> x | _ -> I.top
let ab = function AB b -> (b.cant, b.canf) | _ -> (true, true)
let origin_of = function AM o -> o | _ -> Ounknown

(* ------------------------------------------------------------------ *)
(* Math builtin transfers                                              *)
(* ------------------------------------------------------------------ *)

let absf (a : F.t) : F.t =
  if F.range_empty a then a
  else
    let al = Float.abs a.F.lo and ah = Float.abs a.F.hi in
    {
      F.lo = (if F.contains_zero a then 0.0 else Float.min al ah);
      hi = Float.max al ah;
      nan = a.F.nan;
    }

(* f monotone on [dmin, +oo); arguments below [dmin] produce NaN, at
   [dmin] possibly -oo (log 0).  Covers log-family, sqrt. *)
let domain_mono (f : float -> float) (dmin : float) (a : F.t) : F.t =
  if F.is_bot a then a
  else
    let nan = a.F.nan || a.F.lo < dmin in
    if F.range_empty a || a.F.hi < dmin then { F.bot with nan }
    else
      let lo = Float.max a.F.lo dmin in
      let r = F.mono f { F.lo = lo; hi = a.F.hi; nan = false } in
      { r with F.nan = nan }

(* f monotone on [dlo, dhi]; outside produces NaN (asin/acos domain). *)
let domain_mono2 (f : float -> float) dlo dhi ~(decreasing : bool) (a : F.t) :
    F.t =
  if F.is_bot a then a
  else
    let nan = a.F.nan || a.F.lo < dlo || a.F.hi > dhi in
    if F.range_empty a || a.F.hi < dlo || a.F.lo > dhi then { F.bot with nan }
    else
      let lo = Float.max a.F.lo dlo and hi = Float.min a.F.hi dhi in
      if decreasing then { F.lo = f hi; hi = f lo; nan }
      else { F.lo = f lo; hi = f hi; nan }

let bounded_wave (a : F.t) : F.t =
  (* sin/cos: [-1,1]; NaN at infinities *)
  if F.is_bot a then a
  else
    let nan = a.F.nan || F.contains_inf a in
    if F.range_empty a then { F.bot with nan } else { F.lo = -1.0; hi = 1.0; nan }

(** Interval semantics of a named math builtin.  Shared with the EasyML
    lint's AST evaluator, so model-level and IR-level range reasoning
    agree by construction. *)
let math_itv (name : string) (args : F.t list) : F.t =
  match (name, args) with
  | "exp", [ a ] -> F.mono Float.exp a
  | "expm1", [ a ] -> F.mono Float.expm1 a
  | "log", [ a ] -> domain_mono Float.log 0.0 a
  | "log1p", [ a ] -> domain_mono Float.log1p (-1.0) a
  | "log10", [ a ] -> domain_mono Float.log10 0.0 a
  | "log2", [ a ] -> domain_mono Float.log2 0.0 a
  | "sqrt", [ a ] -> domain_mono Float.sqrt 0.0 a
  | "cbrt", [ a ] -> F.mono Float.cbrt a
  | "square", [ a ] -> F.mono (fun x -> x *. x) (absf a)
  | "cube", [ a ] -> F.mono (fun x -> x *. x *. x) a
  | ("fabs" | "abs"), [ a ] -> absf a
  | "floor", [ a ] -> F.mono Float.floor a
  | "ceil", [ a ] -> F.mono Float.ceil a
  | "round", [ a ] -> F.mono Float.round a
  | "trunc", [ a ] -> F.mono Float.trunc a
  | ("sin" | "cos"), [ a ] -> bounded_wave a
  | "tan", [ a ] ->
      if F.is_bot a then a else { F.lo = neg_infinity; hi = infinity; nan = true }
  | "tanh", [ a ] -> F.mono Float.tanh a
  | "sinh", [ a ] -> F.mono Float.sinh a
  | "cosh", [ a ] -> F.mono Float.cosh (absf a)
  | "asin", [ a ] -> domain_mono2 Float.asin (-1.0) 1.0 ~decreasing:false a
  | "acos", [ a ] -> domain_mono2 Float.acos (-1.0) 1.0 ~decreasing:true a
  | "atan", [ a ] -> F.mono Float.atan a
  | "atan2", [ a; b ] ->
      if F.is_bot a || F.is_bot b then F.bot
      else { F.lo = -4.0; hi = 4.0; nan = a.F.nan || b.F.nan }
  | "pow", [ a; b ] ->
      if F.is_bot a || F.is_bot b then F.bot
      else { F.lo = neg_infinity; hi = infinity; nan = true }
  | "fmod", [ a; b ] -> F.rem a b
  | ("min" | "fmin"), [ a; b ] -> F.min_ a b
  | ("max" | "fmax"), [ a; b ] -> F.max_ a b
  | "hypot", [ a; b ] ->
      if F.is_bot a || F.is_bot b then F.bot
      else { F.lo = 0.0; hi = infinity; nan = a.F.nan || b.F.nan }
  | _ -> F.top

(* ------------------------------------------------------------------ *)
(* Comparisons                                                         *)
(* ------------------------------------------------------------------ *)

let cmpf (c : Op.cmp) (a : F.t) (b : F.t) : v =
  if F.is_bot a || F.is_bot b then AB { cant = false; canf = false }
  else if F.range_empty a || F.range_empty b then
    (* at least one operand is definitely NaN: IEEE makes every
       comparison false except [<>] *)
    (match c with Op.Ne -> ab_const true | _ -> ab_const false)
  else
    let singles = a.F.lo = a.F.hi && b.F.lo = b.F.hi in
    let overlapping = a.F.lo <= b.F.hi && b.F.lo <= a.F.hi in
    let ct, cf =
      match c with
      | Op.Lt -> (a.F.lo < b.F.hi, a.F.hi >= b.F.lo)
      | Op.Le -> (a.F.lo <= b.F.hi, a.F.hi > b.F.lo)
      | Op.Gt -> (a.F.hi > b.F.lo, a.F.lo <= b.F.hi)
      | Op.Ge -> (a.F.hi >= b.F.lo, a.F.lo < b.F.hi)
      | Op.Eq -> (overlapping, not (singles && a.F.lo = b.F.lo))
      | Op.Ne -> (not (singles && a.F.lo = b.F.lo), overlapping)
    in
    if a.F.nan || b.F.nan then
      match c with
      | Op.Ne -> AB { cant = true; canf = cf }
      | _ -> AB { cant = ct; canf = true }
    else AB { cant = ct; canf = cf }

let cmpi (c : Op.cmp) (a : I.t) (b : I.t) : v =
  if I.is_bot a || I.is_bot b then AB { cant = false; canf = false }
  else
    let singles = I.is_const a && I.is_const b in
    let ct, cf =
      match c with
      | Op.Lt -> (a.I.lo < b.I.hi, a.I.hi >= b.I.lo)
      | Op.Le -> (a.I.lo <= b.I.hi, a.I.hi > b.I.lo)
      | Op.Gt -> (a.I.hi > b.I.lo, a.I.lo <= b.I.hi)
      | Op.Ge -> (a.I.hi >= b.I.lo, a.I.lo < b.I.hi)
      | Op.Eq -> (I.overlap a b, not (singles && a.I.lo = b.I.lo))
      | Op.Ne -> (not (singles && a.I.lo = b.I.lo), I.overlap a b)
    in
    AB { cant = ct; canf = cf }

(* ------------------------------------------------------------------ *)
(* The dataflow client                                                 *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type nonrec v = v

  let top = Atop

  let is_bot = function
    | AF a -> F.is_bot a
    | AI a -> I.is_bot a
    | AB b -> (not b.cant) && not b.canf
    | AM _ | Atop -> false

  let join (x : v) (y : v) : v =
    match (x, y) with
    | AF a, AF b -> AF (F.join a b)
    | AI a, AI b -> AI (I.join a b)
    | AB a, AB b -> AB { cant = a.cant || b.cant; canf = a.canf || b.canf }
    | AM a, AM b -> if origin_equal a b then x else AM Ounknown
    | _ -> Atop

  let widen (_old : v) (next : v) : v =
    match next with
    | AF _ -> AF F.top
    | AI _ -> AI I.top
    | AB _ -> ab_top
    | (AM _ | Atop) as x -> x

  let equal (x : v) (y : v) : bool =
    match (x, y) with
    | AF a, AF b -> F.equal a b
    | AI a, AI b -> I.equal a b
    | AB a, AB b -> a.cant = b.cant && a.canf = b.canf
    | AM a, AM b -> origin_equal a b
    | Atop, Atop -> true
    | _ -> false

  let pp ppf = function
    | AF a -> F.pp ppf a
    | AI a -> I.pp ppf a
    | AB { cant; canf } ->
        Fmt.pf ppf "%s"
          (match (cant, canf) with
          | true, true -> "bool"
          | true, false -> "true"
          | false, true -> "false"
          | false, false -> "_|_")
    | AM o -> Fmt.pf ppf "memref(%a)" pp_origin o
    | Atop -> Fmt.string ppf "T"

  type ctx = unit

  let param () (i : int) (p : Value.t) : v =
    match p.Value.ty with Ty.Memref -> AM (Oparam i) | ty -> top_for_ty ty

  let transfer () ~(get : Value.t -> v) (o : Op.op) : v array =
    let one x = [| x |] in
    let opv i = get o.Op.operands.(i) in
    let res_default () =
      Array.map (fun (r : Value.t) -> top_for_ty r.Value.ty) o.Op.results
    in
    match o.Op.kind with
    | Op.ConstF f -> one (AF (F.const f))
    | Op.ConstI n -> one (AI (I.const n))
    | Op.ConstB b -> one (ab_const b)
    | Op.BinF fb ->
        let a = af (opv 0) and b = af (opv 1) in
        let r =
          match fb with
          | Op.FAdd -> F.add a b
          | Op.FSub -> F.sub a b
          | Op.FMul -> F.mul a b
          | Op.FDiv -> F.div a b
          | Op.FMin -> F.min_ a b
          | Op.FMax -> F.max_ a b
          | Op.FRem -> F.rem a b
        in
        one (AF r)
    | Op.NegF -> one (AF (F.neg (af (opv 0))))
    | Op.BinI ib ->
        let a = ai (opv 0) and b = ai (opv 1) in
        let r =
          match ib with
          | Op.IAdd -> I.add a b
          | Op.ISub -> I.sub a b
          | Op.IMul -> I.mul a b
          | Op.IDiv -> I.div a b
          | Op.IRem -> I.rem a b
        in
        one (AI r)
    | Op.BinB bb ->
        let ct1, cf1 = ab (opv 0) and ct2, cf2 = ab (opv 1) in
        let r =
          match bb with
          | Op.BAnd -> AB { cant = ct1 && ct2; canf = cf1 || cf2 }
          | Op.BOr -> AB { cant = ct1 || ct2; canf = cf1 && cf2 }
          | Op.BXor ->
              AB
                {
                  cant = (ct1 && cf2) || (cf1 && ct2);
                  canf = (ct1 && ct2) || (cf1 && cf2);
                }
        in
        one r
    | Op.NotB ->
        let ct, cf = ab (opv 0) in
        one (AB { cant = cf; canf = ct })
    | Op.CmpF c -> one (cmpf c (af (opv 0)) (af (opv 1)))
    | Op.CmpI c -> one (cmpi c (ai (opv 0)) (ai (opv 1)))
    | Op.Select ->
        let ct, cf = ab (opv 0) in
        let t = opv 1 and e = opv 2 in
        one
          (if ct && cf then join t e
           else if ct then t
           else if cf then e
           else (* condition unreachable *) t)
    | Op.SIToFP ->
        let a = ai (opv 0) in
        if I.is_bot a then one (AF F.bot)
        else
          let conv sentinel x =
            if x = min_int then neg_infinity
            else if x = max_int then infinity
            else float_of_int x |> fun f -> if Float.is_nan f then sentinel else f
          in
          one
            (AF
               {
                 F.lo = conv neg_infinity a.I.lo;
                 hi = conv infinity a.I.hi;
                 nan = false;
               })
    | Op.FPToSI ->
        let a = af (opv 0) in
        if F.is_bot a then one (AI I.bot)
        else
          let huge = 4.611686018427387904e18 (* 2^62 *) in
          if
            a.F.nan || F.range_empty a
            || Float.abs a.F.lo > huge
            || Float.abs a.F.hi > huge
          then one (AI I.top)
          else
            one
              (AI
                 (I.range
                    (int_of_float (Float.trunc a.F.lo))
                    (int_of_float (Float.trunc a.F.hi))))
    | Op.Math name ->
        one (AF (math_itv name (List.map af (Array.to_list (Array.map get o.Op.operands)))))
    | Op.Broadcast | Op.VecExtract _ -> one (opv 0)
    | Op.Iota w -> one (AI (I.range 0 (w - 1)))
    | Op.VecLoad | Op.MemLoad | Op.Gather -> one (AF F.top)
    | Op.VecStore | Op.MemStore | Op.Scatter -> [||]
    | Op.Alloc -> one (AM (Oalloc o.Op.o_id))
    | Op.Call _ | Op.Return | Op.Yield | Op.For _ | Op.If -> res_default ()

  let loop_iv () ~(lb : v) ~(ub : v) ~(step : v) : v =
    let l = ai lb and u = ai ub and s = ai step in
    if I.is_bot l || I.is_bot u || I.is_bot s then AI I.bot
    else if u.I.hi <= l.I.lo then AI I.bot (* provably zero iterations *)
    else
      let ml, rl = I.cong l in
      let m =
        if I.is_const s && s.I.lo > 0 then
          (* iv ≡ lb (mod step); fold in lb's own congruence *)
          if ml = 0 then s.I.lo else Itv.gcd s.I.lo ml
        else 1
      in
      AI (I.mk l.I.lo (Itv.sat_sub u.I.hi 1) m rl)
end

module Solver = Dataflow.Make (Client)

let join = Client.join
let equal_v = Client.equal
let pp_v = Client.pp

type state = Solver.state

let analyze_func ?seed ?visit (f : Func.func) : state =
  Solver.analyze_func ?seed ?visit () f

let get = Solver.get
let float_itv (st : state) (x : Value.t) : F.t = af (get st x)
let int_itv (st : state) (x : Value.t) : I.t = ai (get st x)
let mem_origin (st : state) (x : Value.t) : origin = origin_of (get st x)
