(** Value-range analysis over the IR (the framework's flagship client).

    Every SSA value gets an abstract value: float-like values a float
    interval with NaN flag ({!Itv.F}), int-like values a congruence
    interval ({!Itv.I}), bool-like values a can-be-true/can-be-false
    pair, and memrefs a symbolic buffer {e origin} — the handle the
    footprint and bounds clients key their summaries on. *)

type origin =
  | Oparam of int  (** i-th function parameter *)
  | Oalloc of int  (** [memref.alloc] with this op id *)
  | Ounknown

val origin_equal : origin -> origin -> bool
val pp_origin : origin Fmt.t

type v =
  | AF of Itv.F.t
  | AI of Itv.I.t
  | AB of { cant : bool; canf : bool }  (** can be true / can be false *)
  | AM of origin
  | Atop

val top_for_ty : Ir.Ty.t -> v
(** Least-informative value of the right class for a type (vector types
    get the element class: lanes are tracked jointly). *)

val math_itv : string -> Itv.F.t list -> Itv.F.t
(** Interval semantics of a named math builtin (monotone envelopes for
    [exp]/[tanh]/..., domain-aware NaN for [log]/[sqrt]/[asin]/...).
    Shared with the EasyML lint's AST evaluator, so model-level and
    IR-level range reasoning agree by construction.  Unknown names
    degrade to top-with-NaN. *)

val cmpf : Ir.Op.cmp -> Itv.F.t -> Itv.F.t -> v
(** Abstract float comparison (NaN makes every ordered predicate
    possibly-false, [<>] possibly-true). *)

val cmpi : Ir.Op.cmp -> Itv.I.t -> Itv.I.t -> v

type state
(** Converged per-SSA-value facts for one function. *)

val analyze_func :
  ?seed:(Ir.Value.t * v) list ->
  ?visit:(state -> Ir.Op.op -> unit) ->
  Ir.Func.func ->
  state
(** Run the analysis to fixpoint (see {!Dataflow.Make.analyze_func} for
    [seed]/[visit]). *)

val get : state -> Ir.Value.t -> v
val float_itv : state -> Ir.Value.t -> Itv.F.t
(** Float facts for a value (top when it is not float-classed). *)

val int_itv : state -> Ir.Value.t -> Itv.I.t
val mem_origin : state -> Ir.Value.t -> origin

val join : v -> v -> v
val equal_v : v -> v -> bool
val pp_v : v Fmt.t
