(** Interval lattices for the dataflow framework.

    Two numeric domains:

    - {!F}: floating-point intervals [\[lo, hi\]] (endpoints may be
      infinite) with an explicit "may be NaN" flag, mirroring the f64
      semantics of the engines;
    - {!I}: integer intervals with a congruence component
      [x ≡ r (mod m)], the classic strided-interval domain.  The
      congruence is what lets the analysis reason about AoSoA address
      math exactly: a loop induction variable running over
      [\[start, stop)] in steps of the vector width [w] is
      [{lo; hi; m = w; r = 0}], so [iv mod w] folds to a constant and
      [iv / w] stays exact.

    Both domains have an explicit bottom ("no value reaches here"), which
    arises for unreachable code (empty loop ranges, impossible branches). *)

(* -- saturating machine-int helpers ---------------------------------- *)

let sat_add (a : int) (b : int) : int =
  if a > 0 && b > 0 && a + b < 0 then max_int
  else if a < 0 && b < 0 && a + b >= 0 then min_int
  else a + b

let sat_neg (a : int) : int = if a = min_int then max_int else -a
let sat_sub a b = sat_add a (sat_neg b)

let sat_mul (a : int) (b : int) : int =
  if a = 0 || b = 0 then 0
  else if a = min_int || b = min_int then
    if a < 0 <> (b < 0) then min_int else max_int
  else
    let sign = if a < 0 <> (b < 0) then -1 else 1 in
    if abs a > max_int / abs b then if sign < 0 then min_int else max_int
    else a * b

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(** Euclidean remainder: always in [\[0, m)] for [m > 0]. *)
let emod (a : int) (m : int) : int =
  let r = a mod m in
  if r < 0 then r + m else r

(* ------------------------------------------------------------------ *)
(* Integer intervals with congruence                                   *)
(* ------------------------------------------------------------------ *)

module I = struct
  (* Invariants: [lo <= hi] unless bottom; [m >= 1]; [0 <= r < m];
     [min_int]/[max_int] endpoints act as -oo/+oo sentinels.  Congruence
     moduli are kept small (see [max_modulus]) so residue arithmetic can
     never overflow. *)
  type t = { lo : int; hi : int; m : int; r : int }

  let bot = { lo = 1; hi = 0; m = 1; r = 0 }
  let top = { lo = min_int; hi = max_int; m = 1; r = 0 }
  let is_bot (t : t) = t.lo > t.hi

  (* beyond this we drop congruence info rather than risk overflow in
     residue arithmetic; real moduli here are vector widths and row sizes *)
  let max_modulus = 1 lsl 30

  (* A bound close to the sentinels must not be shifted by congruence
     alignment (overflow); treat it as unaligned. *)
  let near_inf x = x <= min_int / 2 || x >= max_int / 2

  let mk lo hi m r : t =
    if lo > hi then bot
    else if m <= 1 || m >= max_modulus then { lo; hi; m = 1; r = 0 }
    else
      let r = emod r m in
      let lo = if near_inf lo then lo else lo + emod (r - lo) m in
      let hi = if near_inf hi then hi else hi - emod (hi - r) m in
      if lo > hi then bot
      else if lo = hi then { lo; hi; m = 1; r = 0 }
      else { lo; hi; m; r }

  let const n = { lo = n; hi = n; m = 1; r = 0 }
  let range lo hi = mk lo hi 1 0
  let is_const (t : t) = (not (is_bot t)) && t.lo = t.hi

  (* Congruence as (modulus, residue); modulus 0 encodes "exactly residue"
     (a singleton), which composes through gcd: gcd 0 x = x. *)
  let cong (t : t) : int * int = if t.lo = t.hi then (0, t.lo) else (t.m, t.r)

  let equal (a : t) (b : t) =
    (is_bot a && is_bot b)
    || (a.lo = b.lo && a.hi = b.hi && a.m = b.m && a.r = b.r)

  let mem (x : int) (t : t) : bool =
    (not (is_bot t)) && x >= t.lo && x <= t.hi && (t.m <= 1 || emod x t.m = t.r)

  let pp ppf (t : t) =
    if is_bot t then Fmt.string ppf "_|_"
    else begin
      let bound ppf x =
        if x = min_int then Fmt.string ppf "-oo"
        else if x = max_int then Fmt.string ppf "+oo"
        else Fmt.int ppf x
      in
      Fmt.pf ppf "[%a, %a]" bound t.lo bound t.hi;
      if t.m > 1 then Fmt.pf ppf "≡%d(mod %d)" t.r t.m
    end

  let join (a : t) (b : t) : t =
    if is_bot a then b
    else if is_bot b then a
    else
      let m1, r1 = cong a and m2, r2 = cong b in
      let g = gcd (gcd m1 m2) (sat_sub r1 r2) in
      if g = 0 then (* both exact and equal *) const r1
      else mk (min a.lo b.lo) (max a.hi b.hi) g (emod r1 (max g 1))

  (** [subset a b]: every concrete value of [a] is a value of [b]. *)
  let subset (a : t) (b : t) : bool =
    is_bot a
    || (not (is_bot b))
       && b.lo <= a.lo && a.hi <= b.hi
       &&
       if b.m <= 1 then true
       else
         let ma, ra = cong a in
         if ma = 0 then emod ra b.m = b.r
         else ma mod b.m = 0 && emod ra b.m = b.r

  (** May the concrete sets of [a] and [b] intersect?  False when ranges
      are disjoint or congruence classes are incompatible. *)
  let overlap (a : t) (b : t) : bool =
    (not (is_bot a)) && (not (is_bot b))
    && a.lo <= b.hi && b.lo <= a.hi
    &&
    let m1, r1 = cong a and m2, r2 = cong b in
    let g = gcd m1 m2 in
    g = 0 (* both exact: ranges overlap => same value *) || emod (r1 - r2) (max g 1) = 0

  let add (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else
      let m1, r1 = cong a and m2, r2 = cong b in
      let g = gcd m1 m2 in
      let lo = sat_add a.lo b.lo and hi = sat_add a.hi b.hi in
      if g = 0 then const (sat_add r1 r2)
      else mk lo hi g (emod (sat_add r1 r2) (max g 1))

  let neg (a : t) : t =
    if is_bot a then bot
    else
      let m, r = cong a in
      if m = 0 then const (sat_neg r) else mk (sat_neg a.hi) (sat_neg a.lo) m (-r)

  let sub a b = add a (neg b)

  let mul (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else
      let c1 = sat_mul a.lo b.lo
      and c2 = sat_mul a.lo b.hi
      and c3 = sat_mul a.hi b.lo
      and c4 = sat_mul a.hi b.hi in
      let lo = min (min c1 c2) (min c3 c4)
      and hi = max (max c1 c2) (max c3 c4) in
      let m1, r1 = cong a and m2, r2 = cong b in
      if m1 = 0 && m2 = 0 then const (sat_mul r1 r2)
      else if m1 = 0 then
        (* exact scale: c*y with y ≡ r2 (mod m2)  =>  ≡ c*r2 (mod |c|*m2) *)
        let c = r1 in
        if c = 0 then const 0
        else
          let m' = sat_mul (abs c) m2 in
          if m' >= max_modulus then mk lo hi 1 0
          else mk lo hi (max m' 1) (sat_mul c r2)
      else if m2 = 0 then
        let c = r2 in
        if c = 0 then const 0
        else
          let m' = sat_mul (abs c) m1 in
          if m' >= max_modulus then mk lo hi 1 0
          else mk lo hi (max m' 1) (sat_mul c r1)
      else
        let g = gcd m1 m2 in
        if g <= 1 then mk lo hi 1 0 else mk lo hi g (emod r1 g * emod r2 g)

  (* Truncated (toward-zero) division, matching OCaml's [/] and the
     engines' i64 semantics. *)
  let div (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else if is_const b then
      let c = b.lo in
      if c = 0 then bot (* division by zero raises; no value flows *)
      else
        let q1 = a.lo / c and q2 = a.hi / c in
        let lo = min q1 q2 and hi = max q1 q2 in
        let ma, ra = cong a in
        if ma = 0 then const (ra / c)
        else if c > 0 && ma mod c = 0 && ra mod c = 0 then
          (* c divides every concrete value, so truncation is exact *)
          mk lo hi (ma / c) (ra / c)
        else mk lo hi 1 0
    else if b.lo > 0 || b.hi < 0 then
      let corners =
        [ a.lo / b.lo; a.lo / b.hi; a.hi / b.lo; a.hi / b.hi ]
      in
      mk (List.fold_left min max_int corners)
        (List.fold_left max min_int corners)
        1 0
    else
      (* divisor range contains 0: quotient magnitude is still bounded by
         the dividend's (|y| >= 1 when defined) *)
      let amax = max (abs a.lo) (abs a.hi) in
      mk (sat_neg amax) amax 1 0

  (* Remainder with dividend sign, matching OCaml's [mod]. *)
  let rem (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else
      let bound ac =
        (* |x mod c| <= ac-1, sign follows x *)
        let lo = if a.lo >= 0 then 0 else max (sat_neg (ac - 1)) a.lo in
        let hi = if a.hi <= 0 then 0 else min (ac - 1) a.hi in
        (lo, hi)
      in
      if is_const b && b.lo <> 0 then
        let ac = abs b.lo in
        let ma, ra = cong a in
        if ma = 0 then const (ra mod b.lo)
        else if ma mod ac = 0 then
          if a.lo >= 0 then const (emod ra ac)
          else if a.hi <= 0 then const (-emod (-ra) ac)
          else
            (* x mod c ≡ x (mod |c|), and |c| divides a's modulus *)
            let lo, hi = bound ac in
            mk lo hi ac (emod ra ac)
        else
          let lo, hi = bound ac in
          mk lo hi 1 0
      else
        let bmax = max (abs b.lo) (abs b.hi) in
        if bmax = 0 then bot
        else
          let lo, hi = bound bmax in
          mk lo hi 1 0

  let min_ (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else mk (min a.lo b.lo) (min a.hi b.hi) 1 0

  let max_ (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else mk (max a.lo b.lo) (max a.hi b.hi) 1 0
end

(* ------------------------------------------------------------------ *)
(* Float intervals with NaN flag                                       *)
(* ------------------------------------------------------------------ *)

module F = struct
  (* [lo > hi] encodes an empty range; a non-empty [nan] flag means the
     value may be NaN.  Bottom is empty range + no NaN: no value at all. *)
  type t = { lo : float; hi : float; nan : bool }

  let bot = { lo = infinity; hi = neg_infinity; nan = false }
  let top = { lo = neg_infinity; hi = infinity; nan = true }
  let finite_top = { lo = neg_infinity; hi = infinity; nan = false }
  let range_empty (t : t) = not (t.lo <= t.hi)
  let is_bot (t : t) = range_empty t && not t.nan

  let const (f : float) =
    if Float.is_nan f then { bot with nan = true } else { lo = f; hi = f; nan = false }

  let make ?(nan = false) lo hi = { lo; hi; nan }

  let equal (a : t) (b : t) =
    Bool.equal a.nan b.nan
    && ((range_empty a && range_empty b)
       || (a.lo = b.lo && a.hi = b.hi))

  let mem (x : float) (t : t) : bool =
    if Float.is_nan x then t.nan else t.lo <= x && x <= t.hi

  let pp ppf (t : t) =
    if is_bot t then Fmt.string ppf "_|_"
    else
      Fmt.pf ppf "[%g, %g]%s" t.lo t.hi (if t.nan then "?nan" else "")

  let join (a : t) (b : t) : t =
    let nan = a.nan || b.nan in
    if range_empty a then { b with nan }
    else if range_empty b then { a with nan }
    else { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi; nan }

  let contains_pinf (t : t) = (not (range_empty t)) && t.hi = infinity
  let contains_ninf (t : t) = (not (range_empty t)) && t.lo = neg_infinity
  let contains_inf t = contains_pinf t || contains_ninf t
  let contains_zero (t : t) = (not (range_empty t)) && t.lo <= 0.0 && t.hi >= 0.0
  let is_finite (t : t) =
    (not t.nan) && (not (range_empty t))
    && Float.is_finite t.lo && Float.is_finite t.hi

  (* Endpoint arithmetic can produce NaN (inf - inf); widen such endpoints
     to the corresponding infinity. *)
  let elo x = if Float.is_nan x then neg_infinity else x
  let ehi x = if Float.is_nan x then infinity else x

  let add (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else
      let nan =
        a.nan || b.nan
        || (contains_pinf a && contains_ninf b)
        || (contains_ninf a && contains_pinf b)
      in
      if range_empty a || range_empty b then { bot with nan }
      else { lo = elo (a.lo +. b.lo); hi = ehi (a.hi +. b.hi); nan }

  let neg (a : t) : t =
    if range_empty a then a else { lo = -.a.hi; hi = -.a.lo; nan = a.nan }

  let sub a b = add a (neg b)

  let mul (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else
      let nan =
        a.nan || b.nan
        || (contains_zero a && contains_inf b)
        || (contains_zero b && contains_inf a)
      in
      if range_empty a || range_empty b then { bot with nan }
      else
        let cs =
          List.filter
            (fun x -> not (Float.is_nan x))
            [ a.lo *. b.lo; a.lo *. b.hi; a.hi *. b.lo; a.hi *. b.hi ]
        in
        (match cs with
        | [] -> { lo = neg_infinity; hi = infinity; nan }
        | c :: rest ->
            {
              lo = List.fold_left Float.min c rest;
              hi = List.fold_left Float.max c rest;
              nan;
            })

  let div (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else
      let nan =
        a.nan || b.nan
        || (contains_zero a && contains_zero b)
        || (contains_inf a && contains_inf b)
      in
      if range_empty a || range_empty b then { bot with nan }
      else if contains_zero b then
        (* x / (+-eps) diverges; sign analysis not worth it here *)
        { lo = neg_infinity; hi = infinity; nan }
      else
        let cs =
          List.filter
            (fun x -> not (Float.is_nan x))
            [ a.lo /. b.lo; a.lo /. b.hi; a.hi /. b.lo; a.hi /. b.hi ]
        in
        (match cs with
        | [] -> { lo = neg_infinity; hi = infinity; nan }
        | c :: rest ->
            {
              lo = List.fold_left Float.min c rest;
              hi = List.fold_left Float.max c rest;
              nan;
            })

  (* Float.min/max propagate NaN (the engines use them directly). *)
  let min_ (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else if range_empty a || range_empty b then { bot with nan = a.nan || b.nan }
    else
      { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi; nan = a.nan || b.nan }

  let max_ (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else if range_empty a || range_empty b then { bot with nan = a.nan || b.nan }
    else
      { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi; nan = a.nan || b.nan }

  let rem (a : t) (b : t) : t =
    if is_bot a || is_bot b then bot
    else
      let nan = a.nan || b.nan || contains_inf a || contains_zero b in
      if range_empty a || range_empty b then { bot with nan }
      else
        let amax = Float.max (Float.abs a.lo) (Float.abs a.hi) in
        let bmax = Float.max (Float.abs b.lo) (Float.abs b.hi) in
        let m = Float.min amax bmax in
        { lo = -.m; hi = m; nan }

  (** Abstract a monotone nondecreasing total function. *)
  let mono (f : float -> float) (a : t) : t =
    if range_empty a then a else { lo = elo (f a.lo); hi = ehi (f a.hi); nan = a.nan }
end
