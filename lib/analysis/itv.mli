(** Interval lattices shared by every dataflow client.

    Two numeric domains:
    - {!I}: strided ("congruence") integer intervals [{lo..hi} ∩ (m·ℤ +
      r)] with saturating endpoint arithmetic — precise enough to push
      AoSoA address polynomials through exactly;
    - {!F}: float intervals with an explicit may-be-NaN flag, closed
      under IEEE arithmetic including infinities. *)

val sat_add : int -> int -> int
(** Saturating add: overflow clamps to [min_int]/[max_int]. *)

val sat_neg : int -> int
val sat_sub : int -> int -> int
val sat_mul : int -> int -> int

val gcd : int -> int -> int
(** [gcd a b >= 0]; [gcd a 0 = abs a]. *)

val emod : int -> int -> int
(** Euclidean remainder: [emod a m] is in [\[0, abs m)] for [m <> 0]. *)

(** Strided integer intervals. *)
module I : sig
  type t = { lo : int; hi : int; m : int; r : int }
  (** The set [{x | lo <= x <= hi, x ≡ r (mod m)}].  Normalized: [bot]
      iff [lo > hi]; constants have [m = 1, r = 0]; endpoints are tight
      on the congruence class. *)

  val bot : t
  val top : t
  val is_bot : t -> bool

  val mk : int -> int -> int -> int -> t
  (** [mk lo hi m r]: normalize a candidate interval (tighten endpoints
      onto the congruence class, collapse empty ranges to {!bot}).
      Strides beyond an internal cap degrade to stride 1. *)

  val const : int -> t
  val range : int -> int -> t
  val is_const : t -> bool

  val cong : t -> int * int
  (** [(m, r)] view; constants answer [(0, value)]. *)

  val equal : t -> t -> bool
  val mem : int -> t -> bool
  val pp : t Fmt.t

  val join : t -> t -> t
  val subset : t -> t -> bool
  val overlap : t -> t -> bool
  (** Can the two sets share an element?  (Sound: never a false
      negative.) *)

  val add : t -> t -> t
  val neg : t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  (** OCaml [/] semantics (truncation toward zero); division by a range
      containing 0 degrades rather than errors. *)

  val rem : t -> t -> t
  val min_ : t -> t -> t
  val max_ : t -> t -> t
end

(** Float intervals with NaN tracking. *)
module F : sig
  type t = { lo : float; hi : float; nan : bool }
  (** The set [\[lo, hi\] ∪ (nan ? {NaN} : ∅)].  [lo > hi] encodes the
      empty range (possibly still NaN-only). *)

  val bot : t
  val top : t
  val finite_top : t

  val range_empty : t -> bool
  (** No ordered values — the set is at most [{NaN}]. *)

  val is_bot : t -> bool
  val const : float -> t
  (** [const nan] is the NaN-only interval. *)

  val make : ?nan:bool -> float -> float -> t
  val equal : t -> t -> bool
  val mem : float -> t -> bool
  val pp : t Fmt.t
  val join : t -> t -> t
  val contains_pinf : t -> bool
  val contains_ninf : t -> bool
  val contains_inf : t -> bool
  val contains_zero : t -> bool
  val is_finite : t -> bool

  val add : t -> t -> t
  (** IEEE semantics: [inf - inf] etc. set the NaN flag. *)

  val neg : t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val min_ : t -> t -> t
  val max_ : t -> t -> t
  val rem : t -> t -> t

  val mono : (float -> float) -> t -> t
  (** Envelope of a monotone (non-decreasing) total function. *)
end
