(** EasyML model lint — the analysis behind [limpetmlir check].

    Combines the semantic analyzer's own diagnostics (missing inits,
    silently-degraded integration methods, dead [.param()]s) with
    model-level checks that need range reasoning:

    - {b unused-state}: a state variable that no output and no live
      state's derivative (transitively through the intermediate
      definitions) ever reads — it costs storage and bandwidth every
      step for nothing;
    - {b lookup-range}: a [.lookup(lo, hi, step)] whose variable starts
      {e outside} the table domain (error — the very first interpolation
      clamps and the table answers a question nobody asked), or whose
      one-step reachable interval (an AST-level interval evaluation
      seeded with the initial state and [dt ∈ \[0, 0.05\]]) may escape
      the domain (warning);
    - {b markov-init}: [.method(markov_be)] states are occupancies; an
      initial value outside [\[0, 1\]] breaks the integrator's
      contraction assumption.

    The AST interval evaluator reuses {!Interval.math_itv}, so model-
    and IR-level range conclusions agree by construction. *)

module A = Easyml.Ast
module M = Easyml.Model
module Diag = Easyml.Diag
module F = Itv.F

(* ------------------------------------------------------------------ *)
(* AST interval evaluation                                             *)
(* ------------------------------------------------------------------ *)

(* EasyML booleans are numeric 0/1. *)
let itv_of_bool (b : Interval.v) : F.t =
  match b with
  | Interval.AB { cant = true; canf = true } -> F.make 0.0 1.0
  | Interval.AB { cant = true; canf = false } -> F.const 1.0
  | Interval.AB { cant = false; canf = true } -> F.const 0.0
  | _ -> F.bot

let cmp_of_binop : A.binop -> Ir.Op.cmp option = function
  | A.Lt -> Some Ir.Op.Lt
  | A.Le -> Some Ir.Op.Le
  | A.Gt -> Some Ir.Op.Gt
  | A.Ge -> Some Ir.Op.Ge
  | A.Eq -> Some Ir.Op.Eq
  | A.Ne -> Some Ir.Op.Ne
  | _ -> None

let truthiness (c : F.t) : bool * bool =
  (* (can be nonzero, can be zero); NaN is truthy *)
  if F.is_bot c then (false, false)
  else
    let can_nonzero =
      c.F.nan || (not (F.range_empty c)) && not (c.F.lo = 0.0 && c.F.hi = 0.0)
    in
    (can_nonzero, F.contains_zero c)

(** Interval of an EasyML expression under [env] (unknown names must map
    to {!Itv.F.top}). *)
let rec eval_itv (env : string -> F.t) (e : A.expr) : F.t =
  match e with
  | A.Num f -> F.const f
  | A.Var x -> env x
  | A.Unary (A.Neg, a) -> F.neg (eval_itv env a)
  | A.Unary (A.Not, a) ->
      let t, f = truthiness (eval_itv env a) in
      itv_of_bool (Interval.AB { cant = f; canf = t })
  | A.Binary (op, a, b) -> (
      let va = eval_itv env a and vb = eval_itv env b in
      match op with
      | A.Add -> F.add va vb
      | A.Sub -> F.sub va vb
      | A.Mul -> F.mul va vb
      | A.Div -> F.div va vb
      | A.And ->
          let t1, f1 = truthiness va and t2, f2 = truthiness vb in
          itv_of_bool (Interval.AB { cant = t1 && t2; canf = f1 || f2 })
      | A.Or ->
          let t1, f1 = truthiness va and t2, f2 = truthiness vb in
          itv_of_bool (Interval.AB { cant = t1 || t2; canf = f1 && f2 })
      | _ ->
          let c = Option.get (cmp_of_binop op) in
          itv_of_bool (Interval.cmpf c va vb))
  | A.Call (f, args) -> Interval.math_itv f (List.map (eval_itv env) args)
  | A.Ternary (c, a, b) ->
      let t, f = truthiness (eval_itv env c) in
      let va = if t then eval_itv env a else F.bot
      and vb = if f then eval_itv env b else F.bot in
      F.join va vb

(* ------------------------------------------------------------------ *)
(* unused-state reachability                                           *)
(* ------------------------------------------------------------------ *)

module SSet = Set.Make (String)

(* Transitive free variables of [e], expanding intermediate definitions. *)
let rec deep_deps (assigns : (string * A.expr) list) (seen : SSet.t ref)
    (e : A.expr) : unit =
  List.iter
    (fun v ->
      if not (SSet.mem v !seen) then begin
        seen := SSet.add v !seen;
        match List.assoc_opt v assigns with
        | Some def -> deep_deps assigns seen def
        | None -> ()
      end)
    (A.free_vars e)

(** States never read — transitively — by any output or by any live
    state's derivative.  Empty when the model has no outputs (then
    everything would be trivially "unused" and the check says nothing
    useful). *)
let unused_states (m : M.t) : string list =
  let outputs =
    List.filter_map
      (fun (e : M.ext_var) ->
        if e.M.ext_assigned then List.assoc_opt e.M.ext_name m.M.assigns
        else None)
      m.M.externals
  in
  if outputs = [] then []
  else begin
    let live = ref SSet.empty in
    List.iter (deep_deps m.M.assigns live) outputs;
    (* a state referenced by a live state's dynamics is itself live *)
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (s : M.state_var) ->
          if SSet.mem s.M.sv_name !live then begin
            let before = SSet.cardinal !live in
            deep_deps m.M.assigns live s.M.sv_diff;
            if SSet.cardinal !live <> before then changed := true
          end)
        m.M.states
    done;
    List.filter_map
      (fun (s : M.state_var) ->
        if SSet.mem s.M.sv_name !live then None else Some s.M.sv_name)
      m.M.states
  end

(* ------------------------------------------------------------------ *)
(* lookup ranges                                                       *)
(* ------------------------------------------------------------------ *)

let base_env (m : M.t) : string -> F.t =
  let tbl = Hashtbl.create 32 in
  Hashtbl.replace tbl "dt" (F.make 0.0 0.05);
  Hashtbl.replace tbl "t" (F.make 0.0 infinity);
  List.iter
    (fun (s : M.state_var) -> Hashtbl.replace tbl s.M.sv_name (F.const s.M.sv_init))
    m.M.states;
  List.iter
    (fun (e : M.ext_var) ->
      Hashtbl.replace tbl e.M.ext_name (F.const e.M.ext_init))
    m.M.externals;
  fun x -> Option.value ~default:F.top (Hashtbl.find_opt tbl x)

(* One forward-Euler step from the initial point, with dt in [0, 0.05]:
   a cheap reachable-set under-layer good enough to catch tables whose
   domain the trajectory leaves immediately. *)
let one_step_itv (m : M.t) (s : M.state_var) : F.t =
  let env0 = base_env m in
  (* evaluate intermediates in topological order on top of the seeds *)
  let defs = Hashtbl.create 16 in
  List.iter
    (fun (x, e) ->
      let env y =
        match Hashtbl.find_opt defs y with Some v -> v | None -> env0 y
      in
      Hashtbl.replace defs x (eval_itv env e))
    m.M.assigns;
  let env y =
    match Hashtbl.find_opt defs y with Some v -> v | None -> env0 y
  in
  let d = eval_itv env s.M.sv_diff in
  F.add (F.const s.M.sv_init) (F.mul (F.make 0.0 0.05) d)

let lookup_diags (m : M.t) : Diag.t list =
  List.concat_map
    (fun (l : M.lut_spec) ->
      let loc = M.find_loc m ("lookup:" ^ l.M.lut_var) in
      let init =
        match M.find_state m l.M.lut_var with
        | Some s -> Some s.M.sv_init
        | None -> (
            match M.find_ext m l.M.lut_var with
            | Some e -> Some e.M.ext_init
            | None -> None)
      in
      let init_diag =
        match init with
        | Some v when v < l.M.lut_lo || v > l.M.lut_hi ->
            [
              Diag.makef ~sev:Diag.Error ~loc ~code:"lookup-range"
                "lookup table for %s covers [%g, %g] but %s starts at %g \
                 (outside the table domain)"
                l.M.lut_var l.M.lut_lo l.M.lut_hi l.M.lut_var v;
            ]
        | _ -> []
      in
      let escape_diag =
        (* only meaningful for states (externals are driven from outside)
           and only when the start point itself is fine *)
        match (init_diag, M.find_state m l.M.lut_var) with
        | [], Some s ->
            let r = one_step_itv m s in
            if
              F.is_finite r
              && (r.F.lo < l.M.lut_lo || r.F.hi > l.M.lut_hi)
            then
              [
                Diag.makef ~sev:Diag.Warning ~loc ~code:"lookup-range"
                  "%s may reach [%g, %g] after one step, escaping the lookup \
                   domain [%g, %g] (interpolation will clamp)"
                  l.M.lut_var r.F.lo r.F.hi l.M.lut_lo l.M.lut_hi;
              ]
            else []
        | _ -> []
      in
      init_diag @ escape_diag)
    m.M.luts

(* ------------------------------------------------------------------ *)

let markov_diags (m : M.t) : Diag.t list =
  List.filter_map
    (fun (s : M.state_var) ->
      if s.M.sv_method = M.MarkovBE && (s.M.sv_init < 0.0 || s.M.sv_init > 1.0)
      then
        Some
          (Diag.makef ~sev:Diag.Warning
             ~loc:(M.find_loc m s.M.sv_name)
             ~code:"markov-init"
             "markov_be state %s is an occupancy but starts at %g, outside \
              [0, 1]"
             s.M.sv_name s.M.sv_init)
      else None)
    m.M.states

(* ------------------------------------------------------------------ *)
(* run-constant discipline                                             *)
(* ------------------------------------------------------------------ *)

(* The runtime specializer ({!Codegen.Cache.specialize} over
   [Passes.Specialize]) folds the driver-bound run constants — [dt] and
   the declared [.param()]s — into kernels as literals.  A model that
   *writes* one of these inside the per-step body breaks that contract
   silently: parameter folding already replaced every read with the
   compile-time value, so a same-named integrated state diverges from
   what every read saw, and an assignment to [dt]/[t] shadows the value
   the kernel was specialized on.  Both are rejected here. *)
let run_constant_diags (m : M.t) : Diag.t list =
  let param_states =
    List.filter_map
      (fun (p, v) ->
        match M.find_state m p with
        | Some _ ->
            Some
              (Diag.makef ~sev:Diag.Error
                 ~loc:(M.find_loc m p)
                 ~code:"run-constant-write"
                 "parameter %s is a run constant (folded to %g at compile \
                  time) but is also integrated as a state every step; reads \
                  and the specializer use the constant while the state \
                  silently diverges"
                 p v)
        | None -> None)
      m.M.params
  in
  let reserved =
    List.filter_map
      (fun (x, _) ->
        if String.equal x "dt" || String.equal x "t" then
          Some
            (Diag.makef ~sev:Diag.Error
               ~loc:(M.find_loc m x)
               ~code:"run-constant-write"
               "%s is a driver-bound run constant; assigning it inside the \
                step body shadows the value kernels are specialized on"
               x)
        else None)
      m.M.assigns
  in
  param_states @ reserved

let unused_diags (m : M.t) : Diag.t list =
  List.map
    (fun name ->
      Diag.makef ~sev:Diag.Warning
        ~loc:(M.find_loc m name)
        ~code:"unused-state"
        "state variable %s is integrated every step but nothing observable \
         depends on it"
        name)
    (unused_states m)

(** All diagnostics for a model: the analyzer's own plus the lint's. *)
let check (m : M.t) : Diag.t list =
  m.M.warnings @ unused_diags m @ lookup_diags m @ markov_diags m
  @ run_constant_diags m

let has_errors (ds : Diag.t list) : bool = List.exists Diag.is_error ds

let count_by_severity (ds : Diag.t list) : int * int * int =
  List.fold_left
    (fun (i, w, e) (d : Diag.t) ->
      match d.Diag.sev with
      | Diag.Info -> (i + 1, w, e)
      | Diag.Warning -> (i, w + 1, e)
      | Diag.Error -> (i, w, e + 1))
    (0, 0, 0) ds
