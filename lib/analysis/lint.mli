(** EasyML model lint — the analysis behind [limpetmlir check].

    Combines the semantic analyzer's own diagnostics (missing inits,
    silently-degraded integration methods, dead [.param()]s) with
    model-level checks that need range reasoning: {b unused-state}
    (integrated but observably dead state variables), {b lookup-range}
    (table domains the variable starts outside of, or may escape within
    one step) and {b markov-init} (occupancies initialized outside
    [\[0, 1\]]).  The AST interval evaluator reuses
    {!Interval.math_itv}, so model- and IR-level range conclusions agree
    by construction. *)

val eval_itv : (string -> Itv.F.t) -> Easyml.Ast.expr -> Itv.F.t
(** Interval evaluation of an EasyML expression under an environment
    mapping names to float intervals (booleans are numeric 0/1). *)

val check : Easyml.Model.t -> Easyml.Diag.t list
(** All diagnostics for a model, analyzer warnings included. *)

val has_errors : Easyml.Diag.t list -> bool

val count_by_severity : Easyml.Diag.t list -> int * int * int
(** [(infos, warnings, errors)]. *)
