(** Definite-initialization (use-before-def) analysis for local buffers.

    A {e must}-analysis over [memref.alloc]'d buffers: a read is clean
    only when every element it may touch has definitely been written on
    every path reaching it.  Parameter memrefs are the caller's problem
    (the driver hands kernels fully-initialized buffers; the race
    checker and bounds prover cover those), so only allocs are tracked.

    The must-state per alloc is a set of disjoint, coalesced index
    ranges.  Stores extend it when their coverage is {e exact}:

    - constant index (scalar or vector store) — covers [off .. off+w-1];
    - a store at [iv + c] inside a [for] with constant bounds and
      [step <= width] — after the loop, covers the whole contiguous
      sweep (strided sweeps with gaps are not must-covered);
    - same-iteration reuse: a load at the syntactically identical
      [iv + c] as an earlier store in the same loop body is clean even
      though the sweep is not complete yet.

    [scf.if] intersects the branch states; loop bodies are checked with
    the entry state (conservative: loop-carried initialization from a
    previous iteration is not assumed). *)

open Ir
module I = Itv.I

type issue = { mi_op : Op.op; mi_alloc : int; mi_msg : string }

let pp_issue ppf (i : issue) =
  Fmt.pf ppf "%s: %s" (Op.kind_name i.mi_op.Op.kind) i.mi_msg

(* -- coalesced range sets ------------------------------------------- *)

type ranges = (int * int) list (* sorted, disjoint, non-adjacent *)

let add_range (lo, hi) (rs : ranges) : ranges =
  let rec go lo hi = function
    | [] -> [ (lo, hi) ]
    | (l, h) :: rest when h + 1 < lo -> (l, h) :: go lo hi rest
    | (l, h) :: rest when hi + 1 < l -> (lo, hi) :: (l, h) :: rest
    | (l, h) :: rest -> go (min lo l) (max hi h) rest
  in
  go lo hi rs

let covers (lo, hi) (rs : ranges) : bool =
  List.exists (fun (l, h) -> l <= lo && hi <= h) rs

let inter_ranges (a : ranges) (b : ranges) : ranges =
  List.concat_map
    (fun (l1, h1) ->
      List.filter_map
        (fun (l2, h2) ->
          let l = max l1 l2 and h = min h1 h2 in
          if l <= h then Some (l, h) else None)
        b)
    a

(* -- per-alloc environment ------------------------------------------ *)

module IMap = Map.Make (Int)

type env = ranges IMap.t (* alloc op id -> must-initialized ranges *)

let inter_env (a : env) (b : env) : env =
  IMap.merge
    (fun _ x y ->
      match (x, y) with
      | Some rx, Some ry -> Some (inter_ranges rx ry)
      | _ -> (* alloc missing on one side: scoped out, drop *) None)
    a b

(* ------------------------------------------------------------------ *)

type ctx = {
  st : Interval.state;
  defs : Value.t -> Op.op option;
  mutable issues : issue list;
}

let alloc_of (ctx : ctx) (mem : Value.t) : int option =
  match Interval.mem_origin ctx.st mem with
  | Interval.Oalloc id -> Some id
  | _ -> None

(* Exact coverage of a single store execution: Some (lo, hi) iff the
   index chases to a constant. *)
let const_span (ctx : ctx) (idx : Value.t) (w : int) : (int * int) option =
  match Footprint.chase_idx ctx.defs idx 0 8 with
  | None, off -> Some (off, off + w - 1)
  | Some _, _ -> None

(* (root id, offset, width) for same-iteration symbolic matching *)
let sym_key (ctx : ctx) (idx : Value.t) (w : int) : (int * int * int) option =
  match Footprint.chase_idx ctx.defs idx 0 8 with
  | Some r, off -> Some (r.Value.id, off, w)
  | None, _ -> None

let access_width (o : Op.op) : int =
  match o.Op.kind with
  | Op.VecLoad -> Ty.width o.Op.results.(0).Value.ty
  | Op.VecStore -> Ty.width o.Op.operands.(0).Value.ty
  | _ -> 1

(* store / load shapes: (mem operand, idx operand) positions *)
let store_shape (o : Op.op) : (Value.t * Value.t) option =
  match o.Op.kind with
  | Op.MemStore | Op.VecStore -> Some (o.Op.operands.(1), o.Op.operands.(2))
  | _ -> None

let load_shape (o : Op.op) : (Value.t * Value.t) option =
  match o.Op.kind with
  | Op.MemLoad | Op.VecLoad -> Some (o.Op.operands.(0), o.Op.operands.(1))
  | _ -> None

let report (ctx : ctx) (o : Op.op) (alloc : int) (itv : I.t) : unit =
  ctx.issues <-
    {
      mi_op = o;
      mi_alloc = alloc;
      mi_msg =
        Fmt.str "read of alloc#%d indices %a may precede initialization" alloc
          I.pp itv;
    }
    :: ctx.issues

(* Walk a region.  [syms] is the set of symbolic (root, off, width)
   spans stored earlier in the same iteration of the enclosing loop
   body. *)
let rec walk (ctx : ctx) (env : env) (syms : (int * int * int) list)
    (ops : Op.op list) : env =
  match ops with
  | [] -> env
  | o :: rest ->
      let env, syms =
        match o.Op.kind with
        | Op.Alloc -> (IMap.add o.Op.o_id [] env, syms)
        | Op.MemStore | Op.VecStore -> (
            let mem, idx = Option.get (store_shape o) in
            match alloc_of ctx mem with
            | None -> (env, syms)
            | Some id ->
                let w = access_width o in
                let env =
                  match const_span ctx idx w with
                  | Some span ->
                      IMap.update id
                        (Option.map (add_range span))
                        env
                  | None -> env
                in
                let syms =
                  match sym_key ctx idx w with
                  | Some k -> k :: syms
                  | None -> syms
                in
                (env, syms))
        | Op.MemLoad | Op.VecLoad -> (
            let mem, idx = Option.get (load_shape o) in
            match alloc_of ctx mem with
            | None -> (env, syms)
            | Some id ->
                let w = access_width o in
                let itv =
                  Footprint.widen_by (Interval.int_itv ctx.st idx) w
                in
                let init =
                  Option.value ~default:[] (IMap.find_opt id env)
                in
                let clean =
                  I.is_bot itv
                  || ((not (I.equal itv I.top))
                     && itv.I.lo <> min_int && itv.I.hi <> max_int
                     && covers (itv.I.lo, itv.I.hi) init)
                  ||
                  match sym_key ctx idx w with
                  | Some (r, off, _) ->
                      List.exists
                        (fun (r', off', w') ->
                          r' = r && off' <= off && off + w - 1 <= off' + w' - 1)
                        syms
                  | None -> false
                in
                if not clean then report ctx o id itv;
                (env, syms))
        | Op.Gather | Op.Scatter | Op.Call _ ->
            (* conservative: gathers/scatters/calls on allocs neither
               prove nor break initialization here; footprint-level
               checks cover them *)
            (env, syms)
        | Op.If ->
            let e_then = walk ctx env syms (o.Op.regions.(0).Op.r_ops) in
            let e_else = walk ctx env syms (o.Op.regions.(1).Op.r_ops) in
            (inter_env e_then e_else, syms)
        | Op.For _ -> (walk_for ctx env o, syms)
        | _ -> (env, syms)
      in
      walk ctx env syms rest

and walk_for (ctx : ctx) (env : env) (o : Op.op) : env =
  let body = o.Op.regions.(0) in
  let iv = List.hd body.Op.r_args in
  (* check body uses against the entry state; same-iteration symbolic
     stores start fresh *)
  let _ : env = walk ctx env [] body.Op.r_ops in
  (* post-loop must-coverage from stores at [iv + c] when the sweep is
     contiguous and the trip count is known *)
  let lb = Interval.int_itv ctx.st o.Op.operands.(0)
  and ub = Interval.int_itv ctx.st o.Op.operands.(1)
  and step = Interval.int_itv ctx.st o.Op.operands.(2) in
  if I.is_const lb && I.is_const ub && I.is_const step && step.I.lo > 0
     && ub.I.lo > lb.I.lo
  then begin
    let lb = lb.I.lo and ub = ub.I.lo and step = step.I.lo in
    let last = lb + ((ub - 1 - lb) / step * step) in
    let env = ref env in
    Op.iter_region
      (fun o' ->
        match store_shape o' with
        | Some (mem, idx) -> (
            match alloc_of ctx mem with
            | None -> ()
            | Some id ->
                let w = access_width o' in
                (* every iterate's span [iv+c .. iv+c+w-1] chains into a
                   contiguous sweep only when steps don't leave gaps *)
                if step <= w then begin
                  match Footprint.chase_idx ctx.defs idx 0 8 with
                  | Some r, off when r.Value.id = iv.Value.id ->
                      env :=
                        IMap.update id
                          (Option.map
                             (add_range (lb + off, last + off + w - 1)))
                          !env
                  | _ -> ()
                end)
        | None -> ())
      body;
    !env
  end
  else env

(** Check a function; returns possibly-uninitialized reads of local
    allocs, in program order. *)
let check_func (f : Func.func) : issue list =
  let st = Interval.analyze_func f in
  let defs_tbl : (int, Op.op) Hashtbl.t = Hashtbl.create 64 in
  Op.iter_region
    (fun o ->
      Array.iter (fun (r : Value.t) -> Hashtbl.replace defs_tbl r.Value.id o) o.Op.results)
    f.Func.f_body;
  let ctx =
    {
      st;
      defs = (fun v -> Hashtbl.find_opt defs_tbl v.Value.id);
      issues = [];
    }
  in
  let _ : env = walk ctx IMap.empty [] f.Func.f_body.Op.r_ops in
  List.rev ctx.issues
