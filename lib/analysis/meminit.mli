(** Definite-initialization (use-before-def) analysis for local buffers.

    A {e must}-analysis over [memref.alloc]'d buffers: a read is clean
    only when every element it may touch has definitely been written on
    every path reaching it.  Parameter memrefs are the caller's problem
    (the driver hands kernels fully-initialized buffers), so only allocs
    are tracked.  Stores extend the must-initialized set only when their
    coverage is exact (constant indices, or complete [for]-loop sweeps
    with step <= store width); [scf.if] intersects the branch states;
    loop bodies are checked against the entry state. *)

type issue = {
  mi_op : Ir.Op.op;  (** the offending read *)
  mi_alloc : int;  (** op id of the alloc it reads *)
  mi_msg : string;
}

val pp_issue : issue Fmt.t

val check_func : Ir.Func.func -> issue list
(** Reads of alloc'd buffers not provably preceded by covering writes,
    in program order. *)
