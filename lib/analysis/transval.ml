(** Translation validation: per-pass symbolic equivalence checking.

    The validator answers one question: did this pass application
    preserve semantics?  It does so by symbolic evaluation — both the
    input and the output function are folded into normalized, maximally
    shared term DAGs ({!Ir.Hashcons}), and equivalence is tag equality
    on three families of obligations:

    - one term per function result ("live-out value");
    - one store-chain term per memref root the function writes
      ("memory-effect footprint");
    - one event term per observable side effect in program order
      (calls, and loops/branches containing them).

    Soundness rests on the smart constructors applying only identities
    that are bitwise-true on IEEE doubles (or are exactly the foldings
    {!Passes.Const_fold} performs, so validator and pass agree by
    construction).  Completeness — zero false refutations over the
    pipeline — rests on the constructors applying {e all} identities the
    passes are licensed to use, and on the passes' structural contract:
    no pass reorders, duplicates, introduces or removes impure ops
    (stores, calls, allocs, loops, branches), which keeps the serial
    numbers the evaluator assigns to loops/calls/allocs stable across a
    pass (they are assigned in program order).  CSE and DCE may remove
    {e loads}; loads carry no serial and disappear from the DAG with
    their uses, so that is invisible, as is removal of a loop or branch
    whose body is pure and whose results are dead (no event is emitted
    for effect-free control flow).

    Loop bodies are evaluated once, from the concrete heap at entry,
    with the induction variable and loop-carried values as fresh
    universally quantified variables.  This is sound because no
    normalization rule inspects heap internals: equality of the
    resulting loop summaries generalizes over the embedded entry heap
    subterms. *)

open Ir

type const = KF of float | KI of int | KB of bool

let fbits = Int64.bits_of_float

let const_equal (a : const) (b : const) : bool =
  match (a, b) with
  | KF x, KF y -> Int64.equal (fbits x) (fbits y)
  | KI x, KI y -> Int.equal x y
  | KB x, KB y -> Bool.equal x y
  | _ -> false

let const_hash = function
  | KF x -> 3 + (19 * Int64.to_int (fbits x))
  | KI x -> 5 + (19 * x)
  | KB x -> if x then 7 else 11

(* -- term DAG -------------------------------------------------------- *)

(* The node/term knot: nodes hold hash-consed children ([Term.t]), and
   [Term] is the hashcons functor applied to nodes.  Child comparison is
   physical equality, which for interned terms coincides with structural
   equality. *)
module rec Node : sig
  type t =
    | Cst of const
    | Param of int  (** function parameter, by position *)
    | Iv of int  (** induction variable of the loop with this serial *)
    | Iter of int * int  (** loop-carried value [slot] of loop [serial] *)
    | AllocA of int * Term.t  (** allocation [serial], size term; a root *)
    | Prim of Op.kind * Term.t array  (** uninterpreted pure op *)
    | IteV of Term.t * Term.t * Term.t  (** value select *)
    | Bcast of int * Term.t  (** splat to width [w] *)
    | IotaV of int  (** [0, 1, ..., w-1] *)
    | LoadS of Term.t * Term.t  (** scalar load: heap, index *)
    | LoadV of int * Term.t * Term.t  (** vector load: width, heap, index *)
    | LoadG of Term.t * Term.t  (** gather: heap, index vector *)
    | CallRes of int * int  (** result [slot] of call [serial] *)
    | LoopRes of Term.t * int  (** result [slot] of a {!Loop} term *)
    | HInit of Term.t  (** initial heap of a root *)
    | HStoreS of Term.t * Term.t * Term.t  (** heap, index, value *)
    | HStoreV of Term.t * Term.t * Term.t  (** heap, index, vector *)
    | HScatter of Term.t * Term.t * Term.t  (** heap, index vec, vector *)
    | HCallOut of int * int * Term.t
        (** heap of memref argument [argpos] after call [serial],
            havocked from the heap-before *)
    | HLoopOut of Term.t * Term.t  (** heap of [root] after a {!Loop} *)
    | HIte of Term.t * Term.t * Term.t  (** cond, then-heap, else-heap *)
    | Loop of {
        serial : int;
        bounds : Term.t array;  (** lb, ub, step *)
        inits : Term.t array;
        yields : Term.t array;  (** body yields under Iv/Iter variables *)
        heaps : (Term.t * Term.t) array;
            (** (root, heap-after-one-iteration), roots sorted by tag *)
        evs : Term.t array;  (** body events, in program order *)
      }
    | EvCall of int * string * Term.t array
        (** serial, callee, value arguments ++ heap-ins of memref args *)
    | EvLoop of Term.t  (** an effectful loop ran *)
    | EvIte of Term.t * Term.t array * Term.t array
        (** cond, then-events, else-events *)

  val equal : t -> t -> bool
  val hash : t -> int
end = struct
  type t =
    | Cst of const
    | Param of int
    | Iv of int
    | Iter of int * int
    | AllocA of int * Term.t
    | Prim of Op.kind * Term.t array
    | IteV of Term.t * Term.t * Term.t
    | Bcast of int * Term.t
    | IotaV of int
    | LoadS of Term.t * Term.t
    | LoadV of int * Term.t * Term.t
    | LoadG of Term.t * Term.t
    | CallRes of int * int
    | LoopRes of Term.t * int
    | HInit of Term.t
    | HStoreS of Term.t * Term.t * Term.t
    | HStoreV of Term.t * Term.t * Term.t
    | HScatter of Term.t * Term.t * Term.t
    | HCallOut of int * int * Term.t
    | HLoopOut of Term.t * Term.t
    | HIte of Term.t * Term.t * Term.t
    | Loop of {
        serial : int;
        bounds : Term.t array;
        inits : Term.t array;
        yields : Term.t array;
        heaps : (Term.t * Term.t) array;
        evs : Term.t array;
      }
    | EvCall of int * string * Term.t array
    | EvLoop of Term.t
    | EvIte of Term.t * Term.t array * Term.t array

  let taeq (a : Term.t array) (b : Term.t array) : bool =
    Array.length a = Array.length b
    &&
    try
      Array.iter2 (fun (x : Term.t) y -> if x != y then raise Exit) a b;
      true
    with Exit -> false

  let tpeq (a : (Term.t * Term.t) array) (b : (Term.t * Term.t) array) : bool
      =
    Array.length a = Array.length b
    &&
    try
      Array.iter2
        (fun ((r1, h1) : Term.t * Term.t) (r2, h2) ->
          if r1 != r2 || h1 != h2 then raise Exit)
        a b;
      true
    with Exit -> false

  let equal (a : t) (b : t) : bool =
    match (a, b) with
    | Cst x, Cst y -> const_equal x y
    | Param i, Param j | Iv i, Iv j | IotaV i, IotaV j -> i = j
    | Iter (s, k), Iter (s', k')
    | CallRes (s, k), CallRes (s', k') ->
        s = s' && k = k'
    | AllocA (s, n), AllocA (s', n') -> s = s' && n == n'
    | Prim (k, xs), Prim (k', ys) -> k = k' && taeq xs ys
    | IteV (c, x, y), IteV (c', x', y')
    | HIte (c, x, y), HIte (c', x', y') ->
        c == c' && x == x' && y == y'
    | Bcast (w, x), Bcast (w', x') -> w = w' && x == x'
    | LoadS (h, i), LoadS (h', i') | LoadG (h, i), LoadG (h', i') ->
        h == h' && i == i'
    | LoadV (w, h, i), LoadV (w', h', i') -> w = w' && h == h' && i == i'
    | LoopRes (l, k), LoopRes (l', k') -> l == l' && k = k'
    | HInit r, HInit r' -> r == r'
    | HStoreS (h, i, v), HStoreS (h', i', v')
    | HStoreV (h, i, v), HStoreV (h', i', v')
    | HScatter (h, i, v), HScatter (h', i', v') ->
        h == h' && i == i' && v == v'
    | HCallOut (s, k, h), HCallOut (s', k', h') -> s = s' && k = k' && h == h'
    | HLoopOut (l, r), HLoopOut (l', r') -> l == l' && r == r'
    | Loop l, Loop l' ->
        l.serial = l'.serial && taeq l.bounds l'.bounds
        && taeq l.inits l'.inits && taeq l.yields l'.yields
        && tpeq l.heaps l'.heaps && taeq l.evs l'.evs
    | EvCall (s, n, xs), EvCall (s', n', ys) ->
        s = s' && String.equal n n' && taeq xs ys
    | EvLoop l, EvLoop l' -> l == l'
    | EvIte (c, xs, ys), EvIte (c', xs', ys') ->
        c == c' && taeq xs xs' && taeq ys ys'
    | _ -> false

  let hc (h : int) (t : Term.t) = (h * 65599) + t.Term.tag + 1
  let hca (h : int) (a : Term.t array) = Array.fold_left hc h a

  let hash (n : t) : int =
    (match n with
    | Cst c -> 2 + (31 * const_hash c)
    | Param i -> 3 + (31 * i)
    | Iv s -> 5 + (31 * s)
    | Iter (s, k) -> 7 + (31 * s) + (977 * k)
    | AllocA (s, sz) -> hc (11 + (31 * s)) sz
    | Prim (k, xs) -> hca (13 + (31 * Hashtbl.hash k)) xs
    | IteV (c, x, y) -> hc (hc (hc 17 c) x) y
    | Bcast (w, x) -> hc (19 + (31 * w)) x
    | IotaV w -> 23 + (31 * w)
    | LoadS (h, i) -> hc (hc 29 h) i
    | LoadV (w, h, i) -> hc (hc (31 + (37 * w)) h) i
    | LoadG (h, i) -> hc (hc 37 h) i
    | CallRes (s, k) -> 41 + (31 * s) + (977 * k)
    | LoopRes (l, k) -> hc (43 + (977 * k)) l
    | HInit r -> hc 47 r
    | HStoreS (h, i, v) -> hc (hc (hc 53 h) i) v
    | HStoreV (h, i, v) -> hc (hc (hc 59 h) i) v
    | HScatter (h, i, v) -> hc (hc (hc 61 h) i) v
    | HCallOut (s, k, h) -> hc (67 + (31 * s) + (977 * k)) h
    | HLoopOut (l, r) -> hc (hc 71 l) r
    | HIte (c, x, y) -> hc (hc (hc 73 c) x) y
    | Loop l ->
        hca
          (hca
             (hca
                (Array.fold_left
                   (fun acc (r, h) -> hc (hc acc r) h)
                   (hca (79 + (31 * l.serial)) l.bounds)
                   l.heaps)
                l.inits)
             l.yields)
          l.evs
    | EvCall (s, nm, xs) -> hca (83 + (31 * s) + Hashtbl.hash nm) xs
    | EvLoop l -> hc 89 l
    | EvIte (c, xs, ys) -> hca (hca (hc 97 c) xs) ys)
    land max_int
end

and Term : (Hashcons.S with type node = Node.t) = Hashcons.Make (Node)

(* -- construction context -------------------------------------------- *)

exception Budget

type ctx = { tbl : Term.table; budget : int }

let create_ctx ?(budget = 2_000_000) () =
  { tbl = Term.create 4096; budget }

let mk (c : ctx) (n : Node.t) : Term.t =
  if Term.length c.tbl > c.budget then raise Budget;
  Term.hashcons c.tbl n

let node (t : Term.t) : Node.t = t.Term.node

(* -- normalizing smart constructors ---------------------------------- *)

let cst c k = mk c (Node.Cst k)
let cf c x = cst c (KF x)
let ci c x = cst c (KI x)
let cb c x = cst c (KB x)

let fview (t : Term.t) =
  match node t with Node.Cst (KF x) -> Some x | _ -> None

let iview (t : Term.t) =
  match node t with Node.Cst (KI x) -> Some x | _ -> None

let bview (t : Term.t) =
  match node t with Node.Cst (KB x) -> Some x | _ -> None

(* Canonicalize's [is_c] looks through broadcasts of constants; mirror
   that: a splat of a float constant counts as that constant. *)
let rec fview_splat (t : Term.t) =
  match node t with
  | Node.Cst (KF x) -> Some x
  | Node.Bcast (_, s) -> fview_splat s
  | _ -> None

(* The specializer's splat folding resolves vector selects whose
   condition is a splat of a known boolean. *)
let rec bview_splat (t : Term.t) =
  match node t with
  | Node.Cst (KB x) -> Some x
  | Node.Bcast (_, s) -> bview_splat s
  | _ -> None

let is_fzero t =
  match fview_splat t with Some x -> Float.equal x 0.0 | None -> false

let is_fone t =
  match fview_splat t with Some x -> Float.equal x 1.0 | None -> false

(* Scalar constant folding — the exact semantics of
   {!Passes.Const_fold.eval_op}: OCaml float primitives are IEEE, the
   comparison operators below specialize to IEEE float compares (NaN
   makes every comparison but [<>] false), and math builtins fold only
   on non-NaN arguments to finite results. *)
let fold_scalar (c : ctx) (kind : Op.kind) (args : Term.t array) :
    Term.t option =
  let f k = fview args.(k) in
  let i k = iview args.(k) in
  let b k = bview args.(k) in
  let open Op in
  match kind with
  | BinF op -> (
      match (f 0, f 1) with
      | Some x, Some y ->
          let g =
            match op with
            | FAdd -> ( +. )
            | FSub -> ( -. )
            | FMul -> ( *. )
            | FDiv -> ( /. )
            | FMin -> Float.min
            | FMax -> Float.max
            | FRem -> Float.rem
          in
          Some (cf c (g x y))
      | _ -> None)
  | NegF -> ( match f 0 with Some x -> Some (cf c (-.x)) | None -> None)
  | BinI op -> (
      match (i 0, i 1) with
      | Some x, Some y -> (
          match op with
          | IAdd -> Some (ci c (x + y))
          | ISub -> Some (ci c (x - y))
          | IMul -> Some (ci c (x * y))
          | IDiv -> if y = 0 then None else Some (ci c (x / y))
          | IRem -> if y = 0 then None else Some (ci c (x mod y)))
      | _ -> None)
  | BinB op -> (
      match (b 0, b 1) with
      | Some x, Some y ->
          Some
            (cb c
               (match op with
               | BAnd -> x && y
               | BOr -> x || y
               | BXor -> x <> y))
      | _ -> None)
  | NotB -> ( match b 0 with Some x -> Some (cb c (not x)) | None -> None)
  | CmpF cmp -> (
      match (f 0, f 1) with
      | Some x, Some y ->
          let g : float -> float -> bool =
            match cmp with
            | Lt -> ( < )
            | Le -> ( <= )
            | Gt -> ( > )
            | Ge -> ( >= )
            | Eq -> ( = )
            | Ne -> ( <> )
          in
          Some (cb c (g x y))
      | _ -> None)
  | CmpI cmp -> (
      match (i 0, i 1) with
      | Some x, Some y ->
          let g : int -> int -> bool =
            match cmp with
            | Lt -> ( < )
            | Le -> ( <= )
            | Gt -> ( > )
            | Ge -> ( >= )
            | Eq -> ( = )
            | Ne -> ( <> )
          in
          Some (cb c (g x y))
      | _ -> None)
  | SIToFP -> (
      match i 0 with Some x -> Some (cf c (float_of_int x)) | None -> None)
  | FPToSI -> (
      match f 0 with Some x -> Some (ci c (int_of_float x)) | None -> None)
  | Math name -> (
      match Easyml.Builtins.find name with
      | None -> None
      | Some bi -> (
          let vals =
            Array.init bi.arity (fun k ->
                match f k with Some x -> x | None -> Float.nan)
          in
          if Array.exists Float.is_nan vals then None
          else
            match bi.eval vals with
            | v when Float.is_finite v -> Some (cf c v)
            | _ -> None))
  | _ -> None

let bcast (c : ctx) ~(w : int) (t : Term.t) : Term.t =
  if w <= 1 then t else mk c (Node.Bcast (w, t))

(* [apply] normalizes a pure op over already-normalized operands.  The
   broadcast law in [elementwise] — op over all-splat operands is the
   splat of the scalar op — subsumes the specializer's splat folding and
   lets [check_widen] collapse widened bodies; recursion is on strictly
   smaller (scalar) operands, so it terminates. *)
let rec apply (c : ctx) (kind : Op.kind) (args : Term.t array) : Term.t =
  match kind with
  | Op.BinF op -> binf c op args.(0) args.(1)
  | Op.NegF -> negf c args.(0)
  | Op.BinI op -> bini c op args.(0) args.(1)
  | Op.BinB _ | Op.CmpF _ | Op.CmpI _ | Op.SIToFP | Op.FPToSI | Op.Math _ ->
      fold_or_elementwise c kind args
  | Op.NotB -> notb c args.(0)
  | Op.Select -> ite c args.(0) args.(1) args.(2)
  | Op.VecExtract lane -> vext c lane args.(0)
  | _ -> mk c (Node.Prim (kind, args))

and fold_or_elementwise c kind args =
  match fold_scalar c kind args with
  | Some t -> t
  | None -> elementwise c kind args

and elementwise c kind args =
  let w =
    Array.fold_left
      (fun acc t -> match node t with Node.Bcast (w, _) -> max acc w | _ -> acc)
      1 args
  in
  if
    w > 1
    && Array.for_all
         (fun t ->
           match node t with Node.Bcast (w', _) -> w' = w | _ -> false)
         args
  then
    let scalars =
      Array.map
        (fun t ->
          match node t with Node.Bcast (_, s) -> s | _ -> assert false)
        args
    in
    bcast c ~w (apply c kind scalars)
  else mk c (Node.Prim (kind, args))

and binf c op a b =
  match fold_scalar c (Op.BinF op) [| a; b |] with
  | Some t -> t
  | None -> (
      (* Canonicalize's IEEE-safe identities, verbatim *)
      match op with
      | Op.FAdd when is_fzero b -> a
      | Op.FAdd when is_fzero a -> b
      | Op.FSub when is_fzero b -> a
      | Op.FMul when is_fone b -> a
      | Op.FMul when is_fone a -> b
      | Op.FDiv when is_fone b -> a
      | _ -> elementwise c (Op.BinF op) [| a; b |])

and negf c a =
  match fold_scalar c Op.NegF [| a |] with
  | Some t -> t
  | None -> (
      match node a with
      | Node.Prim (Op.NegF, xs) -> xs.(0)
      | _ -> elementwise c Op.NegF [| a |])

and notb c a =
  match fold_scalar c Op.NotB [| a |] with
  | Some t -> t
  | None -> (
      match node a with
      | Node.Prim (Op.NotB, xs) -> xs.(0)
      | _ -> elementwise c Op.NotB [| a |])

and bini c op a b =
  match fold_scalar c (Op.BinI op) [| a; b |] with
  | Some t -> t
  | None -> (
      match (op, node a, node b) with
      | Op.IMul, _, Node.Cst (KI 1) -> a
      | Op.IMul, Node.Cst (KI 1), _ -> b
      | Op.IAdd, _, Node.Cst (KI 0) -> a
      | Op.IAdd, Node.Cst (KI 0), _ -> b
      | _ -> elementwise c (Op.BinI op) [| a; b |])

and ite c cond a b =
  match bview_splat cond with
  | Some true -> a
  | Some false -> b
  | None ->
      if a == b then a
      else (
        match (node cond, node a, node b) with
        | Node.Bcast (w, c'), Node.Bcast (w2, a'), Node.Bcast (w3, b')
          when w = w2 && w = w3 ->
            bcast c ~w (ite c c' a' b')
        | _ -> mk c (Node.IteV (cond, a, b)))

and vext c lane a =
  match node a with
  | Node.Bcast (_, s) -> s
  | Node.IotaV _ -> ci c lane
  | _ -> mk c (Node.Prim (Op.VecExtract lane, [| a |]))

(* Heap select: mirror the value-level constant-condition rules so a
   specialized [scf.if] and its source agree on merged heaps. *)
let hite c cond h1 h2 =
  if h1 == h2 then h1
  else
    match bview_splat cond with
    | Some true -> h1
    | Some false -> h2
    | None -> mk c (Node.HIte (cond, h1, h2))

(* -- symbolic evaluator ---------------------------------------------- *)

type est = {
  c : ctx;
  vals : (int, Term.t) Hashtbl.t;  (** Value.id -> normalized term *)
  mutable heaps : (Term.t * Term.t) list;  (** root -> current heap *)
  mutable evs : Term.t list;  (** events, reversed *)
  mutable next_loop : int;
  mutable next_call : int;
  mutable next_alloc : int;
}

let lookup (st : est) (v : Value.t) : Term.t =
  match Hashtbl.find_opt st.vals v.Value.id with
  | Some t -> t
  | None ->
      failwith (Printf.sprintf "transval: use of undefined value %%%d" v.id)

let hinit (st : est) (root : Term.t) : Term.t = mk st.c (Node.HInit root)

let heap_of (st : est) (root : Term.t) : Term.t =
  match List.assq_opt root st.heaps with
  | Some h -> h
  | None ->
      let h = hinit st root in
      st.heaps <- (root, h) :: st.heaps;
      h

let set_heap (st : est) (root : Term.t) (h : Term.t) : unit =
  st.heaps <- (root, h) :: List.filter (fun (r, _) -> r != root) st.heaps

let heap_at (st : est) (snapshot : (Term.t * Term.t) list) (root : Term.t) :
    Term.t =
  match List.assq_opt root snapshot with
  | Some h -> h
  | None -> hinit st root

let rec eval_op (st : est) (o : Op.op) : unit =
  let tm k = lookup st o.Op.operands.(k) in
  let bind1 t = Hashtbl.replace st.vals o.Op.results.(0).Value.id t in
  match o.Op.kind with
  | Op.ConstF x -> bind1 (cf st.c x)
  | Op.ConstI x -> bind1 (ci st.c x)
  | Op.ConstB x -> bind1 (cb st.c x)
  | Op.BinF _ | Op.NegF | Op.BinI _ | Op.BinB _ | Op.NotB | Op.CmpF _
  | Op.CmpI _ | Op.Select | Op.SIToFP | Op.FPToSI | Op.Math _
  | Op.VecExtract _ ->
      bind1 (apply st.c o.Op.kind (Array.map (lookup st) o.Op.operands))
  | Op.Broadcast ->
      bind1 (bcast st.c ~w:(Ty.width o.Op.results.(0).Value.ty) (tm 0))
  | Op.Iota w -> bind1 (mk st.c (Node.IotaV w))
  | Op.Alloc ->
      let s = st.next_alloc in
      st.next_alloc <- s + 1;
      let root = mk st.c (Node.AllocA (s, tm 0)) in
      set_heap st root (hinit st root);
      bind1 root
  | Op.MemLoad ->
      let root = tm 0 in
      bind1 (mk st.c (Node.LoadS (heap_of st root, tm 1)))
  | Op.VecLoad ->
      let w = Ty.width o.Op.results.(0).Value.ty in
      let root = tm 0 in
      bind1 (mk st.c (Node.LoadV (w, heap_of st root, tm 1)))
  | Op.Gather ->
      let root = tm 0 in
      bind1 (mk st.c (Node.LoadG (heap_of st root, tm 1)))
  | Op.MemStore ->
      let root = tm 1 in
      set_heap st root (mk st.c (Node.HStoreS (heap_of st root, tm 2, tm 0)))
  | Op.VecStore ->
      let root = tm 1 in
      set_heap st root (mk st.c (Node.HStoreV (heap_of st root, tm 2, tm 0)))
  | Op.Scatter ->
      let root = tm 1 in
      set_heap st root (mk st.c (Node.HScatter (heap_of st root, tm 2, tm 0)))
  | Op.Call name ->
      let s = st.next_call in
      st.next_call <- s + 1;
      let args = Array.map (lookup st) o.Op.operands in
      (* the call observes the current heap of every memref argument *)
      let obs = ref [] in
      Array.iteri
        (fun k (v : Value.t) ->
          if v.Value.ty = Ty.Memref then obs := heap_of st args.(k) :: !obs)
        o.Op.operands;
      let ev =
        mk st.c
          (Node.EvCall
             (s, name, Array.append args (Array.of_list (List.rev !obs))))
      in
      st.evs <- ev :: st.evs;
      (* ...and may write them: havoc each memref argument's heap *)
      Array.iteri
        (fun k (v : Value.t) ->
          if v.Value.ty = Ty.Memref then
            set_heap st args.(k)
              (mk st.c (Node.HCallOut (s, k, heap_of st args.(k)))))
        o.Op.operands;
      Array.iteri
        (fun k (r : Value.t) ->
          Hashtbl.replace st.vals r.Value.id (mk st.c (Node.CallRes (s, k))))
        o.Op.results
  | Op.If ->
      let cond = tm 0 in
      let entry = st.heaps and outer_evs = st.evs in
      st.evs <- [];
      let then_rets = eval_region st o.Op.regions.(0) in
      let then_heaps = st.heaps
      and then_evs = Array.of_list (List.rev st.evs) in
      st.heaps <- entry;
      st.evs <- [];
      let else_rets = eval_region st o.Op.regions.(1) in
      let else_heaps = st.heaps
      and else_evs = Array.of_list (List.rev st.evs) in
      st.evs <- outer_evs;
      st.heaps <- entry;
      let roots =
        List.fold_left
          (fun acc (r, _) -> if List.memq r acc then acc else r :: acc)
          (List.rev_map fst then_heaps)
          else_heaps
      in
      List.iter
        (fun root ->
          let h1 = heap_at st then_heaps root
          and h2 = heap_at st else_heaps root in
          set_heap st root (hite st.c cond h1 h2))
        (List.rev roots);
      if Array.length then_evs > 0 || Array.length else_evs > 0 then
        st.evs <- mk st.c (Node.EvIte (cond, then_evs, else_evs)) :: st.evs;
      Array.iteri
        (fun k (r : Value.t) ->
          Hashtbl.replace st.vals r.Value.id
            (ite st.c cond then_rets.(k) else_rets.(k)))
        o.Op.results
  | Op.For _ ->
      let s = st.next_loop in
      st.next_loop <- s + 1;
      let bounds = [| tm 0; tm 1; tm 2 |] in
      let inits =
        Array.init (Array.length o.Op.operands - 3) (fun k -> tm (k + 3))
      in
      let r = o.Op.regions.(0) in
      (match r.Op.r_args with
      | iv :: iters ->
          Hashtbl.replace st.vals iv.Value.id (mk st.c (Node.Iv s));
          List.iteri
            (fun k (it : Value.t) ->
              Hashtbl.replace st.vals it.Value.id (mk st.c (Node.Iter (s, k))))
            iters
      | [] -> failwith "transval: scf.for region without induction variable");
      let entry = st.heaps and outer_evs = st.evs in
      st.evs <- [];
      let yields = eval_region st r in
      let body_evs = Array.of_list (List.rev st.evs) in
      let changed =
        st.heaps
        |> List.filter (fun (root, h) -> heap_at st entry root != h)
        |> List.sort (fun ((a : Term.t), _) (b, _) ->
               compare a.Term.tag b.Term.tag)
        |> Array.of_list
      in
      let loop =
        mk st.c (Node.Loop { serial = s; bounds; inits; yields;
                             heaps = changed; evs = body_evs })
      in
      st.evs <- outer_evs;
      st.heaps <- entry;
      Array.iter
        (fun (root, _) ->
          set_heap st root (mk st.c (Node.HLoopOut (loop, root))))
        changed;
      if Array.length body_evs > 0 || Array.length changed > 0 then
        st.evs <- mk st.c (Node.EvLoop loop) :: st.evs;
      Array.iteri
        (fun k (res : Value.t) ->
          Hashtbl.replace st.vals res.Value.id
            (mk st.c (Node.LoopRes (loop, k))))
        o.Op.results
  | Op.Yield | Op.Return ->
      (* handled by eval_region *)
      ()

and eval_region (st : est) (r : Op.region) : Term.t array =
  let out = ref [||] in
  List.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.Yield | Op.Return -> out := Array.map (lookup st) o.Op.operands
      | _ -> eval_op st o)
    r.Op.r_ops;
  !out

(* -- function summaries ---------------------------------------------- *)

type summary = {
  s_rets : Term.t array;
  s_heaps : (Term.t * Term.t) array;  (** (root, heap), roots by tag *)
  s_evs : Term.t array;
}

let eval_func (c : ctx) ?(bind : (int * const) list = [])
    ?(param : (int -> Value.t -> Term.t) option) (f : Func.func) : summary =
  let st =
    { c; vals = Hashtbl.create 256; heaps = []; evs = []; next_loop = 0;
      next_call = 0; next_alloc = 0 }
  in
  let default_param i _ =
    match List.assoc_opt i bind with
    | Some k -> cst c k
    | None -> mk c (Node.Param i)
  in
  let param = Option.value param ~default:default_param in
  List.iteri
    (fun i (p : Value.t) -> Hashtbl.replace st.vals p.Value.id (param i p))
    f.Func.f_params;
  let rets = eval_region st f.Func.f_body in
  let heaps =
    st.heaps
    |> List.filter (fun ((root : Term.t), (h : Term.t)) ->
           match node h with
           | Node.HInit r when r == root -> false
           | _ -> true)
    |> List.sort (fun ((a : Term.t), _) (b, _) -> compare a.Term.tag b.Term.tag)
    |> Array.of_list
  in
  { s_rets = rets; s_heaps = heaps; s_evs = Array.of_list (List.rev st.evs) }

(* -- term printing (for counterexamples) ----------------------------- *)

let prim_name (k : Op.kind) : string =
  match k with
  | Op.BinF b -> Op.fbin_short b
  | Op.NegF -> "fneg"
  | Op.BinI b -> Op.ibin_short b
  | Op.BinB b -> Op.bbin_short b
  | Op.NotB -> "not"
  | Op.CmpF cmp -> "fcmp." ^ Op.cmp_name cmp
  | Op.CmpI cmp -> "icmp." ^ Op.cmp_name cmp
  | Op.Math m -> m
  | Op.SIToFP -> "sitofp"
  | Op.FPToSI -> "fptosi"
  | Op.VecExtract lane -> Printf.sprintf "extract.%d" lane
  | k -> Op.kind_name k

let loop_serial (l : Term.t) : int =
  match node l with Node.Loop r -> r.serial | _ -> -1

let term_to_string (t : Term.t) : string =
  let buf = Buffer.create 128 in
  let budget = ref 160 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rec go d (t : Term.t) =
    decr budget;
    if !budget <= 0 || d > 10 then Buffer.add_string buf "..."
    else
      let args ts =
        Buffer.add_char buf '(';
        Array.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ", ";
            go (d + 1) x)
          ts;
        Buffer.add_char buf ')'
      in
      match node t with
      | Node.Cst (KF x) -> pf "%.17g" x
      | Node.Cst (KI x) -> pf "%d" x
      | Node.Cst (KB x) -> pf "%b" x
      | Node.Param i -> pf "p%d" i
      | Node.Iv s -> pf "iv%d" s
      | Node.Iter (s, k) -> pf "acc%d.%d" s k
      | Node.AllocA (s, _) -> pf "alloc%d" s
      | Node.Prim (k, xs) ->
          Buffer.add_string buf (prim_name k);
          args xs
      | Node.IteV (c, a, b) ->
          Buffer.add_string buf "ite";
          args [| c; a; b |]
      | Node.Bcast (w, x) ->
          pf "splat<%d>" w;
          args [| x |]
      | Node.IotaV w -> pf "iota<%d>" w
      | Node.LoadS (h, i) ->
          Buffer.add_string buf "load";
          args [| h; i |]
      | Node.LoadV (w, h, i) ->
          pf "loadv<%d>" w;
          args [| h; i |]
      | Node.LoadG (h, i) ->
          Buffer.add_string buf "gather";
          args [| h; i |]
      | Node.CallRes (s, k) -> pf "call%d#%d" s k
      | Node.LoopRes (l, k) -> pf "loop%d#%d" (loop_serial l) k
      | Node.HInit r ->
          Buffer.add_string buf "init";
          args [| r |]
      | Node.HStoreS (h, i, v) ->
          Buffer.add_string buf "store";
          args [| h; i; v |]
      | Node.HStoreV (h, i, v) ->
          Buffer.add_string buf "storev";
          args [| h; i; v |]
      | Node.HScatter (h, i, v) ->
          Buffer.add_string buf "scatter";
          args [| h; i; v |]
      | Node.HCallOut (s, k, h) ->
          pf "callout%d.%d" s k;
          args [| h |]
      | Node.HLoopOut (l, r) ->
          pf "loopout%d" (loop_serial l);
          args [| r |]
      | Node.HIte (c, a, b) ->
          Buffer.add_string buf "hite";
          args [| c; a; b |]
      | Node.Loop l ->
          pf "loop%d" l.serial;
          Buffer.add_char buf '{';
          Buffer.add_string buf "bounds";
          args l.bounds;
          if Array.length l.yields > 0 then begin
            Buffer.add_string buf " yields";
            args l.yields
          end;
          Array.iter
            (fun (r, h) ->
              Buffer.add_string buf " mem";
              args [| r; h |])
            l.heaps;
          Buffer.add_char buf '}'
      | Node.EvCall (s, nm, xs) ->
          pf "call%d:%s" s nm;
          args xs
      | Node.EvLoop l -> pf "evloop%d" (loop_serial l)
      | Node.EvIte (c, xs, ys) ->
          Buffer.add_string buf "evite(";
          go (d + 1) c;
          pf "; then:%d else:%d" (Array.length xs) (Array.length ys);
          Array.iter
            (fun x ->
              Buffer.add_char buf ' ';
              go (d + 1) x)
            (Array.append xs ys);
          Buffer.add_char buf ')'
  in
  go 0 t;
  Buffer.contents buf

(* -- equivalence ----------------------------------------------------- *)

type counterexample = {
  cx_func : string;
  cx_site : string;
  cx_src : string;
  cx_tgt : string;
}

type verdict = Proved | Refuted of counterexample | Unknown of string

type cert = {
  c_pass : string;
  c_src_digest : string;
  c_tgt_digest : string;
  c_obligations : int;
  c_verdict : verdict;
  c_ms : float;
}

let compare_summaries ~(fname : string) (c : ctx) (a : summary) (b : summary)
    : (unit, counterexample) result =
  let cx site sa sb =
    Error { cx_func = fname; cx_site = site; cx_src = sa; cx_tgt = sb }
  in
  if Array.length a.s_rets <> Array.length b.s_rets then
    cx "results"
      (Printf.sprintf "%d results" (Array.length a.s_rets))
      (Printf.sprintf "%d results" (Array.length b.s_rets))
  else
    let rec rets i =
      if i >= Array.length a.s_rets then Ok ()
      else if a.s_rets.(i) == b.s_rets.(i) then rets (i + 1)
      else
        cx
          (Printf.sprintf "result %d" i)
          (term_to_string a.s_rets.(i))
          (term_to_string b.s_rets.(i))
    in
    match rets 0 with
    | Error _ as e -> e
    | Ok () -> (
        let na = Array.length a.s_heaps and nb = Array.length b.s_heaps in
        let rec heaps i j =
          if i >= na && j >= nb then Ok ()
          else
            let untouched root =
              term_to_string (mk c (Node.HInit root))
            in
            if i >= na then
              let root, h = b.s_heaps.(j) in
              cx
                (Printf.sprintf "memory %s" (term_to_string root))
                (untouched root) (term_to_string h)
            else if j >= nb then
              let root, h = a.s_heaps.(i) in
              cx
                (Printf.sprintf "memory %s" (term_to_string root))
                (term_to_string h) (untouched root)
            else
              let ra, ha = a.s_heaps.(i) and rb, hb = b.s_heaps.(j) in
              if ra == rb then
                if ha == hb then heaps (i + 1) (j + 1)
                else
                  cx
                    (Printf.sprintf "memory %s" (term_to_string ra))
                    (term_to_string ha) (term_to_string hb)
              else if ra.Term.tag < rb.Term.tag then
                cx
                  (Printf.sprintf "memory %s" (term_to_string ra))
                  (term_to_string ha) (untouched ra)
              else
                cx
                  (Printf.sprintf "memory %s" (term_to_string rb))
                  (untouched rb) (term_to_string hb)
        in
        match heaps 0 0 with
        | Error _ as e -> e
        | Ok () ->
            if Array.length a.s_evs <> Array.length b.s_evs then
              cx "effects"
                (Printf.sprintf "%d events" (Array.length a.s_evs))
                (Printf.sprintf "%d events" (Array.length b.s_evs))
            else
              let rec evs i =
                if i >= Array.length a.s_evs then Ok ()
                else if a.s_evs.(i) == b.s_evs.(i) then evs (i + 1)
                else
                  cx
                    (Printf.sprintf "effect %d" i)
                    (term_to_string a.s_evs.(i))
                    (term_to_string b.s_evs.(i))
              in
              evs 0)

let obligations_of (s : summary) : int =
  Array.length s.s_rets + Array.length s.s_heaps + Array.length s.s_evs

let module_digest (m : Func.modl) : string =
  Digest.to_hex (Digest.string (Printer.module_to_string m))

let func_digest (f : Func.func) : string =
  Digest.to_hex (Digest.string (Printer.func_to_string f))

let timed (f : unit -> int * verdict) : int * verdict * float =
  let t0 = Unix.gettimeofday () in
  let obligations, verdict =
    try f () with
    | Budget -> (0, Unknown "symbolic term budget exceeded")
    | Stack_overflow -> (0, Unknown "stack overflow during symbolic evaluation")
    | Failure msg -> (0, Unknown msg)
  in
  (obligations, verdict, (Unix.gettimeofday () -. t0) *. 1000.)

let check_module ?(env : Func.func -> (int * const) list = fun _ -> [])
    ~(pass : string) (src : Func.modl) (tgt : Func.modl) : cert =
  let obligations, verdict, ms =
    timed (fun () ->
        let c = create_ctx () in
        let obligations = ref 0 in
        let rec go = function
          | [] -> (
              match
                List.find_opt
                  (fun (g : Func.func) ->
                    Option.is_none (Func.find_func src g.Func.f_name))
                  tgt.Func.m_funcs
              with
              | Some g ->
                  Refuted
                    { cx_func = g.Func.f_name; cx_site = "module";
                      cx_src = "(no such function)";
                      cx_tgt = "function present" }
              | None -> Proved)
          | (f : Func.func) :: rest -> (
              match Func.find_func tgt f.Func.f_name with
              | None ->
                  Refuted
                    { cx_func = f.Func.f_name; cx_site = "module";
                      cx_src = "function present";
                      cx_tgt = "(no such function)" }
              | Some g ->
                  let bind = env f in
                  let sa = eval_func c ~bind f in
                  let sb = eval_func c ~bind g in
                  obligations := !obligations + obligations_of sa;
                  (match compare_summaries ~fname:f.Func.f_name c sa sb with
                  | Ok () -> go rest
                  | Error cxe -> Refuted cxe))
        in
        let v = go src.Func.m_funcs in
        (!obligations, v))
  in
  { c_pass = pass; c_src_digest = module_digest src;
    c_tgt_digest = module_digest tgt; c_obligations = obligations;
    c_verdict = verdict; c_ms = ms }

let check_widen ~(w : int) (scalar : Func.func) (vec : Func.func) : cert =
  let obligations, verdict, ms =
    timed (fun () ->
        let c = create_ctx () in
        let s = eval_func c scalar in
        let v =
          eval_func c
            ~param:(fun i _ -> bcast c ~w (mk c (Node.Param i)))
            vec
        in
        let want =
          { s_rets = Array.map (fun t -> bcast c ~w t) s.s_rets;
            s_heaps = [||]; s_evs = [||] }
        in
        let verdict =
          match compare_summaries ~fname:vec.Func.f_name c want v with
          | Ok () -> Proved
          | Error cxe -> Refuted cxe
        in
        (obligations_of want, verdict))
  in
  { c_pass = "widen"; c_src_digest = func_digest scalar;
    c_tgt_digest = func_digest vec; c_obligations = obligations;
    c_verdict = verdict; c_ms = ms }

(* -- normalization self-check ---------------------------------------- *)

(* Rebuild a normalized term bottom-up through the smart constructors.
   If normalization is oriented and terminating, every reachable term is
   already in normal form and the rebuild is the identity. *)
let rec rebuild (memo : (int, Term.t) Hashtbl.t) (c : ctx) (t : Term.t) :
    Term.t =
  match Hashtbl.find_opt memo t.Term.tag with
  | Some r -> r
  | None ->
      let rb x = rebuild memo c x in
      let rba = Array.map rb in
      let r =
        match node t with
        | Node.Cst k -> cst c k
        | Node.Param i -> mk c (Node.Param i)
        | Node.Iv s -> mk c (Node.Iv s)
        | Node.Iter (s, k) -> mk c (Node.Iter (s, k))
        | Node.AllocA (s, n) -> mk c (Node.AllocA (s, rb n))
        | Node.Prim (k, xs) -> apply c k (rba xs)
        | Node.IteV (x, y, z) -> ite c (rb x) (rb y) (rb z)
        | Node.Bcast (w, x) -> bcast c ~w (rb x)
        | Node.IotaV w -> mk c (Node.IotaV w)
        | Node.LoadS (h, i) -> mk c (Node.LoadS (rb h, rb i))
        | Node.LoadV (w, h, i) -> mk c (Node.LoadV (w, rb h, rb i))
        | Node.LoadG (h, i) -> mk c (Node.LoadG (rb h, rb i))
        | Node.CallRes (s, k) -> mk c (Node.CallRes (s, k))
        | Node.LoopRes (l, k) -> mk c (Node.LoopRes (rb l, k))
        | Node.HInit r -> mk c (Node.HInit (rb r))
        | Node.HStoreS (h, i, v) -> mk c (Node.HStoreS (rb h, rb i, rb v))
        | Node.HStoreV (h, i, v) -> mk c (Node.HStoreV (rb h, rb i, rb v))
        | Node.HScatter (h, i, v) -> mk c (Node.HScatter (rb h, rb i, rb v))
        | Node.HCallOut (s, k, h) -> mk c (Node.HCallOut (s, k, rb h))
        | Node.HLoopOut (l, r) -> mk c (Node.HLoopOut (rb l, rb r))
        | Node.HIte (x, y, z) -> hite c (rb x) (rb y) (rb z)
        | Node.Loop l ->
            mk c
              (Node.Loop
                 { l with bounds = rba l.bounds; inits = rba l.inits;
                   yields = rba l.yields;
                   heaps = Array.map (fun (r, h) -> (rb r, rb h)) l.heaps;
                   evs = rba l.evs })
        | Node.EvCall (s, nm, xs) -> mk c (Node.EvCall (s, nm, rba xs))
        | Node.EvLoop l -> mk c (Node.EvLoop (rb l))
        | Node.EvIte (x, xs, ys) -> mk c (Node.EvIte (rb x, rba xs, rba ys))
      in
      Hashtbl.replace memo t.Term.tag r;
      r

let self_check (m : Func.modl) : (int, string) result =
  try
    let c = create_ctx () in
    let sum1 = List.map (fun f -> eval_func c f) m.Func.m_funcs in
    let sum2 = List.map (fun f -> eval_func c f) m.Func.m_funcs in
    let same (a : summary) (b : summary) =
      Array.length a.s_rets = Array.length b.s_rets
      && Array.for_all2 (fun (x : Term.t) y -> x == y) a.s_rets b.s_rets
      && Array.length a.s_evs = Array.length b.s_evs
      && Array.for_all2 (fun (x : Term.t) y -> x == y) a.s_evs b.s_evs
      && Array.length a.s_heaps = Array.length b.s_heaps
      && Array.for_all2
           (fun ((r1, h1) : Term.t * Term.t) (r2, h2) ->
             r1 == r2 && h1 == h2)
           a.s_heaps b.s_heaps
    in
    if not (List.for_all2 same sum1 sum2) then
      Error "evaluation is not deterministic"
    else begin
      let memo = Hashtbl.create 1024 in
      let bad = ref None in
      let check t =
        if rebuild memo c t != t && !bad = None then
          bad := Some (term_to_string t)
      in
      List.iter
        (fun s ->
          Array.iter check s.s_rets;
          Array.iter
            (fun (r, h) ->
              check r;
              check h)
            s.s_heaps;
          Array.iter check s.s_evs)
        sum1;
      match !bad with
      | Some t -> Error ("normalization is not idempotent at " ^ t)
      | None -> Ok (Term.length c.tbl)
    end
  with
  | Budget -> Error "symbolic term budget exceeded"
  | Failure msg -> Error msg

(* -- certificates as diagnostics / JSON ------------------------------ *)

let is_refuted (c : cert) =
  match c.c_verdict with Refuted _ -> true | _ -> false

let is_unknown (c : cert) =
  match c.c_verdict with Unknown _ -> true | _ -> false

let verdict_name = function
  | Proved -> "proved"
  | Refuted _ -> "refuted"
  | Unknown _ -> "unknown"

let cert_to_json (c : cert) : string =
  let esc = Easyml.Diag.json_escape in
  let extra =
    match c.c_verdict with
    | Proved -> ""
    | Refuted cx ->
        Printf.sprintf
          ", \"counterexample\": {\"func\": \"%s\", \"site\": \"%s\", \
           \"src\": \"%s\", \"tgt\": \"%s\"}"
          (esc cx.cx_func) (esc cx.cx_site) (esc cx.cx_src) (esc cx.cx_tgt)
    | Unknown reason -> Printf.sprintf ", \"reason\": \"%s\"" (esc reason)
  in
  Printf.sprintf
    "{\"pass\": \"%s\", \"src_digest\": \"%s\", \"tgt_digest\": \"%s\", \
     \"obligations\": %d, \"verdict\": \"%s\", \"ms\": %.3f%s}"
    (esc c.c_pass) (esc c.c_src_digest) (esc c.c_tgt_digest) c.c_obligations
    (verdict_name c.c_verdict) c.c_ms extra

let diag_of_cert (c : cert) : Easyml.Diag.t option =
  match c.c_verdict with
  | Proved -> None
  | Refuted cx ->
      Some
        (Easyml.Diag.makef ~sev:Easyml.Diag.Error ~pass:c.c_pass
           ~code:"transval-refuted"
           "pass '%s' not semantics-preserving: %s, %s diverges: src=%s \
            tgt=%s"
           c.c_pass cx.cx_func cx.cx_site cx.cx_src cx.cx_tgt)
  | Unknown reason ->
      Some
        (Easyml.Diag.makef ~sev:Easyml.Diag.Warning ~pass:c.c_pass
           ~code:"transval-unknown"
           "pass '%s': equivalence undecided: %s" c.c_pass reason)
