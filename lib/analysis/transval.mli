(** Translation validation: per-pass symbolic equivalence checking.

    Each IR function is mapped to a normalized, hash-consed symbolic term
    DAG — one term per live-out value, per memory-effect footprint (a
    store chain per memref root) and per observable event (calls, and
    loops/branches that contain them).  Two functions are declared
    equivalent when their normalized summaries are tag-identical.

    The normalization engine implements {e exactly} the algebraic
    identities the optimization passes are licensed to use:

    - constant folding with the exact float semantics of
      {!Passes.Const_fold.eval_op} (IEEE via OCaml float primitives);
    - the IEEE-safe identities of {!Passes.Canonicalize} ([x+0], [x-0],
      [x*1], [x/1], [--x], [not (not x)], constant/equal-arm selects,
      [i*1], [i+0]);
    - splat/broadcast laws (an elementwise op on broadcasts is the
      broadcast of the scalar op) used by {!Passes.Widen} and the
      specializer's splat folding;
    - binding-environment substitution for {!Passes.Specialize}.

    No reassociation rule is included — no pass is declared bitwise-safe
    for it — so a reassociated float add refutes.  No load-forwarding
    rule is included, so reusing a load across an intervening store
    (stale CSE) refutes structurally.

    On divergence the checker reports the first differing obligation as
    a structured counterexample; on success it emits a certificate
    carrying IR digests, obligation count and wall time. *)

type const = KF of float | KI of int | KB of bool
(** Binding-environment constants ([KF] compares bit-exactly). *)

type counterexample = {
  cx_func : string;  (** function whose summaries diverge *)
  cx_site : string;
      (** first diverging obligation: ["result i"], ["memory <root>"],
          ["effect i"] or ["module"] for a function-set mismatch *)
  cx_src : string;  (** normalized symbolic term on the source side *)
  cx_tgt : string;  (** normalized symbolic term on the target side *)
}

type verdict =
  | Proved
  | Refuted of counterexample
  | Unknown of string
      (** normalization could not decide; the string documents why
          (term budget, unsupported construct).  A warning, not an
          error. *)

type cert = {
  c_pass : string;  (** pass id, e.g. ["cse"] or ["specialize"] *)
  c_src_digest : string;  (** MD5 of the printed input IR *)
  c_tgt_digest : string;  (** MD5 of the printed output IR *)
  c_obligations : int;  (** proof obligations discharged (or attempted) *)
  c_verdict : verdict;
  c_ms : float;  (** validation wall time, milliseconds *)
}

val module_digest : Ir.Func.modl -> string
(** MD5 hex digest of the module's printed form. *)

val check_module :
  ?env:(Ir.Func.func -> (int * const) list) ->
  pass:string ->
  Ir.Func.modl ->
  Ir.Func.modl ->
  cert
(** [check_module ~pass src tgt] proves every function of [src]
    equivalent to its namesake in [tgt] (and that [tgt] adds none).
    [env] gives per-function parameter bindings applied to {e both}
    sides — the specializer's obligation: [src] under the binding
    environment must equal the specialized [tgt].  Never raises; any
    internal failure becomes an [Unknown] verdict. *)

val check_widen : w:int -> Ir.Func.func -> Ir.Func.func -> cert
(** [check_widen ~w f f_vec] proves the {!Passes.Widen} contract: with
    every parameter [p] of [f_vec] bound to [splat<w> p], each result of
    [f_vec] must normalize to [splat<w>] of the corresponding result of
    [f]. *)

val self_check : Ir.Func.modl -> (int, string) result
(** Normalization sanity on a module: evaluating twice in one table
    yields tag-identical summaries (determinism), and rebuilding every
    reachable term bottom-up through the smart constructors is the
    identity (the rewrite system has reached its normal form — oriented
    and terminating, no obligation loops).  [Ok n] returns the number of
    distinct terms checked. *)

val is_refuted : cert -> bool
val is_unknown : cert -> bool
val verdict_name : verdict -> string
(** ["proved"], ["refuted"] or ["unknown"]. *)

val cert_to_json : cert -> string
(** One JSON object: pass, digests, obligations, verdict, ms, plus the
    counterexample or unknown reason when present. *)

val diag_of_cert : cert -> Easyml.Diag.t option
(** [None] for {!Proved}; an [Error]-severity diagnostic (code
    [transval-refuted]) for {!Refuted}; a [Warning] (code
    [transval-unknown]) for {!Unknown}.  The certificate's pass id is
    carried in the diagnostic's [pass] field. *)
