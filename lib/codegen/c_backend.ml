(* C backend: lowered IR -> one self-contained C translation unit.

   Every SSA value becomes a C local ([v<id>]); scalars map to
   double/int64_t/int, vectors to fixed-size stack arrays written by
   constant-trip-count lane loops that cc -O3 unrolls and SLP-vectorizes.
   scf.for becomes a plain countable [for] (the compute kernel's parallel
   tile loop auto-vectorizes), scf.if becomes an if/else assigning
   pre-declared result locals.

   Bitwise parity with the OCaml engines is the design constraint, not an
   accident:
   - float constants print as C hex literals (exact bit patterns);
   - math builtins map to the same libm entry points the interpreter's
     registry calls (OCaml's Float.exp etc. are direct libm externs);
   - fmin/fmax/min/max and arith.minf/maxf use OCaml Float.min/Float.max
     semantics (NaN-propagating, -0 < +0), emitted as ml_fmin/ml_fmax
     rather than C fmin/fmax (which differ on NaN);
   - LUT interpolation (linear + Catmull-Rom) is emitted inline as an
     operation-for-operation transcription of Runtime.Lut;
   - the unit is compiled with -ffp-contract=off -fno-fast-math (see
     Exec.Native.flags) so no FMA contraction or libm replacement can
     perturb results. *)

open Ir

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let sanitize (s : string) : string =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    s

let symbol (name : string) : string = "limpet_" ^ sanitize name

(* static (internal) definition name for an IR function *)
let local_fn (name : string) : string = "k_" ^ sanitize name

let scalar_cty : Ty.t -> string = function
  | Ty.F64 -> "double"
  | Ty.I64 -> "int64_t"
  | Ty.I1 -> "int"
  | t -> unsupported "no scalar C type for %s" (Ty.to_string t)

(* Exact-bit float literals.  %h prints C99 hex floats; NaN/inf have no
   literal syntax, so synthesize them arithmetically (evaluated at
   compile time; the payload of the OCaml "nan" constant is the default
   quiet NaN either way once it flows through arithmetic). *)
let float_lit (f : float) : string =
  if Float.is_nan f then "(0.0 / 0.0)"
  else if f = Float.infinity then "(1.0 / 0.0)"
  else if f = Float.neg_infinity then "(-1.0 / 0.0)"
  else Printf.sprintf "%h" f

type ctx = {
  buf : Buffer.t;
  names : (int, string) Hashtbl.t; (* value id -> C local name *)
  locals : (string, unit) Hashtbl.t; (* names of module-local functions *)
  consts : (int, unit) Hashtbl.t;
      (* value ids the C compiler could prove compile-time constant;
         transcendental calls over these are emitted behind a volatile
         guard (see [mark_const]) *)
  pconsts : (int, unit) Hashtbl.t;
      (* value ids constant along at least one execution path — a select
         with a constant arm, or pure arithmetic over such a value.  GCC
         distributes a libm call over the phi and folds the constant arm
         with MPFR, so these need the same volatile guard. *)
}

let pr ctx ind fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ind) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let vname ctx (v : Value.t) : string =
  match Hashtbl.find_opt ctx.names v.Value.id with
  | Some n -> n
  | None ->
      let n = Printf.sprintf "v%d" v.Value.id in
      Hashtbl.add ctx.names v.Value.id n;
      n

(* Declare (without initializing) storage for a value. *)
let decl ctx ind (v : Value.t) : unit =
  match v.Value.ty with
  | Ty.Vec (w, e) -> pr ctx ind "%s %s[%d];" (scalar_cty e) (vname ctx v) w
  | t -> pr ctx ind "%s %s;" (scalar_cty t) (vname ctx v)

(* Assign previously-declared [dst] from the local named [src]
   (element-wise for vectors — C arrays are not assignable). *)
let assign ctx ind (dst : Value.t) (src : string) : unit =
  match dst.Value.ty with
  | Ty.Vec (w, _) ->
      pr ctx ind "for (int l = 0; l < %d; l++) %s[l] = %s[l];" w
        (vname ctx dst) src
  | _ -> pr ctx ind "%s = %s;" (vname ctx dst) src

let cmp_op : Op.cmp -> string = function
  | Op.Lt -> "<"
  | Op.Le -> "<="
  | Op.Gt -> ">"
  | Op.Ge -> ">="
  | Op.Eq -> "=="
  | Op.Ne -> "!="

let fbin_expr (k : Op.fbin) (a : string) (b : string) : string =
  match k with
  | Op.FAdd -> Printf.sprintf "(%s + %s)" a b
  | Op.FSub -> Printf.sprintf "(%s - %s)" a b
  | Op.FMul -> Printf.sprintf "(%s * %s)" a b
  | Op.FDiv -> Printf.sprintf "(%s / %s)" a b
  | Op.FMin -> Printf.sprintf "ml_fmin(%s, %s)" a b
  | Op.FMax -> Printf.sprintf "ml_fmax(%s, %s)" a b
  | Op.FRem -> Printf.sprintf "fmod(%s, %s)" a b

let ibin_expr (k : Op.ibin) (a : string) (b : string) : string =
  (* OCaml (/) and (mod) truncate toward zero — exactly C's semantics. *)
  let op =
    match k with
    | Op.IAdd -> "+"
    | Op.ISub -> "-"
    | Op.IMul -> "*"
    | Op.IDiv -> "/"
    | Op.IRem -> "%"
  in
  Printf.sprintf "(%s %s %s)" a op b

let bbin_expr (k : Op.bbin) (a : string) (b : string) : string =
  (* bool-like values are canonical 0/1, so bitwise ops implement the
     (non-short-circuiting, as in Lower) logical connectives *)
  let op = match k with Op.BAnd -> "&" | Op.BOr -> "|" | Op.BXor -> "^" in
  Printf.sprintf "(%s %s %s)" a op b

(* One builtin registry mirror: must agree with Exec.Engine's
   unary_fn/binary_fn tables (same libm entry point, same argument
   order).  Arguments are local names — pure, safe to repeat. *)
let math_expr (name : string) (a : string array) : string =
  match (name, Array.length a) with
  | "square", 1 -> Printf.sprintf "(%s * %s)" a.(0) a.(0)
  | "cube", 1 -> Printf.sprintf "(%s * %s * %s)" a.(0) a.(0) a.(0)
  | ("fabs" | "abs"), 1 -> Printf.sprintf "fabs(%s)" a.(0)
  | ("min" | "fmin"), 2 -> Printf.sprintf "ml_fmin(%s, %s)" a.(0) a.(1)
  | ("max" | "fmax"), 2 -> Printf.sprintf "ml_fmax(%s, %s)" a.(0) a.(1)
  | "fmod", 2 -> Printf.sprintf "fmod(%s, %s)" a.(0) a.(1)
  | (("pow" | "atan2" | "hypot") as f), 2 ->
      Printf.sprintf "%s(%s, %s)" f a.(0) a.(1)
  | ( (( "exp" | "expm1" | "log" | "log1p" | "log10" | "log2" | "sqrt"
       | "cbrt" | "sin" | "cos" | "tan" | "tanh" | "sinh" | "cosh" | "asin"
       | "acos" | "atan" | "floor" | "ceil" | "round" | "trunc" ) as f),
      1 ) ->
      Printf.sprintf "%s(%s)" f a.(0)
  | _ -> unsupported "math builtin %s/%d has no C lowering" name (Array.length a)

let operand_names ctx (o : Op.op) : string array =
  Array.map (vname ctx) o.Op.operands

(* Builtins whose C implementation may legitimately differ from libm by
   1 ULP when the C compiler folds a constant-argument call at compile
   time (GCC/Clang fold through correctly-rounded MPFR; glibc is only
   faithfully rounded).  Exactly-specified operations — arithmetic,
   sqrt, fabs, floor/ceil/trunc/round, fmod, and our ml_fmin/ml_fmax —
   fold bitwise-identically and need no protection. *)
let libm_folds = function
  | "exp" | "expm1" | "log" | "log1p" | "log10" | "log2" | "cbrt" | "sin"
  | "cos" | "tan" | "tanh" | "sinh" | "cosh" | "asin" | "acos" | "atan"
  | "pow" | "atan2" | "hypot" ->
      true
  | _ -> false

let all_operands_const ctx (o : Op.op) : bool =
  Array.length o.Op.operands > 0
  && Array.for_all
       (fun (v : Value.t) -> Hashtbl.mem ctx.consts v.Value.id)
       o.Op.operands

(* Constant along at least one path (which includes fully constant). *)
let is_pconst ctx (v : Value.t) : bool =
  Hashtbl.mem ctx.consts v.Value.id || Hashtbl.mem ctx.pconsts v.Value.id

(* Every operand provably constant along some common path — the
   condition under which a C compiler can fold a libm call over that
   path (splitting the select into a phi and folding the constant
   arm). *)
let all_operands_pconst ctx (o : Op.op) : bool =
  Array.length o.Op.operands > 0 && Array.for_all (is_pconst ctx) o.Op.operands

(* Track what a C compiler's constant propagation could prove: constants
   themselves, pure element-wise ops fed only by constants, and —
   path-wise — selects with a constant arm plus arithmetic over them.
   Region results (For/If), loads and calls stay opaque.  A guarded
   transcendental's result is deliberately NOT marked — the volatile
   read below makes it unprovable, which also stops the guards from
   cascading. *)
let mark_const ctx (o : Op.op) : unit =
  let mark () =
    Array.iter
      (fun (r : Value.t) -> Hashtbl.replace ctx.consts r.Value.id ())
      o.Op.results
  in
  let mark_p () =
    Array.iter
      (fun (r : Value.t) -> Hashtbl.replace ctx.pconsts r.Value.id ())
      o.Op.results
  in
  match o.Op.kind with
  | Op.ConstF _ | Op.ConstI _ | Op.ConstB _ | Op.Iota _ -> mark ()
  | Op.Select ->
      if all_operands_const ctx o then mark ()
      else if
        (* a constant data arm is foldable along the path that takes it,
           whatever the condition or the other arm hold *)
        Array.length o.Op.operands = 3
        && (is_pconst ctx o.Op.operands.(1) || is_pconst ctx o.Op.operands.(2))
      then mark_p ()
  | Op.BinF _ | Op.NegF | Op.BinI _ | Op.BinB _ | Op.NotB | Op.CmpF _
  | Op.CmpI _ | Op.SIToFP | Op.FPToSI | Op.Broadcast | Op.VecExtract _ ->
      if all_operands_const ctx o then mark ()
      else if all_operands_pconst ctx o then mark_p ()
  | Op.Math name ->
      if not (libm_folds name) then
        if all_operands_const ctx o then mark ()
        else if all_operands_pconst ctx o then mark_p ()
  | _ -> ()

(* Element-wise op: scalar result defines a local directly; vector result
   declares an array and fills it with a constant-bound lane loop.
   Scalar operands inside a vector op (none today post-verifier) stay
   unindexed. *)
let emit_ew ctx ind (o : Op.op) (f : string array -> string) : unit =
  let r = o.Op.results.(0) in
  match r.Value.ty with
  | Ty.Vec (w, _) ->
      decl ctx ind r;
      let elems =
        Array.map
          (fun (v : Value.t) ->
            match v.Value.ty with
            | Ty.Vec _ -> vname ctx v ^ "[l]"
            | _ -> vname ctx v)
          o.Op.operands
      in
      pr ctx ind "for (int l = 0; l < %d; l++) %s[l] = %s;" w (vname ctx r)
        (f elems)
  | t ->
      pr ctx ind "%s %s = %s;" (scalar_cty t) (vname ctx r)
        (f (operand_names ctx o))

let rec emit_op ctx ind (o : Op.op) : unit =
  emit_op_kind ctx ind o;
  mark_const ctx o

and emit_op_kind ctx ind (o : Op.op) : unit =
  let a = lazy (operand_names ctx o) in
  let an k = (Lazy.force a).(k) in
  match o.Op.kind with
  | Op.ConstF f -> emit_ew ctx ind o (fun _ -> float_lit f)
  | Op.ConstI n -> emit_ew ctx ind o (fun _ -> Printf.sprintf "INT64_C(%d)" n)
  | Op.ConstB b -> emit_ew ctx ind o (fun _ -> if b then "1" else "0")
  | Op.BinF k -> emit_ew ctx ind o (fun x -> fbin_expr k x.(0) x.(1))
  | Op.NegF -> emit_ew ctx ind o (fun x -> Printf.sprintf "(-%s)" x.(0))
  | Op.BinI k -> emit_ew ctx ind o (fun x -> ibin_expr k x.(0) x.(1))
  | Op.BinB k -> emit_ew ctx ind o (fun x -> bbin_expr k x.(0) x.(1))
  | Op.NotB -> emit_ew ctx ind o (fun x -> Printf.sprintf "(!%s)" x.(0))
  | Op.CmpF c | Op.CmpI c ->
      emit_ew ctx ind o (fun x ->
          Printf.sprintf "(%s %s %s)" x.(0) (cmp_op c) x.(1))
  | Op.Select ->
      emit_ew ctx ind o (fun x ->
          Printf.sprintf "(%s ? %s : %s)" x.(0) x.(1) x.(2))
  | Op.SIToFP -> emit_ew ctx ind o (fun x -> Printf.sprintf "(double)%s" x.(0))
  | Op.FPToSI ->
      (* OCaml int_of_float truncates toward zero, as does the C cast *)
      emit_ew ctx ind o (fun x -> Printf.sprintf "(int64_t)%s" x.(0))
  | Op.Math m when libm_folds m && all_operands_pconst ctx o ->
      (* The C compiler can prove every argument constant — outright, or
         along one arm of a select it is free to split — and would fold
         the call with its own correctly-rounded library (MPFR),
         diverging by 1 ULP from the glibc call the OCaml engines make
         at run time.  Route the first argument through a volatile
         temporary so the call survives to run time.  Post-pipeline IR
         carries no fully-constant such ops (the constant folder already
         ate them with the host libm) — the scalar folder misses
         constant *splats* and constant select arms though, so those
         need this. *)
      let r = o.Op.results.(0) in
      let g = vname ctx r ^ "_cg" in
      let guard x = Array.mapi (fun i e -> if i = 0 then g else e) x in
      (match r.Value.ty with
      | Ty.Vec (w, _) ->
          decl ctx ind r;
          let elems =
            Array.map
              (fun (v : Value.t) ->
                match v.Value.ty with
                | Ty.Vec _ -> vname ctx v ^ "[l]"
                | _ -> vname ctx v)
              o.Op.operands
          in
          pr ctx ind
            "for (int l = 0; l < %d; l++) { volatile double %s = %s; %s[l] \
             = %s; }"
            w g elems.(0) (vname ctx r)
            (math_expr m (guard elems))
      | t ->
          let x = Lazy.force a in
          pr ctx ind "volatile double %s = %s;" g x.(0);
          pr ctx ind "%s %s = %s;" (scalar_cty t) (vname ctx r)
            (math_expr m (guard x)))
  | Op.Math m -> emit_ew ctx ind o (math_expr m)
  | Op.Broadcast ->
      let r = o.Op.results.(0) in
      let w = Ty.width r.Value.ty in
      decl ctx ind r;
      pr ctx ind "for (int l = 0; l < %d; l++) %s[l] = %s;" w (vname ctx r)
        (an 0)
  | Op.VecExtract lane ->
      let r = o.Op.results.(0) in
      pr ctx ind "%s %s = %s[%d];"
        (scalar_cty r.Value.ty)
        (vname ctx r) (an 0) lane
  | Op.VecLoad ->
      let r = o.Op.results.(0) in
      let w = Ty.width r.Value.ty in
      decl ctx ind r;
      pr ctx ind "for (int l = 0; l < %d; l++) %s[l] = %s[%s + l];" w
        (vname ctx r) (an 0) (an 1)
  | Op.VecStore ->
      let w = Ty.width o.Op.operands.(0).Value.ty in
      pr ctx ind "for (int l = 0; l < %d; l++) %s[%s + l] = %s[l];" w (an 1)
        (an 2) (an 0)
  | Op.Gather ->
      let r = o.Op.results.(0) in
      let w = Ty.width r.Value.ty in
      decl ctx ind r;
      pr ctx ind "for (int l = 0; l < %d; l++) %s[l] = %s[%s[l]];" w
        (vname ctx r) (an 0) (an 1)
  | Op.Scatter ->
      let w = Ty.width o.Op.operands.(0).Value.ty in
      pr ctx ind "for (int l = 0; l < %d; l++) %s[%s[l]] = %s[l];" w (an 1)
        (an 2) (an 0)
  | Op.Iota _ ->
      let r = o.Op.results.(0) in
      let w = Ty.width r.Value.ty in
      decl ctx ind r;
      pr ctx ind "for (int l = 0; l < %d; l++) %s[l] = l;" w (vname ctx r)
  | Op.Alloc -> unsupported "memref.alloc has no C lowering"
  | Op.MemLoad ->
      let r = o.Op.results.(0) in
      pr ctx ind "double %s = %s[%s];" (vname ctx r) (an 0) (an 1)
  | Op.MemStore -> pr ctx ind "%s[%s] = %s;" (an 1) (an 2) (an 0)
  | Op.For _ ->
      let lb = an 0 and ub = an 1 and step = an 2 in
      let inits = Array.sub o.Op.operands 3 (Array.length o.Op.operands - 3) in
      let body = o.Op.regions.(0) in
      let iv, iters =
        match body.Op.r_args with
        | iv :: rest -> (iv, Array.of_list rest)
        | [] -> unsupported "scf.for region without induction variable"
      in
      (* results double as the loop-carried accumulators; iter args get
         their own storage so a yield can read old values safely *)
      Array.iteri
        (fun k (res : Value.t) ->
          decl ctx ind res;
          assign ctx ind res (vname ctx inits.(k)))
        o.Op.results;
      let ivn = vname ctx iv in
      pr ctx ind "for (int64_t %s = %s; %s < %s; %s += %s) {" ivn lb ivn ub ivn
        step;
      Array.iteri
        (fun k (arg : Value.t) ->
          decl ctx (ind + 1) arg;
          assign ctx (ind + 1) arg (vname ctx o.Op.results.(k)))
        iters;
      emit_region ctx (ind + 1) body ~on_yield:(fun ys ->
          Array.iteri
            (fun k (y : Value.t) ->
              assign ctx (ind + 1) o.Op.results.(k) (vname ctx y))
            ys);
      pr ctx ind "}"
  | Op.If ->
      let cond = an 0 in
      Array.iter (decl ctx ind) o.Op.results;
      let arm k =
        emit_region ctx (ind + 1)
          o.Op.regions.(k)
          ~on_yield:(fun ys ->
            Array.iteri
              (fun i (y : Value.t) ->
                assign ctx (ind + 1) o.Op.results.(i) (vname ctx y))
              ys)
      in
      pr ctx ind "if (%s) {" cond;
      arm 0;
      if
        Array.length o.Op.regions > 1
        && (o.Op.regions.(1).Op.r_ops <> [] || Array.length o.Op.results > 0)
      then (
        pr ctx ind "} else {";
        arm 1);
      pr ctx ind "}"
  | Op.Yield -> unsupported "stray scf.yield outside a structured op"
  | Op.Return -> unsupported "nested func.return"
  | Op.Call callee ->
      if Array.length o.Op.results > 0 then
        unsupported "call to %s with results" callee;
      if Hashtbl.mem ctx.locals callee then
        pr ctx ind "%s(%s);" (local_fn callee)
          (String.concat ", " (Array.to_list (Lazy.force a)))
      else emit_extern_call ctx ind callee o

and emit_region ctx ind (r : Op.region) ~(on_yield : Value.t array -> unit) :
    unit =
  List.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.Yield -> on_yield o.Op.operands
      | _ -> emit_op ctx ind o)
    r.Op.r_ops

and emit_extern_call ctx ind (callee : string) (o : Op.op) : unit =
  match callee with
  | "lut_interp" | "lut_interp_vec" | "lut_interp_cubic" | "lut_interp_cubic_vec"
    ->
      (* (table, row, x, lo, step, rows, cols); dispatch scalar/vector on
         the lookup operand's actual shape *)
      let a = operand_names ctx o in
      let cubic = callee = "lut_interp_cubic" || callee = "lut_interp_cubic_vec" in
      (match o.Op.operands.(2).Value.ty with
      | Ty.Vec (w, Ty.F64) ->
          pr ctx ind "%s(%s, %s, %s, %d, %s, %s, %s, %s);"
            (if cubic then "lut_cubic_vec" else "lut_linear_vec")
            a.(0) a.(1) a.(2) w a.(3) a.(4) a.(5) a.(6)
      | Ty.F64 ->
          pr ctx ind "%s(%s, %s, %s, %s, %s, %s, %s);"
            (if cubic then "lut_cubic" else "lut_linear")
            a.(0) a.(1) a.(2) a.(3) a.(4) a.(5) a.(6)
      | t -> unsupported "%s lookup operand of type %s" callee (Ty.to_string t))
  | _ -> unsupported "extern %s has no C lowering" callee

(* ------------------------------------------------------------------ *)
(* Prelude: OCaml Float.min/max semantics + Runtime.Lut transcription  *)
(* ------------------------------------------------------------------ *)

let minmax_helpers =
  {|/* OCaml Float.min / Float.max semantics (NaN-propagating, -0. < +0.);
   deliberately NOT C fmin/fmax, which return the non-NaN argument. */
static inline double ml_fmin(double x, double y) {
  if (y > x || (!signbit(y) && signbit(x))) return (y != y) ? y : x;
  return (x != x) ? x : y;
}
static inline double ml_fmax(double x, double y) {
  if (y > x || (!signbit(y) && signbit(x))) return (x != x) ? x : y;
  return (y != y) ? y : x;
}
|}

(* Operation-for-operation transcription of Runtime.Lut.interp_row /
   interp_row_vec (row-major table, vector row buffer column-major by
   lane) and the Catmull-Rom variants.  Index/fraction clamping and the
   evaluation order of the spline polynomial match the OCaml source
   exactly so results are bitwise identical. *)
let lut_linear_helpers =
  {|static void lut_linear(const double *restrict tab, double *restrict row,
                       double x, double lo, double step,
                       int64_t rows, int64_t cols) {
  double pos = (x - lo) / step;
  int64_t idx;
  double frac;
  if (pos <= 0.0) { idx = 0; frac = 0.0; }
  else if (pos >= (double)(rows - 1)) { idx = rows - 2; frac = 1.0; }
  else { idx = (int64_t)floor(pos); frac = pos - (double)idx; }
  const double *r0 = tab + idx * cols;
  const double *r1 = r0 + cols;
  for (int64_t c = 0; c < cols; c++)
    row[c] = r0[c] + frac * (r1[c] - r0[c]);
}

static void lut_linear_vec(const double *restrict tab, double *restrict row,
                           const double *restrict xs, int w,
                           double lo, double step,
                           int64_t rows, int64_t cols) {
  for (int l = 0; l < w; l++) {
    double pos = (xs[l] - lo) / step;
    int64_t idx;
    double frac;
    if (pos <= 0.0) { idx = 0; frac = 0.0; }
    else if (pos >= (double)(rows - 1)) { idx = rows - 2; frac = 1.0; }
    else { idx = (int64_t)floor(pos); frac = pos - (double)idx; }
    const double *r0 = tab + idx * cols;
    const double *r1 = r0 + cols;
    for (int64_t c = 0; c < cols; c++)
      row[c * w + l] = r0[c] + frac * (r1[c] - r0[c]);
  }
}
|}

let lut_cubic_helpers =
  {|static inline void lut_locate_cubic(double pos, int64_t rows,
                                    int64_t *idx, double *u) {
  if (pos <= 1.0) { *idx = 1; *u = ml_fmax(-1.0, pos - 1.0); }
  else if (pos >= (double)(rows - 3)) {
    *idx = rows - 3;
    *u = ml_fmin(2.0, pos - (double)(rows - 3));
  } else {
    *idx = (int64_t)floor(pos);
    *u = pos - (double)*idx;
  }
}

static inline double catmull_rom(double p0, double p1, double p2, double p3,
                                 double u) {
  double a = (-0.5 * p0) + (1.5 * p1) - (1.5 * p2) + (0.5 * p3);
  double b = p0 - (2.5 * p1) + (2.0 * p2) - (0.5 * p3);
  double c = (-0.5 * p0) + (0.5 * p2);
  return p1 + (u * (c + (u * (b + (u * a)))));
}

static void lut_cubic(const double *restrict tab, double *restrict row,
                      double x, double lo, double step,
                      int64_t rows, int64_t cols) {
  if (rows < 4) { lut_linear(tab, row, x, lo, step, rows, cols); return; }
  int64_t idx;
  double u;
  lut_locate_cubic((x - lo) / step, rows, &idx, &u);
  const double *q0 = tab + (idx - 1) * cols;
  const double *q1 = q0 + cols;
  const double *q2 = q1 + cols;
  const double *q3 = q2 + cols;
  for (int64_t c = 0; c < cols; c++)
    row[c] = catmull_rom(q0[c], q1[c], q2[c], q3[c], u);
}

static void lut_cubic_vec(const double *restrict tab, double *restrict row,
                          const double *restrict xs, int w,
                          double lo, double step,
                          int64_t rows, int64_t cols) {
  if (rows < 4) {
    lut_linear_vec(tab, row, xs, w, lo, step, rows, cols);
    return;
  }
  for (int l = 0; l < w; l++) {
    int64_t idx;
    double u;
    lut_locate_cubic((xs[l] - lo) / step, rows, &idx, &u);
    const double *q0 = tab + (idx - 1) * cols;
    const double *q1 = q0 + cols;
    const double *q2 = q1 + cols;
    const double *q3 = q2 + cols;
    for (int64_t c = 0; c < cols; c++)
      row[c * w + l] = catmull_rom(q0[c], q1[c], q2[c], q3[c], u);
  }
}
|}

(* ------------------------------------------------------------------ *)
(* Functions and wrappers                                              *)
(* ------------------------------------------------------------------ *)

let natural_sig ctx (f : Func.func) : string =
  if f.Func.f_results <> [] then
    unsupported "function %s returns values" f.Func.f_name;
  let params =
    List.map
      (fun (p : Value.t) ->
        match p.Value.ty with
        | Ty.Memref -> Printf.sprintf "double *restrict %s" (vname ctx p)
        | (Ty.F64 | Ty.I64 | Ty.I1) as t ->
            Printf.sprintf "%s %s" (scalar_cty t) (vname ctx p)
        | Ty.Vec _ ->
            unsupported "function %s has a vector-typed parameter"
              f.Func.f_name)
      f.Func.f_params
  in
  Printf.sprintf "static void %s(%s)" (local_fn f.Func.f_name)
    (match params with [] -> "void" | ps -> String.concat ", " ps)

let emit_func ctx (f : Func.func) : unit =
  pr ctx 0 "%s {" (natural_sig ctx f);
  List.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.Return ->
          if Array.length o.Op.operands > 0 then
            unsupported "func.return with values in %s" f.Func.f_name
      | Op.Yield -> unsupported "scf.yield at function scope"
      | _ -> emit_op ctx 1 o)
    f.Func.f_body.Op.r_ops;
  pr ctx 0 "}";
  pr ctx 0 ""

(* Packed-ABI wrapper: scalar int-like args from [ia], float args from
   [fa], memrefs from [ma], each class in declaration order.  Must agree
   with Exec.Native.bind's marshalling. *)
let emit_wrapper ctx (f : Func.func) : unit =
  pr ctx 0 "void %s(const int64_t *ia, const double *fa, double *const *ma) {"
    (symbol f.Func.f_name);
  let ki = ref 0 and kf = ref 0 and km = ref 0 in
  let args =
    List.map
      (fun (p : Value.t) ->
        let take k = let i = !k in incr k; i in
        match p.Value.ty with
        | Ty.I64 -> Printf.sprintf "ia[%d]" (take ki)
        | Ty.I1 -> Printf.sprintf "(int)ia[%d]" (take ki)
        | Ty.F64 -> Printf.sprintf "fa[%d]" (take kf)
        | Ty.Memref -> Printf.sprintf "ma[%d]" (take km)
        | Ty.Vec _ ->
            unsupported "function %s has a vector-typed parameter"
              f.Func.f_name)
      f.Func.f_params
  in
  if !ki = 0 then pr ctx 1 "(void)ia;";
  if !kf = 0 then pr ctx 1 "(void)fa;";
  if !km = 0 then pr ctx 1 "(void)ma;";
  pr ctx 1 "%s(%s);" (local_fn f.Func.f_name) (String.concat ", " args);
  pr ctx 0 "}";
  pr ctx 0 ""

let uses_luts (m : Func.modl) : bool * bool =
  let linear = ref false and cubic = ref false in
  List.iter
    (fun (f : Func.func) ->
      Op.iter_region
        (fun o ->
          match o.Op.kind with
          | Op.Call ("lut_interp" | "lut_interp_vec") -> linear := true
          | Op.Call ("lut_interp_cubic" | "lut_interp_cubic_vec") ->
              cubic := true
          | _ -> ())
        f.Func.f_body)
    m.Func.m_funcs;
  (!linear || !cubic, !cubic)

let emit_module ?(banner = []) (m : Func.modl) : string =
  let ctx =
    {
      buf = Buffer.create 8192;
      names = Hashtbl.create 256;
      locals = Hashtbl.create 8;
      consts = Hashtbl.create 64;
      pconsts = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (f : Func.func) -> Hashtbl.replace ctx.locals f.Func.f_name ())
    m.Func.m_funcs;
  pr ctx 0 "/* Generated by the limpetmlir C backend — do not edit. */";
  List.iter
    (fun line ->
      (* a stray comment terminator in a banner line must not break the
         translation unit *)
      let safe =
        String.init (String.length line) (fun i ->
            if line.[i] = '*' && i + 1 < String.length line && line.[i + 1] = '/'
            then '+'
            else line.[i])
      in
      pr ctx 0 "/* %s */" safe)
    banner;
  pr ctx 0 "";
  pr ctx 0 "#include <stdint.h>";
  pr ctx 0 "#include <math.h>";
  pr ctx 0 "";
  Buffer.add_string ctx.buf minmax_helpers;
  Buffer.add_char ctx.buf '\n';
  let any_lut, cubic = uses_luts m in
  if any_lut then (
    Buffer.add_string ctx.buf lut_linear_helpers;
    Buffer.add_char ctx.buf '\n');
  if cubic then (
    Buffer.add_string ctx.buf lut_cubic_helpers;
    Buffer.add_char ctx.buf '\n');
  (* prototypes first so local calls resolve in any order *)
  List.iter (fun f -> pr ctx 0 "%s;" (natural_sig ctx f)) m.Func.m_funcs;
  pr ctx 0 "";
  List.iter (emit_func ctx) m.Func.m_funcs;
  List.iter (emit_wrapper ctx) m.Func.m_funcs;
  Buffer.contents ctx.buf
