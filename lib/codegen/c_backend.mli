(** C backend: pretty-print a lowered kernel module as one self-contained
    C translation unit (paper §5 — the "hand the loop nest to a real
    backend" step, with the system C compiler standing in for LLVM).

    The emitted unit contains, per IR function, a [static] definition
    with the natural parameter list (scalars by value, memrefs as
    [double *restrict]) plus one exported packed-ABI wrapper
    [void limpet_<name>(const int64_t *ia, const double *fa,
    double *const *ma)] that unpacks class-ordered argument arrays
    (I64/I1 params from [ia], F64 params from [fa], Memref params from
    [ma], each in declaration order) — the calling convention
    {!Exec.Native.bind} marshals to.

    Floating-point policy: constants are emitted as hex literals, libm
    names match the interpreter's builtin registry, [fmin]/[fmax] use
    OCaml [Float.min]/[Float.max] semantics (emitted inline), and the
    unit is meant to be compiled with [-ffp-contract=off -fno-fast-math]
    so trajectories stay bitwise-comparable to the OCaml engines.
    A C compiler folds e.g. [tanh(<literal>)] at compile time with its
    own correctly-rounded library (MPFR), which can differ by 1 ULP from
    the glibc call the OCaml engines make at run time — so transcendental
    calls whose arguments are provably compile-time constants — outright
    or along one arm of a select the compiler can split — are emitted
    with one argument routed through a [volatile] temporary, pinning
    evaluation to run time.  Post-pipeline IR rarely carries such ops
    (the scalar constant folder already ate the fully-constant ones,
    using the host libm), but constant {e splats} in unspecialized
    vector kernels and constant select arms do; exactly-specified
    builtins (sqrt, fabs, floor, fmod, …) fold bitwise-identically and
    stay unguarded.

    Aliasing contract: because memref parameters are
    [restrict]-qualified, callers must pass pairwise-distinct buffers —
    the driver ABI (state, externals, params, table/row pairs) already
    does. *)

exception Unsupported of string
(** Raised by {!emit_module} on IR with no C lowering (vector-typed
    function parameters, [memref.alloc], calls with results, unknown
    externs).  Kernels produced by {!Kernel.generate} never trip this;
    it exists so arbitrary modules degrade with a diagnostic instead of
    emitting wrong code. *)

val symbol : string -> string
(** Exported (dlsym-visible) wrapper name for an IR function name:
    ["limpet_" ^ name] with non-identifier characters replaced by [_].
    Shared contract with {!Exec.Native.bind} callers. *)

val emit_module : ?banner:string list -> Ir.Func.modl -> string
(** The complete C translation unit for a module.  [banner] lines are
    embedded as a provenance comment header (model, pipeline id, digest,
    compiler, flags — whatever the caller records). *)
