(** Shared kernel-compile cache.

    Every entry point (CLI, bench harness, examples, the simulation
    driver) used to regenerate kernels from scratch — the bench harness
    even grew its own private memo table.  This module centralizes that:
    one process-wide table memoizing the whole
    parse → analyze → codegen → optimize → verify front half, keyed on

      model name × {!Config.describe} × pass-pipeline id × optimize flag.

    [Config.describe] covers every semantically relevant config field
    (width, layout, LUT mode, math mode, parameter folding, parallel
    marker), and the pipeline id is derived from the pass names of
    {!Passes.Pipeline.standard}, so a future pipeline change invalidates
    old keys rather than serving stale kernels.

    The table is guarded by a mutex so Domain-parallel harness code can
    share it; the cached {!Kernel.t} is immutable after generation (the
    execution engines allocate their own register files per compile), so
    handing the same kernel to several callers is safe. *)

module M = Easyml.Model

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  compile_ms : float;  (** total milliseconds spent on cache misses *)
}

(* Pipeline identity: pass names in order.  Recorded into the key so a
   changed pipeline can never serve kernels optimized by the old one. *)
let pipeline_id : string =
  String.concat ">" (List.map (fun (p : Passes.Pass.t) -> p.name) Passes.Pipeline.standard)

let lock = Mutex.create ()
let table : (string, Kernel.t) Hashtbl.t = Hashtbl.create 64
let hits = ref 0
let misses = ref 0
let evictions = ref 0
let compile_ms = ref 0.0

(* Optional LRU bound.  [last_use] stamps every lookup with a logical
   tick; when a capacity is set, inserts over it evict the
   least-recently-used entry (regeneration on a later miss is always
   safe — kernels are deterministic for a given key). *)
let cap : int option ref = ref None
let tick = ref 0
let last_use : (string, int) Hashtbl.t = Hashtbl.create 64

let touch (k : string) : unit =
  incr tick;
  Hashtbl.replace last_use k !tick

(* Call with [lock] held. *)
let evict_to_capacity () : unit =
  match !cap with
  | None -> ()
  | Some c ->
      while Hashtbl.length table > max 1 c do
        let victim =
          Hashtbl.fold
            (fun k _ acc ->
              let t = Option.value ~default:0 (Hashtbl.find_opt last_use k) in
              match acc with
              | Some (_, t') when t' <= t -> acc
              | _ -> Some (k, t))
            table None
        in
        match victim with
        | None -> ()
        | Some (k, _) ->
            Hashtbl.remove table k;
            Hashtbl.remove last_use k;
            incr evictions;
            Obs.Tracer.count "cache.evict" 1.0
      done

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let key ~(optimize : bool) (cfg : Config.t) (name : string) : string =
  Printf.sprintf "%s|%s|%s|%s" name (Config.describe cfg)
    (if optimize then pipeline_id else "no-opt")
    "v1"

(** [generate_named ?optimize cfg ~name parse] returns the cached kernel
    for [name] under [cfg], calling [parse] (the parse+analyze front end)
    only on a miss.  The generated module is verified once, on the miss. *)
let generate_named ?(optimize = true) (cfg : Config.t) ~(name : string)
    (parse : unit -> M.t) : Kernel.t =
  let k = key ~optimize cfg name in
  match
    locked (fun () ->
        let r = Hashtbl.find_opt table k in
        if r <> None then touch k;
        r)
  with
  | Some g ->
      locked (fun () -> incr hits);
      Obs.Tracer.count "cache.hit" 1.0;
      g
  | None ->
      Obs.Tracer.count "cache.miss" 1.0;
      let t0 = Unix.gettimeofday () in
      let g =
        Obs.Tracer.with_span ("cache.compile:" ^ name) (fun () ->
            let model = parse () in
            let g = Kernel.generate ~optimize cfg model in
            Ir.Verifier.verify_module_exn g.Kernel.modl;
            g)
      in
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      locked (fun () ->
          (* another domain may have raced us to the same key; keep the
             first entry so every caller sees one kernel instance *)
          match Hashtbl.find_opt table k with
          | Some g' ->
              incr hits;
              touch k;
              g'
          | None ->
              incr misses;
              compile_ms := !compile_ms +. ms;
              Hashtbl.replace table k g;
              touch k;
              evict_to_capacity ();
              g)

(** Like {!generate_named} for an already-analyzed model (keyed on
    [model.name]). *)
let generate ?optimize (cfg : Config.t) (model : M.t) : Kernel.t =
  generate_named ?optimize cfg ~name:model.M.name (fun () -> model)

(** Bound the number of resident kernels.  [Some n] evicts down to [n]
    entries LRU-first (and keeps future inserts within [n]); [None]
    removes the bound.  Safe at any point: evicted kernels regenerate on
    their next miss. *)
let set_capacity (c : int option) : unit =
  locked (fun () ->
      (match c with
      | Some n when n < 1 -> invalid_arg "Cache.set_capacity: capacity < 1"
      | _ -> ());
      cap := c;
      evict_to_capacity ())

let stats () : stats =
  locked (fun () ->
      {
        hits = !hits;
        misses = !misses;
        evictions = !evictions;
        compile_ms = !compile_ms;
      })

let reset_stats () : unit =
  locked (fun () ->
      hits := 0;
      misses := 0;
      evictions := 0;
      compile_ms := 0.0)

(** Drop every entry (tests use this to force fresh compiles). *)
let clear () : unit =
  locked (fun () ->
      Hashtbl.reset table;
      Hashtbl.reset last_use;
      hits := 0;
      misses := 0;
      evictions := 0;
      compile_ms := 0.0)

let describe_stats () : string =
  let s = stats () in
  Printf.sprintf "cache: %d hits / %d misses / %d evictions / %.1f ms compiling"
    s.hits s.misses s.evictions s.compile_ms
