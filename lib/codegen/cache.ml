(** Shared kernel-compile cache.

    Every entry point (CLI, bench harness, examples, the simulation
    driver) used to regenerate kernels from scratch — the bench harness
    even grew its own private memo table.  This module centralizes that:
    one process-wide table memoizing the whole
    parse → analyze → codegen → optimize → verify front half, keyed on

      model name × {!Config.describe} × pass-pipeline id × optimize flag.

    [Config.describe] covers every semantically relevant config field
    (width, layout, LUT mode, math mode, parameter folding, parallel
    marker), and the pipeline id is derived from the pass names of
    {!Passes.Pipeline.standard}, so a future pipeline change invalidates
    old keys rather than serving stale kernels.

    The table is guarded by a mutex so Domain-parallel harness code can
    share it; the cached {!Kernel.t} is immutable after generation (the
    execution engines allocate their own register files per compile), so
    handing the same kernel to several callers is safe. *)

module M = Easyml.Model

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  compile_ms : float;  (** total milliseconds spent on cache misses *)
  spec_hits : int;  (** specialized-artifact lookups served from cache *)
  spec_misses : int;  (** specialization runs *)
  spec_ms : float;  (** total milliseconds spent specializing *)
  native_hits : int;  (** compiled shared objects served from cache *)
  native_misses : int;  (** C emissions + toolchain invocations *)
  cc_ms : float;  (** total milliseconds inside the C compiler *)
}

(* Pipeline identity: pass names in order.  Recorded into the key so a
   changed pipeline can never serve kernels optimized by the old one. *)
let pipeline_id : string =
  String.concat ">" (List.map (fun (p : Passes.Pass.t) -> p.name) Passes.Pipeline.standard)

let lock = Mutex.create ()
let table : (string, Kernel.t) Hashtbl.t = Hashtbl.create 64
let hits = ref 0
let misses = ref 0
let evictions = ref 0
let compile_ms = ref 0.0
let spec_hits = ref 0
let spec_misses = ref 0
let spec_ms = ref 0.0
let native_hits = ref 0
let native_misses = ref 0
let cc_ms = ref 0.0

(* Optional LRU bound.  [last_use] stamps every lookup with a logical
   tick; when a capacity is set, inserts over it evict the
   least-recently-used entry (regeneration on a later miss is always
   safe — kernels are deterministic for a given key). *)
let cap : int option ref = ref None
let tick = ref 0
let last_use : (string, int) Hashtbl.t = Hashtbl.create 64

let touch (k : string) : unit =
  incr tick;
  Hashtbl.replace last_use k !tick

(* Call with [lock] held. *)
let evict_to_capacity () : unit =
  match !cap with
  | None -> ()
  | Some c ->
      while Hashtbl.length table > max 1 c do
        let victim =
          Hashtbl.fold
            (fun k _ acc ->
              let t = Option.value ~default:0 (Hashtbl.find_opt last_use k) in
              match acc with
              | Some (_, t') when t' <= t -> acc
              | _ -> Some (k, t))
            table None
        in
        match victim with
        | None -> ()
        | Some (k, _) ->
            Hashtbl.remove table k;
            Hashtbl.remove last_use k;
            incr evictions;
            Obs.Tracer.count "cache.evict" 1.0
      done

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* -- translation validation ------------------------------------------ *)

exception Validation_failed of Analysis.Transval.cert

(* Opt-in switch: the LIMPET_VALIDATE environment variable (1/true/on/
   yes) or {!set_validation}.  When on, every pipeline run behind this
   cache proves each pass application semantics-preserving and records
   the certificates alongside the artifact's key. *)
let validation =
  ref
    (match Sys.getenv_opt "LIMPET_VALIDATE" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let set_validation (b : bool) : unit = locked (fun () -> validation := b)
let validation_enabled () : bool = locked (fun () -> !validation)

(* Certificates per cache key, most recent pass application last.
   Stored even for refuted runs (the raise happens after recording), so
   tooling can dump the full proof log of a failed pipeline. *)
let certs : (string, Analysis.Transval.cert list) Hashtbl.t =
  Hashtbl.create 64

let record_cert (k : string) (c : Analysis.Transval.cert) : unit =
  locked (fun () ->
      Hashtbl.replace certs k
        (c :: Option.value ~default:[] (Hashtbl.find_opt certs k)));
  Obs.Tracer.count
    ("transval." ^ Analysis.Transval.verdict_name c.Analysis.Transval.c_verdict)
    1.0

let certificates () : (string * Analysis.Transval.cert list) list =
  locked (fun () ->
      Hashtbl.fold (fun k cs acc -> (k, List.rev cs) :: acc) certs []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* The per-pass callback handed to {!Passes.Pipeline.optimize}: prove
   input ≡ output, record the certificate under the artifact key, and
   abort the pipeline on a refutation. *)
let validator ?env (k : string) : string -> Ir.Func.modl -> Ir.Func.modl -> unit
    =
 fun pass_name pre post ->
  let cert = Analysis.Transval.check_module ?env ~pass:pass_name pre post in
  record_cert k cert;
  if Analysis.Transval.is_refuted cert then raise (Validation_failed cert)

(* [env] is the run-constant binding environment of a specialized
   artifact, serialized canonically ({!Passes.Specialize.canon_env}:
   sorted bindings, exact float bit patterns) — logically identical envs
   always produce the same key regardless of binding order, and [-0.0]
   never aliases [0.0]. *)
let key ?(env : Passes.Specialize.env = []) ~(optimize : bool)
    (cfg : Config.t) (name : string) : string =
  Printf.sprintf "%s|%s|%s|%s%s" name (Config.describe cfg)
    (if optimize then pipeline_id else "no-opt")
    "v1"
    (match env with
    | [] -> ""
    | env -> "|spec:" ^ Passes.Specialize.canon_env env)

(** [generate_named ?optimize cfg ~name parse] returns the cached kernel
    for [name] under [cfg], calling [parse] (the parse+analyze front end)
    only on a miss.  The generated module is verified once, on the miss. *)
let generate_named ?(optimize = true) (cfg : Config.t) ~(name : string)
    (parse : unit -> M.t) : Kernel.t =
  let k = key ~optimize cfg name in
  match
    locked (fun () ->
        let r = Hashtbl.find_opt table k in
        if r <> None then touch k;
        r)
  with
  | Some g ->
      locked (fun () -> incr hits);
      Obs.Tracer.count "cache.hit" 1.0;
      g
  | None ->
      Obs.Tracer.count "cache.miss" 1.0;
      let t0 = Unix.gettimeofday () in
      let g =
        Obs.Tracer.with_span ("cache.compile:" ^ name) (fun () ->
            let model = parse () in
            let validate =
              if validation_enabled () then Some (validator k) else None
            in
            let g = Kernel.generate ~optimize ?validate cfg model in
            Ir.Verifier.verify_module_exn g.Kernel.modl;
            g)
      in
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      locked (fun () ->
          (* another domain may have raced us to the same key; keep the
             first entry so every caller sees one kernel instance *)
          match Hashtbl.find_opt table k with
          | Some g' ->
              incr hits;
              touch k;
              g'
          | None ->
              incr misses;
              compile_ms := !compile_ms +. ms;
              Hashtbl.replace table k g;
              touch k;
              evict_to_capacity ();
              g)

(** Like {!generate_named} for an already-analyzed model (keyed on
    [model.name]). *)
let generate ?optimize (cfg : Config.t) (model : M.t) : Kernel.t =
  generate_named ?optimize cfg ~name:model.M.name (fun () -> model)

(* Content identity of a kernel module: an MD5 of the printed IR
   ([%.17g] floats round-trip, so distinct constants stay distinct).
   Specialized artifacts key on this rather than on the model name
   alone — a kernel handed to {!specialize} need not have come through
   this cache (tests and tools call {!Kernel.generate} directly), and
   two different modules under one model name must never share
   specializations.  Memoized per module instance (physical equality):
   the common path specializes the same cached kernel repeatedly. *)
let digest_memo : (Ir.Func.modl * string) list ref = ref []

let kernel_digest (m : Ir.Func.modl) : string =
  match
    locked (fun () ->
        List.find_opt (fun (m', _) -> m' == m) !digest_memo)
  with
  | Some (_, d) -> d
  | None ->
      let d = Digest.to_hex (Digest.string (Ir.Printer.module_to_string m)) in
      locked (fun () ->
          digest_memo :=
            (m, d) :: List.filteri (fun i _ -> i < 127) !digest_memo);
      d

(* The kernel ABI positions of the run constants a driver binds for the
   lifetime of a simulation: the compute kernel takes
   [start; stop; ncells_pad; dt; t; …] and every LUT initializer takes
   [table; dt] (see {!Kernel}). *)
let spec_bindings ~(dt : float) ~(ncells_pad : int)
    (fn : Ir.Func.func) : (Ir.Value.t * Passes.Specialize.binding) list =
  let nth k = List.nth_opt fn.Ir.Func.f_params k in
  if String.equal fn.Ir.Func.f_name Kernel.compute_name then
    List.filter_map
      (fun x -> x)
      [
        Option.map (fun v -> (v, Passes.Specialize.BI ncells_pad)) (nth 2);
        Option.map (fun v -> (v, Passes.Specialize.BF dt)) (nth 3);
      ]
  else if String.length fn.Ir.Func.f_name >= 9
          && String.equal (String.sub fn.Ir.Func.f_name 0 9) "lut_init_" then
    match nth 1 with
    | Some v -> [ (v, Passes.Specialize.BF dt) ]
    | None -> []
  else []

(* The same bindings as positional (param index, constant) pairs — the
   binding environment under which {!Analysis.Transval} discharges the
   specializer's composite obligation: source-under-environment must
   equal the specialized output. *)
let tv_env ~(dt : float) ~(ncells_pad : int) (fn : Ir.Func.func) :
    (int * Analysis.Transval.const) list =
  let pos_of (v : Ir.Value.t) : int option =
    let rec go i = function
      | [] -> None
      | (p : Ir.Value.t) :: rest ->
          if Ir.Value.equal p v then Some i else go (i + 1) rest
    in
    go 0 fn.Ir.Func.f_params
  in
  spec_bindings ~dt ~ncells_pad fn
  |> List.filter_map (fun ((v : Ir.Value.t), b) ->
         Option.map
           (fun i ->
             ( i,
               match b with
               | Passes.Specialize.BF x -> Analysis.Transval.KF x
               | Passes.Specialize.BI x -> Analysis.Transval.KI x ))
           (pos_of v))

(** [specialize g ~dt ~ncells_pad] returns [g] with its module partially
    evaluated over the driver's run constants ({!Passes.Specialize}):
    [dt] and the padded cell count become IR constants and the pipeline
    re-runs over them.  Semantically the identity — bitwise-equal
    results on every engine — and the function signatures are unchanged,
    so the returned kernel is a drop-in for [g].  Artifacts are cached
    under the base kernel's key extended with the canonical binding-env
    serialization, so repeated runs and concurrent tenants with the same
    (model, config, dt, cell count) share one compile. *)
let specialize ?(optimize = true) (g : Kernel.t) ~(dt : float)
    ~(ncells_pad : int) : Kernel.t =
  let name = g.Kernel.model.M.name in
  let env =
    [
      ("dt", Passes.Specialize.BF dt);
      ("ncells_pad", Passes.Specialize.BI ncells_pad);
    ]
  in
  let k =
    key ~env ~optimize g.Kernel.cfg name
    ^ "|kd:"
    ^ kernel_digest g.Kernel.modl
  in
  match
    locked (fun () ->
        let r = Hashtbl.find_opt table k in
        if r <> None then touch k;
        r)
  with
  | Some g' ->
      locked (fun () -> incr spec_hits);
      Obs.Tracer.count "specialize.hit" 1.0;
      g'
  | None ->
      Obs.Tracer.count "specialize.miss" 1.0;
      let t0 = Unix.gettimeofday () in
      let g' =
        Obs.Tracer.with_span ("specialize:" ^ name) (fun () ->
            let validating = validation_enabled () in
            let validate = if validating then Some (validator k) else None in
            let modl, st =
              Passes.Specialize.run ~optimize ?validate g.Kernel.modl
                ~bind:(spec_bindings ~dt ~ncells_pad)
            in
            (* composite obligation: the unspecialized kernel, under the
               binding environment, is equivalent to the specialized
               output end to end *)
            if validating then begin
              let cert =
                Analysis.Transval.check_module
                  ~env:(tv_env ~dt ~ncells_pad) ~pass:"specialize"
                  g.Kernel.modl modl
              in
              record_cert k cert;
              if Analysis.Transval.is_refuted cert then
                raise (Validation_failed cert)
            end;
            Ir.Verifier.verify_module_exn modl;
            Obs.Tracer.count ("specialize.folded_ops:" ^ name)
              (float_of_int (max 0 (st.Passes.Specialize.ops_before
                                    - st.Passes.Specialize.ops_after)));
            Obs.Tracer.count ("specialize.splat_folded:" ^ name)
              (float_of_int st.Passes.Specialize.splat_folded);
            { g with Kernel.modl })
      in
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      Obs.Tracer.count "specialize.ms" ms;
      locked (fun () ->
          match Hashtbl.find_opt table k with
          | Some g'' ->
              incr spec_hits;
              touch k;
              g''
          | None ->
              incr spec_misses;
              spec_ms := !spec_ms +. ms;
              Hashtbl.replace table k g';
              touch k;
              evict_to_capacity ();
              g')

(* -- native artifact cache ------------------------------------------- *)

(* Compiled shared objects, keyed on IR content digest × compiler
   identity × flags — never on the model name, so two modules that print
   identically share one .so and a changed pipeline/config/specialization
   (different printed IR) can never serve a stale library.  Entries are
   kept for the whole process: bound closures hold raw function
   pointers, so libraries are never dlclosed (and clear() below leaves
   them loaded for the same reason). *)

type native_entry = {
  ne_lib : Exec.Native.lib;
  ne_params : (string * Ir.Ty.t list) list;  (* per-function signatures *)
}

let native_table : (string, native_entry) Hashtbl.t = Hashtbl.create 16

(* One fresh binding per call: bound closures reuse private marshalling
   buffers, so each driver thread must get its own (exactly like the
   closure-compiler engines allocate per-compile register files). *)
let native_lookup (e : native_entry) (name : string) :
    Exec.Rt.v array -> Exec.Rt.v array =
  match List.assoc_opt name e.ne_params with
  | Some params ->
      Exec.Native.bind e.ne_lib ~symbol:(C_backend.symbol name) ~params
  | None -> invalid_arg ("Cache.native: no such kernel function: " ^ name)

let func_params (m : Ir.Func.modl) : (string * Ir.Ty.t list) list =
  List.map
    (fun (f : Ir.Func.func) ->
      ( f.Ir.Func.f_name,
        List.map (fun (v : Ir.Value.t) -> v.Ir.Value.ty) f.Ir.Func.f_params ))
    m.Ir.Func.m_funcs

(** [native g] returns a symbol-lookup function over [g]'s module
    compiled to machine code by the system C toolchain, or a warning
    diagnostic when that is impossible (no toolchain, IR with no C
    lowering, compiler failure) — callers degrade to an OCaml engine,
    they never crash. *)
let native (g : Kernel.t) :
    (string -> Exec.Rt.v array -> Exec.Rt.v array, Easyml.Diag.t) result =
  match Exec.Native.toolchain () with
  | None ->
      Error
        (Easyml.Diag.make ~code:"native-unavailable"
           "no C compiler found (checked $LIMPET_CC, then cc/gcc/clang on \
            $PATH); falling back to the batched engine")
  | Some tc ->
      let digest = kernel_digest g.Kernel.modl in
      let k =
        Printf.sprintf "native|%s|%s|%s" digest tc.Exec.Native.id
          Exec.Native.flags_id
      in
      (match locked (fun () -> Hashtbl.find_opt native_table k) with
      | Some e ->
          locked (fun () -> incr native_hits);
          Obs.Tracer.count "cache.native_hit" 1.0;
          Ok (native_lookup e)
      | None -> (
          Obs.Tracer.count "cache.native_miss" 1.0;
          try
            let e =
              Obs.Tracer.with_span "compile_c" (fun () ->
                  let banner =
                    [
                      "model:    " ^ g.Kernel.model.M.name;
                      "config:   " ^ Config.describe g.Kernel.cfg;
                      "pipeline: " ^ pipeline_id;
                      "digest:   " ^ digest;
                      "cc:       " ^ tc.Exec.Native.id;
                      "flags:    " ^ Exec.Native.flags_id;
                    ]
                  in
                  let src = C_backend.emit_module ~banner g.Kernel.modl in
                  let stem =
                    Printf.sprintf "k_%s_%x"
                      (String.sub digest 0 12)
                      (Hashtbl.hash tc.Exec.Native.id land 0xffff)
                  in
                  let lib, ms = Exec.Native.compile tc ~stem ~src in
                  locked (fun () -> cc_ms := !cc_ms +. ms);
                  { ne_lib = lib; ne_params = func_params g.Kernel.modl })
            in
            let e =
              locked (fun () ->
                  (* keep a racing domain's entry so everyone shares one
                     library instance *)
                  match Hashtbl.find_opt native_table k with
                  | Some e' ->
                      incr native_hits;
                      e'
                  | None ->
                      incr native_misses;
                      Hashtbl.replace native_table k e;
                      e)
            in
            Ok (native_lookup e)
          with
          | C_backend.Unsupported msg ->
              Error
                (Easyml.Diag.makef ~code:"native-unsupported"
                   "kernel %s has no C lowering (%s); falling back to the \
                    batched engine"
                   g.Kernel.model.M.name msg)
          | Exec.Native.Compile_error { cc; file; status; log } ->
              Error
                (Easyml.Diag.makef ~code:"cc-failed"
                   "%s exited with status %d compiling %s: %s; falling back \
                    to the batched engine"
                   cc status file (String.trim log))))

(** Bound the number of resident kernels.  [Some n] evicts down to [n]
    entries LRU-first (and keeps future inserts within [n]); [None]
    removes the bound.  Safe at any point: evicted kernels regenerate on
    their next miss. *)
let set_capacity (c : int option) : unit =
  locked (fun () ->
      (match c with
      | Some n when n < 1 -> invalid_arg "Cache.set_capacity: capacity < 1"
      | _ -> ());
      cap := c;
      evict_to_capacity ())

let stats () : stats =
  locked (fun () ->
      {
        hits = !hits;
        misses = !misses;
        evictions = !evictions;
        compile_ms = !compile_ms;
        spec_hits = !spec_hits;
        spec_misses = !spec_misses;
        spec_ms = !spec_ms;
        native_hits = !native_hits;
        native_misses = !native_misses;
        cc_ms = !cc_ms;
      })

let reset_stats () : unit =
  locked (fun () ->
      hits := 0;
      misses := 0;
      evictions := 0;
      compile_ms := 0.0;
      spec_hits := 0;
      spec_misses := 0;
      spec_ms := 0.0;
      native_hits := 0;
      native_misses := 0;
      cc_ms := 0.0)

(** Drop every entry (tests use this to force fresh compiles). *)
let clear () : unit =
  locked (fun () ->
      Hashtbl.reset table;
      Hashtbl.reset last_use;
      Hashtbl.reset certs;
      (* native entries survive clear(): bound closures hold raw function
         pointers into the loaded libraries, so they are never unloaded;
         the stats still reset so tests can count fresh compiles *)
      hits := 0;
      misses := 0;
      evictions := 0;
      compile_ms := 0.0;
      spec_hits := 0;
      spec_misses := 0;
      spec_ms := 0.0;
      native_hits := 0;
      native_misses := 0;
      cc_ms := 0.0)

let describe_stats () : string =
  let s = stats () in
  Printf.sprintf
    "cache: %d hits / %d misses / %d evictions / %.1f ms compiling; \
     specialize: %d hits / %d misses / %.1f ms; native: %d hits / %d misses \
     / %.1f ms cc"
    s.hits s.misses s.evictions s.compile_ms s.spec_hits s.spec_misses
    s.spec_ms s.native_hits s.native_misses s.cc_ms
