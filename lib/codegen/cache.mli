(** Shared kernel-compile cache: one process-wide, mutex-guarded memo
    table for the parse → analyze → codegen → optimize → verify front
    half, keyed on model name × {!Config.describe} × pass-pipeline id.
    Cached kernels are immutable; sharing one {!Kernel.t} between callers
    (or domains) is safe because engines allocate their own register
    files per compile. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  compile_ms : float;  (** total milliseconds spent on cache misses *)
  spec_hits : int;  (** specialized-artifact lookups served from cache *)
  spec_misses : int;  (** specialization runs *)
  spec_ms : float;  (** total milliseconds spent specializing *)
  native_hits : int;  (** compiled shared objects served from cache *)
  native_misses : int;  (** C emissions + toolchain invocations *)
  cc_ms : float;  (** total milliseconds inside the C compiler *)
}

val pipeline_id : string
(** Identity of {!Passes.Pipeline.standard} (pass names, in order);
    part of every cache key. *)

(** {2 Translation validation}

    When enabled (the [LIMPET_VALIDATE] environment variable set to
    [1]/[true]/[on]/[yes], or {!set_validation}), every pipeline run
    behind this cache — kernel generation and specialization — proves
    each pass application semantics-preserving with
    {!Analysis.Transval.check_module}, and the specializer additionally
    discharges its composite obligation (source under the binding
    environment ≡ specialized output, pass id ["specialize"]).
    Certificates are recorded per cache key, so cached kernels carry
    their proof provenance. *)

exception Validation_failed of Analysis.Transval.cert
(** Raised from {!generate}/{!generate_named}/{!specialize} when a pass
    application is refuted.  The certificate (including its
    counterexample) is recorded before the raise. *)

val set_validation : bool -> unit
val validation_enabled : unit -> bool

val certificates : unit -> (string * Analysis.Transval.cert list) list
(** All recorded certificates, by cache key (sorted), each key's
    certificates in pipeline order.  Cleared by {!clear}. *)

val generate_named :
  ?optimize:bool -> Config.t -> name:string -> (unit -> Easyml.Model.t) -> Kernel.t
(** Cached kernel for [name] under the config; [parse] runs only on a
    miss.  The generated module is verified on the miss.
    @raise Ir.Verifier errors if the generated module is malformed. *)

val generate : ?optimize:bool -> Config.t -> Easyml.Model.t -> Kernel.t
(** {!generate_named} for an already-analyzed model, keyed on its name. *)

val spec_bindings :
  dt:float ->
  ncells_pad:int ->
  Ir.Func.func ->
  (Ir.Value.t * Passes.Specialize.binding) list
(** The run-constant bindings of one kernel function, by ABI position:
    the compute kernel's [ncells_pad] (param 2) and [dt] (param 3), and
    every LUT initializer's [dt] (param 1).  Other functions bind
    nothing.  This is the [bind] callback {!specialize} hands to
    {!Passes.Specialize.run}. *)

val specialize :
  ?optimize:bool -> Kernel.t -> dt:float -> ncells_pad:int -> Kernel.t
(** Partial evaluation of a cached kernel over the driver's run
    constants ([dt], padded cell count) via {!Passes.Specialize} —
    semantically the identity, bitwise-equal results on every engine,
    unchanged signatures.  Artifacts are memoized under the base
    kernel's key extended with the canonical, order-independent binding
    environment serialization (exact float bit patterns), so logically
    identical envs never miss. *)

val native :
  Kernel.t ->
  (string -> Exec.Rt.v array -> Exec.Rt.v array, Easyml.Diag.t) result
(** Machine-code artifact for a (typically specialized) kernel: emits C
    with {!C_backend.emit_module}, compiles it with the probed system
    toolchain ([Exec.Native]), and memoizes the loaded library under the
    IR content digest × compiler identity × flags — so identical content
    shares one [.so] across models and a changed pipeline, config, or
    binding environment can never serve a stale library.  [Ok lookup]
    returns a fresh binding per call (each driver thread gets private
    marshalling buffers); [Error diag] covers every failure mode — no
    toolchain, IR without a C lowering, compiler failure — so callers
    degrade to an OCaml engine rather than crash.  Libraries are never
    dlclosed (bound closures hold raw function pointers), and survive
    {!clear}. *)

val set_capacity : int option -> unit
(** Bound the number of resident kernels.  [Some n] evicts down to [n]
    entries least-recently-used-first and keeps future inserts within
    [n]; [None] (the default) removes the bound.  Evicted kernels simply
    regenerate on their next miss.
    @raise Invalid_argument on [Some n] with [n < 1]. *)

val stats : unit -> stats
val reset_stats : unit -> unit

val clear : unit -> unit
(** Drop all entries and zero the statistics. *)

val describe_stats : unit -> string
(** One-line [cache: H hits / M misses / E evictions / C ms compiling]
    summary. *)
