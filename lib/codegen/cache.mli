(** Shared kernel-compile cache: one process-wide, mutex-guarded memo
    table for the parse → analyze → codegen → optimize → verify front
    half, keyed on model name × {!Config.describe} × pass-pipeline id.
    Cached kernels are immutable; sharing one {!Kernel.t} between callers
    (or domains) is safe because engines allocate their own register
    files per compile. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  compile_ms : float;  (** total milliseconds spent on cache misses *)
}

val pipeline_id : string
(** Identity of {!Passes.Pipeline.standard} (pass names, in order);
    part of every cache key. *)

val generate_named :
  ?optimize:bool -> Config.t -> name:string -> (unit -> Easyml.Model.t) -> Kernel.t
(** Cached kernel for [name] under the config; [parse] runs only on a
    miss.  The generated module is verified on the miss.
    @raise Ir.Verifier errors if the generated module is malformed. *)

val generate : ?optimize:bool -> Config.t -> Easyml.Model.t -> Kernel.t
(** {!generate_named} for an already-analyzed model, keyed on its name. *)

val set_capacity : int option -> unit
(** Bound the number of resident kernels.  [Some n] evicts down to [n]
    entries least-recently-used-first and keeps future inserts within
    [n]; [None] (the default) removes the bound.  Evicted kernels simply
    regenerate on their next miss.
    @raise Invalid_argument on [Some n] with [n < 1]. *)

val stats : unit -> stats
val reset_stats : unit -> unit

val clear : unit -> unit
(** Drop all entries and zero the statistics. *)

val describe_stats : unit -> string
(** One-line [cache: H hits / M misses / E evictions / C ms compiling]
    summary. *)
