(** Code-generation configuration.

    [width = 1] produces the scalar baseline (openCARP's limpetC++
    analogue); widths 2/4/8 correspond to the paper's SSE / AVX2 / AVX-512
    experiments.  [scalar_math] models the icc auto-vectorizer of §5, which
    vectorizes arithmetic but serializes math-library calls and uses
    gathers; it changes only the machine-model cost, not semantics. *)

type t = {
  width : int;  (** vector width in doubles: 1, 2, 4 or 8 *)
  layout : Runtime.Layout.t;  (** cell-state data layout *)
  use_lut : bool;  (** honour [.lookup] markups *)
  lut_spline : bool;
      (** cubic Catmull-Rom interpolation instead of linear (the paper's
          section 7 future-work item); ~4x the per-column arithmetic for
          O(h^4) accuracy *)
  fold_params : bool;  (** preprocessor parameter folding *)
  parallel : bool;  (** mark the cell loop parallel (omp analogue) *)
  scalar_math : bool;  (** cost-model flag: math calls not SVML-vectorized *)
  tile : int;
      (** batched-engine tile size in vector blocks; [0] (the default)
          lets the engine size the tile so the coalesced register file
          fits L1.  Execution-relevant (the batched engine specializes
          its tile loops on it), so it participates in {!describe} and
          therefore in the compile-cache key. *)
}

(** openCARP baseline: scalar code, AoS layout, scalar LUT interpolation. *)
let baseline = {
  width = 1;
  layout = Runtime.Layout.AoS;
  use_lut = true;
  lut_spline = false;
  fold_params = true;
  parallel = true;
  scalar_math = true;
  tile = 0;
}

(** limpetMLIR at a given vector width: AoSoA layout (the data-layout
    transformation), vectorized LUT interpolation, SVML math. *)
let mlir ~(width : int) = {
  width;
  layout = Runtime.Layout.AoSoA width;
  use_lut = true;
  lut_spline = false;
  fold_params = true;
  parallel = true;
  scalar_math = false;
  tile = 0;
}

(** The icc [omp simd] comparison point of §5: vector arithmetic but AoS
    gathers, scalar LUT, serialized math calls. *)
let autovec ~(width : int) = {
  width;
  layout = Runtime.Layout.AoS;
  use_lut = true;
  lut_spline = false;
  fold_params = true;
  parallel = true;
  scalar_math = true;
  tile = 0;
}

let arch_name (c : t) : string =
  match c.width with
  | 1 -> "scalar"
  | 2 -> "sse"
  | 4 -> "avx2"
  | 8 -> "avx512"
  | w -> Printf.sprintf "vec%d" w

(* Covers every semantically relevant field — the compile cache keys on
   this string, so omitting a field here would alias distinct kernels
   (audited against the field list above: width+layout via arch/layout,
   use_lut/lut_spline, scalar_math, fold_params, parallel, tile).
   Default fold/parallel/tile settings print nothing, keeping the common
   labels short and stable. *)
let describe (c : t) : string =
  Printf.sprintf "%s/%s%s%s%s%s%s" (arch_name c)
    (Runtime.Layout.name c.layout)
    (if c.use_lut then (if c.lut_spline then "+lutc" else "+lut") else "-lut")
    (if c.scalar_math then "-svml" else "+svml")
    (if c.fold_params then "" else "+params")
    (if c.parallel then "" else "-seq")
    (if c.tile = 0 then "" else Printf.sprintf "+tile%d" c.tile)
