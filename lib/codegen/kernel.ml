(** Kernel generation: analyzed model → IR module (paper §3.3).

    Generates, per model and configuration:
    - [compute]: the per-timestep kernel. A (parallel) loop over cells that
      loads external and state values, interpolates lookup tables, evaluates
      the intermediate definitions and the per-state integrator updates, and
      stores everything back — the MLIR analogue of Listing 2/3;
    - [lut_init_<var>]: one table-filling function per [.lookup] markup,
      evaluating every tabulated cone on the grid.

    The vector configuration emits vector-typed ops throughout: contiguous
    [vector.load]/[vector.store] when the data layout allows (AoSoA,
    externals), [vector.gather]/[vector.scatter] otherwise (AoS state), and
    the vectorized LUT interpolation call of §3.4.2. *)

open Ir
module A = Easyml.Ast
module M = Easyml.Model
module LC = Easyml.Lut_cones

type lut_plan = LC.t

type t = {
  modl : Func.modl;
  cfg : Config.t;
  model : M.t;
  nvars : int;
  state_index : (string * int) list;  (** state name → slot in sv buffer *)
  ext_order : string list;  (** order of external memref parameters *)
  param_order : string list;  (** parameter buffer order when not folded *)
  lut_plans : lut_plan list;  (** order of the (table, row) parameter pairs *)
  updates : (string * A.expr) list;  (** per-state update exprs (post-LUT) *)
  assigns : (string * A.expr) list;  (** output definitions (post-LUT) *)
}

let compute_name = "compute"
let lut_init_name (spec : M.lut_spec) = "lut_init_" ^ spec.M.lut_var

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

let plan_luts (cfg : Config.t) (model : M.t)
    (updates : (string * A.expr) list) :
    lut_plan list * (string * A.expr) list * (string * A.expr) list =
  if not cfg.Config.use_lut then ([], updates, model.M.assigns)
  else
    let all_exprs =
      List.map snd model.M.assigns @ List.map snd updates
    in
    let plans = List.map (fun spec -> LC.plan spec all_exprs) model.M.luts in
    let rewrite_all e = List.fold_left (fun e p -> LC.rewrite p e) e plans in
    let updates = List.map (fun (x, e) -> (x, rewrite_all e)) updates in
    let assigns =
      List.map (fun (x, e) -> (x, rewrite_all e)) model.M.assigns
    in
    (plans, updates, assigns)

(* ------------------------------------------------------------------ *)
(* compute kernel                                                      *)
(* ------------------------------------------------------------------ *)

(* Parameter list of [compute]:
     start, stop, ncells_pad : i64; dt, t : f64; sv : memref;
     one memref per external (in model order);
     params : memref (only when parameters are not folded);
     (table, row) : memref pair per lookup table. *)
let compute_param_tys (model : M.t) ~(folded : bool) (nluts : int) : Ty.t list =
  [ Ty.I64; Ty.I64; Ty.I64; Ty.F64; Ty.F64; Ty.Memref ]
  @ List.map (fun _ -> Ty.Memref) model.M.externals
  @ (if folded then [] else [ Ty.Memref ])
  @ List.concat_map (fun _ -> [ Ty.Memref; Ty.Memref ]) (List.init nluts Fun.id)

(* Address of state variable [k] for the scalar cell index [iv]. *)
let state_addr (b : Builder.t) (cfg : Config.t) ~(nvars : int)
    ~(ncells_pad : Value.t) ~(iv : Value.t) ~(k : int) : Value.t =
  match cfg.Config.layout with
  | Runtime.Layout.AoS ->
      Builder.addi b (Builder.muli b iv (Builder.consti b nvars)) (Builder.consti b k)
  | Runtime.Layout.SoA ->
      Builder.addi b (Builder.muli b (Builder.consti b k) ncells_pad) iv
  | Runtime.Layout.AoSoA w ->
      (* (iv / w) * (nvars*w) + k*w + iv mod w *)
      let wv = Builder.consti b w in
      let blk = Builder.muli b (Builder.divi b iv wv) (Builder.consti b (nvars * w)) in
      let off = Builder.addi b (Builder.consti b (k * w)) (Builder.remi b iv wv) in
      Builder.addi b blk off

(* Load/store state variable [k] at vector width.  The cell index [iv] is
   aligned to the width in the vector configuration (the driver aligns
   chunk boundaries). *)
let load_state (b : Builder.t) (cfg : Config.t) ~(nvars : int)
    ~(ncells_pad : Value.t) ~(sv : Value.t) ~(iv : Value.t) ~(k : int) :
    Value.t =
  let w = cfg.Config.width in
  if w = 1 then
    Builder.load b ~mem:sv ~idx:(state_addr b cfg ~nvars ~ncells_pad ~iv ~k)
  else if Runtime.Layout.contiguous cfg.layout ~w then
    Builder.vec_load b ~width:w ~mem:sv
      ~idx:(state_addr b cfg ~nvars ~ncells_pad ~iv ~k)
  else
    (* AoS gather: indices base + l*nvars *)
    let base = state_addr b cfg ~nvars ~ncells_pad ~iv ~k in
    let lanes = Builder.iota b ~width:w in
    let strided =
      Builder.muli b lanes
        (Builder.broadcast b ~width:w (Builder.consti b (Runtime.Layout.cell_stride cfg.layout ~nvars)))
    in
    let idxs = Builder.addi b (Builder.broadcast b ~width:w base) strided in
    Builder.gather b ~mem:sv ~idxs

let store_state (b : Builder.t) (cfg : Config.t) ~(nvars : int)
    ~(ncells_pad : Value.t) ~(sv : Value.t) ~(iv : Value.t) ~(k : int)
    (x : Value.t) : unit =
  let w = cfg.Config.width in
  if w = 1 then
    Builder.store b x ~mem:sv ~idx:(state_addr b cfg ~nvars ~ncells_pad ~iv ~k)
  else if Runtime.Layout.contiguous cfg.layout ~w then
    Builder.vec_store b ~vec:x ~mem:sv
      ~idx:(state_addr b cfg ~nvars ~ncells_pad ~iv ~k)
  else
    let base = state_addr b cfg ~nvars ~ncells_pad ~iv ~k in
    let lanes = Builder.iota b ~width:w in
    let strided =
      Builder.muli b lanes
        (Builder.broadcast b ~width:w (Builder.consti b (Runtime.Layout.cell_stride cfg.layout ~nvars)))
    in
    let idxs = Builder.addi b (Builder.broadcast b ~width:w base) strided in
    Builder.scatter b ~vec:x ~mem:sv ~idxs

let gen_compute (ctx : Builder.ctx) (modl : Func.modl) (cfg : Config.t)
    (model : M.t) ~(state_index : (string * int) list)
    ~(param_order : string list) ~(lut_plans : lut_plan list)
    ~(updates : (string * A.expr) list) ~(assigns : (string * A.expr) list) :
    Func.func =
  let w = cfg.Config.width in
  let nvars = List.length state_index in
  let folded = cfg.Config.fold_params in
  let param_tys = compute_param_tys model ~folded (List.length lut_plans) in
  Builder.func ctx ~name:compute_name ~params:param_tys ~results:[]
    (fun b args ->
      let start, stop, ncells_pad, dt, t, sv, rest =
        match args with
        | a :: b' :: c :: d :: e :: f :: r -> (a, b', c, d, e, f, r)
        | _ -> assert false
      in
      let next = ref rest in
      let take () =
        match !next with
        | x :: r ->
            next := r;
            x
        | [] -> assert false
      in
      let ext_mems =
        List.map (fun (e : M.ext_var) -> (e.M.ext_name, take ())) model.M.externals
      in
      let pbuf = if folded then None else Some (take ()) in
      let luts =
        List.map
          (fun plan ->
            let table = take () and row = take () in
            (plan, table, row))
          lut_plans
      in
      let step = Builder.consti b w in
      let _ =
        Builder.for_ b ~parallel:cfg.Config.parallel ~lb:start ~ub:stop ~step
          ~inits:[] (fun ~iv ~iters:_ ->
            (* ---- loads -------------------------------------------- *)
            let load_ext mem =
              if w = 1 then Builder.load b ~mem ~idx:iv
              else Builder.vec_load b ~width:w ~mem ~idx:iv
            in
            let ext_vals =
              List.map (fun (name, mem) -> (name, load_ext mem)) ext_mems
            in
            let state_vals =
              List.map
                (fun (name, k) ->
                  (name, load_state b cfg ~nvars ~ncells_pad ~sv ~iv ~k))
                state_index
            in
            let param_vals =
              match pbuf with
              | None -> []
              | Some mem ->
                  List.mapi
                    (fun k name ->
                      let idx = Builder.consti b k in
                      let v = Builder.load b ~mem ~idx in
                      (name, Builder.broadcast b ~width:w v))
                    param_order
            in
            let dt_v = Builder.broadcast b ~width:w dt in
            let t_v = Builder.broadcast b ~width:w t in
            let base_bindings =
              [ ("dt", dt_v); ("t", t_v) ] @ ext_vals @ state_vals @ param_vals
            in
            (* ---- lookup tables ------------------------------------ *)
            let lut_bindings =
              List.concat_map
                (fun ((plan : lut_plan), table, row) ->
                  let spec = plan.LC.spec in
                  let x =
                    match List.assoc_opt spec.M.lut_var base_bindings with
                    | Some v -> v
                    | None ->
                        Lower.fail "lookup variable %s is not loaded"
                          spec.M.lut_var
                  in
                  let lo = Builder.constf b spec.M.lut_lo in
                  let stepf = Builder.constf b spec.M.lut_step in
                  let rows = Builder.consti b (M.lut_rows spec) in
                  let cols = Builder.consti b (LC.n_columns plan) in
                  let callee =
                    match (w, cfg.Config.lut_spline) with
                    | 1, false -> "lut_interp"
                    | 1, true -> "lut_interp_cubic"
                    | _, false -> "lut_interp_vec"
                    | _, true -> "lut_interp_cubic_vec"
                  in
                  let _ =
                    Builder.call b modl callee
                      [ table; row; x; lo; stepf; rows; cols ]
                  in
                  List.map
                    (fun (col : LC.column) ->
                      let name = LC.column_var spec col.LC.col_index in
                      let v =
                        if w = 1 then
                          Builder.load b ~mem:row
                            ~idx:(Builder.consti b col.LC.col_index)
                        else
                          Builder.vec_load b ~width:w ~mem:row
                            ~idx:(Builder.consti b (col.LC.col_index * w))
                      in
                      (name, v))
                    plan.LC.columns)
                luts
            in
            let env =
              Lower.make_env ~b ~width:w (base_bindings @ lut_bindings)
            in
            (* ---- intermediate/output definitions ------------------ *)
            let env =
              List.fold_left
                (fun env (name, e) ->
                  let v = Lower.lower_num env e in
                  Lower.bind env [ (name, v) ])
                env assigns
            in
            (* ---- integrator updates (no stores yet: Listing 2 keeps
               all new values in temporaries until the end) ----------- *)
            let new_states =
              List.map
                (fun (name, e) -> (name, Lower.lower_num env e))
                updates
            in
            (* ---- stores ------------------------------------------- *)
            List.iter
              (fun (name, k) ->
                match List.assoc_opt name new_states with
                | Some v -> store_state b cfg ~nvars ~ncells_pad ~sv ~iv ~k v
                | None -> ())
              state_index;
            List.iter
              (fun (name, mem) ->
                let is_out =
                  match M.find_ext model name with
                  | Some e -> e.M.ext_assigned
                  | None -> false
                in
                if is_out then
                  match env.Lower.lookup name with
                  | Some v ->
                      if w = 1 then Builder.store b v ~mem ~idx:iv
                      else Builder.vec_store b ~vec:v ~mem ~idx:iv
                  | None -> ())
              ext_mems;
            [])
      in
      Builder.ret b [])

(* ------------------------------------------------------------------ *)
(* lookup-table initializers                                           *)
(* ------------------------------------------------------------------ *)

let gen_lut_init (ctx : Builder.ctx) (plan : lut_plan) : Func.func =
  let spec = plan.LC.spec in
  let rows = M.lut_rows spec in
  let cols = LC.n_columns plan in
  Builder.func ctx
    ~name:(lut_init_name spec)
    ~params:[ Ty.Memref; Ty.F64 ] ~results:[]
    (fun b args ->
      let table, dt =
        match args with [ a; b' ] -> (a, b') | _ -> assert false
      in
      let lb = Builder.consti b 0 in
      let ub = Builder.consti b rows in
      let step = Builder.consti b 1 in
      let _ =
        Builder.for_ b ~lb ~ub ~step ~inits:[] (fun ~iv ~iters:_ ->
            let r_f = Builder.sitofp b iv in
            let x =
              Builder.addf b
                (Builder.constf b spec.M.lut_lo)
                (Builder.mulf b r_f (Builder.constf b spec.M.lut_step))
            in
            let env =
              Lower.make_env ~b ~width:1
                [ (spec.M.lut_var, x); ("dt", dt) ]
            in
            let rowbase = Builder.muli b iv (Builder.consti b cols) in
            List.iter
              (fun (col : LC.column) ->
                let v = Lower.lower_num env col.LC.col_expr in
                let idx = Builder.addi b rowbase (Builder.consti b col.LC.col_index) in
                Builder.store b v ~mem:table ~idx)
              plan.LC.columns;
            [])
      in
      Builder.ret b [])

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let generate ?(optimize = true)
    ?(validate : (string -> Func.modl -> Func.modl -> unit) option)
    (cfg : Config.t) (model : M.t) : t =
  let ctx = Builder.create_ctx () in
  let sanitized =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> c
        | _ -> '_')
      (Config.describe cfg)
  in
  let modl = Func.create_module (model.M.name ^ "_" ^ sanitized) in
  List.iter (Func.declare_extern modl)
    (Runtime.Lut.extern_sigs ~width:(max cfg.Config.width 2));
  let state_index =
    List.mapi (fun k (sv : M.state_var) -> (sv.M.sv_name, k)) model.M.states
  in
  let param_order = List.map fst model.M.params in
  let updates =
    List.map
      (fun (sv : M.state_var) -> (sv.M.sv_name, Integrators.update_expr sv))
      model.M.states
  in
  let lut_plans, updates, assigns = plan_luts cfg model updates in
  List.iter (fun p -> Func.add_func modl (gen_lut_init ctx p)) lut_plans;
  Func.add_func modl
    (gen_compute ctx modl cfg model ~state_index ~param_order ~lut_plans
       ~updates ~assigns);
  if optimize then Passes.Pipeline.optimize ?validate modl;
  {
    modl;
    cfg;
    model;
    nvars = List.length state_index;
    state_index;
    ext_order = List.map (fun (e : M.ext_var) -> e.M.ext_name) model.M.externals;
    param_order = (if cfg.Config.fold_params then [] else param_order);
    lut_plans;
    updates;
    assigns;
  }
