(** Compiler diagnostics with source locations and severities.

    Shared by the semantic analyzer ({!Sema}) and the lint / check tooling,
    so warnings print uniformly as [file:line:col: severity: message]
    whether they surface during [limpetmlir check] or during compilation. *)

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

(** Stable severity order: [Error] ranks highest. *)
let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

type t = {
  sev : severity;
  loc : Loc.t;  (** {!Loc.none} for model-level diagnostics *)
  code : string;  (** stable kebab-case identifier, e.g. ["missing-init"] *)
  message : string;
}

let make ?(sev = Warning) ?(loc = Loc.none) ~code message =
  { sev; loc; code; message }

let makef ?sev ?loc ~code fmt =
  Fmt.kstr (fun message -> make ?sev ?loc ~code message) fmt

let is_error (d : t) = d.sev = Error

(** [pp ~file] prints GCC-style: [file:line:col: severity: message [code]].
    Diagnostics at {!Loc.none} omit the position. *)
let pp ~(file : string) ppf (d : t) =
  if d.loc = Loc.none then
    Fmt.pf ppf "%s: %s: %s [%s]" file (severity_name d.sev) d.message d.code
  else
    Fmt.pf ppf "%s:%d:%d: %s: %s [%s]" file d.loc.Loc.line d.loc.Loc.col
      (severity_name d.sev) d.message d.code

let to_string ~file (d : t) = Fmt.str "%a" (pp ~file) d

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** One JSON object per diagnostic, for [--format=json] consumers. *)
let to_json ~(file : string) (d : t) : string =
  Printf.sprintf
    "{\"file\": \"%s\", \"line\": %d, \"col\": %d, \"severity\": \"%s\", \
     \"code\": \"%s\", \"message\": \"%s\"}"
    (json_escape file) d.loc.Loc.line d.loc.Loc.col (severity_name d.sev)
    d.code (json_escape d.message)
