(** Compiler diagnostics with source locations and severities.

    Shared by the semantic analyzer ({!Sema}) and the lint / check tooling,
    so warnings print uniformly as [file:line:col: severity: message]
    whether they surface during [limpetmlir check] or during compilation. *)

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

(** Stable severity order: [Error] ranks highest. *)
let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

type t = {
  sev : severity;
  loc : Loc.t;  (** {!Loc.none} for model-level diagnostics *)
  code : string;  (** stable kebab-case identifier, e.g. ["missing-init"] *)
  message : string;
  pass : string option;
      (** compiler pass responsible, for translation-validation findings;
          [None] for source-level diagnostics *)
}

let make ?(sev = Warning) ?(loc = Loc.none) ?pass ~code message =
  { sev; loc; code; message; pass }

let makef ?sev ?loc ?pass ~code fmt =
  Fmt.kstr (fun message -> make ?sev ?loc ?pass ~code message) fmt

let is_error (d : t) = d.sev = Error

(** [pp ~file] prints GCC-style: [file:line:col: severity: message [code]].
    Diagnostics at {!Loc.none} omit the position. *)
let pp ~(file : string) ppf (d : t) =
  let tag = match d.pass with None -> d.code | Some p -> d.code ^ " @" ^ p in
  if d.loc = Loc.none then
    Fmt.pf ppf "%s: %s: %s [%s]" file (severity_name d.sev) d.message tag
  else
    Fmt.pf ppf "%s:%d:%d: %s: %s [%s]" file d.loc.Loc.line d.loc.Loc.col
      (severity_name d.sev) d.message tag

let to_string ~file (d : t) = Fmt.str "%a" (pp ~file) d

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** One JSON object per diagnostic, for [--format=json] consumers.  The
    schema is shared by lint findings and translation-validation findings:
    every object carries a [pass] field, [null] when no compiler pass is
    responsible. *)
let to_json ~(file : string) (d : t) : string =
  let pass =
    match d.pass with
    | None -> "null"
    | Some p -> Printf.sprintf "\"%s\"" (json_escape p)
  in
  Printf.sprintf
    "{\"file\": \"%s\", \"line\": %d, \"col\": %d, \"severity\": \"%s\", \
     \"code\": \"%s\", \"pass\": %s, \"message\": \"%s\"}"
    (json_escape file) d.loc.Loc.line d.loc.Loc.col (severity_name d.sev)
    d.code pass (json_escape d.message)
