(** Analyzed ionic-model representation.

    This is the output of {!Sema.analyze}: markups resolved, parameters
    folded, conditionals if-converted, definitions topologically ordered and
    single-assignment.  Code generators consume this form. *)

type integ = FE | RK2 | RK4 | RushLarsen | Sundnes | MarkovBE

let integ_of_string = function
  | "fe" -> Some FE
  | "rk2" -> Some RK2
  | "rk4" -> Some RK4
  | "rush_larsen" -> Some RushLarsen
  | "sundnes" -> Some Sundnes
  | "markov_be" -> Some MarkovBE
  | _ -> None

let integ_name = function
  | FE -> "fe"
  | RK2 -> "rk2"
  | RK4 -> "rk4"
  | RushLarsen -> "rush_larsen"
  | Sundnes -> "sundnes"
  | MarkovBE -> "markov_be"

type state_var = {
  sv_name : string;
  sv_init : float;
  sv_diff : Ast.expr;
      (** derivative expression; references states, externals, assigns, dt, t *)
  sv_method : integ;
  sv_affine : Linearity.t option;
      (** affine decomposition [diff = a + b*sv], present iff the method
          requires it (Rush–Larsen / Sundnes) and extraction succeeded *)
}

type ext_var = {
  ext_name : string;
  ext_init : float;
  ext_assigned : bool;  (** true for outputs such as Iion *)
}

type lut_spec = {
  lut_var : string;
  lut_lo : float;
  lut_hi : float;
  lut_step : float;
}

let lut_rows (l : lut_spec) : int =
  int_of_float (Float.round ((l.lut_hi -. l.lut_lo) /. l.lut_step)) + 1

type t = {
  name : string;
  params : (string * float) list;  (** folded parameter values, for reporting *)
  externals : ext_var list;
  states : state_var list;
  assigns : (string * Ast.expr) list;
      (** intermediate and output definitions in topological order *)
  luts : lut_spec list;
  warnings : Diag.t list;
      (** analysis diagnostics (silently-degraded methods, defaulted inits,
          unused parameters) with source locations and severities *)
  locs : (string * Loc.t) list;
      (** best-known definition site per name (states point at their
          [diff_] equation, lookup specs at the markup) — consumed by the
          lint pass for located diagnostics *)
}

(** Messages of the accumulated diagnostics, for quick assertions. *)
let warning_strings (m : t) : string list =
  List.map (fun (d : Diag.t) -> d.Diag.message) m.warnings

let find_loc (m : t) (name : string) : Loc.t =
  Option.value ~default:Loc.none (List.assoc_opt name m.locs)

let find_state (m : t) (name : string) : state_var option =
  List.find_opt (fun s -> String.equal s.sv_name name) m.states

let find_ext (m : t) (name : string) : ext_var option =
  List.find_opt (fun e -> String.equal e.ext_name name) m.externals

let is_state (m : t) name = Option.is_some (find_state m name)
let is_ext (m : t) name = Option.is_some (find_ext m name)
let n_states (m : t) = List.length m.states

(** Names an expression may legitimately reference besides definitions:
    implicit simulation variables. *)
let implicit_vars = [ "dt"; "t" ]

let pp ppf (m : t) =
  Fmt.pf ppf "@[<v>model %s@," m.name;
  Fmt.pf ppf "  params: %a@,"
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string float))
    m.params;
  Fmt.pf ppf "  externals: %a@,"
    Fmt.(list ~sep:(any ", ") string)
    (List.map
       (fun e -> if e.ext_assigned then e.ext_name ^ "(out)" else e.ext_name)
       m.externals);
  List.iter
    (fun s ->
      Fmt.pf ppf "  state %s init=%g method=%s diff=%a@," s.sv_name s.sv_init
        (integ_name s.sv_method) Ast.pp_expr s.sv_diff)
    m.states;
  List.iter (fun (x, e) -> Fmt.pf ppf "  %s = %a@," x Ast.pp_expr e) m.assigns;
  List.iter
    (fun l ->
      Fmt.pf ppf "  lookup %s in [%g, %g] step %g (%d rows)@," l.lut_var
        l.lut_lo l.lut_hi l.lut_step (lut_rows l))
    m.luts;
  Fmt.pf ppf "@]"
