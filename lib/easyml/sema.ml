(** Semantic analysis: EasyML program → {!Model.t}.

    Responsibilities:
    - resolve markups (external / param / lookup / method / ...);
    - run the compile-time preprocessor (parameter folding, §3.2 of the
      paper);
    - if-convert conditional statements into ternary merges (required for
      SIMD-friendly straight-line kernels);
    - recognize [diff_X] / [X_init] definitions and build state variables;
    - inline intermediate definitions into derivative expressions so that
      integration methods can re-evaluate f with a substituted state (the
      rk2 / sundnes / markov_be lowering substitutes the state variable);
    - extract affine decompositions for Rush–Larsen / Sundnes gates, falling
      back to forward Euler with a warning when the derivative is not affine
      (openCARP behaves the same way);
    - topologically order the remaining output definitions and prune the
      ones made dead by inlining. *)

exception Error of string

let errf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type options = {
  fold_params : bool;
      (** replace parameters by literals (the preprocessor); disabling this
          keeps them as runtime loads — used by the preprocessor ablation *)
}

let default_options = { fold_params = true }

module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Pass A: collect markups and raw definitions, if-converting          *)
(* ------------------------------------------------------------------ *)

type raw = {
  mutable markups : (Ast.markup * Loc.t) list SMap.t;
  mutable defs : (string * Ast.expr * Loc.t) list;  (* reverse program order *)
  mutable def_names : SSet.t;
  mutable decls : SSet.t;
}

let add_markup raw v m loc =
  let cur = Option.value ~default:[] (SMap.find_opt v raw.markups) in
  raw.markups <- SMap.add v ((m, loc) :: cur) raw.markups

let add_def raw v e loc =
  if SSet.mem v raw.def_names then
    errf "variable %s assigned more than once (EasyML is single-assignment)" v;
  raw.def_names <- SSet.add v raw.def_names;
  raw.defs <- (v, e, loc) :: raw.defs

(* Substitute the bindings accumulated along a branch. *)
let subst_env (env : Ast.expr SMap.t) (e : Ast.expr) : Ast.expr =
  let rec go e =
    match e with
    | Ast.Num _ -> e
    | Ast.Var v -> ( match SMap.find_opt v env with Some b -> b | None -> e)
    | Ast.Unary (op, a) -> Ast.Unary (op, go a)
    | Ast.Binary (op, a, b) -> Ast.Binary (op, go a, go b)
    | Ast.Call (f, args) -> Ast.Call (f, List.map go args)
    | Ast.Ternary (a, b, c) -> Ast.Ternary (go a, go b, go c)
  in
  go e

(* Symbolically execute a branch body starting from the enclosing bindings.
   Returns the final environment together with the set of variables the
   branch itself assigned (directly or through a nested conditional). *)
let rec exec_branch (outer : Ast.expr SMap.t) (body : Ast.stmt list) :
    Ast.expr SMap.t * SSet.t =
  List.fold_left
    (fun (env, assigned) stmt ->
      match stmt with
      | Ast.Assign (_, x, e) -> (SMap.add x (subst_env env e) env, SSet.add x assigned)
      | Ast.If (_, branches, els) ->
          let merged = if_to_bindings env branches els in
          ( SMap.union (fun _ _ v -> Some v) env merged,
            SMap.fold (fun k _ s -> SSet.add k s) merged assigned )
      | Ast.Decl _ -> (env, assigned)
      | Ast.MarkupOn (loc, _, _) ->
          errf "markup inside a conditional at %a is not supported" Loc.pp loc)
    (outer, SSet.empty) body

(* Merge an if/elif/else into one ternary binding per assigned variable.
   Every branch (including else) must assign the variable: EasyML is
   single-assignment, so a partial conditional definition has no
   fall-through value. *)
and if_to_bindings (outer : Ast.expr SMap.t)
    (branches : (Ast.expr * Ast.stmt list) list) (els : Ast.stmt list) :
    Ast.expr SMap.t =
  let branch_envs =
    List.map
      (fun (c, body) -> (subst_env outer c, exec_branch outer body))
      branches
  in
  let else_env, else_assigned = exec_branch outer els in
  let assigned =
    List.fold_left
      (fun acc (_, (_, a)) -> SSet.union a acc)
      else_assigned branch_envs
  in
  SSet.fold
    (fun x acc ->
      let get env =
        match SMap.find_opt x env with
        | Some e -> e
        | None ->
            errf
              "conditional definition of %s must assign it in every branch \
               (including else)"
              x
      in
      let else_val = get else_env in
      let merged =
        List.fold_right
          (fun (c, (env, _)) tail -> Ast.Ternary (c, get env, tail))
          branch_envs else_val
      in
      SMap.add x merged acc)
    assigned SMap.empty

let collect (prog : Ast.program) : raw =
  let raw =
    { markups = SMap.empty; defs = []; def_names = SSet.empty; decls = SSet.empty }
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Decl (_, x) -> raw.decls <- SSet.add x raw.decls
      | Ast.Assign (loc, x, e) -> add_def raw x e loc
      | Ast.MarkupOn (loc, x, m) -> add_markup raw x m loc
      | Ast.If (loc, branches, els) ->
          let bindings = if_to_bindings SMap.empty branches els in
          SMap.iter (fun x e -> add_def raw x e loc) bindings)
    prog;
  raw.defs <- List.rev raw.defs;
  raw

(* ------------------------------------------------------------------ *)
(* Pass B: classification and model construction                       *)
(* ------------------------------------------------------------------ *)

let diff_prefix = "diff_"
let init_suffix = "_init"

let diff_target (name : string) : string option =
  if
    String.length name > String.length diff_prefix
    && String.sub name 0 (String.length diff_prefix) = diff_prefix
  then Some (String.sub name 5 (String.length name - 5))
  else None

let init_target (name : string) : string option =
  let n = String.length name and s = String.length init_suffix in
  if n > s && String.sub name (n - s) s = init_suffix then
    Some (String.sub name 0 (n - s))
  else None

let has_markup raw v m =
  match SMap.find_opt v raw.markups with
  | Some ms -> List.exists (fun (m', _) -> m' = m) ms
  | None -> false

let method_of raw v =
  match SMap.find_opt v raw.markups with
  | None -> None
  | Some ms ->
      List.find_map (function Ast.Method m, _ -> Some m | _ -> None) ms

(** Location of the first markup on [v] satisfying [pred], for
    diagnostics pointing at the markup site. *)
let markup_loc raw v pred : Loc.t =
  match SMap.find_opt v raw.markups with
  | None -> Loc.none
  | Some ms ->
      Option.value ~default:Loc.none
        (List.find_map (fun (m, loc) -> if pred m then Some loc else None) ms)

(* Check that every call is to a known builtin with the right arity. *)
let check_calls (where : string) (e : Ast.expr) : unit =
  let rec go = function
    | Ast.Num _ | Ast.Var _ -> ()
    | Ast.Unary (_, a) -> go a
    | Ast.Binary (_, a, b) ->
        go a;
        go b
    | Ast.Ternary (a, b, c) ->
        go a;
        go b;
        go c
    | Ast.Call (f, args) -> (
        (match Builtins.find f with
        | None -> errf "unknown function %s in definition of %s" f where
        | Some b ->
            if List.length args <> b.arity then
              errf "function %s expects %d argument(s), got %d (in %s)" f
                b.arity (List.length args) where);
        List.iter go args)
  in
  go e

let analyze ?(options = default_options) ~(name : string) (prog : Ast.program) :
    Model.t =
  let raw = collect prog in
  let warnings = ref [] in
  let warn ?sev ?loc ~code fmt =
    Fmt.kstr
      (fun s -> warnings := Diag.make ?sev ?loc ~code s :: !warnings)
      fmt
  in
  let def_loc =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (x, _, loc) ->
        if not (Hashtbl.mem tbl x) then Hashtbl.add tbl x loc)
      raw.defs;
    fun x -> Option.value ~default:Loc.none (Hashtbl.find_opt tbl x)
  in
  (* -- parameters ------------------------------------------------- *)
  let param_tbl : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let is_param v = has_markup raw v Ast.Param in
  List.iter
    (fun (x, e, _) ->
      if is_param x then
        match Fold.fold_expr param_tbl e with
        | Ast.Num f -> Hashtbl.replace param_tbl x f
        | _ ->
            errf "parameter %s is not a compile-time constant (got %s)" x
              (Ast.expr_to_string e))
    raw.defs;
  SMap.iter
    (fun v ms ->
      if List.exists (fun (m, _) -> m = Ast.Param) ms
         && not (Hashtbl.mem param_tbl v)
      then errf "parameter %s has no value" v)
    raw.markups;
  (* dead .param()s: a parameter no other definition ever references is
     compile-time noise — surface it for [limpetmlir check].  Scan in
     program order so diagnostics are deterministic. *)
  List.iter
    (fun (p, _, loc) ->
      if is_param p then
        let used =
          List.exists
            (fun (x, e, _) -> x <> p && List.mem p (Ast.free_vars e))
            raw.defs
        in
        if not used then
          warn ~sev:Diag.Info ~loc ~code:"unused-param"
            "parameter %s is never used" p)
    raw.defs;
  let params =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) param_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (* preprocessor: fold parameters (and literal arithmetic) everywhere *)
  let fold_tbl =
    if options.fold_params then param_tbl
    else Hashtbl.create 0 (* still folds literals, keeps params symbolic *)
  in
  let prep e = Fold.fold_expr fold_tbl e in
  (* -- split definitions ------------------------------------------ *)
  let inits : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let diffs : (string, Ast.expr) Hashtbl.t = Hashtbl.create 16 in
  let assigns = ref [] in
  List.iter
    (fun (x, e, _) ->
      if is_param x then ()
      else
        match init_target x with
        | Some tgt -> (
            match Fold.fold_expr param_tbl e with
            | Ast.Num f -> Hashtbl.replace inits tgt f
            | _ ->
                errf "%s must be a compile-time constant (got %s)" x
                  (Ast.expr_to_string e))
        | None -> (
            match diff_target x with
            | Some tgt -> Hashtbl.replace diffs tgt (prep e)
            | None -> assigns := (x, prep e) :: !assigns))
    raw.defs;
  let assigns = List.rev !assigns in
  (* EasyML lets expressions reference [diff_X] by name (e.g. calcium-buffer
     corrections in Nygren-style models); substitute the derivative
     definitions in, with a cycle guard. *)
  let resolve_diff_refs (top : string) (e : Ast.expr) : Ast.expr =
    let rec go visiting e =
      match e with
      | Ast.Num _ -> e
      | Ast.Var v -> (
          match diff_target v with
          | Some tgt when Hashtbl.mem diffs tgt ->
              if SSet.mem v visiting then
                errf "cyclic reference to %s in definition of %s" v top
              else go (SSet.add v visiting) (Hashtbl.find diffs tgt)
          | _ -> e)
      | Ast.Unary (op, a) -> Ast.Unary (op, go visiting a)
      | Ast.Binary (op, a, b) -> Ast.Binary (op, go visiting a, go visiting b)
      | Ast.Call (f, args) -> Ast.Call (f, List.map (go visiting) args)
      | Ast.Ternary (a, b, c) ->
          Ast.Ternary (go visiting a, go visiting b, go visiting c)
    in
    go SSet.empty e
  in
  let assigns = List.map (fun (x, e) -> (x, resolve_diff_refs x e)) assigns in
  Hashtbl.iter
    (fun x e -> Hashtbl.replace diffs x (resolve_diff_refs ("diff_" ^ x) e))
    (Hashtbl.copy diffs);
  let assign_map =
    List.fold_left (fun m (x, e) -> SMap.add x e m) SMap.empty assigns
  in
  (* -- externals --------------------------------------------------- *)
  let externals =
    SMap.fold
      (fun v ms acc ->
        if List.exists (fun (m, _) -> m = Ast.External) ms then
          {
            Model.ext_name = v;
            ext_init = Option.value ~default:0.0 (Hashtbl.find_opt inits v);
            ext_assigned = SMap.mem v assign_map;
          }
          :: acc
        else acc)
      raw.markups []
    |> List.sort (fun a b -> String.compare a.Model.ext_name b.Model.ext_name)
  in
  let is_external v = List.exists (fun e -> e.Model.ext_name = v) externals in
  (* -- states ------------------------------------------------------ *)
  let state_names =
    Hashtbl.fold (fun k _ acc -> k :: acc) diffs [] |> List.sort String.compare
  in
  List.iter
    (fun s ->
      if is_external s then
        errf "%s is declared external but has a diff_ equation" s;
      if SMap.mem s assign_map then
        errf "state variable %s cannot also be assigned directly" s)
    state_names;
  let is_state v = Hashtbl.mem diffs v in
  (* -- reference checking ------------------------------------------ *)
  let known v =
    is_state v || is_external v
    || SMap.mem v assign_map
    || List.mem v Model.implicit_vars
    || ((not options.fold_params) && Hashtbl.mem param_tbl v)
  in
  let check_refs where e =
    check_calls where e;
    List.iter
      (fun v ->
        if not (known v) then errf "undefined variable %s referenced by %s" v where)
      (Ast.free_vars e)
  in
  List.iter (fun (x, e) -> check_refs x e) assigns;
  Hashtbl.iter (fun x e -> check_refs ("diff_" ^ x) e) diffs;
  (* -- topological order of assigns, cycle detection ---------------- *)
  let order = ref [] in
  let mark : (string, [ `Visiting | `Done ]) Hashtbl.t = Hashtbl.create 16 in
  let rec visit v =
    match Hashtbl.find_opt mark v with
    | Some `Done -> ()
    | Some `Visiting -> errf "cyclic definition involving %s" v
    | None -> (
        match SMap.find_opt v assign_map with
        | None -> () (* state, external, implicit: a source *)
        | Some e ->
            Hashtbl.replace mark v `Visiting;
            List.iter visit (Ast.free_vars e);
            Hashtbl.replace mark v `Done;
            order := (v, e) :: !order)
  in
  List.iter (fun (x, _) -> visit x) assigns;
  let sorted_assigns = List.rev !order in
  (* -- inline intermediates into derivative expressions ------------- *)
  let inline_memo : (string, Ast.expr) Hashtbl.t = Hashtbl.create 16 in
  let rec inline (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Num _ -> e
    | Ast.Var v -> (
        match Hashtbl.find_opt inline_memo v with
        | Some e' -> e'
        | None -> (
            match SMap.find_opt v assign_map with
            | Some def ->
                let e' = inline def in
                Hashtbl.replace inline_memo v e';
                e'
            | None -> e))
    | Ast.Unary (op, a) -> Ast.Unary (op, inline a)
    | Ast.Binary (op, a, b) -> Ast.Binary (op, inline a, inline b)
    | Ast.Call (f, args) -> Ast.Call (f, List.map inline args)
    | Ast.Ternary (a, b, c) -> Ast.Ternary (inline a, inline b, inline c)
  in
  let states =
    List.map
      (fun sname ->
        let diff = inline (Hashtbl.find diffs sname) in
        let init =
          match Hashtbl.find_opt inits sname with
          | Some f -> f
          | None ->
              warn ~loc:(def_loc (diff_prefix ^ sname)) ~code:"missing-init"
                "state %s has no %s%s definition, defaulting to 0" sname
                sname init_suffix;
              0.0
        in
        let meth =
          match method_of raw sname with
          | None -> Model.FE
          | Some m -> (
              match Model.integ_of_string m with
              | Some i -> i
              | None -> errf "unknown integration method %s on %s" m sname)
        in
        let affine, meth =
          match meth with
          | Model.RushLarsen | Model.Sundnes -> (
              match Linearity.affine ~y:sname diff with
              | Some dec -> (Some dec, meth)
              | None ->
                  warn
                    ~loc:
                      (markup_loc raw sname (function
                        | Ast.Method _ -> true
                        | _ -> false))
                    ~code:"non-affine-gate"
                    "diff_%s is not affine in %s; falling back to forward \
                     Euler for .method(%s)"
                    sname sname (Model.integ_name meth);
                  (None, Model.FE))
          | _ -> (None, meth)
        in
        { Model.sv_name = sname; sv_init = init; sv_diff = diff; sv_method = meth;
          sv_affine = affine })
      state_names
  in
  (* -- prune assigns not needed by outputs/traces ------------------- *)
  let roots =
    List.filter_map
      (fun e -> if e.Model.ext_assigned then Some e.Model.ext_name else None)
      externals
    @ SMap.fold
        (fun v ms acc ->
          if List.exists (fun (m, _) -> m = Ast.Trace || m = Ast.Store) ms
          then v :: acc
          else acc)
        raw.markups []
  in
  let live = ref SSet.empty in
  let rec reach v =
    if (not (SSet.mem v !live)) && SMap.mem v assign_map then begin
      live := SSet.add v !live;
      List.iter reach (Ast.free_vars (SMap.find v assign_map))
    end
  in
  List.iter reach roots;
  let assigns = List.filter (fun (x, _) -> SSet.mem x !live) sorted_assigns in
  (* -- lookup tables ------------------------------------------------ *)
  let luts =
    SMap.fold
      (fun v ms acc ->
        List.filter_map
          (function
            | Ast.Lookup (lo, hi, step), _ ->
                if step <= 0.0 || hi <= lo then
                  errf "invalid lookup bounds on %s: [%g, %g] step %g" v lo hi
                    step;
                if not (is_external v || is_state v) then
                  errf "lookup variable %s must be a state or external" v;
                Some { Model.lut_var = v; lut_lo = lo; lut_hi = hi; lut_step = step }
            | _ -> None)
          ms
        @ acc)
      raw.markups []
  in
  (* externals with no markup at all referenced anywhere? Undeclared names
     were already rejected by check_refs. *)
  (* definition sites for the lint pass: states point at their diff_
     equation, lookup specs at the .lookup markup ("lookup:" prefix),
     everything else at its first definition *)
  let locs =
    List.map
      (fun s ->
        (s.Model.sv_name, def_loc (diff_prefix ^ s.Model.sv_name)))
      states
    @ List.map
        (fun (l : Model.lut_spec) ->
          ( "lookup:" ^ l.Model.lut_var,
            markup_loc raw l.Model.lut_var (function
              | Ast.Lookup _ -> true
              | _ -> false) ))
        luts
    @ List.map
        (fun (e : Model.ext_var) ->
          ( e.Model.ext_name,
            markup_loc raw e.Model.ext_name (function
              | Ast.External -> true
              | _ -> false) ))
        externals
    @ List.map (fun (p, _) -> (p, def_loc p)) params
  in
  {
    Model.name;
    params;
    externals;
    states;
    assigns;
    luts;
    warnings = List.rev !warnings;
    locs;
  }

(** Parse + analyze in one step. *)
let analyze_source ?options ~name (src : string) : Model.t =
  match Parser.parse src with
  | Ok prog -> analyze ?options ~name prog
  | Error msg -> raise (Error msg)

let analyze_result ?options ~name (src : string) : (Model.t, string) result =
  match analyze_source ?options ~name src with
  | m -> Ok m
  | exception Error msg -> Error msg
