open Ir
(** Tile-batched execution engine (loop inversion).

    The fused engine ({!Fused}) executes one flat instruction stream per
    loop *iteration*: dispatch cost is O(instrs × cells / width).  This
    engine inverts the loop.  A kernel's parallel cell loop is lowered
    once into *tile ops*; each dispatch executes its instruction across a
    whole tile of K consecutive vector blocks via a tight [for] over an
    unboxed row, so dispatch cost becomes O(instrs × cells / (width × K))
    — the batched-interpreter technique of array languages, applied to
    the ionic compute stage.

    Every SSA value of the loop body gets a *row*: a [K × ew] scratch
    array, where [ew] is the value's element width (1 for scalars, the
    vector width for vectors).  Scalar and vector arithmetic therefore
    share one encoding — an elementwise op is a single loop over
    [n × ew] elements.  Three pieces keep the tile loops fast and the
    results bitwise identical to the other engines:

    - {b slot coalescing} ({!Regalloc}): live ranges over the flat stream
      let dead rows be reused, shrinking the per-tile register file by
      roughly an order of magnitude so the working set stays in L1.  The
      default K is chosen so the *coalesced* rows fit a 32 KiB budget.
    - {b LUT macro-op}: the whole interpRow sequence — index computation,
      clamp, row gather, per-column lerp for every column of a table —
      runs as one tile instruction mirroring {!Runtime.Lut} operation for
      operation (paper §3.4.2).  The shared per-iteration row scratch
      would be clobbered across the tile under loop inversion, so the
      macro-op owns private [K × cols × ew] storage and the kernel's
      loads from the row buffer are rewritten against it.
    - {b soundness gate}: only [scf.for {parallel}] loops with no
      loop-carried values and straight-line, fully-selectable bodies are
      inverted.  The parallel marker certifies iterations independent, so
      executing them tile-by-tile instead of one-by-one permutes only
      work between independent cells; within a cell the arithmetic
      sequence is unchanged, hence bitwise-identical state.  Anything
      else falls back to the {!Fused} engine (itself bitwise-identical).

    Bounds-check elision composes: ops certified by {!Analysis.Bounds}
    select unchecked tile ops, exactly as in the fused engine. *)

module E = Engine

let fail = E.fail
let oob () = invalid_arg "index out of bounds"

(* Default per-block byte budget for the coalesced register file: one
   tile's rows plus private LUT storage should fit a typical 32 KiB L1d.
   The tile size only moves performance, never results. *)
let l1_budget_bytes = 32768

let min_auto_tile = 4
let max_auto_tile = 64

(* ------------------------------------------------------------------ *)
(* Tile instructions                                                   *)
(* ------------------------------------------------------------------ *)

(* Integer fields are row indices into the per-kind row pools ([fr]/[ir]/
   [br]) resolved after coalescing; [ew] is the element width of the rows
   involved (row length = tile × ew; an instruction touches n × ew
   elements when n blocks are active).  [mm] fields are {!Engine.env}
   memref slots — memrefs are uniform across the tile. *)
type lut_op = {
  k_buf : int;  (** private row-storage id *)
  k_mm : int;  (** table memref slot *)
  k_x : int;  (** lookup-value row, ew = k_w *)
  k_w : int;
  k_lo : float;
  k_step : float;
  k_rows : int;
  k_cols : int;
  k_cubic : bool;
}

type tinstr =
  (* tile fills *)
  | KCstF of int * int * float  (** d, ew, value *)
  | KCstI of int * int * int
  | KCstB of int * int * bool
  | KImpF of int * int  (** d <- splat of scalar register [s] (live-in) *)
  | KImpI of int * int
  | KImpB of int * int
  | KImpVF of int * int * int  (** d, w, s: d[k*w+l] <- vf.(s).[l] *)
  | KImpVI of int * int * int
  | KImpVB of int * int * int
  | KIv of int  (** induction row: d[k] <- tile_base + k*step *)
  (* float elementwise (len = n × ew) *)
  | KAdd of int * int * int * int  (** d, a, c, ew *)
  | KSub of int * int * int * int
  | KMul of int * int * int * int
  | KDiv of int * int * int * int
  | KFBinG of int * int * int * int * (float -> float -> float)
  | KNeg of int * int * int
  | KFma of int * int * int * int * int  (** d, a, b, c, ew: a*b + c *)
  | KFms of int * int * int * int * int  (** a*b - c *)
  | KFsm of int * int * int * int * int  (** c - a*b *)
  | KAdd3 of int * int * int * int * int
  | KMul3 of int * int * int * int * int
  | KSubMul of int * int * int * int * int
  | KAddMul of int * int * int * int * int
  | KSubAdd of int * int * int * int * int
  | KM1 of int * int * int * (float -> float)
  | KM2 of int * int * int * int * (float -> float -> float)
  | KCmpF of int * int * int * int * (float -> float -> bool)  (** d: bool *)
  | KSel of int * int * int * int * int  (** d, c(bool), x, y, ew *)
  | KCmpSel of int * int * int * int * int * int * (float -> float -> bool)
      (** d, a, c, x, y, ew *)
  | KSiToF of int * int * int
  | KFToSi of int * int * int
  (* int elementwise *)
  | KAddI of int * int * int * int
  | KSubI of int * int * int * int
  | KMulI of int * int * int * int
  | KBinGI of int * int * int * int * (int -> int -> int)
  | KMadI of int * int * int * int * int  (** a*b + c (addressing) *)
  | KCmpI of int * int * int * int * (int -> int -> bool)  (** d: bool *)
  (* bool elementwise *)
  | KBinB of int * int * int * int * (bool -> bool -> bool)
  | KNotB of int * int * int
  (* cross-width *)
  | KBcastF of int * int * int  (** d, a, w: d[k*w+l] <- a[k] *)
  | KBcastI of int * int * int
  | KBcastB of int * int * int
  | KIota of int * int  (** d, w: d[k*w+l] <- l *)
  | KExtF of int * int * int * int  (** d, a, w, lane: d[k] <- a[k*w+lane] *)
  | KExtI of int * int * int * int
  (* memory (checked / unchecked per the bounds prover) *)
  | KLoad of int * int * int  (** d, mm, ix *)
  | KLoadU of int * int * int
  | KStore of int * int * int  (** a, mm, ix *)
  | KStoreU of int * int * int
  | KVLoad of int * int * int * int  (** d, mm, ix, w — contiguous *)
  | KVLoadU of int * int * int * int
  | KVStore of int * int * int * int
  | KVStoreU of int * int * int * int
  | KGather of int * int * int * int  (** d, mm, ixs(ew=w), w *)
  | KGatherU of int * int * int * int
  | KScatter of int * int * int * int
  | KScatterU of int * int * int * int
  (* fused LUT interpolation + private-row accesses *)
  | KLut of lut_op
  | KRowLoad of int * int * int * int  (** d, buf, ix, stride *)
  | KRowLoadU of int * int * int * int
  | KRowVLoad of int * int * int * int * int  (** d, buf, ix, w, stride *)
  | KRowVLoadU of int * int * int * int * int

(* ------------------------------------------------------------------ *)
(* Tile register file and executor                                     *)
(* ------------------------------------------------------------------ *)

type tstate = {
  fr : floatarray array;  (** float rows, length tile × ew each *)
  ir : int array array;
  br : bool array array;
  lb : floatarray array;  (** private LUT row storage, tile × stride *)
  mutable base : int;  (** induction value of the tile's first block *)
  mutable stp : int;  (** loop step *)
  mutable n : int;  (** active blocks in the current tile *)
}

(* The dispatch loop: one [match] per instruction *per tile*, each arm a
   tight loop over n × ew unboxed elements.  Row accesses are unchecked
   (indices are compiler-assigned, bounded by tile × ew); memref accesses
   keep their checks unless the bounds prover certified them. *)
let exec_tile (code : tinstr array) (st : tstate) (e : E.env) : unit -> unit =
  let fr = st.fr and ir = st.ir and br = st.br and lb = st.lb in
  let m = e.E.m in
  let ninstr = Array.length code in
  fun () ->
    let n = st.n in
    for pc = 0 to ninstr - 1 do
      match Array.unsafe_get code pc with
      | KCstF (d, ew, x) ->
          let z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j x
          done
      | KCstI (d, ew, x) ->
          let z = Array.unsafe_get ir d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j x
          done
      | KCstB (d, ew, x) ->
          let z = Array.unsafe_get br d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j x
          done
      | KImpF (d, s) ->
          let z = Array.unsafe_get fr d and x = Array.unsafe_get e.E.f s in
          for k = 0 to n - 1 do
            Float.Array.unsafe_set z k x
          done
      | KImpI (d, s) ->
          let z = Array.unsafe_get ir d and x = Array.unsafe_get e.E.i s in
          for k = 0 to n - 1 do
            Array.unsafe_set z k x
          done
      | KImpB (d, s) ->
          let z = Array.unsafe_get br d and x = Array.unsafe_get e.E.b s in
          for k = 0 to n - 1 do
            Array.unsafe_set z k x
          done
      | KImpVF (d, w, s) ->
          let z = Array.unsafe_get fr d and x = Array.unsafe_get e.E.vf s in
          for k = 0 to n - 1 do
            let b = k * w in
            for l = 0 to w - 1 do
              Float.Array.unsafe_set z (b + l) (Float.Array.unsafe_get x l)
            done
          done
      | KImpVI (d, w, s) ->
          let z = Array.unsafe_get ir d and x = Array.unsafe_get e.E.vi s in
          for k = 0 to n - 1 do
            let b = k * w in
            for l = 0 to w - 1 do
              Array.unsafe_set z (b + l) (Array.unsafe_get x l)
            done
          done
      | KImpVB (d, w, s) ->
          let z = Array.unsafe_get br d and x = Array.unsafe_get e.E.vb s in
          for k = 0 to n - 1 do
            let b = k * w in
            for l = 0 to w - 1 do
              Array.unsafe_set z (b + l) (Array.unsafe_get x l)
            done
          done
      | KIv d ->
          let z = Array.unsafe_get ir d
          and base = st.base
          and stp = st.stp in
          for k = 0 to n - 1 do
            Array.unsafe_set z k (base + (k * stp))
          done
      | KAdd (d, a, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (Float.Array.unsafe_get x j +. Float.Array.unsafe_get y j)
          done
      | KSub (d, a, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (Float.Array.unsafe_get x j -. Float.Array.unsafe_get y j)
          done
      | KMul (d, a, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (Float.Array.unsafe_get x j *. Float.Array.unsafe_get y j)
          done
      | KDiv (d, a, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (Float.Array.unsafe_get x j /. Float.Array.unsafe_get y j)
          done
      | KFBinG (d, a, c, ew, h) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (h (Float.Array.unsafe_get x j) (Float.Array.unsafe_get y j))
          done
      | KNeg (d, a, ew) ->
          let x = Array.unsafe_get fr a and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j (-.Float.Array.unsafe_get x j)
          done
      | KFma (d, a, b, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr b
          and u = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              ((Float.Array.unsafe_get x j *. Float.Array.unsafe_get y j)
              +. Float.Array.unsafe_get u j)
          done
      | KFms (d, a, b, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr b
          and u = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              ((Float.Array.unsafe_get x j *. Float.Array.unsafe_get y j)
              -. Float.Array.unsafe_get u j)
          done
      | KFsm (d, a, b, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr b
          and u = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (Float.Array.unsafe_get u j
              -. (Float.Array.unsafe_get x j *. Float.Array.unsafe_get y j))
          done
      | KAdd3 (d, a, b, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr b
          and u = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (Float.Array.unsafe_get x j +. Float.Array.unsafe_get y j
              +. Float.Array.unsafe_get u j)
          done
      | KMul3 (d, a, b, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr b
          and u = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (Float.Array.unsafe_get x j *. Float.Array.unsafe_get y j
              *. Float.Array.unsafe_get u j)
          done
      | KSubMul (d, a, b, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr b
          and u = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              ((Float.Array.unsafe_get x j -. Float.Array.unsafe_get y j)
              *. Float.Array.unsafe_get u j)
          done
      | KAddMul (d, a, b, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr b
          and u = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              ((Float.Array.unsafe_get x j +. Float.Array.unsafe_get y j)
              *. Float.Array.unsafe_get u j)
          done
      | KSubAdd (d, a, b, c, ew) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr b
          and u = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (Float.Array.unsafe_get x j -. Float.Array.unsafe_get y j
              +. Float.Array.unsafe_get u j)
          done
      | KM1 (d, a, ew, g) ->
          let x = Array.unsafe_get fr a and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j (g (Float.Array.unsafe_get x j))
          done
      | KM2 (d, a, c, ew, g) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr c
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (g (Float.Array.unsafe_get x j) (Float.Array.unsafe_get y j))
          done
      | KCmpF (d, a, c, ew, g) ->
          let x = Array.unsafe_get fr a
          and y = Array.unsafe_get fr c
          and z = Array.unsafe_get br d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j
              (g (Float.Array.unsafe_get x j) (Float.Array.unsafe_get y j))
          done
      | KSel (d, c, x, y, ew) ->
          let cc = Array.unsafe_get br c
          and xx = Array.unsafe_get fr x
          and yy = Array.unsafe_get fr y
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (if Array.unsafe_get cc j then Float.Array.unsafe_get xx j
               else Float.Array.unsafe_get yy j)
          done
      | KCmpSel (d, a, c, x, y, ew, g) ->
          let aa = Array.unsafe_get fr a
          and cc = Array.unsafe_get fr c
          and xx = Array.unsafe_get fr x
          and yy = Array.unsafe_get fr y
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j
              (if g (Float.Array.unsafe_get aa j) (Float.Array.unsafe_get cc j)
               then Float.Array.unsafe_get xx j
               else Float.Array.unsafe_get yy j)
          done
      | KSiToF (d, a, ew) ->
          let x = Array.unsafe_get ir a and z = Array.unsafe_get fr d in
          for j = 0 to (n * ew) - 1 do
            Float.Array.unsafe_set z j (float_of_int (Array.unsafe_get x j))
          done
      | KFToSi (d, a, ew) ->
          let x = Array.unsafe_get fr a and z = Array.unsafe_get ir d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j (int_of_float (Float.Array.unsafe_get x j))
          done
      | KAddI (d, a, c, ew) ->
          let x = Array.unsafe_get ir a
          and y = Array.unsafe_get ir c
          and z = Array.unsafe_get ir d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j (Array.unsafe_get x j + Array.unsafe_get y j)
          done
      | KSubI (d, a, c, ew) ->
          let x = Array.unsafe_get ir a
          and y = Array.unsafe_get ir c
          and z = Array.unsafe_get ir d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j (Array.unsafe_get x j - Array.unsafe_get y j)
          done
      | KMulI (d, a, c, ew) ->
          let x = Array.unsafe_get ir a
          and y = Array.unsafe_get ir c
          and z = Array.unsafe_get ir d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j (Array.unsafe_get x j * Array.unsafe_get y j)
          done
      | KBinGI (d, a, c, ew, g) ->
          let x = Array.unsafe_get ir a
          and y = Array.unsafe_get ir c
          and z = Array.unsafe_get ir d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j (g (Array.unsafe_get x j) (Array.unsafe_get y j))
          done
      | KMadI (d, a, b, c, ew) ->
          let x = Array.unsafe_get ir a
          and y = Array.unsafe_get ir b
          and u = Array.unsafe_get ir c
          and z = Array.unsafe_get ir d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j
              ((Array.unsafe_get x j * Array.unsafe_get y j)
              + Array.unsafe_get u j)
          done
      | KCmpI (d, a, c, ew, g) ->
          let x = Array.unsafe_get ir a
          and y = Array.unsafe_get ir c
          and z = Array.unsafe_get br d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j (g (Array.unsafe_get x j) (Array.unsafe_get y j))
          done
      | KBinB (d, a, c, ew, g) ->
          let x = Array.unsafe_get br a
          and y = Array.unsafe_get br c
          and z = Array.unsafe_get br d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j (g (Array.unsafe_get x j) (Array.unsafe_get y j))
          done
      | KNotB (d, a, ew) ->
          let x = Array.unsafe_get br a and z = Array.unsafe_get br d in
          for j = 0 to (n * ew) - 1 do
            Array.unsafe_set z j (not (Array.unsafe_get x j))
          done
      | KBcastF (d, a, w) ->
          let x = Array.unsafe_get fr a and z = Array.unsafe_get fr d in
          for k = 0 to n - 1 do
            let v = Float.Array.unsafe_get x k and b = k * w in
            for l = 0 to w - 1 do
              Float.Array.unsafe_set z (b + l) v
            done
          done
      | KBcastI (d, a, w) ->
          let x = Array.unsafe_get ir a and z = Array.unsafe_get ir d in
          for k = 0 to n - 1 do
            let v = Array.unsafe_get x k and b = k * w in
            for l = 0 to w - 1 do
              Array.unsafe_set z (b + l) v
            done
          done
      | KBcastB (d, a, w) ->
          let x = Array.unsafe_get br a and z = Array.unsafe_get br d in
          for k = 0 to n - 1 do
            let v = Array.unsafe_get x k and b = k * w in
            for l = 0 to w - 1 do
              Array.unsafe_set z (b + l) v
            done
          done
      | KIota (d, w) ->
          let z = Array.unsafe_get ir d in
          for k = 0 to n - 1 do
            let b = k * w in
            for l = 0 to w - 1 do
              Array.unsafe_set z (b + l) l
            done
          done
      | KExtF (d, a, w, lane) ->
          let x = Array.unsafe_get fr a and z = Array.unsafe_get fr d in
          for k = 0 to n - 1 do
            Float.Array.unsafe_set z k (Float.Array.unsafe_get x ((k * w) + lane))
          done
      | KExtI (d, a, w, lane) ->
          let x = Array.unsafe_get ir a and z = Array.unsafe_get ir d in
          for k = 0 to n - 1 do
            Array.unsafe_set z k (Array.unsafe_get x ((k * w) + lane))
          done
      | KLoad (d, mm, ix) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ix
          and z = Array.unsafe_get fr d in
          for k = 0 to n - 1 do
            Float.Array.unsafe_set z k
              (Float.Array.get buf (Array.unsafe_get iix k))
          done
      | KLoadU (d, mm, ix) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ix
          and z = Array.unsafe_get fr d in
          for k = 0 to n - 1 do
            Float.Array.unsafe_set z k
              (Float.Array.unsafe_get buf (Array.unsafe_get iix k))
          done
      | KStore (a, mm, ix) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ix
          and x = Array.unsafe_get fr a in
          for k = 0 to n - 1 do
            Float.Array.set buf (Array.unsafe_get iix k)
              (Float.Array.unsafe_get x k)
          done
      | KStoreU (a, mm, ix) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ix
          and x = Array.unsafe_get fr a in
          for k = 0 to n - 1 do
            Float.Array.unsafe_set buf (Array.unsafe_get iix k)
              (Float.Array.unsafe_get x k)
          done
      | KVLoad (d, mm, ix, w) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ix
          and z = Array.unsafe_get fr d in
          let len = Float.Array.length buf in
          for k = 0 to n - 1 do
            let base = Array.unsafe_get iix k in
            if base < 0 || base + w > len then oob ();
            let b = k * w in
            for l = 0 to w - 1 do
              Float.Array.unsafe_set z (b + l)
                (Float.Array.unsafe_get buf (base + l))
            done
          done
      | KVLoadU (d, mm, ix, w) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ix
          and z = Array.unsafe_get fr d in
          for k = 0 to n - 1 do
            let base = Array.unsafe_get iix k and b = k * w in
            for l = 0 to w - 1 do
              Float.Array.unsafe_set z (b + l)
                (Float.Array.unsafe_get buf (base + l))
            done
          done
      | KVStore (a, mm, ix, w) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ix
          and x = Array.unsafe_get fr a in
          let len = Float.Array.length buf in
          for k = 0 to n - 1 do
            let base = Array.unsafe_get iix k in
            if base < 0 || base + w > len then oob ();
            let b = k * w in
            for l = 0 to w - 1 do
              Float.Array.unsafe_set buf (base + l)
                (Float.Array.unsafe_get x (b + l))
            done
          done
      | KVStoreU (a, mm, ix, w) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ix
          and x = Array.unsafe_get fr a in
          for k = 0 to n - 1 do
            let base = Array.unsafe_get iix k and b = k * w in
            for l = 0 to w - 1 do
              Float.Array.unsafe_set buf (base + l)
                (Float.Array.unsafe_get x (b + l))
            done
          done
      | KGather (d, mm, ixs, w) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ixs
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * w) - 1 do
            Float.Array.unsafe_set z j
              (Float.Array.get buf (Array.unsafe_get iix j))
          done
      | KGatherU (d, mm, ixs, w) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ixs
          and z = Array.unsafe_get fr d in
          for j = 0 to (n * w) - 1 do
            Float.Array.unsafe_set z j
              (Float.Array.unsafe_get buf (Array.unsafe_get iix j))
          done
      | KScatter (a, mm, ixs, w) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ixs
          and x = Array.unsafe_get fr a in
          for j = 0 to (n * w) - 1 do
            Float.Array.set buf (Array.unsafe_get iix j)
              (Float.Array.unsafe_get x j)
          done
      | KScatterU (a, mm, ixs, w) ->
          let buf = Array.unsafe_get m mm
          and iix = Array.unsafe_get ir ixs
          and x = Array.unsafe_get fr a in
          for j = 0 to (n * w) - 1 do
            Float.Array.unsafe_set buf (Array.unsafe_get iix j)
              (Float.Array.unsafe_get x j)
          done
      | KLut { k_buf; k_mm; k_x; k_w = w; k_lo = lo; k_step = step;
               k_rows = rows; k_cols = cols; k_cubic } ->
          Obs.Tracer.count "batched.lut_fire" 1.0;
          let tbl = Array.unsafe_get m k_mm
          and xs = Array.unsafe_get fr k_x
          and dst = Array.unsafe_get lb k_buf in
          let stride = cols * w in
          let len = Float.Array.length tbl in
          (* Mirrors {!Runtime.Lut} operation for operation; the [safe]
             fast path drops per-access table checks once the geometry is
             known to fit (clamping bounds every non-NaN index), and any
             residual out-of-range index (NaN lookups) takes the checked
             path, raising exactly as the extern would. *)
          if k_cubic && rows >= 4 then begin
            let safe = rows * cols <= len in
            let hi_i = float_of_int (rows - 3) in
            for k = 0 to n - 1 do
              let xb = k * w and db = k * stride in
              for l = 0 to w - 1 do
                let x = Float.Array.unsafe_get xs (xb + l) in
                let pos = (x -. lo) /. step in
                let idx, u =
                  if pos <= 1.0 then (1, Float.max (-1.0) (pos -. 1.0))
                  else if pos >= hi_i then (rows - 3, Float.min 2.0 (pos -. hi_i))
                  else
                    let idx = int_of_float (Float.floor pos) in
                    (idx, pos -. float_of_int idx)
                in
                let b0 = (idx - 1) * cols
                and b1 = idx * cols
                and b2 = (idx + 1) * cols
                and b3 = (idx + 2) * cols in
                if safe && idx >= 1 && idx <= rows - 3 then
                  for c = 0 to cols - 1 do
                    let p0 = Float.Array.unsafe_get tbl (b0 + c)
                    and p1 = Float.Array.unsafe_get tbl (b1 + c)
                    and p2 = Float.Array.unsafe_get tbl (b2 + c)
                    and p3 = Float.Array.unsafe_get tbl (b3 + c) in
                    let a = (-0.5 *. p0) +. (1.5 *. p1) -. (1.5 *. p2) +. (0.5 *. p3) in
                    let bb = p0 -. (2.5 *. p1) +. (2.0 *. p2) -. (0.5 *. p3) in
                    let cq = (-0.5 *. p0) +. (0.5 *. p2) in
                    Float.Array.unsafe_set dst (db + (c * w) + l)
                      (p1 +. (u *. (cq +. (u *. (bb +. (u *. a))))))
                  done
                else
                  for c = 0 to cols - 1 do
                    let p0 = Float.Array.get tbl (b0 + c)
                    and p1 = Float.Array.get tbl (b1 + c)
                    and p2 = Float.Array.get tbl (b2 + c)
                    and p3 = Float.Array.get tbl (b3 + c) in
                    let a = (-0.5 *. p0) +. (1.5 *. p1) -. (1.5 *. p2) +. (0.5 *. p3) in
                    let bb = p0 -. (2.5 *. p1) +. (2.0 *. p2) -. (0.5 *. p3) in
                    let cq = (-0.5 *. p0) +. (0.5 *. p2) in
                    Float.Array.set dst (db + (c * w) + l)
                      (p1 +. (u *. (cq +. (u *. (bb +. (u *. a))))))
                  done
              done
            done
          end
          else begin
            (* linear; also the cubic fallback when rows < 4, as in
               {!Runtime.Lut.interp_row_cubic} *)
            let safe = rows >= 2 && rows * cols <= len in
            let hi_i = float_of_int (rows - 1) in
            for k = 0 to n - 1 do
              let xb = k * w and db = k * stride in
              for l = 0 to w - 1 do
                let x = Float.Array.unsafe_get xs (xb + l) in
                let pos = (x -. lo) /. step in
                let idx, frac =
                  if pos <= 0.0 then (0, 0.0)
                  else if pos >= hi_i then (rows - 2, 1.0)
                  else
                    let idx = int_of_float (Float.floor pos) in
                    (idx, pos -. float_of_int idx)
                in
                let base0 = idx * cols and base1 = (idx + 1) * cols in
                if safe && idx >= 0 && idx <= rows - 2 then
                  for c = 0 to cols - 1 do
                    let v0 = Float.Array.unsafe_get tbl (base0 + c)
                    and v1 = Float.Array.unsafe_get tbl (base1 + c) in
                    Float.Array.unsafe_set dst (db + (c * w) + l)
                      (v0 +. (frac *. (v1 -. v0)))
                  done
                else
                  for c = 0 to cols - 1 do
                    let v0 = Float.Array.get tbl (base0 + c)
                    and v1 = Float.Array.get tbl (base1 + c) in
                    Float.Array.set dst (db + (c * w) + l)
                      (v0 +. (frac *. (v1 -. v0)))
                  done
              done
            done
          end
      | KRowLoad (d, buf, ix, stride) ->
          let src = Array.unsafe_get lb buf
          and iix = Array.unsafe_get ir ix
          and z = Array.unsafe_get fr d in
          for k = 0 to n - 1 do
            let j = Array.unsafe_get iix k in
            if j < 0 || j >= stride then oob ();
            Float.Array.unsafe_set z k
              (Float.Array.unsafe_get src ((k * stride) + j))
          done
      | KRowLoadU (d, buf, ix, stride) ->
          let src = Array.unsafe_get lb buf
          and iix = Array.unsafe_get ir ix
          and z = Array.unsafe_get fr d in
          for k = 0 to n - 1 do
            Float.Array.unsafe_set z k
              (Float.Array.unsafe_get src
                 ((k * stride) + Array.unsafe_get iix k))
          done
      | KRowVLoad (d, buf, ix, w, stride) ->
          let src = Array.unsafe_get lb buf
          and iix = Array.unsafe_get ir ix
          and z = Array.unsafe_get fr d in
          for k = 0 to n - 1 do
            let j = Array.unsafe_get iix k in
            if j < 0 || j + w > stride then oob ();
            let sb = (k * stride) + j and b = k * w in
            for l = 0 to w - 1 do
              Float.Array.unsafe_set z (b + l)
                (Float.Array.unsafe_get src (sb + l))
            done
          done
      | KRowVLoadU (d, buf, ix, w, stride) ->
          let src = Array.unsafe_get lb buf
          and iix = Array.unsafe_get ir ix
          and z = Array.unsafe_get fr d in
          for k = 0 to n - 1 do
            let sb = (k * stride) + Array.unsafe_get iix k and b = k * w in
            for l = 0 to w - 1 do
              Float.Array.unsafe_set z (b + l)
                (Float.Array.unsafe_get src (sb + l))
            done
          done
    done

(* ------------------------------------------------------------------ *)
(* Selection: IR op -> abstract tile instruction                       *)
(* ------------------------------------------------------------------ *)

exception Not_tileable

(* An abstract tile instruction: the SSA values it reads and writes (for
   the coalescer; memrefs and LUT storage are uniform resources, never
   virtual registers) plus an emitter invoked once rows are assigned. *)
type ainstr = {
  a_uses : Value.t list;
  a_defs : Value.t list;
  a_emit : (Value.t -> int) -> tinstr;
}

(* Register classes: element kind in the high bits, element width in the
   low byte.  Rows are only coalesced within a class, so a reused row
   always has the right pool and length. *)
let kind_of_ty (t : Ty.t) : int =
  match Ty.elem t with
  | Ty.F64 -> 0
  | Ty.I64 -> 1
  | Ty.I1 -> 2
  | _ -> raise Not_tileable

let cls_of (v : Value.t) : int = (kind_of_ty v.Value.ty lsl 8) lor Ty.width v.Value.ty
let areg_of (v : Value.t) : Regalloc.vreg = { Regalloc.vclass = cls_of v; vid = v.Value.id }
let ew_of (v : Value.t) : int = Ty.width v.Value.ty

(* A recognized LUT interpolation call site: geometry resolved to
   constants at compile time, private row storage assigned. *)
type lut_site = {
  ls_buf : int;
  ls_mm : int;  (** table memref env slot *)
  ls_x : Value.t;
  ls_w : int;
  ls_lo : float;
  ls_step : float;
  ls_rows : int;
  ls_cols : int;
  ls_cubic : bool;
  ls_stride : int;  (** cols × w: row storage per tile block *)
}

let lut_cubic_of_callee = function
  | "lut_interp" | "lut_interp_vec" -> Some false
  | "lut_interp_cubic" | "lut_interp_cubic_vec" -> Some true
  | _ -> None

let use_counts (fn : Func.func) : (int, int) Hashtbl.t =
  let h = Hashtbl.create 256 in
  let bump (v : Value.t) =
    Hashtbl.replace h v.Value.id
      (1 + Option.value ~default:0 (Hashtbl.find_opt h v.Value.id))
  in
  let rec walk (r : Op.region) =
    List.iter
      (fun (o : Op.op) ->
        Array.iter bump o.Op.operands;
        Array.iter walk o.Op.regions)
      r.Op.r_ops
  in
  walk fn.Func.f_body;
  h

let single_use (uc : (int, int) Hashtbl.t) (v : Value.t) : bool =
  Hashtbl.find_opt uc v.Value.id = Some 1

let mk uses defs emit = Some { a_uses = uses; a_defs = defs; a_emit = emit }

(* Producer/consumer superinstructions, mirroring the fused engine's
   combos (same operand-order decisions, so results match it bitwise;
   both rounding steps are kept in every fused form). *)
let pair_sel (p : Op.op) (o : Op.op) : ainstr option =
  if Array.length p.Op.results <> 1 then None
  else
    let t = p.Op.results.(0) in
    let uses_t k = o.Op.operands.(k).Value.id = t.Value.id in
    match (p.Op.kind, o.Op.kind) with
    | Op.BinF kp, Op.BinF ko
      when Ty.is_float_like t.Value.ty && (uses_t 0 || uses_t 1) -> (
        let combo =
          match (kp, ko, uses_t 0) with
          | Op.FMul, Op.FAdd, _ -> Some `Fma
          | Op.FMul, Op.FSub, true -> Some `Fms
          | Op.FMul, Op.FSub, false -> Some `Fsm
          | Op.FMul, Op.FMul, _ -> Some `Mul3
          | Op.FAdd, Op.FAdd, _ -> Some `Add3
          | Op.FAdd, Op.FMul, _ -> Some `AddMul
          | Op.FSub, Op.FAdd, _ -> Some `SubAdd
          | Op.FSub, Op.FMul, _ -> Some `SubMul
          | _ -> None
        in
        match combo with
        | None -> None
        | Some tag ->
            let a = p.Op.operands.(0) and b = p.Op.operands.(1) in
            let other =
              if uses_t 0 then o.Op.operands.(1) else o.Op.operands.(0)
            in
            let d = o.Op.results.(0) in
            let ew = ew_of t in
            mk [ a; b; other ] [ d ] (fun lk ->
                let dd = lk d and pa = lk a and pb = lk b and oc = lk other in
                match tag with
                | `Fma -> KFma (dd, pa, pb, oc, ew)
                | `Fms -> KFms (dd, pa, pb, oc, ew)
                | `Fsm -> KFsm (dd, pa, pb, oc, ew)
                | `Mul3 -> KMul3 (dd, pa, pb, oc, ew)
                | `Add3 -> KAdd3 (dd, pa, pb, oc, ew)
                | `AddMul -> KAddMul (dd, pa, pb, oc, ew)
                | `SubAdd -> KSubAdd (dd, pa, pb, oc, ew)
                | `SubMul -> KSubMul (dd, pa, pb, oc, ew)))
    | Op.CmpF cc, Op.Select
      when uses_t 0
           && Ty.is_float_like o.Op.results.(0).Value.ty
           && Ty.is_float_like p.Op.operands.(0).Value.ty
           && ew_of p.Op.operands.(0) = ew_of o.Op.results.(0) ->
        let a = p.Op.operands.(0) and u = p.Op.operands.(1) in
        let x = o.Op.operands.(1) and y = o.Op.operands.(2) in
        let d = o.Op.results.(0) in
        let ew = ew_of d and g = E.cmpf_fn cc in
        mk [ a; u; x; y ] [ d ] (fun lk ->
            KCmpSel (lk d, lk a, lk u, lk x, lk y, ew, g))
    | Op.BinI Op.IMul, Op.BinI Op.IAdd
      when Ty.is_int_like t.Value.ty && (uses_t 0 || uses_t 1) ->
        let a = p.Op.operands.(0) and b = p.Op.operands.(1) in
        let other = if uses_t 0 then o.Op.operands.(1) else o.Op.operands.(0) in
        let d = o.Op.results.(0) in
        let ew = ew_of t in
        mk [ a; b; other ] [ d ] (fun lk ->
            KMadI (lk d, lk a, lk b, lk other, ew))
    | _ -> None

(* Single-op selection.  [None] makes the whole loop non-tileable (the
   function then falls back to the fused engine wholesale). *)
let sel_op (c : E.fctx) ~(luts : (int, lut_site) Hashtbl.t)
    ~(rowmap : (int, lut_site) Hashtbl.t) (o : Op.op) : ainstr option =
  let op k = o.Op.operands.(k) and res () = o.Op.results.(0) in
  let proved () = Hashtbl.mem c.E.proved o.Op.o_id in
  match o.Op.kind with
  | Op.ConstF x ->
      let d = res () in
      mk [] [ d ] (fun lk -> KCstF (lk d, ew_of d, x))
  | Op.ConstI x ->
      let d = res () in
      mk [] [ d ] (fun lk -> KCstI (lk d, ew_of d, x))
  | Op.ConstB x ->
      let d = res () in
      mk [] [ d ] (fun lk -> KCstB (lk d, ew_of d, x))
  | Op.BinF k ->
      let d = res () and a = op 0 and b = op 1 in
      let ew = ew_of d in
      mk [ a; b ] [ d ]
        (match k with
        | Op.FAdd -> fun lk -> KAdd (lk d, lk a, lk b, ew)
        | Op.FSub -> fun lk -> KSub (lk d, lk a, lk b, ew)
        | Op.FMul -> fun lk -> KMul (lk d, lk a, lk b, ew)
        | Op.FDiv -> fun lk -> KDiv (lk d, lk a, lk b, ew)
        | _ ->
            let g = E.fbin_fn k in
            fun lk -> KFBinG (lk d, lk a, lk b, ew, g))
  | Op.NegF ->
      let d = res () and a = op 0 in
      let ew = ew_of d in
      mk [ a ] [ d ] (fun lk -> KNeg (lk d, lk a, ew))
  | Op.BinI k ->
      let d = res () and a = op 0 and b = op 1 in
      let ew = ew_of d in
      mk [ a; b ] [ d ]
        (match k with
        | Op.IAdd -> fun lk -> KAddI (lk d, lk a, lk b, ew)
        | Op.ISub -> fun lk -> KSubI (lk d, lk a, lk b, ew)
        | Op.IMul -> fun lk -> KMulI (lk d, lk a, lk b, ew)
        | _ ->
            let g = E.ibin_fn k in
            fun lk -> KBinGI (lk d, lk a, lk b, ew, g))
  | Op.BinB k ->
      let d = res () and a = op 0 and b = op 1 in
      let ew = ew_of d and g = E.bbin_fn k in
      mk [ a; b ] [ d ] (fun lk -> KBinB (lk d, lk a, lk b, ew, g))
  | Op.NotB ->
      let d = res () and a = op 0 in
      let ew = ew_of d in
      mk [ a ] [ d ] (fun lk -> KNotB (lk d, lk a, ew))
  | Op.CmpF cc ->
      let d = res () and a = op 0 and b = op 1 in
      let ew = ew_of a and g = E.cmpf_fn cc in
      mk [ a; b ] [ d ] (fun lk -> KCmpF (lk d, lk a, lk b, ew, g))
  | Op.CmpI cc ->
      let d = res () and a = op 0 and b = op 1 in
      let ew = ew_of a and g = E.cmpi_fn cc in
      mk [ a; b ] [ d ] (fun lk -> KCmpI (lk d, lk a, lk b, ew, g))
  | Op.Select when Ty.is_float_like (res ()).Value.ty ->
      let d = res () and cc = op 0 and x = op 1 and y = op 2 in
      let ew = ew_of d in
      mk [ cc; x; y ] [ d ] (fun lk -> KSel (lk d, lk cc, lk x, lk y, ew))
  | Op.SIToFP ->
      let d = res () and a = op 0 in
      let ew = ew_of d in
      mk [ a ] [ d ] (fun lk -> KSiToF (lk d, lk a, ew))
  | Op.FPToSI ->
      let d = res () and a = op 0 in
      let ew = ew_of d in
      mk [ a ] [ d ] (fun lk -> KFToSi (lk d, lk a, ew))
  | Op.Math name -> (
      match Easyml.Builtins.find name with
      | None -> None
      | Some bi -> (
          match (bi.Easyml.Builtins.arity, Array.length o.Op.operands) with
          | 1, 1 ->
              let d = res () and a = op 0 in
              let ew = ew_of d in
              let g =
                match E.unary_fn name with
                | Some g -> g
                | None ->
                    (* same generic path as the closure/fused engines:
                       one scratch cell, identical float function *)
                    let buf = [| 0.0 |] in
                    fun x ->
                      buf.(0) <- x;
                      bi.Easyml.Builtins.eval buf
              in
              mk [ a ] [ d ] (fun lk -> KM1 (lk d, lk a, ew, g))
          | 2, 2 ->
              let d = res () and a = op 0 and b = op 1 in
              let ew = ew_of d in
              let g =
                match E.binary_fn name with
                | Some g -> g
                | None ->
                    let buf = [| 0.0; 0.0 |] in
                    fun x y ->
                      buf.(0) <- x;
                      buf.(1) <- y;
                      bi.Easyml.Builtins.eval buf
              in
              mk [ a; b ] [ d ] (fun lk -> KM2 (lk d, lk a, lk b, ew, g))
          | _ -> None))
  | Op.Broadcast -> (
      let d = res () and a = op 0 in
      let w = ew_of d in
      match Ty.elem d.Value.ty with
      | Ty.F64 -> mk [ a ] [ d ] (fun lk -> KBcastF (lk d, lk a, w))
      | Ty.I64 -> mk [ a ] [ d ] (fun lk -> KBcastI (lk d, lk a, w))
      | Ty.I1 -> mk [ a ] [ d ] (fun lk -> KBcastB (lk d, lk a, w))
      | _ -> None)
  | Op.VecExtract lane -> (
      let d = res () and a = op 0 in
      let w = ew_of a in
      match Ty.elem a.Value.ty with
      | Ty.F64 -> mk [ a ] [ d ] (fun lk -> KExtF (lk d, lk a, w, lane))
      | Ty.I64 -> mk [ a ] [ d ] (fun lk -> KExtI (lk d, lk a, w, lane))
      | _ -> None)
  | Op.Iota w ->
      let d = res () in
      mk [] [ d ] (fun lk -> KIota (lk d, w))
  | Op.MemLoad -> (
      let d = res () and mem = op 0 and ix = op 1 in
      match Hashtbl.find_opt rowmap mem.Value.id with
      | Some site ->
          let buf = site.ls_buf and stride = site.ls_stride in
          let u = proved () in
          mk [ ix ] [ d ] (fun lk ->
              if u then KRowLoadU (lk d, buf, lk ix, stride)
              else KRowLoad (lk d, buf, lk ix, stride))
      | None ->
          let mm = E.mslot c mem in
          let u = proved () in
          mk [ ix ] [ d ] (fun lk ->
              if u then KLoadU (lk d, mm, lk ix) else KLoad (lk d, mm, lk ix)))
  | Op.MemStore ->
      let a = op 0 and mem = op 1 and ix = op 2 in
      if Hashtbl.mem rowmap mem.Value.id then None
      else
        let mm = E.mslot c mem in
        let u = proved () in
        mk [ a; ix ] [] (fun lk ->
            if u then KStoreU (lk a, mm, lk ix) else KStore (lk a, mm, lk ix))
  | Op.VecLoad -> (
      let d = res () and mem = op 0 and ix = op 1 in
      let w = ew_of d in
      match Hashtbl.find_opt rowmap mem.Value.id with
      | Some site ->
          let buf = site.ls_buf and stride = site.ls_stride in
          let u = proved () in
          mk [ ix ] [ d ] (fun lk ->
              if u then KRowVLoadU (lk d, buf, lk ix, w, stride)
              else KRowVLoad (lk d, buf, lk ix, w, stride))
      | None ->
          let mm = E.mslot c mem in
          let u = proved () in
          mk [ ix ] [ d ] (fun lk ->
              if u then KVLoadU (lk d, mm, lk ix, w)
              else KVLoad (lk d, mm, lk ix, w)))
  | Op.VecStore ->
      let a = op 0 and mem = op 1 and ix = op 2 in
      let w = ew_of a in
      if Hashtbl.mem rowmap mem.Value.id then None
      else
        let mm = E.mslot c mem in
        let u = proved () in
        mk [ a; ix ] [] (fun lk ->
            if u then KVStoreU (lk a, mm, lk ix, w)
            else KVStore (lk a, mm, lk ix, w))
  | Op.Gather ->
      let d = res () and mem = op 0 and ixs = op 1 in
      let w = ew_of ixs in
      if Hashtbl.mem rowmap mem.Value.id then None
      else
        let mm = E.mslot c mem in
        let u = proved () in
        mk [ ixs ] [ d ] (fun lk ->
            if u then KGatherU (lk d, mm, lk ixs, w)
            else KGather (lk d, mm, lk ixs, w))
  | Op.Scatter ->
      let a = op 0 and mem = op 1 and ixs = op 2 in
      let w = ew_of a in
      if Hashtbl.mem rowmap mem.Value.id then None
      else
        let mm = E.mslot c mem in
        let u = proved () in
        mk [ a; ixs ] [] (fun lk ->
            if u then KScatterU (lk a, mm, lk ixs, w)
            else KScatter (lk a, mm, lk ixs, w))
  | Op.Call _ -> (
      match Hashtbl.find_opt luts o.Op.o_id with
      | None -> None
      | Some site ->
          let x = site.ls_x in
          mk [ x ] [] (fun lk ->
              KLut
                {
                  k_buf = site.ls_buf;
                  k_mm = site.ls_mm;
                  k_x = lk x;
                  k_w = site.ls_w;
                  k_lo = site.ls_lo;
                  k_step = site.ls_step;
                  k_rows = site.ls_rows;
                  k_cols = site.ls_cols;
                  k_cubic = site.ls_cubic;
                }))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Planning: tileability gate, LUT sites, pairing, coalescing          *)
(* ------------------------------------------------------------------ *)

(* A live-in whose defining chain outside the loop is a literal constant
   (or a broadcast of one).  Its row contents never change between tile
   activations, so instead of re-importing it per activation (KImpVF
   alone costs [n × w] writes each time) the row is filled once, at
   compile time, and excluded from the executed stream. *)
type pre = PreF of float | PreI of int | PreB of bool

type plan = {
  p_stream : ainstr array;  (** imports then body, in order *)
  p_prefill : (Value.t * pre) list;
      (** constant-provenance live-ins: rows filled once per compile,
          pinned live across the whole stream so they are never reused *)
  p_asn : Regalloc.assignment;
  p_strides : int array;  (** per LUT buffer: floats per tile block *)
  p_bytes : int;  (** coalesced register-file bytes per tile block *)
}

(* Live-in import: a value defined outside the loop is uniform across the
   tile; splat it from its closure-engine register (written by the
   surrounding thunks before the loop runs). *)
let import_of (c : E.fctx) ~(iv : Value.t) (v : Value.t) : ainstr =
  if v.Value.id = iv.Value.id then
    { a_uses = []; a_defs = [ v ]; a_emit = (fun lk -> KIv (lk v)) }
  else
    match v.Value.ty with
    | Ty.F64 ->
        let s = E.fslot c v in
        { a_uses = []; a_defs = [ v ]; a_emit = (fun lk -> KImpF (lk v, s)) }
    | Ty.I64 ->
        let s = E.islot c v in
        { a_uses = []; a_defs = [ v ]; a_emit = (fun lk -> KImpI (lk v, s)) }
    | Ty.I1 ->
        let s = E.bslot c v in
        { a_uses = []; a_defs = [ v ]; a_emit = (fun lk -> KImpB (lk v, s)) }
    | Ty.Vec (w, Ty.F64) ->
        let s, _ = E.vfslot c v in
        { a_uses = []; a_defs = [ v ]; a_emit = (fun lk -> KImpVF (lk v, w, s)) }
    | Ty.Vec (w, Ty.I64) ->
        let s, _ = E.vislot c v in
        { a_uses = []; a_defs = [ v ]; a_emit = (fun lk -> KImpVI (lk v, w, s)) }
    | Ty.Vec (w, Ty.I1) ->
        let s, _ = E.vbslot c v in
        { a_uses = []; a_defs = [ v ]; a_emit = (fun lk -> KImpVB (lk v, w, s)) }
    | _ -> raise Not_tileable

(* Recognize the LUT call sites of a loop body and validate that each
   row buffer is private to the pattern: its only uses anywhere in the
   function are the one interp call plus loads inside this body (those
   get rewritten against the macro-op's private storage). *)
let find_lut_sites (c : E.fctx) (fn : Func.func) (body : Op.op list) :
    (int, lut_site) Hashtbl.t * (int, lut_site) Hashtbl.t * int array =
  let consts_f : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let consts_i : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Op.iter_region
    (fun o ->
      match (o.Op.kind, o.Op.results) with
      | Op.ConstF x, [| r |] -> Hashtbl.replace consts_f r.Value.id x
      | Op.ConstI x, [| r |] -> Hashtbl.replace consts_i r.Value.id x
      | _ -> ())
    fn.Func.f_body;
  let body_ids = Hashtbl.create 64 in
  List.iter (fun (o : Op.op) -> Hashtbl.replace body_ids o.Op.o_id ()) body;
  let row_private (call : Op.op) (row : Value.t) : bool =
    let ok = ref true in
    Op.iter_region
      (fun o ->
        if Array.exists (fun v -> v.Value.id = row.Value.id) o.Op.operands
           && o.Op.o_id <> call.Op.o_id
        then
          match o.Op.kind with
          | (Op.MemLoad | Op.VecLoad)
            when Hashtbl.mem body_ids o.Op.o_id
                 && o.Op.operands.(0).Value.id = row.Value.id ->
              ()
          | _ -> ok := false)
      fn.Func.f_body;
    !ok
  in
  let luts = Hashtbl.create 8 and rowmap = Hashtbl.create 8 in
  let strides = ref [] and nbuf = ref 0 in
  List.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.Call name -> (
          match lut_cubic_of_callee name with
          | None -> ()
          | Some cubic ->
              if Array.length o.Op.operands <> 7 then raise Not_tileable;
              let table = o.Op.operands.(0)
              and row = o.Op.operands.(1)
              and x = o.Op.operands.(2) in
              let cf v = Hashtbl.find_opt consts_f v.Value.id
              and ci v = Hashtbl.find_opt consts_i v.Value.id in
              let geom =
                match
                  ( cf o.Op.operands.(3),
                    cf o.Op.operands.(4),
                    ci o.Op.operands.(5),
                    ci o.Op.operands.(6) )
                with
                | Some lo, Some step, Some rows, Some cols ->
                    Some (lo, step, rows, cols)
                | _ -> None
              in
              (match geom with
              | None -> raise Not_tileable
              | Some (lo, step, rows, cols) ->
                  if
                    (not (Ty.is_float_like x.Value.ty))
                    || Hashtbl.mem rowmap row.Value.id
                    || not (row_private o row)
                  then raise Not_tileable;
                  let w = ew_of x in
                  let site =
                    {
                      ls_buf = !nbuf;
                      ls_mm = E.mslot c table;
                      ls_x = x;
                      ls_w = w;
                      ls_lo = lo;
                      ls_step = step;
                      ls_rows = rows;
                      ls_cols = cols;
                      ls_cubic = cubic;
                      ls_stride = cols * w;
                    }
                  in
                  incr nbuf;
                  strides := site.ls_stride :: !strides;
                  Hashtbl.replace luts o.Op.o_id site;
                  Hashtbl.replace rowmap row.Value.id site))
      | _ -> ())
    body;
  (luts, rowmap, Array.of_list (List.rev !strides))

(* Plan one [scf.for {parallel}]: straight-line body, every op selectable
   as a tile instruction, no loop-carried values.  Returns [None] when
   any of that fails (the caller falls back). *)
let plan_loop (c : E.fctx) ~(uc : (int, int) Hashtbl.t) (fn : Func.func)
    (o : Op.op) : plan option =
  match o.Op.kind with
  | Op.For { parallel = true }
    when Array.length o.Op.operands = 3
         && Array.length o.Op.results = 0
         && Array.length o.Op.regions = 1 -> (
      let r = o.Op.regions.(0) in
      match r.Op.r_args with
      | [ iv ] -> (
          try
            let ops =
              List.filter
                (fun (b : Op.op) ->
                  if Array.length b.Op.regions > 0 then raise Not_tileable;
                  match b.Op.kind with
                  | Op.Yield ->
                      if Array.length b.Op.operands > 0 then raise Not_tileable;
                      false
                  | Op.Return | Op.For _ | Op.If -> raise Not_tileable
                  | _ -> true)
                r.Op.r_ops
            in
            let luts, rowmap, strides = find_lut_sites c fn ops in
            (* producer/consumer pairing (first body user of each value) *)
            let user_of : (int, Op.op) Hashtbl.t = Hashtbl.create 64 in
            List.iter
              (fun (b : Op.op) ->
                Array.iter
                  (fun (v : Value.t) ->
                    if not (Hashtbl.mem user_of v.Value.id) then
                      Hashtbl.add user_of v.Value.id b)
                  b.Op.operands)
              ops;
            let deferred : (int, unit) Hashtbl.t = Hashtbl.create 16 in
            let pair_of : (int, Op.op) Hashtbl.t = Hashtbl.create 16 in
            List.iter
              (fun (p : Op.op) ->
                if
                  Op.pure p
                  && Array.length p.Op.results = 1
                  && single_use uc p.Op.results.(0)
                  && not (Hashtbl.mem pair_of p.Op.o_id)
                then
                  match Hashtbl.find_opt user_of p.Op.results.(0).Value.id with
                  | Some consumer
                    when (not (Hashtbl.mem pair_of consumer.Op.o_id))
                         && (not (Hashtbl.mem deferred consumer.Op.o_id))
                         && pair_sel p consumer <> None ->
                      Hashtbl.add deferred p.Op.o_id ();
                      Hashtbl.add pair_of consumer.Op.o_id p
                  | _ -> ())
              ops;
            let body_stream =
              List.filter_map
                (fun (b : Op.op) ->
                  if Hashtbl.mem deferred b.Op.o_id then None
                  else
                    match Hashtbl.find_opt pair_of b.Op.o_id with
                    | Some p -> (
                        match pair_sel p b with
                        | Some ai -> Some ai
                        | None -> raise Not_tileable)
                    | None -> (
                        match sel_op c ~luts ~rowmap b with
                        | Some ai -> Some ai
                        | None -> raise Not_tileable))
                ops
            in
            (* constant provenance of values defined outside the loop:
               literal consts and broadcasts of them (the specializer's
               splat folding produces many of the latter).  Body-defined
               values can land in this map too, but they are never import
               candidates, so the lookup below only ever sees live-ins. *)
            let prov : (int, pre) Hashtbl.t = Hashtbl.create 64 in
            Op.iter_region
              (fun (o : Op.op) ->
                match (o.Op.kind, o.Op.results) with
                | Op.ConstF x, [| res |] ->
                    Hashtbl.replace prov res.Value.id (PreF x)
                | Op.ConstI x, [| res |] ->
                    Hashtbl.replace prov res.Value.id (PreI x)
                | Op.ConstB x, [| res |] ->
                    Hashtbl.replace prov res.Value.id (PreB x)
                | Op.Broadcast, [| res |] -> (
                    match Hashtbl.find_opt prov o.Op.operands.(0).Value.id with
                    | Some p -> Hashtbl.replace prov res.Value.id p
                    | None -> ())
                | _ -> ())
              fn.Func.f_body;
            (* live-in imports, in order of first use; constant-provenance
               live-ins become prefills instead of per-activation imports *)
            let defined = Hashtbl.create 64 in
            let imports = ref [] and prefills = ref [] in
            List.iter
              (fun ai ->
                List.iter
                  (fun (v : Value.t) ->
                    if not (Hashtbl.mem defined v.Value.id) then begin
                      Hashtbl.replace defined v.Value.id ();
                      match Hashtbl.find_opt prov v.Value.id with
                      | Some p when v.Value.id <> iv.Value.id ->
                          prefills := (v, p) :: !prefills
                      | _ -> imports := import_of c ~iv v :: !imports
                    end)
                  ai.a_uses;
                List.iter
                  (fun (v : Value.t) -> Hashtbl.replace defined v.Value.id ())
                  ai.a_defs)
              body_stream;
            let prefills = List.rev !prefills in
            let stream = Array.of_list (List.rev !imports @ body_stream) in
            (* register allocation sees the prefill defs as leading
               pseudo-instructions and one trailing pin that uses every
               prefill row: their live ranges span the whole stream, so
               linear scan never hands those rows to a body definition.
               The executed stream excludes both ends. *)
            let npre = List.length prefills in
            let ns = Array.length stream in
            let uses = Array.make (npre + ns + 1) []
            and defs = Array.make (npre + ns + 1) [] in
            List.iteri (fun i (v, _) -> defs.(i) <- [ areg_of v ]) prefills;
            Array.iteri
              (fun i ai ->
                uses.(npre + i) <- List.map areg_of ai.a_uses;
                defs.(npre + i) <- List.map areg_of ai.a_defs)
              stream;
            uses.(npre + ns) <- List.map (fun (v, _) -> areg_of v) prefills;
            let prog = { Regalloc.uses; defs } in
            let asn = Regalloc.allocate prog in
            let bytes =
              List.fold_left
                (fun acc (cls, cnt) ->
                  let kind = cls lsr 8 and ew = cls land 0xff in
                  acc + (cnt * ew * if kind = 2 then 1 else 8))
                0 asn.Regalloc.counts
              + Array.fold_left (fun acc s -> acc + (s * 8)) 0 strides
            in
            Some
              {
                p_stream = stream;
                p_prefill = prefills;
                p_asn = asn;
                p_strides = strides;
                p_bytes = bytes;
              }
          with Not_tileable -> None)
      | _ -> None)
  | _ -> None

let choose_tile ~(tile : int) (p : plan) : int =
  if tile > 0 then tile
  else
    max min_auto_tile
      (min max_auto_tile (l1_budget_bytes / max 1 p.p_bytes))

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* Materialize a plan: physical rows, private LUT storage, the tinstr
   array, and the driving tile loop.  [fallback] compiles the same loop
   with the closure engine; it is only forced for non-positive runtime
   steps (where tiling's iteration count formula does not apply). *)
let compile_tiled (c : E.fctx) ~(tile : int) ~(uc : (int, int) Hashtbl.t)
    (fn : Func.func) ~(fallback : (unit -> unit) Lazy.t) (o : Op.op) :
    (unit -> unit) option =
  match plan_loop c ~uc fn o with
  | None -> None
  | Some p ->
      let t = choose_tile ~tile p in
      let classes =
        List.sort (fun (a, _) (b, _) -> compare a b) p.p_asn.Regalloc.counts
      in
      let bases : (int, int) Hashtbl.t = Hashtbl.create 8 in
      let kn = [| 0; 0; 0 |] in
      List.iter
        (fun (cls, cnt) ->
          let kind = cls lsr 8 in
          Hashtbl.replace bases cls kn.(kind);
          kn.(kind) <- kn.(kind) + cnt)
        classes;
      let fr = Array.make (max 1 kn.(0)) (Float.Array.create 0) in
      let ir = Array.make (max 1 kn.(1)) [||] in
      let br = Array.make (max 1 kn.(2)) [||] in
      List.iter
        (fun (cls, cnt) ->
          let kind = cls lsr 8 and ew = cls land 0xff in
          let base = Hashtbl.find bases cls in
          for j = base to base + cnt - 1 do
            match kind with
            | 0 -> fr.(j) <- Float.Array.make (t * ew) 0.0
            | 1 -> ir.(j) <- Array.make (t * ew) 0
            | _ -> br.(j) <- Array.make (t * ew) false
          done)
        classes;
      let lb =
        Array.map (fun s -> Float.Array.make (max 1 (t * s)) 0.0) p.p_strides
      in
      let look (v : Value.t) : int =
        let a = areg_of v in
        match Hashtbl.find_opt p.p_asn.Regalloc.slot_of a with
        | Some s -> Hashtbl.find bases a.Regalloc.vclass + s
        | None -> fail "batched: value %%%d has no row" v.Value.id
      in
      (* constant rows: filled once here, for the full tile extent, so
         any activation count [n <= t] reads prefilled data; the
         executed stream never writes them (pinned in the allocation) *)
      List.iter
        (fun ((v : Value.t), pre) ->
          let row = look v and ew = ew_of v in
          match pre with
          | PreF x -> Float.Array.fill fr.(row) 0 (t * ew) x
          | PreI x -> Array.fill ir.(row) 0 (t * ew) x
          | PreB x -> Array.fill br.(row) 0 (t * ew) x)
        p.p_prefill;
      if p.p_prefill <> [] then
        Obs.Tracer.count "batched.prefill_rows"
          (float_of_int (List.length p.p_prefill));
      let code = Array.map (fun ai -> ai.a_emit look) p.p_stream in
      let st = { fr; ir; br; lb; base = 0; stp = 1; n = 0 } in
      let run = exec_tile code st c.E.env in
      let lbs = E.islot c o.Op.operands.(0)
      and ubs = E.islot c o.Op.operands.(1)
      and sts = E.islot c o.Op.operands.(2) in
      let env = c.E.env in
      Some
        (fun () ->
          let lo = env.E.i.(lbs)
          and hi = env.E.i.(ubs)
          and stp = env.E.i.(sts) in
          if stp <= 0 then Lazy.force fallback ()
          else begin
            let niter = if hi <= lo then 0 else ((hi - lo) + stp - 1) / stp in
            st.stp <- stp;
            let donec = ref 0 in
            while !donec < niter do
              let nb = min t (niter - !donec) in
              st.n <- nb;
              st.base <- lo + (!donec * stp);
              run ();
              Obs.Tracer.count "batched.tiles" 1.0;
              donec := !donec + nb
            done
          end)

let compile_func ?(tile = 0) ?proved ~(get : string -> E.compiled)
    (fn : Func.func) : E.compiled =
  Obs.Tracer.with_span ("batched.compile:" ^ fn.Func.f_name) @@ fun () ->
  let c = E.make_fctx ?proved fn ~get in
  let uc = use_counts fn in
  let tiled = ref false in
  let rec region ~on_yield (r : Op.region) : unit -> unit =
    let thunks =
      List.map
        (fun (o : Op.op) ->
          match o.Op.kind with
          | Op.Yield -> on_yield o
          | Op.For { parallel = true } -> (
              let fallback = lazy (E.compile_op c ~compile_region:region o) in
              match
                Obs.Tracer.with_span "batched.plan" (fun () ->
                    compile_tiled c ~tile ~uc fn ~fallback o)
              with
              | Some th ->
                  tiled := true;
                  th
              | None -> Lazy.force fallback)
          | _ -> E.compile_op c ~compile_region:region o)
        r.Op.r_ops
      |> Array.of_list
    in
    fun () ->
      for k = 0 to Array.length thunks - 1 do
        (Array.unsafe_get thunks k) ()
      done
  in
  let body =
    region fn.Func.f_body ~on_yield:(fun _ ->
        fail "batched: yield outside a loop")
  in
  if !tiled then E.finish c fn ~body
  else
    (* No tileable loop (LUT initializers, sequential code): the fused
       threaded-code engine is the best bitwise-identical fallback. *)
    Fused.compile_func ?proved ~get fn

let compile_module ?externs ?proved ?(tile = 0) (m : Func.modl) :
    string -> E.compiled =
  E.module_linker ?externs m (fun ~get f -> compile_func ~tile ?proved ~get f)

let run ?externs ?(tile = 0) (m : Func.modl) (name : string)
    (args : Rt.v array) : Rt.v array =
  (compile_module ?externs ~tile m) name args

(* The driver needs the resolved tile size before it carves Domain-parallel
   chunks (chunk boundaries must fall on tile boundaries, or two domains
   would share a tile's scratch rows).  Planning is deterministic and
   independent of [proved]/[get], so this always matches what
   {!compile_func} will pick for the same [tile] argument. *)
let plan_tile ?(tile = 0) (m : Func.modl) ~(name : string) : int =
  if tile > 0 then tile
  else
    match Func.find_func m name with
    | None -> 1
    | Some fn ->
        let c =
          E.make_fctx fn ~get:(fun n -> fun _ -> fail "plan_tile: call %s" n)
        in
        let uc = use_counts fn in
        let found = ref 0 in
        Op.iter_region
          (fun o ->
            if !found = 0 then
              match o.Op.kind with
              | Op.For { parallel = true } -> (
                  match plan_loop c ~uc fn o with
                  | Some p -> found := choose_tile ~tile:0 p
                  | None -> ())
              | _ -> ())
          fn.Func.f_body;
        if !found > 0 then !found else 1
