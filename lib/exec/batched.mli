(** Tile-batched execution engine (loop inversion).

    Third-generation engine: a kernel's [scf.for {parallel}] cell loop is
    lowered once into *tile ops*, each executing one instruction across a
    whole tile of K vector blocks via a tight loop over an unboxed row —
    dispatch cost O(instrs × tiles) instead of O(instrs × cells).  Scratch
    rows are coalesced by live range ({!Regalloc}) so the per-tile register
    file stays L1-resident, and LUT interpolation runs as one fused
    macro-op per call site mirroring {!Runtime.Lut} operation for
    operation.  Loops that do not fit the tiling gate (loop-carried values,
    nested control flow, unrecognized ops) and functions without a parallel
    loop fall back to the {!Fused} engine; results are bitwise identical to
    the other engines either way, for every tile size. *)

val compile_func :
  ?tile:int ->
  ?proved:(int, unit) Hashtbl.t ->
  get:(string -> Engine.compiled) ->
  Ir.Func.func ->
  Engine.compiled
(** Compile one function against a callee lookup.  [tile] is the tile
    size in vector blocks; [0] (default) sizes the tile so the coalesced
    register file fits a 32 KiB L1 budget.  [proved] op ids compile
    without runtime bounds checks (see {!Analysis.Bounds}). *)

val compile_module :
  ?externs:Rt.registry ->
  ?proved:(int, unit) Hashtbl.t ->
  ?tile:int ->
  Ir.Func.modl ->
  string ->
  Engine.compiled
(** Lazy per-function compile-and-link, mirroring
    {!Engine.compile_module}. *)

val run :
  ?externs:Rt.registry ->
  ?tile:int ->
  Ir.Func.modl ->
  string ->
  Rt.v array ->
  Rt.v array
(** Compile and invoke one function. *)

val plan_tile : ?tile:int -> Ir.Func.modl -> name:string -> int
(** The tile size (in vector blocks) {!compile_func} will use for the
    named function's cell loop, resolved without compiling: an explicit
    [tile > 0] verbatim, else the auto-sized tile, else [1] when the
    function has no tileable loop.  The driver aligns Domain-parallel
    chunk boundaries to this. *)
