open Ir
(** Closure-compiling execution engine.

    The IR of a function is compiled once into a tree of OCaml closures
    ("thunks") operating over preallocated typed register files — the OCaml
    stand-in for LLVM's native code generation.  Every SSA value gets a
    fixed slot; vector values get a preallocated [floatarray] of their
    width, so steady-state execution performs no allocation in straight-line
    code.  A vector op executes its whole width inside one closure
    invocation, which is what gives vectorized kernels their genuine
    wall-clock advantage over scalar ones in this port (one dispatch per
    [w] lanes, contiguous memory traffic), mirroring the paper's SIMD
    argument at the interpreter level.

    The building blocks (slot allocation, register files, the per-op thunk
    compiler) are exposed so that {!Fused} can reuse them: the fused
    threaded-code engine shares this module's compilation context and falls
    back to the closure path for ops it does not specialize. *)

exception Exec_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

type slot =
  | SF of int
  | SI of int
  | SB of int
  | SVF of int * int  (** slot, width *)
  | SVI of int * int
  | SVB of int * int
  | SM of int

(* Vector width lists are kept reversed and finalized once in [make_env];
   allocation is O(1) per value (a previous version appended with
   [!r @ [w]], which was O(n²) over the SSA values of a function). *)
type slots = {
  map : (int, slot) Hashtbl.t;
  mutable nf : int;
  mutable ni : int;
  mutable nb : int;
  mutable nvf : int;
  mutable nvi : int;
  mutable nvb : int;
  mutable vf_widths_rev : int list;
  mutable vi_widths_rev : int list;
  mutable vb_widths_rev : int list;
  mutable nm : int;
}

let alloc_slot (s : slots) (v : Value.t) : unit =
  if not (Hashtbl.mem s.map v.id) then begin
    let slot =
      match v.ty with
      | Ty.F64 ->
          let k = s.nf in
          s.nf <- k + 1;
          SF k
      | Ty.I64 ->
          let k = s.ni in
          s.ni <- k + 1;
          SI k
      | Ty.I1 ->
          let k = s.nb in
          s.nb <- k + 1;
          SB k
      | Ty.Vec (w, Ty.F64) ->
          let k = s.nvf in
          s.nvf <- k + 1;
          s.vf_widths_rev <- w :: s.vf_widths_rev;
          SVF (k, w)
      | Ty.Vec (w, Ty.I64) ->
          let k = s.nvi in
          s.nvi <- k + 1;
          s.vi_widths_rev <- w :: s.vi_widths_rev;
          SVI (k, w)
      | Ty.Vec (w, Ty.I1) ->
          let k = s.nvb in
          s.nvb <- k + 1;
          s.vb_widths_rev <- w :: s.vb_widths_rev;
          SVB (k, w)
      | Ty.Vec (_, _) -> fail "unsupported vector element type"
      | Ty.Memref ->
          let k = s.nm in
          s.nm <- k + 1;
          SM k
    in
    Hashtbl.replace s.map v.id slot
  end

let collect_slots (f : Func.func) : slots =
  let s =
    {
      map = Hashtbl.create 64;
      nf = 0;
      ni = 0;
      nb = 0;
      nvf = 0;
      nvi = 0;
      nvb = 0;
      vf_widths_rev = [];
      vi_widths_rev = [];
      vb_widths_rev = [];
      nm = 0;
    }
  in
  List.iter (alloc_slot s) f.Func.f_params;
  let rec walk (r : Op.region) =
    List.iter (alloc_slot s) r.Op.r_args;
    List.iter
      (fun (o : Op.op) ->
        Array.iter (alloc_slot s) o.results;
        Array.iter walk o.regions)
      r.Op.r_ops
  in
  walk f.Func.f_body;
  s

type env = {
  f : float array;
  i : int array;
  b : bool array;
  vf : floatarray array;
  vi : int array array;
  vb : bool array array;
  m : floatarray array;
}

let make_env (s : slots) : env =
  {
    f = Array.make (max 1 s.nf) 0.0;
    i = Array.make (max 1 s.ni) 0;
    b = Array.make (max 1 s.nb) false;
    vf = Array.of_list (List.rev_map Float.Array.create s.vf_widths_rev);
    vi = Array.of_list (List.rev_map (fun w -> Array.make w 0) s.vi_widths_rev);
    vb =
      Array.of_list (List.rev_map (fun w -> Array.make w false) s.vb_widths_rev);
    m = Array.make (max 1 s.nm) (Float.Array.create 0);
  }

(* Fast paths for the common unary/binary math builtins; everything else
   goes through the generic Builtins eval with a per-element array. *)
let unary_fn : string -> (float -> float) option = function
  | "square" -> Some (fun x -> x *. x)
  | "cube" -> Some (fun x -> x *. x *. x)
  | "exp" -> Some Float.exp
  | "expm1" -> Some Float.expm1
  | "log" -> Some Float.log
  | "log1p" -> Some Float.log1p
  | "log10" -> Some Float.log10
  | "log2" -> Some Float.log2
  | "sqrt" -> Some Float.sqrt
  | "cbrt" -> Some Float.cbrt
  | "fabs" | "abs" -> Some Float.abs
  | "floor" -> Some Float.floor
  | "ceil" -> Some Float.ceil
  | "round" -> Some Float.round
  | "trunc" -> Some Float.trunc
  | "sin" -> Some Float.sin
  | "cos" -> Some Float.cos
  | "tan" -> Some Float.tan
  | "tanh" -> Some Float.tanh
  | "sinh" -> Some Float.sinh
  | "cosh" -> Some Float.cosh
  | "asin" -> Some Float.asin
  | "acos" -> Some Float.acos
  | "atan" -> Some Float.atan
  | _ -> None

let binary_fn : string -> (float -> float -> float) option = function
  | "pow" -> Some Float.pow
  | "atan2" -> Some Float.atan2
  | "fmod" -> Some Float.rem
  | "min" | "fmin" -> Some Float.min
  | "max" | "fmax" -> Some Float.max
  | "hypot" -> Some Float.hypot
  | _ -> None

let fbin_fn : Op.fbin -> float -> float -> float = function
  | Op.FAdd -> ( +. )
  | Op.FSub -> ( -. )
  | Op.FMul -> ( *. )
  | Op.FDiv -> ( /. )
  | Op.FMin -> Float.min
  | Op.FMax -> Float.max
  | Op.FRem -> Float.rem

let ibin_fn : Op.ibin -> int -> int -> int = function
  | Op.IAdd -> ( + )
  | Op.ISub -> ( - )
  | Op.IMul -> ( * )
  | Op.IDiv -> ( / )
  | Op.IRem -> ( mod )

let bbin_fn : Op.bbin -> bool -> bool -> bool = function
  | Op.BAnd -> ( && )
  | Op.BOr -> ( || )
  | Op.BXor -> ( <> )

let cmpf_fn : Op.cmp -> float -> float -> bool = function
  | Op.Lt -> ( < )
  | Op.Le -> ( <= )
  | Op.Gt -> ( > )
  | Op.Ge -> ( >= )
  | Op.Eq -> ( = )
  | Op.Ne -> ( <> )

let cmpi_fn : Op.cmp -> int -> int -> bool = function
  | Op.Lt -> ( < )
  | Op.Le -> ( <= )
  | Op.Gt -> ( > )
  | Op.Ge -> ( >= )
  | Op.Eq -> ( = )
  | Op.Ne -> ( <> )

type compiled = Rt.v array -> Rt.v array

(** Per-function compilation context: the slot map, the register file, the
    module-level callee lookup and the return-value box.  One context per
    compiled function instance; compiled code is NOT reentrant because the
    register file is owned by the context. *)
type fctx = {
  slots : slots;
  env : env;
  get : string -> compiled;
  return_box : Rt.v array ref;
  proved : (int, unit) Hashtbl.t;
      (** op ids whose accesses the bounds prover certified in-bounds;
          those ops compile to unchecked loads/stores (see
          [Analysis.Bounds]).  Only failure checks are elided, never
          value-affecting clamps, so results are bitwise unchanged. *)
}

(* Shared read-only empty proof set for callers that don't elide. *)
let no_proofs : (int, unit) Hashtbl.t = Hashtbl.create 1

let make_fctx ?(proved = no_proofs) (fn : Func.func)
    ~(get : string -> compiled) : fctx =
  let slots = collect_slots fn in
  { slots; env = make_env slots; get; return_box = ref [||]; proved }

let slot (c : fctx) (v : Value.t) : slot = Hashtbl.find c.slots.map v.id

let fslot c v = match slot c v with SF k -> k | _ -> fail "expected f64 slot"
let islot c v = match slot c v with SI k -> k | _ -> fail "expected i64 slot"
let bslot c v = match slot c v with SB k -> k | _ -> fail "expected i1 slot"

let vfslot c v =
  match slot c v with SVF (k, w) -> (k, w) | _ -> fail "expected vf slot"

let vislot c v =
  match slot c v with SVI (k, w) -> (k, w) | _ -> fail "expected vi slot"

let vbslot c v =
  match slot c v with SVB (k, w) -> (k, w) | _ -> fail "expected vb slot"

let mslot c v =
  match slot c v with SM k -> k | _ -> fail "expected memref slot"

(* write an Rt.v into a slot / read a slot as Rt.v *)
let set_slot (c : fctx) (v : Value.t) (x : Rt.v) : unit =
  let { f; i; b; vf; vi; vb; m } = c.env in
  match (slot c v, x) with
  | SF k, Rt.F x -> f.(k) <- x
  | SI k, Rt.I x -> i.(k) <- x
  | SB k, Rt.B x -> b.(k) <- x
  | SVF (k, w), Rt.VF a ->
      if Float.Array.length a <> w then fail "vector width mismatch";
      Float.Array.blit a 0 vf.(k) 0 w
  | SVI (k, w), Rt.VI a ->
      if Array.length a <> w then fail "vector width mismatch";
      Array.blit a 0 vi.(k) 0 w
  | SVB (k, w), Rt.VB a ->
      if Array.length a <> w then fail "vector width mismatch";
      Array.blit a 0 vb.(k) 0 w
  | SM k, Rt.M a -> m.(k) <- a
  | _, x ->
      fail "argument of type %s does not match slot for %%%d" (Rt.type_name x)
        v.id

let get_slot (c : fctx) (v : Value.t) : Rt.v =
  let { f; i; b; vf; vi; vb; m } = c.env in
  match slot c v with
  | SF k -> Rt.F f.(k)
  | SI k -> Rt.I i.(k)
  | SB k -> Rt.B b.(k)
  | SVF (k, w) ->
      let a = Float.Array.create w in
      Float.Array.blit vf.(k) 0 a 0 w;
      Rt.VF a
  | SVI (k, w) -> Rt.VI (Array.sub vi.(k) 0 w)
  | SVB (k, w) -> Rt.VB (Array.sub vb.(k) 0 w)
  | SM k -> Rt.M m.(k)

(** Parallel copy src values -> dst values (same types), through temps, so
    yields that permute loop-carried values don't clobber each other. *)
let parallel_copy (c : fctx) (srcs : Value.t array) (dsts : Value.t list) :
    unit -> unit =
  let { f; i; b; vf; vi; vb; m } = c.env in
  let dsts = Array.of_list dsts in
  let moves =
    Array.map2
      (fun (s : Value.t) (d : Value.t) ->
        match (slot c s, slot c d) with
        | SF a, SF b_ -> `F (a, b_)
        | SI a, SI b_ -> `I (a, b_)
        | SB a, SB b_ -> `B (a, b_)
        | SVF (a, w), SVF (b_, _) -> `VF (a, b_, w)
        | SVI (a, w), SVI (b_, _) -> `VI (a, b_, w)
        | SVB (a, w), SVB (b_, _) -> `VB (a, b_, w)
        | SM a, SM b_ -> `M (a, b_)
        | _ -> fail "yield type mismatch in parallel copy")
      srcs dsts
  in
  (* temps for the scalar categories + vector categories *)
  let n = Array.length moves in
  let tf = Array.make n 0.0
  and ti = Array.make n 0
  and tb = Array.make n false
  and tm = Array.make n (Float.Array.create 0) in
  let tvf =
    Array.map
      (function
        | `VF (_, _, w) -> Float.Array.create w | _ -> Float.Array.create 0)
      moves
  and tvi =
    Array.map (function `VI (_, _, w) -> Array.make w 0 | _ -> [||]) moves
  and tvb =
    Array.map (function `VB (_, _, w) -> Array.make w false | _ -> [||]) moves
  in
  fun () ->
    Array.iteri
      (fun k mv ->
        match mv with
        | `F (a, _) -> tf.(k) <- f.(a)
        | `I (a, _) -> ti.(k) <- i.(a)
        | `B (a, _) -> tb.(k) <- b.(a)
        | `VF (a, _, w) -> Float.Array.blit vf.(a) 0 tvf.(k) 0 w
        | `VI (a, _, w) -> Array.blit vi.(a) 0 tvi.(k) 0 w
        | `VB (a, _, w) -> Array.blit vb.(a) 0 tvb.(k) 0 w
        | `M (a, _) -> tm.(k) <- m.(a))
      moves;
    Array.iteri
      (fun k mv ->
        match mv with
        | `F (_, d) -> f.(d) <- tf.(k)
        | `I (_, d) -> i.(d) <- ti.(k)
        | `B (_, d) -> b.(d) <- tb.(k)
        | `VF (_, d, w) -> Float.Array.blit tvf.(k) 0 vf.(d) 0 w
        | `VI (_, d, w) -> Array.blit tvi.(k) 0 vi.(d) 0 w
        | `VB (_, d, w) -> Array.blit tvb.(k) 0 vb.(d) 0 w
        | `M (_, d) -> m.(d) <- tm.(k))
      moves

(** A region compiler: given a yield handler, compile a region body to a
    thunk.  {!compile_op} is parameterized over it so that structured ops
    ([scf.for], [scf.if]) compile their nested regions with whichever
    engine (closure or fused) is driving the compilation. *)
type region_compiler =
  on_yield:(Op.op -> unit -> unit) -> Op.region -> unit -> unit

(** Compile one op to a thunk over the context's register file.  Handles
    every op kind; the fused engine uses this as its fallback path. *)
let compile_op (c : fctx) ~(compile_region : region_compiler) (o : Op.op) :
    unit -> unit =
  let { f; i; b; vf; vi; vb; m } = c.env in
  let fslot = fslot c
  and islot = islot c
  and bslot = bslot c
  and vfslot = vfslot c
  and vislot = vislot c
  and vbslot = vbslot c
  and mslot = mslot c in
  let op1 () = o.Op.operands.(0)
  and op2 () = o.Op.operands.(1)
  and op3 () = o.Op.operands.(2)
  and res () = o.Op.results.(0) in
  match o.Op.kind with
  | Op.ConstF cst ->
      let d = fslot (res ()) in
      fun () -> f.(d) <- cst
  | Op.ConstI cst ->
      let d = islot (res ()) in
      fun () -> i.(d) <- cst
  | Op.ConstB cst ->
      let d = bslot (res ()) in
      fun () -> b.(d) <- cst
  | Op.BinF k -> (
      let g = fbin_fn k in
      match (res ()).ty with
      | Ty.F64 ->
          let a = fslot (op1 ()) and c_ = fslot (op2 ()) and d = fslot (res ()) in
          (* specialize the four common arithmetic ops to avoid a
             closure call per operation *)
          (match k with
          | Op.FAdd -> fun () -> f.(d) <- f.(a) +. f.(c_)
          | Op.FSub -> fun () -> f.(d) <- f.(a) -. f.(c_)
          | Op.FMul -> fun () -> f.(d) <- f.(a) *. f.(c_)
          | Op.FDiv -> fun () -> f.(d) <- f.(a) /. f.(c_)
          | _ -> fun () -> f.(d) <- g f.(a) f.(c_))
      | _ ->
          let a, w = vfslot (op1 ())
          and c_, _ = vfslot (op2 ())
          and d, _ = vfslot (res ()) in
          (match k with
          | Op.FAdd ->
              fun () ->
                let x = vf.(a) and y = vf.(c_) and z = vf.(d) in
                for l = 0 to w - 1 do
                  Float.Array.set z l (Float.Array.get x l +. Float.Array.get y l)
                done
          | Op.FSub ->
              fun () ->
                let x = vf.(a) and y = vf.(c_) and z = vf.(d) in
                for l = 0 to w - 1 do
                  Float.Array.set z l (Float.Array.get x l -. Float.Array.get y l)
                done
          | Op.FMul ->
              fun () ->
                let x = vf.(a) and y = vf.(c_) and z = vf.(d) in
                for l = 0 to w - 1 do
                  Float.Array.set z l (Float.Array.get x l *. Float.Array.get y l)
                done
          | Op.FDiv ->
              fun () ->
                let x = vf.(a) and y = vf.(c_) and z = vf.(d) in
                for l = 0 to w - 1 do
                  Float.Array.set z l (Float.Array.get x l /. Float.Array.get y l)
                done
          | _ ->
              fun () ->
                let x = vf.(a) and y = vf.(c_) and z = vf.(d) in
                for l = 0 to w - 1 do
                  Float.Array.set z l (g (Float.Array.get x l) (Float.Array.get y l))
                done))
  | Op.NegF -> (
      match (res ()).ty with
      | Ty.F64 ->
          let a = fslot (op1 ()) and d = fslot (res ()) in
          fun () -> f.(d) <- -.f.(a)
      | _ ->
          let a, w = vfslot (op1 ()) and d, _ = vfslot (res ()) in
          fun () ->
            let x = vf.(a) and z = vf.(d) in
            for l = 0 to w - 1 do
              Float.Array.set z l (-.Float.Array.get x l)
            done)
  | Op.BinI k -> (
      let g = ibin_fn k in
      match (res ()).ty with
      | Ty.I64 ->
          let a = islot (op1 ()) and c_ = islot (op2 ()) and d = islot (res ()) in
          fun () -> i.(d) <- g i.(a) i.(c_)
      | _ ->
          let a, w = vislot (op1 ())
          and c_, _ = vislot (op2 ())
          and d, _ = vislot (res ()) in
          fun () ->
            for l = 0 to w - 1 do
              vi.(d).(l) <- g vi.(a).(l) vi.(c_).(l)
            done)
  | Op.BinB k -> (
      let g = bbin_fn k in
      match (res ()).ty with
      | Ty.I1 ->
          let a = bslot (op1 ()) and c_ = bslot (op2 ()) and d = bslot (res ()) in
          fun () -> b.(d) <- g b.(a) b.(c_)
      | _ ->
          let a, w = vbslot (op1 ())
          and c_, _ = vbslot (op2 ())
          and d, _ = vbslot (res ()) in
          fun () ->
            for l = 0 to w - 1 do
              vb.(d).(l) <- g vb.(a).(l) vb.(c_).(l)
            done)
  | Op.NotB -> (
      match (res ()).ty with
      | Ty.I1 ->
          let a = bslot (op1 ()) and d = bslot (res ()) in
          fun () -> b.(d) <- not b.(a)
      | _ ->
          let a, w = vbslot (op1 ()) and d, _ = vbslot (res ()) in
          fun () ->
            for l = 0 to w - 1 do
              vb.(d).(l) <- not vb.(a).(l)
            done)
  | Op.CmpF cc -> (
      let g = cmpf_fn cc in
      match (op1 ()).ty with
      | Ty.F64 ->
          let a = fslot (op1 ()) and x = fslot (op2 ()) and d = bslot (res ()) in
          fun () -> b.(d) <- g f.(a) f.(x)
      | _ ->
          let a, w = vfslot (op1 ())
          and x, _ = vfslot (op2 ())
          and d, _ = vbslot (res ()) in
          fun () ->
            for l = 0 to w - 1 do
              vb.(d).(l) <- g (Float.Array.get vf.(a) l) (Float.Array.get vf.(x) l)
            done)
  | Op.CmpI cc -> (
      let g = cmpi_fn cc in
      match (op1 ()).ty with
      | Ty.I64 ->
          let a = islot (op1 ()) and x = islot (op2 ()) and d = bslot (res ()) in
          fun () -> b.(d) <- g i.(a) i.(x)
      | _ ->
          let a, w = vislot (op1 ())
          and x, _ = vislot (op2 ())
          and d, _ = vbslot (res ()) in
          fun () ->
            for l = 0 to w - 1 do
              vb.(d).(l) <- g vi.(a).(l) vi.(x).(l)
            done)
  | Op.Select -> (
      match (res ()).ty with
      | Ty.F64 ->
          let c_ = bslot (op1 ()) and x = fslot (op2 ()) and y = fslot (op3 ())
          and d = fslot (res ()) in
          fun () -> f.(d) <- (if b.(c_) then f.(x) else f.(y))
      | Ty.I64 ->
          let c_ = bslot (op1 ()) and x = islot (op2 ()) and y = islot (op3 ())
          and d = islot (res ()) in
          fun () -> i.(d) <- (if b.(c_) then i.(x) else i.(y))
      | Ty.I1 ->
          let c_ = bslot (op1 ()) and x = bslot (op2 ()) and y = bslot (op3 ())
          and d = bslot (res ()) in
          fun () -> b.(d) <- (if b.(c_) then b.(x) else b.(y))
      | Ty.Vec (_, Ty.F64) ->
          let c_, w = vbslot (op1 ()) and x, _ = vfslot (op2 ())
          and y, _ = vfslot (op3 ()) and d, _ = vfslot (res ()) in
          fun () ->
            let z = vf.(d) in
            for l = 0 to w - 1 do
              Float.Array.set z l
                (if vb.(c_).(l) then Float.Array.get vf.(x) l
                 else Float.Array.get vf.(y) l)
            done
      | Ty.Vec (_, Ty.I64) ->
          let c_, w = vbslot (op1 ()) and x, _ = vislot (op2 ())
          and y, _ = vislot (op3 ()) and d, _ = vislot (res ()) in
          fun () ->
            for l = 0 to w - 1 do
              vi.(d).(l) <- (if vb.(c_).(l) then vi.(x).(l) else vi.(y).(l))
            done
      | _ -> fail "select: unsupported type")
  | Op.SIToFP -> (
      match (res ()).ty with
      | Ty.F64 ->
          let a = islot (op1 ()) and d = fslot (res ()) in
          fun () -> f.(d) <- float_of_int i.(a)
      | _ ->
          let a, w = vislot (op1 ()) and d, _ = vfslot (res ()) in
          fun () ->
            for l = 0 to w - 1 do
              Float.Array.set vf.(d) l (float_of_int vi.(a).(l))
            done)
  | Op.FPToSI -> (
      match (res ()).ty with
      | Ty.I64 ->
          let a = fslot (op1 ()) and d = islot (res ()) in
          fun () -> i.(d) <- int_of_float f.(a)
      | _ ->
          let a, w = vfslot (op1 ()) and d, _ = vislot (res ()) in
          fun () ->
            for l = 0 to w - 1 do
              vi.(d).(l) <- int_of_float (Float.Array.get vf.(a) l)
            done)
  | Op.Math name -> (
      let bi =
        match Easyml.Builtins.find name with
        | Some bi -> bi
        | None -> fail "unknown math builtin %s" name
      in
      match ((res ()).ty, bi.arity) with
      | Ty.F64, 1 -> (
          let a = fslot (op1 ()) and d = fslot (res ()) in
          match unary_fn name with
          | Some g -> fun () -> f.(d) <- g f.(a)
          | None ->
              let buf = [| 0.0 |] in
              fun () ->
                buf.(0) <- f.(a);
                f.(d) <- bi.eval buf)
      | Ty.F64, 2 -> (
          let a = fslot (op1 ()) and c_ = fslot (op2 ()) and d = fslot (res ()) in
          match binary_fn name with
          | Some g -> fun () -> f.(d) <- g f.(a) f.(c_)
          | None ->
              let buf = [| 0.0; 0.0 |] in
              fun () ->
                buf.(0) <- f.(a);
                buf.(1) <- f.(c_);
                f.(d) <- bi.eval buf)
      | Ty.Vec _, 1 -> (
          let a, w = vfslot (op1 ()) and d, _ = vfslot (res ()) in
          match unary_fn name with
          | Some g ->
              fun () ->
                let x = vf.(a) and z = vf.(d) in
                for l = 0 to w - 1 do
                  Float.Array.set z l (g (Float.Array.get x l))
                done
          | None ->
              let buf = [| 0.0 |] in
              fun () ->
                for l = 0 to w - 1 do
                  buf.(0) <- Float.Array.get vf.(a) l;
                  Float.Array.set vf.(d) l (bi.eval buf)
                done)
      | Ty.Vec _, 2 -> (
          let a, w = vfslot (op1 ()) and c_, _ = vfslot (op2 ())
          and d, _ = vfslot (res ()) in
          match binary_fn name with
          | Some g ->
              fun () ->
                for l = 0 to w - 1 do
                  Float.Array.set vf.(d) l
                    (g (Float.Array.get vf.(a) l) (Float.Array.get vf.(c_) l))
                done
          | None ->
              let buf = [| 0.0; 0.0 |] in
              fun () ->
                for l = 0 to w - 1 do
                  buf.(0) <- Float.Array.get vf.(a) l;
                  buf.(1) <- Float.Array.get vf.(c_) l;
                  Float.Array.set vf.(d) l (bi.eval buf)
                done)
      | _ -> fail "math.%s: unsupported arity %d" name bi.arity)
  | Op.Broadcast -> (
      match (res ()).ty with
      | Ty.Vec (_, Ty.F64) ->
          let a = fslot (op1 ()) and d, w = vfslot (res ()) in
          fun () ->
            let z = vf.(d) and x = f.(a) in
            for l = 0 to w - 1 do
              Float.Array.set z l x
            done
      | Ty.Vec (_, Ty.I64) ->
          let a = islot (op1 ()) and d, w = vislot (res ()) in
          fun () -> Array.fill vi.(d) 0 w i.(a)
      | Ty.Vec (_, Ty.I1) ->
          let a = bslot (op1 ()) and d, w = vbslot (res ()) in
          fun () -> Array.fill vb.(d) 0 w b.(a)
      | _ -> fail "broadcast: unsupported type")
  | Op.VecExtract lane -> (
      match (op1 ()).ty with
      | Ty.Vec (_, Ty.F64) ->
          let a, _ = vfslot (op1 ()) and d = fslot (res ()) in
          fun () -> f.(d) <- Float.Array.get vf.(a) lane
      | Ty.Vec (_, Ty.I64) ->
          let a, _ = vislot (op1 ()) and d = islot (res ()) in
          fun () -> i.(d) <- vi.(a).(lane)
      | Ty.Vec (_, Ty.I1) ->
          let a, _ = vbslot (op1 ()) and d = bslot (res ()) in
          fun () -> b.(d) <- vb.(a).(lane)
      | _ -> fail "vector.extract: unsupported type")
  | Op.VecLoad ->
      let mm = mslot (op1 ()) and ix = islot (op2 ()) and d, w = vfslot (res ()) in
      if Hashtbl.mem c.proved o.Op.o_id then fun () ->
        let buf = m.(mm) and base = i.(ix) and z = vf.(d) in
        for l = 0 to w - 1 do
          Float.Array.unsafe_set z l (Float.Array.unsafe_get buf (base + l))
        done
      else fun () ->
        let buf = m.(mm) and base = i.(ix) and z = vf.(d) in
        for l = 0 to w - 1 do
          Float.Array.set z l (Float.Array.get buf (base + l))
        done
  | Op.VecStore ->
      let a, w = vfslot (op1 ()) and mm = mslot (op2 ()) and ix = islot (op3 ()) in
      if Hashtbl.mem c.proved o.Op.o_id then fun () ->
        let buf = m.(mm) and base = i.(ix) and x = vf.(a) in
        for l = 0 to w - 1 do
          Float.Array.unsafe_set buf (base + l) (Float.Array.unsafe_get x l)
        done
      else fun () ->
        let buf = m.(mm) and base = i.(ix) and x = vf.(a) in
        for l = 0 to w - 1 do
          Float.Array.set buf (base + l) (Float.Array.get x l)
        done
  | Op.Gather ->
      let mm = mslot (op1 ()) and ix, w = vislot (op2 ()) and d, _ = vfslot (res ()) in
      if Hashtbl.mem c.proved o.Op.o_id then fun () ->
        let buf = m.(mm) and idx = vi.(ix) and z = vf.(d) in
        for l = 0 to w - 1 do
          Float.Array.unsafe_set z l (Float.Array.unsafe_get buf idx.(l))
        done
      else fun () ->
        let buf = m.(mm) and idx = vi.(ix) and z = vf.(d) in
        for l = 0 to w - 1 do
          Float.Array.set z l (Float.Array.get buf idx.(l))
        done
  | Op.Scatter ->
      let a, w = vfslot (op1 ()) and mm = mslot (op2 ()) and ix, _ = vislot (op3 ()) in
      if Hashtbl.mem c.proved o.Op.o_id then fun () ->
        let buf = m.(mm) and idx = vi.(ix) and x = vf.(a) in
        for l = 0 to w - 1 do
          Float.Array.unsafe_set buf idx.(l) (Float.Array.unsafe_get x l)
        done
      else fun () ->
        let buf = m.(mm) and idx = vi.(ix) and x = vf.(a) in
        for l = 0 to w - 1 do
          Float.Array.set buf idx.(l) (Float.Array.get x l)
        done
  | Op.Iota _ ->
      let d, w = vislot (res ()) in
      fun () ->
        for l = 0 to w - 1 do
          vi.(d).(l) <- l
        done
  | Op.Alloc ->
      let sz = islot (op1 ()) and d = mslot (res ()) in
      fun () -> m.(d) <- Float.Array.make i.(sz) 0.0
  | Op.MemLoad ->
      let mm = mslot (op1 ()) and ix = islot (op2 ()) and d = fslot (res ()) in
      if Hashtbl.mem c.proved o.Op.o_id then
        fun () -> f.(d) <- Float.Array.unsafe_get m.(mm) i.(ix)
      else fun () -> f.(d) <- Float.Array.get m.(mm) i.(ix)
  | Op.MemStore ->
      let a = fslot (op1 ()) and mm = mslot (op2 ()) and ix = islot (op3 ()) in
      if Hashtbl.mem c.proved o.Op.o_id then
        fun () -> Float.Array.unsafe_set m.(mm) i.(ix) f.(a)
      else fun () -> Float.Array.set m.(mm) i.(ix) f.(a)
  | Op.For _ ->
      let lb = islot o.Op.operands.(0)
      and ub = islot o.Op.operands.(1)
      and st = islot o.Op.operands.(2) in
      let inits = Array.sub o.Op.operands 3 (Array.length o.Op.operands - 3) in
      let region = o.Op.regions.(0) in
      let iv, iter_args =
        match region.Op.r_args with
        | iv :: rest -> (islot iv, rest)
        | [] -> fail "scf.for: missing induction arg"
      in
      let init_copy = parallel_copy c inits iter_args in
      let results_copy =
        parallel_copy c (Array.of_list iter_args) (Array.to_list o.Op.results)
      in
      let body =
        compile_region region ~on_yield:(fun yop ->
            parallel_copy c yop.Op.operands iter_args)
      in
      fun () ->
        init_copy ();
        let hi = i.(ub) and step = i.(st) in
        let k = ref i.(lb) in
        while !k < hi do
          i.(iv) <- !k;
          body ();
          k := !k + step
        done;
        results_copy ()
  | Op.If ->
      let c_ = bslot o.Op.operands.(0) in
      let on_yield yop =
        parallel_copy c yop.Op.operands (Array.to_list o.Op.results)
      in
      let then_ = compile_region o.Op.regions.(0) ~on_yield in
      let else_ = compile_region o.Op.regions.(1) ~on_yield in
      fun () -> if b.(c_) then then_ () else else_ ()
  | Op.Yield -> fail "yield outside structured op"
  | Op.Call name ->
      let callee = lazy (c.get name) in
      let nargs = Array.length o.Op.operands in
      fun () ->
        let args = Array.make nargs (Rt.I 0) in
        for k = 0 to nargs - 1 do
          args.(k) <- get_slot c o.Op.operands.(k)
        done;
        let rets = Lazy.force callee args in
        Array.iteri (fun k r -> set_slot c r rets.(k)) o.Op.results
  | Op.Return ->
      let ops = o.Op.operands in
      let box = c.return_box in
      fun () -> box := Array.map (get_slot c) ops

(** Wrap a compiled body into the external calling convention: bind
    arguments to parameter slots, run, read the return box. *)
let finish (c : fctx) (fn : Func.func) ~(body : unit -> unit) : compiled =
  let params = Array.of_list fn.Func.f_params in
  fun (args : Rt.v array) ->
    if Array.length args <> Array.length params then
      fail "@%s: expected %d arguments, got %d" fn.Func.f_name
        (Array.length params) (Array.length args);
    Array.iteri (fun k p -> set_slot c p args.(k)) params;
    c.return_box := [||];
    body ();
    !(c.return_box)

(** Module-level linking: lazily compile functions by name with a given
    per-function compiler, resolving unknown names against the extern
    registry and tolerating recursion through a forward reference. *)
let module_linker ?(externs : Rt.registry = Rt.create_registry ())
    (m : Func.modl)
    (compile_func : get:(string -> compiled) -> Func.func -> compiled) :
    string -> compiled =
  let cache : (string, compiled) Hashtbl.t = Hashtbl.create 8 in
  let rec get (name : string) : compiled =
    match Hashtbl.find_opt cache name with
    | Some c -> c
    | None -> (
        match Func.find_func m name with
        | Some f ->
            (* install a forward reference to tolerate recursion *)
            let fwd = ref (fun _ -> fail "recursive call before compilation") in
            Hashtbl.replace cache name (fun args -> !fwd args);
            let c = compile_func ~get f in
            fwd := c;
            Hashtbl.replace cache name c;
            c
        | None ->
            let ext = Rt.lookup externs name in
            Hashtbl.replace cache name ext;
            ext)
  in
  get

(* The closure engine's region compiler: one thunk per op, dispatched
   through an array of closures. *)
let rec closure_region (c : fctx) ~(on_yield : Op.op -> unit -> unit)
    (r : Op.region) : unit -> unit =
  let thunks =
    List.map
      (fun (o : Op.op) ->
        match o.Op.kind with
        | Op.Yield -> on_yield o
        | _ -> compile_op c ~compile_region:(closure_region c) o)
      r.Op.r_ops
    |> Array.of_list
  in
  fun () ->
    for k = 0 to Array.length thunks - 1 do
      (Array.unsafe_get thunks k) ()
    done

let compile_func ?proved ~(get : string -> compiled) (fn : Func.func) :
    compiled =
  let c = make_fctx ?proved fn ~get in
  let body =
    closure_region c fn.Func.f_body ~on_yield:(fun _ ->
        fail "yield at function top level")
  in
  finish c fn ~body

(* Compile a whole module; returns a lazy per-function runner lookup.
   [proved] is keyed by op id, which is unique module-wide, so one set
   serves every function. *)
let compile_module ?externs ?proved (m : Func.modl) : string -> compiled =
  module_linker ?externs m (fun ~get f -> compile_func ?proved ~get f)

(** Compile and run one function of a module. *)
let run ?externs (m : Func.modl) (name : string) (args : Rt.v array) :
    Rt.v array =
  (compile_module ?externs m) name args
