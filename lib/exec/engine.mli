(** Closure-compiling execution engine: IR is compiled once into OCaml
    closures over preallocated typed register files (the stand-in for
    LLVM native code generation).  Vector ops execute their whole width
    per dispatch, which is where the genuine wall-clock advantage of
    vectorized kernels comes from in this port.

    Compiled functions are NOT reentrant: each compilation owns one
    register file, so use one compiled instance per thread (the driver
    does).

    The compilation building blocks (slot allocation, register files, the
    per-op thunk compiler, module linking) are exposed for reuse by the
    {!Fused} threaded-code engine, which shares slot/env handling and
    falls back to {!compile_op} for ops it does not specialize. *)

exception Exec_error of string

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Exec_error} with a formatted message. *)

(** {1 Slots and register files} *)

type slot =
  | SF of int
  | SI of int
  | SB of int
  | SVF of int * int  (** slot, width *)
  | SVI of int * int
  | SVB of int * int
  | SM of int

type slots = {
  map : (int, slot) Hashtbl.t;
  mutable nf : int;
  mutable ni : int;
  mutable nb : int;
  mutable nvf : int;
  mutable nvi : int;
  mutable nvb : int;
  mutable vf_widths_rev : int list;
  mutable vi_widths_rev : int list;
  mutable vb_widths_rev : int list;
  mutable nm : int;
}

val collect_slots : Ir.Func.func -> slots
(** Assign a fixed slot to every SSA value of a function (O(1) per value). *)

type env = {
  f : float array;
  i : int array;
  b : bool array;
  vf : floatarray array;
  vi : int array array;
  vb : bool array array;
  m : floatarray array;
}

val make_env : slots -> env
(** Allocate the register file for a slot assignment. *)

(** {1 Compilation context} *)

type compiled = Rt.v array -> Rt.v array

type fctx = {
  slots : slots;
  env : env;
  get : string -> compiled;  (** module-level callee lookup *)
  return_box : Rt.v array ref;
  proved : (int, unit) Hashtbl.t;
      (** op ids whose memory accesses are statically proved in-bounds
          (see [Analysis.Bounds]); those compile without runtime bounds
          checks.  Elision only drops failure branches, never
          value-affecting clamps, so results are bitwise unchanged. *)
}

val make_fctx :
  ?proved:(int, unit) Hashtbl.t ->
  Ir.Func.func ->
  get:(string -> compiled) ->
  fctx

val slot : fctx -> Ir.Value.t -> slot
val fslot : fctx -> Ir.Value.t -> int
val islot : fctx -> Ir.Value.t -> int
val bslot : fctx -> Ir.Value.t -> int
val vfslot : fctx -> Ir.Value.t -> int * int
val vislot : fctx -> Ir.Value.t -> int * int
val vbslot : fctx -> Ir.Value.t -> int * int
val mslot : fctx -> Ir.Value.t -> int

val set_slot : fctx -> Ir.Value.t -> Rt.v -> unit
val get_slot : fctx -> Ir.Value.t -> Rt.v

val parallel_copy : fctx -> Ir.Value.t array -> Ir.Value.t list -> unit -> unit
(** Copy sources to destinations through temporaries (safe under
    permutation), as scf yields require. *)

type region_compiler =
  on_yield:(Ir.Op.op -> unit -> unit) -> Ir.Op.region -> unit -> unit
(** A region-body compiler, parameterizing {!compile_op} so structured ops
    compile their nested regions with whichever engine drives. *)

val compile_op : fctx -> compile_region:region_compiler -> Ir.Op.op -> unit -> unit
(** Compile any single op to a thunk over the context's register file. *)

val finish : fctx -> Ir.Func.func -> body:(unit -> unit) -> compiled
(** Wrap a compiled body into the external calling convention. *)

val module_linker :
  ?externs:Rt.registry ->
  Ir.Func.modl ->
  (get:(string -> compiled) -> Ir.Func.func -> compiled) ->
  string ->
  compiled
(** Lazy per-function compile-and-link with extern fallback. *)

(** {1 Scalar helpers shared with the fused engine} *)

val unary_fn : string -> (float -> float) option
val binary_fn : string -> (float -> float -> float) option
val fbin_fn : Ir.Op.fbin -> float -> float -> float
val ibin_fn : Ir.Op.ibin -> int -> int -> int
val bbin_fn : Ir.Op.bbin -> bool -> bool -> bool
val cmpf_fn : Ir.Op.cmp -> float -> float -> bool
val cmpi_fn : Ir.Op.cmp -> int -> int -> bool

(** {1 Entry points} *)

val compile_func :
  ?proved:(int, unit) Hashtbl.t ->
  get:(string -> compiled) ->
  Ir.Func.func ->
  compiled
(** Compile one function against a callee lookup. *)

val compile_module :
  ?externs:Rt.registry ->
  ?proved:(int, unit) Hashtbl.t ->
  Ir.Func.modl ->
  string ->
  compiled
(** Lazy per-function compiler; unknown names fall back to the extern
    registry. Local calls between module functions are supported.
    [proved] elides bounds checks on the listed op ids (ids are unique
    module-wide, so one set serves every function). *)

val run :
  ?externs:Rt.registry -> Ir.Func.modl -> string -> Rt.v array -> Rt.v array
(** Compile and invoke one function. *)
